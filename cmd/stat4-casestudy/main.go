// Command stat4-casestudy runs the Section 4 detection-and-drill-down
// experiment (Figure 6) in virtual time: load-balanced traffic to 36
// destinations in six /24 subnets of 10.0.0.0/8, a randomized volumetric
// spike toward one destination, in-switch detection on a circular window of
// packet-rate intervals, and a controller that drills down to the /24 and
// then the destination by retuning binding tables.
//
//	stat4-casestudy -runs 5 -interval-shift 23 -window 100
//	stat4-casestudy -sweep -runs 3
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"

	"stat4/internal/experiments"
	"stat4/internal/netem"
	"stat4/internal/telemetry"
)

// options carries every knob main parses from flags; run takes it whole so
// tests drive the command through the same path as the CLI.
type options struct {
	runs        int
	shift       uint
	window      int
	perInterval float64
	ctrlMs      uint64
	sweep       bool
	seed        int64
	sched       string
	metrics     bool
	metricsOut  string
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stat4-casestudy: ")
	var opts options
	flag.IntVar(&opts.runs, "runs", 5, "repetitions")
	flag.UintVar(&opts.shift, "interval-shift", 23, "interval length exponent: 2^shift ns (23 ≈ 8ms)")
	flag.IntVar(&opts.window, "window", 100, "circular buffer length in intervals")
	flag.Float64Var(&opts.perInterval, "packets-per-interval", 0, "baseline packets per interval (0: experiment default)")
	flag.Uint64Var(&opts.ctrlMs, "ctrl-delay-ms", 400, "one-way switch-controller latency")
	flag.BoolVar(&opts.sweep, "sweep", false, "run the interval/window sweep instead")
	flag.Int64Var(&opts.seed, "seed", 1, "base seed")
	flag.StringVar(&opts.sched, "sched", "wheel", "simulator scheduler: wheel or heap (reference)")
	flag.BoolVar(&opts.metrics, "metrics", false, "print the telemetry exposition after the runs")
	flag.StringVar(&opts.metricsOut, "metrics-out", "", "write the telemetry snapshot as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address during the runs")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	if err := run(os.Stdout, opts); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, opts options) error {
	switch opts.sched {
	case "wheel":
		netem.DefaultSched = netem.SchedWheel
	case "heap":
		netem.DefaultSched = netem.SchedHeap
	default:
		return fmt.Errorf("unknown -sched %q (want wheel or heap)", opts.sched)
	}

	var pipeline *telemetry.Pipeline
	var reg *telemetry.Registry
	if opts.metrics || opts.metricsOut != "" {
		pipeline = telemetry.NewPipeline()
		reg = telemetry.NewRegistry("stat4_casestudy")
		pipeline.Register(reg)
	}

	if opts.sweep {
		rows, err := experiments.CaseStudySweep(opts.runs, opts.seed)
		if err != nil {
			return err
		}
		fmt.Fprint(w, experiments.FormatCaseStudySweep(rows))
		fmt.Fprintln(w, "\npaper: detection in the first interval after the spike in all runs;")
		fmt.Fprintln(w, "pinpointing the destination typically takes 2-3 seconds")
		return nil
	}

	firstInterval, hostCorrect := 0, 0
	for r := 0; r < opts.runs; r++ {
		res, err := experiments.CaseStudy(experiments.CaseStudyParams{
			IntervalShift:      opts.shift,
			WindowSize:         opts.window,
			PacketsPerInterval: opts.perInterval,
			CtrlDelay:          opts.ctrlMs * 1e6,
			Seed:               opts.seed + int64(r)*7919,
			Telemetry:          pipeline,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "run %d: spike at %.3fs -> %v\n", r, float64(res.SpikeOnset)/1e9, res.SpikeTarget)
		for _, l := range res.Log {
			fmt.Fprintln(w, "  ", l)
		}
		fmt.Fprintf(w, "   detected=%v first-interval=%v subnet-correct=%v host-correct=%v pinpoint=%.2fs\n",
			res.Detected, res.DetectionIntervalLag <= 1, res.SubnetCorrect, res.HostCorrect,
			float64(res.PinpointNs)/1e9)
		if res.Detected && res.DetectionIntervalLag <= 1 {
			firstInterval++
		}
		if res.HostCorrect {
			hostCorrect++
		}
	}
	fmt.Fprintf(w, "\nsummary: %d/%d detected in the first interval, %d/%d destinations pinpointed correctly\n",
		firstInterval, opts.runs, hostCorrect, opts.runs)

	if reg != nil {
		if opts.metrics {
			if err := reg.WriteProm(w); err != nil {
				return err
			}
		}
		if opts.metricsOut != "" {
			f, err := os.Create(opts.metricsOut)
			if err != nil {
				return err
			}
			if err := reg.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
