// Command stat4-casestudy runs the Section 4 detection-and-drill-down
// experiment (Figure 6) in virtual time: load-balanced traffic to 36
// destinations in six /24 subnets of 10.0.0.0/8, a randomized volumetric
// spike toward one destination, in-switch detection on a circular window of
// packet-rate intervals, and a controller that drills down to the /24 and
// then the destination by retuning binding tables.
//
//	stat4-casestudy -runs 5 -interval-shift 23 -window 100
//	stat4-casestudy -sweep -runs 3
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"

	"stat4/internal/experiments"
	"stat4/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stat4-casestudy: ")
	runs := flag.Int("runs", 5, "repetitions")
	shift := flag.Uint("interval-shift", 23, "interval length exponent: 2^shift ns (23 ≈ 8ms)")
	window := flag.Int("window", 100, "circular buffer length in intervals")
	ctrlMs := flag.Uint64("ctrl-delay-ms", 400, "one-way switch-controller latency")
	sweep := flag.Bool("sweep", false, "run the interval/window sweep instead")
	seed := flag.Int64("seed", 1, "base seed")
	metrics := flag.Bool("metrics", false, "print the telemetry exposition after the runs")
	metricsOut := flag.String("metrics-out", "", "write the telemetry snapshot as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address during the runs")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	var pipeline *telemetry.Pipeline
	var reg *telemetry.Registry
	if *metrics || *metricsOut != "" {
		pipeline = telemetry.NewPipeline()
		reg = telemetry.NewRegistry("stat4_casestudy")
		pipeline.Register(reg)
	}

	if *sweep {
		rows, err := experiments.CaseStudySweep(*runs, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatCaseStudySweep(rows))
		fmt.Println("\npaper: detection in the first interval after the spike in all runs;")
		fmt.Println("pinpointing the destination typically takes 2-3 seconds")
		return
	}

	firstInterval, hostCorrect := 0, 0
	for r := 0; r < *runs; r++ {
		res, err := experiments.CaseStudy(experiments.CaseStudyParams{
			IntervalShift: *shift,
			WindowSize:    *window,
			CtrlDelay:     *ctrlMs * 1e6,
			Seed:          *seed + int64(r)*7919,
			Telemetry:     pipeline,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run %d: spike at %.3fs -> %v\n", r, float64(res.SpikeOnset)/1e9, res.SpikeTarget)
		for _, l := range res.Log {
			fmt.Println("  ", l)
		}
		fmt.Printf("   detected=%v first-interval=%v subnet-correct=%v host-correct=%v pinpoint=%.2fs\n",
			res.Detected, res.DetectionIntervalLag <= 1, res.SubnetCorrect, res.HostCorrect,
			float64(res.PinpointNs)/1e9)
		if res.Detected && res.DetectionIntervalLag <= 1 {
			firstInterval++
		}
		if res.HostCorrect {
			hostCorrect++
		}
	}
	fmt.Printf("\nsummary: %d/%d detected in the first interval, %d/%d destinations pinpointed correctly\n",
		firstInterval, *runs, hostCorrect, *runs)

	if reg != nil {
		if *metrics {
			if err := reg.WriteProm(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
		if *metricsOut != "" {
			f, err := os.Create(*metricsOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := reg.WriteJSON(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}
}
