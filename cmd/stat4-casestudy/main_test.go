package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stat4/internal/netem"
)

// TestRunSmoke drives the command end to end through run() with a
// deliberately small configuration (short intervals, shallow window, low
// rate) so the full pipeline — traffic, switch, controller drill-down,
// summary printing, metrics snapshot — executes in well under a second.
func TestRunSmoke(t *testing.T) {
	defer func(prev netem.SchedMode) { netem.DefaultSched = prev }(netem.DefaultSched)
	out := filepath.Join(t.TempDir(), "metrics.json")
	var buf strings.Builder
	err := run(&buf, options{
		runs:        1,
		shift:       20,
		window:      20,
		perInterval: 60,
		ctrlMs:      50,
		seed:        5,
		sched:       "wheel",
		metricsOut:  out,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{"run 0: spike at", "summary:", "detected="} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	snap, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), "stat4_casestudy") {
		t.Fatalf("metrics snapshot missing registry prefix: %s", snap)
	}
}

// TestRunRejectsUnknownScheduler pins the -sched flag's error path.
func TestRunRejectsUnknownScheduler(t *testing.T) {
	defer func(prev netem.SchedMode) { netem.DefaultSched = prev }(netem.DefaultSched)
	var buf strings.Builder
	if err := run(&buf, options{runs: 1, sched: "fifo"}); err == nil {
		t.Fatal("run accepted an unknown scheduler")
	}
}
