// Command stat4-tables regenerates every table and figure of the paper's
// evaluation and prints measured values next to the published ones. With no
// flags it runs everything; individual artifacts can be selected.
//
//	stat4-tables                 # all experiments
//	stat4-tables -table2         # sqrt approximation error (Table 2)
//	stat4-tables -table3         # median estimation error (Table 3)
//	stat4-tables -resources      # Section 4 resource consumption
//	stat4-tables -casestudy      # Section 4 detection & drill-down sweep
//	stat4-tables -arch           # Figure 1 architecture comparison
package main

import (
	"flag"
	"fmt"
	"log"

	"stat4/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stat4-tables: ")
	t2 := flag.Bool("table2", false, "regenerate Table 2 only")
	t3 := flag.Bool("table3", false, "regenerate Table 3 only")
	res := flag.Bool("resources", false, "regenerate the resource report only")
	cs := flag.Bool("casestudy", false, "regenerate the case-study sweep only")
	arch := flag.Bool("arch", false, "regenerate the architecture comparison only")
	abl := flag.Bool("ablation", false, "regenerate the strict-emission accuracy ablation only")
	quant := flag.Bool("quantiles", false, "regenerate the median-tracker comparison only")
	reps := flag.Int("reps", 20, "repetitions for Table 3 (paper uses 20)")
	runs := flag.Int("runs", 3, "runs per case-study and architecture configuration")
	seed := flag.Int64("seed", 1, "base seed")
	flag.Parse()

	all := !*t2 && !*t3 && !*res && !*cs && !*arch && !*abl && !*quant

	if all || *t2 {
		fmt.Println("== Table 2: square root approximation error ==")
		fmt.Println("(exhaustive over every integer in each range)")
		fmt.Print(experiments.FormatTable2(experiments.Table2()))
		fmt.Println("\n(operands sampled from a frequency-tracking workload's variances)")
		fmt.Print(experiments.FormatTable2(experiments.Table2Workload(200000, *seed)))
		fmt.Println("\n(ablation: mantissa-rounding variant, exhaustive)")
		fmt.Print(experiments.FormatTable2(experiments.Table2Rounding()))
		fmt.Println()
	}

	if all || *t3 {
		fmt.Printf("== Table 3: median estimation error (%d repetitions) ==\n", *reps)
		fmt.Print(experiments.FormatTable3(experiments.Table3(*reps, *seed)))
		fmt.Println()
	}

	if all || *res {
		fmt.Println("== Section 4: resource consumption ==")
		fmt.Print(experiments.FormatResources(experiments.Resources()))
		fmt.Println()
	}

	if all || *cs {
		fmt.Printf("== Section 4: case-study sweep (%d runs per configuration) ==\n", *runs)
		rows, err := experiments.CaseStudySweep(*runs, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatCaseStudySweep(rows))
		fmt.Println("paper: spike detected in the first interval in all runs; destination")
		fmt.Println("pinpointed correctly; pinpointing typically takes 2-3 seconds")
		fmt.Println()
	}

	if all || *quant {
		fmt.Println("== Median tracking: Stat4 one-step marker vs P2 (software baseline) ==")
		fmt.Print(experiments.FormatQuantiles(experiments.QuantileComparison(1000, 20000, *seed)))
		fmt.Println()
	}

	if all || *abl {
		fmt.Println("== Ablation: multiplication-free (strict) emission accuracy ==")
		rows := experiments.StrictAccuracy(20000, *seed)
		e, st := experiments.StrictDetectionAgreement(*runs, *seed)
		fmt.Print(experiments.FormatStrictAccuracy(rows, e, st, *runs))
		fmt.Println()
	}

	if all || *arch {
		fmt.Printf("== Figure 1 (quantified): sketch-only pull vs in-switch push (%d runs) ==\n", *runs)
		rows, err := experiments.ArchComparison(experiments.ArchParams{Runs: *runs, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(experiments.FormatArch(rows))
	}
}
