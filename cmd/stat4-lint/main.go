// Command stat4-lint enforces the switch-feasibility invariants of "Stats
// 101 in P4" on the Go datapath: functions marked //stat4:datapath (and
// everything they transitively call within the module) must be integer-only,
// division-free, loop-free, bounded straight-line code. See internal/lint
// for the analyzers.
//
// Standalone (whole-module, authoritative):
//
//	go run ./cmd/stat4-lint ./...
//
// As a go vet tool (modular, per package):
//
//	go build -o stat4-lint ./cmd/stat4-lint
//	go vet -vettool=$(pwd)/stat4-lint ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"stat4/internal/lint"
)

func main() {
	// The go vet protocol probes the tool before use: `-V=full` must print
	// a stable version line for build caching, `-flags` the tool's flag
	// schema, and a lone *.cfg argument selects modular unit mode.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if args := os.Args[1:]; len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	dir := flag.String("C", "", "change to this directory before loading packages")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stat4-lint [-json] [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := lint.LoadModule(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(mod, lint.Analyzers())
	emit(diags, *jsonOut)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runUnit is the `go vet -vettool` entry point: analyze one package
// described by a vet config file.
func runUnit(cfgFile string) {
	diags, err := lint.RunUnit(cfgFile, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		emit(diags, false)
		os.Exit(2) // the exit code `go vet` treats as "diagnostics found"
	}
}

func emit(diags []lint.Diagnostic, asJSON bool) {
	if asJSON {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(out)
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
}

// printVersion emits the `-V=full` line `go vet` hashes into its build
// cache key; including a digest of the executable invalidates cached vet
// results when the tool itself changes.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}
