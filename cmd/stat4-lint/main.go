// Command stat4-lint enforces the switch-feasibility invariants of "Stats
// 101 in P4" on the Go datapath: functions marked //stat4:datapath (and
// everything they transitively call within the module) must be integer-only,
// division-free, loop-free, bounded, allocation-free straight-line code, and
// variables under sync/atomic discipline must stay under it module-wide. On
// top of the source analyzers, the program-level passes gate every
// registered Stat4 program: stagebudget places its compiled plan onto a PISA
// target model's stages, and mergelaw checks the cross-replica merge
// discipline of its registers. See internal/lint for the analyzers.
//
// Standalone (whole-module, authoritative):
//
//	go run ./cmd/stat4-lint ./...
//	go run ./cmd/stat4-lint -target configs/lint-target.json ./...
//
// As a go vet tool (modular, per package; the program gate runs when the
// stat4p4 package itself is vetted):
//
//	go build -o stat4-lint ./cmd/stat4-lint
//	go vet -vettool=$(pwd)/stat4-lint ./...
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"stat4/internal/lint"
	"stat4/internal/p4"
	"stat4/internal/stat4p4"
)

func main() {
	// The go vet protocol probes the tool before use: `-V=full` must print
	// a stable version line for build caching, `-flags` the tool's flag
	// schema, and a lone *.cfg argument selects modular unit mode.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if args := os.Args[1:]; len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runUnit(args[0])
		return
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	dir := flag.String("C", "", "change to this directory before loading packages")
	target := flag.String("target", "", "target-model JSON for the stagebudget gate (default: the built-in pisa-3pass model)")
	programs := flag.Bool("programs", true, "run the stagebudget and mergelaw gates over every registered program")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stat4-lint [-json] [-C dir] [-target model.json] [-programs=false] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	tm := p4.DefaultTargetModel()
	if *target != "" {
		var err error
		if tm, err = p4.LoadTargetModel(*target); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	mod, err := lint.LoadModule(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(mod, lint.Analyzers())
	if *programs {
		diags = append(diags, lint.RunPrograms(registeredCases(), tm)...)
	}
	emit(diags, *jsonOut)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// registeredCases adapts the stat4p4 catalog to the program-level passes:
// every registered configuration is built and gated.
func registeredCases() []lint.ProgramCase {
	var cases []lint.ProgramCase
	for _, rp := range stat4p4.Registered() {
		lib := stat4p4.Build(rp.Opts)
		cases = append(cases, lint.ProgramCase{
			Name:       rp.Name,
			Prog:       lib.Prog,
			Recomputed: lib.RecomputedRegisters(),
		})
	}
	return cases
}

// runUnit is the `go vet -vettool` entry point: analyze one package
// described by a vet config file. Vetting the stat4p4 package also runs the
// program-level gates — that is the package whose code emits the programs,
// so its vet run is where a budget regression belongs.
func runUnit(cfgFile string) {
	diags, err := lint.RunUnit(cfgFile, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if unitImportPath(cfgFile) == "stat4/internal/stat4p4" {
		diags = append(diags, lint.RunPrograms(registeredCases(), p4.DefaultTargetModel())...)
	}
	if len(diags) > 0 {
		emit(diags, false)
		os.Exit(2) // the exit code `go vet` treats as "diagnostics found"
	}
}

// unitImportPath peeks at the vet config's ImportPath; a malformed config
// will fail properly inside RunUnit, so errors here just mean "not stat4p4".
func unitImportPath(cfgFile string) string {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return ""
	}
	var cfg struct{ ImportPath string }
	if err := json.Unmarshal(data, &cfg); err != nil {
		return ""
	}
	return cfg.ImportPath
}

func emit(diags []lint.Diagnostic, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		enc.Encode(lint.ToJSON(diags))
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
}

// printVersion emits the `-V=full` line `go vet` hashes into its build
// cache key; including a digest of the executable invalidates cached vet
// results when the tool itself changes.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", progname, h.Sum(nil))
}
