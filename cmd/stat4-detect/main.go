// Command stat4-detect runs the detection-quality matrix and emits the
// DETECT_<n>.json trajectory artifact: every (scenario × config × shards ×
// sched) cell of the internal/detect grid scored for time-to-detect,
// precision/recall/F1, drill-down accuracy and benign-twin false alarms,
// with baseline deltas and the pathological-dominance audit.
//
// Usage:
//
//	stat4-detect [-o DETECT_1.json] [-json] [-baseline DETECT_0.json]
//	             [-gate] [-tol 0.02] [-scale 1.0] [-seed 1]
//	             [-scenario name] [-config name] [-shards 1,4] [-q]
//
// -gate exits nonzero on any dominance violation or on a cell whose quality
// fell more than -tol below the baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"stat4/internal/detect"
)

func main() {
	var (
		out      = flag.String("o", "", "write the report to this file")
		toStdout = flag.Bool("json", false, "write the report JSON to stdout")
		baseline = flag.String("baseline", "", "previous DETECT_<n>.json to diff against")
		gate     = flag.Bool("gate", false, "exit nonzero on dominance violations or baseline regressions")
		tol      = flag.Float64("tol", 0.02, "allowed absolute quality drop vs baseline before -gate fails")
		scale    = flag.Float64("scale", 1.0, "trace time scale in (0, 1]")
		seed     = flag.Int64("seed", 1, "scenario replay seed")
		scenario = flag.String("scenario", "", "run only this scenario")
		config   = flag.String("config", "", "run only this config")
		shards   = flag.String("shards", "1,4", "comma-separated shard counts")
		quiet    = flag.Bool("q", false, "suppress per-cell progress")
	)
	flag.Parse()

	grid := detect.DefaultGrid(*scale)
	grid.Seed = *seed
	if *scenario != "" {
		kept := grid.Scenarios[:0]
		for _, sc := range grid.Scenarios {
			if sc.Name == *scenario {
				kept = append(kept, sc)
			}
		}
		if len(kept) == 0 {
			fatalf("unknown scenario %q", *scenario)
		}
		grid.Scenarios = kept
	}
	if *config != "" {
		cfg, ok := detect.FindConfig(grid.Configs, *config)
		if !ok {
			fatalf("unknown config %q", *config)
		}
		grid.Configs = []detect.Config{cfg}
	}
	grid.Shards = grid.Shards[:0]
	for _, f := range strings.Split(*shards, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fatalf("bad -shards value %q", f)
		}
		grid.Shards = append(grid.Shards, n)
	}

	var base *detect.Report
	if *baseline != "" {
		rep, err := detect.LoadReport(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		base = rep
	}

	progress := func(i, n int, c detect.Cell) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%3d/%d] %s × %s × %d shards × %s\n",
				i+1, n, c.Scenario.Name, c.Config.Name, c.Shards, detect.SchedName(c.Sched))
		}
	}
	results, err := detect.RunGrid(grid, progress)
	if err != nil {
		fatalf("%v", err)
	}
	rep := detect.BuildReport(grid, results, base)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshal: %v", err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatalf("%v", err)
		}
	}
	if *toStdout || *out == "" {
		os.Stdout.Write(data)
	}

	if violations := rep.GateViolations(*tol); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "GATE: %s\n", v)
		}
		if *gate {
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "stat4-detect: "+format+"\n", args...)
	os.Exit(1)
}
