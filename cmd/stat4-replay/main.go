// Command stat4-replay drives a Stat4 switch from a pcap capture: frames are
// processed at their captured timestamps, the requested statistics are bound
// before the replay, and the tracked measures plus any anomaly alerts are
// printed at the end. With -record it instead synthesises a case-study-style
// workload and writes it to a pcap file, so experiments are exchangeable as
// ordinary captures.
//
//	stat4-replay -record trace.pcap -seconds 2
//	stat4-replay trace.pcap -track window -interval-shift 23 -window 100
//	stat4-replay trace.pcap -track dst24 -k 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"

	"stat4/internal/ingest"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stat4-replay: ")
	record := flag.String("record", "", "write a synthetic case-study capture to this file and exit")
	seconds := flag.Float64("seconds", 2, "capture length for -record")
	track := flag.String("track", "window", "statistic to bind: window | dst24 | proto | len | entropy | hh")
	shift := flag.Uint("interval-shift", 23, "window interval exponent (2^shift ns)")
	window := flag.Int("window", 100, "window length in intervals")
	k := flag.Uint64("k", 2, "sigma multiplier for the anomaly check (0 disables for freq modes)")
	basePrefix := flag.String("base-prefix", "10.0.0.0", "dst24/entropy modes: /16 whose /24 subnets are indexed")
	h0 := flag.Float64("h0", 0, "entropy mode: alert when the mix drops below this many bits (0 disables)")
	checkEvery := flag.Uint64("check-every", 1024, "entropy mode: check cadence in observations (power of two)")
	sampleShift := flag.Uint("sample-shift", 6, "hh mode: recirculation probability 2^-shift")
	configPath := flag.String("config", "", "JSON app config (overrides -track and friends)")
	shards := flag.Int("shards", 1, "replicate the datapath over N flow-hash shards (RSS-style dispatch)")
	ringFeed := flag.Bool("ring", false, "feed shards through the stat4d ingest ring instead of direct batches (lossless)")
	metrics := flag.Bool("metrics", false, "print the telemetry exposition after the replay")
	metricsOut := flag.String("metrics-out", "", "write the telemetry snapshot as JSON to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address during the replay")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof: %v", err)
			}
		}()
	}

	if *record != "" {
		if err := recordTrace(*record, *seconds); err != nil {
			log.Fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		log.Fatal("usage: stat4-replay [flags] trace.pcap  (or -record out.pcap)")
	}
	if *shards < 1 {
		log.Fatal("-shards must be at least 1")
	}
	tc := trackConfig{
		Track: *track, Shift: *shift, Window: *window, K: *k,
		H0Bits: *h0, CheckEvery: *checkEvery, SampleShift: *sampleShift,
	}
	if *shards > 1 || *ringFeed {
		if *configPath != "" {
			log.Fatal("-shards is not supported with -config (bindings come from the track flags)")
		}
		base, err := parseAddr(*basePrefix)
		if err != nil {
			log.Fatal(err)
		}
		tc.Base = uint64(base) >> 8
		if *ringFeed {
			if err := replayRing(flag.Arg(0), tc, *shards, *metrics, *metricsOut); err != nil {
				log.Fatal(err)
			}
			return
		}
		sm := newShardedMetrics(*shards, *metrics || *metricsOut != "")
		if err := replaySharded(flag.Arg(0), tc, *shards, sm); err != nil {
			log.Fatal(err)
		}
		if sm != nil {
			if err := sm.emit(*metrics, *metricsOut); err != nil {
				log.Fatal(err)
			}
		}
		return
	}
	var rm *replayMetrics
	if *metrics || *metricsOut != "" {
		rm = newReplayMetrics()
	}
	run := func() error {
		if *configPath != "" {
			return replayWithConfig(flag.Arg(0), *configPath, rm)
		}
		base, err := parseAddr(*basePrefix)
		if err != nil {
			return err
		}
		tc.Base = uint64(base) >> 8
		return replay(flag.Arg(0), tc, rm)
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
	if rm != nil {
		if err := rm.emit(*metrics, *metricsOut); err != nil {
			log.Fatal(err)
		}
	}
}

// shardedMetrics is the telemetry wiring of a sharded replay: one switch
// observer per shard (single-writer on its shard's worker goroutine), the
// merged fleet view, and the fleet counters — the per-shard + merged split
// in one registry.
type shardedMetrics struct {
	sp  *telemetry.ShardedPipeline
	reg *telemetry.Registry
}

// newShardedMetrics returns nil when metrics are off.
func newShardedMetrics(shards int, enabled bool) *shardedMetrics {
	if !enabled {
		return nil
	}
	return &shardedMetrics{
		sp:  telemetry.NewShardedPipeline(shards),
		reg: telemetry.NewRegistry("stat4_replay"),
	}
}

// attach installs one observer per shard and exposes the fleet counters.
func (sm *shardedMetrics) attach(ss *p4.ShardedSwitch) {
	for i := 0; i < ss.NumShards(); i++ {
		ss.Shard(i).SetObserver(sm.sp.Shards[i])
	}
	sm.sp.Register(sm.reg)
	sm.reg.RegisterCounter("pkts_in", "frames handed to the pipelines", func() uint64 { return ss.Stats().PktsIn })
	sm.reg.RegisterCounter("pkts_out", "frames emitted by the pipelines", func() uint64 { return ss.Stats().PktsOut })
	sm.reg.RegisterCounter("parse_errors", "frames rejected by the parsers", func() uint64 { return ss.Stats().ParseErrors })
}

// emit refreshes the merged view and renders as requested.
func (sm *shardedMetrics) emit(prom bool, jsonPath string) error {
	sm.sp.Refresh()
	if prom {
		if err := sm.reg.WriteProm(os.Stdout); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := sm.reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// replayMetrics is the telemetry wiring of one replay: the switch observer
// plus a registry exposing it next to the switch's global counters.
type replayMetrics struct {
	sw  *telemetry.SwitchMetrics
	reg *telemetry.Registry
}

// newReplayMetrics builds the bundle; the switch counters are registered
// lazily by attach once the switch exists.
func newReplayMetrics() *replayMetrics {
	rm := &replayMetrics{sw: telemetry.NewSwitchMetrics(0), reg: telemetry.NewRegistry("stat4_replay")}
	rm.reg.RegisterHist("packet_cost_ns", "per-packet processing cost (parse+execute+deparse)", rm.sw.Cost)
	rm.reg.RegisterHist("digest_latency_ns", "digest emit-to-drain wall-clock latency", rm.sw.DigestWait)
	rm.reg.RegisterCounter("digests_emitted", "digests accepted by the channel", rm.sw.Emitted)
	rm.reg.RegisterCounter("digests_dropped", "digests lost to a full channel", rm.sw.Dropped)
	rm.reg.RegisterCounter("digests_delivered", "digests drained by the replay loop", rm.sw.Delivered)
	return rm
}

// attach installs the observer and exposes the switch's global counters.
func (rm *replayMetrics) attach(sw *p4.Switch) {
	sw.SetObserver(rm.sw)
	rm.reg.RegisterCounter("pkts_in", "frames handed to the pipeline", func() uint64 { return sw.Stats().PktsIn })
	rm.reg.RegisterCounter("pkts_out", "frames emitted by the pipeline", func() uint64 { return sw.Stats().PktsOut })
	rm.reg.RegisterCounter("parse_errors", "frames rejected by the parser", func() uint64 { return sw.Stats().ParseErrors })
}

// emit renders the exposition and/or JSON snapshot as requested.
func (rm *replayMetrics) emit(prom bool, jsonPath string) error {
	if prom {
		if err := rm.reg.WriteProm(os.Stdout); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rm.reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func recordTrace(path string, seconds float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := packet.NewPcapWriter(f)

	end := uint64(seconds * 1e9)
	dests := traffic.CaseStudyDests()
	load := &traffic.LoadBalanced{Dests: dests, Rate: 20000, End: end, Seed: 1, Jitter: 0.5}
	spike := &traffic.Spike{Dest: dests[3], Rate: 60000, Start: end / 2, End: end, Seed: 2, Jitter: 0.5}
	st := traffic.Merge(load, spike)
	n := 0
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		if err := w.WriteFrame(p.TsNs, p.Frame.Serialize()); err != nil {
			return err
		}
		n++
	}
	fmt.Printf("wrote %d frames to %s (spike toward %v from %.2fs)\n",
		n, path, dests[3], seconds/2)
	return nil
}

// parseAddr parses a dotted-quad IPv4 address.
func parseAddr(s string) (packet.IP4, error) {
	var a, b, c, d byte
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad address %q: %v", s, err)
	}
	return packet.ParseIP4(a, b, c, d), nil
}

// replayWithConfig instantiates a declarative app and replays through it.
func replayWithConfig(tracePath, configPath string, rm *replayMetrics) error {
	cf, err := os.Open(configPath)
	if err != nil {
		return err
	}
	cfg, err := stat4p4.LoadAppConfig(cf)
	cf.Close()
	if err != nil {
		return err
	}
	rt, ids, err := cfg.Apply()
	if err != nil {
		return err
	}
	fmt.Printf("applied %s: %d bindings, %d routes\n", configPath, len(ids), len(cfg.Routes))
	return replayThrough(tracePath, rt, trackConfig{Track: "config"}, rm)
}

// trackConfig bundles the -track family of flags so every replay flavor
// (serial, sharded, ring-fed) binds and reports the same statistic.
type trackConfig struct {
	Track       string
	Shift       uint   // window interval exponent
	Window      int    // window length in intervals
	K           uint64 // sigma multiplier
	Base        uint64 // dst24/entropy: /16 base, pre-shifted
	H0Bits      float64
	CheckEvery  uint64
	SampleShift uint
}

// options sizes the program for the track: entropy and heavy hitters carry
// extra registers and recirculation plumbing, so they are compiled in only
// when asked for.
func (tc trackConfig) options() stat4p4.Options {
	return stat4p4.Options{
		Slots: 1, Size: 256, Stages: 1,
		Entropy:     tc.Track == "entropy",
		HeavyHitter: tc.Track == "hh",
	}
}

// entropyH0 converts the -h0 threshold in bits to the library's fixed point.
func entropyH0(lib *stat4p4.Library, bits float64) uint64 {
	if bits <= 0 {
		return 0
	}
	return uint64(bits * float64(uint64(1)<<lib.Opts.EntropyFrac))
}

func replay(path string, tc trackConfig, rm *replayMetrics) error {
	lib := stat4p4.Build(tc.options())
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		return err
	}
	switch tc.Track {
	case "window":
		_, err = rt.BindWindow(0, 0, stat4p4.AllIPv4(), tc.Shift, tc.Window, tc.K)
	case "dst24":
		_, err = rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 8, tc.Base, 256, 1, 1, tc.K)
	case "proto":
		_, err = rt.BindFreqProto(0, 0, stat4p4.AllIPv4(), 0, 256, 1, 1, tc.K)
	case "len":
		_, err = rt.BindFreqLen(0, 0, stat4p4.AllIPv4(), 6, 0, 256, 1, 1, tc.K)
	case "entropy":
		_, err = rt.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 8, tc.Base, 256, entropyH0(lib, tc.H0Bits), tc.CheckEvery)
	case "hh":
		_, err = rt.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 0, tc.SampleShift)
	default:
		return fmt.Errorf("unknown -track %q", tc.Track)
	}
	if err != nil {
		return err
	}
	return replayThrough(path, rt, tc, rm)
}

// replaySharded replays the capture through an N-shard deployment: the
// flow-hash dispatcher partitions each batch, shards run concurrently, and
// the end-of-run measures are read from the merged canonical view — the same
// numbers a serial replay of the capture prints.
func replaySharded(path string, tc trackConfig, shards int, sm *shardedMetrics) error {
	lib := stat4p4.Build(tc.options())
	sr, err := stat4p4.NewShardedRuntime(lib, shards)
	if err != nil {
		return err
	}
	defer sr.Close()
	if err := bindSharded(sr, tc); err != nil {
		return err
	}

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	ss := sr.Sharded()
	if sm != nil {
		sm.attach(ss)
	}
	r := packet.NewPcapReader(f)
	frames := 0
	var firstTs, lastTs uint64
	var alerts []p4.Digest
	drain := func() {
		for {
			select {
			case d := <-ss.Digests():
				alerts = append(alerts, d)
				continue
			default:
			}
			break
		}
	}
	// The batch buffer is copied per frame: the pcap reader reuses its frame
	// buffer, while the shards consume the batch concurrently at flush.
	batch := make([]p4.FrameIn, 0, replayBatchSize)
	flush := func() {
		ss.ProcessBatch(batch, nil)
		drain()
		batch = batch[:0]
	}
	for {
		ts, frame, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if frames == 0 {
			firstTs = ts
		}
		lastTs = ts
		batch = append(batch, p4.FrameIn{TsNs: ts, Port: 1, Data: append([]byte(nil), frame...)})
		if len(batch) == replayBatchSize {
			flush()
		}
		frames++
	}
	flush()

	st := ss.Stats()
	fmt.Printf("replayed %d frames spanning %.3fs (%d parse errors) over %d shards\n",
		frames, float64(lastTs-firstTs)/1e9, st.ParseErrors, shards)
	var maxShard uint64
	for i := 0; i < shards; i++ {
		in := ss.Shard(i).Stats().PktsIn
		if in > maxShard {
			maxShard = in
		}
		fmt.Printf("  shard %d: %d frames\n", i, in)
	}
	if maxShard > 0 {
		fmt.Printf("modeled multi-pipeline speedup: %.2fx (total/busiest shard)\n",
			float64(st.PktsIn)/float64(maxShard))
	}
	if err := reportMerged(sr, tc, shards); err != nil {
		return err
	}
	printDigests(alerts)
	return nil
}

// reportMerged prints the end-of-run measure of a sharded replay from the
// merged canonical view — the same numbers a serial replay prints.
func reportMerged(sr *stat4p4.ShardedRuntime, tc trackConfig, shards int) error {
	switch tc.Track {
	case "window":
		// Windows are clock-driven per shard; the merged scalar view applies
		// to frequency modes, so report the per-shard moments instead.
		for i := 0; i < shards; i++ {
			m, _ := sr.ShardRuntime(i).ReadMoments(0)
			fmt.Printf("  shard %d window: N=%d Xsum=%d var=%d sd=%d\n", i, m.N, m.Xsum, m.Var, m.SD)
		}
	case "entropy":
		es, err := sr.MergedEntropy(0)
		if err != nil {
			return err
		}
		fmt.Printf("tracked \"entropy\" (merged): T=%d S=%d → %.4f bits\n", es.Total, es.Sum, es.Bits)
	case "hh":
		entries, err := sr.MergedHeavyHitters(0)
		if err != nil {
			return err
		}
		var rejected uint64
		for i := 0; i < shards; i++ {
			rej, err := sr.ShardRuntime(i).HHRejected(0)
			if err != nil {
				return err
			}
			rejected += rej
		}
		printHeavyHitters(entries, rejected, tc.SampleShift)
	default:
		m, err := sr.MergedMoments(0)
		if err != nil {
			return err
		}
		fmt.Printf("tracked %q (merged): N=%d Xsum=%d Xsumsq=%d var=%d sd=%d median-marker=%d\n",
			tc.Track, m.N, m.Xsum, m.Xsumsq, m.Var, m.SD, m.Median)
	}
	return nil
}

// printHeavyHitters renders the candidate table, heaviest first.
func printHeavyHitters(entries []stat4p4.HHEntry, rejected uint64, sampleShift uint) {
	fmt.Printf("tracked \"hh\": %d candidates promoted, %d recirculations rejected (table full)\n",
		len(entries), rejected)
	for i, e := range entries {
		if i == 10 {
			fmt.Printf("  ... %d more\n", len(entries)-10)
			break
		}
		fmt.Printf("  %v: %d promotions (≈%d packets at 2^-%d sampling)\n",
			packet.IP4(e.Key), e.Count, e.Count<<sampleShift, sampleShift)
	}
}

// printDigests renders the drained digests, decoding each ID's layout.
func printDigests(alerts []p4.Digest) {
	fmt.Printf("%d alert digests\n", len(alerts))
	for i, d := range alerts {
		if i == 10 {
			fmt.Printf("  ... %d more\n", len(alerts)-10)
			break
		}
		switch d.ID {
		case stat4p4.DigestEntropy:
			fmt.Printf("  [%0.3fs] entropy collapse: slot=%d T=%d H*T=%d h0*T=%d\n",
				float64(d.Values[4])/1e9, d.Values[0], d.Values[1], d.Values[2], d.Values[3])
		case stat4p4.DigestHeavyHitter:
			fmt.Printf("  [%0.3fs] heavy hitter promoted: slot=%d key=%v\n",
				float64(d.Values[2])/1e9, d.Values[0], packet.IP4(d.Values[1]))
		default:
			fmt.Printf("  [%0.3fs] slot=%d value=%d N*x=%d threshold=%d\n",
				float64(d.Values[4])/1e9, d.Values[0], d.Values[1], d.Values[2], d.Values[3])
		}
	}
}

// bindSharded applies one -track binding to a sharded runtime.
func bindSharded(sr *stat4p4.ShardedRuntime, tc trackConfig) error {
	var err error
	switch tc.Track {
	case "window":
		_, err = sr.BindWindow(0, 0, stat4p4.AllIPv4(), tc.Shift, tc.Window, tc.K)
	case "dst24":
		_, err = sr.BindFreqDst(0, 0, stat4p4.AllIPv4(), 8, tc.Base, 256, 1, 1, tc.K)
	case "proto":
		_, err = sr.BindFreqProto(0, 0, stat4p4.AllIPv4(), 0, 256, 1, 1, tc.K)
	case "len":
		_, err = sr.BindFreqLen(0, 0, stat4p4.AllIPv4(), 6, 0, 256, 1, 1, tc.K)
	case "entropy":
		_, err = sr.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 8, tc.Base, 256, entropyH0(sr.Library(), tc.H0Bits), tc.CheckEvery)
	case "hh":
		_, err = sr.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 0, tc.SampleShift)
	default:
		err = fmt.Errorf("unknown -track %q", tc.Track)
	}
	return err
}

// replayRing replays the capture through the stat4d ingest plane: frames go
// producer → MPSC ring → consumer → sharded datapath, losslessly (AddWait),
// and the end-of-run measures come from the engine's merged control-plane
// reads. The numbers must match what replaySharded prints for the same
// capture — the ring is invisible to the statistics.
func replayRing(path string, tc trackConfig, shards int, prom bool, jsonPath string) error {
	lib := stat4p4.Build(tc.options())
	sr, err := stat4p4.NewShardedRuntime(lib, shards)
	if err != nil {
		return err
	}
	defer sr.Close()
	if err := bindSharded(sr, tc); err != nil {
		return err
	}

	e := ingest.New(sr, ingest.Config{})
	frames, err := e.PlaySource(path, 1, true)
	if err != nil {
		e.Stop()
		return err
	}
	e.Stop() // drains every committed batch before returning

	st := sr.Sharded().Stats()
	fmt.Printf("replayed %d frames through the ingest ring (%d parse errors) over %d shards\n",
		frames, st.ParseErrors, shards)
	for i := 0; i < shards; i++ {
		fmt.Printf("  shard %d: %d frames\n", i, sr.Sharded().Shard(i).Stats().PktsIn)
	}
	if sb, sf := e.Shed(); sb != 0 || sf != 0 {
		return fmt.Errorf("lossless replay shed %d batches / %d frames", sb, sf)
	}
	if err := reportMerged(sr, tc, shards); err != nil {
		return err
	}
	alerts, total := e.Alerts()
	fmt.Printf("%d alerts total, last %d retained:\n", total, len(alerts))
	printDigests(alerts)
	if prom {
		if err := e.WriteProm(os.Stdout); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := e.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// replayBatchSize bounds how many capture frames are handed to the switch
// per ProcessBatch call; digests are drained between batches so the channel
// never backs up on alert-heavy traces.
const replayBatchSize = 256

// replayThrough streams the capture into a prepared runtime in batches and
// reports.
func replayThrough(path string, rt *stat4p4.Runtime, tc trackConfig, rm *replayMetrics) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	sw := rt.Switch()
	if rm != nil {
		rm.attach(sw)
	}
	r := packet.NewPcapReader(f)
	frames := 0
	var firstTs, lastTs uint64
	var alerts []p4.Digest
	drain := func() {
		for {
			select {
			case d := <-sw.Digests():
				alerts = append(alerts, d)
				if rm != nil {
					rm.sw.DigestDelivered()
				}
				continue
			default:
			}
			break
		}
	}
	batch := make([]p4.FrameIn, 0, replayBatchSize)
	flush := func() {
		sw.ProcessBatch(batch, nil)
		drain()
		batch = batch[:0]
	}
	for {
		ts, frame, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if frames == 0 {
			firstTs = ts
		}
		lastTs = ts
		batch = append(batch, p4.FrameIn{TsNs: ts, Port: 1, Data: frame})
		if len(batch) == replayBatchSize {
			flush()
		}
		frames++
	}
	flush()

	st := sw.Stats()
	fmt.Printf("replayed %d frames spanning %.3fs (%d parse errors)\n",
		frames, float64(lastTs-firstTs)/1e9, st.ParseErrors)
	switch tc.Track {
	case "entropy":
		es, err := rt.ReadEntropy(0)
		if err != nil {
			return err
		}
		fmt.Printf("tracked \"entropy\": T=%d S=%d → %.4f bits\n", es.Total, es.Sum, es.Bits)
	case "hh":
		entries, err := rt.ReadHeavyHitters(0)
		if err != nil {
			return err
		}
		rejected, err := rt.HHRejected(0)
		if err != nil {
			return err
		}
		fmt.Printf("%d recirculations\n", st.Recirculated)
		printHeavyHitters(entries, rejected, tc.SampleShift)
	default:
		m, _ := rt.ReadMoments(0)
		fmt.Printf("tracked %q: N=%d Xsum=%d Xsumsq=%d var=%d sd=%d median-marker=%d\n",
			tc.Track, m.N, m.Xsum, m.Xsumsq, m.Var, m.SD, m.Median)
	}
	printDigests(alerts)
	return nil
}
