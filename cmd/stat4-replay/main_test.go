package main

import (
	"path/filepath"
	"strings"
	"testing"

	"stat4/internal/telemetry"
)

// TestMetricsSmoke is the metrics-smoke gate (`make metrics-smoke`): record a
// small synthetic capture, replay it with telemetry attached, and assert the
// exposition parses under the telemetry package's own validator and contains
// the digest-latency quantiles computed by the Stat4 percentile markers.
func TestMetricsSmoke(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.pcap")
	if err := recordTrace(trace, 0.5); err != nil {
		t.Fatal(err)
	}

	rm := newReplayMetrics()
	if err := replay(trace, trackConfig{Track: "window", Shift: 23, Window: 20, K: 2}, rm); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := rm.reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	n, err := telemetry.ValidateExposition(out)
	if err != nil {
		t.Fatalf("replay exposition invalid: %v\n%s", err, out)
	}
	if n == 0 {
		t.Fatal("no samples in replay exposition")
	}
	for _, want := range []string{
		"stat4_replay_packet_cost_ns{quantile=\"0.5\"}",
		"stat4_replay_digest_latency_ns{quantile=\"0.5\"}",
		"stat4_replay_digest_latency_ns{quantile=\"0.99\"}",
		"stat4_replay_pkts_in",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if rm.sw.Cost.Count() == 0 {
		t.Fatal("no packet costs recorded")
	}
	// The recorded capture contains a spike, so the window app emits
	// digests and the drain loop pairs them with their emit stamps.
	if rm.sw.Delivered() == 0 || rm.sw.DigestWait.Count() == 0 {
		t.Fatalf("no digest latencies recorded: delivered=%d waits=%d",
			rm.sw.Delivered(), rm.sw.DigestWait.Count())
	}
}
