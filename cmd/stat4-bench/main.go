// Command stat4-bench turns `go test -bench -benchmem` output into the
// BENCH_<n>.json artifacts the repo commits alongside performance work. It
// parses the standard benchmark result lines, averages repeated -count runs,
// and — when given a -baseline file in the same format — records the before
// numbers and the relative change next to each benchmark.
//
//	go test -run='^$' -bench 'Switch' -benchmem -count 3 . | stat4-bench -o BENCH_1.json
//	stat4-bench -baseline bench_before.txt -o BENCH_1.json bench_after.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's averaged measurements. Baseline fields are
// pointers serialized WITHOUT omitempty: a benchmark absent from the
// -baseline file shows an explicit `"baseline_ns_op": null` rather than a
// silently missing key, so artifact consumers can tell "no baseline existed"
// apart from "field not produced by this tool version".
type Result struct {
	Name     string  `json:"name"`
	NsOp     float64 `json:"ns_op"`
	AllocsOp float64 `json:"allocs_op"`
	BytesOp  float64 `json:"bytes_op"`

	BaselineNsOp     *float64 `json:"baseline_ns_op"`
	BaselineAllocsOp *float64 `json:"baseline_allocs_op"`
	// NsDeltaPct is (ns_op - baseline_ns_op) / baseline_ns_op * 100;
	// negative means faster than the baseline. Omitted (nil) when the
	// baseline is zero or not finite: a relative change against a zero
	// baseline is undefined, and NaN/Inf would make the whole artifact
	// unmarshalable (encoding/json rejects them).
	NsDeltaPct *float64 `json:"ns_delta_pct,omitempty"`
	// AllocsDeltaPct is the same relative change for allocs/op, with the
	// same zero-baseline omission — zero-alloc benchmarks (the common case
	// here) keep a baseline of 0 and no delta rather than a fabricated one.
	AllocsDeltaPct *float64 `json:"allocs_delta_pct,omitempty"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("stat4-bench: ")
	out := flag.String("o", "BENCH_1.json", "output JSON path (- for stdout)")
	baseline := flag.String("baseline", "", "baseline bench output to diff against")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		log.Fatal("usage: stat4-bench [-baseline before.txt] [-o out.json] [after.txt]")
	}

	results, err := parseBench(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark result lines found in input")
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		base, err := parseBench(f)
		f.Close()
		if err != nil {
			log.Fatalf("baseline: %v", err)
		}
		merge(results, base)
	}

	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(results), *out)
}

// parseBench reads `go test -bench` output and averages repeated runs of the
// same benchmark. Lines that are not result lines (pass/fail summaries,
// subprocess noise) are skipped.
func parseBench(r io.Reader) ([]*Result, error) {
	type acc struct {
		r *Result
		n int
	}
	byName := map[string]*acc{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		a := byName[res.Name]
		if a == nil {
			a = &acc{r: res}
			byName[res.Name] = a
			order = append(order, res.Name)
			a.n = 1
			continue
		}
		a.r.NsOp += res.NsOp
		a.r.AllocsOp += res.AllocsOp
		a.r.BytesOp += res.BytesOp
		a.n++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	results := make([]*Result, 0, len(order))
	for _, name := range order {
		a := byName[name]
		a.r.NsOp /= float64(a.n)
		a.r.AllocsOp /= float64(a.n)
		a.r.BytesOp /= float64(a.n)
		results = append(results, a.r)
	}
	return results, nil
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkSwitchFreqUpdate-8  681088  1750 ns/op  168 B/op  4 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so runs from machines with different
// core counts merge under one name.
func parseLine(line string) (*Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return nil, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := &Result{Name: strings.TrimPrefix(name, "Benchmark")}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsOp = v
			seenNs = true
		case "B/op":
			res.BytesOp = v
		case "allocs/op":
			res.AllocsOp = v
		}
	}
	return res, seenNs
}

// merge attaches baseline numbers and relative deltas to matching results.
func merge(results, base []*Result) {
	byName := map[string]*Result{}
	for _, b := range base {
		byName[b.Name] = b
	}
	for _, r := range results {
		b := byName[r.Name]
		if b == nil {
			continue
		}
		ns, allocs := b.NsOp, b.AllocsOp
		r.BaselineNsOp = &ns
		r.BaselineAllocsOp = &allocs
		r.NsDeltaPct = deltaPct(r.NsOp, ns)
		r.AllocsDeltaPct = deltaPct(r.AllocsOp, allocs)
	}
	sort.SliceStable(results, func(i, j int) bool {
		// Benchmarks with a baseline (the ones a PR is arguing about)
		// sort first — keyed on the baseline itself, not the delta, so a
		// zero-ns baseline row still sorts with its peers.
		return (results[i].BaselineNsOp != nil) && (results[j].BaselineNsOp == nil)
	})
}

// deltaPct returns the relative change in percent, or nil when the baseline
// is zero or either value is not finite — cases where the ratio is undefined
// and would poison the JSON artifact with NaN/Inf.
func deltaPct(after, before float64) *float64 {
	if before == 0 || math.IsNaN(before) || math.IsInf(before, 0) ||
		math.IsNaN(after) || math.IsInf(after, 0) {
		return nil
	}
	d := (after - before) / before * 100
	if math.IsNaN(d) || math.IsInf(d, 0) {
		return nil
	}
	return &d
}
