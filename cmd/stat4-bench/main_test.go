package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: stat4
BenchmarkEchoValidation-8   	  500000	      2170 ns/op	     208 B/op	       3 allocs/op
BenchmarkEchoValidation-8   	  500000	      2130 ns/op	     208 B/op	       3 allocs/op
BenchmarkSwitchFreqUpdate-8 	  700000	      1750 ns/op	     168 B/op	       4 allocs/op
BenchmarkCaseStudy-8        	       2	 600000000 ns/op
PASS
ok  	stat4	12.3s
`

func TestParseBench(t *testing.T) {
	results, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	echo := results[0]
	if echo.Name != "EchoValidation" {
		t.Fatalf("first result %q, want EchoValidation", echo.Name)
	}
	if echo.NsOp != 2150 {
		t.Fatalf("repeated runs not averaged: ns_op %v, want 2150", echo.NsOp)
	}
	if echo.AllocsOp != 3 || echo.BytesOp != 208 {
		t.Fatalf("allocs/bytes wrong: %+v", echo)
	}
	if results[2].Name != "CaseStudy" || results[2].NsOp != 6e8 {
		t.Fatalf("line without -benchmem columns mis-parsed: %+v", results[2])
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"PASS",
		"ok  	stat4	12.3s",
		"goos: linux",
		"Benchmark",
		"BenchmarkX-8 12 garbage ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine accepted %q", line)
		}
	}
}

func TestMerge(t *testing.T) {
	after, err := parseBench(strings.NewReader(
		"BenchmarkSwitchFreqUpdate-8 1000000 500 ns/op 0 B/op 0 allocs/op\n" +
			"BenchmarkNewOne-8 1000 100 ns/op 0 B/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	before, err := parseBench(strings.NewReader(
		"BenchmarkSwitchFreqUpdate-4 700000 1000 ns/op 168 B/op 4 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	merge(after, before)

	freq := after[0]
	if freq.Name != "SwitchFreqUpdate" {
		t.Fatalf("baselined benchmark should sort first, got %q", freq.Name)
	}
	if freq.BaselineNsOp == nil || *freq.BaselineNsOp != 1000 {
		t.Fatalf("baseline ns not attached: %+v", freq)
	}
	if freq.NsDeltaPct == nil || *freq.NsDeltaPct != -50 {
		t.Fatalf("delta wrong: %+v", freq.NsDeltaPct)
	}
	if after[1].BaselineNsOp != nil {
		t.Fatal("benchmark missing from baseline must not get fabricated numbers")
	}
	if freq.AllocsDeltaPct == nil || *freq.AllocsDeltaPct != -100 {
		t.Fatalf("allocs delta wrong: %+v", freq.AllocsDeltaPct)
	}
}

// A zero-valued baseline (a benchmark so fast it rounds to 0 ns/op, or a
// zero-alloc baseline) must yield nil deltas — not ±Inf/NaN, which
// encoding/json refuses to marshal — while still attaching the baseline
// numbers and sorting the row with the other baselined benchmarks.
func TestMergeZeroBaseline(t *testing.T) {
	after, err := parseBench(strings.NewReader(
		"BenchmarkUnbaselined-8 1000 100 ns/op 0 B/op 0 allocs/op\n" +
			"BenchmarkZeroBase-8 1000000 500 ns/op 16 B/op 2 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	before, err := parseBench(strings.NewReader(
		"BenchmarkZeroBase-8 1000000000 0 ns/op 0 B/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	merge(after, before)

	zb := after[0]
	if zb.Name != "ZeroBase" {
		t.Fatalf("baselined benchmark should sort first even with a zero baseline, got %q", zb.Name)
	}
	if zb.BaselineNsOp == nil || *zb.BaselineNsOp != 0 {
		t.Fatalf("zero baseline ns not attached: %+v", zb)
	}
	if zb.NsDeltaPct != nil {
		t.Fatalf("zero-ns baseline must omit the ns delta, got %v", *zb.NsDeltaPct)
	}
	if zb.AllocsDeltaPct != nil {
		t.Fatalf("zero-alloc baseline must omit the allocs delta, got %v", *zb.AllocsDeltaPct)
	}
	if _, err := json.Marshal(after); err != nil {
		t.Fatalf("artifact with zero-valued baseline must marshal: %v", err)
	}
}

// A benchmark with no baseline must serialize an explicit
// `"baseline_ns_op": null` (not drop the key) and sort after every baselined
// row, so artifact readers see the absence instead of inferring it.
func TestNoBaselineSerializesNull(t *testing.T) {
	after, err := parseBench(strings.NewReader(
		"BenchmarkNewOne-8 1000 100 ns/op 0 B/op 0 allocs/op\n" +
			"BenchmarkTracked-8 1000000 500 ns/op 0 B/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	before, err := parseBench(strings.NewReader(
		"BenchmarkTracked-8 700000 1000 ns/op 0 B/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	merge(after, before)

	if after[len(after)-1].Name != "NewOne" {
		t.Fatalf("no-baseline benchmark must sort last, order: %q, %q", after[0].Name, after[1].Name)
	}
	blob, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(blob, &rows); err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	for _, key := range []string{"baseline_ns_op", "baseline_allocs_op"} {
		raw, present := last[key]
		if !present {
			t.Fatalf("no-baseline row omits %q entirely, want explicit null:\n%s", key, blob)
		}
		if string(raw) != "null" {
			t.Fatalf("no-baseline row %s = %s, want null", key, raw)
		}
	}
	if _, present := last["ns_delta_pct"]; present {
		t.Fatal("no-baseline row must not carry a delta")
	}
}

func TestDeltaPct(t *testing.T) {
	if d := deltaPct(150, 100); d == nil || *d != 50 {
		t.Fatalf("deltaPct(150,100) = %v, want 50", d)
	}
	for _, c := range []struct{ after, before float64 }{
		{100, 0}, {0, 0},
	} {
		if d := deltaPct(c.after, c.before); d != nil {
			t.Fatalf("deltaPct(%v,%v) = %v, want nil", c.after, c.before, *d)
		}
	}
}
