// Command stat4-dump prints the emitted Stat4 P4 program as a readable
// pseudo-P4 listing together with its resource report — useful for
// inspecting what the emitter actually generates.
//
//	stat4-dump -slots 8 -size 256 -stages 2
//	stat4-dump -strict -report-only
package main

import (
	"flag"
	"fmt"

	"stat4/internal/p4"
	"stat4/internal/stat4p4"
)

func main() {
	slots := flag.Int("slots", 2, "STAT_COUNTER_NUM: simultaneous distributions")
	size := flag.Int("size", 128, "STAT_COUNTER_SIZE: cells per distribution")
	stages := flag.Int("stages", 2, "binding stages")
	echo := flag.Bool("echo", false, "include the echo application")
	strict := flag.Bool("strict", false, "emit for the multiplication-free target")
	reportOnly := flag.Bool("report-only", false, "print only the resource report")
	sparse := flag.Bool("sparse", false, "include the sparse (hash-bucket) tracking mode")
	emitP4 := flag.Bool("p416", false, "emit P4-16 source for the v1model architecture instead of the IR listing")
	flag.Parse()

	opts := stat4p4.Options{Slots: *slots, Size: *size, Stages: *stages, Echo: *echo, Strict: *strict, Sparse: *sparse}
	lib := stat4p4.Build(opts)
	if *emitP4 {
		fmt.Print(stat4p4.EmitP416(lib))
		return
	}
	if !*reportOnly {
		fmt.Print(p4.Format(lib.Prog))
		fmt.Println()
	}
	r := p4.AnalyzeProgram(lib.Prog)
	fmt.Printf("resources: %d fields, %d actions, %d tables, %d registers\n",
		r.NumFields, r.NumActions, r.NumTables, r.NumRegisters)
	fmt.Printf("           %d register bytes + %d table bytes = %.1f KB\n",
		r.RegisterBytes, r.TableBytes, float64(r.TotalBytes)/1024)
	fmt.Printf("           match-rule dependencies: %d, longest dependency chain: %d\n",
		r.MatchRuleDependencies, r.LongestDepChain)
}
