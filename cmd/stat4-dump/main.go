// Command stat4-dump prints the emitted Stat4 P4 program as a readable
// pseudo-P4 listing together with its resource report — useful for
// inspecting what the emitter actually generates.
//
//	stat4-dump -slots 8 -size 256 -stages 2
//	stat4-dump -strict -report-only
//	stat4-dump -resources                  # stage placement against the target model
//	stat4-dump -resources -target configs/lint-target.json
//	stat4-dump -slots 1 -size 64 -stages 1 -flow-table 1024 -resources   # "flowtable" catalog shape
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stat4/internal/p4"
	"stat4/internal/stat4p4"
)

func main() {
	slots := flag.Int("slots", 2, "STAT_COUNTER_NUM: simultaneous distributions")
	size := flag.Int("size", 128, "STAT_COUNTER_SIZE: cells per distribution")
	stages := flag.Int("stages", 2, "binding stages")
	echo := flag.Bool("echo", false, "include the echo application")
	strict := flag.Bool("strict", false, "emit for the multiplication-free target")
	reportOnly := flag.Bool("report-only", false, "print only the resource report")
	sparse := flag.Bool("sparse", false, "include the sparse (hash-bucket) tracking mode")
	flowTable := flag.Int("flow-table", 0, "include the sparse flow-table mode with this many buckets (power of two >= 4; 0 disables)")
	hh := flag.Bool("hh", false, "include the heavy-hitter promotion mode")
	noVariance := flag.Bool("no-variance", false, "drop the variance/sqrt/alert logic (counting-only program)")
	emitP4 := flag.Bool("p416", false, "emit P4-16 source for the v1model architecture instead of the IR listing")
	resources := flag.Bool("resources", false, "print the stage placement against the target model instead of the listing")
	target := flag.String("target", "", "target-model JSON for -resources (default: the built-in pisa-3pass model)")
	flag.Parse()

	opts := stat4p4.Options{Slots: *slots, Size: *size, Stages: *stages, Echo: *echo, Strict: *strict, Sparse: *sparse,
		HeavyHitter: *hh, NoVariance: *noVariance}
	if *flowTable > 0 {
		if *flowTable < 4 || *flowTable&(*flowTable-1) != 0 {
			fmt.Fprintf(os.Stderr, "flow-table buckets %d: need a power of two >= 4\n", *flowTable)
			os.Exit(2)
		}
		opts.FlowTable = true
		opts.FlowTableSize = *flowTable
	}
	lib := stat4p4.Build(opts)
	if *emitP4 {
		fmt.Print(stat4p4.EmitP416(lib))
		return
	}
	if *resources {
		tm := p4.DefaultTargetModel()
		if *target != "" {
			var err error
			if tm, err = p4.LoadTargetModel(*target); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		rep, err := p4.AllocateStages(lib.Prog, tm)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(formatStageReport(rep))
		if !rep.Fit {
			os.Exit(1)
		}
		return
	}
	if !*reportOnly {
		fmt.Print(p4.Format(lib.Prog))
		fmt.Println()
	}
	printResourceReport(p4.AnalyzeProgram(lib.Prog))
}

func printResourceReport(r p4.ResourceReport) {
	fmt.Printf("resources: %d fields, %d actions, %d tables, %d registers\n",
		r.NumFields, r.NumActions, r.NumTables, r.NumRegisters)
	fmt.Printf("           %d register bytes + %d table bytes = %.1f KB\n",
		r.RegisterBytes, r.TableBytes, float64(r.TotalBytes)/1024)
	fmt.Printf("           match-rule dependencies: %d, longest dependency chain: %d\n",
		r.MatchRuleDependencies, r.LongestDepChain)
}

// formatStageReport renders the stage-placement table: one row per occupied
// stage with its resource use, then the fit verdict against the model and
// the embedded static resource report.
func formatStageReport(rep *p4.StageReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "target %q: %d stages, per stage: %d ALUs, %d hash, %d reg-actions, %d tables, %d KiB SRAM\n",
		rep.Model.Name, rep.Model.Stages, rep.Model.ALUsPerStage, rep.Model.HashUnitsPerStage,
		rep.Model.RegActionsPerStage, rep.Model.TablesPerStage, rep.Model.SRAMPerStageBytes/1024)
	fmt.Fprintf(&b, "%5s  %4s  %4s  %7s  %9s  %s\n", "stage", "alus", "hash", "regacts", "sram", "tables / registers")
	for i, su := range rep.Stages {
		var what []string
		if len(su.Tables) > 0 {
			what = append(what, "tables: "+strings.Join(su.Tables, ","))
		}
		if len(su.Registers) > 0 {
			what = append(what, "regs: "+strings.Join(su.Registers, ","))
		}
		fmt.Fprintf(&b, "%5d  %4d  %4d  %7d  %8dB  %s\n",
			i, su.ALUs, su.HashUnits, su.RegActions, su.SRAMBytes, strings.Join(what, "  "))
	}
	fmt.Fprintf(&b, "stages used: %d of %d", rep.StagesUsed, rep.Model.Stages)
	if rep.Fit {
		b.WriteString("  [fits]\n")
	} else {
		b.WriteString("  [DOES NOT FIT]\n")
		for _, v := range rep.Violations {
			fmt.Fprintf(&b, "  violation: %s\n", v)
		}
	}
	fmt.Fprintf(&b, "resources: %d fields, %d actions, %d tables, %d registers; %d register bytes + %d table bytes; longest chain %d\n",
		rep.NumFields, rep.NumActions, rep.NumTables, rep.NumRegisters,
		rep.RegisterBytes, rep.TableBytes, rep.LongestDepChain)
	return b.String()
}
