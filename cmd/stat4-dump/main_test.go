package main

import (
	"strings"
	"testing"

	"stat4/internal/p4"
	"stat4/internal/stat4p4"
)

// The -resources rendering: a fitting program prints one row per occupied
// stage, the verdict, and the embedded resource report.
func TestFormatStageReportFits(t *testing.T) {
	lib := stat4p4.Build(stat4p4.DefaultOptions)
	rep, err := p4.AllocateStages(lib.Prog, p4.DefaultTargetModel())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Fit {
		t.Fatalf("default program must fit the default model: %v", rep.Violations)
	}
	out := formatStageReport(rep)
	if !strings.Contains(out, "[fits]") {
		t.Errorf("verdict line missing from:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < rep.StagesUsed+3 {
		t.Errorf("expected a row per stage (%d) plus header/verdict lines, got %d lines", rep.StagesUsed, got)
	}
	if !strings.Contains(out, "regs: stat.counters") {
		t.Errorf("register placement missing from:\n%s", out)
	}
	if !strings.Contains(out, "resources: ") {
		t.Errorf("resource report missing from:\n%s", out)
	}
}

// The flow-table catalog shapes place their register pairs and fit the
// default target — what `stat4-dump -flow-table 1024 -resources` shows.
func TestFormatStageReportFlowTable(t *testing.T) {
	for _, opts := range []stat4p4.Options{
		{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: 1024},
		{Slots: 2, Size: 256, Stages: 1, FlowTable: true, FlowTableSize: 4096, HeavyHitter: true, NoVariance: true},
	} {
		lib := stat4p4.Build(opts)
		rep, err := p4.AllocateStages(lib.Prog, p4.DefaultTargetModel())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Fit {
			t.Fatalf("flow-table program %+v must fit the default model: %v", opts, rep.Violations)
		}
		out := formatStageReport(rep)
		for _, reg := range []string{"stat.ftkeys", "stat.ftstamp", "stat.ftcnt"} {
			if !strings.Contains(out, reg) {
				t.Errorf("flow-table register %s missing from placement:\n%s", reg, out)
			}
		}
	}
}

// An over-budget placement renders its verdict and names the violations.
func TestFormatStageReportOverBudget(t *testing.T) {
	lib := stat4p4.Build(stat4p4.DefaultOptions)
	tm := p4.DefaultTargetModel()
	tm.Stages = 4
	rep, err := p4.AllocateStages(lib.Prog, tm)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Fit {
		t.Fatal("default program cannot fit 4 stages")
	}
	out := formatStageReport(rep)
	if !strings.Contains(out, "[DOES NOT FIT]") || !strings.Contains(out, "violation: ") {
		t.Errorf("over-budget report lacks verdict or violations:\n%s", out)
	}
}
