// Command stat4d runs the Stat4 switch as a long-lived daemon: any number of
// ingest streams (pcap sources, TCP or unix-socket frame feeds) fan through a
// lock-free MPSC ring into the sharded datapath, while an HTTP control plane
// serves telemetry, merged register snapshots, drill-down counter reads,
// binding updates and the alert log. SIGTERM/SIGINT drains the ring before
// exit so every committed frame reaches the statistics.
//
//	stat4d -shards 4 -listen :9414 -http :9415 -track dst24 -k 2
//	stat4d -http :9415 -pcap trace.pcap            # play a capture and serve
//	stat4d -push trace.pcap -connect host:9414     # client: stream a capture
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"

	"stat4/internal/ingest"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stat4d: ")

	var cfg daemonConfig
	flag.IntVar(&cfg.Shards, "shards", 1, "replicate the datapath over N flow-hash shards")
	flag.StringVar(&cfg.Listen, "listen", "", "TCP address accepting length-prefixed frame streams")
	flag.StringVar(&cfg.Unix, "unix", "", "unix socket path accepting frame streams")
	flag.StringVar(&cfg.HTTP, "http", "", "HTTP control-plane address (/metrics, /snapshot, /bind, ...)")
	flag.StringVar(&cfg.Pcap, "pcap", "", "pcap file or directory to play at startup (lossless)")
	flag.StringVar(&cfg.Track, "track", "dst24", "statistic to bind: window | dst24 | proto | len | entropy | hh | flow | none")
	flag.UintVar(&cfg.Shift, "interval-shift", 23, "window interval exponent (2^shift ns)")
	flag.IntVar(&cfg.Window, "window", 100, "window length in intervals")
	flag.Uint64Var(&cfg.K, "k", 0, "sigma multiplier for the anomaly check (0 disables)")
	flag.StringVar(&cfg.BasePrefix, "base-prefix", "10.0.0.0", "dst24/entropy modes: /16 whose /24 subnets are indexed")
	flag.Float64Var(&cfg.H0Bits, "h0", 0, "entropy mode: alert when the mix drops below this many bits (0 disables)")
	flag.Uint64Var(&cfg.CheckEvery, "check-every", 1024, "entropy mode: check cadence in observations (power of two)")
	flag.UintVar(&cfg.SampleShift, "sample-shift", 6, "hh mode: recirculation probability 2^-shift")
	flag.IntVar(&cfg.FlowTable, "flow-table", 0, "sparse flow-table buckets per slot (power of two, 0 disables the flow plane)")
	flag.UintVar(&cfg.FlowEpochShift, "flow-epoch-shift", 23, "flow mode: expiry epoch exponent (2^shift ns)")
	flag.Uint64Var(&cfg.FlowTTL, "flow-ttl", 4, "flow mode: epochs of silence before an entry is reclaimable")
	flag.IntVar(&cfg.RingCap, "ring-cap", 256, "ingest ring capacity in batch descriptors")
	flag.IntVar(&cfg.SlabBlocks, "slab-blocks", 256, "frame slab block count")
	flag.IntVar(&cfg.BlockSize, "block-size", 32<<10, "frame slab block size in bytes")
	flag.IntVar(&cfg.Batch, "batch", 256, "frames per batch descriptor")
	push := flag.String("push", "", "client mode: stream this pcap to -connect and exit")
	connect := flag.String("connect", "", "client mode: daemon frame-stream address (host:port or unix path)")
	flag.Parse()

	if *push != "" {
		if err := pushPcap(*push, *connect); err != nil {
			log.Fatal(err)
		}
		return
	}
	d, err := newDaemon(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.start(); err != nil {
		log.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	log.Printf("%v: draining", s)
	d.shutdown()
	st := d.engine.Stats()
	log.Printf("served %d frames in %d batches (%d shed), %d alerts",
		st.Frames, st.Batches, st.ShedFrames, st.AlertsTotal)
}

// daemonConfig is everything a daemon instance needs, flag-free so the smoke
// test constructs one in-process.
type daemonConfig struct {
	Shards     int
	Listen     string // TCP frame-stream address, "" to disable
	Unix       string // unix-socket frame-stream path, "" to disable
	HTTP       string // control-plane address, "" to disable
	Pcap       string // startup capture source, "" to skip
	Track       string
	Shift       uint
	Window      int
	K           uint64
	BasePrefix  string
	H0Bits      float64
	CheckEvery  uint64
	SampleShift uint
	// FlowTable sizes the sparse flow-table plane in buckets per slot
	// (0 leaves it out of the program entirely, keeping the default sizing
	// identical to the "entropy-hh" catalog entry).
	FlowTable      int
	FlowEpochShift uint
	FlowTTL        uint64
	RingCap        int
	SlabBlocks     int
	BlockSize      int
	Batch          int
}

// daemon is one running stat4d instance: the bound sharded runtime, the
// ingest engine in front of it, and the listeners feeding it.
type daemon struct {
	cfg    daemonConfig
	rt     *stat4p4.ShardedRuntime
	engine *ingest.Engine

	listeners []net.Listener
	httpSrv   *http.Server
	httpAddr  string
	conns     sync.WaitGroup
	serving   sync.WaitGroup
}

// newDaemon builds the runtime, applies the -track binding, and wires the
// ingest engine. Listeners are not opened until start.
func newDaemon(cfg daemonConfig) (*daemon, error) {
	if cfg.Shards < 1 {
		return nil, errors.New("shards must be at least 1")
	}
	// The daemon's program carries every measure — the frequency family plus
	// entropy and heavy hitters — so /bind can move between them at runtime
	// without rebuilding; the "entropy-hh" registry entry keeps this sizing
	// under the stage budget. -flow-table grows the program with the sparse
	// flow-table plane, an explicitly chosen larger sizing.
	opts := stat4p4.Options{Slots: 2, Size: 256, Stages: 1, Entropy: true, HeavyHitter: true}
	if cfg.FlowTable > 0 {
		if cfg.FlowTable < 4 || cfg.FlowTable&(cfg.FlowTable-1) != 0 {
			return nil, fmt.Errorf("flow-table buckets %d: need a power of two >= 4", cfg.FlowTable)
		}
		opts.FlowTable = true
		opts.FlowTableSize = cfg.FlowTable
	}
	lib := stat4p4.Build(opts)
	sr, err := stat4p4.NewShardedRuntime(lib, cfg.Shards)
	if err != nil {
		return nil, err
	}
	if err := bindTrack(sr, cfg); err != nil {
		sr.Close()
		return nil, err
	}
	e := ingest.New(sr, ingest.Config{
		RingCap:     cfg.RingCap,
		SlabBlocks:  cfg.SlabBlocks,
		BlockSize:   cfg.BlockSize,
		BatchFrames: cfg.Batch,
	})
	return &daemon{cfg: cfg, rt: sr, engine: e}, nil
}

// bindTrack installs the startup statistic, mirroring stat4-replay's -track
// family. "none" starts unbound; /bind takes it from there.
func bindTrack(sr *stat4p4.ShardedRuntime, cfg daemonConfig) error {
	var err error
	switch cfg.Track {
	case "none":
	case "window":
		_, err = sr.BindWindow(0, 0, stat4p4.AllIPv4(), cfg.Shift, cfg.Window, cfg.K)
	case "dst24":
		var base packet.IP4
		base, err = parseAddr(cfg.BasePrefix)
		if err == nil {
			_, err = sr.BindFreqDst(0, 0, stat4p4.AllIPv4(), 8, uint64(base)>>8, 256, 1, 1, cfg.K)
		}
	case "proto":
		_, err = sr.BindFreqProto(0, 0, stat4p4.AllIPv4(), 0, 256, 1, 1, cfg.K)
	case "len":
		_, err = sr.BindFreqLen(0, 0, stat4p4.AllIPv4(), 6, 0, 256, 1, 1, cfg.K)
	case "entropy":
		var base packet.IP4
		base, err = parseAddr(cfg.BasePrefix)
		if err == nil {
			h0 := entropyH0(sr.Library(), cfg.H0Bits)
			_, err = sr.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 8, uint64(base)>>8, 256, h0, cfg.CheckEvery)
		}
	case "hh":
		_, err = sr.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 0, cfg.SampleShift)
	case "flow":
		_, err = sr.BindFlowSrc(0, 0, stat4p4.AllIPv4(), 0, cfg.FlowEpochShift, cfg.FlowTTL, 0, cfg.K)
	default:
		err = fmt.Errorf("unknown track %q", cfg.Track)
	}
	return err
}

// entropyH0 converts a threshold in bits to the fixed-point form the
// collapse check compares against.
func entropyH0(lib *stat4p4.Library, bits float64) uint64 {
	if bits <= 0 {
		return 0
	}
	return uint64(bits * float64(uint64(1)<<lib.Opts.EntropyFrac))
}

// start opens the listeners and plays the startup capture. It returns once
// everything is accepting; serving continues on background goroutines.
func (d *daemon) start() error {
	if d.cfg.Listen != "" {
		ln, err := net.Listen("tcp", d.cfg.Listen)
		if err != nil {
			return err
		}
		d.listeners = append(d.listeners, ln)
		d.serving.Add(1)
		go d.acceptLoop(ln)
		log.Printf("frame streams on tcp %s", ln.Addr())
	}
	if d.cfg.Unix != "" {
		_ = os.Remove(d.cfg.Unix)
		ln, err := net.Listen("unix", d.cfg.Unix)
		if err != nil {
			return err
		}
		d.listeners = append(d.listeners, ln)
		d.serving.Add(1)
		go d.acceptLoop(ln)
		log.Printf("frame streams on unix %s", d.cfg.Unix)
	}
	if d.cfg.HTTP != "" {
		ln, err := net.Listen("tcp", d.cfg.HTTP)
		if err != nil {
			return err
		}
		d.httpSrv = &http.Server{Handler: d.mux()}
		d.httpAddr = ln.Addr().String()
		d.serving.Add(1)
		go func() {
			defer d.serving.Done()
			if err := d.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("http: %v", err)
			}
		}()
		log.Printf("control plane on http://%s", ln.Addr())
	}
	if d.cfg.Pcap != "" {
		n, err := d.engine.PlaySource(d.cfg.Pcap, 1, true)
		if err != nil {
			return fmt.Errorf("pcap source: %w", err)
		}
		log.Printf("played %d frames from %s", n, d.cfg.Pcap)
	}
	return nil
}

// acceptLoop serves one listener until it is closed by shutdown.
func (d *daemon) acceptLoop(ln net.Listener) {
	defer d.serving.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		d.conns.Add(1)
		go func() {
			defer d.conns.Done()
			defer conn.Close()
			n, err := d.engine.ServeConn(conn)
			if err != nil {
				log.Printf("stream %s: %v after %d records", conn.RemoteAddr(), err, n)
			}
		}()
	}
}

// shutdown is the drain sequence: stop accepting, wait for in-flight
// streams, stop the engine (drains the ring), then close the runtime.
func (d *daemon) shutdown() {
	for _, ln := range d.listeners {
		ln.Close()
	}
	if d.httpSrv != nil {
		d.httpSrv.Shutdown(context.Background())
	}
	d.conns.Wait()
	d.serving.Wait()
	d.engine.Stop()
	d.rt.Close()
	if d.cfg.Unix != "" {
		_ = os.Remove(d.cfg.Unix)
	}
}

// mux routes the control plane. Every handler reads through Engine.Do, so
// nothing here ever races a batch in flight.
func (d *daemon) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := d.engine.WriteProm(w); err != nil {
			log.Printf("metrics: %v", err)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := d.engine.WriteJSON(w); err != nil {
			log.Printf("metrics.json: %v", err)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.engine.Stats())
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, d.engine.MergedSnapshot())
	})
	mux.HandleFunc("/moments", func(w http.ResponseWriter, r *http.Request) {
		slot, err := intParam(r, "slot", 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		m, err := d.engine.MergedMoments(slot)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, m)
	})
	mux.HandleFunc("/counters", func(w http.ResponseWriter, r *http.Request) {
		slot, err := intParam(r, "slot", 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		n, err := intParam(r, "n", 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		cells, err := d.engine.MergedCounters(slot, n)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{"slot": slot, "cells": cells})
	})
	mux.HandleFunc("/alerts", func(w http.ResponseWriter, r *http.Request) {
		recent, total := d.engine.Alerts()
		type alert struct {
			Slot      uint64 `json:"slot"`
			Value     uint64 `json:"value"`
			Nx        uint64 `json:"n_times_x"`
			Threshold uint64 `json:"threshold"`
			TsNs      uint64 `json:"ts_ns"`
		}
		out := struct {
			Total  uint64  `json:"total"`
			Recent []alert `json:"recent"`
		}{Total: total}
		for _, dg := range recent {
			if len(dg.Values) < 5 {
				continue
			}
			out.Recent = append(out.Recent, alert{
				Slot: dg.Values[0], Value: dg.Values[1],
				Nx: dg.Values[2], Threshold: dg.Values[3], TsNs: dg.Values[4],
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/entropy", func(w http.ResponseWriter, r *http.Request) {
		slot, err := intParam(r, "slot", 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		var snap stat4p4.EntropySnapshot
		d.engine.Do(func() {
			snap, err = d.engine.Runtime().MergedEntropy(slot)
		})
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]any{
			"slot": slot, "total": snap.Total, "sum": snap.Sum,
			"scaled_bits": snap.ScaledBits, "bits": snap.Bits,
		})
	})
	mux.HandleFunc("/heavyhitters", func(w http.ResponseWriter, r *http.Request) {
		slot, err := intParam(r, "slot", 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		var entries []stat4p4.HHEntry
		var rejected uint64
		d.engine.Do(func() {
			sr := d.engine.Runtime()
			entries, err = sr.MergedHeavyHitters(slot)
			if err == nil {
				for i := 0; i < sr.NumShards(); i++ {
					var rej uint64
					rej, err = sr.ShardRuntime(i).HHRejected(slot)
					if err != nil {
						return
					}
					rejected += rej
				}
			}
		})
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		type hh struct {
			Key   string `json:"key"` // dotted quad of the (unshifted) key
			Raw   uint64 `json:"raw_key"`
			Count uint64 `json:"count"`
		}
		out := struct {
			Slot     int    `json:"slot"`
			Rejected uint64 `json:"rejected"`
			Entries  []hh   `json:"entries"`
		}{Slot: slot, Rejected: rejected}
		for _, e := range entries {
			out.Entries = append(out.Entries, hh{
				Key: packet.IP4(e.Key).String(), Raw: e.Key, Count: e.Count,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/flows", func(w http.ResponseWriter, r *http.Request) {
		slot, err := intParam(r, "slot", 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		n, err := intParam(r, "n", 0)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		var stats stat4p4.FlowStats
		var entries []stat4p4.FlowEntry
		d.engine.Do(func() {
			sr := d.engine.Runtime()
			stats, err = sr.MergedFlowStats(slot)
			if err == nil {
				entries, err = sr.MergedFlows(slot)
			}
		})
		if err != nil {
			httpErr(w, http.StatusBadRequest, err)
			return
		}
		if n > 0 && len(entries) > n {
			entries = entries[:n]
		}
		type flow struct {
			Key   string `json:"key"` // dotted quad of the key's low 32 bits
			Raw   uint64 `json:"raw_key"`
			Count uint64 `json:"count"`
			Stamp uint64 `json:"stamp"`
		}
		out := struct {
			Slot       int     `json:"slot"`
			Capacity   uint64  `json:"capacity"`
			Occupied   uint64  `json:"occupied"`
			LoadFactor float64 `json:"load_factor"`
			Admitted   uint64  `json:"admitted"`
			Evicted    uint64  `json:"evicted"`
			Rejected   uint64  `json:"rejected"`
			Shed       uint64  `json:"shed"`
			Flows      []flow  `json:"flows"`
		}{
			Slot: slot, Capacity: stats.Capacity, Occupied: stats.Occupied,
			Admitted: stats.Admitted, Evicted: stats.Evicted,
			Rejected: stats.Rejected, Shed: stats.Shed,
		}
		if stats.Capacity > 0 {
			out.LoadFactor = float64(stats.Occupied) / float64(stats.Capacity)
		}
		for _, e := range entries {
			out.Flows = append(out.Flows, flow{
				Key: packet.IP4(uint32(e.Key)).String(), Raw: e.Key,
				Count: e.Count, Stamp: e.Stamp,
			})
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/bind", d.handleBind)
	return mux
}

// bindRequest is the /bind POST body — the -track family as a wire message,
// plus unbind and slot reset.
type bindRequest struct {
	Mode  string `json:"mode"` // window | dst24 | proto | len | entropy | hh | flow | unbind | reset
	Stage int    `json:"stage"`
	Slot  int    `json:"slot"`
	// Window parameters.
	IntervalShift uint `json:"interval_shift"`
	Window        int  `json:"window"`
	// Frequency parameters.
	Base string `json:"base"` // dst24/entropy: dotted-quad /16 base
	Size int    `json:"size"`
	Pa   uint64 `json:"pa"`
	Pb   uint64 `json:"pb"`
	K    uint64 `json:"k"`
	// Entropy parameters.
	H0Bits     float64 `json:"h0_bits"`     // collapse threshold in bits (0 disables)
	CheckEvery uint64  `json:"check_every"` // power of two, 0 → every observation
	// Heavy-hitter parameter.
	SampleShift uint `json:"sample_shift"` // recirculation probability 2^-shift
	// Flow-table parameters (sample_shift doubles as the mouse-shedding coin).
	EpochShift uint   `json:"epoch_shift"` // expiry epoch exponent (2^shift ns)
	TTL        uint64 `json:"ttl"`         // epochs of silence before reclaim
	// Unbind target.
	Entry uint64 `json:"entry"`
}

// handleBind applies one control-plane table update on the consumer, exactly
// like a controller reprogramming a running switch.
func (d *daemon) handleBind(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req bindRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	if req.Size <= 0 {
		req.Size = 256
	}
	if req.Pa == 0 && req.Pb == 0 {
		req.Pa, req.Pb = 1, 1
	}
	if req.Window <= 0 {
		req.Window = 100
	}
	if req.IntervalShift == 0 {
		req.IntervalShift = 23
	}
	var id p4.EntryID
	var err error
	d.engine.Do(func() {
		sr := d.engine.Runtime()
		switch req.Mode {
		case "window":
			id, err = sr.BindWindow(req.Stage, req.Slot, stat4p4.AllIPv4(), req.IntervalShift, req.Window, req.K)
		case "dst24":
			base := req.Base
			if base == "" {
				base = "10.0.0.0"
			}
			var ip packet.IP4
			ip, err = parseAddr(base)
			if err == nil {
				id, err = sr.BindFreqDst(req.Stage, req.Slot, stat4p4.AllIPv4(), 8, uint64(ip)>>8, req.Size, req.Pa, req.Pb, req.K)
			}
		case "proto":
			id, err = sr.BindFreqProto(req.Stage, req.Slot, stat4p4.AllIPv4(), 0, req.Size, req.Pa, req.Pb, req.K)
		case "len":
			id, err = sr.BindFreqLen(req.Stage, req.Slot, stat4p4.AllIPv4(), 6, 0, req.Size, req.Pa, req.Pb, req.K)
		case "entropy":
			base := req.Base
			if base == "" {
				base = "10.0.0.0"
			}
			var ip packet.IP4
			ip, err = parseAddr(base)
			if err == nil {
				h0 := entropyH0(sr.Library(), req.H0Bits)
				id, err = sr.BindEntropyDst(req.Stage, req.Slot, stat4p4.AllIPv4(), 8, uint64(ip)>>8, req.Size, h0, req.CheckEvery)
			}
		case "hh":
			id, err = sr.BindHeavyHitterSrc(req.Stage, req.Slot, stat4p4.AllIPv4(), 0, req.SampleShift)
		case "flow":
			if req.EpochShift == 0 {
				req.EpochShift = 23
			}
			if req.TTL == 0 {
				req.TTL = 4
			}
			id, err = sr.BindFlowSrc(req.Stage, req.Slot, stat4p4.AllIPv4(), 0, req.EpochShift, req.TTL, req.SampleShift, req.K)
		case "unbind":
			err = sr.Unbind(req.Stage, p4.EntryID(req.Entry))
		case "reset":
			err = sr.ResetSlot(req.Slot)
		default:
			err = fmt.Errorf("unknown mode %q", req.Mode)
		}
	})
	if err != nil {
		httpErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, map[string]any{"entry": uint64(id)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

// httpErr answers with a JSON error body — every endpoint speaks JSON, so
// clients never need a second parser for the failure path.
func httpErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		log.Printf("encode error body: %v", encErr)
	}
}

func intParam(r *http.Request, name string, def int) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad %s: %v", name, err)
	}
	return v, nil
}

// parseAddr parses a dotted-quad IPv4 address.
func parseAddr(s string) (packet.IP4, error) {
	var a, b, c, d byte
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad address %q: %v", s, err)
	}
	return packet.ParseIP4(a, b, c, d), nil
}

// pushPcap is the client half: stream a capture to a running daemon over the
// frame-stream protocol. addr is host:port, or a filesystem path for unix
// sockets.
func pushPcap(path, addr string) error {
	if addr == "" {
		return errors.New("-push requires -connect")
	}
	network := "tcp"
	if _, err := os.Stat(addr); err == nil {
		network = "unix"
	}
	conn, err := net.Dial(network, addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := packet.NewPcapReader(f)
	var n uint64
	for {
		ts, frame, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if err := ingest.WriteRecord(conn, ts, 1, frame); err != nil {
			return err
		}
		n++
	}
	log.Printf("pushed %d frames to %s", n, addr)
	return nil
}
