package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"stat4/internal/ingest"
	"stat4/internal/packet"
)

// smokeFrames writes a small capture spread over /24 buckets.
func smokeFrames(t *testing.T, path string, count int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := packet.NewPcapWriter(f)
	for i := 0; i < count; i++ {
		dst := packet.ParseIP4(10, 0, byte(i%5), byte(i%40))
		fr := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, uint16(1000+i%9), 80, i%32)
		if err := w.WriteFrame(uint64(i+1)*1000, fr.Serialize()); err != nil {
			t.Fatal(err)
		}
	}
}

// freePort reserves an ephemeral TCP address for a listener flag.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func httpGet(t *testing.T, url string) []byte {
	t.Helper()
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			time.Sleep(20 * time.Millisecond)
			continue
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s: %s", url, resp.Status, buf.String())
		}
		return buf.Bytes()
	}
	t.Fatalf("GET %s never answered: %v", url, lastErr)
	return nil
}

// TestDaemonSmoke is the stat4d end-to-end: boot a daemon in-process with a
// pcap source plus TCP and unix frame listeners, stream frames over both, hit
// every control-plane endpoint, rebind a statistic at runtime, then drain.
// `make stat4d-smoke` runs exactly this.
func TestDaemonSmoke(t *testing.T) {
	dir := t.TempDir()
	pcapPath := filepath.Join(dir, "seed.pcap")
	smokeFrames(t, pcapPath, 400)

	sock := filepath.Join(dir, "stat4d.sock")
	cfg := daemonConfig{
		Shards:     4,
		Listen:     "127.0.0.1:0",
		Unix:       sock,
		HTTP:       "127.0.0.1:0",
		Pcap:       pcapPath,
		Track:      "dst24",
		K:          0,
		BasePrefix: "10.0.0.0",
		RingCap:    64,
		SlabBlocks: 64,
		BlockSize:  32 << 10,
		Batch:      64,
	}
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.start(); err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()

	tcpAddr := d.listeners[0].Addr().String()
	base := "http://" + d.httpAddr

	// The pcap source is lossless and played during start; the consumer
	// drains it asynchronously.
	seedDeadline := time.Now().Add(5 * time.Second)
	for d.engine.Frames() < 400 {
		if time.Now().After(seedDeadline) {
			t.Fatalf("pcap source delivered %d frames, want 400", d.engine.Frames())
		}
		runtime.Gosched()
	}

	// Stream 200 records over TCP and 100 over the unix socket.
	send := func(network, addr string, count int, port uint16) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		for i := 0; i < count; i++ {
			dst := packet.ParseIP4(10, 0, byte(i%5), 7)
			fr := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 9), dst, 5, 80, 16).Serialize()
			if err := ingest.WriteRecord(conn, uint64(1e6+i), port, fr); err != nil {
				t.Fatal(err)
			}
		}
	}
	send("tcp", tcpAddr, 200, 2)
	send("unix", sock, 100, 3)
	want := uint64(400 + 200 + 100)
	deadline := time.Now().Add(5 * time.Second)
	for d.engine.Frames() < want {
		if time.Now().After(deadline) {
			t.Fatalf("daemon consumed %d frames, want %d", d.engine.Frames(), want)
		}
		runtime.Gosched()
	}

	// Control plane: health, metrics, stats, snapshot, moments, counters.
	if got := string(httpGet(t, base+"/healthz")); got != "ok\n" {
		t.Fatalf("healthz = %q", got)
	}
	metrics := string(httpGet(t, base+"/metrics"))
	for _, series := range []string{"stat4d_ingest_frames 700", "stat4d_pkts_in 700", "stat4d_ingest_ring_depth"} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("/metrics missing %q:\n%s", series, metrics)
		}
	}
	var stats ingest.Stats
	if err := json.Unmarshal(httpGet(t, base+"/stats"), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Frames != want || stats.ShedFrames != 0 {
		t.Fatalf("stats = %+v, want %d frames, 0 shed", stats, want)
	}
	if len(stats.PerShard) != 4 {
		t.Fatalf("stats reports %d shards, want 4", len(stats.PerShard))
	}
	var moments struct {
		N uint64 `json:"N"`
	}
	if err := json.Unmarshal(httpGet(t, base+"/moments?slot=0"), &moments); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Registers map[string][]uint64 `json:"Registers"`
	}
	if err := json.Unmarshal(httpGet(t, base+"/snapshot"), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Registers) == 0 {
		t.Fatal("/snapshot returned no registers")
	}
	var counters struct {
		Cells []uint64 `json:"cells"`
	}
	if err := json.Unmarshal(httpGet(t, base+"/counters?slot=0&n=8"), &counters); err != nil {
		t.Fatal(err)
	}
	if len(counters.Cells) != 8 {
		t.Fatalf("/counters returned %d cells, want 8", len(counters.Cells))
	}
	var total uint64
	for _, c := range counters.Cells {
		total += c
	}
	if total == 0 {
		t.Fatal("/counters drill-down saw no traffic in the first 8 buckets")
	}

	// Runtime rebinding: reset the slot, rebind per-proto, send more traffic.
	for _, body := range []string{
		`{"mode":"reset","slot":0}`,
		`{"mode":"proto","stage":0,"slot":0,"size":256}`,
	} {
		resp, err := http.Post(base+"/bind", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			t.Fatalf("POST /bind %s: %s: %s", body, resp.Status, buf.String())
		}
		resp.Body.Close()
	}
	// An invalid bind is a clean 400, not a daemon upset.
	resp, err := http.Post(base+"/bind", "application/json", strings.NewReader(`{"mode":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad bind mode returned %s, want 400", resp.Status)
	}

	send("tcp", tcpAddr, 50, 2)
	want += 50
	deadline = time.Now().Add(5 * time.Second)
	for d.engine.Frames() < want {
		if time.Now().After(deadline) {
			t.Fatalf("post-rebind: consumed %d frames, want %d", d.engine.Frames(), want)
		}
		runtime.Gosched()
	}
	var alerts struct {
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal(httpGet(t, base+"/alerts"), &alerts); err != nil {
		t.Fatal(err)
	}

	// Drain: shutdown must leave zero shed frames and a quiesced engine.
	d.shutdown()
	st := d.engine.Stats()
	if st.Frames != want || st.ShedFrames != 0 {
		t.Fatalf("after drain: %d frames (%d shed), want %d/0", st.Frames, st.ShedFrames, want)
	}
	if _, err := os.Stat(sock); !os.IsNotExist(err) {
		t.Fatalf("unix socket not removed: %v", err)
	}
}

// TestDaemonBadConfig pins construction errors.
func TestDaemonBadConfig(t *testing.T) {
	if _, err := newDaemon(daemonConfig{Shards: 0}); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := newDaemon(daemonConfig{Shards: 1, Track: "bogus"}); err == nil {
		t.Fatal("bogus track accepted")
	}
}

// TestPushClientRoundTrip exercises the -push client path against a live
// daemon listener.
func TestPushClientRoundTrip(t *testing.T) {
	dir := t.TempDir()
	pcapPath := filepath.Join(dir, "push.pcap")
	smokeFrames(t, pcapPath, 120)

	d, err := newDaemon(daemonConfig{
		Shards: 2, Listen: "127.0.0.1:0", Track: "dst24", BasePrefix: "10.0.0.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.start(); err != nil {
		t.Fatal(err)
	}
	defer d.shutdown()

	if err := pushPcap(pcapPath, d.listeners[0].Addr().String()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for d.engine.Frames() < 120 {
		if time.Now().After(deadline) {
			t.Fatalf("push delivered %d frames, want 120", d.engine.Frames())
		}
		runtime.Gosched()
	}
	if err := pushPcap(pcapPath, ""); err == nil {
		t.Fatal("push without -connect accepted")
	}
}
