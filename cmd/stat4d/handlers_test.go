package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stat4/internal/packet"
	"stat4/internal/telemetry"
)

// testDaemon boots a listener-free daemon whose mux is driven directly with
// httptest, so handler behavior is pinned without sockets.
func testDaemon(t *testing.T, track string) *daemon {
	t.Helper()
	d, err := newDaemon(daemonConfig{
		Shards: 2, Track: track, BasePrefix: "10.0.0.0",
		H0Bits: 0, CheckEvery: 1024, SampleShift: 2,
		RingCap: 64, SlabBlocks: 64, BlockSize: 32 << 10, Batch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.shutdown)
	return d
}

// decodeError requires a JSON {"error": ...} body — the control plane speaks
// JSON on the failure path too.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Error == "" {
		t.Fatalf("error body carries no message: %s", rec.Body.String())
	}
	return body.Error
}

// TestBindRejectsNonPost pins the 405 path: /bind is a mutation, reads must
// not slip through, and the refusal is a JSON error like every other answer.
func TestBindRejectsNonPost(t *testing.T) {
	d := testDaemon(t, "none")
	mux := d.mux()
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(method, "/bind", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s /bind = %d, want 405", method, rec.Code)
		}
		if msg := decodeError(t, rec); !strings.Contains(msg, "POST") {
			t.Fatalf("%s /bind error %q does not name the allowed method", method, msg)
		}
	}
}

// TestBindRejectsMalformedJSON pins the 400 path: a broken body is a clean
// JSON error, not a daemon upset, and no binding is applied.
func TestBindRejectsMalformedJSON(t *testing.T) {
	d := testDaemon(t, "none")
	mux := d.mux()
	for _, body := range []string{"{not json", `"a string"`, `{"mode": 7}`} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(body))
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("POST /bind %q = %d, want 400", body, rec.Code)
		}
		decodeError(t, rec)
	}
	// An unknown mode inside well-formed JSON is also a JSON 400.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(`{"mode":"nope"}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown mode = %d, want 400", rec.Code)
	}
	if msg := decodeError(t, rec); !strings.Contains(msg, "nope") {
		t.Fatalf("error %q does not name the bad mode", msg)
	}
}

// TestEntropyEndpoint binds the entropy track, applies traffic through the
// engine, and reads the merged fixed-point entropy over HTTP.
func TestEntropyEndpoint(t *testing.T) {
	d := testDaemon(t, "entropy")
	mux := d.mux()

	// Bad slot parameter is a JSON 400.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/entropy?slot=notanumber", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad slot = %d, want 400", rec.Code)
	}
	decodeError(t, rec)

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/entropy?slot=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/entropy = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Slot  int     `json:"slot"`
		Total uint64  `json:"total"`
		Bits  float64 `json:"bits"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/entropy body: %v\n%s", err, rec.Body.String())
	}
	if out.Total != 0 || out.Bits != 0 {
		t.Fatalf("fresh daemon reports entropy %+v", out)
	}
}

// TestHeavyHittersEndpoint reads the merged candidate table over HTTP.
func TestHeavyHittersEndpoint(t *testing.T) {
	d := testDaemon(t, "hh")
	mux := d.mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/heavyhitters?slot=99", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range slot = %d, want 400", rec.Code)
	}
	decodeError(t, rec)

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/heavyhitters?slot=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/heavyhitters = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Slot     int    `json:"slot"`
		Rejected uint64 `json:"rejected"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/heavyhitters body: %v\n%s", err, rec.Body.String())
	}
}

// TestBindEntropyAndHHModes drives the new /bind modes end to end on the
// mux: rebind to entropy on slot 0 and heavy hitters on slot 1, then read
// both endpoints back.
func TestBindEntropyAndHHModes(t *testing.T) {
	d := testDaemon(t, "none")
	mux := d.mux()
	for _, body := range []string{
		`{"mode":"entropy","slot":0,"h0_bits":4,"check_every":1024}`,
		`{"mode":"hh","slot":1,"sample_shift":4}`,
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("POST /bind %s = %d: %s", body, rec.Code, rec.Body.String())
		}
	}
	for _, url := range []string{"/entropy?slot=0", "/heavyhitters?slot=1"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
		}
	}
	// A non-power-of-two cadence surfaces the runtime's validation as a 400.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/bind",
		strings.NewReader(`{"mode":"entropy","slot":0,"check_every":3}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("check_every=3 accepted: %d", rec.Code)
	}
	if msg := decodeError(t, rec); !strings.Contains(msg, "power of two") {
		t.Fatalf("error %q does not explain the cadence constraint", msg)
	}
}

// flowDaemon boots a daemon whose program carries the sparse flow-table
// plane, bound to per-source flows with fast-expiring epochs.
func flowDaemon(t *testing.T) *daemon {
	t.Helper()
	d, err := newDaemon(daemonConfig{
		Shards: 2, Track: "flow", FlowTable: 64,
		FlowEpochShift: 10, FlowTTL: 2,
		RingCap: 64, SlabBlocks: 64, BlockSize: 32 << 10, Batch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.shutdown)
	return d
}

// playFlows writes a capture of distinct per-source flows and plays it
// through the ingest engine, so the flow table holds real state.
func playFlows(t *testing.T, d *daemon, count int) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flows.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := packet.NewPcapWriter(f)
	for i := 0; i < count; i++ {
		src := packet.ParseIP4(198, 18, byte(i>>8), byte(i))
		fr := packet.NewUDPFrame(src, packet.ParseIP4(10, 0, 0, 1), uint16(40000+i%1024), 80, 64)
		if err := w.WriteFrame(uint64(i+1)*500, fr.Serialize()); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := d.engine.PlaySource(path, 1, true); err != nil {
		t.Fatal(err)
	}
}

// flowsBody is the /flows response shape the handler promises.
type flowsBody struct {
	Slot       int     `json:"slot"`
	Capacity   uint64  `json:"capacity"`
	Occupied   uint64  `json:"occupied"`
	LoadFactor float64 `json:"load_factor"`
	Admitted   uint64  `json:"admitted"`
	Evicted    uint64  `json:"evicted"`
	Rejected   uint64  `json:"rejected"`
	Shed       uint64  `json:"shed"`
	Flows      []struct {
		Key   string `json:"key"`
		Raw   uint64 `json:"raw_key"`
		Count uint64 `json:"count"`
		Stamp uint64 `json:"stamp"`
	} `json:"flows"`
}

// TestFlowsEndpoint drives traffic through a flow-bound daemon and reads the
// occupancy ledger and merged flow list back over HTTP.
func TestFlowsEndpoint(t *testing.T) {
	d := flowDaemon(t)
	mux := d.mux()

	// Bad slot parameter is a JSON 400, as is an out-of-range slot.
	for _, url := range []string{"/flows?slot=notanumber", "/flows?slot=99"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400", url, rec.Code)
		}
		decodeError(t, rec)
	}

	playFlows(t, d, 300)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/flows?slot=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/flows = %d: %s", rec.Code, rec.Body.String())
	}
	var out flowsBody
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/flows body: %v\n%s", err, rec.Body.String())
	}
	if out.Capacity != 128 { // 64 buckets per slot across 2 shards
		t.Fatalf("capacity %d, want 128", out.Capacity)
	}
	if out.Occupied == 0 || out.Admitted == 0 {
		t.Fatalf("no flows landed: %+v", out)
	}
	if out.Occupied != out.Admitted-out.Evicted {
		t.Fatalf("ledger broken: occupied %d != admitted %d - evicted %d",
			out.Occupied, out.Admitted, out.Evicted)
	}
	if out.LoadFactor <= 0 || out.LoadFactor > 1 {
		t.Fatalf("load factor %f out of (0, 1]", out.LoadFactor)
	}
	if len(out.Flows) == 0 || uint64(len(out.Flows)) < out.Occupied/2 {
		t.Fatalf("merged flow list has %d entries for occupancy %d", len(out.Flows), out.Occupied)
	}
	for _, fl := range out.Flows {
		if fl.Count == 0 || fl.Stamp == 0 {
			t.Fatalf("flow %q carries empty count/stamp: %+v", fl.Key, fl)
		}
	}

	// n truncates the list to the heaviest entries.
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/flows?slot=0&n=3", nil))
	var top flowsBody
	if err := json.Unmarshal(rec.Body.Bytes(), &top); err != nil {
		t.Fatal(err)
	}
	if len(top.Flows) != 3 {
		t.Fatalf("n=3 returned %d flows", len(top.Flows))
	}
}

// TestFlowsEndpointDisabled pins the failure mode of a daemon built without
// the flow plane: /flows is a clean JSON 400, not a panic or empty body.
func TestFlowsEndpointDisabled(t *testing.T) {
	d := testDaemon(t, "none")
	mux := d.mux()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/flows", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("/flows without flow plane = %d, want 400", rec.Code)
	}
	if msg := decodeError(t, rec); !strings.Contains(msg, "FlowTable") {
		t.Fatalf("error %q does not name the missing option", msg)
	}
}

// TestFlowMetricsExposition checks the flow-table counters ride the standard
// telemetry registry: present in the scrape, and the exposition stays valid.
func TestFlowMetricsExposition(t *testing.T) {
	d := flowDaemon(t)
	playFlows(t, d, 300)

	var sb strings.Builder
	if err := d.engine.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	if _, err := telemetry.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid with flow metrics: %v", err)
	}
	for _, name := range []string{
		"flow_occupied", "flow_admitted_total", "flow_evicted_total",
		"flow_rejected_total", "flow_shed_total",
	} {
		if !strings.Contains(body, name) {
			t.Fatalf("scrape is missing %s:\n%s", name, body)
		}
	}

	// A daemon without the flow plane must not emit flow series.
	plain := testDaemon(t, "none")
	sb.Reset()
	if err := plain.engine.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "flow_occupied") {
		t.Fatal("flow metrics registered on a daemon without the flow plane")
	}
}
