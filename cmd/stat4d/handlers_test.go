package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// testDaemon boots a listener-free daemon whose mux is driven directly with
// httptest, so handler behavior is pinned without sockets.
func testDaemon(t *testing.T, track string) *daemon {
	t.Helper()
	d, err := newDaemon(daemonConfig{
		Shards: 2, Track: track, BasePrefix: "10.0.0.0",
		H0Bits: 0, CheckEvery: 1024, SampleShift: 2,
		RingCap: 64, SlabBlocks: 64, BlockSize: 32 << 10, Batch: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.shutdown)
	return d
}

// decodeError requires a JSON {"error": ...} body — the control plane speaks
// JSON on the failure path too.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error response Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Error == "" {
		t.Fatalf("error body carries no message: %s", rec.Body.String())
	}
	return body.Error
}

// TestBindRejectsNonPost pins the 405 path: /bind is a mutation, reads must
// not slip through, and the refusal is a JSON error like every other answer.
func TestBindRejectsNonPost(t *testing.T) {
	d := testDaemon(t, "none")
	mux := d.mux()
	for _, method := range []string{http.MethodGet, http.MethodPut, http.MethodDelete} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(method, "/bind", nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Fatalf("%s /bind = %d, want 405", method, rec.Code)
		}
		if msg := decodeError(t, rec); !strings.Contains(msg, "POST") {
			t.Fatalf("%s /bind error %q does not name the allowed method", method, msg)
		}
	}
}

// TestBindRejectsMalformedJSON pins the 400 path: a broken body is a clean
// JSON error, not a daemon upset, and no binding is applied.
func TestBindRejectsMalformedJSON(t *testing.T) {
	d := testDaemon(t, "none")
	mux := d.mux()
	for _, body := range []string{"{not json", `"a string"`, `{"mode": 7}`} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(body))
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("POST /bind %q = %d, want 400", body, rec.Code)
		}
		decodeError(t, rec)
	}
	// An unknown mode inside well-formed JSON is also a JSON 400.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(`{"mode":"nope"}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown mode = %d, want 400", rec.Code)
	}
	if msg := decodeError(t, rec); !strings.Contains(msg, "nope") {
		t.Fatalf("error %q does not name the bad mode", msg)
	}
}

// TestEntropyEndpoint binds the entropy track, applies traffic through the
// engine, and reads the merged fixed-point entropy over HTTP.
func TestEntropyEndpoint(t *testing.T) {
	d := testDaemon(t, "entropy")
	mux := d.mux()

	// Bad slot parameter is a JSON 400.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/entropy?slot=notanumber", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad slot = %d, want 400", rec.Code)
	}
	decodeError(t, rec)

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/entropy?slot=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/entropy = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Slot  int     `json:"slot"`
		Total uint64  `json:"total"`
		Bits  float64 `json:"bits"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/entropy body: %v\n%s", err, rec.Body.String())
	}
	if out.Total != 0 || out.Bits != 0 {
		t.Fatalf("fresh daemon reports entropy %+v", out)
	}
}

// TestHeavyHittersEndpoint reads the merged candidate table over HTTP.
func TestHeavyHittersEndpoint(t *testing.T) {
	d := testDaemon(t, "hh")
	mux := d.mux()

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/heavyhitters?slot=99", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("out-of-range slot = %d, want 400", rec.Code)
	}
	decodeError(t, rec)

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/heavyhitters?slot=0", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/heavyhitters = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Slot     int    `json:"slot"`
		Rejected uint64 `json:"rejected"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("/heavyhitters body: %v\n%s", err, rec.Body.String())
	}
}

// TestBindEntropyAndHHModes drives the new /bind modes end to end on the
// mux: rebind to entropy on slot 0 and heavy hitters on slot 1, then read
// both endpoints back.
func TestBindEntropyAndHHModes(t *testing.T) {
	d := testDaemon(t, "none")
	mux := d.mux()
	for _, body := range []string{
		`{"mode":"entropy","slot":0,"h0_bits":4,"check_every":1024}`,
		`{"mode":"hh","slot":1,"sample_shift":4}`,
	} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/bind", strings.NewReader(body)))
		if rec.Code != http.StatusOK {
			t.Fatalf("POST /bind %s = %d: %s", body, rec.Code, rec.Body.String())
		}
	}
	for _, url := range []string{"/entropy?slot=0", "/heavyhitters?slot=1"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", url, rec.Code, rec.Body.String())
		}
	}
	// A non-power-of-two cadence surfaces the runtime's validation as a 400.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/bind",
		strings.NewReader(`{"mode":"entropy","slot":0,"check_every":3}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("check_every=3 accepted: %d", rec.Code)
	}
	if msg := decodeError(t, rec); !strings.Contains(msg, "power of two") {
		t.Fatalf("error %q does not explain the cadence constraint", msg)
	}
}
