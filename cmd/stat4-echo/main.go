// Command stat4-echo runs the Figure 5 validation experiment: a host sends
// Ethernet frames carrying random integers in [−255, 255] to a switch running
// the Stat4 echo application; the switch tracks the integers' frequency
// distribution and answers every frame with its statistical measures, which
// the host compares against its own software computation.
//
//	stat4-echo -packets 10000 -seed 42 -v
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"stat4/internal/core"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("stat4-echo: ")
	packets := flag.Int("packets", 10000, "number of echo frames to send")
	seed := flag.Int64("seed", 42, "random seed for the test integers")
	verbose := flag.Bool("v", false, "print every 1000th reply")
	flag.Parse()

	const (
		domain = 512
		base   = stat4p4.EchoBias - 255
	)
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: domain, Stages: 1, Echo: true})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.BindFreqEcho(0, 0, stat4p4.EchoOnly(), base, domain, 1, 1, 0); err != nil {
		log.Fatal(err)
	}

	host := core.NewFreqDist(domain)
	med := host.TrackMedian()
	rng := rand.New(rand.NewSource(*seed))
	sw := rt.Switch()
	mismatches := 0

	for i := 0; i < *packets; i++ {
		v := int16(rng.Intn(511) - 255)
		frame := packet.NewEchoFrame(packet.MAC{0xaa}, packet.MAC{0xbb}, v).Serialize()
		out := sw.ProcessFrame(uint64(i), 1, frame)
		if len(out) != 1 {
			log.Fatalf("packet %d: no reply", i)
		}
		if err := host.Observe(uint64(int64(v) + 255)); err != nil {
			log.Fatal(err)
		}
		rp, err := packet.Parse(out[0].Data)
		if err != nil {
			log.Fatalf("packet %d: %v", i, err)
		}
		reply, err := packet.UnmarshalEchoReply(rp.Payload)
		if err != nil {
			log.Fatalf("packet %d: %v", i, err)
		}
		m := host.Moments()
		okPkt := reply.N == m.N && reply.Xsum == m.Sum && reply.Xsumsq == m.Sumsq &&
			reply.Var == m.Variance() && reply.SD == m.StdDev() && reply.Median == med.Value()
		if !okPkt {
			mismatches++
			fmt.Printf("MISMATCH at packet %d:\n  switch: %+v\n  host:   N=%d Xsum=%d Xsumsq=%d var=%d sd=%d med=%d\n",
				i, reply, m.N, m.Sum, m.Sumsq, m.Variance(), m.StdDev(), med.Value())
		}
		if *verbose && (i+1)%1000 == 0 {
			fmt.Printf("packet %5d: N=%d Xsum=%d Xsumsq=%d var=%d sd=%d median=%d\n",
				i+1, reply.N, reply.Xsum, reply.Xsumsq, reply.Var, reply.SD, reply.Median)
		}
	}

	if mismatches > 0 {
		fmt.Printf("validation FAILED: %d mismatches over %d packets\n", mismatches, *packets)
		os.Exit(1)
	}
	fmt.Printf("validation OK: switch and host agree on N, Xsum, Xsumsq, variance, sd and median for all %d packets\n", *packets)
}
