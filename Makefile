# Stat4 build and correctness gate. CI (.github/workflows/ci.yml) runs the
# same targets; `make check` is the full local equivalent.

GO ?= go

.PHONY: all build test race vet lint fuzz-smoke check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race uses -short: instrumentation slows the minutes-long virtual-time
# experiment sweeps past the test timeout, and they are single-threaded
# anyway — the concurrency surface (controller, registers, tables, netem)
# is fully exercised by the short suite.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# lint runs the switch-feasibility gate both ways: the standalone whole-module
# driver (authoritative: the datapath closure crosses package boundaries) and
# through go vet's -vettool protocol (what editor integrations use).
lint:
	$(GO) run ./cmd/stat4-lint ./...
	$(GO) build -o $(CURDIR)/bin/stat4-lint ./cmd/stat4-lint
	$(GO) vet -vettool=$(CURDIR)/bin/stat4-lint ./...

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions in the parser round-trip and sqrt invariants without stalling CI.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzSqrtApprox -fuzztime=$(FUZZTIME) ./internal/intstat/
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/packet/

check: build vet lint race fuzz-smoke

clean:
	rm -rf bin
