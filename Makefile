# Stat4 build and correctness gate. CI (.github/workflows/ci.yml) runs the
# same targets; `make check` is the full local equivalent.

GO ?= go

.PHONY: all build test race vet lint bench detect detect-smoke fuzz-smoke metrics-smoke stat4d-smoke check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race uses -short: instrumentation slows the minutes-long virtual-time
# experiment sweeps past the test timeout, and they are single-threaded
# anyway — the concurrency surface (controller, registers, tables, netem)
# is fully exercised by the short suite.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# lint runs the switch-feasibility gate both ways: the standalone whole-module
# driver (authoritative: the datapath closure crosses package boundaries) and
# through go vet's -vettool protocol (what editor integrations use). Both
# modes also run the program-level gates — stagebudget (every registered
# emitted program must fit the pisa-3pass target model) and mergelaw (declared
# merge kinds, additive-only MergeSum writes) — standalone always, vettool on
# the stat4p4 package's unit.
lint:
	$(GO) run ./cmd/stat4-lint ./...
	$(GO) build -o $(CURDIR)/bin/stat4-lint ./cmd/stat4-lint
	$(GO) vet -vettool=$(CURDIR)/bin/stat4-lint ./...

# bench regenerates BENCH_$(BENCHN).json: the E1–E6 experiment benchmarks, the
# per-packet switch benches and the simulation-engine benches (scheduling,
# dispatch, batched stream injection — wheel vs reference heap), with
# allocation counts (-benchmem). Set BASELINE to a saved `go test -bench`
# output to record before/after deltas in the JSON; raise BENCHCOUNT for
# lower-variance numbers.
BENCHN ?= 1
BENCHCOUNT ?= 1
BENCHFILTER ?= Benchmark(Table2|Table3|EchoValidation|CaseStudy|ResourceAnalysis|ArchComparison|Switch|Sharded|Sim|InjectStream|RingPush|IngestHandoff|Stat4dE2E|Log2Fixed|FlowTable)
bench:
	$(GO) test -run=^$$ -bench '$(BENCHFILTER)' -benchmem -count=$(BENCHCOUNT) . | tee bench_latest.txt
	$(GO) run ./cmd/stat4-bench $(if $(BASELINE),-baseline $(BASELINE)) -o BENCH_$(BENCHN).json bench_latest.txt

# detect regenerates DETECT_$(DETECTN).json: the detection-quality matrix —
# every scenario of the traffic registry replayed against every detector
# config (healthy and pathological) at 1 and 4 shards, scored for
# time-to-detect, precision/recall/F1, drill-down accuracy and benign-twin
# false alarms. Deterministic: fixed seeds and the virtual clock make the
# scores byte-stable. Set DETECT_BASELINE to a previous artifact to record
# quality deltas and gate on regressions.
DETECTN ?= 1
detect:
	$(GO) run ./cmd/stat4-detect $(if $(DETECT_BASELINE),-baseline $(DETECT_BASELINE) -gate) -o DETECT_$(DETECTN).json -q

# detect-smoke is the CI-speed slice of the same matrix: quarter-length
# traces, the dominance audit and the benign false-alarm bounds enforced by
# the test, plus the unit surface of the scorer.
detect-smoke:
	$(GO) test -run 'TestMatrixContract|TestRunDeterministic|TestSchedulerAgreement' -v ./internal/detect/

# fuzz-smoke gives each fuzz target a short budget — enough to catch
# regressions in the parser round-trip, sqrt invariants, the compiled-plan
# vs tree-walker equivalence, and the wheel-vs-heap scheduler equivalence
# without stalling CI.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzSqrtApprox -fuzztime=$(FUZZTIME) ./internal/intstat/
	$(GO) test -run=^$$ -fuzz=FuzzParse -fuzztime=$(FUZZTIME) ./internal/packet/
	$(GO) test -run=^$$ -fuzz=FuzzDifferential -fuzztime=$(FUZZTIME) ./internal/stat4p4/
	$(GO) test -run=^$$ -fuzz=FuzzShardEquivalence -fuzztime=$(FUZZTIME) ./internal/p4/
	$(GO) test -run=^$$ -fuzz=FuzzSchedulerEquivalence -fuzztime=$(FUZZTIME) ./internal/netem/
	$(GO) test -run=^$$ -fuzz=FuzzRingFIFO -fuzztime=$(FUZZTIME) ./internal/ring/
	$(GO) test -run=^$$ -fuzz=FuzzFlowDeterminism -fuzztime=$(FUZZTIME) ./internal/flowtable/

# metrics-smoke replays a small synthetic capture with telemetry attached and
# asserts the Prometheus-style exposition parses (integer-only, quantiles from
# the Stat4 percentile markers) — the -metrics flag's end-to-end gate.
metrics-smoke:
	$(GO) test -run TestMetricsSmoke -v ./cmd/stat4-replay

# stat4d-smoke boots the daemon in-process with pcap + TCP + unix-socket
# sources, streams frames over every listener, exercises the whole HTTP
# control plane (metrics scrape, snapshot, drill-down, runtime rebinding) and
# drains — the live-ingest end-to-end gate.
stat4d-smoke:
	$(GO) test -run 'TestDaemonSmoke|TestPushClientRoundTrip' -v ./cmd/stat4d

check: build vet lint race detect-smoke fuzz-smoke metrics-smoke stat4d-smoke

clean:
	rm -rf bin
