module stat4

go 1.22
