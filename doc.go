// Package stat4 is a from-scratch Go reproduction of "Stats 101 in P4:
// Towards In-Switch Anomaly Detection" (Gao, Handley, Vissicchio —
// HotNets '21): the Stat4 library of integer-only online statistics for
// programmable data planes, together with every substrate its evaluation
// needs — a P4-style switch simulator, a packet model, traffic generators, a
// discrete-event network, a drill-down controller and a sketch-only baseline.
//
// The datapath also scales out: p4.ShardedSwitch replicates a compiled
// program over N flow-hash shards (RSS-style, same 5-tuple → same shard) and
// the statistics merge losslessly — counter registers add, derived scalars
// are recomputed from the merged counters — so a sharded deployment's merged
// snapshot is byte-identical to a serial switch that saw the same stream.
// The property/differential suites in internal/core, internal/p4,
// internal/stat4p4 and internal/netem pin that equivalence.
//
// Layout:
//
//	internal/intstat   integer primitives (Figure 2 sqrt, MSB, shift-multiply)
//	internal/core      the Stat4 reference library (moments, percentiles, windows)
//	internal/p4        the P4-style switch simulator, sharded dispatcher and static analyzer
//	internal/stat4p4   the Stat4 → P4 emitter, runtime API and echo app
//	internal/packet    Ethernet/IPv4/TCP/UDP + echo header
//	internal/traffic   seeded workload generators
//	internal/netem     discrete-event network simulator
//	internal/telemetry integer-only observability built on the core statistics
//	internal/controller the case-study drill-down controller
//	internal/sketch    the pull-based (Figure 1b) baseline
//	internal/experiments harnesses regenerating every table and figure
//	cmd/...            stat4-echo, stat4-casestudy, stat4-tables
//	examples/...       quickstart, synflood, loadbalance, trafficclass
//
// See README.md for the quickstart, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each table/figure under `go
// test -bench`.
package stat4
