package detect

import (
	"math"
	"testing"

	"stat4/internal/traffic"
)

func f64(v float64) *float64 { return &v }

func TestScoreTemporalWindowing(t *testing.T) {
	// 10 windows of 100 ns over [0, 1000); attack covers windows 5..9.
	truth := traffic.Truth{Attacks: []traffic.TimeWindow{{StartNs: 500, EndNs: 1000}}}
	alerts := []Alert{
		{TsNs: 120}, // window 1: false positive
		{TsNs: 550}, // window 5: true positive, first in-attack alert
		{TsNs: 560}, // same window, no double count
		{TsNs: 910}, // window 9: true positive
	}
	ts := ScoreTemporal(truth, 1000, 0, 10, alerts)
	if ts.Windows != 10 || ts.TP != 2 || ts.FP != 1 || ts.FN != 3 {
		t.Fatalf("confusion counts off: %+v", ts)
	}
	if got, want := ts.Precision, 2.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("precision %v, want %v", got, want)
	}
	if got, want := ts.Recall, 2.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("recall %v, want %v", got, want)
	}
	if ts.AttacksDetected != 1 || ts.MeanTTDNs == nil || *ts.MeanTTDNs != 50 {
		t.Errorf("TTD should be first in-attack alert minus onset (50 ns): %+v", ts)
	}
}

func TestScoreTemporalWarmupExclusion(t *testing.T) {
	truth := traffic.Truth{Attacks: []traffic.TimeWindow{{StartNs: 0, EndNs: 300}}}
	// Warmup of 300 ns swallows the whole attack and the early alert; the
	// remaining 7 windows are all truth-negative and unflagged.
	ts := ScoreTemporal(truth, 1000, 300, 10, []Alert{{TsNs: 150}})
	if ts.Windows != 7 {
		t.Fatalf("windows ending before warmup must be excluded, got %d scored", ts.Windows)
	}
	if ts.TP != 0 || ts.FP != 0 || ts.FN != 0 || ts.AttacksDetected != 0 {
		t.Fatalf("warmup alert leaked into scoring: %+v", ts)
	}
}

func TestScoreTemporalDetectionGrace(t *testing.T) {
	// An alert landing one window past attack end still counts as detecting
	// the attack (digest latency), but not later than that.
	truth := traffic.Truth{Attacks: []traffic.TimeWindow{{StartNs: 100, EndNs: 200}}}
	if ts := ScoreTemporal(truth, 1000, 0, 10, []Alert{{TsNs: 250}}); ts.AttacksDetected != 1 {
		t.Errorf("alert within one window of grace not credited: %+v", ts)
	}
	if ts := ScoreTemporal(truth, 1000, 0, 10, []Alert{{TsNs: 350}}); ts.AttacksDetected != 0 {
		t.Errorf("alert past the grace window wrongly credited: %+v", ts)
	}
}

func TestScoreTemporalEmpty(t *testing.T) {
	if ts := ScoreTemporal(traffic.Truth{}, 0, 0, 10, nil); ts.Windows != 0 {
		t.Errorf("zero-length trace must score nothing: %+v", ts)
	}
	ts := ScoreTemporal(traffic.Truth{}, 1000, 0, 10, nil)
	if ts.Precision != 0 || ts.Recall != 0 || ts.F1 != 0 {
		t.Errorf("empty-denominator convention violated: %+v", ts)
	}
}

func TestFlaggedFraction(t *testing.T) {
	got := FlaggedFraction(1000, 0, 10, []Alert{{TsNs: 10}, {TsNs: 20}, {TsNs: 510}})
	if want := 0.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("flagged fraction %v, want %v (2 of 10 windows)", got, want)
	}
	if got := FlaggedFraction(1000, 1000, 10, []Alert{{TsNs: 10}}); got != 0 {
		t.Errorf("all-warmup trace must flag nothing, got %v", got)
	}
}

func TestHeavySetAndSetPRF(t *testing.T) {
	tally := map[uint64]uint64{1: 50, 2: 30, 3: 15, 4: 5}
	truth := HeavySet(tally, 100, 0.20)
	if len(truth) != 2 || !truth[1] || !truth[2] {
		t.Fatalf("≥20%% set should be {1,2}, got %v", truth)
	}
	reported := map[uint64]bool{1: true, 4: true}
	p, r, f1 := SetPRF(reported, truth)
	if p != 0.5 || r != 0.5 || f1 != 0.5 {
		t.Errorf("set PRF = %v/%v/%v, want 0.5 each", p, r, f1)
	}
	if p, r, f1 := SetPRF(nil, map[uint64]bool{}); p != 0 || r != 0 || f1 != 0 {
		t.Errorf("empty sets must score zero, got %v/%v/%v", p, r, f1)
	}
}

func TestTallySrcsMatchesStreamReplay(t *testing.T) {
	sc, ok := traffic.FindScenario(traffic.Registry(0.25), "pulse-ddos")
	if !ok {
		t.Fatal("pulse-ddos missing from registry")
	}
	t1, n1 := TallySrcs(sc.Build(3))
	t2, n2 := TallySrcs(sc.Build(3))
	if n1 == 0 || n1 != n2 || len(t1) != len(t2) {
		t.Fatalf("tally not reproducible: %d/%d packets, %d/%d keys", n1, n2, len(t1), len(t2))
	}
	for k, v := range t1 {
		if t2[k] != v {
			t.Fatalf("tally diverged at key %d: %d vs %d", k, v, t2[k])
		}
	}
}
