// Package detect scores the detector, not just the datapath: it replays
// (scenario × config × shards × sched) cells from the internal/traffic
// scenario registry through the netem simulator and grades the resulting
// digest stream against the scenario's machine-readable ground truth.
//
// Each cell runs twice — once on the attack trace and once on the benign
// control twin — and yields, per detector track:
//
//   - time-to-detect: mean delay from attack onset to the first alert (for
//     heavy hitters, the first promotion of a culprit key) inside the attack
//     window,
//   - precision / recall / F1: over fixed evaluation windows of the virtual
//     clock for the temporal tracks (entropy collapse, σ-band window), and
//     over the ≥2%-share heavy-key sets for the heavy-hitter track,
//   - drill-down accuracy: the fraction of ground-truth culprit sources
//     present in the candidate table,
//   - false-alarm rate: alerts per second and flagged-window fraction on the
//     benign twin (misidentified heavy keys for the heavy-hitter track).
//
// These fold into a single composite quality Q in [0, 1] (see Result.Quality)
// used for two machine checks: the dominance assertion — every pathological
// configuration must score strictly worse than its healthy twin on every
// scenario its track is expected to catch, otherwise the scorer itself is
// broken — and the DETECT_<n>.json regression gate driven by cmd/stat4-detect.
//
// Everything is deterministic: generators are seed-pinned, the simulator runs
// on a virtual clock, and candidate orderings are canonically sorted, so the
// same grid at the same seed reproduces byte-identical scores.
package detect
