package detect

import (
	"fmt"

	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// heavyShare is the share of total packets a key must hold to count as a
// heavy hitter, both in ground truth and in reported estimates.
const heavyShare = 0.02

// evalWindows is how many fixed windows the virtual clock is cut into for
// temporal precision/recall.
const evalWindows = 32

// defaultCtrlDelayNs is the switch→controller digest latency: 1 ms, as in
// the case study.
const defaultCtrlDelayNs = 1_000_000

// Cell is one point of the quality matrix: a scenario replayed against a
// detector configuration at a shard count under a scheduler engine.
type Cell struct {
	Scenario traffic.Scenario
	Config   Config
	Shards   int
	Sched    netem.SchedMode
	Seed     int64
	// CtrlDelayNs is the digest delivery latency (0 → 1 ms).
	CtrlDelayNs uint64
}

// Result is the scored outcome of one cell. Metric semantics are per track:
// temporal tracks (entropy, window) score fixed evaluation windows, the
// heavy-hitter track scores the ≥2%-share key sets; BenignFlagged is the
// flagged-window fraction for the former and the misidentification rate
// (1 − precision of the benign heavy set) for the latter.
type Result struct {
	Scenario     string `json:"scenario"`
	Config       string `json:"config"`
	Track        string `json:"track"`
	Shards       int    `json:"shards"`
	Sched        string `json:"sched"`
	Pathological bool   `json:"pathological,omitempty"`
	HealthyTwin  string `json:"healthy_twin,omitempty"`
	// Detectable records whether the scenario tags this config's track in
	// DetectableBy — the cells quality gates compare on.
	Detectable bool `json:"detectable"`

	Packets       uint64 `json:"packets"`
	BenignPackets uint64 `json:"benign_packets"`
	Alerts        int    `json:"alerts"`
	BenignAlerts  int    `json:"benign_alerts"`

	AttacksTotal    int      `json:"attacks_total"`
	AttacksDetected int      `json:"attacks_detected"`
	TTDNs           *float64 `json:"ttd_ns"` // mean time-to-detect; null when nothing was detected
	Precision       float64  `json:"precision"`
	Recall          float64  `json:"recall"`
	F1              float64  `json:"f1"`
	Drilldown       *float64 `json:"drilldown"` // culprit surfacing accuracy; null without culprit truth

	FalseAlarmsPerSec float64 `json:"false_alarms_per_sec"`
	BenignFlagged     float64 `json:"benign_flagged"`

	// Quality is the composite Q ∈ [0, 1] the dominance and regression
	// gates compare: attack-scoring F1 (blended with drill-down and
	// culprit-window detection for heavy hitters) discounted by the
	// benign-twin false-alarm measure.
	Quality float64 `json:"quality"`
}

// Key identifies a cell across runs and baselines.
func (r Result) Key() string {
	return fmt.Sprintf("%s/%s/%d/%s", r.Scenario, r.Config, r.Shards, r.Sched)
}

// SchedName renders a scheduler mode for reports.
func SchedName(m netem.SchedMode) string {
	if m == netem.SchedHeap {
		return "heap"
	}
	return "wheel"
}

// replayOut is what one simulator pass yields.
type replayOut struct {
	alerts     []Alert
	candidates []stat4p4.HHEntry
	warmupNs   uint64
}

// replay compiles the config, binds it, replays one stream through the
// simulator and collects the track's digest stream (and, for heavy hitters,
// the merged candidate table).
func replay(c Cell, stream traffic.Stream) (replayOut, error) {
	var out replayOut
	lib := stat4p4.Build(c.Config.Opts)

	var (
		binder Binder
		sr     *stat4p4.ShardedRuntime
		rt     *stat4p4.Runtime
		err    error
	)
	if c.Shards > 1 {
		sr, err = stat4p4.NewShardedRuntime(lib, c.Shards)
		if err != nil {
			return out, fmt.Errorf("detect: sharded runtime: %w", err)
		}
		defer sr.Close()
		binder = sr
	} else {
		rt, err = stat4p4.NewRuntime(lib)
		if err != nil {
			return out, fmt.Errorf("detect: runtime: %w", err)
		}
		binder = rt
	}
	out.warmupNs, err = c.Config.Bind(binder, c.Scenario.EndNs)
	if err != nil {
		return out, fmt.Errorf("detect: bind %s: %w", c.Config.Name, err)
	}

	ctrl := c.CtrlDelayNs
	if ctrl == 0 {
		ctrl = defaultCtrlDelayNs
	}
	wantID := stat4p4.DigestAnomaly
	switch c.Config.Track {
	case TrackEntropy:
		wantID = stat4p4.DigestEntropy
	case TrackHH:
		wantID = stat4p4.DigestHeavyHitter
	}
	onDigest := func(now uint64, d p4.Digest) {
		if d.ID != wantID {
			return
		}
		a := Alert{TsNs: now}
		if c.Config.Track == TrackHH {
			a.Key = d.Values[1]
		}
		out.alerts = append(out.alerts, a)
	}

	sim := netem.NewSimSched(c.Sched)
	if sr != nil {
		node := netem.NewShardedSwitchNode(sim, sr.Sharded(), ctrl)
		node.OnDigest = onDigest
		node.InjectStream(stream, 1)
	} else {
		node := netem.NewSwitchNode(sim, rt.Switch(), ctrl)
		node.OnDigest = onDigest
		node.InjectStream(stream, 1)
	}
	sim.Run()

	if c.Config.Track == TrackHH {
		if sr != nil {
			out.candidates, err = sr.MergedHeavyHitters(0)
		} else {
			out.candidates, err = rt.ReadHeavyHitters(0)
		}
		if err != nil {
			return out, fmt.Errorf("detect: read candidates: %w", err)
		}
	}
	return out, nil
}

// Run replays a cell's attack trace and benign twin and scores them.
func Run(c Cell) (Result, error) {
	res := Result{
		Scenario:     c.Scenario.Name,
		Config:       c.Config.Name,
		Track:        string(c.Config.Track),
		Shards:       c.Shards,
		Sched:        SchedName(c.Sched),
		Pathological: c.Config.Pathological,
		HealthyTwin:  c.Config.HealthyTwin,
	}
	for _, t := range c.Scenario.DetectableBy {
		if t == string(c.Config.Track) {
			res.Detectable = true
		}
	}

	atk, err := replay(c, c.Scenario.Build(c.Seed))
	if err != nil {
		return res, err
	}
	ben, err := replay(c, c.Scenario.Benign(c.Seed))
	if err != nil {
		return res, err
	}
	res.Alerts = len(atk.alerts)
	res.BenignAlerts = len(ben.alerts)

	atkTally, atkTotal := TallySrcs(c.Scenario.Build(c.Seed))
	benTally, benTotal := TallySrcs(c.Scenario.Benign(c.Seed))
	res.Packets = atkTotal
	res.BenignPackets = benTotal

	endNs := c.Scenario.EndNs
	seconds := float64(endNs) / 1e9
	if seconds > 0 {
		res.FalseAlarmsPerSec = float64(len(ben.alerts)) / seconds
	}

	if c.Config.Track == TrackHH {
		scoreHH(&res, c, atk, ben, atkTally, atkTotal, benTally, benTotal)
	} else {
		t := ScoreTemporal(c.Scenario.Truth, endNs, atk.warmupNs, evalWindows, atk.alerts)
		res.AttacksTotal = t.AttacksTotal
		res.AttacksDetected = t.AttacksDetected
		res.TTDNs = t.MeanTTDNs
		res.Precision, res.Recall, res.F1 = t.Precision, t.Recall, t.F1
		res.BenignFlagged = FlaggedFraction(endNs, ben.warmupNs, evalWindows, ben.alerts)
		res.Quality = t.F1 * (1 - res.BenignFlagged)
	}
	return res, nil
}

// scoreHH grades the heavy-hitter track: set precision/recall at the heavy
// share threshold, drill-down accuracy over the candidate table, per-attack
// culprit detection timing, and benign misidentification.
func scoreHH(res *Result, c Cell, atk, ben replayOut, atkTally map[uint64]uint64, atkTotal uint64, benTally map[uint64]uint64, benTotal uint64) {
	reported := estimatedHeavy(atk.candidates, c.Config.SampleShift, atkTotal)
	truthSet := HeavySet(atkTally, atkTotal, heavyShare)
	res.Precision, res.Recall, res.F1 = SetPRF(reported, truthSet)

	// Drill-down: culprits surfaced anywhere in the candidate table.
	truth := c.Scenario.Truth
	if len(truth.CulpritSrcs) > 0 {
		inTable := make(map[uint64]bool, len(atk.candidates))
		for _, e := range atk.candidates {
			inTable[e.Key] = true
		}
		hit := 0
		for _, k := range truth.CulpritSrcs {
			if inTable[k] {
				hit++
			}
		}
		d := float64(hit) / float64(len(truth.CulpritSrcs))
		res.Drilldown = &d
	}

	// Per-attack detection: the first promotion of a culprit key inside the
	// attack interval (one evaluation window of grace past its end).
	res.AttacksTotal = len(truth.Attacks)
	if len(truth.CulpritSrcs) > 0 {
		culprit := make(map[uint64]bool, len(truth.CulpritSrcs))
		for _, k := range truth.CulpritSrcs {
			culprit[k] = true
		}
		grace := c.Scenario.EndNs / evalWindows
		var ttdSum float64
		for _, w := range truth.Attacks {
			best, found := uint64(0), false
			for _, a := range atk.alerts {
				if !culprit[a.Key] || a.TsNs < w.StartNs || a.TsNs >= w.EndNs+grace {
					continue
				}
				if !found || a.TsNs < best {
					best, found = a.TsNs, true
				}
			}
			if found {
				res.AttacksDetected++
				ttdSum += float64(best - w.StartNs)
			}
		}
		if res.AttacksDetected > 0 {
			m := ttdSum / float64(res.AttacksDetected)
			res.TTDNs = &m
		}
	}

	// Benign misidentification: keys reported heavy on the twin that are not
	// genuinely heavy there.
	benReported := estimatedHeavy(ben.candidates, c.Config.SampleShift, benTotal)
	if len(benReported) > 0 {
		p, _, _ := SetPRF(benReported, HeavySet(benTally, benTotal, heavyShare))
		res.BenignFlagged = 1 - p
	}

	base := res.F1
	if len(truth.CulpritSrcs) > 0 {
		detected := 0.0
		if res.AttacksTotal > 0 {
			detected = float64(res.AttacksDetected) / float64(res.AttacksTotal)
		}
		base = (res.F1 + *res.Drilldown + detected) / 3
	}
	res.Quality = base * (1 - res.BenignFlagged)
}

// estimatedHeavy scales candidate counts back to packet estimates
// (count · 2^sampleShift) and keeps the keys whose estimate clears the heavy
// share of the true total.
func estimatedHeavy(candidates []stat4p4.HHEntry, sampleShift uint, total uint64) map[uint64]bool {
	set := make(map[uint64]bool)
	if total == 0 {
		return set
	}
	floor := heavyShare * float64(total)
	for _, e := range candidates {
		est := float64(e.Count) * float64(uint64(1)<<sampleShift)
		if est >= floor {
			set[e.Key] = true
		}
	}
	return set
}
