package detect

import (
	"encoding/json"
	"testing"

	"stat4/internal/netem"
	"stat4/internal/traffic"
)

// testGrid is the CI quality matrix at smoke scale. -short drops the 4-shard
// column and the heap cross-check cells, leaving the full scenario × config
// product at one shard.
func testGrid(t *testing.T) Grid {
	t.Helper()
	g := DefaultGrid(0.25)
	if testing.Short() {
		g.Shards = []int{1}
		g.HeapTrack = ""
	}
	return g
}

// TestMatrixContract runs the quality matrix once and checks every gate the
// DETECT_<n>.json artifact ships with:
//
//   - dominance: each pathological config scores strictly below its healthy
//     twin on every scenario its track should catch;
//   - benign restraint: healthy configs stay quiet on the benign twin of
//     scenarios they are meant to detect;
//   - coverage: every (scenario, config) pairing produced a scored cell.
func TestMatrixContract(t *testing.T) {
	g := testGrid(t)
	results, err := RunGrid(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(g.Cells()); len(results) != want {
		t.Fatalf("scored %d cells, grid has %d", len(results), want)
	}

	for _, v := range DominanceViolations(results) {
		t.Errorf("dominance: %s", v)
	}

	for _, r := range results {
		if r.Pathological || !r.Detectable {
			continue
		}
		// Temporal tracks may flag at most one benign window of the
		// post-warmup trace (the σ-band can clip a burst right at the
		// warmup edge at smoke scale); the heavy-hitter benign measure is a
		// misidentification rate where keys at the 2%-share boundary
		// fall either side of the sampled estimate.
		limit := 0.05
		if r.Track == string(TrackHH) {
			limit = 0.25
		}
		if r.BenignFlagged > limit {
			t.Errorf("%s: healthy config flagged %.3f of the benign twin (limit %.2f)",
				r.Key(), r.BenignFlagged, limit)
		}
	}

	seen := make(map[string]bool)
	for _, r := range results {
		seen[r.Scenario+"/"+r.Config] = true
	}
	for _, sc := range g.Scenarios {
		for _, cfg := range g.Configs {
			if !seen[sc.Name+"/"+cfg.Name] {
				t.Errorf("no cell scored for %s/%s", sc.Name, cfg.Name)
			}
		}
	}
}

// TestRunDeterministic pins the seed contract: the same cell scored twice
// yields byte-identical results, which is what lets CI gate on exact quality
// numbers instead of tolerance bands.
func TestRunDeterministic(t *testing.T) {
	reg := traffic.Registry(0.25)
	sc, ok := traffic.FindScenario(reg, "pulse-ddos")
	if !ok {
		t.Fatal("pulse-ddos missing from registry")
	}
	cfg, ok := FindConfig(Configs(), "entropy")
	if !ok {
		t.Fatal("entropy config missing")
	}
	cell := Cell{Scenario: sc, Config: cfg, Shards: 2, Sched: netem.SchedWheel, Seed: 1}
	a, err := Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same cell scored differently across runs:\n%s\n%s", ja, jb)
	}
	if a.Packets == 0 || a.Alerts == 0 {
		t.Fatalf("determinism check ran an empty cell: %+v", a)
	}
}

// TestSeedChangesOutcome guards against the seed being silently ignored: a
// different seed must at minimum change the packet stream's tally.
func TestSeedChangesOutcome(t *testing.T) {
	sc, ok := traffic.FindScenario(traffic.Registry(0.25), "pulse-ddos")
	if !ok {
		t.Fatal("pulse-ddos missing from registry")
	}
	t1, n1 := TallySrcs(sc.Build(1))
	t2, n2 := TallySrcs(sc.Build(2))
	if n1 == 0 || n2 == 0 {
		t.Fatal("empty streams")
	}
	same := len(t1) == len(t2)
	if same {
		for k, v := range t1 {
			if t2[k] != v {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical tallies: seed is ignored")
	}
}

// TestSchedulerAgreement cross-checks the two netem engines on one entropy
// cell: the wheel and the heap must order the same virtual-time events the
// same way, so the scored results match exactly (modulo the sched label).
func TestSchedulerAgreement(t *testing.T) {
	sc, ok := traffic.FindScenario(traffic.Registry(0.25), "flash-crowd")
	if !ok {
		t.Fatal("flash-crowd missing from registry")
	}
	cfg, ok := FindConfig(Configs(), "entropy")
	if !ok {
		t.Fatal("entropy config missing")
	}
	wheel, err := Run(Cell{Scenario: sc, Config: cfg, Shards: 1, Sched: netem.SchedWheel, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	heap, err := Run(Cell{Scenario: sc, Config: cfg, Shards: 1, Sched: netem.SchedHeap, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	heap.Sched = wheel.Sched
	jw, _ := json.Marshal(wheel)
	jh, _ := json.Marshal(heap)
	if string(jw) != string(jh) {
		t.Fatalf("wheel and heap engines disagree on the same cell:\nwheel: %s\nheap:  %s", jw, jh)
	}
}
