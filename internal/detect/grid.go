package detect

import (
	"fmt"

	"stat4/internal/netem"
	"stat4/internal/traffic"
)

// Grid spans the quality matrix: every scenario × config × shard count on
// the wheel engine, plus heap-engine cells for one track at the first shard
// count as a scheduler cross-check.
type Grid struct {
	Scale     float64
	Seed      int64
	Scenarios []traffic.Scenario
	Configs   []Config
	Shards    []int
	// HeapTrack adds sched=heap cells for this track's configs at
	// Shards[0] (empty string → none).
	HeapTrack Track
}

// DefaultGrid is the shipping matrix: the full scenario registry against the
// full config registry at 1 and 4 shards, with heap cross-check cells on the
// entropy track.
func DefaultGrid(scale float64) Grid {
	return Grid{
		Scale:     scale,
		Seed:      1,
		Scenarios: traffic.Registry(scale),
		Configs:   Configs(),
		Shards:    []int{1, 4},
		HeapTrack: TrackEntropy,
	}
}

// Cells expands the grid in deterministic scenario-major order.
func (g Grid) Cells() []Cell {
	var cells []Cell
	for _, sc := range g.Scenarios {
		for _, cfg := range g.Configs {
			for _, sh := range g.Shards {
				cells = append(cells, Cell{
					Scenario: sc, Config: cfg, Shards: sh,
					Sched: netem.SchedWheel, Seed: g.Seed,
				})
			}
			if g.HeapTrack != "" && cfg.Track == g.HeapTrack && len(g.Shards) > 0 {
				cells = append(cells, Cell{
					Scenario: sc, Config: cfg, Shards: g.Shards[0],
					Sched: netem.SchedHeap, Seed: g.Seed,
				})
			}
		}
	}
	return cells
}

// RunGrid scores every cell in order. progress (optional) is called before
// each cell runs.
func RunGrid(g Grid, progress func(i, n int, c Cell)) ([]Result, error) {
	cells := g.Cells()
	results := make([]Result, 0, len(cells))
	for i, c := range cells {
		if progress != nil {
			progress(i, len(cells), c)
		}
		r, err := Run(c)
		if err != nil {
			return nil, fmt.Errorf("cell %s/%s/%d/%s: %w",
				c.Scenario.Name, c.Config.Name, c.Shards, SchedName(c.Sched), err)
		}
		results = append(results, r)
	}
	return results, nil
}

// DominanceViolations checks the pathological contract on a result set:
// on every wheel cell of a scenario the track is expected to catch, a
// pathological config must score strictly below its healthy twin. Returns
// one message per violated pairing (empty = contract holds).
func DominanceViolations(results []Result) []string {
	healthy := make(map[string]Result)
	for _, r := range results {
		if !r.Pathological && r.Sched == "wheel" {
			healthy[r.Key()] = r
		}
	}
	var violations []string
	for _, r := range results {
		if !r.Pathological || r.Sched != "wheel" || !r.Detectable {
			continue
		}
		twinKey := fmt.Sprintf("%s/%s/%d/%s", r.Scenario, r.HealthyTwin, r.Shards, r.Sched)
		twin, ok := healthy[twinKey]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: healthy twin %s missing from results", r.Key(), r.HealthyTwin))
			continue
		}
		if !(r.Quality < twin.Quality) {
			violations = append(violations, fmt.Sprintf(
				"%s: pathological quality %.4f not strictly below healthy %s quality %.4f",
				r.Key(), r.Quality, twin.Config, twin.Quality))
		}
	}
	return violations
}
