package detect

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// ReportSchema versions the DETECT_<n>.json layout.
const ReportSchema = "stat4-detect/1"

// ScoredResult is a cell result annotated against a baseline report.
// BaselineQuality serialises as an explicit null when the cell has no
// baseline, and DeltaPct stays null whenever the baseline quality is zero or
// non-finite — the same contract as stat4-bench's baseline_ns_op handling.
type ScoredResult struct {
	Result
	BaselineQuality *float64 `json:"baseline_quality"`
	DeltaQuality    *float64 `json:"delta_quality"` // absolute quality difference
	DeltaPct        *float64 `json:"delta_pct"`
}

// Report is the DETECT_<n>.json artifact: the scored matrix plus the
// dominance audit.
type Report struct {
	Schema              string         `json:"schema"`
	Scale               float64        `json:"scale"`
	Seed                int64          `json:"seed"`
	Cells               int            `json:"cells"`
	DominanceViolations []string       `json:"dominance_violations"`
	Results             []ScoredResult `json:"results"`
}

// BuildReport assembles the artifact, annotating each cell against the
// matching cell of a baseline report (nil baseline → all-null annotations).
func BuildReport(g Grid, results []Result, baseline *Report) Report {
	base := make(map[string]ScoredResult)
	if baseline != nil {
		for _, r := range baseline.Results {
			base[r.Key()] = r
		}
	}
	rep := Report{
		Schema:              ReportSchema,
		Scale:               g.Scale,
		Seed:                g.Seed,
		Cells:               len(results),
		DominanceViolations: DominanceViolations(results),
		Results:             make([]ScoredResult, 0, len(results)),
	}
	if rep.DominanceViolations == nil {
		rep.DominanceViolations = []string{}
	}
	for _, r := range results {
		sr := ScoredResult{Result: r}
		if b, ok := base[r.Key()]; ok {
			q := b.Quality
			sr.BaselineQuality = &q
			d := r.Quality - q
			sr.DeltaQuality = &d
			if q != 0 && !math.IsNaN(q) && !math.IsInf(q, 0) {
				pct := 100 * d / q
				sr.DeltaPct = &pct
			}
		}
		rep.Results = append(rep.Results, sr)
	}
	return rep
}

// GateViolations is the CI quality gate: any dominance violation, plus any
// cell whose quality fell more than tol below its baseline.
func (rep Report) GateViolations(tol float64) []string {
	violations := append([]string(nil), rep.DominanceViolations...)
	for _, r := range rep.Results {
		if r.BaselineQuality == nil {
			continue
		}
		if r.Quality < *r.BaselineQuality-tol {
			violations = append(violations, fmt.Sprintf(
				"%s: quality %.4f regressed below baseline %.4f (tol %.4f)",
				r.Key(), r.Quality, *r.BaselineQuality, tol))
		}
	}
	return violations
}

// LoadReport reads a DETECT_<n>.json artifact.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("detect: parse %s: %w", path, err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("detect: %s has schema %q, want %q", path, rep.Schema, ReportSchema)
	}
	return &rep, nil
}
