package detect

import (
	"math/bits"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
)

// Track names one detector family being scored; values match the
// traffic.Scenario.DetectableBy tags.
type Track string

const (
	// TrackEntropy scores the destination-entropy collapse check.
	TrackEntropy Track = "entropy"
	// TrackHH scores probabilistic-recirculation heavy hitters.
	TrackHH Track = "hh"
	// TrackWindow scores the σ-band time-window check of the case study.
	TrackWindow Track = "window"
)

// Binder is the slice of the stat4p4 runtime surface a detector
// configuration binds through. Both *stat4p4.Runtime and
// *stat4p4.ShardedRuntime satisfy it, so one Config drives any shard count.
type Binder interface {
	Library() *stat4p4.Library
	BindEntropyDst(stage, slot int, m stat4p4.Match, shift uint, base uint64, size int, h0, checkEvery uint64) (p4.EntryID, error)
	BindHeavyHitterSrc(stage, slot int, m stat4p4.Match, shift, sampleShift uint) (p4.EntryID, error)
	BindWindow(stage, slot int, m stat4p4.Match, intervalShift uint, capacity int, k uint64) (p4.EntryID, error)
}

// Config is one detector configuration in the quality matrix: program
// options plus a binding recipe. Pathological configs are deliberately
// broken variants of a healthy twin — the dominance assertion requires each
// to score strictly worse on every scenario its track should catch,
// otherwise the scorer itself has a bug.
type Config struct {
	Name         string
	Track        Track
	Pathological bool
	// HealthyTwin names the healthy config this pathology degrades.
	HealthyTwin string
	// Note says what is wrong with a pathological config (or what the
	// healthy config measures).
	Note string
	// Opts builds the program; taken by value so every cell compiles fresh.
	Opts stat4p4.Options
	// SampleShift scales heavy-hitter candidate counts back to packet
	// estimates (each promotion stands for ~2^SampleShift packets).
	SampleShift uint
	// Bind applies the recipe and returns the warmup horizon before which
	// alerts are unscorable (the detector is still priming).
	Bind func(b Binder, endNs uint64) (warmupNs uint64, err error)
}

// The shared address plan of the scenario registry: destinations live in
// 10.0.0.0/24 (group = low byte).
var (
	detGroupBase = uint64(packet.ParseIP4(10, 0, 0, 0))
	detVictimNet = packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8)
	detDeafNet   = packet.NewPrefix(packet.ParseIP4(172, 16, 0, 0), 12)
)

// entropyH0 is the collapse threshold: 4 bits of destination entropy at the
// library's canonical 2^16 fixed-point scale. Balanced background sits near
// log2(200) ≈ 7.6 bits; a single-victim flood drags the mix toward 0.
const entropyH0 = 4 << 16

// entropyCheckEvery gates the division-free collapse check to every 1024th
// observation (must be a power of two).
const entropyCheckEvery = 1024

// hhSampleShift is the healthy recirculation coin: promote with probability
// 2^-8, so a candidate count of c estimates c·256 packets.
const hhSampleShift = 8

// windowShift picks the interval width for the σ-band window so a trace of
// endNs spans ~256 intervals regardless of scale (floor 2^14 ns keeps
// intervals meaningful on tiny smoke traces).
func windowShift(endNs uint64) uint {
	target := endNs / 256
	if target == 0 {
		return 14
	}
	sh := uint(bits.Len64(target)) - 1
	if sh < 14 {
		sh = 14
	}
	return sh
}

// windowWarmup is the priming horizon for window configs: 48 intervals —
// enough to fill the 32-interval window and let σ settle.
func windowWarmup(endNs uint64) uint64 { return 48 << windowShift(endNs) }

func entropyOpts() stat4p4.Options {
	return stat4p4.Options{Slots: 1, Size: 256, Stages: 1, Entropy: true, DigestBuf: 8192}
}

func hhOpts() stat4p4.Options {
	return stat4p4.Options{Slots: 1, Size: 64, Stages: 1, HeavyHitter: true, HHTableSize: 128, DigestBuf: 8192}
}

func windowOpts() stat4p4.Options {
	return stat4p4.Options{Slots: 1, Size: 256, Stages: 1, DigestBuf: 8192}
}

// Configs returns the detector-configuration registry: one healthy config
// per track plus its pathological degradations.
func Configs() []Config {
	return []Config{
		{
			Name:  "entropy",
			Track: TrackEntropy,
			Note:  "destination entropy over the /24 group space, collapse below 4 bits",
			Opts:  entropyOpts(),
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 0, detGroupBase, 256, entropyH0, entropyCheckEvery)
				return 0, err
			},
		},
		{
			Name:         "ent-misbound",
			Track:        TrackEntropy,
			Pathological: true,
			HealthyTwin:  "entropy",
			Note:         "table bound to 172.16.0.0 — no scenario packet ever lands in the group space",
			Opts:         entropyOpts(),
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 0, uint64(packet.ParseIP4(172, 16, 0, 0)), 256, entropyH0, entropyCheckEvery)
				return 0, err
			},
		},
		{
			Name:         "ent-fracmis",
			Track:        TrackEntropy,
			Pathological: true,
			HealthyTwin:  "entropy",
			Note:         "frac width 1 with the threshold still scaled 2^16 — effective h0 of 2^17 bits, alarms on everything",
			Opts: func() stat4p4.Options {
				o := entropyOpts()
				o.EntropyFrac = 1
				return o
			}(),
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 0, detGroupBase, 256, entropyH0, entropyCheckEvery)
				return 0, err
			},
		},
		{
			Name:         "ent-saturated",
			Track:        TrackEntropy,
			Pathological: true,
			HealthyTwin:  "entropy",
			Note:         "12-bit register cells — counters and the S accumulator wrap within a trace, the check fires on garbage",
			Opts: func() stat4p4.Options {
				o := entropyOpts()
				o.CellWidth = 12
				return o
			}(),
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindEntropyDst(0, 0, stat4p4.AllIPv4(), 0, detGroupBase, 256, entropyH0, entropyCheckEvery)
				return 0, err
			},
		},
		{
			Name:        "hh",
			Track:       TrackHH,
			Note:        "per-source recirculation coin at 2^-8 into a 128-entry candidate table",
			Opts:        hhOpts(),
			SampleShift: hhSampleShift,
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 0, hhSampleShift)
				return 0, err
			},
		},
		{
			Name:         "hh-starved",
			Track:        TrackHH,
			Pathological: true,
			HealthyTwin:  "hh",
			Note:         "coin at 2^-30 — no flow in a sub-second trace ever wins recirculation",
			Opts:         hhOpts(),
			SampleShift:  30,
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 0, 30)
				return 0, err
			},
		},
		{
			Name:         "hh-squashed",
			Track:        TrackHH,
			Pathological: true,
			HealthyTwin:  "hh",
			Note:         "key shift 32 squashes every source to key 0 — the table fills with one meaningless flow",
			Opts:         hhOpts(),
			SampleShift:  hhSampleShift,
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindHeavyHitterSrc(0, 0, stat4p4.AllIPv4(), 32, hhSampleShift)
				return 0, err
			},
		},
		{
			Name:  "window",
			Track: TrackWindow,
			Note:  "σ-band packet-rate window over 10.0.0.0/8: 32 intervals, k = 4",
			Opts:  windowOpts(),
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindWindow(0, 0, stat4p4.DstIn(detVictimNet), windowShift(endNs), 32, 4)
				return windowWarmup(endNs), err
			},
		},
		{
			Name:         "win-deaf",
			Track:        TrackWindow,
			Pathological: true,
			HealthyTwin:  "window",
			Note:         "window bound to 172.16.0.0/12 — matches nothing, never alarms",
			Opts:         windowOpts(),
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindWindow(0, 0, stat4p4.DstIn(detDeafNet), windowShift(endNs), 32, 4)
				return windowWarmup(endNs), err
			},
		},
		{
			Name:         "win-hair",
			Track:        TrackWindow,
			Pathological: true,
			HealthyTwin:  "window",
			Note:         "k = 0 — alarms on any interval above the running mean, ~half of benign time",
			Opts:         windowOpts(),
			Bind: func(b Binder, endNs uint64) (uint64, error) {
				_, err := b.BindWindow(0, 0, stat4p4.DstIn(detVictimNet), windowShift(endNs), 32, 0)
				return windowWarmup(endNs), err
			},
		},
	}
}

// FindConfig returns the named config from a registry, or false.
func FindConfig(cfgs []Config, name string) (Config, bool) {
	for _, c := range cfgs {
		if c.Name == name {
			return c, true
		}
	}
	return Config{}, false
}
