package detect

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleResult(scenario, config string, quality float64) Result {
	return Result{
		Scenario: scenario, Config: config, Track: "entropy",
		Shards: 1, Sched: "wheel", Detectable: true, Quality: quality,
	}
}

// TestBuildReportWithoutBaseline pins the no-baseline contract inherited
// from stat4-bench: baseline_quality and delta_pct serialise as explicit
// nulls, never as zeros that a dashboard would mistake for a measurement.
func TestBuildReportWithoutBaseline(t *testing.T) {
	g := Grid{Scale: 1, Seed: 1}
	rep := BuildReport(g, []Result{sampleResult("s", "c", 0.5)}, nil)
	if rep.Schema != ReportSchema || rep.Cells != 1 {
		t.Fatalf("report header off: %+v", rep)
	}
	if rep.DominanceViolations == nil || len(rep.DominanceViolations) != 0 {
		t.Fatalf("dominance_violations must serialise as an empty array, got %#v", rep.DominanceViolations)
	}
	data, err := json.Marshal(rep.Results[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"baseline_quality":null`, `"delta_quality":null`, `"delta_pct":null`} {
		if !strings.Contains(string(data), field) {
			t.Errorf("missing explicit null %s in %s", field, data)
		}
	}
}

// TestBuildReportZeroBaseline: a baseline cell with quality 0 yields a
// defined absolute delta but a null delta_pct (a percentage of zero is
// meaningless, same convention as stat4-bench's baseline_ns_op handling).
func TestBuildReportZeroBaseline(t *testing.T) {
	g := Grid{Scale: 1, Seed: 1}
	base := BuildReport(g, []Result{sampleResult("s", "c", 0)}, nil)
	rep := BuildReport(g, []Result{sampleResult("s", "c", 0.4)}, &base)
	r := rep.Results[0]
	if r.BaselineQuality == nil || *r.BaselineQuality != 0 {
		t.Fatalf("baseline quality not carried over: %+v", r)
	}
	if r.DeltaQuality == nil || *r.DeltaQuality != 0.4 {
		t.Fatalf("absolute delta should be 0.4: %+v", r)
	}
	if r.DeltaPct != nil {
		t.Fatalf("delta_pct must stay null against a zero baseline, got %v", *r.DeltaPct)
	}
}

// TestBuildReportNonZeroBaseline covers the regular annotated path and the
// unmatched-cell path in one report.
func TestBuildReportNonZeroBaseline(t *testing.T) {
	g := Grid{Scale: 1, Seed: 1}
	base := BuildReport(g, []Result{sampleResult("s", "c", 0.5)}, nil)
	rep := BuildReport(g, []Result{
		sampleResult("s", "c", 0.6),
		sampleResult("s", "new-config", 0.3), // not in baseline
	}, &base)
	r := rep.Results[0]
	if r.DeltaQuality == nil || *r.DeltaQuality < 0.0999 || *r.DeltaQuality > 0.1001 {
		t.Fatalf("delta_quality should be ~0.1: %+v", r)
	}
	if r.DeltaPct == nil || *r.DeltaPct < 19.99 || *r.DeltaPct > 20.01 {
		t.Fatalf("delta_pct should be ~20%%: %+v", r)
	}
	if n := rep.Results[1]; n.BaselineQuality != nil || n.DeltaPct != nil {
		t.Fatalf("cell absent from baseline must stay null-annotated: %+v", n)
	}
}

// TestGateViolations: the CI gate fires on dominance breaks and on quality
// regressions beyond tolerance, and stays quiet inside the band.
func TestGateViolations(t *testing.T) {
	g := Grid{Scale: 1, Seed: 1}
	base := BuildReport(g, []Result{sampleResult("s", "c", 0.8)}, nil)

	ok := BuildReport(g, []Result{sampleResult("s", "c", 0.79)}, &base)
	if v := ok.GateViolations(0.02); len(v) != 0 {
		t.Fatalf("regression within tolerance must pass, got %v", v)
	}

	bad := BuildReport(g, []Result{sampleResult("s", "c", 0.5)}, &base)
	if v := bad.GateViolations(0.02); len(v) != 1 || !strings.Contains(v[0], "regressed") {
		t.Fatalf("want one regression violation, got %v", v)
	}

	bad.DominanceViolations = append(bad.DominanceViolations, "s/patho/1/wheel: not strictly below")
	if v := bad.GateViolations(0.02); len(v) != 2 {
		t.Fatalf("dominance violations must surface through the gate, got %v", v)
	}
}

// TestLoadReportRoundTrip writes an artifact and reads it back; a wrong
// schema string must be rejected.
func TestLoadReportRoundTrip(t *testing.T) {
	g := Grid{Scale: 0.25, Seed: 1}
	rep := BuildReport(g, []Result{sampleResult("s", "c", 0.7)}, nil)
	path := filepath.Join(t.TempDir(), "DETECT_test.json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cells != 1 || got.Results[0].Quality != 0.7 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	bad := strings.Replace(string(data), ReportSchema, "stat4-detect/0", 1)
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(badPath); err == nil {
		t.Fatal("mismatched schema must be rejected")
	}
}
