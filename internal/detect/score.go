package detect

import (
	"sort"

	"stat4/internal/traffic"
)

// Alert is one detection event on the virtual clock: the controller-side
// arrival time of a digest, plus the reported key for heavy-hitter
// promotions.
type Alert struct {
	TsNs uint64
	Key  uint64
}

// Temporal is the windowed score of an alert stream against attack ground
// truth. The trace [0, EndNs) is cut into fixed evaluation windows; a window
// is truth-positive when it overlaps an attack interval and predicted-positive
// when at least one alert lands in it. Windows that end before the warmup
// horizon are excluded, as are alerts raised during warmup.
type Temporal struct {
	Windows int // evaluation windows scored (after warmup exclusion)
	Flagged int // windows with at least one alert
	TP      int
	FP      int
	FN      int

	Precision float64
	Recall    float64
	F1        float64

	AttacksTotal    int
	AttacksDetected int
	// MeanTTDNs is the mean delay from attack onset to the first alert
	// inside the attack interval (plus one window of grace), over detected
	// attacks. Nil when no attack was detected.
	MeanTTDNs *float64
}

// ScoreTemporal grades alerts against truth over `windows` fixed evaluation
// windows of [0, endNs).
func ScoreTemporal(truth traffic.Truth, endNs, warmupNs uint64, windows int, alerts []Alert) Temporal {
	if windows <= 0 || endNs == 0 {
		return Temporal{}
	}
	winNs := endNs / uint64(windows)
	if winNs == 0 {
		winNs = 1
	}
	flagged := make([]bool, windows)
	for _, a := range alerts {
		if a.TsNs < warmupNs || a.TsNs >= endNs {
			continue
		}
		w := int(a.TsNs / winNs)
		if w >= windows {
			w = windows - 1
		}
		flagged[w] = true
	}

	var t Temporal
	for w := 0; w < windows; w++ {
		start, end := uint64(w)*winNs, uint64(w+1)*winNs
		if end <= warmupNs {
			continue // detector not armed yet: window is unscorable
		}
		t.Windows++
		truthPos := false
		for _, atk := range truth.Attacks {
			if start < atk.EndNs && end > atk.StartNs {
				truthPos = true
				break
			}
		}
		switch {
		case flagged[w] && truthPos:
			t.TP++
			t.Flagged++
		case flagged[w]:
			t.FP++
			t.Flagged++
		case truthPos:
			t.FN++
		}
	}
	t.Precision, t.Recall, t.F1 = prf(t.TP, t.FP, t.FN)

	// Per-attack detection and time-to-detect: the first alert inside the
	// attack interval, with one evaluation window of grace past its end.
	t.AttacksTotal = len(truth.Attacks)
	var ttdSum float64
	for _, atk := range truth.Attacks {
		best, found := uint64(0), false
		for _, a := range alerts {
			if a.TsNs < warmupNs || a.TsNs < atk.StartNs || a.TsNs >= atk.EndNs+winNs {
				continue
			}
			if !found || a.TsNs < best {
				best, found = a.TsNs, true
			}
		}
		if found {
			t.AttacksDetected++
			ttdSum += float64(best - atk.StartNs)
		}
	}
	if t.AttacksDetected > 0 {
		m := ttdSum / float64(t.AttacksDetected)
		t.MeanTTDNs = &m
	}
	return t
}

// FlaggedFraction is the benign-twin false-alarm measure for temporal
// tracks: the fraction of post-warmup evaluation windows containing at least
// one alert.
func FlaggedFraction(endNs, warmupNs uint64, windows int, alerts []Alert) float64 {
	t := ScoreTemporal(traffic.Truth{}, endNs, warmupNs, windows, alerts)
	if t.Windows == 0 {
		return 0
	}
	return float64(t.Flagged) / float64(t.Windows)
}

// prf computes precision, recall and F1 from confusion counts, with the
// empty-denominator convention precision(0 reported) = recall(0 positives) = 0.
func prf(tp, fp, fn int) (p, r, f1 float64) {
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// TallySrcs drains a stream counting packets per IPv4 source address. It
// returns the per-key tally and the total IPv4 packet count — the exact
// ground truth a heavy-hitter run is graded against (streams rebuild
// identically for the same seed, so draining costs one extra generation).
func TallySrcs(st traffic.Stream) (map[uint64]uint64, uint64) {
	tally := make(map[uint64]uint64)
	var total uint64
	for {
		p, ok := st.Next()
		if !ok {
			return tally, total
		}
		if !p.Frame.HasIPv4 {
			continue
		}
		tally[uint64(p.Frame.IPv4.Src)]++
		total++
	}
}

// HeavySet selects the keys holding at least `share` of total packets —
// the ground-truth heavy-key set at that threshold.
func HeavySet(tally map[uint64]uint64, total uint64, share float64) map[uint64]bool {
	set := make(map[uint64]bool)
	if total == 0 {
		return set
	}
	floor := share * float64(total)
	for k, n := range tally {
		if float64(n) >= floor {
			set[k] = true
		}
	}
	return set
}

// SetPRF grades a reported key set against a truth set.
func SetPRF(reported, truth map[uint64]bool) (p, r, f1 float64) {
	tp := 0
	for k := range reported {
		if truth[k] {
			tp++
		}
	}
	return prf(tp, len(reported)-tp, len(truth)-tp)
}

// SortedKeys returns a set's keys in ascending order, for deterministic
// reporting.
func SortedKeys(set map[uint64]bool) []uint64 {
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
