package netem

import (
	"math/rand"
	"testing"

	"stat4/internal/controller"
	"stat4/internal/core"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// TestTwoSwitchTopology wires two Stat4 switches in series — traffic enters
// switch A, A forwards over a 2 ms link into switch B, both track the same
// per-destination distribution — and the controller merges their counters
// into network-wide statistics (the Section 5 multi-switch direction).
func TestTwoSwitchTopology(t *testing.T) {
	mk := func() *stat4p4.Runtime {
		rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0,
			uint64(packet.ParseIP4(10, 0, 9, 0)), 64, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b := mk(), mk()
	// A routes everything toward B on port 2; B delivers locally on port 1.
	if _, err := a.AddRoute(packet.NewPrefix(0, 0), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRoute(packet.NewPrefix(0, 0), 1); err != nil {
		t.Fatal(err)
	}

	sim := NewSim()
	nodeA := NewSwitchNode(sim, a.Switch(), 1e6)
	nodeB := NewSwitchNode(sim, b.Switch(), 1e6)

	// Link A:2 → B with 2 ms latency.
	const linkDelay = 2e6
	var deliveredToB uint64
	nodeA.Connect(2, linkDelay, func(now uint64, data []byte) {
		deliveredToB++
		// Frames ingress B as raw bytes, like a real wire.
		nodeB.InjectFrame(1, data)
	})
	var sunk uint64
	var lastArrival uint64
	nodeB.Connect(1, 1e5, func(now uint64, data []byte) {
		sunk++
		lastArrival = now
	})

	dests := make([]packet.IP4, 8)
	for i := range dests {
		dests[i] = packet.ParseIP4(10, 0, 9, byte(i))
	}
	load := &traffic.LoadBalanced{Dests: dests, Rate: 100000, End: 1e8, Seed: 1}
	nodeA.InjectStream(load, 1)
	sim.Run()

	if deliveredToB == 0 {
		t.Fatal("nothing crossed the A→B link")
	}
	if a.Switch().Stats().PktsOut != deliveredToB {
		t.Fatalf("A emitted %d, B received %d", a.Switch().Stats().PktsOut, deliveredToB)
	}
	if sunk != deliveredToB {
		t.Fatalf("B sank %d of %d", sunk, deliveredToB)
	}
	if lastArrival < linkDelay {
		t.Fatal("link latency not applied")
	}

	// Both switches saw the same stream: their distributions agree, and
	// the controller's shared merge doubles every counter.
	ca, _ := a.ReadCounters(0, 64)
	cb, _ := b.ReadCounters(0, 64)
	for v := range ca {
		if ca[v] != cb[v] {
			t.Fatalf("switches disagree at value %d: %d vs %d", v, ca[v], cb[v])
		}
	}
	merged, m, err := controller.PullShared(0, 64, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for v := range merged {
		if merged[v] != 2*ca[v] {
			t.Fatalf("merged[%d] = %d, want %d", v, merged[v], 2*ca[v])
		}
	}
	am, _ := a.ReadMoments(0)
	if m.Sum != 2*am.Xsum {
		t.Fatalf("merged Xsum %d, want twice %d", m.Sum, am.Xsum)
	}
}

// TestEchoOverNetwork runs the Figure 5 validation through the simulated
// network: a host node sends echo frames over a delayed link, the switch
// updates its distribution and replies, and the host validates each reply
// against its own computation — with the link delay meaning replies always
// describe the state as of the request's arrival.
func TestEchoOverNetwork(t *testing.T) {
	const (
		domain  = 512
		packets = 2000
		hostSw  = 500_000 // 0.5 ms each way
	)
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: domain, Stages: 1, Echo: true})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqEcho(0, 0, stat4p4.EchoOnly(), stat4p4.EchoBias-255, domain, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	node := NewSwitchNode(sim, rt.Switch(), 1e6)

	host := core.NewFreqDist(domain)
	med := host.TrackMedian()
	// The host's view of its own stream, indexed by send order; replies
	// come back in order over the FIFO link.
	type expect struct{ n, sum, sumsq, vr, sd, median uint64 }
	var pending []expect
	received := 0
	node.Connect(7, hostSw, func(now uint64, data []byte) {
		pkt, err := packet.Parse(data)
		if err != nil {
			t.Errorf("reply unparseable: %v", err)
			return
		}
		reply, err := packet.UnmarshalEchoReply(pkt.Payload)
		if err != nil {
			t.Errorf("bad reply: %v", err)
			return
		}
		want := pending[received]
		received++
		if reply.N != want.n || reply.Xsum != want.sum || reply.Xsumsq != want.sumsq ||
			reply.Var != want.vr || reply.SD != want.sd || reply.Median != want.median {
			t.Errorf("reply %d: switch (%d,%d,%d,%d,%d,%d) host (%d,%d,%d,%d,%d,%d)",
				received, reply.N, reply.Xsum, reply.Xsumsq, reply.Var, reply.SD, reply.Median,
				want.n, want.sum, want.sumsq, want.vr, want.sd, want.median)
		}
	})

	rng := rand.New(rand.NewSource(77))
	for i := 0; i < packets; i++ {
		v := int16(rng.Intn(511) - 255)
		sendAt := uint64(i) * 10_000
		frame := packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, v)
		value := uint64(int64(v) + 255)
		sim.At(sendAt+hostSw, func() {
			// The switch sees the frame after the host→switch delay; the
			// host's model updates at the same logical instant.
			if err := host.Observe(value); err != nil {
				t.Errorf("host observe: %v", err)
			}
			m := host.Moments()
			pending = append(pending, expect{
				n: m.N, sum: m.Sum, sumsq: m.Sumsq,
				vr: m.Variance(), sd: m.StdDev(), median: med.Value(),
			})
			node.InjectFrame(7, frame.Serialize())
		})
	}
	sim.Run()
	if received != packets {
		t.Fatalf("received %d of %d replies", received, packets)
	}
}
