package netem

import (
	"testing"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// TestShardedSwitchNodeEndToEnd wires a 4-shard Stat4 deployment into the
// simulator and checks the SwitchNode contract holds for the sharded node:
// frames reach connected ports, digests reach the controller after the
// control delay, and the state the run leaves behind is byte-identical to a
// serial switch that saw the same stream — the netem leg of the tentpole
// equivalence.
func TestShardedSwitchNodeEndToEnd(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	sr, err := stat4p4.NewShardedRuntime(lib, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	serial, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	if _, err := sr.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, dstBase, 64, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := serial.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, dstBase, 64, 1, 1, 0); err != nil {
		t.Fatal(err)
	}

	sim := NewSim()
	node := NewShardedSwitchNode(sim, sr.Sharded(), 500)
	node.Metrics = telemetry.NewNodeMetrics()

	var digests int
	node.OnDigest = func(now uint64, d p4.Digest) { digests++ }
	var delivered int
	node.Connect(0, 100, func(now uint64, data []byte) { delivered++ })

	// Traffic spread over many flows so every shard sees work; the serial
	// reference replays the same generator.
	dests := []packet.IP4{
		packet.ParseIP4(10, 0, 0, 1), packet.ParseIP4(10, 0, 0, 2),
		packet.ParseIP4(10, 0, 0, 17), packet.ParseIP4(10, 0, 0, 42),
	}
	mk := func() traffic.Stream {
		return &traffic.LoadBalanced{Dests: dests, Rate: 20e6, End: 2e6, Seed: 7, Jitter: 0.2}
	}
	node.InjectStream(mk(), 1)
	sim.Run()
	st := mk()
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		serial.Switch().ProcessPacket(p.TsNs, 1, p.Frame)
	}

	if delivered == 0 {
		t.Fatal("no frames delivered to the connected port")
	}
	stats := sr.Sharded().Stats()
	if uint64(delivered) != stats.PktsOut {
		t.Fatalf("delivered %d frames, shards emitted %d", delivered, stats.PktsOut)
	}
	var spread int
	for i := 0; i < sr.NumShards(); i++ {
		if sr.Sharded().Shard(i).Stats().PktsIn > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("traffic reached %d shards, want spread over at least 2", spread)
	}

	merged := sr.MergedSnapshot()
	want := serial.Switch().Snapshot()
	lib.CanonicalizeSnapshot(want, sr.FreqSlots())
	for name, cells := range want.Registers {
		got := merged.Registers[name]
		for i := range cells {
			if got[i] != cells[i] {
				t.Fatalf("register %q cell %d: sharded %d, serial %d", name, i, got[i], cells[i])
			}
		}
	}
}

// TestShardedSwitchNodeCountsDroppedDigests pins the attach-before-inject
// contract on the sharded node: digests drained with no handler are counted,
// not silently discarded.
func TestShardedSwitchNodeCountsDroppedDigests(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	sr, err := stat4p4.NewShardedRuntime(lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	const intShift = 10
	if _, err := sr.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, 8, 2); err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	node := NewShardedSwitchNode(sim, sr.Sharded(), 500)
	node.Metrics = telemetry.NewNodeMetrics()
	// No OnDigest handler; the spike's anomaly digests must surface as drops.
	dest := []packet.IP4{packet.ParseIP4(10, 0, 0, 1)}
	load := &traffic.LoadBalanced{Dests: dest, Rate: 20e6, End: 40 << intShift, Seed: 1, Jitter: 0.2}
	spike := &traffic.Spike{Dest: dest[0], Rate: 300e6, Start: 30 << intShift, End: 40 << intShift, Seed: 2, Jitter: 0.2}
	node.InjectStream(traffic.Merge(load, spike), 1)
	sim.Run()

	if node.DroppedDigests() == 0 {
		t.Fatal("spike produced no dropped digests with OnDigest unset")
	}
	if node.Metrics.DroppedDigests.Value() != node.DroppedDigests() {
		t.Fatalf("telemetry counter %d != accessor %d",
			node.Metrics.DroppedDigests.Value(), node.DroppedDigests())
	}
}
