package netem

import (
	"reflect"
	"testing"

	"stat4/internal/packet"
	"stat4/internal/ring"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// fillRing packs a generated stream into slab blocks and descriptors, the
// way a stat4d producer would, and returns the frame count.
func fillRing(t *testing.T, r *ring.MPSC, slab *ring.Slab, st traffic.Stream, batch int) int {
	t.Helper()
	var (
		block  uint32
		buf    []byte
		n      uint32
		has    bool
		frames int
	)
	flush := func() {
		if !has || n == 0 {
			return
		}
		if !r.TryPush(ring.Desc{Block: block, N: n}) {
			t.Fatal("ring full while filling — size the test buffers up")
		}
		has = false
	}
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		frame := p.Frame.Serialize()
		for {
			if !has {
				idx, ok := slab.TryAcquire()
				if !ok {
					t.Fatal("slab exhausted while filling — size the test buffers up")
				}
				block, has, n = idx, true, 0
				buf = slab.Bytes(idx)[:0]
			}
			nb, ok := ring.AppendFrame(buf, p.TsNs, 1, frame)
			if ok {
				buf = nb
				n++
				if int(n) >= batch {
					flush()
				}
				break
			}
			flush()
		}
		frames++
	}
	flush()
	return frames
}

// TestRingStreamEquivalence: a simulation fed through the ingest-plane ring
// must leave the switch in exactly the state a directly-injected stream
// does — same packet counts, same register file. This is the netem leg of
// the ring handoff's "invisible to the statistics" contract.
func TestRingStreamEquivalence(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	dests := []packet.IP4{
		packet.ParseIP4(10, 0, 0, 1), packet.ParseIP4(10, 0, 0, 2),
		packet.ParseIP4(10, 0, 0, 17), packet.ParseIP4(10, 0, 0, 42),
	}
	mk := func() traffic.Stream {
		return &traffic.LoadBalanced{Dests: dests, Rate: 20e6, End: 5e5, Seed: 11, Jitter: 0.3}
	}

	run := func(t *testing.T, st traffic.Stream) (*stat4p4.Runtime, uint64, uint64) {
		rt, err := stat4p4.NewRuntime(lib)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, dstBase, 64, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		sim := NewSim()
		node := NewSwitchNode(sim, rt.Switch(), 500)
		var delivered uint64
		node.Connect(0, 100, func(now uint64, data []byte) { delivered++ })
		node.InjectStream(st, 1)
		sim.Run()
		return rt, rt.Switch().Stats().PktsIn, delivered
	}

	// Whole-stream prefill: one slab block per descriptor, so both pools
	// must cover every batch of the stream (~10k frames / 48 per batch).
	r := ring.NewMPSC(256)
	slab := ring.NewSlab(256, 8<<10)
	frames := fillRing(t, r, slab, mk(), 48)
	rs := NewRingStream(r, slab)
	ringRT, ringIn, ringDelivered := run(t, rs)
	directRT, directIn, directDelivered := run(t, mk())

	if rs.Dropped() != 0 {
		t.Fatalf("ring stream dropped %d frames", rs.Dropped())
	}
	if ringIn != uint64(frames) || ringIn != directIn {
		t.Fatalf("ring fed %d frames, direct %d, generator produced %d", ringIn, directIn, frames)
	}
	if ringDelivered != directDelivered {
		t.Fatalf("ring run delivered %d frames, direct %d", ringDelivered, directDelivered)
	}
	if slab.InUse() != 0 {
		t.Fatalf("%d slab blocks leaked after the stream drained", slab.InUse())
	}
	ringSnap := ringRT.Switch().Snapshot()
	directSnap := directRT.Switch().Snapshot()
	if !reflect.DeepEqual(ringSnap, directSnap) {
		t.Fatal("register files differ between ring-fed and direct injection")
	}

	// A drained stream stays drained.
	if _, ok := rs.Next(); ok {
		t.Fatal("empty ring yielded a packet")
	}
}

// TestRingStreamSkipsUnparsable: junk frames are counted and skipped, not
// surfaced as packets.
func TestRingStreamSkipsUnparsable(t *testing.T) {
	r := ring.NewMPSC(8)
	slab := ring.NewSlab(8, 4096)
	idx, ok := slab.TryAcquire()
	if !ok {
		t.Fatal("slab refused a block")
	}
	buf := slab.Bytes(idx)[:0]
	good := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), packet.ParseIP4(10, 0, 0, 1), 5, 80, 10).Serialize()
	var n uint32
	for _, frame := range [][]byte{{0xde, 0xad}, good, {0x01}} {
		nb, ok := ring.AppendFrame(buf, 1000, 1, frame)
		if !ok {
			t.Fatal("append refused")
		}
		buf = nb
		n++
	}
	if !r.TryPush(ring.Desc{Block: idx, N: n}) {
		t.Fatal("push refused")
	}

	rs := NewRingStream(r, slab)
	p, ok := rs.Next()
	if !ok {
		t.Fatal("good frame not yielded")
	}
	if p.TsNs != 1000 {
		t.Fatalf("ts = %d, want 1000", p.TsNs)
	}
	if _, ok := rs.Next(); ok {
		t.Fatal("junk yielded a packet")
	}
	if rs.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", rs.Dropped())
	}
	if slab.InUse() != 0 {
		t.Fatal("block not released after drain")
	}
}
