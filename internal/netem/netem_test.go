package netem

import (
	"testing"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() {
		got = append(got, 2)
		// Events scheduled from handlers interleave correctly.
		s.After(5, func() { got = append(got, 25) })
	})
	s.Run()
	want := []int{1, 2, 25, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Steps() != 4 {
		t.Fatalf("Steps = %d", s.Steps())
	}
}

func TestSimFIFOForEqualTimes(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events reordered: %v", got)
		}
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	ran := 0
	s.At(10, func() { ran++ })
	s.At(30, func() { ran++ })
	s.RunUntil(20)
	if ran != 1 || s.Now() != 20 {
		t.Fatalf("ran=%d now=%d", ran, s.Now())
	}
	s.Run()
	if ran != 2 {
		t.Fatalf("ran=%d after full Run", ran)
	}
}

// TestSimRunUntilMonotone pins the re-entrancy contract: a RunUntil with a
// deadline earlier than the current time must not rewind the clock, and must
// still run events that At already clamped to the present instant.
func TestSimRunUntilMonotone(t *testing.T) {
	s := NewSim()
	var ran []int
	s.At(10, func() { ran = append(ran, 10) })
	s.At(100, func() { ran = append(ran, 100) })
	s.RunUntil(50)
	if s.Now() != 50 {
		t.Fatalf("now = %d after RunUntil(50)", s.Now())
	}
	// Scheduled in the past: At clamps it to now (50), so it is due
	// immediately.
	s.At(20, func() { ran = append(ran, 20) })
	// Re-entrant earlier deadline: clamped to now, runs what is due, never
	// rewinds.
	s.RunUntil(30)
	if s.Now() != 50 {
		t.Fatalf("clock moved to %d on RunUntil(30), want it pinned at 50", s.Now())
	}
	if len(ran) != 2 || ran[1] != 20 {
		t.Fatalf("clamped event did not run under the earlier deadline: %v", ran)
	}
	s.Run()
	want := []int{10, 20, 100}
	if len(ran) != len(want) {
		t.Fatalf("got %v, want %v", ran, want)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("got %v, want %v", ran, want)
		}
	}
	if s.Now() != 100 {
		t.Fatalf("now = %d after final Run, want 100", s.Now())
	}
}

// TestSimDepthObservable checks the event-queue occupancy hook: one sample
// per dispatched event, recording the backlog left after the pop.
func TestSimDepthObservable(t *testing.T) {
	s := NewSim()
	s.Depth = telemetry.NewHist()
	for i := uint64(1); i <= 4; i++ {
		s.At(i*10, func() {})
	}
	s.Run()
	if s.Depth.Count() != 4 {
		t.Fatalf("depth samples = %d, want 4", s.Depth.Count())
	}
	if s.Depth.Max() != 3 {
		t.Fatalf("max depth = %d, want 3", s.Depth.Max())
	}
}

func TestSimPastSchedulingClamps(t *testing.T) {
	s := NewSim()
	var when uint64
	s.At(100, func() {
		s.At(5, func() { when = s.Now() }) // in the past
	})
	s.Run()
	if when != 100 {
		t.Fatalf("past event ran at %d, want clamped to 100", when)
	}
}

// TestSwitchNodeEndToEnd wires a Stat4 switch into the simulator: traffic is
// injected as a stream, digests arrive at the controller hook after the
// control delay, and forwarded frames arrive at a connected port after the
// link delay.
func TestSwitchNodeEndToEnd(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	const intShift = 10
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, 8, 2); err != nil {
		t.Fatal(err)
	}

	sim := NewSim()
	node := NewSwitchNode(sim, rt.Switch(), 500)

	var digestTimes []uint64
	var digestEmit []uint64
	node.OnDigest = func(now uint64, d p4.Digest) {
		digestTimes = append(digestTimes, now)
		digestEmit = append(digestEmit, d.Values[4])
	}
	var delivered int
	var deliverTimes []uint64
	node.Connect(0, 100, func(now uint64, data []byte) {
		delivered++
		deliverTimes = append(deliverTimes, now)
	})

	// Stable intervals then a 10x spike.
	dest := []packet.IP4{packet.ParseIP4(10, 0, 0, 1)}
	load := &traffic.LoadBalanced{Dests: dest, Rate: 20e6, End: 40 << intShift, Seed: 1, Jitter: 0.2}
	spike := &traffic.Spike{Dest: dest[0], Rate: 300e6, Start: 30 << intShift, End: 40 << intShift, Seed: 2, Jitter: 0.2}
	node.InjectStream(traffic.Merge(load, spike), 1)
	sim.Run()

	if delivered == 0 {
		t.Fatal("no frames delivered to the connected port")
	}
	if len(digestTimes) == 0 {
		t.Fatal("no digest reached the controller")
	}
	for i, at := range digestTimes {
		if at != digestEmit[i]+500 {
			t.Fatalf("digest %d: arrived %d, emitted %d, want ctrl delay 500", i, at, digestEmit[i])
		}
	}
	st := rt.Switch().Stats()
	if uint64(delivered) != st.PktsOut {
		t.Fatalf("delivered %d frames, switch emitted %d", delivered, st.PktsOut)
	}
}

func TestSwitchNodeCountsUnroutedFrames(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 8, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	node := NewSwitchNode(sim, rt.Switch(), 0)
	node.Metrics = telemetry.NewNodeMetrics()
	node.Inject(5, 1, traffic.Pkt{TsNs: 5, Frame: packet.NewUDPFrame(1, 2, 3, 4, 8)})
	sim.Run() // must not panic
	st := rt.Switch().Stats()
	if st.PktsIn != 1 {
		t.Fatal("packet not processed")
	}
	if node.UnroutedFrames() != st.PktsOut {
		t.Fatalf("UnroutedFrames = %d, switch emitted %d frames with no connected port",
			node.UnroutedFrames(), st.PktsOut)
	}
	if node.Metrics.UnroutedFrames.Value() != node.UnroutedFrames() {
		t.Fatalf("telemetry counter %d != accessor %d",
			node.Metrics.UnroutedFrames.Value(), node.UnroutedFrames())
	}
}

// TestSwitchNodeCountsDroppedDigests pins the attach-handler-before-inject
// contract: digests drained while OnDigest is nil are counted, not silently
// discarded.
func TestSwitchNodeCountsDroppedDigests(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	const intShift = 10
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, 8, 2); err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	node := NewSwitchNode(sim, rt.Switch(), 500)
	node.Metrics = telemetry.NewNodeMetrics()
	// No OnDigest handler: the same spike that reaches the controller in
	// TestSwitchNodeEndToEnd must now show up as dropped digests.
	dest := []packet.IP4{packet.ParseIP4(10, 0, 0, 1)}
	load := &traffic.LoadBalanced{Dests: dest, Rate: 20e6, End: 40 << intShift, Seed: 1, Jitter: 0.2}
	spike := &traffic.Spike{Dest: dest[0], Rate: 300e6, Start: 30 << intShift, End: 40 << intShift, Seed: 2, Jitter: 0.2}
	node.InjectStream(traffic.Merge(load, spike), 1)
	sim.Run()

	if node.DroppedDigests() == 0 {
		t.Fatal("spike produced no dropped digests with OnDigest unset")
	}
	if node.Metrics.DroppedDigests.Value() != node.DroppedDigests() {
		t.Fatalf("telemetry counter %d != accessor %d",
			node.Metrics.DroppedDigests.Value(), node.DroppedDigests())
	}
}
