package netem

import (
	"testing"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

func TestSimOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() {
		got = append(got, 2)
		// Events scheduled from handlers interleave correctly.
		s.After(5, func() { got = append(got, 25) })
	})
	s.Run()
	want := []int{1, 2, 25, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if s.Steps() != 4 {
		t.Fatalf("Steps = %d", s.Steps())
	}
}

func TestSimFIFOForEqualTimes(t *testing.T) {
	s := NewSim()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(100, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-time events reordered: %v", got)
		}
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	ran := 0
	s.At(10, func() { ran++ })
	s.At(30, func() { ran++ })
	s.RunUntil(20)
	if ran != 1 || s.Now() != 20 {
		t.Fatalf("ran=%d now=%d", ran, s.Now())
	}
	s.Run()
	if ran != 2 {
		t.Fatalf("ran=%d after full Run", ran)
	}
}

func TestSimPastSchedulingClamps(t *testing.T) {
	s := NewSim()
	var when uint64
	s.At(100, func() {
		s.At(5, func() { when = s.Now() }) // in the past
	})
	s.Run()
	if when != 100 {
		t.Fatalf("past event ran at %d, want clamped to 100", when)
	}
}

// TestSwitchNodeEndToEnd wires a Stat4 switch into the simulator: traffic is
// injected as a stream, digests arrive at the controller hook after the
// control delay, and forwarded frames arrive at a connected port after the
// link delay.
func TestSwitchNodeEndToEnd(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	const intShift = 10
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, 8, 2); err != nil {
		t.Fatal(err)
	}

	sim := NewSim()
	node := NewSwitchNode(sim, rt.Switch(), 500)

	var digestTimes []uint64
	var digestEmit []uint64
	node.OnDigest = func(now uint64, d p4.Digest) {
		digestTimes = append(digestTimes, now)
		digestEmit = append(digestEmit, d.Values[4])
	}
	var delivered int
	var deliverTimes []uint64
	node.Connect(0, 100, func(now uint64, data []byte) {
		delivered++
		deliverTimes = append(deliverTimes, now)
	})

	// Stable intervals then a 10x spike.
	dest := []packet.IP4{packet.ParseIP4(10, 0, 0, 1)}
	load := &traffic.LoadBalanced{Dests: dest, Rate: 20e6, End: 40 << intShift, Seed: 1, Jitter: 0.2}
	spike := &traffic.Spike{Dest: dest[0], Rate: 300e6, Start: 30 << intShift, End: 40 << intShift, Seed: 2, Jitter: 0.2}
	node.InjectStream(traffic.Merge(load, spike), 1)
	sim.Run()

	if delivered == 0 {
		t.Fatal("no frames delivered to the connected port")
	}
	if len(digestTimes) == 0 {
		t.Fatal("no digest reached the controller")
	}
	for i, at := range digestTimes {
		if at != digestEmit[i]+500 {
			t.Fatalf("digest %d: arrived %d, emitted %d, want ctrl delay 500", i, at, digestEmit[i])
		}
	}
	st := rt.Switch().Stats()
	if uint64(delivered) != st.PktsOut {
		t.Fatalf("delivered %d frames, switch emitted %d", delivered, st.PktsOut)
	}
}

func TestSwitchNodeUnconnectedPortDropsQuietly(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 8, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSim()
	node := NewSwitchNode(sim, rt.Switch(), 0)
	node.Inject(5, 1, traffic.Pkt{TsNs: 5, Frame: packet.NewUDPFrame(1, 2, 3, 4, 8)})
	sim.Run() // must not panic
	if rt.Switch().Stats().PktsIn != 1 {
		t.Fatal("packet not processed")
	}
}
