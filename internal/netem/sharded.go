package netem

import (
	"stat4/internal/p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// ShardedSwitchNode runs a p4.ShardedSwitch inside the simulation — a
// multi-pipeline switch as one topology node. Injected packets are
// dispatched to their flow-hash shard at their timestamps, output frames are
// delivered over connected links after the link delay, and digests from all
// shards reach the controller handler after the control-channel delay.
//
// It obeys the same attach-handler-before-inject contract as SwitchNode:
// OnDigest and Connect receivers must be in place before the first inject,
// and digests drained with no handler (or frames emitted on unconnected
// ports) are counted, never silently dropped. The simulator stays
// single-threaded — shard workers only run during ProcessBatch, which this
// node never uses; per-event dispatch processes each packet synchronously on
// its shard.
type ShardedSwitchNode struct {
	Sim *Sim
	SW  *p4.ShardedSwitch

	// CtrlDelay is the one-way switch→controller latency.
	CtrlDelay uint64
	// OnDigest receives each digest at its controller arrival time. Digests
	// carry no shard identity — like a real multi-pipe switch, the fleet
	// reports through one control channel.
	OnDigest func(now uint64, d p4.Digest)

	// Metrics, when set, records the node's channel observables. They are
	// chassis-level: one control channel and one set of links serve all
	// shards, so the node meters them as a unit (per-shard datapath metrics
	// attach to the shards' switch observers instead).
	Metrics *telemetry.NodeMetrics

	ports map[uint16]portLink

	droppedDigests uint64
	unroutedFrames uint64
}

// NewShardedSwitchNode wires a sharded switch into a simulation.
func NewShardedSwitchNode(sim *Sim, sw *p4.ShardedSwitch, ctrlDelay uint64) *ShardedSwitchNode {
	return &ShardedSwitchNode{Sim: sim, SW: sw, CtrlDelay: ctrlDelay, ports: make(map[uint16]portLink)}
}

// Connect attaches a receiver to an egress port over a link with the given
// delay. All shards share the port space, as pipelines share a chassis.
func (n *ShardedSwitchNode) Connect(port uint16, delay uint64, deliver func(now uint64, data []byte)) {
	n.ports[port] = portLink{delay: delay, deliver: deliver}
}

// DroppedDigests returns how many digests were drained while no OnDigest
// handler was attached.
func (n *ShardedSwitchNode) DroppedDigests() uint64 { return n.droppedDigests }

// UnroutedFrames returns how many output frames were discarded because
// their egress port had no connected link.
func (n *ShardedSwitchNode) UnroutedFrames() uint64 { return n.unroutedFrames }

// Inject schedules one packet for processing at ts on the given ingress
// port; the dispatcher picks the shard when the event fires.
func (n *ShardedSwitchNode) Inject(ts uint64, port uint16, pkt traffic.Pkt) {
	n.Sim.At(ts, func() {
		n.route(n.SW.ProcessPacket(n.Sim.Now(), port, pkt.Frame))
	})
}

// InjectFrame processes raw frame bytes immediately (at the current virtual
// time) on the given ingress port.
func (n *ShardedSwitchNode) InjectFrame(port uint16, data []byte) {
	n.route(n.SW.ProcessFrame(n.Sim.Now(), port, data))
}

// InjectStream feeds a whole traffic stream through the dispatcher lazily,
// one scheduled event per packet.
func (n *ShardedSwitchNode) InjectStream(st traffic.Stream, port uint16) {
	var pump func()
	pump = func() {
		p, ok := st.Next()
		if !ok {
			return
		}
		n.Sim.At(p.TsNs, func() {
			n.route(n.SW.ProcessPacket(n.Sim.Now(), port, p.Frame))
			pump()
		})
	}
	pump()
}

// route delivers switch outputs over connected links and forwards digests.
func (n *ShardedSwitchNode) route(outs []p4.FrameOut) {
	n.drainDigests()
	processedAt := n.Sim.Now()
	for _, out := range outs {
		link, ok := n.ports[out.Port]
		if !ok {
			n.unroutedFrames++
			if n.Metrics != nil {
				n.Metrics.UnroutedFrames.Inc()
			}
			continue
		}
		// Copy: out.Data aliases the owning shard's deparse buffer, reused on
		// that shard's next frame, while delivery happens link.delay later.
		data := append([]byte(nil), out.Data...)
		n.Sim.After(link.delay, func() {
			now := n.Sim.Now()
			if n.Metrics != nil {
				n.Metrics.FrameLatency.Observe(now - processedAt)
			}
			link.deliver(now, data)
		})
	}
}

// drainDigests moves digests produced by the last packet — already forwarded
// from the owning shard onto the fleet channel — onto the simulated control
// channel.
func (n *ShardedSwitchNode) drainDigests() {
	for {
		select {
		case d := <-n.SW.Digests():
			if n.OnDigest == nil {
				n.droppedDigests++
				if n.Metrics != nil {
					n.Metrics.DroppedDigests.Inc()
				}
				continue
			}
			if n.Metrics != nil {
				n.Metrics.DigestQueue.Observe(uint64(len(n.SW.Digests())))
			}
			dg := d
			drainedAt := n.Sim.Now()
			n.Sim.After(n.CtrlDelay, func() {
				now := n.Sim.Now()
				if n.Metrics != nil {
					n.Metrics.CtrlLatency.Observe(now - drainedAt)
				}
				n.OnDigest(now, dg)
			})
		default:
			return
		}
	}
}
