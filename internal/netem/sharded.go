package netem

import "stat4/internal/p4"

// ShardedSwitchNode runs a p4.ShardedSwitch inside the simulation — a
// multi-pipeline switch as one topology node. Injected packets are
// dispatched to their flow-hash shard at their timestamps, output frames are
// delivered over connected links after the link delay, and digests from all
// shards reach the controller handler after the control-channel delay.
//
// It obeys the same attach-handler-before-inject contract as SwitchNode:
// OnDigest and Connect receivers must be in place before the first inject,
// and digests drained with no handler (or frames emitted on unconnected
// ports) are counted, never silently dropped. The simulator stays
// single-threaded — shard workers only run during ProcessBatch, which this
// node never uses; per-event dispatch processes each packet synchronously on
// its shard.
//
// Metrics here are chassis-level: one control channel and one set of links
// serve all shards, so the node meters them as a unit (per-shard datapath
// metrics attach to the shards' switch observers instead). All shards share
// the port space, as pipelines share a chassis.
type ShardedSwitchNode struct {
	nodeCore
	SW *p4.ShardedSwitch
}

// NewShardedSwitchNode wires a sharded switch into a simulation. Under the
// wheel engine it installs a fleet-level digest sink, bypassing the merged
// mailbox channel; anything else reading sw.Digests() directly will no
// longer see forwarded digests.
func NewShardedSwitchNode(sim *Sim, sw *p4.ShardedSwitch, ctrlDelay uint64) *ShardedSwitchNode {
	n := &ShardedSwitchNode{SW: sw}
	n.init(sim, sw, sw.Digests(), ctrlDelay)
	if sim.mode != SchedHeap {
		sw.SetDigestSink(n.digestSink)
	}
	return n
}
