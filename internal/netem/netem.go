package netem

import (
	"container/heap"

	"stat4/internal/p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// Sim is the event loop. It is single-threaded: handlers run on the caller's
// goroutine inside Run, and may schedule further events.
type Sim struct {
	now   uint64
	seq   uint64
	queue eventQueue
	steps uint64

	// Depth, when set, records the event-queue occupancy after each
	// dispatched event — the simulator's own backlog observable.
	Depth *telemetry.Hist
}

type event struct {
	at  uint64
	seq uint64 // FIFO tie-break for equal timestamps
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() uint64 { return s.now }

// Steps returns how many events have run.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn at absolute virtual time t. Scheduling in the past runs
// the handler at the current time (the event fires next).
func (s *Sim) At(t uint64, fn func()) {
	if t < s.now {
		t = s.now
	}
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
	s.seq++
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d uint64, fn func()) { s.At(s.now+d, fn) }

// Run drains the event queue.
func (s *Sim) Run() { s.RunUntil(^uint64(0)) }

// RunUntil processes events with timestamps ≤ deadline and advances the
// clock to the deadline (or the last event, whichever is later). The clock
// is monotone across calls: a deadline earlier than the current time is
// clamped to it, so a re-entrant RunUntil(earlier) degenerates to "run
// whatever is due right now" instead of rewinding or losing events that At
// already clamped to the present.
func (s *Sim) RunUntil(deadline uint64) {
	if deadline < s.now {
		deadline = s.now
	}
	for len(s.queue) > 0 {
		if s.queue[0].at > deadline {
			break
		}
		e := heap.Pop(&s.queue).(event)
		s.now = e.at
		s.steps++
		if s.Depth != nil {
			s.Depth.Observe(uint64(len(s.queue)))
		}
		e.fn()
	}
	if deadline != ^uint64(0) && s.now < deadline {
		s.now = deadline
	}
}

// SwitchNode runs a p4.Switch inside the simulation: injected packets are
// processed at their timestamps, output frames are delivered to connected
// ports after their link delay, and digests reach the controller handler
// after the control-channel delay — the push arrow of Figure 1c.
//
// Attach-handler-before-inject contract: digests are drained from the switch
// after every processed packet, so OnDigest (and any Connect receivers) must
// be in place before the first Inject/InjectFrame/InjectStream call. Digests
// drained while OnDigest is nil are dropped — counted by DroppedDigests and
// the telemetry snapshot, never silently — and frames emitted on ports with
// no connected link are likewise counted by UnroutedFrames.
type SwitchNode struct {
	Sim *Sim
	SW  *p4.Switch

	// CtrlDelay is the one-way switch→controller latency.
	CtrlDelay uint64
	// OnDigest receives each digest at its controller arrival time. Set it
	// before injecting traffic (see the contract above).
	OnDigest func(now uint64, d p4.Digest)

	// Metrics, when set, records the node's channel observables: frame
	// inject→deliver latency, digest control-channel latency, digest-queue
	// occupancy at drain, and the drop counters.
	Metrics *telemetry.NodeMetrics

	ports map[uint16]portLink

	droppedDigests uint64
	unroutedFrames uint64
}

type portLink struct {
	delay   uint64
	deliver func(now uint64, data []byte)
}

// NewSwitchNode wires a switch into a simulation.
func NewSwitchNode(sim *Sim, sw *p4.Switch, ctrlDelay uint64) *SwitchNode {
	return &SwitchNode{Sim: sim, SW: sw, CtrlDelay: ctrlDelay, ports: make(map[uint16]portLink)}
}

// Connect attaches a receiver to an egress port over a link with the given
// delay.
func (n *SwitchNode) Connect(port uint16, delay uint64, deliver func(now uint64, data []byte)) {
	n.ports[port] = portLink{delay: delay, deliver: deliver}
}

// DroppedDigests returns how many digests were drained while no OnDigest
// handler was attached. A nonzero value almost always means a handler was
// attached after traffic had already been injected.
func (n *SwitchNode) DroppedDigests() uint64 { return n.droppedDigests }

// UnroutedFrames returns how many output frames were discarded because
// their egress port had no connected link.
func (n *SwitchNode) UnroutedFrames() uint64 { return n.unroutedFrames }

// Inject schedules one packet for processing at ts on the given ingress
// port.
func (n *SwitchNode) Inject(ts uint64, port uint16, pkt traffic.Pkt) {
	n.Sim.At(ts, func() {
		n.route(n.SW.ProcessPacket(n.Sim.Now(), port, pkt.Frame))
	})
}

// InjectFrame processes raw frame bytes immediately (at the current virtual
// time) on the given ingress port, routing outputs over connected links —
// what a frame arriving on a wire from another node does.
func (n *SwitchNode) InjectFrame(port uint16, data []byte) {
	n.route(n.SW.ProcessFrame(n.Sim.Now(), port, data))
}

// route delivers switch outputs over connected links and forwards digests.
func (n *SwitchNode) route(outs []p4.FrameOut) {
	n.drainDigests()
	processedAt := n.Sim.Now()
	for _, out := range outs {
		link, ok := n.ports[out.Port]
		if !ok {
			n.unroutedFrames++
			if n.Metrics != nil {
				n.Metrics.UnroutedFrames.Inc()
			}
			continue
		}
		// Copy: out.Data aliases the switch's deparse buffer, which is
		// reused on the next frame, while delivery happens link.delay later.
		// Instrumentation hooks obey the same lifetime rule: anything they
		// want from the frame must be recorded before this handler returns.
		data := append([]byte(nil), out.Data...)
		n.Sim.After(link.delay, func() {
			now := n.Sim.Now()
			if n.Metrics != nil {
				n.Metrics.FrameLatency.Observe(now - processedAt)
			}
			link.deliver(now, data)
		})
	}
}

// InjectStream feeds a whole traffic stream through the switch lazily: each
// event schedules the next, so streams of millions of packets don't
// materialise in memory.
func (n *SwitchNode) InjectStream(st traffic.Stream, port uint16) {
	var pump func()
	pump = func() {
		p, ok := st.Next()
		if !ok {
			return
		}
		n.Sim.At(p.TsNs, func() {
			n.route(n.SW.ProcessPacket(n.Sim.Now(), port, p.Frame))
			pump()
		})
	}
	pump()
}

// drainDigests moves digests produced by the last packet onto the simulated
// control channel. Digests drained with no handler attached are counted,
// not silently discarded (see the SwitchNode contract).
func (n *SwitchNode) drainDigests() {
	for {
		select {
		case d := <-n.SW.Digests():
			if n.OnDigest == nil {
				n.droppedDigests++
				if n.Metrics != nil {
					n.Metrics.DroppedDigests.Inc()
				}
				continue
			}
			if n.Metrics != nil {
				n.Metrics.DigestQueue.Observe(uint64(len(n.SW.Digests())))
			}
			dg := d
			drainedAt := n.Sim.Now()
			n.Sim.After(n.CtrlDelay, func() {
				now := n.Sim.Now()
				if n.Metrics != nil {
					n.Metrics.CtrlLatency.Observe(now - drainedAt)
				}
				n.OnDigest(now, dg)
			})
		default:
			return
		}
	}
}
