package netem

import (
	"container/heap"

	"stat4/internal/telemetry"
)

// SchedMode selects the Sim's scheduling engine.
type SchedMode uint8

const (
	// SchedWheel is the production engine: a hierarchical timer wheel over a
	// slab of typed, closure-free event records. Scheduling and dispatching
	// packet, frame and digest events allocates nothing at steady state.
	SchedWheel SchedMode = iota
	// SchedHeap is the original container/heap engine, kept bit-for-bit as
	// the differential reference (the ExecTree of the event loop): one
	// interface-boxed record and one closure per event, per delivered frame
	// copy, per drained digest. Differential tests run both modes over the
	// same inputs and require identical dispatch order and outputs.
	SchedHeap
)

// DefaultSched is the mode NewSim uses. Differential tests flip it to run an
// unmodified experiment under the reference engine.
var DefaultSched = SchedWheel

// Sim is the event loop. It is single-threaded: handlers run on the caller's
// goroutine inside Run, and may schedule further events.
type Sim struct {
	now   uint64
	seq   uint64 // FIFO tie-break for equal timestamps
	steps uint64
	mode  SchedMode

	// deadline is the bound of the RunUntil in progress (^uint64(0) outside
	// one). The stream pump reads it so a batched run never processes a
	// packet a bounded run was not allowed to reach.
	deadline uint64

	pending int // scheduled-but-not-dispatched events, either engine

	// SchedWheel state: the typed event slab (free-listed through event.next)
	// and the timer wheel filing indices into it.
	slab  []event
	free  int32
	wheel wheel

	// SchedHeap state: the reference priority queue.
	queue eventQueue

	// Depth, when set, records the event-queue occupancy after each
	// dispatched event — the simulator's own backlog observable.
	Depth *telemetry.Hist
}

// heapEvent is the reference engine's record: the handler is a closure, so
// every schedule allocates (the closure plus the interface boxing in
// heap.Push). The wheel engine exists to delete exactly these costs.
type heapEvent struct {
	at  uint64
	seq uint64
	fn  func()
}

type eventQueue []heapEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(heapEvent)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// NewSim returns an empty simulation at time zero, using DefaultSched.
func NewSim() *Sim { return NewSimSched(DefaultSched) }

// NewSimSched returns an empty simulation at time zero with an explicit
// scheduling engine.
func NewSimSched(mode SchedMode) *Sim {
	s := &Sim{mode: mode, deadline: ^uint64(0), free: -1}
	s.wheel.reset()
	return s
}

// Mode returns the scheduling engine this simulation runs on.
func (s *Sim) Mode() SchedMode { return s.mode }

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() uint64 { return s.now }

// Steps returns how many events have run. A batched stream run counts one
// step per packet, matching the per-packet events of the reference engine.
func (s *Sim) Steps() uint64 { return s.steps }

// At schedules fn at absolute virtual time t. Scheduling in the past runs
// the handler at the current time (the event fires next).
func (s *Sim) At(t uint64, fn func()) {
	if s.mode == SchedHeap {
		if t < s.now {
			t = s.now
		}
		heap.Push(&s.queue, heapEvent{at: t, seq: s.seq, fn: fn})
		s.seq++
		s.pending++
		return
	}
	idx := s.allocEvent()
	e := &s.slab[idx]
	e.kind = evFn
	e.fn = fn
	s.schedule(t, idx)
}

// After schedules fn d nanoseconds from now.
func (s *Sim) After(d uint64, fn func()) { s.At(s.now+d, fn) }

// Run drains the event queue.
func (s *Sim) Run() { s.RunUntil(^uint64(0)) }

// RunUntil processes events with timestamps ≤ deadline and advances the
// clock to the deadline (or the last event, whichever is later). The clock
// is monotone across calls: a deadline earlier than the current time is
// clamped to it, so a re-entrant RunUntil(earlier) degenerates to "run
// whatever is due right now" instead of rewinding or losing events that At
// already clamped to the present.
func (s *Sim) RunUntil(deadline uint64) {
	if deadline < s.now {
		deadline = s.now
	}
	prev := s.deadline
	s.deadline = deadline
	if s.mode == SchedHeap {
		s.runHeap(deadline)
	} else {
		s.runWheel(deadline)
	}
	s.deadline = prev
	if deadline != ^uint64(0) && s.now < deadline {
		s.now = deadline
	}
}

func (s *Sim) runHeap(deadline uint64) {
	for len(s.queue) > 0 {
		if s.queue[0].at > deadline {
			break
		}
		e := heap.Pop(&s.queue).(heapEvent)
		s.now = e.at
		s.steps++
		s.pending--
		if s.Depth != nil {
			s.Depth.Observe(uint64(s.pending))
		}
		e.fn()
	}
}

func (s *Sim) runWheel(deadline uint64) {
	for {
		idx := s.wheelPop(deadline)
		if idx < 0 {
			return
		}
		s.now = s.slab[idx].at
		s.steps++
		s.pending--
		if s.Depth != nil {
			s.Depth.Observe(uint64(s.pending))
		}
		s.dispatch(idx)
	}
}
