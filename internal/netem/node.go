package netem

import (
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// pipeline is the slice of the switch API a topology node drives: both
// *p4.Switch and *p4.ShardedSwitch satisfy it.
type pipeline interface {
	ProcessPacket(tsNs uint64, inPort uint16, pkt *packet.Packet) []p4.FrameOut
	ProcessFrame(tsNs uint64, inPort uint16, data []byte) []p4.FrameOut
}

// portLink is one connected egress link.
type portLink struct {
	delay   uint64
	deliver func(now uint64, data []byte)
}

// nodeCore is the engine shared by SwitchNode and ShardedSwitchNode: packet
// and stream injection, link routing with pooled frame buffers, and digest
// forwarding onto the simulated control channel. Under SchedWheel it drives
// the typed-event machinery (frame pool, batched stream pump, direct digest
// sink); under SchedHeap it reproduces the original closure-per-event
// engine, byte for byte, as the differential reference.
type nodeCore struct {
	Sim *Sim

	// CtrlDelay is the one-way switch→controller latency.
	CtrlDelay uint64
	// OnDigest receives each digest at its controller arrival time. Set it
	// before injecting traffic (see the SwitchNode contract).
	OnDigest func(now uint64, d p4.Digest)

	// Metrics, when set, records the node's channel observables: frame
	// inject→deliver latency, digest control-channel latency, digest-queue
	// occupancy at drain, and the drop counters.
	Metrics *telemetry.NodeMetrics

	proc  pipeline
	ports map[uint16]*portLink

	// digests is the switch's channel. SchedHeap drains it on every route;
	// SchedWheel only consults it while chanBacklog is set, to pick up
	// digests emitted before the node (and its sink) existed.
	digests     <-chan p4.Digest
	chanBacklog bool

	// sinkBuf accumulates digests handed over synchronously by the switch's
	// digest sink during Process* calls (SchedWheel only).
	sinkBuf []p4.Digest

	// pool holds link-lifetime frame buffers: grabbed when a frame is
	// scheduled, returned after its deliver callback finishes.
	pool [][]byte

	droppedDigests uint64
	unroutedFrames uint64
}

func (n *nodeCore) init(sim *Sim, proc pipeline, digests <-chan p4.Digest, ctrlDelay uint64) {
	n.Sim = sim
	n.CtrlDelay = ctrlDelay
	n.proc = proc
	n.ports = make(map[uint16]*portLink)
	n.digests = digests
	// Digests emitted before this node existed sit in the channel, not the
	// sink; drain them on the first routes like the reference engine does.
	n.chanBacklog = len(digests) > 0
}

// digestSink receives digests synchronously from the data-plane goroutine
// during Process* calls; route moves them onto the control channel after the
// call returns.
func (n *nodeCore) digestSink(d p4.Digest) { n.sinkBuf = append(n.sinkBuf, d) }

// Connect attaches a receiver to an egress port over a link with the given
// delay. Delivered frame bytes are only valid until deliver returns — the
// buffer goes back to the node's pool (see the package doc).
func (n *nodeCore) Connect(port uint16, delay uint64, deliver func(now uint64, data []byte)) {
	n.ports[port] = &portLink{delay: delay, deliver: deliver}
}

// DroppedDigests returns how many digests were drained while no OnDigest
// handler was attached. A nonzero value almost always means a handler was
// attached after traffic had already been injected.
func (n *nodeCore) DroppedDigests() uint64 { return n.droppedDigests }

// UnroutedFrames returns how many output frames were discarded because
// their egress port had no connected link.
func (n *nodeCore) UnroutedFrames() uint64 { return n.unroutedFrames }

// Inject schedules one packet for processing at ts on the given ingress
// port.
func (n *nodeCore) Inject(ts uint64, port uint16, pkt traffic.Pkt) {
	if n.Sim.mode == SchedHeap {
		n.Sim.At(ts, func() {
			n.route(n.proc.ProcessPacket(n.Sim.Now(), port, pkt.Frame))
		})
		return
	}
	n.Sim.schedulePacket(n, ts, port, pkt.Frame)
}

// InjectFrame processes raw frame bytes immediately (at the current virtual
// time) on the given ingress port, routing outputs over connected links —
// what a frame arriving on a wire from another node does.
func (n *nodeCore) InjectFrame(port uint16, data []byte) {
	n.route(n.proc.ProcessFrame(n.Sim.Now(), port, data))
}

// InjectStream feeds a whole traffic stream through the switch lazily, so
// streams of millions of packets don't materialise in memory. Under
// SchedWheel one pump event carries the stream and processes runs of
// packets in-line while no other event is due between them — the clock
// still advances to every packet's timestamp, and a packet whose timestamp
// ties another event keeps the order per-packet events would have had,
// because the pump reschedules at exactly the instant (and with a later
// sequence number than any event scheduled while processing) that the
// reference engine would have scheduled that packet's own event.
func (n *nodeCore) InjectStream(st traffic.Stream, port uint16) {
	if n.Sim.mode == SchedHeap {
		var pump func()
		pump = func() {
			p, ok := st.Next()
			if !ok {
				return
			}
			n.Sim.At(p.TsNs, func() {
				n.route(n.proc.ProcessPacket(n.Sim.Now(), port, p.Frame))
				pump()
			})
		}
		pump()
		return
	}
	p, ok := st.Next()
	if !ok {
		return
	}
	n.Sim.schedulePump(n, st, port, p)
}

// pumpRun is the evPump handler: process the pending packet at the current
// time, then keep pulling packets while the next one is due strictly before
// every other pending event and within the active RunUntil deadline.
func (n *nodeCore) pumpRun(st traffic.Stream, port uint16, p traffic.Pkt) {
	s := n.Sim
	for {
		n.route(n.proc.ProcessPacket(s.now, port, p.Frame))
		next, ok := st.Next()
		if !ok {
			return
		}
		if next.TsNs < s.now {
			next.TsNs = s.now
		}
		if next.TsNs > s.deadline || next.TsNs >= s.nextPendingLB() {
			s.schedulePump(n, st, port, next)
			return
		}
		// The in-line continuation is indistinguishable from dispatching the
		// packet's own event: advance the clock and the step count exactly as
		// runWheel would have.
		s.now = next.TsNs
		s.steps++
		p = next
	}
}

// grabFrame copies frame bytes into a pooled link-lifetime buffer.
func (n *nodeCore) grabFrame(data []byte) []byte {
	var buf []byte
	if k := len(n.pool); k > 0 {
		buf = n.pool[k-1]
		n.pool = n.pool[:k-1]
	}
	return append(buf[:0], data...)
}

func (n *nodeCore) releaseFrame(buf []byte) { n.pool = append(n.pool, buf) }

// route delivers switch outputs over connected links and forwards digests.
func (n *nodeCore) route(outs []p4.FrameOut) {
	n.drainDigests()
	processedAt := n.Sim.Now()
	for _, out := range outs {
		link, ok := n.ports[out.Port]
		if !ok {
			n.unroutedFrames++
			if n.Metrics != nil {
				n.Metrics.UnroutedFrames.Inc()
			}
			continue
		}
		if n.Sim.mode == SchedHeap {
			// Reference engine: a fresh copy and a closure per delivery.
			// out.Data aliases the switch's deparse buffer, which is reused
			// on the next frame, while delivery happens link.delay later.
			data := append([]byte(nil), out.Data...)
			n.Sim.After(link.delay, func() {
				now := n.Sim.Now()
				if n.Metrics != nil {
					n.Metrics.FrameLatency.Observe(now - processedAt)
				}
				link.deliver(now, data)
			})
			continue
		}
		// Same copy, into a pooled buffer that comes back after delivery.
		n.Sim.scheduleFrame(n, link, processedAt, n.grabFrame(out.Data))
	}
}

// drainDigests moves digests produced by the last packet onto the simulated
// control channel. Digests drained with no handler attached are counted,
// not silently discarded (see the SwitchNode contract).
func (n *nodeCore) drainDigests() {
	if n.Sim.mode == SchedHeap {
		n.drainDigestChannel()
		return
	}
	if n.chanBacklog {
		n.drainDigestChannel()
		n.chanBacklog = false
	}
	buf := n.sinkBuf
	if len(buf) == 0 {
		return
	}
	n.sinkBuf = buf[:0]
	drainedAt := n.Sim.Now()
	for i, d := range buf {
		if n.OnDigest == nil {
			n.droppedDigests++
			if n.Metrics != nil {
				n.Metrics.DroppedDigests.Inc()
			}
			continue
		}
		if n.Metrics != nil {
			// Occupancy before this receive: the digest being popped counts.
			n.Metrics.DigestQueue.Observe(uint64(len(buf) - i))
		}
		n.Sim.scheduleDigest(n, drainedAt, d)
	}
}

// drainDigestChannel is the channel-backed drain: the only path under
// SchedHeap, and the backlog catch-up under SchedWheel.
func (n *nodeCore) drainDigestChannel() {
	for {
		if n.OnDigest == nil {
			select {
			case <-n.digests:
				n.droppedDigests++
				if n.Metrics != nil {
					n.Metrics.DroppedDigests.Inc()
				}
				continue
			default:
				return
			}
		}
		// Occupancy before the receive: the digest being popped counts. (The
		// simulation is single-threaded, so nothing enqueues between the len
		// and the receive.)
		q := uint64(len(n.digests))
		select {
		case d := <-n.digests:
			if n.Metrics != nil {
				n.Metrics.DigestQueue.Observe(q)
			}
			if n.Sim.mode == SchedHeap {
				dg := d
				drainedAt := n.Sim.Now()
				n.Sim.After(n.CtrlDelay, func() {
					now := n.Sim.Now()
					if n.Metrics != nil {
						n.Metrics.CtrlLatency.Observe(now - drainedAt)
					}
					n.OnDigest(now, dg)
				})
			} else {
				n.Sim.scheduleDigest(n, n.Sim.Now(), d)
			}
		default:
			return
		}
	}
}
