package netem

import "math/bits"

// The hierarchical timer wheel: four levels of 256 slots each, so the wheels
// cover a 2^32 ns (~4.3 s) horizon at 1 ns resolution. Level 0 slots are
// single ticks; a level-l slot spans 2^(8l) ticks. An event lives at the
// lowest level whose slot, read from the absolute bits of its timestamp,
// still disambiguates it from the cursor: same 2^8 block as the cursor →
// level 0, same 2^16 block → level 1, and so on. Events beyond the horizon
// (a different 2^32 block) wait in the overflow list and are re-filed when
// the cursor reaches their block.
//
// Buckets are intrusive FIFO chains through the event slab, and occupancy is
// tracked in per-level bitmaps, so scheduling is O(1) and finding the next
// event is a handful of word scans. Equal-timestamp events never separate:
// they share every slot assignment at every level, and chains append at the
// tail, so cascades and refiles preserve their insertion (seq) order — the
// FIFO tie-break the heap scheduler gets from comparing seq explicitly.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	wheelWords  = wheelSlots / 64
)

// bucket is one slot's chain. head/tail are slab indices; a bucket is only
// meaningful while its occupancy bit is set, which is what makes the zero
// value of the whole wheel valid without initialising 1024 sentinels.
type bucket struct{ head, tail int32 }

type wheel struct {
	// pos is the cursor. Invariant: pos is ≤ the timestamp of every pending
	// event and ≤ every future insertion time (insertions happen at or after
	// the simulation clock, which never trails pos).
	pos uint64

	buckets [wheelLevels][wheelSlots]bucket
	occ     [wheelLevels][wheelWords]uint64

	// overflow chains events whose timestamp lies in a later 2^32 block, in
	// insertion order. overflowMin is the exact minimum timestamp in it.
	overflow     int32
	overflowTail int32
	overflowLen  int
	overflowMin  uint64
}

func (w *wheel) reset() {
	w.overflow, w.overflowTail = -1, -1
}

// put appends event idx to bucket (lvl, slot), preserving FIFO order.
func (w *wheel) put(lvl, slot int, idx int32, slab []event) {
	slab[idx].next = -1
	word, bit := slot>>6, uint64(1)<<(uint(slot)&63)
	b := &w.buckets[lvl][slot]
	if w.occ[lvl][word]&bit == 0 {
		w.occ[lvl][word] |= bit
		b.head, b.tail = idx, idx
		return
	}
	slab[b.tail].next = idx
	b.tail = idx
}

// take detaches and returns bucket (lvl, slot)'s chain head, or -1.
func (w *wheel) take(lvl, slot int) int32 {
	word, bit := slot>>6, uint64(1)<<(uint(slot)&63)
	if w.occ[lvl][word]&bit == 0 {
		return -1
	}
	w.occ[lvl][word] &^= bit
	return w.buckets[lvl][slot].head
}

// scan returns the first occupied slot ≥ from at the given level, or -1.
func (w *wheel) scan(lvl, from int) int {
	if from >= wheelSlots {
		return -1
	}
	word := from >> 6
	m := w.occ[lvl][word] >> (uint(from) & 63) << (uint(from) & 63)
	for {
		if m != 0 {
			return word<<6 + bits.TrailingZeros64(m)
		}
		word++
		if word >= wheelWords {
			return -1
		}
		m = w.occ[lvl][word]
	}
}

// wheelInsert files a slab event (whose at/seq are already set) into the
// wheel. Callers guarantee at ≥ w.pos.
//
//stat4:reference host-side scheduler, unbounded chains and variable shifts
func (s *Sim) wheelInsert(idx int32) {
	w := &s.wheel
	at := s.slab[idx].at
	if at>>32 != w.pos>>32 {
		// Beyond the horizon: overflow, kept in insertion order.
		s.slab[idx].next = -1
		if w.overflowTail >= 0 {
			s.slab[w.overflowTail].next = idx
		} else {
			w.overflow = idx
		}
		w.overflowTail = idx
		if w.overflowLen == 0 || at < w.overflowMin {
			w.overflowMin = at
		}
		w.overflowLen++
		return
	}
	lvl := 0
	if x := at ^ w.pos; x >= wheelSlots {
		lvl = (bits.Len64(x) - 1) / wheelBits
	}
	w.put(lvl, int(at>>(wheelBits*uint(lvl))&wheelMask), idx, s.slab)
}

// wheelPop removes and returns the earliest pending event with at ≤ deadline,
// or -1. The cursor only ever advances to an occupied bucket's base or a
// popped event's timestamp, both ≤ deadline, so a bounded run never strands
// the cursor past timestamps that later RunUntil calls may still schedule.
//
//stat4:reference host-side scheduler, unbounded chains and variable shifts
func (s *Sim) wheelPop(deadline uint64) int32 {
	w := &s.wheel
	for {
		if slot := w.scan(0, int(w.pos&wheelMask)); slot >= 0 {
			at := w.pos&^uint64(wheelMask) | uint64(slot)
			if at > deadline {
				return -1
			}
			w.pos = at
			b := &w.buckets[0][slot]
			idx := b.head
			if next := s.slab[idx].next; next >= 0 {
				b.head = next
			} else {
				w.occ[0][slot>>6] &^= 1 << (uint(slot) & 63)
			}
			return idx
		}
		if !s.wheelAdvance(deadline) {
			return -1
		}
	}
}

// wheelAdvance moves the cursor to the base of the nearest occupied
// higher-level bucket (if ≤ deadline) and distributes that bucket one level
// down, or re-files the overflow list when the wheels are empty. Levels are
// checked nearest-first and overflow timestamps are by construction beyond
// every wheel event, so the first occupied bucket is the one holding the
// minimum. Returns false when nothing is due by the deadline.
//
// Scans are from the cursor's own slot inclusive: a slot the cursor has
// entered was drained (its bit cleared) when it was distributed, and
// insertions never target it again — except that distribution itself can
// drop events whose remaining low bits are zero back into the cursor's slot
// one level down. Such a bucket's base equals the cursor, so the next
// advance re-selects it unconditionally (base ≤ deadline always holds) and
// sinks it further; events keep descending until they reach level 0 before
// any handler can run, so dispatch order never sees them misfiled.
func (s *Sim) wheelAdvance(deadline uint64) bool {
	w := &s.wheel
	for lvl := 1; lvl < wheelLevels; lvl++ {
		shift := wheelBits * uint(lvl)
		slot := w.scan(lvl, int(w.pos>>shift&wheelMask))
		if slot < 0 {
			continue
		}
		base := w.pos&^(uint64(1)<<(shift+wheelBits)-1) | uint64(slot)<<shift
		if base > deadline {
			return false
		}
		w.pos = base
		// Distribute the bucket one level down, preserving chain order so
		// same-timestamp events keep their FIFO sequence.
		idx := w.take(lvl, slot)
		lshift := shift - wheelBits
		for idx >= 0 {
			next := s.slab[idx].next
			w.put(lvl-1, int(s.slab[idx].at>>lshift&wheelMask), idx, s.slab)
			idx = next
		}
		return true
	}
	if w.overflowLen == 0 || w.overflowMin > deadline {
		return false
	}
	s.refileOverflow()
	return true
}

// refileOverflow jumps the cursor to the earliest far-future event and
// re-inserts the overflow list in its original order: events now inside the
// horizon spread into the wheels, later ones rebuild the overflow list.
func (s *Sim) refileOverflow() {
	w := &s.wheel
	w.pos = w.overflowMin
	idx := w.overflow
	w.overflow, w.overflowTail, w.overflowLen, w.overflowMin = -1, -1, 0, 0
	for idx >= 0 {
		next := s.slab[idx].next
		s.wheelInsert(idx)
		idx = next
	}
}

// nextPendingLB returns a lower bound on the earliest pending timestamp
// without mutating the wheel: exact when the event is already in level 0,
// its bucket's base otherwise, and ^uint64(0) when nothing is pending. The
// stream pump uses it as the batching horizon — a conservative bound only
// ends a run early, never reorders it, because the pump reschedules itself
// at the next packet's timestamp and the dispatch loop re-establishes order.
//
//stat4:reference host-side scheduler, unbounded chains and variable shifts
func (s *Sim) nextPendingLB() uint64 {
	w := &s.wheel
	if slot := w.scan(0, int(w.pos&wheelMask)); slot >= 0 {
		return w.pos&^uint64(wheelMask) | uint64(slot)
	}
	for lvl := 1; lvl < wheelLevels; lvl++ {
		shift := wheelBits * uint(lvl)
		// Inclusive scan, mirroring wheelAdvance: the cursor's own slot can
		// transiently hold a bucket distributed from above.
		if slot := w.scan(lvl, int(w.pos>>shift&wheelMask)); slot >= 0 {
			return w.pos&^(uint64(1)<<(shift+wheelBits)-1) | uint64(slot)<<shift
		}
	}
	if w.overflowLen > 0 {
		return w.overflowMin
	}
	return ^uint64(0)
}
