package netem

import (
	"stat4/internal/packet"
	"stat4/internal/ring"
	"stat4/internal/traffic"
)

// RingStream adapts an ingest ring + frame slab into a traffic.Stream, so a
// simulation can be fed by the same producer-side machinery the stat4d
// daemon uses (ring.AppendFrame into slab blocks, descriptors over the MPSC
// ring) instead of a synthetic generator. The stream ends when the ring is
// empty — fill it completely before injecting, or keep producing strictly
// ahead of the simulation.
//
// Ownership mirrors the ingest consumer: the scratch packet handed out by
// Next aliases the current slab block, and the block is only released after
// the last frame in it has been returned AND the next Next call arrives. The
// stream-pump contract makes this safe — the node fully processes a packet
// before pulling the next one — but callers must not retain the Pkt across
// Next calls.
type RingStream struct {
	ring *ring.MPSC
	slab *ring.Slab

	it      ring.FrameIter
	block   uint32
	has     bool
	scratch packet.Packet
	dropped uint64
}

// NewRingStream returns a stream draining r, with frame bytes resolved
// through slab.
func NewRingStream(r *ring.MPSC, slab *ring.Slab) *RingStream {
	return &RingStream{ring: r, slab: slab}
}

// Dropped returns how many frames were skipped because they failed to parse.
func (rs *RingStream) Dropped() uint64 { return rs.dropped }

// Next pops the next frame, moving to the next descriptor (and releasing the
// exhausted block) as needed.
func (rs *RingStream) Next() (traffic.Pkt, bool) {
	for {
		if !rs.has {
			var d ring.Desc
			if !rs.ring.TryPop(&d) {
				return traffic.Pkt{}, false
			}
			rs.block = d.Block
			rs.it = ring.NewFrameIter(rs.slab.Bytes(d.Block), d.N)
			rs.has = true
		}
		ts, _, frame, ok := rs.it.Next()
		if !ok {
			rs.slab.Release(rs.block)
			rs.has = false
			continue
		}
		if err := packet.ParseInto(&rs.scratch, frame); err != nil {
			rs.dropped++
			continue
		}
		return traffic.Pkt{TsNs: ts, Frame: &rs.scratch}, true
	}
}
