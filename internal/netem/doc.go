// Package netem is a small discrete-event network simulator: a virtual
// nanosecond clock, an event queue, and node wrappers that connect traffic
// sources, the P4 switch simulator and a controller over links with
// configurable latency. It stands in for the paper's emulated network
// (Figure 6): the case study's claims are about which interval detects a
// spike and how control-plane round trips dominate drill-down latency, both
// of which are functions of virtual time.
//
// The simulator is deliberately minimal — no packet loss, no queuing model,
// no bandwidth shaping — because the reproduced claims depend only on event
// ordering and link latency. Handlers run single-threaded on the caller's
// goroutine inside Run and may schedule further events.
package netem
