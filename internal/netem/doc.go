// Package netem is a small discrete-event network simulator: a virtual
// nanosecond clock, an event scheduler, and node wrappers that connect
// traffic sources, the P4 switch simulator and a controller over links with
// configurable latency. It stands in for the paper's emulated network
// (Figure 6): the case study's claims are about which interval detects a
// spike and how control-plane round trips dominate drill-down latency, both
// of which are functions of virtual time.
//
// The simulator is deliberately minimal — no packet loss, no queuing model,
// no bandwidth shaping — because the reproduced claims depend only on event
// ordering and link latency. Handlers run single-threaded on the caller's
// goroutine inside Run and may schedule further events.
//
// # The engine
//
// Events live in a hierarchical timer wheel: four levels of 256 slots
// covering a 2^32 ns horizon, with an overflow list for timestamps beyond
// it, so scheduling and dispatch are O(1) near the horizon instead of the
// O(log n) sift of a binary heap. Event records are typed — packet arrival,
// frame delivery, digest delivery, stream pump, generic func — and stored in
// a flat slab with a free list, so scheduling a packet through a warm
// simulator allocates nothing (pinned by the zero-alloc tests). The previous
// container/heap engine is kept verbatim behind NewSimSched(SchedHeap) as
// the differential reference: unit, property and fuzz tests require the two
// engines to produce identical dispatch order (equal-time events run in
// schedule order), identical clocks and byte-identical experiment results.
//
// # Frame-buffer lifetime
//
// Delivered frame bytes are pooled. The []byte passed to a Connect deliver
// callback is only valid until the callback returns; the node reclaims the
// buffer immediately afterwards and will reuse it for a later frame. A
// callback that wants to keep the bytes must copy them.
package netem
