package netem

import (
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/traffic"
)

// evKind discriminates the typed event records of the wheel engine. Each
// kind carries its operands inline in the event struct, so scheduling one
// writes a few slab fields instead of allocating a closure.
type evKind uint8

const (
	// evFn is the compatibility kind: an arbitrary handler closure, used by
	// Sim.At/After callers (controller timers, pull monitors, tests).
	evFn evKind = iota
	// evPacket processes one injected packet on a node and routes the output.
	evPacket
	// evFrame delivers pooled frame bytes to a link receiver and returns the
	// buffer to the node's pool.
	evFrame
	// evDigest hands one digest to the node's OnDigest handler after the
	// control-channel delay.
	evDigest
	// evPump resumes a lazy traffic stream: it processes the pending packet
	// and keeps pulling packets in-line while no other event is due before
	// them, then reschedules itself at the next packet's timestamp.
	evPump
)

// event is one scheduled occurrence, stored in the Sim's slab and chained
// through wheel buckets (or the free list) by next. Only the fields of the
// active kind are meaningful; freeing clears the record so the slab never
// retains dead packets, buffers or streams.
type event struct {
	at   uint64
	seq  uint64
	next int32
	kind evKind
	port uint16 // evPacket, evPump: ingress port

	fn     func()         // evFn
	node   *nodeCore      // evPacket, evFrame, evDigest, evPump
	pkt    *packet.Packet // evPacket; evPump: the pending packet
	link   *portLink      // evFrame
	buf    []byte         // evFrame: pooled frame bytes
	stamp  uint64         // evFrame: processedAt; evDigest: drainedAt; evPump: pending TsNs
	digest p4.Digest      // evDigest
	stream traffic.Stream // evPump
}

// allocEvent pops a record off the free list, growing the slab only when
// the simulation reaches a new high-water mark of in-flight events.
func (s *Sim) allocEvent() int32 {
	if s.free >= 0 {
		idx := s.free
		s.free = s.slab[idx].next
		return idx
	}
	s.slab = append(s.slab, event{})
	return int32(len(s.slab) - 1)
}

func (s *Sim) freeEvent(idx int32) {
	s.slab[idx] = event{next: s.free}
	s.free = idx
}

// schedule stamps the record's time and sequence and files it into the
// wheel. Times in the past clamp to now, which also upholds the wheel's
// cursor invariant (insertions never precede the cursor).
func (s *Sim) schedule(at uint64, idx int32) {
	if at < s.now {
		at = s.now
	}
	e := &s.slab[idx]
	e.at = at
	e.seq = s.seq
	s.seq++
	s.pending++
	s.wheelInsert(idx)
}

//stat4:reference host-side simulator hot path, not switch-implementable
func (s *Sim) schedulePacket(n *nodeCore, ts uint64, port uint16, pkt *packet.Packet) {
	idx := s.allocEvent()
	e := &s.slab[idx]
	e.kind = evPacket
	e.node = n
	e.port = port
	e.pkt = pkt
	s.schedule(ts, idx)
}

//stat4:reference host-side simulator hot path, not switch-implementable
func (s *Sim) scheduleFrame(n *nodeCore, link *portLink, processedAt uint64, buf []byte) {
	idx := s.allocEvent()
	e := &s.slab[idx]
	e.kind = evFrame
	e.node = n
	e.link = link
	e.buf = buf
	e.stamp = processedAt
	s.schedule(s.now+link.delay, idx)
}

//stat4:reference host-side simulator hot path, not switch-implementable
func (s *Sim) scheduleDigest(n *nodeCore, drainedAt uint64, d p4.Digest) {
	idx := s.allocEvent()
	e := &s.slab[idx]
	e.kind = evDigest
	e.node = n
	e.stamp = drainedAt
	e.digest = d
	s.schedule(drainedAt+n.CtrlDelay, idx)
}

//stat4:reference host-side simulator hot path, not switch-implementable
func (s *Sim) schedulePump(n *nodeCore, st traffic.Stream, port uint16, p traffic.Pkt) {
	idx := s.allocEvent()
	e := &s.slab[idx]
	e.kind = evPump
	e.node = n
	e.port = port
	e.pkt = p.Frame
	e.stamp = p.TsNs
	e.stream = st
	s.schedule(p.TsNs, idx)
}

// dispatch runs one popped event. The record is copied out and freed before
// the handler runs: handlers schedule new events, which may grow the slab or
// reuse this very slot.
func (s *Sim) dispatch(idx int32) {
	e := s.slab[idx]
	s.freeEvent(idx)
	switch e.kind {
	case evFn:
		e.fn()
	case evPacket:
		n := e.node
		n.route(n.proc.ProcessPacket(s.now, e.port, e.pkt))
	case evFrame:
		n := e.node
		if n.Metrics != nil {
			n.Metrics.FrameLatency.Observe(s.now - e.stamp)
		}
		// Instrumentation hooks obey the pooled-buffer lifetime rule: the
		// bytes are valid only until deliver returns (see doc.go).
		e.link.deliver(s.now, e.buf)
		n.releaseFrame(e.buf)
	case evDigest:
		n := e.node
		if n.Metrics != nil {
			n.Metrics.CtrlLatency.Observe(s.now - e.stamp)
		}
		n.OnDigest(s.now, e.digest)
	case evPump:
		e.node.pumpRun(e.stream, e.port, traffic.Pkt{TsNs: e.stamp, Frame: e.pkt})
	}
}
