package netem

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// runSchedScript interprets a byte string as a deterministic sequence of
// At/After/RunUntil operations against a fresh Sim of the given mode and
// returns the dispatch trace (event id @ dispatch time), final clock and
// step count. Every third handler schedules a child event, so the script
// also exercises scheduling from inside handlers (including zero-delay
// children that tie the current instant).
func runSchedScript(mode SchedMode, data []byte) (trace []string, now, steps uint64) {
	s := NewSimSched(mode)
	id := 0
	var rec func(i int) func()
	rec = func(i int) func() {
		return func() {
			trace = append(trace, fmt.Sprintf("%d@%d", i, s.Now()))
			if i%3 == 0 {
				id++
				s.After(uint64(i%7)*13, rec(id))
			}
		}
	}
	for len(data) >= 6 {
		op := data[0]
		t := uint64(binary.LittleEndian.Uint32(data[1:5]))
		switch data[5] % 3 {
		case 0:
			// Dense: force equal-time collisions (FIFO tie-breaks).
			t %= 1 << 10
		case 1:
			// Mid-range: within the wheel horizon, spread across levels.
		case 2:
			// Far: cross wheel levels and the 2^32 overflow boundary.
			t <<= 14
		}
		data = data[6:]
		switch op % 3 {
		case 0:
			id++
			s.At(t, rec(id))
		case 1:
			id++
			s.After(t, rec(id))
		case 2:
			s.RunUntil(t)
		}
	}
	s.Run()
	return trace, s.Now(), s.Steps()
}

func diffSchedScript(t *testing.T, data []byte) {
	t.Helper()
	wTrace, wNow, wSteps := runSchedScript(SchedWheel, data)
	hTrace, hNow, hSteps := runSchedScript(SchedHeap, data)
	if len(wTrace) != len(hTrace) {
		t.Fatalf("dispatch counts differ: wheel %d, heap %d", len(wTrace), len(hTrace))
	}
	for i := range wTrace {
		if wTrace[i] != hTrace[i] {
			t.Fatalf("dispatch %d differs: wheel %s, heap %s", i, wTrace[i], hTrace[i])
		}
	}
	if wNow != hNow {
		t.Fatalf("final clock differs: wheel %d, heap %d", wNow, hNow)
	}
	if wSteps != hSteps {
		t.Fatalf("steps differ: wheel %d, heap %d", wSteps, hSteps)
	}
}

// TestSchedulerEquivalenceRandom runs seeded random operation scripts under
// both engines and requires identical dispatch order (including equal-time
// FIFO), final clock and step counts.
func TestSchedulerEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 6*(1+rng.Intn(120)))
		rng.Read(data)
		diffSchedScript(t, data)
	}
}

// TestSchedulerEquivalenceTargeted pins hand-picked corner scripts: bursts
// of equal timestamps, RunUntil clamps (earlier deadlines, past
// scheduling), and timestamps beyond the wheel's 2^32 horizon in several
// distinct far blocks.
func TestSchedulerEquivalenceTargeted(t *testing.T) {
	mk := func(ops ...[3]uint64) []byte {
		var data []byte
		for _, op := range ops {
			var b [6]byte
			b[0] = byte(op[0])
			binary.LittleEndian.PutUint32(b[1:5], uint32(op[1]))
			b[5] = byte(op[2])
			data = append(data, b[:]...)
		}
		return data
	}
	cases := [][3]uint64{}
	// Equal-time burst at three instants.
	for i := 0; i < 12; i++ {
		cases = append(cases, [3]uint64{0, uint64(i % 3 * 100), 0})
	}
	// Far timestamps: distinct 2^32 blocks via the <<14 scaling.
	cases = append(cases,
		[3]uint64{0, 1 << 20, 2}, // 2^34
		[3]uint64{0, 5 << 20, 2}, // later block
		[3]uint64{2, 900, 0},     // RunUntil mid-burst
		[3]uint64{2, 10, 0},      // earlier deadline: clamps, must not rewind
		[3]uint64{0, 50, 0},      // now in the past: clamps to the clock
		[3]uint64{1, 300, 0},     // relative schedule after clamping
		[3]uint64{2, 1 << 26, 1}, // deadline between the far blocks
	)
	diffSchedScript(t, mk(cases...))
}

// TestWheelCrossWindowInsertAfterBoundedRun pins the cursor invariant: a
// bounded run that stops at a deadline inside a drained window must leave
// the wheel able to file later insertions that precede already-pending
// far events. A cursor advanced too far would misfile them.
func TestWheelCrossWindowInsertAfterBoundedRun(t *testing.T) {
	s := NewSimSched(SchedWheel)
	var got []uint64
	add := func(at uint64) { s.At(at, func() { got = append(got, at) }) }
	add(5)
	add(70_000) // level-2 territory relative to the cursor
	s.RunUntil(65_600)
	// The pending 70 000 event's bucket was (partly) cascaded; these now sit
	// between the deadline and it.
	add(65_700)
	add(66_000)
	s.Run()
	want := []uint64{5, 65_700, 66_000, 70_000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// FuzzSchedulerEquivalence drives both engines with the same fuzzed
// operation script and requires identical dispatch order and final clock —
// the event-loop analogue of the compiled-datapath FuzzDifferential.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 0, 0, 0, 10, 0, 0, 0, 0, 2, 5, 0, 0, 0, 0})
	f.Add([]byte{1, 0, 0, 0, 1, 2, 0, 255, 255, 255, 255, 2, 2, 0, 0, 1, 0, 1})
	rng := rand.New(rand.NewSource(99))
	seed := make([]byte, 90)
	rng.Read(seed)
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 6*512 {
			data = data[:6*512]
		}
		diffSchedScript(t, data)
	})
}

// buildStreamNode builds the end-to-end fixture of TestSwitchNodeEndToEnd
// under an explicit scheduler mode and returns its full observable trace.
func runStreamTrace(t *testing.T, mode SchedMode, shards int) []string {
	t.Helper()
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	const intShift = 10
	sim := NewSimSched(mode)
	var trace []string
	onDigest := func(now uint64, d p4.Digest) {
		trace = append(trace, fmt.Sprintf("digest@%d id=%d vals=%v", now, d.ID, d.Values))
	}
	deliver := func(now uint64, data []byte) {
		trace = append(trace, fmt.Sprintf("frame@%d len=%d b0=%d", now, len(data), data[0]))
	}

	dest := []packet.IP4{packet.ParseIP4(10, 0, 0, 1)}
	load := &traffic.LoadBalanced{Dests: dest, Rate: 20e6, End: 40 << intShift, Seed: 1, Jitter: 0.2}
	spike := &traffic.Spike{Dest: dest[0], Rate: 300e6, Start: 30 << intShift, End: 40 << intShift, Seed: 2, Jitter: 0.2}
	st := traffic.Merge(load, spike)

	if shards > 1 {
		sr, err := stat4p4.NewShardedRuntime(lib, shards)
		if err != nil {
			t.Fatal(err)
		}
		defer sr.Close()
		if _, err := sr.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, 8, 2); err != nil {
			t.Fatal(err)
		}
		node := NewShardedSwitchNode(sim, sr.Sharded(), 500)
		node.OnDigest = onDigest
		node.Connect(0, 100, deliver)
		node.InjectStream(st, 1)
	} else {
		rt, err := stat4p4.NewRuntime(lib)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, 8, 2); err != nil {
			t.Fatal(err)
		}
		node := NewSwitchNode(sim, rt.Switch(), 500)
		node.OnDigest = onDigest
		node.Connect(0, 100, deliver)
		node.InjectStream(st, 1)
	}
	sim.Run()
	trace = append(trace, fmt.Sprintf("end@%d steps=%d", sim.Now(), sim.Steps()))
	return trace
}

// TestInjectStreamBatchedEquivalence pins the batched pump against the
// reference per-packet-event engine: same stream, same digests at the same
// controller arrival times, same frame deliveries, same final clock and
// step count — for the plain switch and a sharded node.
func TestInjectStreamBatchedEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		wheel := runStreamTrace(t, SchedWheel, shards)
		hp := runStreamTrace(t, SchedHeap, shards)
		if len(wheel) != len(hp) {
			t.Fatalf("shards=%d: trace lengths differ: wheel %d, heap %d", shards, len(wheel), len(hp))
		}
		for i := range wheel {
			if wheel[i] != hp[i] {
				t.Fatalf("shards=%d: trace %d differs:\nwheel: %s\nheap:  %s", shards, i, wheel[i], hp[i])
			}
		}
	}
}

// TestDigestQueueObservedBeforeReceive is the regression test for the
// drain-time occupancy observable: the digest being popped still counts, so
// draining a backlog of 3 must record samples {3,2,1} — never {2,1,0}.
func TestDigestQueueObservedBeforeReceive(t *testing.T) {
	for _, mode := range []SchedMode{SchedWheel, SchedHeap} {
		sim := NewSimSched(mode)
		ch := make(chan p4.Digest, 8)
		n := &SwitchNode{}
		n.init(sim, nil, ch, 10)
		n.Metrics = telemetry.NewNodeMetrics()
		n.OnDigest = func(now uint64, d p4.Digest) {}

		if mode == SchedHeap {
			for i := 0; i < 3; i++ {
				ch <- p4.Digest{ID: i}
			}
		} else {
			for i := 0; i < 3; i++ {
				n.digestSink(p4.Digest{ID: i})
			}
		}
		n.drainDigests()

		q := n.Metrics.DigestQueue
		if q.Count() != 3 {
			t.Fatalf("mode=%d: %d occupancy samples, want 3", mode, q.Count())
		}
		if q.Max() != 3 || q.Min() != 1 {
			t.Fatalf("mode=%d: occupancy range [%d,%d], want [1,3] (popped digest must count)",
				mode, q.Min(), q.Max())
		}
		if q.Sum() != 6 {
			t.Fatalf("mode=%d: occupancy sum %d, want 3+2+1", mode, q.Sum())
		}
	}
}

// TestWheelDigestBacklogFromChannel covers the catch-up path: digests
// emitted before the node (and its sink) existed sit in the switch channel
// and must still reach the controller under the wheel engine.
func TestWheelDigestBacklogFromChannel(t *testing.T) {
	sim := NewSimSched(SchedWheel)
	ch := make(chan p4.Digest, 8)
	ch <- p4.Digest{ID: 7}
	n := &SwitchNode{}
	n.init(sim, nil, ch, 10)
	var got []int
	n.OnDigest = func(now uint64, d p4.Digest) { got = append(got, d.ID) }
	n.drainDigests()
	sim.Run()
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("backlogged digest not delivered: %v", got)
	}
}
