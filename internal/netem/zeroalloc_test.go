// Allocation regression tests for the wheel engine: at steady state,
// scheduling and dispatching the typed event kinds — packet arrival, frame
// delivery over a pooled buffer, digest delivery through the direct sink —
// must not allocate. The top-level zeroalloc_test.go pins the same property
// end to end through a real switch; this one isolates the simulator with a
// stub pipeline so a regression points at netem, not the datapath.
package netem

import (
	"testing"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/traffic"
)

// nullPipe is a pipeline stub: fixed outputs, an optional digest emitted
// through the node's sink on every packet.
type nullPipe struct {
	outs []p4.FrameOut
	emit func()
}

func (p *nullPipe) ProcessPacket(tsNs uint64, inPort uint16, pkt *packet.Packet) []p4.FrameOut {
	if p.emit != nil {
		p.emit()
	}
	return p.outs
}

func (p *nullPipe) ProcessFrame(tsNs uint64, inPort uint16, data []byte) []p4.FrameOut {
	if p.emit != nil {
		p.emit()
	}
	return p.outs
}

// TestTypedEventSchedulingZeroAlloc drives one packet per iteration through
// inject → process → frame delivery → digest delivery, all as wheel events,
// and requires 0 allocs once the slab, pool and sink buffer are warm.
func TestTypedEventSchedulingZeroAlloc(t *testing.T) {
	sim := NewSimSched(SchedWheel)
	pipe := &nullPipe{}
	n := &SwitchNode{}
	n.init(sim, pipe, make(chan p4.Digest), 50)
	n.OnDigest = func(now uint64, d p4.Digest) {}
	var delivered int
	n.Connect(0, 25, func(now uint64, data []byte) { delivered++ })

	frame := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	vals := []uint64{42}
	pipe.outs = []p4.FrameOut{{Port: 0, Data: frame}}
	pipe.emit = func() { n.digestSink(p4.Digest{ID: 3, Values: vals}) }

	pkt := &packet.Packet{}
	ts := uint64(0)
	step := func() {
		ts += 100
		n.Inject(ts, 1, traffic.Pkt{TsNs: ts, Frame: pkt})
		sim.RunUntil(ts + 60)
	}
	for i := 0; i < 1024; i++ {
		step()
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("packet+frame+digest event cycle: %.2f allocs, want 0", avg)
	}
	if delivered == 0 {
		t.Fatal("no frames delivered")
	}
}

// TestGenericEventSchedulingAllocs documents the compatibility kind: a
// generic At/After closure still allocates (the closure itself), which is
// exactly why the hot paths use typed events instead.
func TestGenericEventSchedulingZeroSlabGrowth(t *testing.T) {
	sim := NewSimSched(SchedWheel)
	// Warm the slab with a burst, drain, and check the free list is reused:
	// the slab high-water mark must not grow when the same depth recurs.
	for i := 0; i < 256; i++ {
		sim.At(uint64(i), func() {})
	}
	sim.Run()
	grown := len(sim.slab)
	for i := 0; i < 256; i++ {
		sim.At(sim.Now()+uint64(i), func() {})
	}
	sim.Run()
	if len(sim.slab) != grown {
		t.Fatalf("slab grew from %d to %d on a repeat burst of the same depth", grown, len(sim.slab))
	}
}
