package netem

import "stat4/internal/p4"

// SwitchNode runs a p4.Switch inside the simulation: injected packets are
// processed at their timestamps, output frames are delivered to connected
// ports after their link delay, and digests reach the controller handler
// after the control-channel delay — the push arrow of Figure 1c.
//
// Attach-handler-before-inject contract: digests are drained from the switch
// after every processed packet, so OnDigest (and any Connect receivers) must
// be in place before the first Inject/InjectFrame/InjectStream call. Digests
// drained while OnDigest is nil are dropped — counted by DroppedDigests and
// the telemetry snapshot, never silently — and frames emitted on ports with
// no connected link are likewise counted by UnroutedFrames.
//
// The Sim, CtrlDelay, OnDigest and Metrics fields (and the Connect/Inject
// methods) are promoted from the shared node engine; see nodeCore.
type SwitchNode struct {
	nodeCore
	SW *p4.Switch
}

// NewSwitchNode wires a switch into a simulation. Under the wheel engine it
// installs a digest sink on the switch, so digests skip the mailbox channel
// and are forwarded as typed events; anything else reading sw.Digests()
// directly will no longer see them.
func NewSwitchNode(sim *Sim, sw *p4.Switch, ctrlDelay uint64) *SwitchNode {
	n := &SwitchNode{SW: sw}
	n.init(sim, sw, sw.Digests(), ctrlDelay)
	if sim.mode != SchedHeap {
		sw.SetDigestSink(n.digestSink)
	}
	return n
}
