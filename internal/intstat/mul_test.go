package intstat

import (
	"testing"
	"testing/quick"
)

func TestMulShiftExactOnPowersOfTwo(t *testing.T) {
	for e := uint(0); e < 20; e++ {
		if got := MulShift(37, 1<<e, 1); got != 37<<e {
			t.Errorf("MulShift(37, 2^%d, 1) = %d, want %d", e, got, 37<<e)
		}
	}
}

// TestMulShiftErrorBound property: with two terms the approximation keeps the
// top two bits of b, so the result is within [product/2, product] — in fact
// the missing mass is below the second-highest power of two of b, bounding
// the relative error by 25%.
func TestMulShiftErrorBound(t *testing.T) {
	f := func(a, b uint32) bool {
		exact := uint64(a) * uint64(b)
		got := MulShift(uint64(a), uint64(b), 2)
		if exact == 0 {
			return got == 0
		}
		return got <= exact && 4*(exact-got) <= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestMulShiftConverges property: with 64 terms the approximation is exact.
func TestMulShiftConverges(t *testing.T) {
	f := func(a, b uint32) bool {
		return MulShift(uint64(a), uint64(b), 64) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestSquareApprox(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{2, 4},
		{3, 3*2 + 3},        // 2^1 + 2^0 terms: 3<<1 + 3<<0 = 9, exact
		{10, 10<<3 + 10<<1}, // 100 exact: 10 = 8+2
		{100, 100<<6 + 100<<5},
	}
	for _, c := range cases {
		if got := SquareApprox(c.in); got != c.want {
			t.Errorf("SquareApprox(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestIncSumsq property: maintaining Xsumsq with the 2x+1 identity matches
// recomputing the sum of squares from scratch.
func TestIncSumsqIdentity(t *testing.T) {
	f := func(x uint32) bool {
		xx := uint64(x)
		return xx*xx+IncSumsq(xx) == (xx+1)*(xx+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct {
		a, b  uint64
		width uint
		want  uint64
	}{
		{1, 2, 8, 3},
		{250, 10, 8, 255},
		{255, 255, 8, 255},
		{1 << 40, 1 << 40, 32, 1<<32 - 1},
		{^uint64(0), 1, 64, ^uint64(0)},
		{^uint64(0) - 1, 1, 64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := SatAdd(c.a, c.b, c.width); got != c.want {
			t.Errorf("SatAdd(%d,%d,%d) = %d, want %d", c.a, c.b, c.width, got, c.want)
		}
	}
}

func TestSatSub(t *testing.T) {
	if got := SatSub(5, 3); got != 2 {
		t.Errorf("SatSub(5,3) = %d", got)
	}
	if got := SatSub(3, 5); got != 0 {
		t.Errorf("SatSub(3,5) = %d, want 0", got)
	}
	if got := SatSub(3, 3); got != 0 {
		t.Errorf("SatSub(3,3) = %d, want 0", got)
	}
}

func TestMask(t *testing.T) {
	if Mask(8) != 255 || Mask(1) != 1 || Mask(64) != ^uint64(0) || Mask(65) != ^uint64(0) {
		t.Fatal("Mask wrong")
	}
}

func TestSquareExact(t *testing.T) {
	if SquareExact(12) != 144 {
		t.Fatal("SquareExact wrong")
	}
}
