package intstat

// MulShift approximates a·b using only shifts and adds, the technique the
// paper points to (Ding et al., NOMS 2020) for targets that cannot multiply
// two runtime values. Operand b is rounded to the sum of its top `terms`
// powers of two; each term turns into one shift of a plus one add. terms == 1
// keeps the order of magnitude only; terms == 2 bounds the relative error by
// 25%; larger values converge to the exact product.
//
// terms is a compile-time parameter of an emitted program (each term is one
// unrolled shift-and-add stage), and the per-term shift amounts come from the
// MSB if-chain whose leaves shift by constants — which is what the
// exemptions below record.
//
//stat4:datapath
func MulShift(a, b uint64, terms int) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	var sum uint64
	//stat4:exempt:boundedloop terms is a compile-time parameter; each iteration is one unrolled shift-and-add stage
	for i := 0; i < terms && b != 0; i++ {
		e := MSBIfChain(b)
		sum += a << uint(e) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
		b &^= 1 << uint(e)  //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	}
	return sum
}

// SquareApprox approximates y² as MulShift(y, y, 2). With two terms the
// result keeps the two leading bits of one operand:
// y = 2^e + r  ⇒  y² ≈ y·2^e + y·2^f where f is the position of r's MSB.
//
//stat4:datapath
func SquareApprox(y uint64) uint64 {
	return MulShift(y, y, 2)
}

// SquareExact returns y², wrapping on overflow like a P4 register would.
// Multiplying two runtime values is only available on AllowMul targets; this
// is the reference the approximation error tables compare against.
//
//stat4:reference exact product used only to quantify MulShift error
func SquareExact(y uint64) uint64 { return y * y }

// IncSumsq returns the adjustment to Xsumsq when a frequency counter moves
// from x to x+1: (x+1)² − x² = 2x + 1. This is the identity that lets Stat4
// maintain a sum of squares without ever squaring a runtime value.
//
//stat4:datapath
func IncSumsq(x uint64) uint64 { return 2*x + 1 }

// SatAdd returns a+b saturating at the maximum value representable in
// `width` bits. Stat4 registers use saturation for the moment accumulators so
// that an overflowing distribution reads as "huge", not as a small wrapped
// value that would mask an anomaly.
//
//stat4:datapath
func SatAdd(a, b uint64, width uint) uint64 {
	max := Mask(width)
	if a > max {
		a = max
	}
	if b > max {
		b = max
	}
	if a > max-b {
		return max
	}
	return a + b
}

// SatSub returns a−b saturating at zero.
//
//stat4:datapath
func SatSub(a, b uint64) uint64 {
	if b >= a {
		return 0
	}
	return a - b
}

// Mask returns the all-ones value of the given bit width (1 ≤ width ≤ 64).
// width is the register cell width, fixed when the program is emitted, so the
// shift below is a constant on the target.
//
//stat4:datapath
func Mask(width uint) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return 1<<width - 1 //stat4:exempt:shiftconst width is the compile-time register cell width
}
