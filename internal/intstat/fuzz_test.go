package intstat

import "testing"

// FuzzSqrtApprox checks the core numeric invariants on arbitrary operands:
// monotone comparisons against the exact root, order-of-magnitude
// preservation, and agreement of all MSB layouts.
func FuzzSqrtApprox(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(106))
	f.Add(uint64(1) << 63)
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, y uint64) {
		ap := SqrtApprox(y)
		ex := SqrtExact(y)
		if y == 0 {
			if ap != 0 {
				t.Fatalf("SqrtApprox(0) = %d", ap)
			}
			return
		}
		if ap > 2*ex || 2*ap < ex {
			t.Fatalf("SqrtApprox(%d) = %d not within 2x of exact %d", y, ap, ex)
		}
		if MSBIfChain(y) != MSB(y) || MSBLinear(y) != MSB(y) {
			t.Fatalf("MSB layouts disagree at %d", y)
		}
		r := SqrtApproxRound(y)
		if r != ap && r != ap+1 {
			t.Fatalf("rounding variant %d not in {%d, %d}", r, ap, ap+1)
		}
	})
}
