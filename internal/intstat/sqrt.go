// Package intstat provides the integer-only numeric primitives that Stat4
// relies on: most-significant-bit location, the approximate square root of
// Figure 2 of the paper, shift-based approximate multiplication and squaring,
// and exact integer references used to quantify approximation error.
//
// Every routine in this package is implementable on a P4 target: the only
// operations used are comparisons, additions, subtractions, bitwise logic and
// shifts by compile-time constants. The package is the ground truth for the
// op sequences emitted by internal/stat4p4; tests cross-check the two.
package intstat

// BitLen returns the number of bits required to represent v, i.e. one plus
// the position of the most significant set bit, and 0 for v == 0. It is the
// reference implementation; MSBIfChain and MSBLinear compute the same value
// using only the control flow available in P4.
func BitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// MSB returns the zero-based position of the most significant set bit of v.
// It returns -1 for v == 0.
func MSB(v uint64) int {
	return BitLen(v) - 1
}

// MSBIfChain locates the most significant set bit using a nested-if binary
// search, mirroring the "sequence of ifs" the Stat4 library uses on targets
// without a priority encoder. For a 64-bit operand the chain is 6 sequential
// comparisons deep. It returns -1 for v == 0.
func MSBIfChain(v uint64) int {
	if v == 0 {
		return -1
	}
	pos := 0
	if v >= 1<<32 {
		v >>= 32
		pos += 32
	}
	if v >= 1<<16 {
		v >>= 16
		pos += 16
	}
	if v >= 1<<8 {
		v >>= 8
		pos += 8
	}
	if v >= 1<<4 {
		v >>= 4
		pos += 4
	}
	if v >= 1<<2 {
		v >>= 2
		pos += 2
	}
	if v >= 1<<1 {
		pos++
	}
	return pos
}

// MSBLinear locates the most significant set bit by scanning thresholds from
// the top, the linear if-chain layout. It costs up to 64 sequential
// comparisons but each is independent of the last result except through the
// running answer, which is how a naive P4 implementation lays it out. It
// returns -1 for v == 0. It exists as the ablation partner of MSBIfChain.
func MSBLinear(v uint64) int {
	for i := 63; i >= 0; i-- {
		if v >= 1<<uint(i) {
			return i
		}
	}
	return -1
}

// SqrtApprox approximates the integer square root of y using the algorithm of
// Figure 2 of the paper. The operand is viewed as a floating-point-like pair
// (exponent = MSB position, mantissa = bits below the MSB); the concatenated
// exponent‖mantissa bit string is shifted right by one, and the result is
// rebuilt as an integer whose MSB sits at exponent/2 with the leftmost
// mantissa bits copied below it.
//
// The algorithm interpolates between successive squares of the form 2^(2k):
// SqrtApprox(106) == 10, and SqrtApprox(3) == 1 (high relative error for very
// small operands, as Table 2 of the paper notes).
func SqrtApprox(y uint64) uint64 {
	if y == 0 {
		return 0
	}
	e := MSB(y) // exponent: position of the MSB
	if e == 0 {
		return 1 // y == 1
	}
	// mantissa: the e bits below the MSB.
	m := y &^ (1 << uint(e))
	// Shift the exponent‖mantissa string right by one: the exponent's low
	// bit becomes the mantissa's new top bit and the exponent halves.
	he := e >> 1
	mShift := (m >> 1) | (uint64(e&1) << uint(e-1))
	// Rebuild: MSB of the result at position he, with the top he bits of
	// the shifted mantissa (width e) copied beneath it.
	return 1<<uint(he) | mShift>>uint(e-he)
}

// SqrtApproxRound is the rounding ablation of SqrtApprox: it inspects the
// first mantissa bit discarded by the final truncation and rounds the result
// up when that bit is set. It costs one extra shift, mask and add.
func SqrtApproxRound(y uint64) uint64 {
	if y == 0 {
		return 0
	}
	e := MSB(y)
	if e == 0 {
		return 1
	}
	m := y &^ (1 << uint(e))
	he := e >> 1
	mShift := (m >> 1) | (uint64(e&1) << uint(e-1))
	r := 1<<uint(he) | mShift>>uint(e-he)
	drop := e - he // number of truncated mantissa bits
	if drop > 0 && mShift&(1<<uint(drop-1)) != 0 {
		r++
	}
	return r
}

// SqrtExact returns floor(sqrt(y)) computed with integer Newton iteration.
// It is the reference the error tables compare against (together with the
// fractional square root from internal/baseline) and is NOT implementable in
// P4: it iterates.
func SqrtExact(y uint64) uint64 {
	if y < 2 {
		return y
	}
	// Initial estimate from the bit length; Newton converges quadratically.
	x := uint64(1) << uint((BitLen(y)+1)/2)
	for {
		nx := (x + y/x) >> 1
		if nx >= x {
			return x
		}
		x = nx
	}
}

// Log2Fixed approximates log2(y) in fixed point with `frac` fractional bits,
// using the same exponent/mantissa view as SqrtApprox: the integer part is
// the MSB position and the top mantissa bits approximate the fraction
// (log2(1+t) ≈ t on [0,1]). This is the building block the paper's reference
// [7] (Ding et al.) uses to track entropy in P4; it is included as a library
// primitive for such extensions. Log2Fixed(0) returns 0 by convention.
func Log2Fixed(y uint64, frac uint) uint64 {
	if y == 0 {
		return 0
	}
	e := MSB(y)
	out := uint64(e) << frac
	if e == 0 {
		return out
	}
	m := y &^ (1 << uint(e)) // e mantissa bits
	if uint(e) >= frac {
		out |= m >> (uint(e) - frac)
	} else {
		out |= m << (frac - uint(e))
	}
	return out
}
