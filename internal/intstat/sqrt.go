// Package intstat provides the integer-only numeric primitives that Stat4
// relies on: most-significant-bit location, the approximate square root of
// Figure 2 of the paper, shift-based approximate multiplication and squaring,
// and exact integer references used to quantify approximation error.
//
// Every routine in this package is implementable on a P4 target: the only
// operations used are comparisons, additions, subtractions, bitwise logic and
// shifts by compile-time constants. The package is the ground truth for the
// op sequences emitted by internal/stat4p4; tests cross-check the two.
//
// That claim is machine-checked: the switch-feasible routines carry a
// //stat4:datapath directive and cmd/stat4-lint enforces the constraints;
// the exact routines that exist only to quantify approximation error carry
// //stat4:reference and may not be reached from any datapath function.
package intstat

// BitLen returns the number of bits required to represent v, i.e. one plus
// the position of the most significant set bit, and 0 for v == 0. It is the
// reference implementation; MSBIfChain and MSBLinear compute the same value
// using only the control flow available in P4.
//
//stat4:reference iterating reference implementation of MSBIfChain
func BitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// MSB returns the zero-based position of the most significant set bit of v.
// It returns -1 for v == 0.
//
//stat4:reference thin wrapper over the iterating BitLen
func MSB(v uint64) int {
	return BitLen(v) - 1
}

// MSBIfChain locates the most significant set bit using a nested-if binary
// search, mirroring the "sequence of ifs" the Stat4 library uses on targets
// without a priority encoder. For a 64-bit operand the chain is 6 sequential
// comparisons deep. It returns -1 for v == 0.
//
//stat4:datapath
func MSBIfChain(v uint64) int {
	if v == 0 {
		return -1
	}
	pos := 0
	if v >= 1<<32 {
		v >>= 32
		pos += 32
	}
	if v >= 1<<16 {
		v >>= 16
		pos += 16
	}
	if v >= 1<<8 {
		v >>= 8
		pos += 8
	}
	if v >= 1<<4 {
		v >>= 4
		pos += 4
	}
	if v >= 1<<2 {
		v >>= 2
		pos += 2
	}
	if v >= 1<<1 {
		pos++
	}
	return pos
}

// MSBLinear locates the most significant set bit by scanning thresholds from
// the top, the linear if-chain layout. It costs up to 64 sequential
// comparisons but each is independent of the last result except through the
// running answer, which is how a naive P4 implementation lays it out. It
// returns -1 for v == 0. It exists as the ablation partner of MSBIfChain.
//
//stat4:datapath
func MSBLinear(v uint64) int {
	//stat4:exempt:boundedloop fixed 64-iteration scan, laid out as 64 sequential ifs on the target
	for i := 63; i >= 0; i-- {
		if v >= 1<<uint(i) { //stat4:exempt:shiftconst i is the unrolled iteration index, a per-if constant on the target
			return i
		}
	}
	return -1
}

// SqrtApprox approximates the integer square root of y using the algorithm of
// Figure 2 of the paper. The operand is viewed as a floating-point-like pair
// (exponent = MSB position, mantissa = bits below the MSB); the concatenated
// exponent‖mantissa bit string is shifted right by one, and the result is
// rebuilt as an integer whose MSB sits at exponent/2 with the leftmost
// mantissa bits copied below it.
//
// The algorithm interpolates between successive squares of the form 2^(2k):
// SqrtApprox(106) == 10, and SqrtApprox(3) == 1 (high relative error for very
// small operands, as Table 2 of the paper notes).
//
// The shifts below depend on the exponent e, a runtime value; the emitted P4
// program (internal/stat4p4's sqrtTree) realises them as a nested-if binary
// search over MSB positions whose 64 leaf actions each shift by a
// compile-time constant, which is what the shiftconst exemptions record.
//
//stat4:datapath
func SqrtApprox(y uint64) uint64 {
	if y == 0 {
		return 0
	}
	e := MSBIfChain(y) // exponent: position of the MSB
	if e == 0 {
		return 1 // y == 1
	}
	// mantissa: the e bits below the MSB.
	m := y &^ (1 << uint(e)) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	// Shift the exponent‖mantissa string right by one: the exponent's low
	// bit becomes the mantissa's new top bit and the exponent halves.
	he := e >> 1
	mShift := (m >> 1) | (uint64(e&1) << uint(e-1)) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	// Rebuild: MSB of the result at position he, with the top he bits of
	// the shifted mantissa (width e) copied beneath it.
	return 1<<uint(he) | mShift>>uint(e-he) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
}

// SqrtApproxRound is the rounding ablation of SqrtApprox: it inspects the
// first mantissa bit discarded by the final truncation and rounds the result
// up when that bit is set. It costs one extra shift, mask and add.
//
//stat4:datapath
func SqrtApproxRound(y uint64) uint64 {
	if y == 0 {
		return 0
	}
	e := MSBIfChain(y)
	if e == 0 {
		return 1
	}
	m := y &^ (1 << uint(e))                        //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	he := e >> 1                                    //
	mShift := (m >> 1) | (uint64(e&1) << uint(e-1)) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	r := 1<<uint(he) | mShift>>uint(e-he)           //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	drop := e - he                                  // number of truncated mantissa bits
	if drop > 0 && mShift&(1<<uint(drop-1)) != 0 {  //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
		r++
	}
	return r
}

// SqrtExact returns floor(sqrt(y)) computed with integer Newton iteration.
// It is the reference the error tables compare against (together with the
// fractional square root from internal/baseline) and is NOT implementable in
// P4: it iterates.
//
//stat4:reference Newton iteration loops and divides
func SqrtExact(y uint64) uint64 {
	if y < 2 {
		return y
	}
	// Initial estimate from the bit length; Newton converges quadratically.
	x := uint64(1) << uint((BitLen(y)+1)/2)
	for {
		nx := (x + y/x) >> 1
		if nx >= x {
			return x
		}
		x = nx
	}
}

// Log2MaxFrac is the largest fractional width Log2Fixed can honour for every
// operand: the integer part of log2 of a uint64 needs up to 6 bits
// (e ≤ 63), leaving 64 − 6 = 58 bits of fraction.
const Log2MaxFrac = 58

// Log2Fixed approximates log2(y) in fixed point with `frac` fractional bits,
// using the same exponent/mantissa view as SqrtApprox: the integer part is
// the MSB position and the top mantissa bits approximate the fraction
// (log2(1+t) ≈ t on [0,1]). This is the building block the paper's reference
// [7] (Ding et al.) uses to track entropy in P4; it is included as a library
// primitive for such extensions. Log2Fixed(0) returns 0 by convention.
//
// The result e·2^frac + fraction only fits in 64 bits while
// frac ≤ 64 − bits(e); beyond that (frac > Log2MaxFrac can hit it for any
// y ≥ 2, smaller fractions only for large exponents) the value saturates to
// ^uint64(0) rather than silently truncating the integer part — the same
// "overflow reads as huge" convention the moment accumulators use.
//
//stat4:datapath
func Log2Fixed(y uint64, frac uint) uint64 {
	if y == 0 {
		return 0
	}
	e := MSBIfChain(y)
	if e == 0 {
		return 0 // y == 1: log2 is exactly 0 at every precision
	}
	// Saturate when the integer part would shift off the top. frac is a
	// compile-time parameter of an emitted program, so the shifts below
	// are constants on the target.
	if frac >= 64 || uint64(e)>>(64-frac) != 0 { //stat4:exempt:shiftconst frac is a compile-time parameter
		return ^uint64(0)
	}
	out := uint64(e) << frac //stat4:exempt:shiftconst frac is a compile-time parameter
	m := y &^ (1 << uint(e)) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	if uint(e) >= frac {
		out |= m >> (uint(e) - frac) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	} else {
		out |= m << (frac - uint(e)) //stat4:exempt:shiftconst constant per leaf of the MSB if-chain
	}
	return out
}
