package intstat

import (
	"math"
	"testing"
	"testing/quick"
)

// TestSqrtFigure2 reproduces the worked example of Figure 2 of the paper:
// the approximate square root of 106 is 10.
func TestSqrtFigure2(t *testing.T) {
	if got := SqrtApprox(106); got != 10 {
		t.Fatalf("SqrtApprox(106) = %d, want 10 (Figure 2)", got)
	}
}

// TestSqrtTable2Footnote reproduces the Table 2 footnote: sqrt(3) is
// approximated to 1.
func TestSqrtTable2Footnote(t *testing.T) {
	if got := SqrtApprox(3); got != 1 {
		t.Fatalf("SqrtApprox(3) = %d, want 1 (Table 2 footnote)", got)
	}
}

func TestSqrtApproxSmallValues(t *testing.T) {
	// Hand-checked values of the Figure 2 algorithm.
	cases := map[uint64]uint64{
		0: 0, 1: 1, 2: 1, 3: 1, 4: 2, 5: 2, 6: 2, 7: 2, 8: 3,
		9: 3, 10: 3, 15: 3, 16: 4, 17: 4, 24: 5, 25: 5,
		63: 7, 64: 8, 100: 10, 106: 10, 255: 15, 256: 16,
		1 << 20: 1 << 10, 1 << 40: 1 << 20,
	}
	for in, want := range cases {
		if got := SqrtApprox(in); got != want {
			t.Errorf("SqrtApprox(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestSqrtApproxExactOnEvenPowers checks the algorithm is exact on squares of
// powers of two, the anchor points it interpolates between.
func TestSqrtApproxExactOnEvenPowers(t *testing.T) {
	for k := uint(0); k < 31; k++ {
		y := uint64(1) << (2 * k)
		if got := SqrtApprox(y); got != 1<<k {
			t.Errorf("SqrtApprox(2^%d) = %d, want %d", 2*k, got, 1<<k)
		}
	}
}

// TestSqrtApproxMonotone verifies the approximation is non-decreasing, which
// the outlier test mean + 2σ relies on.
func TestSqrtApproxMonotone(t *testing.T) {
	prev := uint64(0)
	for y := uint64(0); y < 1<<16; y++ {
		got := SqrtApprox(y)
		if got < prev {
			t.Fatalf("SqrtApprox not monotone at %d: %d < %d", y, got, prev)
		}
		prev = got
	}
}

// TestSqrtApproxErrorBound checks the relative error against the fractional
// square root stays under 50% for all small inputs and under 5% for inputs
// ≥ 100 — a loose envelope around the Table 2 numbers.
func TestSqrtApproxErrorBound(t *testing.T) {
	for y := uint64(1); y < 1<<20; y++ {
		truth := math.Sqrt(float64(y))
		err := math.Abs(float64(SqrtApprox(y))-truth) / truth
		if err > 0.50 {
			t.Fatalf("SqrtApprox(%d) rel err %.3f > 0.50", y, err)
		}
		// Asymptotically the linear-in-mantissa interpolation of sqrt
		// deviates by at most 1.5/sqrt(2)-1 ≈ 6.07%; truncation adds a
		// fraction of an LSB on top.
		if y >= 100 && err > 0.065 {
			t.Fatalf("SqrtApprox(%d) rel err %.4f > 0.065", y, err)
		}
	}
}

// TestSqrtApproxBracketsExact property: the approximation never exceeds
// 2·floor(sqrt(y)) and is never below floor(sqrt(y))/2 — it preserves the
// order of magnitude, which is what the anomaly checks consume.
func TestSqrtApproxBrackets(t *testing.T) {
	f := func(y uint64) bool {
		ex := SqrtExact(y)
		ap := SqrtApprox(y)
		if y == 0 {
			return ap == 0
		}
		return ap <= 2*ex && 2*ap >= ex
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestSqrtExact(t *testing.T) {
	for y := uint64(0); y < 1<<16; y++ {
		want := uint64(math.Sqrt(float64(y)))
		// Guard against float rounding at perfect squares.
		for want*want > y {
			want--
		}
		for (want+1)*(want+1) <= y {
			want++
		}
		if got := SqrtExact(y); got != want {
			t.Fatalf("SqrtExact(%d) = %d, want %d", y, got, want)
		}
	}
}

func TestSqrtExactLarge(t *testing.T) {
	cases := []uint64{1<<62 - 1, 1 << 62, 1<<63 + 12345, ^uint64(0)}
	for _, y := range cases {
		got := SqrtExact(y)
		if got*got > y {
			t.Errorf("SqrtExact(%d) = %d: square exceeds operand", y, got)
		}
		if got < (1<<32-1) && (got+1)*(got+1) <= y {
			t.Errorf("SqrtExact(%d) = %d: not maximal", y, got)
		}
	}
}

// TestSqrtRoundAccuracy characterises the rounding ablation: it improves the
// worst case (sqrt(2) rounds to 1.414's nearest representable rather than
// truncating to 1... effectively capping the error at |1-sqrt(2)|/sqrt(2))
// while the mean error stays within 20% of the truncating variant's.
func TestSqrtRoundAccuracy(t *testing.T) {
	var sumT, sumR, maxT, maxR float64
	n := 0
	for y := uint64(2); y < 1<<16; y++ {
		truth := math.Sqrt(float64(y))
		et := math.Abs(float64(SqrtApprox(y))-truth) / truth
		er := math.Abs(float64(SqrtApproxRound(y))-truth) / truth
		sumT += et
		sumR += er
		maxT = math.Max(maxT, et)
		maxR = math.Max(maxR, er)
		n++
	}
	if maxR > maxT {
		t.Errorf("rounding worst case %.4f exceeds truncation worst case %.4f", maxR, maxT)
	}
	if sumR > sumT*1.20 {
		t.Errorf("rounding mean error %.5f more than 10%% above truncation mean %.5f",
			sumR/float64(n), sumT/float64(n))
	}
}

func TestBitLen(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9, 1 << 63: 64, ^uint64(0): 64}
	for in, want := range cases {
		if got := BitLen(in); got != want {
			t.Errorf("BitLen(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestMSBVariantsAgree property: all three MSB layouts compute the same
// position for every operand.
func TestMSBVariantsAgree(t *testing.T) {
	f := func(v uint64) bool {
		ref := MSB(v)
		return MSBIfChain(v) == ref && MSBLinear(v) == ref
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50000}); err != nil {
		t.Fatal(err)
	}
	// Edge values the generator may not hit.
	for _, v := range []uint64{0, 1, 2, 1<<32 - 1, 1 << 32, 1 << 63, ^uint64(0)} {
		ref := MSB(v)
		if MSBIfChain(v) != ref || MSBLinear(v) != ref {
			t.Fatalf("MSB variants disagree at %d", v)
		}
	}
}

func TestLog2Fixed(t *testing.T) {
	const frac = 8
	cases := map[uint64]float64{
		1: 0, 2: 1, 3: 1.585, 4: 2, 8: 3, 1024: 10, 1 << 40: 40,
		1000: 9.966, 6: 2.585,
	}
	for in, want := range cases {
		got := float64(Log2Fixed(in, frac)) / (1 << frac)
		// The linear-mantissa approximation of log2(1+t) is at most
		// ~0.0861 below the true value, plus truncation.
		if got > want+0.001 || got < want-0.10 {
			t.Errorf("Log2Fixed(%d) ≈ %.4f, want ≈%.4f", in, got, want)
		}
	}
	if Log2Fixed(0, frac) != 0 {
		t.Fatal("Log2Fixed(0) != 0")
	}
}

// TestLog2FixedMonotone property: the approximation is non-decreasing.
func TestLog2FixedMonotone(t *testing.T) {
	prev := uint64(0)
	for y := uint64(1); y < 1<<16; y++ {
		got := Log2Fixed(y, 8)
		if got < prev {
			t.Fatalf("Log2Fixed not monotone at %d: %d < %d", y, got, prev)
		}
		prev = got
	}
}

// TestLog2FixedEdgeCases pins the boundary behaviour: exact values where the
// approximation is exact, the frac=0 integer-only mode, wide fractions
// cross-checked against math.Log2, and saturation where the integer part
// would shift off the top of the 64-bit result.
func TestLog2FixedEdgeCases(t *testing.T) {
	max := ^uint64(0)
	cases := []struct {
		name string
		y    uint64
		frac uint
		want uint64
	}{
		{"one any frac", 1, 32, 0},
		{"one frac 0", 1, 0, 0},
		{"zero convention", 0, 57, 0},
		{"frac 0 truncates to MSB pos", 1000, 0, 9},
		{"frac 0 max operand", max, 0, 63},
		{"power of two wide frac", 1 << 40, 32, 40 << 32},
		// y = MaxUint64: e = 63, mantissa all ones, so the result is
		// one below the unrepresentable 64·2^32.
		{"max operand frac 32", max, 32, 64<<32 - 1},
		// Saturation: e = 63 needs 6 integer bits, so frac 59 overflows…
		{"saturates frac 59", 1 << 63, 59, max},
		{"saturates frac 64", 2, 64, max},
		{"saturates frac 70", 2, 70, max},
		// …but the documented Log2MaxFrac = 58 fits for every operand.
		{"max frac ok", 1 << 63, Log2MaxFrac, 63 << Log2MaxFrac},
		{"max frac max operand", max, Log2MaxFrac, 64<<Log2MaxFrac - 1},
		// A small exponent leaves room for a wider fraction: e = 1 uses
		// one bit, so frac 62 still fits.
		{"small exponent wide frac", 2, 62, 1 << 62},
	}
	for _, tc := range cases {
		if got := Log2Fixed(tc.y, tc.frac); got != tc.want {
			t.Errorf("%s: Log2Fixed(%d, %d) = %d, want %d", tc.name, tc.y, tc.frac, got, tc.want)
		}
	}
}

// TestLog2FixedSaturationBoundary pins the saturation guard at the
// documented limit frac == Log2MaxFrac for operands just below and at powers
// of two near 2^63 — the region where e·2^frac presses against the top of
// the 64-bit result. Every value here must come out natural (not the
// ^uint64(0) sentinel), undershoot math.Log2 by at most the linearisation
// bound, and the guard must stay tight one fraction bit further up: at each
// frac > Log2MaxFrac the largest representable exponent passes while the
// first unrepresentable one saturates.
func TestLog2FixedSaturationBoundary(t *testing.T) {
	const frac = Log2MaxFrac
	for _, p := range []uint{61, 62, 63} {
		for _, y := range []uint64{1<<p - 2, 1<<p - 1, 1 << p, 1<<p + 1, 1<<p + 2} {
			got := Log2Fixed(y, frac)
			// frac = 58 leaves 6 integer bits, enough for any e ≤ 63:
			// nothing in range saturates (the all-ones result for the
			// maximal operand is pinned separately in the edge cases).
			if got == ^uint64(0) {
				t.Fatalf("Log2Fixed(%d, %d) saturated inside the representable range", y, frac)
			}
			approx := float64(got) / float64(uint64(1)<<frac)
			want := math.Log2(float64(y))
			if approx > want+1e-9 {
				t.Errorf("Log2Fixed(%d, %d) = %.12f exceeds math.Log2 = %.12f", y, frac, approx, want)
			}
			if approx < want-0.0862 {
				t.Errorf("Log2Fixed(%d, %d) = %.12f undershoots math.Log2 = %.12f beyond the 0.0861 bound", y, frac, approx, want)
			}
		}
	}
	// Guard tightness above Log2MaxFrac: with 64-frac integer bits the
	// largest representable exponent is 2^(64-frac)-1; one more must
	// saturate, one less must not — an off-by-one either way fails here.
	for fr := uint(Log2MaxFrac + 1); fr < 64; fr++ {
		eMax := uint(1)<<(64-fr) - 1
		if got := Log2Fixed(1<<eMax, fr); got != uint64(eMax)<<fr {
			t.Errorf("frac %d: largest exponent %d gave %#x, want %#x", fr, eMax, got, uint64(eMax)<<fr)
		}
		if got := Log2Fixed(1<<(eMax+1), fr); got != ^uint64(0) {
			t.Errorf("frac %d: exponent %d must saturate, got %#x", fr, eMax+1, got)
		}
	}
}

// TestLog2FixedVsMathLog2 cross-checks the fixed-point approximation against
// math.Log2 at a wide fraction: the mantissa linearisation of log2(1+t)
// undershoots by at most ~0.0861, and truncation never rounds up.
func TestLog2FixedVsMathLog2(t *testing.T) {
	const frac = 32
	for _, y := range []uint64{2, 3, 5, 7, 100, 1000, 12345, 1 << 20, 1<<20 + 1, 1 << 30, 1<<31 - 1} {
		got := float64(Log2Fixed(y, frac)) / (1 << frac)
		want := math.Log2(float64(y))
		if got > want+1e-9 {
			t.Errorf("Log2Fixed(%d)/2^%d = %.6f exceeds math.Log2 = %.6f", y, frac, got, want)
		}
		if got < want-0.0862 {
			t.Errorf("Log2Fixed(%d)/2^%d = %.6f undershoots math.Log2 = %.6f by more than the 0.0861 bound", y, frac, got, want)
		}
	}
}
