// Package ingest is the live ingest plane of the stat4d daemon: any number
// of stream producers (pcap players, socket readers) batch frames into
// pooled slab blocks and hand the batch descriptors through one bounded MPSC
// ring to a single consumer goroutine, which drives the sharded datapath.
//
// The plane inherits the backpressure contract of internal/ring: producers
// never block the datapath — when the ring is full or the slab exhausted
// they shed work and count it (Producer.Add), or explicitly opt into waiting
// (Producer.AddWait, for lossless bulk loads like a replay). The consumer
// owns everything downstream of the ring: the ShardedSwitch, the telemetry
// recorders, and the alert store. Control-plane work — metric scrapes,
// register snapshots, table binding updates — is routed onto the consumer
// goroutine with Engine.Do, so it interleaves with batches instead of racing
// them; this is the single-writer discipline the telemetry recorders and the
// merged snapshot reads both rely on.
//
// The wire protocol of Engine.ServeConn is exactly the slab's frame record
// layout ([8]ts_ns [2]port [4]len, little-endian, then the frame bytes), so
// a socket reader validates a header and copies the payload straight into a
// block.
package ingest
