package ingest

import (
	"runtime"

	"stat4/internal/ring"
)

// Producer batches frames into slab blocks for one ingest stream. Each
// producer owns at most one block at a time and is single-goroutine; any
// number of producers feed the same engine concurrently. Frames are copied
// into the block at Add time, so the caller's frame buffer is free for reuse
// immediately.
type Producer struct {
	e        *Engine
	block    uint32
	hasBlock bool
	buf      []byte
	n        uint32
}

// NewProducer returns a producer feeding e.
func (e *Engine) NewProducer() *Producer { return &Producer{e: e} }

// Add appends one frame to the current batch, handing the batch off when it
// reaches the configured size or the block fills. It never blocks: when the
// slab is exhausted, the ring refuses the handoff, or the frame cannot fit
// an empty block, the frame (or batch) is shed and counted — the daemon's
// overload posture. Reports whether the frame was accepted.
//
//stat4:datapath
func (p *Producer) Add(tsNs uint64, port uint16, frame []byte) bool {
	return p.add(tsNs, port, frame, false)
}

// AddWait is Add for lossless bulk loads (pcap replays): instead of
// shedding on a full ring or exhausted slab it yields and retries, so the
// only refusal left is a frame too large for an empty block. Mixing AddWait
// producers with a stopped engine deadlocks; keep it to bounded loads that
// finish before Stop.
func (p *Producer) AddWait(tsNs uint64, port uint16, frame []byte) bool {
	return p.add(tsNs, port, frame, true)
}

//stat4:datapath
//stat4:exempt:boundedloop one extra pass after a full-block flush, plus wait-mode retries bounded by the consumer draining
func (p *Producer) add(tsNs uint64, port uint16, frame []byte, wait bool) bool {
	for {
		if !p.hasBlock {
			idx, ok := p.e.slab.TryAcquire()
			if !ok {
				if wait {
					runtime.Gosched()
					continue
				}
				p.e.shedFrames.Add(1)
				return false
			}
			p.block, p.hasBlock, p.n = idx, true, 0
			p.buf = p.e.slab.Bytes(idx)[:0]
		}
		buf, ok := ring.AppendFrame(p.buf, tsNs, port, frame)
		if ok {
			p.buf = buf
			p.n++
			if int(p.n) >= p.e.cfg.BatchFrames {
				p.flush(wait)
			}
			return true
		}
		if p.n == 0 {
			// Does not fit an empty block: malformed/oversized, never accepted.
			p.e.shedFrames.Add(1)
			return false
		}
		p.flush(wait) // block full: hand it off, land the frame in a fresh one
	}
}

// Flush hands off the current partial batch, shedding it (with its frames
// counted) if the ring refuses. Call it at stream idle points so short
// bursts reach the datapath without waiting for a full batch.
func (p *Producer) Flush() { p.flush(false) }

// FlushWait is Flush with the AddWait posture: it retries until the ring
// accepts.
func (p *Producer) FlushWait() { p.flush(true) }

//stat4:datapath
//stat4:exempt:boundedloop the retry loop runs only in wait mode, bounded by the consumer draining the ring
func (p *Producer) flush(wait bool) {
	if !p.hasBlock || p.n == 0 {
		return
	}
	for {
		if p.e.ring.TryPush(ring.Desc{Block: p.block, N: p.n}) {
			p.e.parker.Unpark()
			break
		}
		if wait {
			runtime.Gosched()
			continue
		}
		p.e.shedBatches.Add(1)
		p.e.shedFrames.Add(uint64(p.n))
		p.e.slab.Release(p.block)
		break
	}
	p.hasBlock = false
	p.buf = nil
	p.n = 0
}

// Close flushes the pending batch (shedding it if the ring refuses) and
// returns any empty held block to the slab. The producer is dead after
// Close.
func (p *Producer) Close() {
	p.flush(false)
	if p.hasBlock {
		p.e.slab.Release(p.block)
		p.hasBlock = false
		p.buf = nil
	}
}
