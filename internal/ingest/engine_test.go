package ingest

import (
	"bytes"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
)

// newBoundRuntime builds a 1-slot dst24 frequency app over n shards.
func newBoundRuntime(t testing.TB, shards int, k uint64) *stat4p4.ShardedRuntime {
	t.Helper()
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1})
	sr, err := stat4p4.NewShardedRuntime(lib, shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr.BindFreqDst(0, 0, stat4p4.AllIPv4(), 8, 0x0a0000, 256, 1, 1, k); err != nil {
		sr.Close()
		t.Fatal(err)
	}
	return sr
}

// testFrames builds count UDP frames spread over flows and /24 buckets.
func testFrames(count int) [][]byte {
	frames := make([][]byte, count)
	for i := range frames {
		dst := packet.ParseIP4(10, 0, byte(i%7), byte(i%50))
		src := packet.ParseIP4(192, 0, 2, byte(i%11))
		frames[i] = packet.NewUDPFrame(src, dst, uint16(1000+i%13), 80, i%32).Serialize()
	}
	return frames
}

// TestEngineMatchesSerial pushes the same frames through the ingest plane
// and through a serial reference switch and compares the merged moments —
// the ring handoff must be invisible to the statistics.
func TestEngineMatchesSerial(t *testing.T) {
	frames := testFrames(5000)

	// Reference: serial runtime, same binding.
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 8, 0x0a0000, 256, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		rt.Switch().ProcessFrame(uint64(i+1), 1, f)
	}
	want, err := rt.ReadMoments(0)
	if err != nil {
		t.Fatal(err)
	}

	sr := newBoundRuntime(t, 4, 0)
	defer sr.Close()
	e := New(sr, Config{})
	p := e.NewProducer()
	for i, f := range frames {
		if !p.AddWait(uint64(i+1), 1, f) {
			t.Fatalf("frame %d refused", i)
		}
	}
	p.FlushWait()
	p.Close()
	e.Stop()

	if got := e.Frames(); got != uint64(len(frames)) {
		t.Fatalf("consumed %d frames, want %d", got, len(frames))
	}
	got, err := e.MergedMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != want.N || got.Xsum != want.Xsum || got.Xsumsq != want.Xsumsq ||
		got.Var != want.Var || got.SD != want.SD || got.Median != want.Median {
		t.Fatalf("merged moments %+v, serial reference %+v", got, want)
	}
	if sb, sf := e.Shed(); sb != 0 || sf != 0 {
		t.Fatalf("lossless load shed %d batches / %d frames", sb, sf)
	}
}

// TestEngineServeConn drives the wire protocol end to end over an in-memory
// connection, including the idle flush and the record validation.
func TestEngineServeConn(t *testing.T) {
	sr := newBoundRuntime(t, 2, 0)
	defer sr.Close()
	e := New(sr, Config{})
	defer e.Stop()

	client, server := net.Pipe()
	frames := testFrames(300)
	done := make(chan error, 1)
	go func() {
		defer client.Close()
		var buf bytes.Buffer
		for i, f := range frames {
			if err := WriteRecord(&buf, uint64(i+1), 7, f); err != nil {
				done <- err
				return
			}
		}
		_, err := client.Write(buf.Bytes())
		done <- err
	}()
	n, err := e.ServeConn(server)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(frames)) {
		t.Fatalf("served %d records, want %d", n, len(frames))
	}
	for e.Frames() < uint64(len(frames)) {
		runtime.Gosched()
	}
	st := e.Stats()
	if st.Switch.PktsIn != uint64(len(frames)) {
		t.Fatalf("datapath saw %d frames, want %d", st.Switch.PktsIn, len(frames))
	}

	// A record with an impossible length is a protocol error.
	bad := append([]byte(nil), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff)
	if _, err := e.ServeConn(bytes.NewReader(bad)); err == nil {
		t.Fatal("oversized record accepted")
	}
	// A truncated frame is too.
	var tr bytes.Buffer
	_ = WriteRecord(&tr, 1, 1, frames[0])
	if _, err := e.ServeConn(bytes.NewReader(tr.Bytes()[:tr.Len()-3])); err == nil {
		t.Fatal("truncated record accepted")
	}
}

// TestEngineBackpressureSheds saturates a tiny ingest plane with the
// consumer unable to keep up (it is blocked inside a Do) and checks the shed
// ledger adds up — frames are never silently lost.
func TestEngineBackpressureSheds(t *testing.T) {
	sr := newBoundRuntime(t, 1, 0)
	defer sr.Close()
	e := New(sr, Config{RingCap: 2, SlabBlocks: 2, BlockSize: 4096, BatchFrames: 4})
	defer e.Stop()

	// Hold the consumer hostage so nothing drains.
	gate := make(chan struct{})
	holding := make(chan struct{})
	go e.Do(func() { close(holding); <-gate })
	<-holding

	frames := testFrames(200)
	p := e.NewProducer()
	accepted := 0
	for i, f := range frames {
		if p.Add(uint64(i+1), 1, f) {
			accepted++
		}
	}
	p.Close()
	close(gate)
	e.Stop()

	_, shedFrames := e.Shed()
	if shedFrames == 0 {
		t.Fatal("saturation shed nothing")
	}
	if got := e.Frames() + shedFrames; got != uint64(len(frames)) {
		t.Fatalf("consumed %d + shed %d != offered %d", e.Frames(), shedFrames, len(frames))
	}
}

// TestEngineShedLedgerConcurrent drives both shed paths at once — slab
// exhaustion (more producers than blocks) and full-ring refusal (consumer
// blocked inside a Do) — from concurrent producers, and checks the global
// ledger is exact: every offered frame is either consumed or accounted to
// the shed counters. Nothing may be double-counted under contention.
func TestEngineShedLedgerConcurrent(t *testing.T) {
	sr := newBoundRuntime(t, 2, 0)
	defer sr.Close()
	// 8 producers contending for 4 slab blocks over a 2-deep ring: some Adds
	// lose the block race (slab shed), some flushes hit the full ring (batch
	// shed), and a lucky few land and drain at Stop.
	e := New(sr, Config{RingCap: 2, SlabBlocks: 4, BlockSize: 4096, BatchFrames: 8})
	defer e.Stop()

	gate := make(chan struct{})
	holding := make(chan struct{})
	go e.Do(func() { close(holding); <-gate })
	<-holding

	const producers = 8
	const perProducer = 400
	var wg sync.WaitGroup
	var offered, accepted atomic.Uint64
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := e.NewProducer()
			defer p.Close()
			frames := testFrames(perProducer)
			for i, f := range frames {
				offered.Add(1)
				if p.Add(uint64(w*perProducer+i+1), 1, f) {
					accepted.Add(1)
				}
			}
			p.Flush()
		}(w)
	}
	wg.Wait()
	close(gate)
	e.Stop() // drains whatever made it into the ring

	shedBatches, shedFrames := e.Shed()
	if shedFrames == 0 || shedBatches == 0 {
		t.Fatalf("contention exercised neither shed path: %d batches / %d frames",
			shedBatches, shedFrames)
	}
	if e.Frames() == 0 {
		t.Fatal("nothing drained — the ring never handed off")
	}
	if got := e.Frames() + shedFrames; got != offered.Load() {
		t.Fatalf("ledger leak: consumed %d + shed %d != offered %d",
			e.Frames(), shedFrames, offered.Load())
	}
	// Add's return value must agree with the ledger: a frame reported
	// accepted is in a committed or still-buffered batch, never shed as a
	// frame-level casualty — but an accepted frame can still die with its
	// batch at flush, so accepted ≥ consumed.
	if accepted.Load() < e.Frames() {
		t.Fatalf("consumed %d frames but only %d were accepted", e.Frames(), accepted.Load())
	}
}

// TestEngineDoAfterStop pins the control path's quiesced fallback.
func TestEngineDoAfterStop(t *testing.T) {
	sr := newBoundRuntime(t, 2, 0)
	defer sr.Close()
	e := New(sr, Config{})
	e.Stop()
	e.Stop() // idempotent

	ran := false
	e.Do(func() { ran = true })
	if !ran {
		t.Fatal("Do after Stop did not run")
	}
	var sb strings.Builder
	if err := e.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateExposition(sb.String()); err != nil {
		t.Fatal(err)
	}
}

// TestEngineExposition checks the live scrape path: ingest gauges and shard
// series present, exposition valid, alerts surfaced through the sink.
func TestEngineExposition(t *testing.T) {
	sr := newBoundRuntime(t, 2, 2) // k=2 arms the imbalance check
	defer sr.Close()
	e := New(sr, Config{})
	defer e.Stop()

	// Balanced phase across 7 subnets, then one subnet goes hot — the
	// case-study recipe for an imbalance digest.
	p := e.NewProducer()
	ts := uint64(0)
	for _, f := range testFrames(2100) {
		ts++
		p.AddWait(ts, 1, f)
	}
	spike := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), packet.ParseIP4(10, 0, 3, 3), 5, 80, 10).Serialize()
	for i := 0; i < 2000; i++ {
		ts++
		p.AddWait(ts, 1, spike)
	}
	p.FlushWait()
	p.Close()
	for e.Frames() < ts {
		runtime.Gosched()
	}

	var sb strings.Builder
	if err := e.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if _, err := telemetry.ValidateExposition(out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stat4d_ingest_ring_depth",
		"stat4d_ingest_shed_batches 0",
		"stat4d_ingest_frames 4100",
		"stat4d_pkts_in 4100",
		"stat4d_shard0_packet_cost_ns_count",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	recent, total := e.Alerts()
	if total == 0 || len(recent) == 0 {
		t.Fatal("single-destination spike raised no alerts")
	}
	if len(recent) > 128 {
		t.Fatalf("alert store kept %d digests, cap is 128", len(recent))
	}
	for _, d := range recent {
		if len(d.Values) == 0 {
			t.Fatal("empty digest in alert store")
		}
	}
}

// TestEnginePlayPcap round-trips a recorded capture through the file source.
func TestEnginePlayPcap(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.pcap"
	f, err := createPcap(path, 500)
	if err != nil {
		t.Fatal(err)
	}
	sr := newBoundRuntime(t, 2, 0)
	defer sr.Close()
	e := New(sr, Config{})
	defer e.Stop()
	n, err := e.PlaySource(path, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(f) {
		t.Fatalf("played %d frames, wrote %d", n, f)
	}
	for e.Frames() < n {
		runtime.Gosched()
	}

	// The directory source plays the same capture once per copy.
	n2, err := e.PlaySource(dir, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n {
		t.Fatalf("dir source played %d, want %d", n2, n)
	}
}

func createPcap(path string, count int) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := packet.NewPcapWriter(f)
	frames := testFrames(count)
	for i, fr := range frames {
		if err := w.WriteFrame(uint64(i+1)*1000, fr); err != nil {
			return 0, err
		}
	}
	return len(frames), nil
}

// TestIngestSteadyStateZeroAlloc pins the daemon's per-packet guarantee with
// live observers attached: once the slab, ring and shard buffers are warm, a
// frame through producer → ring → consumer → sharded datapath allocates
// nothing, on any goroutine (AllocsPerRun measures the global allocator).
func TestIngestSteadyStateZeroAlloc(t *testing.T) {
	sr := newBoundRuntime(t, 2, 0) // k=0: digest-free, digests allocate by design
	defer sr.Close()
	e := New(sr, Config{BatchFrames: 64})
	defer e.Stop()

	frames := testFrames(64)
	p := e.NewProducer()
	defer p.Close()
	ts := uint64(0)
	pushBatch := func() {
		for _, f := range frames {
			ts++
			p.AddWait(ts, 1, f)
		}
		p.FlushWait()
		target := ts
		for e.Frames() < target {
			runtime.Gosched()
		}
	}
	for i := 0; i < 64; i++ {
		pushBatch()
	}
	perRun := testing.AllocsPerRun(100, pushBatch)
	if perPacket := perRun / float64(len(frames)); perPacket != 0 {
		t.Errorf("steady state allocates %.3f/packet (%.1f/batch), want 0", perPacket, perRun)
	}
	if e.sp.Shards[0].Cost.Count() == 0 && e.sp.Shards[1].Cost.Count() == 0 {
		t.Fatal("observers recorded nothing")
	}
}
