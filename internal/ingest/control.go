package ingest

import (
	"io"

	"stat4/internal/p4"
	"stat4/internal/stat4p4"
)

// Stats is one consistent cut of the engine's health, taken between batches.
type Stats struct {
	Frames      uint64 `json:"frames"`
	Batches     uint64 `json:"batches"`
	ShedBatches uint64 `json:"shed_batches"`
	ShedFrames  uint64 `json:"shed_frames"`
	RingDepth   uint64 `json:"ring_depth"`
	RingCap     uint64 `json:"ring_cap"`
	BlocksInUse uint64 `json:"blocks_in_use"`
	AlertsTotal uint64 `json:"alerts_total"`

	Switch   p4.Stats `json:"switch"`
	PerShard []uint64 `json:"per_shard_pkts_in"`
}

// Stats snapshots the ingest and datapath counters on the consumer.
func (e *Engine) Stats() Stats {
	var s Stats
	e.Do(func() {
		s = Stats{
			Frames:      e.frames.Load(),
			Batches:     e.batches.Load(),
			ShedBatches: e.shedBatches.Load(),
			ShedFrames:  e.shedFrames.Load(),
			RingDepth:   uint64(e.ring.Len()),
			RingCap:     uint64(e.ring.Cap()),
			BlocksInUse: e.slab.InUse(),
			AlertsTotal: e.alertTotal,
			Switch:      e.ss.Stats(),
		}
		for i := 0; i < e.ss.NumShards(); i++ {
			s.PerShard = append(s.PerShard, e.ss.Shard(i).Stats().PktsIn)
		}
	})
	return s
}

// WriteProm refreshes the merged telemetry view and renders the exposition,
// all on the consumer so the scrape never races a batch.
func (e *Engine) WriteProm(w io.Writer) error {
	var err error
	e.Do(func() {
		e.sp.Refresh()
		err = e.reg.WriteProm(w)
	})
	return err
}

// WriteJSON is WriteProm for the JSON snapshot rendering.
func (e *Engine) WriteJSON(w io.Writer) error {
	var err error
	e.Do(func() {
		e.sp.Refresh()
		err = e.reg.WriteJSON(w)
	})
	return err
}

// MergedSnapshot reads the canonical merged register snapshot between
// batches.
func (e *Engine) MergedSnapshot() *p4.Snapshot {
	var snap *p4.Snapshot
	e.Do(func() { snap = e.sr.MergedSnapshot() })
	return snap
}

// MergedMoments reads a slot's merged moments between batches.
func (e *Engine) MergedMoments(slot int) (stat4p4.Moments, error) {
	var m stat4p4.Moments
	var err error
	e.Do(func() { m, err = e.sr.MergedMoments(slot) })
	return m, err
}

// MergedCounters reads a slot's merged counter cells between batches — the
// controller's drill-down view. n limits the cells returned (0 for all).
func (e *Engine) MergedCounters(slot, n int) ([]uint64, error) {
	var cells []uint64
	var err error
	e.Do(func() { cells, err = e.sr.MergedCounters(slot, n) })
	return cells, err
}

// Alerts copies out the retained most-recent digests, oldest first, plus the
// all-time total.
func (e *Engine) Alerts() (recent []p4.Digest, total uint64) {
	e.Do(func() {
		total = e.alertTotal
		if len(e.alerts) < cap(e.alerts) {
			recent = append(recent, e.alerts...)
			return
		}
		recent = append(recent, e.alerts[e.alertNext:]...)
		recent = append(recent, e.alerts[:e.alertNext]...)
	})
	return recent, total
}
