package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"stat4/internal/packet"
	"stat4/internal/ring"
)

// PlayPcap streams one capture file into the engine on a fresh producer and
// returns the frame count. Frames ingress on port. With wait set the load is
// lossless (AddWait); otherwise frames shed under pressure like any other
// stream. Oversized frames are shed in either mode.
func (e *Engine) PlayPcap(path string, port uint16, wait bool) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	p := e.NewProducer()
	defer p.Close()
	r := packet.NewPcapReader(f)
	var n uint64
	for {
		ts, frame, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return n, fmt.Errorf("%s: %w", path, err)
		}
		if wait {
			p.AddWait(ts, port, frame)
		} else {
			p.Add(ts, port, frame)
		}
		n++
	}
	if wait {
		p.FlushWait()
	}
	return n, nil
}

// PlayPcapDir plays every *.pcap file under dir (sorted, one after another —
// captures are time-ordered internally, not across files) and returns the
// total frame count.
func (e *Engine) PlayPcapDir(dir string, port uint16, wait bool) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	var paths []string
	for _, ent := range entries {
		if !ent.IsDir() && strings.HasSuffix(ent.Name(), ".pcap") {
			paths = append(paths, filepath.Join(dir, ent.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		return 0, fmt.Errorf("no *.pcap files in %s", dir)
	}
	var total uint64
	for _, p := range paths {
		n, err := e.PlayPcap(p, port, wait)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// PlaySource plays a pcap file or a directory of them, whichever path is.
func (e *Engine) PlaySource(path string, port uint16, wait bool) (uint64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.IsDir() {
		return e.PlayPcapDir(path, port, wait)
	}
	return e.PlayPcap(path, port, wait)
}

// ServeConn reads one length-prefixed frame stream (the slab record layout:
// [8]ts_ns [2]port [4]len little-endian, then len frame bytes) into its own
// producer until EOF, and returns how many records it read. Batches flush at
// read-idle points, so interactive clients see their frames reach the
// datapath without filling a full batch. Frames shed under pressure are
// counted, not reported per frame — the stream protocol has no backchannel.
func (e *Engine) ServeConn(conn io.Reader) (uint64, error) {
	p := e.NewProducer()
	defer p.Close()
	br := bufio.NewReaderSize(conn, 64<<10)
	var hdr [ring.FrameHdrLen]byte
	frame := make([]byte, 0, 2048)
	var n uint64
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return n, nil
			}
			return n, err
		}
		ts := binary.LittleEndian.Uint64(hdr[0:8])
		port := binary.LittleEndian.Uint16(hdr[8:10])
		ln := binary.LittleEndian.Uint32(hdr[10:14])
		if ln > ring.MaxFrameLen {
			return n, fmt.Errorf("record %d: frame length %d exceeds %d", n, ln, ring.MaxFrameLen)
		}
		if cap(frame) < int(ln) {
			frame = make([]byte, ln)
		}
		frame = frame[:ln]
		if _, err := io.ReadFull(br, frame); err != nil {
			return n, fmt.Errorf("record %d: truncated frame: %w", n, err)
		}
		p.Add(ts, port, frame)
		n++
		if br.Buffered() == 0 {
			p.Flush()
		}
	}
}

// WriteRecord appends one wire/slab frame record to w — the client half of
// the ServeConn protocol.
func WriteRecord(w io.Writer, tsNs uint64, port uint16, frame []byte) error {
	var hdr [ring.FrameHdrLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], tsNs)
	binary.LittleEndian.PutUint16(hdr[8:10], port)
	binary.LittleEndian.PutUint32(hdr[10:14], uint32(len(frame)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}
