package ingest

import (
	"runtime"
	"sync"
	"sync/atomic"

	"stat4/internal/p4"
	"stat4/internal/ring"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
)

// Config sizes the ingest plane. Zero values take the defaults.
type Config struct {
	// RingCap is the batch-descriptor capacity of the MPSC ring.
	RingCap int
	// SlabBlocks and BlockSize shape the frame slab; a block must hold at
	// least one maximum-size frame record.
	SlabBlocks int
	BlockSize  int
	// BatchFrames caps how many frames a producer packs into one descriptor.
	BatchFrames int
	// Prefix names the telemetry registry (default "stat4d").
	Prefix string
	// AlertKeep bounds the retained most-recent alerts.
	AlertKeep int
}

func (c Config) withDefaults() Config {
	if c.RingCap <= 0 {
		c.RingCap = 256
	}
	if c.SlabBlocks <= 0 {
		c.SlabBlocks = 256
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 32 << 10
	}
	if c.BatchFrames <= 0 {
		c.BatchFrames = 256
	}
	if c.Prefix == "" {
		c.Prefix = "stat4d"
	}
	if c.AlertKeep <= 0 {
		c.AlertKeep = 128
	}
	return c
}

// stopSeq is the poison descriptor Stop pushes; producers always push Seq 0.
const stopSeq = ^uint64(0)

// consumerSpins is the consumer's TryPop budget before parking, matching the
// shard workers' posture: a few yielding polls catch back-to-back batches,
// parking covers real idleness.
const consumerSpins = 8

// Engine owns the ring, the slab and the consumer goroutine in front of a
// sharded runtime. Construct with New (which also wires telemetry and the
// alert sink and starts the consumer), feed it through Producers, and Stop
// it before closing the runtime.
type Engine struct {
	sr  *stat4p4.ShardedRuntime
	ss  *p4.ShardedSwitch
	cfg Config

	ring   *ring.MPSC
	slab   *ring.Slab
	parker *ring.Parker

	ctrl     chan func()
	doneCh   chan struct{}
	stopOnce sync.Once

	// Multi-producer shed totals (the backpressure ledger).
	shedBatches atomic.Uint64
	shedFrames  atomic.Uint64

	// frames/batches are written by the consumer only; atomic so producers
	// and tests can watch progress without a control round trip.
	frames  atomic.Uint64
	batches atomic.Uint64

	// Consumer-owned state.
	batch      []p4.FrameIn
	alerts     []p4.Digest
	alertNext  int
	alertTotal uint64

	sp  *telemetry.ShardedPipeline
	reg *telemetry.Registry
}

// New wires an engine onto a prepared (bound) sharded runtime and starts the
// consumer. The engine installs per-shard telemetry observers and the fleet
// digest sink, so call New before any traffic and keep the runtime's
// control-plane operations routed through Do from then on. The caller keeps
// ownership of the runtime: Stop the engine first, then close the runtime.
func New(sr *stat4p4.ShardedRuntime, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		sr:     sr,
		ss:     sr.Sharded(),
		cfg:    cfg,
		ring:   ring.NewMPSC(cfg.RingCap),
		slab:   ring.NewSlab(cfg.SlabBlocks, cfg.BlockSize),
		parker: ring.NewParker(),
		ctrl:   make(chan func(), 16),
		doneCh: make(chan struct{}),
		batch:  make([]p4.FrameIn, 0, cfg.BatchFrames),
		alerts: make([]p4.Digest, 0, cfg.AlertKeep),
		sp:     telemetry.NewShardedPipeline(sr.NumShards()),
		reg:    telemetry.NewRegistry(cfg.Prefix),
	}
	for i := 0; i < e.ss.NumShards(); i++ {
		e.ss.Shard(i).SetObserver(e.sp.Shards[i])
	}
	// The sink runs on the consumer goroutine (digest forwarding happens in
	// ProcessBatch's reduce phase), so the alert store needs no lock.
	e.ss.SetDigestSink(func(d p4.Digest) {
		e.alertTotal++
		if len(e.alerts) < cap(e.alerts) {
			e.alerts = append(e.alerts, d)
		} else {
			e.alerts[e.alertNext] = d
		}
		e.alertNext = (e.alertNext + 1) % cap(e.alerts)
	})
	e.sp.Ingest = &telemetry.IngestMetrics{
		RingDepth:   func() uint64 { return uint64(e.ring.Len()) },
		RingCap:     func() uint64 { return uint64(e.ring.Cap()) },
		BlocksInUse: e.slab.InUse,
		ShedBatches: e.shedBatches.Load,
		ShedFrames:  e.shedFrames.Load,
	}
	e.sp.Register(e.reg)
	e.reg.RegisterCounter("ingest_frames", "frames consumed from the ring", e.frames.Load)
	e.reg.RegisterCounter("ingest_batches", "batch descriptors consumed from the ring", e.batches.Load)
	e.reg.RegisterCounter("alerts_total", "anomaly digests received by the fleet sink", func() uint64 { return e.alertTotal })
	e.reg.RegisterCounter("pkts_in", "frames handed to the shard pipelines", func() uint64 { return e.ss.Stats().PktsIn })
	e.reg.RegisterCounter("pkts_out", "frames emitted by the shard pipelines", func() uint64 { return e.ss.Stats().PktsOut })
	e.reg.RegisterCounter("parse_errors", "frames rejected by the shard parsers", func() uint64 { return e.ss.Stats().ParseErrors })
	e.reg.RegisterCounter("recirculated", "heavy-hitter promotion passes taken through the pipelines", func() uint64 { return e.ss.Stats().Recirculated })
	if lib := sr.Library(); lib.Opts.FlowTable {
		// Scrapes run on the consumer (WriteProm goes through Do), so these
		// callbacks may read merged flow-table state without racing a batch.
		flowStat := func(pick func(stat4p4.FlowStats) uint64) func() uint64 {
			return func() uint64 {
				var sum uint64
				for slot := 0; slot < lib.Opts.Slots; slot++ {
					if fs, err := e.sr.MergedFlowStats(slot); err == nil {
						sum += pick(fs)
					}
				}
				return sum
			}
		}
		e.reg.RegisterGauge("flow_occupied", "occupied flow-table buckets across slots and shards",
			flowStat(func(fs stat4p4.FlowStats) uint64 { return fs.Occupied }))
		e.reg.RegisterCounter("flow_admitted_total", "flows admitted into the flow table",
			flowStat(func(fs stat4p4.FlowStats) uint64 { return fs.Admitted }))
		e.reg.RegisterCounter("flow_evicted_total", "stale flow-table entries reclaimed by eviction",
			flowStat(func(fs stat4p4.FlowStats) uint64 { return fs.Evicted }))
		e.reg.RegisterCounter("flow_rejected_total", "flow arrivals dropped with every candidate bucket live",
			flowStat(func(fs stat4p4.FlowStats) uint64 { return fs.Rejected }))
		e.reg.RegisterCounter("flow_shed_total", "flow arrivals shed by the sampling front-end",
			flowStat(func(fs stat4p4.FlowStats) uint64 { return fs.Shed }))
	}
	go e.run()
	return e
}

// Runtime returns the underlying sharded runtime. Control-plane calls on it
// must go through Do while the engine runs.
func (e *Engine) Runtime() *stat4p4.ShardedRuntime { return e.sr }

// Frames returns how many frames the consumer has fed the datapath.
func (e *Engine) Frames() uint64 { return e.frames.Load() }

// Shed returns the backpressure ledger: batches refused by a full ring and
// frames lost with them (including frames shed against an exhausted slab).
func (e *Engine) Shed() (batches, frames uint64) {
	return e.shedBatches.Load(), e.shedFrames.Load()
}

// run is the consumer loop: control operations first, then batch
// descriptors, spin-then-park when both are dry.
func (e *Engine) run() {
	defer close(e.doneCh)
	var d ring.Desc
	for {
		select {
		case f := <-e.ctrl:
			f()
			continue
		default:
		}
		if !e.ring.TryPop(&d) {
			if !ring.SpinPops(consumerSpins, func() bool { return e.ring.TryPop(&d) }) {
				e.parker.Park(func() bool { return e.ring.Len() > 0 || len(e.ctrl) > 0 })
				continue
			}
		}
		if d.Seq == stopSeq {
			// Run any control work that raced the stop, then exit. Descriptors
			// pushed before Stop precede the poison in FIFO order, so the ring
			// is already drained of committed batches.
			for {
				select {
				case f := <-e.ctrl:
					f()
					continue
				default:
				}
				return
			}
		}
		e.consume(&d)
	}
}

// consume decodes one block into the reused batch and runs the datapath.
// The FrameIn slices alias the block; ProcessBatch completes before the
// block is released, which is the whole ownership story.
func (e *Engine) consume(d *ring.Desc) {
	e.batch = e.batch[:0]
	it := ring.NewFrameIter(e.slab.Bytes(d.Block), d.N)
	for {
		ts, port, frame, ok := it.Next()
		if !ok {
			break
		}
		e.batch = append(e.batch, p4.FrameIn{TsNs: ts, Port: port, Data: frame})
	}
	e.ss.ProcessBatch(e.batch, nil)
	e.slab.Release(d.Block)
	e.frames.Add(uint64(len(e.batch)))
	e.batches.Add(1)
}

// Stop pushes the poison descriptor, waits for the consumer to drain every
// batch committed before the call, and returns once the consumer has exited.
// Stop the producers first for a complete drain; descriptors pushed after
// Stop are never consumed. Safe to call more than once.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() {
		for !e.ring.TryPush(ring.Desc{Seq: stopSeq}) {
			runtime.Gosched()
		}
		e.parker.Unpark()
	})
	<-e.doneCh
}

// Do runs f on the consumer goroutine, between batches, and waits for it.
// This is the control-plane gateway: telemetry scrapes, snapshot reads and
// binding updates all pass through here so they never overlap a batch in
// flight. After Stop, f runs on the caller (the datapath is quiesced, which
// is just as exclusive).
func (e *Engine) Do(f func()) {
	var claimed atomic.Bool
	done := make(chan struct{})
	op := func() {
		if claimed.CompareAndSwap(false, true) {
			f()
			close(done)
		}
	}
	select {
	case e.ctrl <- op:
		e.parker.Unpark()
		select {
		case <-done:
		case <-e.doneCh:
			// The consumer exited without popping it; run it here. op is a
			// no-op if the consumer's final control drain got there first.
			op()
			<-done
		}
	case <-e.doneCh:
		f()
	}
}
