package packet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	frames := [][]byte{
		NewUDPFrame(ParseIP4(10, 0, 0, 1), ParseIP4(10, 0, 5, 6), 1, 2, 32).Serialize(),
		NewTCPFrame(1, 2, 3, 4, FlagSYN).Serialize(),
		NewEchoFrame(MAC{1}, MAC{2}, -9).Serialize(),
	}
	stamps := []uint64{0, 1_500_000_123, 3_000_000_000_000}
	for i, f := range frames {
		if err := w.WriteFrame(stamps[i], f); err != nil {
			t.Fatal(err)
		}
	}

	r := NewPcapReader(bytes.NewReader(buf.Bytes()))
	for i := range frames {
		ts, frame, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ts != stamps[i] {
			t.Fatalf("frame %d: ts %d, want %d", i, ts, stamps[i])
		}
		if !bytes.Equal(frame, frames[i]) {
			t.Fatalf("frame %d corrupted", i)
		}
		if _, err := Parse(frame); err != nil {
			t.Fatalf("frame %d unparseable after round trip: %v", i, err)
		}
	}
	if _, _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestPcapReadsMicrosecondCaptures(t *testing.T) {
	// Hand-build a classic µs-resolution capture.
	var buf bytes.Buffer
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], 0xa1b2c3d4)
	binary.LittleEndian.PutUint16(gh[4:6], 2)
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	binary.LittleEndian.PutUint32(gh[16:20], 65535)
	binary.LittleEndian.PutUint32(gh[20:24], 1)
	buf.Write(gh[:])
	frame := NewUDPFrame(1, 2, 3, 4, 8).Serialize()
	var ph [16]byte
	binary.LittleEndian.PutUint32(ph[0:4], 7)   // 7 s
	binary.LittleEndian.PutUint32(ph[4:8], 250) // 250 µs
	binary.LittleEndian.PutUint32(ph[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(ph[12:16], uint32(len(frame)))
	buf.Write(ph[:])
	buf.Write(frame)

	r := NewPcapReader(&buf)
	ts, got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ts != 7*1e9+250*1e3 {
		t.Fatalf("ts = %d", ts)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("frame corrupted")
	}
}

func TestPcapRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": bytes.Repeat([]byte{0x42}, 24),
		"short body": func() []byte {
			var buf bytes.Buffer
			w := NewPcapWriter(&buf)
			if err := w.WriteFrame(0, []byte{1, 2, 3, 4}); err != nil {
				t.Fatal(err)
			}
			b := buf.Bytes()
			return b[:len(b)-2]
		}(),
	}
	for name, data := range cases {
		r := NewPcapReader(bytes.NewReader(data))
		if _, _, err := r.Next(); !errors.Is(err, ErrBadPcap) {
			t.Errorf("%s: err = %v, want ErrBadPcap", name, err)
		}
	}
}

func TestPcapRejectsNonEthernet(t *testing.T) {
	var gh [24]byte
	binary.LittleEndian.PutUint32(gh[0:4], 0xa1b23c4d)
	binary.LittleEndian.PutUint32(gh[20:24], 101) // raw IP link type
	r := NewPcapReader(bytes.NewReader(gh[:]))
	if _, _, err := r.Next(); !errors.Is(err, ErrBadPcap) {
		t.Fatalf("err = %v", err)
	}
}

func TestPcapInsanePacketLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewPcapWriter(&buf)
	if err := w.WriteFrame(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the included length to something absurd.
	binary.LittleEndian.PutUint32(b[24+8:24+12], 1<<24)
	r := NewPcapReader(bytes.NewReader(b))
	if _, _, err := r.Next(); !errors.Is(err, ErrBadPcap) {
		t.Fatalf("err = %v", err)
	}
}
