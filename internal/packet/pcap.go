package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file reads and writes nanosecond-resolution pcap files (the classic
// libpcap format, magic 0xa1b23c4d), so traffic streams can be captured for
// reproducibility and real captures can be replayed through the switch
// simulator (cmd/stat4-replay).

const (
	pcapMagicNs       = 0xa1b23c4d // nanosecond timestamps
	pcapMagicUs       = 0xa1b2c3d4 // microsecond timestamps
	pcapVersionMajor  = 2
	pcapVersionMinor  = 4
	pcapLinkEthernet  = 1
	pcapGlobalHdrLen  = 24
	pcapPacketHdrLen  = 16
	pcapDefaultSnap   = 65535
	maxSanePacketSize = 1 << 20
)

// ErrBadPcap is returned for malformed capture files.
var ErrBadPcap = errors.New("packet: malformed pcap")

// PcapWriter writes Ethernet frames to a nanosecond pcap stream.
type PcapWriter struct {
	w      io.Writer
	header bool
}

// NewPcapWriter returns a writer targeting w. The global header is emitted
// with the first packet.
func NewPcapWriter(w io.Writer) *PcapWriter { return &PcapWriter{w: w} }

// WriteFrame appends one frame with the given timestamp (virtual ns).
func (pw *PcapWriter) WriteFrame(tsNs uint64, frame []byte) error {
	if !pw.header {
		var h [pcapGlobalHdrLen]byte
		binary.LittleEndian.PutUint32(h[0:4], pcapMagicNs)
		binary.LittleEndian.PutUint16(h[4:6], pcapVersionMajor)
		binary.LittleEndian.PutUint16(h[6:8], pcapVersionMinor)
		// thiszone and sigfigs stay zero.
		binary.LittleEndian.PutUint32(h[16:20], pcapDefaultSnap)
		binary.LittleEndian.PutUint32(h[20:24], pcapLinkEthernet)
		if _, err := pw.w.Write(h[:]); err != nil {
			return err
		}
		pw.header = true
	}
	var h [pcapPacketHdrLen]byte
	binary.LittleEndian.PutUint32(h[0:4], uint32(tsNs/1e9))
	binary.LittleEndian.PutUint32(h[4:8], uint32(tsNs%1e9))
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(frame)))
	binary.LittleEndian.PutUint32(h[12:16], uint32(len(frame)))
	if _, err := pw.w.Write(h[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(frame)
	return err
}

// PcapReader iterates a pcap stream. It accepts both nanosecond and
// microsecond captures (timestamps are normalised to nanoseconds) in either
// byte order.
type PcapReader struct {
	r       io.Reader
	order   binary.ByteOrder
	nanos   bool
	started bool
}

// NewPcapReader returns a reader over r.
func NewPcapReader(r io.Reader) *PcapReader { return &PcapReader{r: r} }

func (pr *PcapReader) readHeader() error {
	var h [pcapGlobalHdrLen]byte
	if _, err := io.ReadFull(pr.r, h[:]); err != nil {
		return fmt.Errorf("%w: global header: %v", ErrBadPcap, err)
	}
	magicLE := binary.LittleEndian.Uint32(h[0:4])
	magicBE := binary.BigEndian.Uint32(h[0:4])
	switch {
	case magicLE == pcapMagicNs:
		pr.order, pr.nanos = binary.LittleEndian, true
	case magicLE == pcapMagicUs:
		pr.order, pr.nanos = binary.LittleEndian, false
	case magicBE == pcapMagicNs:
		pr.order, pr.nanos = binary.BigEndian, true
	case magicBE == pcapMagicUs:
		pr.order, pr.nanos = binary.BigEndian, false
	default:
		return fmt.Errorf("%w: magic %#x", ErrBadPcap, magicLE)
	}
	if link := pr.order.Uint32(h[20:24]); link != pcapLinkEthernet {
		return fmt.Errorf("%w: link type %d (want Ethernet)", ErrBadPcap, link)
	}
	pr.started = true
	return nil
}

// Next returns the next frame and its timestamp in nanoseconds, or io.EOF at
// the end of the capture.
func (pr *PcapReader) Next() (tsNs uint64, frame []byte, err error) {
	if !pr.started {
		if err := pr.readHeader(); err != nil {
			return 0, nil, err
		}
	}
	var h [pcapPacketHdrLen]byte
	if _, err := io.ReadFull(pr.r, h[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: packet header: %v", ErrBadPcap, err)
	}
	sec := uint64(pr.order.Uint32(h[0:4]))
	frac := uint64(pr.order.Uint32(h[4:8]))
	if pr.nanos {
		tsNs = sec*1e9 + frac
	} else {
		tsNs = sec*1e9 + frac*1e3
	}
	incl := pr.order.Uint32(h[8:12])
	if incl > maxSanePacketSize {
		return 0, nil, fmt.Errorf("%w: packet length %d", ErrBadPcap, incl)
	}
	frame = make([]byte, incl)
	if _, err := io.ReadFull(pr.r, frame); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated packet body: %v", ErrBadPcap, err)
	}
	return tsNs, frame, nil
}
