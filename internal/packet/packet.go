// Package packet implements the small slice of the packet world the Stat4
// experiments need: Ethernet, IPv4, TCP and UDP headers with strict parsing
// and serialization, IPv4 prefixes for longest-prefix matching, and the
// experimental Stat4 echo header used by the Figure 5 validation setup.
//
// The design follows the layered-decoder shape of gopacket, reduced to the
// fixed protocol stack the switch simulator parses: a Packet is decoded
// eagerly from bytes, each present layer is a value field, and serialization
// rebuilds the wire format including the IPv4 header checksum.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// EtherType identifies the payload protocol of an Ethernet frame.
type EtherType uint16

// EtherTypes understood by the parser.
const (
	EtherTypeIPv4 EtherType = 0x0800
	// EtherTypeEcho is the experimental ethertype carrying Stat4 echo
	// payloads (a signed test integer, answered with the switch's
	// statistical measures).
	EtherTypeEcho EtherType = 0x88B5
)

// IPProto identifies the transport protocol of an IPv4 packet.
type IPProto uint8

// Transport protocol numbers.
const (
	ProtoTCP IPProto = 6
	ProtoUDP IPProto = 17
)

// TCP flag bits.
const (
	FlagFIN uint8 = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String formats the address in the usual colon-separated hex notation.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IP4 is an IPv4 address in host byte order, so prefix arithmetic is plain
// integer masking.
type IP4 uint32

// ParseIP4 builds an address from its four octets.
func ParseIP4(a, b, c, d byte) IP4 {
	return IP4(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String formats the address in dotted-quad notation.
func (ip IP4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr IP4
	Len  int // 0..32
}

// NewPrefix returns addr/len with the host bits of addr zeroed.
func NewPrefix(addr IP4, length int) Prefix {
	if length < 0 {
		length = 0
	}
	if length > 32 {
		length = 32
	}
	return Prefix{Addr: addr & IP4(prefixMask(length)), Len: length}
}

func prefixMask(length int) uint32 {
	if length <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(length))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP4) bool {
	return uint32(ip)&prefixMask(p.Len) == uint32(p.Addr)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Len) }

// Ethernet is the 14-byte Ethernet II header.
type Ethernet struct {
	Dst, Src MAC
	Type     EtherType
}

// IPv4 is the 20-byte (optionless) IPv4 header. TotalLen covers header plus
// payload, as on the wire.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Proto    IPProto
	Checksum uint16
	Src, Dst IP4
}

// TCP is the 20-byte (optionless) TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Checksum         uint16
}

// SYN reports whether the SYN flag is set without ACK — a connection
// attempt, the value of interest in the SYN-flood use case.
func (t TCP) SYN() bool { return t.Flags&FlagSYN != 0 && t.Flags&FlagACK == 0 }

// UDP is the 8-byte UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Len              uint16
	Checksum         uint16
}

// Packet is a decoded frame. Exactly the layers present on the wire are
// flagged; Payload holds the bytes after the innermost parsed header.
type Packet struct {
	Eth     Ethernet
	HasIPv4 bool
	IPv4    IPv4
	HasTCP  bool
	TCP     TCP
	HasUDP  bool
	UDP     UDP
	Payload []byte
	// WireLen is the original frame length in bytes, the per-packet volume
	// contribution for byte-counting distributions.
	WireLen int
}

// Errors returned by Parse.
var (
	ErrTruncated = errors.New("packet: truncated")
	ErrBadHeader = errors.New("packet: malformed header")
)

const (
	ethLen  = 14
	ipv4Len = 20
	tcpLen  = 20
	udpLen  = 8
)

// Parse decodes an Ethernet frame. Unknown ethertypes and transports leave
// the remaining bytes in Payload rather than failing, like a switch that
// forwards what it cannot parse.
func Parse(b []byte) (*Packet, error) {
	p := &Packet{}
	if err := ParseInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseInto decodes an Ethernet frame into a caller-owned Packet, overwriting
// its previous contents. It allocates nothing, so tight per-packet loops (the
// switch's ingress parser) can reuse one Packet as scratch. Payload aliases b.
func ParseInto(p *Packet, b []byte) error {
	if len(b) < ethLen {
		return fmt.Errorf("%w: %d bytes for Ethernet", ErrTruncated, len(b))
	}
	*p = Packet{WireLen: len(b)}
	copy(p.Eth.Dst[:], b[0:6])
	copy(p.Eth.Src[:], b[6:12])
	p.Eth.Type = EtherType(binary.BigEndian.Uint16(b[12:14]))
	rest := b[ethLen:]
	if p.Eth.Type != EtherTypeIPv4 {
		p.Payload = rest
		return nil
	}
	if len(rest) < ipv4Len {
		return fmt.Errorf("%w: %d bytes for IPv4", ErrTruncated, len(rest))
	}
	vihl := rest[0]
	if vihl>>4 != 4 {
		return fmt.Errorf("%w: IP version %d", ErrBadHeader, vihl>>4)
	}
	ihl := int(vihl&0x0f) * 4
	if ihl < ipv4Len {
		return fmt.Errorf("%w: IHL %d", ErrBadHeader, ihl)
	}
	if len(rest) < ihl {
		return fmt.Errorf("%w: IHL %d with %d bytes", ErrTruncated, ihl, len(rest))
	}
	p.HasIPv4 = true
	p.IPv4.TOS = rest[1]
	p.IPv4.TotalLen = binary.BigEndian.Uint16(rest[2:4])
	p.IPv4.ID = binary.BigEndian.Uint16(rest[4:6])
	p.IPv4.TTL = rest[8]
	p.IPv4.Proto = IPProto(rest[9])
	p.IPv4.Checksum = binary.BigEndian.Uint16(rest[10:12])
	p.IPv4.Src = IP4(binary.BigEndian.Uint32(rest[12:16]))
	p.IPv4.Dst = IP4(binary.BigEndian.Uint32(rest[16:20]))
	if int(p.IPv4.TotalLen) < ihl || int(p.IPv4.TotalLen) > len(rest) {
		return fmt.Errorf("%w: IPv4 total length %d of %d", ErrBadHeader, p.IPv4.TotalLen, len(rest))
	}
	body := rest[ihl:p.IPv4.TotalLen]
	switch p.IPv4.Proto {
	case ProtoTCP:
		if len(body) < tcpLen {
			return fmt.Errorf("%w: %d bytes for TCP", ErrTruncated, len(body))
		}
		p.HasTCP = true
		p.TCP.SrcPort = binary.BigEndian.Uint16(body[0:2])
		p.TCP.DstPort = binary.BigEndian.Uint16(body[2:4])
		p.TCP.Seq = binary.BigEndian.Uint32(body[4:8])
		p.TCP.Ack = binary.BigEndian.Uint32(body[8:12])
		off := int(body[12]>>4) * 4
		if off < tcpLen || off > len(body) {
			return fmt.Errorf("%w: TCP offset %d", ErrBadHeader, off)
		}
		p.TCP.Flags = body[13] & 0x1f
		p.TCP.Window = binary.BigEndian.Uint16(body[14:16])
		p.TCP.Checksum = binary.BigEndian.Uint16(body[16:18])
		p.Payload = body[off:]
	case ProtoUDP:
		if len(body) < udpLen {
			return fmt.Errorf("%w: %d bytes for UDP", ErrTruncated, len(body))
		}
		p.HasUDP = true
		p.UDP.SrcPort = binary.BigEndian.Uint16(body[0:2])
		p.UDP.DstPort = binary.BigEndian.Uint16(body[2:4])
		p.UDP.Len = binary.BigEndian.Uint16(body[4:6])
		p.UDP.Checksum = binary.BigEndian.Uint16(body[6:8])
		if int(p.UDP.Len) < udpLen || int(p.UDP.Len) > len(body) {
			return fmt.Errorf("%w: UDP length %d of %d", ErrBadHeader, p.UDP.Len, len(body))
		}
		p.Payload = body[udpLen:p.UDP.Len]
	default:
		p.Payload = body
	}
	return nil
}

// Serialize rebuilds the frame's wire bytes. Lengths and the IPv4 checksum
// are recomputed from the layers present; stored checksum fields for TCP and
// UDP are emitted as-is (the simulator does not verify transport checksums,
// matching bmv2's default).
func (p *Packet) Serialize() []byte { return p.AppendSerialize(nil) }

// AppendSerialize appends the frame's wire bytes to dst and returns the
// extended slice. With a dst of sufficient capacity it performs no
// allocation, which is what the switch's deparsers rely on to keep the
// per-packet path allocation-free.
func (p *Packet) AppendSerialize(dst []byte) []byte {
	transportLen := len(p.Payload)
	switch {
	case p.HasTCP:
		transportLen += tcpLen
	case p.HasUDP:
		transportLen += udpLen
	}
	networkLen := transportLen
	if p.HasIPv4 {
		networkLen += ipv4Len
	}
	start := len(dst)
	dst = grow(dst, ethLen+networkLen)
	b := dst[start:]

	copy(b[0:6], p.Eth.Dst[:])
	copy(b[6:12], p.Eth.Src[:])
	binary.BigEndian.PutUint16(b[12:14], uint16(p.Eth.Type))
	b = b[ethLen:]

	if p.HasIPv4 {
		b[0] = 4<<4 | ipv4Len/4
		b[1] = p.IPv4.TOS
		binary.BigEndian.PutUint16(b[2:4], uint16(ipv4Len+transportLen))
		binary.BigEndian.PutUint16(b[4:6], p.IPv4.ID)
		b[6], b[7] = 0, 0 // flags and fragment offset
		b[8] = p.IPv4.TTL
		b[9] = uint8(p.IPv4.Proto)
		binary.BigEndian.PutUint32(b[12:16], uint32(p.IPv4.Src))
		binary.BigEndian.PutUint32(b[16:20], uint32(p.IPv4.Dst))
		binary.BigEndian.PutUint16(b[10:12], ipv4Checksum(b[:ipv4Len]))
		b = b[ipv4Len:]
	}

	switch {
	case p.HasTCP:
		binary.BigEndian.PutUint16(b[0:2], p.TCP.SrcPort)
		binary.BigEndian.PutUint16(b[2:4], p.TCP.DstPort)
		binary.BigEndian.PutUint32(b[4:8], p.TCP.Seq)
		binary.BigEndian.PutUint32(b[8:12], p.TCP.Ack)
		b[12] = (tcpLen / 4) << 4
		b[13] = p.TCP.Flags
		binary.BigEndian.PutUint16(b[14:16], p.TCP.Window)
		binary.BigEndian.PutUint16(b[16:18], p.TCP.Checksum)
		b[18], b[19] = 0, 0 // urgent pointer
		copy(b[tcpLen:], p.Payload)
	case p.HasUDP:
		binary.BigEndian.PutUint16(b[0:2], p.UDP.SrcPort)
		binary.BigEndian.PutUint16(b[2:4], p.UDP.DstPort)
		binary.BigEndian.PutUint16(b[4:6], uint16(udpLen+len(p.Payload)))
		binary.BigEndian.PutUint16(b[6:8], p.UDP.Checksum)
		copy(b[udpLen:], p.Payload)
	default:
		copy(b, p.Payload)
	}
	return dst
}

// grow extends dst by n bytes, reusing capacity when it can. The new bytes
// are not guaranteed to be zero; callers overwrite every position.
func grow(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[: len(dst)+n : cap(dst)]
	}
	return append(dst, make([]byte, n)...)
}

// ipv4Checksum computes the Internet checksum over the header with its
// checksum field zeroed.
func ipv4Checksum(h []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(h); i += 2 {
		if i == 10 {
			continue // checksum field treated as zero
		}
		sum += uint32(binary.BigEndian.Uint16(h[i : i+2]))
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// VerifyIPv4Checksum recomputes the header checksum of a serialized frame's
// IPv4 header and compares it to the stored value.
func VerifyIPv4Checksum(frame []byte) bool {
	if len(frame) < ethLen+ipv4Len {
		return false
	}
	h := frame[ethLen : ethLen+ipv4Len]
	return ipv4Checksum(h) == binary.BigEndian.Uint16(h[10:12])
}

// ParsePrefix parses CIDR notation ("10.0.0.0/8"). A bare address parses as
// a /32.
func ParsePrefix(s string) (Prefix, error) {
	var a, b, c, d byte
	length := 32
	if i := strings.IndexByte(s, '/'); i >= 0 {
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 0 || n > 32 {
			return Prefix{}, fmt.Errorf("packet: bad prefix length in %q", s)
		}
		length = n
		s = s[:i]
	}
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return Prefix{}, fmt.Errorf("packet: bad address in %q: %v", s, err)
	}
	return NewPrefix(ParseIP4(a, b, c, d), length), nil
}
