package packet

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestIP4RoundTrip(t *testing.T) {
	ip := ParseIP4(10, 0, 5, 1)
	if ip.String() != "10.0.5.1" {
		t.Fatalf("String = %q", ip.String())
	}
	if uint32(ip) != 0x0a000501 {
		t.Fatalf("value = %#x", uint32(ip))
	}
}

func TestPrefix(t *testing.T) {
	p := NewPrefix(ParseIP4(10, 0, 5, 77), 24)
	if p.String() != "10.0.5.0/24" {
		t.Fatalf("String = %q (host bits not cleared?)", p.String())
	}
	if !p.Contains(ParseIP4(10, 0, 5, 200)) {
		t.Fatal("address in prefix not contained")
	}
	if p.Contains(ParseIP4(10, 0, 6, 1)) {
		t.Fatal("address outside prefix contained")
	}
	all := NewPrefix(0, 0)
	if !all.Contains(ParseIP4(192, 168, 1, 1)) {
		t.Fatal("/0 does not contain everything")
	}
	host := NewPrefix(ParseIP4(1, 2, 3, 4), 32)
	if !host.Contains(ParseIP4(1, 2, 3, 4)) || host.Contains(ParseIP4(1, 2, 3, 5)) {
		t.Fatal("/32 containment wrong")
	}
	if NewPrefix(1, 40).Len != 32 || NewPrefix(1, -3).Len != 0 {
		t.Fatal("prefix length not clamped")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	p := NewUDPFrame(ParseIP4(10, 1, 1, 1), ParseIP4(10, 0, 5, 6), 1234, 80, 100)
	wire := p.Serialize()
	if !VerifyIPv4Checksum(wire) {
		t.Fatal("serialized frame has bad IPv4 checksum")
	}
	q, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasIPv4 || !q.HasUDP || q.HasTCP {
		t.Fatalf("layers = ipv4:%v udp:%v tcp:%v", q.HasIPv4, q.HasUDP, q.HasTCP)
	}
	if q.IPv4.Src != p.IPv4.Src || q.IPv4.Dst != p.IPv4.Dst {
		t.Fatal("addresses corrupted")
	}
	if q.UDP.SrcPort != 1234 || q.UDP.DstPort != 80 {
		t.Fatal("ports corrupted")
	}
	if len(q.Payload) != 100 {
		t.Fatalf("payload %d bytes, want 100", len(q.Payload))
	}
	if q.WireLen != len(wire) {
		t.Fatalf("WireLen = %d, want %d", q.WireLen, len(wire))
	}
}

func TestTCPRoundTrip(t *testing.T) {
	p := NewTCPFrame(ParseIP4(172, 16, 0, 9), ParseIP4(10, 0, 1, 6), 40000, 443, FlagSYN)
	p.TCP.Seq = 0xdeadbeef
	wire := p.Serialize()
	q, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !q.HasTCP || q.HasUDP {
		t.Fatal("layer flags wrong")
	}
	if !q.TCP.SYN() {
		t.Fatal("SYN not preserved")
	}
	if q.TCP.Seq != 0xdeadbeef || q.TCP.DstPort != 443 {
		t.Fatal("TCP fields corrupted")
	}
}

func TestSYNDetection(t *testing.T) {
	synack := TCP{Flags: FlagSYN | FlagACK}
	if synack.SYN() {
		t.Fatal("SYN+ACK misclassified as connection attempt")
	}
	if !(TCP{Flags: FlagSYN}).SYN() {
		t.Fatal("pure SYN not detected")
	}
	if (TCP{Flags: FlagACK}).SYN() {
		t.Fatal("ACK misclassified")
	}
}

func TestEchoRoundTrip(t *testing.T) {
	f := NewEchoFrame(MAC{1}, MAC{2}, -200)
	wire := f.Serialize()
	q, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.Eth.Type != EtherTypeEcho {
		t.Fatalf("ethertype %#x", uint16(q.Eth.Type))
	}
	req, err := UnmarshalEchoRequest(q.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if req.Value != -200 {
		t.Fatalf("value = %d, want -200", req.Value)
	}
}

func TestEchoReplyRoundTrip(t *testing.T) {
	in := EchoReply{N: 1, Xsum: 2, Xsumsq: 4, Var: 0, SD: 0, Median: 7}
	out, err := UnmarshalEchoReply(MarshalEchoReply(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if _, err := UnmarshalEchoReply(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatal("short reply accepted")
	}
	if _, err := UnmarshalEchoRequest(nil); !errors.Is(err, ErrTruncated) {
		t.Fatal("short request accepted")
	}
}

func TestParseTruncated(t *testing.T) {
	wire := NewUDPFrame(1, 2, 3, 4, 50).Serialize()
	for _, cut := range []int{0, 5, 13, 15, 30, len(wire) - 120} {
		if cut < 0 || cut >= len(wire) {
			continue
		}
		if _, err := Parse(wire[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestParseBadVersion(t *testing.T) {
	wire := NewUDPFrame(1, 2, 3, 4, 8).Serialize()
	wire[14] = 6 << 4 // claim IPv6 in an IPv4 slot
	if _, err := Parse(wire); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestParseBadTotalLen(t *testing.T) {
	wire := NewUDPFrame(1, 2, 3, 4, 8).Serialize()
	wire[16] = 0xff // total length way beyond the buffer
	wire[17] = 0xff
	if _, err := Parse(wire); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("err = %v, want ErrBadHeader", err)
	}
}

func TestParseUnknownProtocolsPassThrough(t *testing.T) {
	p := &Packet{
		Eth:     Ethernet{Type: EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    IPv4{TTL: 1, Proto: 99, Src: 1, Dst: 2},
		Payload: []byte{1, 2, 3},
	}
	q, err := Parse(p.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	if q.HasTCP || q.HasUDP || !bytes.Equal(q.Payload, []byte{1, 2, 3}) {
		t.Fatal("unknown transport not passed through")
	}
	// Unknown ethertype likewise.
	raw := &Packet{Eth: Ethernet{Type: 0x1234}, Payload: []byte{9}}
	q, err = Parse(raw.Serialize())
	if err != nil || q.HasIPv4 || len(q.Payload) != 1 {
		t.Fatalf("unknown ethertype: %v %+v", err, q)
	}
}

// TestSerializeParseProperty round-trips randomized UDP frames.
func TestSerializeParseProperty(t *testing.T) {
	f := func(src, dst uint32, sport, dport uint16, n uint8) bool {
		p := NewUDPFrame(IP4(src), IP4(dst), sport, dport, int(n))
		q, err := Parse(p.Serialize())
		if err != nil {
			return false
		}
		return q.IPv4.Src == IP4(src) && q.IPv4.Dst == IP4(dst) &&
			q.UDP.SrcPort == sport && q.UDP.DstPort == dport && len(q.Payload) == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if m.String() != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC.String = %q", m.String())
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil || p.String() != "10.0.0.0/8" {
		t.Fatalf("ParsePrefix: %v %v", p, err)
	}
	p, err = ParsePrefix("192.168.1.77")
	if err != nil || p.String() != "192.168.1.77/32" {
		t.Fatalf("bare address: %v %v", p, err)
	}
	p, err = ParsePrefix("10.0.5.99/24")
	if err != nil || p.String() != "10.0.5.0/24" {
		t.Fatalf("host bits: %v %v", p, err)
	}
	for _, bad := range []string{"", "10.0.0.0/33", "10.0.0/8", "x.y.z.w/8", "10.0.0.0/-1"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) accepted", bad)
		}
	}
}
