package packet

import (
	"bytes"
	"testing"
)

// FuzzParse feeds arbitrary bytes to the parser: it must never panic, and
// whatever parses successfully must re-serialize to something that parses to
// the same structure (the headers; payload boundaries are normative).
func FuzzParse(f *testing.F) {
	f.Add(NewUDPFrame(ParseIP4(10, 0, 0, 1), ParseIP4(10, 0, 5, 6), 1, 2, 32).Serialize())
	f.Add(NewTCPFrame(1, 2, 3, 4, FlagSYN).Serialize())
	f.Add(NewEchoFrame(MAC{1}, MAC{2}, -7).Serialize())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		q, err := Parse(p.Serialize())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if q.Eth.Type != p.Eth.Type || q.HasIPv4 != p.HasIPv4 ||
			q.HasTCP != p.HasTCP || q.HasUDP != p.HasUDP {
			t.Fatalf("round trip changed structure: %+v vs %+v", p, q)
		}
		if p.HasIPv4 && (q.IPv4.Src != p.IPv4.Src || q.IPv4.Dst != p.IPv4.Dst || q.IPv4.Proto != p.IPv4.Proto) {
			t.Fatal("round trip changed IPv4 addressing")
		}
	})
}
