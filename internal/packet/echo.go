package packet

import (
	"encoding/binary"
	"fmt"
)

// EchoRequest is the payload of the Figure 5 validation frames: a single
// integer between −255 and 255 whose occurrences the switch tracks as a
// frequency distribution.
type EchoRequest struct {
	Value int16
}

// EchoReply carries the switch's statistical measures back to the host,
// which compares them against its own software computation.
type EchoReply struct {
	N      uint64 // number of distinct values observed
	Xsum   uint64 // total observations
	Xsumsq uint64 // sum of squared frequencies
	Var    uint64 // N·Xsumsq − Xsum²
	SD     uint64 // approximate sqrt of Var
	Median uint64 // current median marker (offset into the value domain)
}

const (
	echoReqLen   = 2
	echoReplyLen = 48
)

// MarshalEchoRequest encodes the request payload.
func MarshalEchoRequest(r EchoRequest) []byte {
	b := make([]byte, echoReqLen)
	binary.BigEndian.PutUint16(b, uint16(r.Value))
	return b
}

// UnmarshalEchoRequest decodes a request payload.
func UnmarshalEchoRequest(b []byte) (EchoRequest, error) {
	if len(b) < echoReqLen {
		return EchoRequest{}, fmt.Errorf("%w: %d bytes for echo request", ErrTruncated, len(b))
	}
	return EchoRequest{Value: int16(binary.BigEndian.Uint16(b))}, nil
}

// MarshalEchoReply encodes the reply payload.
func MarshalEchoReply(r EchoReply) []byte {
	return AppendEchoReply(make([]byte, 0, echoReplyLen), r)
}

// AppendEchoReply appends the encoded reply payload to dst, allocating only
// when dst lacks capacity — the echo deparser's per-packet path.
func AppendEchoReply(dst []byte, r EchoReply) []byte {
	dst = binary.BigEndian.AppendUint64(dst, r.N)
	dst = binary.BigEndian.AppendUint64(dst, r.Xsum)
	dst = binary.BigEndian.AppendUint64(dst, r.Xsumsq)
	dst = binary.BigEndian.AppendUint64(dst, r.Var)
	dst = binary.BigEndian.AppendUint64(dst, r.SD)
	return binary.BigEndian.AppendUint64(dst, r.Median)
}

// UnmarshalEchoReply decodes a reply payload.
func UnmarshalEchoReply(b []byte) (EchoReply, error) {
	if len(b) < echoReplyLen {
		return EchoReply{}, fmt.Errorf("%w: %d bytes for echo reply", ErrTruncated, len(b))
	}
	return EchoReply{
		N:      binary.BigEndian.Uint64(b[0:8]),
		Xsum:   binary.BigEndian.Uint64(b[8:16]),
		Xsumsq: binary.BigEndian.Uint64(b[16:24]),
		Var:    binary.BigEndian.Uint64(b[24:32]),
		SD:     binary.BigEndian.Uint64(b[32:40]),
		Median: binary.BigEndian.Uint64(b[40:48]),
	}, nil
}

// NewEchoFrame builds an Ethernet frame carrying an echo request.
func NewEchoFrame(src, dst MAC, value int16) *Packet {
	return &Packet{
		Eth:     Ethernet{Dst: dst, Src: src, Type: EtherTypeEcho},
		Payload: MarshalEchoRequest(EchoRequest{Value: value}),
		WireLen: ethLen + echoReqLen,
	}
}

// NewUDPFrame builds an Ethernet+IPv4+UDP frame with a zero-filled payload of
// the given length, the workhorse of the traffic generators.
func NewUDPFrame(src, dst IP4, sport, dport uint16, payloadLen int) *Packet {
	return &Packet{
		Eth:     Ethernet{Type: EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    IPv4{TTL: 64, Proto: ProtoUDP, Src: src, Dst: dst},
		HasUDP:  true,
		UDP:     UDP{SrcPort: sport, DstPort: dport},
		Payload: make([]byte, payloadLen),
		WireLen: ethLen + ipv4Len + udpLen + payloadLen,
	}
}

// NewTCPFrame builds an Ethernet+IPv4+TCP frame with the given flags.
func NewTCPFrame(src, dst IP4, sport, dport uint16, flags uint8) *Packet {
	return &Packet{
		Eth:     Ethernet{Type: EtherTypeIPv4},
		HasIPv4: true,
		IPv4:    IPv4{TTL: 64, Proto: ProtoTCP, Src: src, Dst: dst},
		HasTCP:  true,
		TCP:     TCP{SrcPort: sport, DstPort: dport, Flags: flags, Window: 65535},
		WireLen: ethLen + ipv4Len + tcpLen,
	}
}
