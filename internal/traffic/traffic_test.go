package traffic

import (
	"math"
	"math/rand"
	"testing"

	"stat4/internal/packet"
)

func TestCaseStudyDests(t *testing.T) {
	dests := CaseStudyDests()
	if len(dests) != 36 {
		t.Fatalf("got %d destinations, want 36", len(dests))
	}
	subnets := map[byte]int{}
	slash8 := packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8)
	for _, d := range dests {
		if !slash8.Contains(d) {
			t.Fatalf("%v outside 10/8", d)
		}
		subnets[byte(d>>8)]++
	}
	if len(subnets) != 6 {
		t.Fatalf("got %d subnets, want 6", len(subnets))
	}
	for s, n := range subnets {
		if n != 6 {
			t.Fatalf("subnet %d has %d hosts, want 6", s, n)
		}
	}
}

func TestLoadBalancedRateAndSpread(t *testing.T) {
	g := &LoadBalanced{
		Dests: CaseStudyDests(),
		Rate:  100000,
		End:   1e9, // one second
		Seed:  1,
	}
	counts := map[packet.IP4]int{}
	n := 0
	var last uint64
	for {
		p, ok := g.Next()
		if !ok {
			break
		}
		if p.TsNs < last {
			t.Fatal("timestamps not monotone")
		}
		last = p.TsNs
		counts[p.Frame.IPv4.Dst]++
		n++
	}
	// Poisson at 100k pps over 1s → about 100k packets.
	if n < 95000 || n > 105000 {
		t.Fatalf("%d packets for 100k pps over 1s", n)
	}
	// Uniform spread: each of 36 destinations near n/36.
	want := float64(n) / 36
	for d, c := range counts {
		if math.Abs(float64(c)-want) > want/2 {
			t.Fatalf("destination %v got %d of ~%.0f", d, c, want)
		}
	}
}

func TestLoadBalancedDeterminism(t *testing.T) {
	mk := func() []Pkt {
		return Collect(&LoadBalanced{Dests: CaseStudyDests(), Rate: 1e6, End: 1e7, Seed: 7}, 0)
	}
	a, b := mk(), mk()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].TsNs != b[i].TsNs || a[i].Frame.IPv4.Dst != b[i].Frame.IPv4.Dst {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestSpikeWindowed(t *testing.T) {
	g := &Spike{Dest: packet.ParseIP4(10, 0, 3, 2), Rate: 1e6, Start: 5e6, End: 6e6, Seed: 2}
	pkts := Collect(g, 0)
	if len(pkts) == 0 {
		t.Fatal("empty spike")
	}
	for _, p := range pkts {
		if p.TsNs < 5e6 || p.TsNs >= 6e6 {
			t.Fatalf("spike packet at %d outside [5e6,6e6)", p.TsNs)
		}
		if p.Frame.IPv4.Dst != packet.ParseIP4(10, 0, 3, 2) {
			t.Fatal("spike packet to wrong destination")
		}
	}
}

func TestSynFloodAllSyns(t *testing.T) {
	g := &SynFlood{Dest: packet.ParseIP4(10, 0, 1, 1), Rate: 1e6, End: 1e6, Seed: 3}
	pkts := Collect(g, 0)
	if len(pkts) < 500 {
		t.Fatalf("only %d flood packets", len(pkts))
	}
	srcs := map[packet.IP4]bool{}
	for _, p := range pkts {
		if !p.Frame.HasTCP || !p.Frame.TCP.SYN() {
			t.Fatal("flood packet is not a pure SYN")
		}
		srcs[p.Frame.IPv4.Src] = true
	}
	if len(srcs) < len(pkts)/2 {
		t.Fatalf("sources not spoofed: %d distinct of %d", len(srcs), len(pkts))
	}
}

func TestSourcedDrawsFromValues(t *testing.T) {
	g := &Sourced{
		Dest:   packet.ParseIP4(10, 0, 0, 1),
		Base:   packet.ParseIP4(198, 18, 0, 0),
		Values: ZipfValues(1.5, 1024, 9),
		Rate:   1e6,
		End:    1e7,
		Seed:   5,
	}
	pkts := Collect(g, 0)
	if len(pkts) < 5000 {
		t.Fatalf("only %d packets", len(pkts))
	}
	counts := map[packet.IP4]uint64{}
	for _, p := range pkts {
		if p.Frame.IPv4.Dst != packet.ParseIP4(10, 0, 0, 1) {
			t.Fatal("destination drifted")
		}
		counts[p.Frame.IPv4.Src]++
	}
	// A zipfian mix concentrates on value 0: the base source must dominate
	// while the tail stays populated.
	base := counts[packet.ParseIP4(198, 18, 0, 0)]
	if base < uint64(len(pkts))/10 {
		t.Fatalf("base source got %d of %d packets — no elephant", base, len(pkts))
	}
	if len(counts) < 50 {
		t.Fatalf("only %d distinct sources — no mice tail", len(counts))
	}
}

func TestWebMixSynFraction(t *testing.T) {
	g := &WebMix{Dests: CaseStudyDests(), Rate: 1e6, End: 1e8, Seed: 4}
	pkts := Collect(g, 0)
	syns := 0
	for _, p := range pkts {
		if p.Frame.TCP.SYN() {
			syns++
		}
	}
	frac := float64(syns) / float64(len(pkts))
	// Flows carry 3–10 data packets per SYN → SYN fraction ≈ 1/8.5.
	if frac < 0.05 || frac > 0.25 {
		t.Fatalf("SYN fraction %.3f implausible", frac)
	}
}

func TestMergeOrdersByTime(t *testing.T) {
	a := &LoadBalanced{Dests: CaseStudyDests(), Rate: 1e5, End: 1e8, Seed: 5}
	b := &Spike{Dest: packet.ParseIP4(10, 0, 0, 1), Rate: 1e5, Start: 3e7, End: 7e7, Seed: 6}
	var last uint64
	n := 0
	spikePkts := 0
	m := Merge(a, b)
	for {
		p, ok := m.Next()
		if !ok {
			break
		}
		if p.TsNs < last {
			t.Fatalf("merge out of order at %d", n)
		}
		last = p.TsNs
		if p.Frame.IPv4.Src == packet.ParseIP4(198, 51, 100, 7) {
			spikePkts++
		}
		n++
	}
	if spikePkts == 0 || spikePkts == n {
		t.Fatalf("merge lost a stream: %d of %d", spikePkts, n)
	}
}

func TestCollectLimit(t *testing.T) {
	g := &LoadBalanced{Dests: CaseStudyDests(), Rate: 1e6, End: 1e9, Seed: 8}
	if got := len(Collect(g, 10)); got != 10 {
		t.Fatalf("Collect(10) = %d", got)
	}
}

func TestValueStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(11))

	u := UniformValues(100)
	for i := 0; i < 1000; i++ {
		if v := u(rng); v >= 100 {
			t.Fatalf("uniform value %d out of range", v)
		}
	}

	nv := NormalValues(50, 10, 99)
	var sum float64
	for i := 0; i < 10000; i++ {
		v := nv(rng)
		if v > 99 {
			t.Fatalf("normal value %d above clamp", v)
		}
		sum += float64(v)
	}
	if mean := sum / 10000; mean < 45 || mean > 55 {
		t.Fatalf("normal mean %.1f, want ≈50", mean)
	}

	z := ZipfValues(1.5, 100, 13)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z(rng)]++
	}
	if counts[0] < counts[50] {
		t.Fatal("zipf not head-heavy")
	}

	bi := BimodalValues(20, 80, 5, 0.5, 99)
	lo, hi := 0, 0
	for i := 0; i < 10000; i++ {
		v := bi(rng)
		switch {
		case v < 50:
			lo++
		default:
			hi++
		}
	}
	if lo < 3000 || hi < 3000 {
		t.Fatalf("bimodal modes unbalanced: %d/%d", lo, hi)
	}
}
