package traffic

import "math/rand"

// ValueStream produces the integer values of interest behind the error
// tables: Table 3 feeds the median tracker with uniform values from [0, N);
// the broader experiments also use normal and zipfian streams (the paper's
// Section 5 names zipfian per-prefix distributions as the hard case).
type ValueStream func(rng *rand.Rand) uint64

// UniformValues draws uniformly from [0, n).
func UniformValues(n uint64) ValueStream {
	return func(rng *rand.Rand) uint64 {
		return uint64(rng.Int63n(int64(n)))
	}
}

// NormalValues draws from a normal distribution with the given mean and
// standard deviation, clamped to [0, max].
func NormalValues(mean, sd float64, max uint64) ValueStream {
	return func(rng *rand.Rand) uint64 {
		v := rng.NormFloat64()*sd + mean
		if v < 0 {
			return 0
		}
		if v > float64(max) {
			return max
		}
		return uint64(v)
	}
}

// ZipfValues draws from a zipfian distribution over [0, n) with exponent s.
func ZipfValues(s float64, n uint64, seed int64) ValueStream {
	z := rand.NewZipf(rand.New(rand.NewSource(seed)), s, 1, n-1)
	return func(*rand.Rand) uint64 {
		return z.Uint64()
	}
}

// BimodalValues mixes two normal modes — the Section 5 example of a
// distribution the controller would split into separately tracked modes.
func BimodalValues(meanA, meanB, sd float64, weightA float64, max uint64) ValueStream {
	a := NormalValues(meanA, sd, max)
	b := NormalValues(meanB, sd, max)
	return func(rng *rand.Rand) uint64 {
		if rng.Float64() < weightA {
			return a(rng)
		}
		return b(rng)
	}
}
