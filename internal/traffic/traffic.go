// Package traffic generates the synthetic workloads of the paper's
// evaluation: load-balanced traffic across a set of destinations with an
// injected volumetric spike (the Section 4 case study), SYN floods, echo
// validation streams, and the value distributions behind Tables 2 and 3.
// Every generator is seeded and deterministic, so experiments are exactly
// reproducible.
//
// On top of the raw generators, Registry returns the anomaly scenario
// matrix (scenario.go): named attack traces — pulse-wave DDoS, slow port
// scan, flash crowd, zipf popularity shift, slowloris, a multi-vector
// blend — each carrying machine-readable ground truth (attack windows,
// culprit keys, the detector tracks it should be caught by) and a benign
// control twin for false-alarm scoring. internal/detect replays these
// scenarios to grade detector configurations end-to-end, and golden trace
// digests pin every generator's exact byte stream.
package traffic

import (
	"math/rand"

	"stat4/internal/packet"
)

// Pkt is one timed packet event on the simulator's virtual clock.
type Pkt struct {
	TsNs  uint64
	Frame *packet.Packet
}

// Stream yields packet events in non-decreasing timestamp order.
type Stream interface {
	// Next returns the next event, or ok == false when the stream ends.
	Next() (p Pkt, ok bool)
}

// CaseStudyDests returns the default case-study destination set: 36 hosts,
// six per /24, in six /24 subnets (10.0.0.0/24 … 10.0.5.0/24) of 10.0.0.0/8.
func CaseStudyDests() []packet.IP4 {
	var dests []packet.IP4
	for subnet := byte(0); subnet < 6; subnet++ {
		for host := byte(1); host <= 6; host++ {
			dests = append(dests, packet.ParseIP4(10, 0, subnet, host))
		}
	}
	return dests
}

// LoadBalanced emits UDP packets whose destinations are drawn uniformly from
// Dests at Rate packets per second, from Start until End (virtual ns).
// Jitter selects the arrival process: 0 gives Poisson arrivals; a value in
// (0, 1] gives a paced source whose inter-arrival gaps vary uniformly by
// ±Jitter around the mean, like the constant-rate generators used in
// testbed evaluations.
type LoadBalanced struct {
	Dests  []packet.IP4
	Rate   float64 // packets per second
	Start  uint64
	End    uint64
	Seed   int64
	Jitter float64

	rng    *rand.Rand
	now    float64
	frames []*packet.Packet
}

// Next implements Stream.
func (g *LoadBalanced) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
		g.frames = make([]*packet.Packet, len(g.Dests))
		for i, d := range g.Dests {
			g.frames[i] = packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), d, 40000, 80, 64)
		}
	}
	g.now += gap(g.rng, g.Rate, g.Jitter)
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	return Pkt{TsNs: ts, Frame: g.frames[g.rng.Intn(len(g.frames))]}, true
}

// gap draws one inter-arrival gap in nanoseconds.
func gap(rng *rand.Rand, rate, jitter float64) float64 {
	mean := 1e9 / rate
	if jitter <= 0 {
		return rng.ExpFloat64() * mean
	}
	return mean * (1 + jitter*(2*rng.Float64()-1))
}

// Spike emits extra UDP traffic toward a single destination — the volumetric
// anomaly of the case study. Jitter behaves as in LoadBalanced.
type Spike struct {
	Dest   packet.IP4
	Rate   float64
	Start  uint64
	End    uint64
	Seed   int64
	Jitter float64

	rng   *rand.Rand
	now   float64
	frame *packet.Packet
}

// Next implements Stream.
func (g *Spike) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
		g.frame = packet.NewUDPFrame(packet.ParseIP4(198, 51, 100, 7), g.Dest, 40001, 80, 64)
	}
	g.now += gap(g.rng, g.Rate, g.Jitter)
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	return Pkt{TsNs: ts, Frame: g.frame}, true
}

// Sourced emits UDP packets toward one destination whose SOURCE addresses
// are Base + v with v drawn from Values per packet — ZipfValues gives the
// elephant-and-mice mix of the heavy-hitter scenarios, UniformValues a flat
// source spread. Jitter behaves as in LoadBalanced.
type Sourced struct {
	Dest   packet.IP4
	Base   packet.IP4 // source address of value 0
	Values ValueStream
	Rate   float64
	Start  uint64
	End    uint64
	Seed   int64
	Jitter float64

	rng *rand.Rand
	now float64
}

// Next implements Stream.
func (g *Sourced) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
	}
	g.now += gap(g.rng, g.Rate, g.Jitter)
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	src := packet.IP4(uint32(g.Base) + uint32(g.Values(g.rng)))
	return Pkt{TsNs: ts, Frame: packet.NewUDPFrame(src, g.Dest, 40002, 80, 64)}, true
}

// SynFlood emits TCP SYN packets toward one destination from rotating
// spoofed sources — the SYN-flood use case of Table 1.
type SynFlood struct {
	Dest  packet.IP4
	Rate  float64
	Start uint64
	End   uint64
	Seed  int64

	rng *rand.Rand
	now float64
}

// Next implements Stream.
func (g *SynFlood) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
	}
	g.now += g.rng.ExpFloat64() * 1e9 / g.Rate
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	src := packet.IP4(g.rng.Uint32())
	f := packet.NewTCPFrame(src, g.Dest, uint16(1024+g.rng.Intn(60000)), 80, packet.FlagSYN)
	return Pkt{TsNs: ts, Frame: f}, true
}

// WebMix emits background TCP traffic: short flows of one SYN followed by a
// few data packets, load-balanced across destinations.
type WebMix struct {
	Dests []packet.IP4
	Rate  float64 // total packets per second
	Start uint64
	End   uint64
	Seed  int64

	rng     *rand.Rand
	now     float64
	pending int // data packets left in the current flow
	dst     packet.IP4
	sport   uint16
}

// Next implements Stream.
func (g *WebMix) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
	}
	g.now += g.rng.ExpFloat64() * 1e9 / g.Rate
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	if g.pending == 0 {
		// New flow: a SYN.
		g.dst = g.Dests[g.rng.Intn(len(g.Dests))]
		g.sport = uint16(1024 + g.rng.Intn(60000))
		g.pending = 3 + g.rng.Intn(8)
		f := packet.NewTCPFrame(packet.ParseIP4(192, 0, 2, 2), g.dst, g.sport, 80, packet.FlagSYN)
		return Pkt{TsNs: ts, Frame: f}, true
	}
	g.pending--
	f := packet.NewTCPFrame(packet.ParseIP4(192, 0, 2, 2), g.dst, g.sport, 80, packet.FlagACK|packet.FlagPSH)
	f.Payload = make([]byte, 512)
	f.WireLen += 512
	return Pkt{TsNs: ts, Frame: f}, true
}

// Merge interleaves streams by timestamp.
func Merge(streams ...Stream) Stream {
	m := &merger{streams: streams, heads: make([]Pkt, len(streams)), live: make([]bool, len(streams))}
	for i, s := range streams {
		m.heads[i], m.live[i] = s.Next()
	}
	return m
}

type merger struct {
	streams []Stream
	heads   []Pkt
	live    []bool
}

func (m *merger) Next() (Pkt, bool) {
	best := -1
	for i, ok := range m.live {
		if !ok {
			continue
		}
		if best < 0 || m.heads[i].TsNs < m.heads[best].TsNs {
			best = i
		}
	}
	if best < 0 {
		return Pkt{}, false
	}
	out := m.heads[best]
	m.heads[best], m.live[best] = m.streams[best].Next()
	return out, true
}

// Collect drains a stream into a slice, stopping after max events (max ≤ 0
// means no limit). Intended for tests and small experiments.
func Collect(s Stream, max int) []Pkt {
	var out []Pkt
	for {
		p, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, p)
		if max > 0 && len(out) >= max {
			return out
		}
	}
}
