package traffic

import (
	"math/rand"

	"stat4/internal/packet"
)

// This file is the scenario registry behind the detection-quality matrix
// (internal/detect): seeded, parameterized workloads that carry their own
// machine-readable ground truth, so a scorer can compute time-to-detect and
// precision/recall against what *actually* happened rather than against a
// human reading a plot. Every scenario also names a benign control twin —
// the same background load with the anomaly removed — which is what
// false-alarm rates are measured on.

// TimeWindow is one half-open [StartNs, EndNs) interval of virtual time.
type TimeWindow struct {
	StartNs uint64 `json:"start_ns"`
	EndNs   uint64 `json:"end_ns"`
}

// Contains reports whether ts falls inside the window.
func (w TimeWindow) Contains(ts uint64) bool { return ts >= w.StartNs && ts < w.EndNs }

// Truth is a scenario's machine-readable ground truth on the virtual clock.
type Truth struct {
	// Attacks are the intervals during which the anomaly is active.
	Attacks []TimeWindow `json:"attacks"`
	// CulpritSrcs are the attacking source addresses (as uint64 /32 keys) —
	// what a heavy-hitter drill-down should name. Empty when the anomaly has
	// no single responsible source (e.g. a flash crowd).
	CulpritSrcs []uint64 `json:"culprit_srcs,omitempty"`
	// VictimGroups are the destination-group indices (low byte of the
	// destination in the scenario's group space) absorbing the anomaly.
	VictimGroups []uint64 `json:"victim_groups,omitempty"`
}

// Scenario is one registered workload: an attack trace, its ground truth,
// and a benign control twin. Build and Benign return fresh streams on every
// call, so a scenario can be replayed any number of times (inject once,
// tally ground truth again) with identical bytes for the same seed.
type Scenario struct {
	Name string
	// EndNs is the trace length; truth windows lie inside [0, EndNs).
	EndNs uint64
	// Truth is the ground truth of the attack trace.
	Truth Truth
	// DetectableBy tags the detector tracks this scenario is designed to
	// trip (the internal/detect track names: "entropy", "hh", "window").
	// Quality gates compare configurations on the scenarios their track is
	// expected to catch; the scorer still runs and reports every pairing.
	DetectableBy []string
	// Build returns the attack stream for a seed.
	Build func(seed int64) Stream
	// Benign returns the benign control twin: the same background traffic
	// with the anomaly removed.
	Benign func(seed int64) Stream
}

// PortScan emits TCP SYNs from one source sweeping destination hosts and
// ports — the classic slow-scan signature: low rate, high fan-out, a single
// talkative source.
type PortScan struct {
	Src     packet.IP4
	DstBase packet.IP4 // scanned hosts are DstBase + [0, Hosts)
	Hosts   int
	Rate    float64
	Start   uint64
	End     uint64
	Seed    int64
	Jitter  float64

	rng   *rand.Rand
	now   float64
	dport uint16
}

// Next implements Stream.
func (g *PortScan) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
		g.dport = 1
	}
	g.now += gap(g.rng, g.Rate, g.Jitter)
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	dst := packet.IP4(uint32(g.DstBase) + uint32(g.rng.Intn(g.Hosts)))
	g.dport++
	if g.dport > 1024 {
		g.dport = 1
	}
	f := packet.NewTCPFrame(g.Src, dst, uint16(40000+g.rng.Intn(1024)), g.dport, packet.FlagSYN)
	return Pkt{TsNs: ts, Frame: f}, true
}

// ZipfShift emits UDP packets toward one destination whose source is
// Base + key with key drawn zipfian over [0, Sources) — and at ShiftAt the
// popularity ranking is rotated by Offset, so a new set of elephants takes
// over mid-trace. Offset 0 yields the benign twin: the same zipfian mix with
// no change point.
type ZipfShift struct {
	Dest    packet.IP4
	Base    packet.IP4
	Sources uint64
	S       float64 // zipf exponent
	Rate    float64
	ShiftAt uint64 // virtual ns of the popularity shift
	Offset  uint64 // rank rotation applied from ShiftAt on (0 = no shift)
	Start   uint64
	End     uint64
	Seed    int64
	Jitter  float64

	rng  *rand.Rand
	zipf *rand.Zipf
	now  float64
}

// Next implements Stream.
func (g *ZipfShift) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.zipf = rand.NewZipf(rand.New(rand.NewSource(g.Seed+1)), g.S, 1, g.Sources-1)
		g.now = float64(g.Start)
	}
	g.now += gap(g.rng, g.Rate, g.Jitter)
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	v := g.zipf.Uint64()
	if g.Offset != 0 && ts >= g.ShiftAt {
		v = (v + g.Offset) % g.Sources
	}
	src := packet.IP4(uint32(g.Base) + uint32(v))
	return Pkt{TsNs: ts, Frame: packet.NewUDPFrame(src, g.Dest, 40003, 80, 64)}, true
}

// Slowloris emits a steady trickle of fresh connection attempts (SYNs, each
// from a new source port) from a small set of sources toward one victim —
// high connection churn at low packet rate, invisible to volume detectors
// but a talkative-source signature for heavy-hitter tracking.
type Slowloris struct {
	Dest  packet.IP4
	Srcs  []packet.IP4
	Rate  float64 // aggregate new-connection rate
	Start uint64
	End   uint64
	Seed  int64

	rng   *rand.Rand
	now   float64
	sport uint16
}

// Next implements Stream.
func (g *Slowloris) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
		g.sport = 1024
	}
	g.now += g.rng.ExpFloat64() * 1e9 / g.Rate
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	src := g.Srcs[g.rng.Intn(len(g.Srcs))]
	g.sport++
	if g.sport < 1024 {
		g.sport = 1024
	}
	f := packet.NewTCPFrame(src, g.Dest, g.sport, 80, packet.FlagSYN)
	return Pkt{TsNs: ts, Frame: f}, true
}

// Scenario construction constants: every scenario lives in the same address
// plan so one detector configuration applies across the whole registry.
// Destinations are the 10.0.0.0/24 group space (group = low byte), benign
// sources live in 198.18.0.0/16, attackers in 203.0.113.0/24 and
// 198.51.100.0/24.
var (
	scnVictimSpike  = packet.ParseIP4(10, 0, 0, 77)
	scnVictimCrowd  = packet.ParseIP4(10, 0, 0, 42)
	scnVictimSingle = packet.ParseIP4(10, 0, 0, 9)
	scnVictimLoris  = packet.ParseIP4(10, 0, 0, 5)
	scnVictimChurn  = packet.ParseIP4(10, 0, 0, 111)
	scnSpikeSrc     = packet.ParseIP4(198, 51, 100, 7) // Spike's fixed source
	scnScanSrc      = packet.ParseIP4(203, 0, 113, 66)
	scnSrcBase      = packet.ParseIP4(198, 18, 0, 0)
	scnMiceBase     = packet.ParseIP4(100, 64, 0, 0) // spoofed mouse-flood id space
)

// scnDests returns the first n destination groups 10.0.0.[0,n).
func scnDests(n int) []packet.IP4 {
	dests := make([]packet.IP4, n)
	for i := range dests {
		dests[i] = packet.ParseIP4(10, 0, 0, byte(i))
	}
	return dests
}

// scale multiplies a full-scale instant (expressed in nanoseconds at scale
// 1.0) down to the requested trace scale.
func scaleNs(f float64, ns uint64) uint64 { return uint64(f * float64(ns)) }

// Registry returns the detection-quality scenario matrix at the given time
// scale: scale 1.0 is the full ~600 ms trace; smaller scales shrink every
// duration and truth window proportionally while rates stay fixed, so smoke
// runs see the same traffic intensity over fewer packets. Scale must be in
// (0, 1]; seeds are taken per replay via each scenario's Build/Benign.
func Registry(scale float64) []Scenario {
	if scale <= 0 || scale > 1 {
		panic("traffic: registry scale must be in (0, 1]")
	}
	s := func(ns uint64) uint64 { return scaleNs(scale, ns) }
	end := s(600e6)

	var reg []Scenario

	// pulse-ddos: a pulse-wave volumetric flood — three on/off bursts from
	// one source at one victim over balanced background, the evasion pattern
	// that defeats naive rate thresholds between pulses.
	pulses := []TimeWindow{
		{StartNs: s(120e6), EndNs: s(200e6)},
		{StartNs: s(300e6), EndNs: s(380e6)},
		{StartNs: s(480e6), EndNs: s(560e6)},
	}
	pulseBG := func(seed int64) Stream {
		return &LoadBalanced{Dests: scnDests(200), Rate: 40000, End: end, Seed: seed}
	}
	reg = append(reg, Scenario{
		Name:  "pulse-ddos",
		EndNs: end,
		Truth: Truth{
			Attacks:      pulses,
			CulpritSrcs:  []uint64{uint64(scnSpikeSrc)},
			VictimGroups: []uint64{77},
		},
		DetectableBy: []string{"entropy", "window", "hh"},
		Build: func(seed int64) Stream {
			streams := []Stream{pulseBG(seed)}
			for i, w := range pulses {
				streams = append(streams, &Spike{
					Dest: scnVictimSpike, Rate: 400000,
					Start: w.StartNs, End: w.EndNs, Seed: seed + int64(i) + 1,
				})
			}
			return Merge(streams...)
		},
		Benign: func(seed int64) Stream { return pulseBG(seed) },
	})

	// slow-scan: a single source sweeping hosts and ports under web
	// background — low volume, so rate windows and entropy stay quiet; the
	// scanner surfaces only as a talkative source.
	scanWin := TimeWindow{StartNs: s(180e6), EndNs: s(540e6)}
	scanBG := func(seed int64) Stream {
		return &WebMix{Dests: scnDests(20), Rate: 30000, End: end, Seed: seed}
	}
	reg = append(reg, Scenario{
		Name:  "slow-scan",
		EndNs: end,
		Truth: Truth{
			Attacks:     []TimeWindow{scanWin},
			CulpritSrcs: []uint64{uint64(scnScanSrc)},
		},
		DetectableBy: []string{"hh"},
		Build: func(seed int64) Stream {
			return Merge(scanBG(seed), &PortScan{
				Src: scnScanSrc, DstBase: scnDests(1)[0], Hosts: 256,
				Rate: 8000, Start: scanWin.StartNs, End: scanWin.EndNs, Seed: seed + 1,
			})
		},
		Benign: func(seed int64) Stream { return scanBG(seed) },
	})

	// flash-crowd: thousands of distinct sources converge on one
	// destination — the attack lookalike. Destination entropy collapses and
	// the rate window trips exactly as for a flood, but no single culprit
	// source exists; a drill-down that names one is wrong by construction.
	crowdWin := TimeWindow{StartNs: s(240e6), EndNs: end}
	crowdBG := func(seed int64) Stream {
		return &LoadBalanced{Dests: scnDests(200), Rate: 40000, End: end, Seed: seed}
	}
	reg = append(reg, Scenario{
		Name:  "flash-crowd",
		EndNs: end,
		Truth: Truth{
			Attacks:      []TimeWindow{crowdWin},
			VictimGroups: []uint64{42},
		},
		DetectableBy: []string{"entropy", "window"},
		Build: func(seed int64) Stream {
			return Merge(crowdBG(seed), &Sourced{
				Dest: scnVictimCrowd, Base: scnSrcBase,
				Values: UniformValues(8192), Rate: 300000,
				Start: crowdWin.StartNs, End: end, Seed: seed + 1,
			})
		},
		Benign: func(seed int64) Stream { return crowdBG(seed) },
	})

	// zipf-shift: a zipfian source mix toward one destination whose
	// popularity ranking rotates mid-trace — total rate and destination mix
	// never move; only the identity of the elephants changes.
	shiftAt := s(300e6)
	const shiftOff = 1000
	reg = append(reg, Scenario{
		Name:  "zipf-shift",
		EndNs: end,
		Truth: Truth{
			Attacks: []TimeWindow{{StartNs: shiftAt, EndNs: end}},
			// Post-shift rank 0 — the new top talker.
			CulpritSrcs:  []uint64{uint64(scnSrcBase) + shiftOff},
			VictimGroups: []uint64{9},
		},
		DetectableBy: []string{"hh"},
		Build: func(seed int64) Stream {
			return &ZipfShift{
				Dest: scnVictimSingle, Base: scnSrcBase, Sources: 4096, S: 1.3,
				Rate: 150000, ShiftAt: shiftAt, Offset: shiftOff,
				End: end, Seed: seed,
			}
		},
		Benign: func(seed int64) Stream {
			return &ZipfShift{
				Dest: scnVictimSingle, Base: scnSrcBase, Sources: 4096, S: 1.3,
				Rate: 150000, End: end, Seed: seed,
			}
		},
	})

	// slowloris: four sources drip fresh connection attempts at a victim —
	// negligible volume (no window trip, no entropy move at 6k over 30k
	// background), but the attacking sources dominate the talker ranking.
	lorisWin := TimeWindow{StartNs: s(180e6), EndNs: end}
	lorisSrcs := []packet.IP4{
		packet.ParseIP4(203, 0, 113, 2), packet.ParseIP4(203, 0, 113, 3),
		packet.ParseIP4(203, 0, 113, 4), packet.ParseIP4(203, 0, 113, 5),
	}
	lorisBG := func(seed int64) Stream {
		return &WebMix{Dests: scnDests(20), Rate: 30000, End: end, Seed: seed}
	}
	reg = append(reg, Scenario{
		Name:  "slowloris",
		EndNs: end,
		Truth: Truth{
			Attacks: []TimeWindow{lorisWin},
			CulpritSrcs: []uint64{
				uint64(lorisSrcs[0]), uint64(lorisSrcs[1]),
				uint64(lorisSrcs[2]), uint64(lorisSrcs[3]),
			},
			VictimGroups: []uint64{5},
		},
		DetectableBy: []string{"hh"},
		Build: func(seed int64) Stream {
			return Merge(lorisBG(seed), &Slowloris{
				Dest: scnVictimLoris, Srcs: lorisSrcs, Rate: 6000,
				Start: lorisWin.StartNs, End: lorisWin.EndNs, Seed: seed + 1,
			})
		},
		Benign: func(seed int64) Stream { return lorisBG(seed) },
	})

	// multi-vector: a volumetric pulse followed by an overlapping slow scan
	// — one trace, two distinct anomalies, two culprits. A matrix cell is
	// scored on catching both windows, and the drill-down on naming both
	// sources. Only the heavy-hitter track sees both vectors (the scan
	// neither moves entropy nor rates), so only it is tagged detectable.
	mvPulse := TimeWindow{StartNs: s(180e6), EndNs: s(300e6)}
	mvScan := TimeWindow{StartNs: s(330e6), EndNs: s(540e6)}
	mvBG := func(seed int64) Stream {
		return &LoadBalanced{Dests: scnDests(200), Rate: 40000, End: end, Seed: seed}
	}
	reg = append(reg, Scenario{
		Name:  "multi-vector",
		EndNs: end,
		Truth: Truth{
			Attacks:      []TimeWindow{mvPulse, mvScan},
			CulpritSrcs:  []uint64{uint64(scnSpikeSrc), uint64(scnScanSrc)},
			VictimGroups: []uint64{77},
		},
		DetectableBy: []string{"hh"},
		Build: func(seed int64) Stream {
			return Merge(mvBG(seed),
				&Spike{Dest: scnVictimSpike, Rate: 300000,
					Start: mvPulse.StartNs, End: mvPulse.EndNs, Seed: seed + 1},
				&PortScan{Src: scnScanSrc, DstBase: scnDests(1)[0], Hosts: 256,
					Rate: 10000, Start: mvScan.StartNs, End: mvScan.EndNs, Seed: seed + 2},
			)
		},
		Benign: func(seed int64) Stream { return mvBG(seed) },
	})

	// flow-churn: a million-flow zipfian mix — a stable elephant head over a
	// churning mouse tail — hit mid-trace by a flow-creation flood: a storm
	// of short-lived spoofed mouse flows converging on one victim.
	// Destination entropy collapses, but no single culprit source exists and
	// the live flow set dwarfs any dense per-key array — the sparse
	// flow-table's home turf. Only the entropy track is gated: the flood
	// also lifts the victim-net rate, but the 5-tuple shard dispatch spreads
	// the churning background unevenly enough that the per-shard σ-band's
	// benign quietness margin is too thin to gate on. The background rate is
	// load-bearing: at 150k pps the head destinations pass 4096 packets
	// within the trace, so narrow-cell detectors (ent-saturated's 12-bit
	// registers) wrap and misfire on the benign twin — saturation has to
	// cost something even at one shard, or the dominance audit can't
	// separate it from the healthy config.
	churnWin := TimeWindow{StartNs: s(260e6), EndNs: end}
	churnBG := func(seed int64) Stream {
		return &FlowMix{
			Dests: scnDests(200), Base: scnSrcBase, Flows: 1 << 20,
			Stable: 4096, ChurnNs: s(75e6), S: 1.1, Rate: 150000,
			End: end, Seed: seed,
		}
	}
	reg = append(reg, Scenario{
		Name:  "flow-churn",
		EndNs: end,
		Truth: Truth{
			Attacks:      []TimeWindow{churnWin},
			VictimGroups: []uint64{111},
		},
		DetectableBy: []string{"entropy"},
		Build: func(seed int64) Stream {
			return Merge(churnBG(seed), &FlowMix{
				Dests: []packet.IP4{scnVictimChurn}, Base: scnMiceBase,
				Flows: 1 << 18, ChurnNs: s(4e6), S: 1.1, Rate: 1800000,
				Start: churnWin.StartNs, End: end, Seed: seed + 1,
			})
		},
		Benign: func(seed int64) Stream { return churnBG(seed) },
	})

	return reg
}

// FindScenario returns the named scenario from a registry, or false.
func FindScenario(reg []Scenario, name string) (Scenario, bool) {
	for _, sc := range reg {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}
