package traffic

import (
	"math/rand"

	"stat4/internal/packet"
)

// FlowMix emits a high-cardinality flow mix: UDP packets whose 5-tuples are
// drawn from a zipfian flow population of Flows distinct flows, with the low
// Stable ranks (the elephants) persisting for the whole trace while the
// mouse tail churns — every ChurnNs a fresh, disjoint slice of the flow id
// space takes over the tail ranks, so flows are born and die at generation
// boundaries and the union over the trace covers the full population. This
// is the workload the sparse flow-table state plane exists for: a live flow
// set far larger than any dense per-key array, dominated by single-packet
// mice under a small stable head.
//
// Flow ids map to deterministic 5-tuples: destination Dests[id mod len],
// source Base + id/len, source port derived from the id. The mapping is
// injective while id/len(Dests) stays under 2^16, so distinct flow ids stay
// distinct under src-, dst- and pair-keyed tracking alike.
type FlowMix struct {
	Dests   []packet.IP4
	Base    packet.IP4 // sources are Base + id/len(Dests)
	Flows   uint64     // distinct flows across the whole trace
	Stable  uint64     // low zipf ranks that survive churn (elephant head)
	ChurnNs uint64     // mouse generation length; 0 = no churn
	S       float64    // zipf exponent (> 1)
	Rate    float64
	Start   uint64
	End     uint64
	Seed    int64
	Jitter  float64

	rng   *rand.Rand
	zipf  *rand.Zipf
	slice uint64 // mouse flows exposed per generation
	now   float64
}

// Next implements Stream.
func (g *FlowMix) Next() (Pkt, bool) {
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.Seed))
		g.now = float64(g.Start)
		gens := uint64(1)
		if g.ChurnNs > 0 {
			gens = (g.End - g.Start + g.ChurnNs - 1) / g.ChurnNs
			if gens == 0 {
				gens = 1
			}
		}
		g.slice = (g.Flows - g.Stable) / gens
		if g.slice == 0 {
			g.slice = 1
		}
		g.zipf = rand.NewZipf(rand.New(rand.NewSource(g.Seed+1)), g.S, 1, g.Stable+g.slice-1)
	}
	g.now += gap(g.rng, g.Rate, g.Jitter)
	ts := uint64(g.now)
	if ts >= g.End {
		return Pkt{}, false
	}
	r := g.zipf.Uint64()
	fid := r
	if r >= g.Stable && g.ChurnNs > 0 {
		gen := (ts - g.Start) / g.ChurnNs
		fid = g.Stable + gen*g.slice + (r - g.Stable)
	}
	nd := uint64(len(g.Dests))
	dst := g.Dests[fid%nd]
	src := packet.IP4(uint32(g.Base) + uint32(fid/nd))
	sport := uint16(40000 + fid%1024)
	return Pkt{TsNs: ts, Frame: packet.NewUDPFrame(src, dst, sport, 80, 64)}, true
}
