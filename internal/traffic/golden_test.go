package traffic

import (
	"encoding/binary"
	"hash/fnv"
	"testing"

	"stat4/internal/packet"
)

// streamDigest folds the first n events of a stream into an FNV-1a hash:
// timestamp, addresses, ports, flags and wire length of every packet. Any
// change to a seeded generator's output — reordered rand draws, a different
// gap distribution, a header tweak — lands here as a different digest.
func streamDigest(s Stream, n int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for i := 0; i < n; i++ {
		p, ok := s.Next()
		if !ok {
			break
		}
		w64(p.TsNs)
		f := p.Frame
		if f.HasIPv4 {
			w64(uint64(f.IPv4.Src)<<32 | uint64(f.IPv4.Dst))
			w64(uint64(f.IPv4.Proto))
		}
		switch {
		case f.HasTCP:
			w64(uint64(f.TCP.SrcPort)<<32 | uint64(f.TCP.DstPort)<<8 | uint64(f.TCP.Flags))
		case f.HasUDP:
			w64(uint64(f.UDP.SrcPort)<<32 | uint64(f.UDP.DstPort))
		}
		w64(uint64(f.WireLen))
	}
	return h.Sum64()
}

// goldenN is how many events each golden digest covers.
const goldenN = 256

// TestGeneratorGoldenTraces pins the first 256 events of every seeded
// generator. These digests are load-bearing: every quality number in
// DETECT_<n>.json and every pinned example score replays these exact
// streams, so a refactor that silently perturbs one must fail here, loudly,
// instead of shifting all downstream scores.
func TestGeneratorGoldenTraces(t *testing.T) {
	dests := scnDests(8)
	cases := []struct {
		name string
		s    Stream
		want uint64
	}{
		{"load-balanced", &LoadBalanced{Dests: dests, Rate: 50000, End: 1e9, Seed: 1}, 0x97cc78ea3d6e7721},
		{"load-balanced-jitter", &LoadBalanced{Dests: dests, Rate: 50000, End: 1e9, Seed: 1, Jitter: 0.3}, 0x2f43b04b4e08238},
		{"spike", &Spike{Dest: dests[3], Rate: 200000, Start: 1e6, End: 1e9, Seed: 2}, 0x93a6365feebbcd07},
		{"sourced-uniform", &Sourced{Dest: dests[0], Base: scnSrcBase, Values: UniformValues(512), Rate: 80000, End: 1e9, Seed: 3}, 0x9b075d50abf71897},
		{"sourced-zipf", &Sourced{Dest: dests[0], Base: scnSrcBase, Values: ZipfValues(1.2, 1024, 9), Rate: 80000, End: 1e9, Seed: 4}, 0x9bb98a51f8a7d40d},
		{"syn-flood", &SynFlood{Dest: dests[1], Rate: 120000, End: 1e9, Seed: 5}, 0x68c9046840b9ae48},
		{"web-mix", &WebMix{Dests: dests, Rate: 60000, End: 1e9, Seed: 6}, 0x54496dd40a14fb14},
		{"port-scan", &PortScan{Src: scnScanSrc, DstBase: dests[0], Hosts: 64, Rate: 9000, End: 1e9, Seed: 7}, 0x786d55da54d9a4de},
		{"zipf-shift", &ZipfShift{Dest: dests[2], Base: scnSrcBase, Sources: 1024, S: 1.3, Rate: 100000, ShiftAt: 1e6, Offset: 100, End: 1e9, Seed: 8}, 0x9406e37aa785f603},
		{"zipf-noshift", &ZipfShift{Dest: dests[2], Base: scnSrcBase, Sources: 1024, S: 1.3, Rate: 100000, End: 1e9, Seed: 8}, 0xec4041a1eec48301},
		{"slowloris", &Slowloris{Dest: dests[4], Srcs: []packet.IP4{scnScanSrc, scnSpikeSrc}, Rate: 30000, End: 1e9, Seed: 9}, 0xb17cb2ee6878b1bf},
		{"merge", Merge(&Spike{Dest: dests[0], Rate: 40000, End: 1e9, Seed: 10}, &SynFlood{Dest: dests[1], Rate: 40000, End: 1e9, Seed: 11}), 0x25cb9c63fa217ad0},
		{"flow-mix", &FlowMix{Dests: dests, Base: scnSrcBase, Flows: 1 << 16, Stable: 256, ChurnNs: 125e6, S: 1.1, Rate: 80000, End: 1e9, Seed: 12}, 0x43a3bfdc8943d6f3},
		{"flow-mix-stable", &FlowMix{Dests: dests, Base: scnSrcBase, Flows: 1 << 12, S: 1.2, Rate: 80000, End: 1e9, Seed: 12}, 0xde211fcdce2a5156},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := streamDigest(tc.s, goldenN)
			if got != tc.want {
				t.Errorf("golden digest drifted: got %#x, want %#x", got, tc.want)
			}
		})
	}
}

// scenarioGoldenN reaches well past every scenario's attack onset at scale
// 0.25 (the latest, zipf-shift's change point, sits near event 11250), so
// the digests cover anomaly traffic, not just the shared background.
const scenarioGoldenN = 16384

// TestScenarioGoldenTraces pins every registry scenario's attack trace and
// benign twin at the smoke scale and seed the CI quality gate runs at.
func TestScenarioGoldenTraces(t *testing.T) {
	want := map[string][2]uint64{
		"pulse-ddos":   {0x96b6b3a2ee641daa, 0xddf26a07f43decac},
		"slow-scan":    {0x58eea7bff4f78140, 0x3de8e8f3d22f24df},
		"flash-crowd":  {0x12f2434fcd27d815, 0xddf26a07f43decac},
		"zipf-shift":   {0x9bbe97e9e51aee99, 0x31e4c9f79b92db6c},
		"slowloris":    {0xba302f1e279ec56d, 0x3de8e8f3d22f24df},
		"multi-vector": {0x2ffbe77d6ef666b4, 0xddf26a07f43decac},
		"flow-churn":   {0x610fb1df88020422, 0x2c0a21c904204ae7},
	}
	reg := Registry(0.25)
	if len(reg) != len(want) {
		t.Fatalf("registry has %d scenarios, goldens cover %d", len(reg), len(want))
	}
	for _, sc := range reg {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			w, ok := want[sc.Name]
			if !ok {
				t.Fatalf("no golden for scenario %q", sc.Name)
			}
			atk := streamDigest(sc.Build(1), scenarioGoldenN)
			ben := streamDigest(sc.Benign(1), scenarioGoldenN)
			if atk != w[0] {
				t.Errorf("attack trace digest drifted: got %#x, want %#x", atk, w[0])
			}
			if ben != w[1] {
				t.Errorf("benign twin digest drifted: got %#x, want %#x", ben, w[1])
			}
			if atk == ben {
				t.Errorf("attack trace and benign twin hash identically (%#x): the digest window misses the anomaly", atk)
			}
		})
	}
}

// TestScenarioStreamsReplayIdentically asserts the registry contract that
// Build and Benign return byte-identical streams on every call with the same
// seed — the property the scorer leans on when it replays a stream once for
// injection and once for ground truth.
func TestScenarioStreamsReplayIdentically(t *testing.T) {
	for _, sc := range Registry(0.25) {
		if a, b := streamDigest(sc.Build(7), goldenN), streamDigest(sc.Build(7), goldenN); a != b {
			t.Errorf("%s: Build not replayable: %#x vs %#x", sc.Name, a, b)
		}
		if a, b := streamDigest(sc.Benign(7), goldenN), streamDigest(sc.Benign(7), goldenN); a != b {
			t.Errorf("%s: Benign not replayable: %#x vs %#x", sc.Name, a, b)
		}
		if a, b := streamDigest(sc.Build(7), goldenN), streamDigest(sc.Build(8), goldenN); a == b {
			t.Errorf("%s: Build ignores its seed (digest %#x for both)", sc.Name, a)
		}
	}
}
