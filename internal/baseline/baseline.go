// Package baseline provides the floating-point reference statistics that the
// paper's host-side validation computes "in software": Welford's online
// mean/variance, exact percentiles over frequency data, and the fractional
// square root. None of it is implementable on a P4 target; it exists to
// quantify the error of the integer algorithms in internal/intstat and
// internal/core (Tables 2 and 3) and to validate the echo application
// (Figure 5).
package baseline

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance online with Welford's algorithm
// (Welford 1962, the paper's reference [26] for why prior online algorithms
// need division).
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples seen.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance Σ(x−x̄)²/n (0 with fewer than two
// samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Moments computes N, Xsum and Xsumsq of a sample slice exactly, the values
// the echo host compares against the switch registers.
func Moments(xs []uint64) (n, sum, sumsq uint64) {
	n = uint64(len(xs))
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	return n, sum, sumsq
}

// ScaledVariance returns the variance of NX, N·Xsumsq − Xsum², computed in
// float64 to avoid overflow concerns in test oracles.
func ScaledVariance(xs []uint64) float64 {
	n, sum, sumsq := Moments(xs)
	return float64(n)*float64(sumsq) - float64(sum)*float64(sum)
}

// ExactMedian returns the exact median value of a frequency distribution:
// the value of the ⌈total/2⌉-th observation in sorted order. It returns 0
// for an empty distribution.
func ExactMedian(freq []uint64) uint64 {
	return ExactPercentile(freq, 50)
}

// ExactPercentile returns the value at the q-th percentile (1 ≤ q ≤ 99) of a
// frequency distribution: the smallest value v such that at least q% of the
// observations are ≤ v. It returns 0 for an empty distribution.
func ExactPercentile(freq []uint64, q int) uint64 {
	var total uint64
	for _, f := range freq {
		total += f
	}
	if total == 0 {
		return 0
	}
	// rank = ceil(total*q/100), at least 1.
	rank := (total*uint64(q) + 99) / 100
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for v, f := range freq {
		cum += f
		if cum >= rank {
			return uint64(v)
		}
	}
	return uint64(len(freq) - 1)
}

// PercentileOf returns the p-th percentile of a float sample slice using the
// nearest-rank method; it is used to summarise error distributions for the
// tables. p is in [0,100]; the slice is not modified.
func PercentileOf(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// MaxOf returns the maximum of a float slice (NaN for an empty slice).
func MaxOf(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Entropy returns the Shannon entropy, in bits, of a frequency distribution:
// H = log2(T) − (1/T)·Σ f·log2(f) with T = Σ f. It returns 0 for an empty
// distribution. This is the float64 ground truth for core.Entropy's
// fixed-point accumulator.
func Entropy(freq []uint64) float64 {
	var total uint64
	for _, f := range freq {
		total += f
	}
	if total == 0 {
		return 0
	}
	var s float64
	for _, f := range freq {
		if f > 1 {
			s += float64(f) * math.Log2(float64(f))
		}
	}
	return math.Log2(float64(total)) - s/float64(total)
}

// NormalizedEntropy returns Entropy divided by its maximum log2(len(freq)),
// the [0,1] detection signal of Ding et al.: 1 for a uniform spread, near 0
// when the traffic concentrates on one value. Distributions with fewer than
// two cells carry no spread information and return 0.
func NormalizedEntropy(freq []uint64) float64 {
	if len(freq) < 2 {
		return 0
	}
	return Entropy(freq) / math.Log2(float64(len(freq)))
}

// SqrtError returns the relative error of an approximation a to the
// fractional square root of y: |a − √y| / √y. It returns 0 when y is 0.
func SqrtError(y, a uint64) float64 {
	if y == 0 {
		return 0
	}
	t := math.Sqrt(float64(y))
	return math.Abs(float64(a)-t) / t
}

// SqrtErrorVsInput returns the absolute error of the approximation against
// the fractional square root, expressed as a fraction of the input number:
// |a − √y| / y. Matching the published Table 2 values against the algorithm
// shows this is the paper's metric (e.g. √2 → 1 gives 0.414/2 ≈ 20%, the
// table's 1–10 maximum, and its footnote — high percentage error but low
// absolute error for small numbers — only reads naturally for an
// input-relative figure).
func SqrtErrorVsInput(y, a uint64) float64 {
	if y == 0 {
		return 0
	}
	t := math.Sqrt(float64(y))
	return math.Abs(float64(a)-t) / float64(y)
}
