package baseline

// P2Quantile is the P² (piecewise-parabolic) online quantile estimator of
// Jain & Chlamtac (1985): five markers, constant memory, floating-point
// arithmetic. It is the classical software answer to "track a quantile
// online" and serves as the CPU-side baseline the paper's related work
// points at (sketch-based quantile estimation à la QPipe): everything Stat4's
// one-step median marker cannot use — division, floats, data-dependent
// marker jumps — is allowed here.
type P2Quantile struct {
	p     float64
	n     int
	init  [5]float64
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired positions
	dWant [5]float64 // desired-position increments
}

// NewP2Quantile returns an estimator for the p-quantile (0 < p < 1).
func NewP2Quantile(p float64) *P2Quantile {
	e := &P2Quantile{p: p}
	e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	e.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Add folds one observation.
func (e *P2Quantile) Add(x float64) {
	if e.n < 5 {
		e.init[e.n] = x
		e.n++
		if e.n == 5 {
			// Sort the first five observations into the markers.
			s := e.init
			for i := 1; i < 5; i++ {
				for j := i; j > 0 && s[j-1] > s[j]; j-- {
					s[j-1], s[j] = s[j], s[j-1]
				}
			}
			for i := 0; i < 5; i++ {
				e.q[i] = s[i]
				e.pos[i] = float64(i + 1)
			}
		}
		return
	}
	e.n++

	// Locate the cell containing x and clamp the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dWant[i]
	}

	// Adjust the three interior markers with parabolic (or linear) moves.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qn := e.parabolic(i, sign)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it returns the midpoint of what has been seen.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := e.init
		for i := 1; i < e.n; i++ {
			for j := i; j > 0 && s[j-1] > s[j]; j-- {
				s[j-1], s[j] = s[j], s[j-1]
			}
		}
		return s[(e.n-1)/2]
	}
	return e.q[2]
}

// N returns the number of observations folded so far.
func (e *P2Quantile) N() int { return e.n }
