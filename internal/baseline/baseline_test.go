package baseline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	xs := make([]float64, 500)
	var w Welford
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		w.Add(xs[i])
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - mean) * (x - mean)
	}
	v /= float64(len(xs))
	if math.Abs(w.Mean()-mean) > 1e-9*mean {
		t.Fatalf("Welford mean %.6f vs direct %.6f", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-v) > 1e-6*v {
		t.Fatalf("Welford variance %.6f vs direct %.6f", w.Variance(), v)
	}
	if w.N() != 500 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.Variance() != 0 || w.Mean() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(5)
	if w.Variance() != 0 {
		t.Fatal("single-sample variance not zero")
	}
	if w.StdDev() != 0 {
		t.Fatal("single-sample sd not zero")
	}
}

func TestMoments(t *testing.T) {
	n, sum, sumsq := Moments([]uint64{1, 2, 3})
	if n != 3 || sum != 6 || sumsq != 14 {
		t.Fatalf("Moments = (%d,%d,%d)", n, sum, sumsq)
	}
}

// TestScaledVarianceNonNegative property: the scaled variance identity is
// non-negative for all inputs (Cauchy–Schwarz).
func TestScaledVarianceNonNegative(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]uint64, len(raw))
		for i, r := range raw {
			xs[i] = uint64(r)
		}
		return ScaledVariance(xs) >= -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExactMedian(t *testing.T) {
	// Figure 3's initial distribution over values 0..10: frequencies at
	// index 2:10, 3:2, 6:1, 9:5, 10:6 → 24 values, median = 12th = 3.
	freq := make([]uint64, 11)
	freq[2], freq[3], freq[6], freq[9], freq[10] = 10, 2, 1, 5, 6
	if got := ExactMedian(freq); got != 3 {
		t.Fatalf("ExactMedian = %d, want 3", got)
	}
	// After adding an 8: 25 values, median = 13th = 6 (Figure 3).
	freq[8]++
	if got := ExactMedian(freq); got != 6 {
		t.Fatalf("ExactMedian after add = %d, want 6 (Figure 3)", got)
	}
	if got := ExactMedian(make([]uint64, 4)); got != 0 {
		t.Fatalf("empty median = %d", got)
	}
}

func TestExactPercentile(t *testing.T) {
	freq := make([]uint64, 100)
	for i := range freq {
		freq[i] = 1
	}
	if got := ExactPercentile(freq, 90); got != 89 {
		t.Fatalf("p90 of uniform 0..99 = %d, want 89", got)
	}
	if got := ExactPercentile(freq, 50); got != 49 {
		t.Fatalf("p50 of uniform 0..99 = %d, want 49", got)
	}
	if got := ExactPercentile(freq, 99); got != 98 {
		t.Fatalf("p99 of uniform 0..99 = %d, want 98", got)
	}
}

func TestPercentileOf(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := PercentileOf(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := PercentileOf(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := PercentileOf(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if !math.IsNaN(PercentileOf(nil, 50)) {
		t.Fatal("empty percentile not NaN")
	}
	// Input must be unmodified.
	if xs[0] != 5 {
		t.Fatal("PercentileOf mutated its input")
	}
}

func TestMaxOf(t *testing.T) {
	if MaxOf([]float64{1, 9, 3}) != 9 {
		t.Fatal("MaxOf wrong")
	}
	if !math.IsNaN(MaxOf(nil)) {
		t.Fatal("empty MaxOf not NaN")
	}
}

func TestSqrtError(t *testing.T) {
	if e := SqrtError(100, 10); e != 0 {
		t.Fatalf("exact sqrt error = %v", e)
	}
	if e := SqrtError(100, 11); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("SqrtError(100,11) = %v, want 0.1", e)
	}
	if e := SqrtError(0, 5); e != 0 {
		t.Fatalf("SqrtError(0,·) = %v", e)
	}
}

func TestSqrtErrorVsInput(t *testing.T) {
	// sqrt(2) approximated as 1: |1-1.414|/2 = 20.7% — the Table 2 metric.
	if e := SqrtErrorVsInput(2, 1); math.Abs(e-0.2071) > 0.001 {
		t.Fatalf("SqrtErrorVsInput(2,1) = %v", e)
	}
	if e := SqrtErrorVsInput(0, 5); e != 0 {
		t.Fatalf("zero input error = %v", e)
	}
}

func TestP2QuantileMedianUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := NewP2Quantile(0.5)
	for i := 0; i < 100000; i++ {
		e.Add(rng.Float64() * 1000)
	}
	if v := e.Value(); math.Abs(v-500) > 15 {
		t.Fatalf("P2 median of U(0,1000) = %.1f", v)
	}
	if e.N() != 100000 {
		t.Fatalf("N = %d", e.N())
	}
}

func TestP2QuantileP90Normal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := NewP2Quantile(0.9)
	for i := 0; i < 200000; i++ {
		e.Add(rng.NormFloat64()*10 + 100)
	}
	// The 90th percentile of N(100,10) is 100 + 1.2816*10 ≈ 112.8.
	if v := e.Value(); math.Abs(v-112.8) > 1.5 {
		t.Fatalf("P2 p90 of N(100,10) = %.2f, want ≈112.8", v)
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	e := NewP2Quantile(0.5)
	if e.Value() != 0 {
		t.Fatal("empty estimator nonzero")
	}
	for _, x := range []float64{5, 1, 9} {
		e.Add(x)
	}
	if v := e.Value(); v != 5 {
		t.Fatalf("3-sample median = %v, want 5", v)
	}
}
