package stat4p4

import "stat4/internal/p4"

// declareUpdateActions declares every internal action of the shared update
// logic. The actions read and write the m.* scratch fields set by the
// binding actions. Each statistical measure lives in its own register array
// indexed by the slot id (Figure 4's "stats" registers), so updates to
// different measures impose no dependency on one another — which is what
// keeps the longest sequential chain pipeline-plausible.
func (l *Library) declareUpdateActions() {
	f := &l.f
	std := l.Std
	add := func(name string, ops ...p4.Op) {
		l.Prog.AddAction(p4.NewAction(name, 0, ops...))
	}
	slot := p4.F(f.slotid)

	// --- frequency mode -------------------------------------------------

	// freq_load: locate the counter and load the moments.
	add("freq_load",
		p4.Add(f.idx, p4.F(f.base), p4.F(f.val)),
		p4.RegRead(f.f, RegCounters, p4.F(f.idx)),
		p4.RegRead(f.n, RegN, slot),
		p4.RegRead(f.xsum, RegXsum, slot),
		p4.RegRead(f.xsumsq, RegXsumsq, slot),
	)

	// freq_incr_n: first observation of this value.
	add("freq_incr_n",
		p4.Add(f.n, p4.F(f.n), p4.C(1)),
		p4.RegWrite(RegN, slot, p4.F(f.n)),
	)

	// freq_accum: Xsum += 1, Xsumsq += 2f+1, counter = f+1.
	add("freq_accum",
		p4.Add(f.xsum, p4.F(f.xsum), p4.C(1)),
		p4.RegWrite(RegXsum, slot, p4.F(f.xsum)),
		p4.Shl(f.t2, p4.F(f.f), p4.C(1)),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.Add(f.xsumsq, p4.F(f.xsumsq), p4.F(f.t2)),
		p4.RegWrite(RegXsumsq, slot, p4.F(f.xsumsq)),
		p4.Add(f.fnew, p4.F(f.f), p4.C(1)),
		p4.RegWrite(RegCounters, p4.F(f.idx), p4.F(f.fnew)),
	)

	// --- variance -------------------------------------------------------

	if !l.Opts.Strict {
		// var_mul: sqin = N·Xsumsq − Xsum² (exact, behavioral-model mode).
		add("var_mul",
			p4.Mul(f.nss, p4.F(f.n), p4.F(f.xsumsq)),
			p4.Mul(f.ss, p4.F(f.xsum), p4.F(f.xsum)),
			p4.SatSub(f.sqin, p4.F(f.nss), p4.F(f.ss)),
			p4.Mov(f.doSqrt, p4.C(1)),
		)
	}
	// Strict-mode helpers: the shift trees fill nss/ss when the operands
	// are nonzero; these cover the zero cases and combine.
	add("var_zero_nss", p4.Mov(f.nss, p4.C(0)))
	add("var_zero_ss", p4.Mov(f.ss, p4.C(0)))
	add("var_finish",
		p4.SatSub(f.sqin, p4.F(f.nss), p4.F(f.ss)),
		p4.Mov(f.doSqrt, p4.C(1)),
	)

	// --- percentile (Figure 3) -------------------------------------------

	add("med_load",
		p4.RegRead(f.med, RegMed, slot),
		p4.RegRead(f.low, RegLow, slot),
		p4.RegRead(f.high, RegHigh, slot),
		p4.RegRead(f.minit, RegMedInit, slot),
	)
	// med_seed: the marker starts at the first observed value.
	add("med_seed",
		p4.Mov(f.med, p4.F(f.val)),
		p4.RegWrite(RegMed, slot, p4.F(f.med)),
		p4.RegWrite(RegMedInit, slot, p4.C(1)),
	)
	add("med_inc_low",
		p4.Add(f.low, p4.F(f.low), p4.C(1)),
		p4.RegWrite(RegLow, slot, p4.F(f.low)),
	)
	add("med_inc_high",
		p4.Add(f.high, p4.F(f.high), p4.C(1)),
		p4.RegWrite(RegHigh, slot, p4.F(f.high)),
	)
	// med_fmed: the marker's own frequency, read after the counter update
	// so an observation at the marker is included.
	add("med_fmed",
		p4.Add(f.t1, p4.F(f.base), p4.F(f.med)),
		p4.RegRead(f.fmed, RegCounters, p4.F(f.t1)),
	)
	if !l.Opts.Strict {
		// med_cmp: with weights a:b, move up when a·high > b·(low+f[med]),
		// down when b·low > a·(high+f[med]). t2 = med+1 feeds the upper
		// clamp.
		add("med_cmp",
			p4.Mul(f.lhs, p4.F(f.pa), p4.F(f.high)),
			p4.Add(f.rhs, p4.F(f.low), p4.F(f.fmed)),
			p4.Mul(f.rhs, p4.F(f.pb), p4.F(f.rhs)),
			p4.Mul(f.lhs2, p4.F(f.pb), p4.F(f.low)),
			p4.Add(f.rhs2, p4.F(f.high), p4.F(f.fmed)),
			p4.Mul(f.rhs2, p4.F(f.pa), p4.F(f.rhs2)),
			p4.Add(f.t2, p4.F(f.med), p4.C(1)),
		)
	}
	// med_cmp_strict: median only (1:1 weights), multiplication-free.
	add("med_cmp_strict",
		p4.Mov(f.lhs, p4.F(f.high)),
		p4.Add(f.rhs, p4.F(f.low), p4.F(f.fmed)),
		p4.Mov(f.lhs2, p4.F(f.low)),
		p4.Add(f.rhs2, p4.F(f.high), p4.F(f.fmed)),
		p4.Add(f.t2, p4.F(f.med), p4.C(1)),
	)
	// med_up: the marker's frequency moves to the low side; the slot above
	// leaves the high side.
	add("med_up",
		p4.Add(f.low, p4.F(f.low), p4.F(f.fmed)),
		p4.RegWrite(RegLow, slot, p4.F(f.low)),
		p4.Add(f.med, p4.F(f.med), p4.C(1)),
		p4.RegWrite(RegMed, slot, p4.F(f.med)),
		p4.Add(f.t1, p4.F(f.base), p4.F(f.med)),
		p4.RegRead(f.t2, RegCounters, p4.F(f.t1)),
		p4.Sub(f.high, p4.F(f.high), p4.F(f.t2)),
		p4.RegWrite(RegHigh, slot, p4.F(f.high)),
		p4.RegRead(f.t2, RegMedMoves, slot),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.RegWrite(RegMedMoves, slot, p4.F(f.t2)),
	)
	add("med_down",
		p4.Add(f.high, p4.F(f.high), p4.F(f.fmed)),
		p4.RegWrite(RegHigh, slot, p4.F(f.high)),
		p4.Sub(f.med, p4.F(f.med), p4.C(1)),
		p4.RegWrite(RegMed, slot, p4.F(f.med)),
		p4.Add(f.t1, p4.F(f.base), p4.F(f.med)),
		p4.RegRead(f.t2, RegCounters, p4.F(f.t1)),
		p4.Sub(f.low, p4.F(f.low), p4.F(f.t2)),
		p4.RegWrite(RegLow, slot, p4.F(f.low)),
		p4.RegRead(f.t2, RegMedMoves, slot),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.RegWrite(RegMedMoves, slot, p4.F(f.t2)),
	)

	// --- window mode ------------------------------------------------------

	add("win_load",
		p4.RegRead(f.init, RegIntInit, slot),
		p4.RegRead(f.last, RegLastInt, slot),
		p4.RegRead(f.cur, RegCur, slot),
		p4.RegRead(f.cursq, RegCurSq, slot),
		p4.RegRead(f.n, RegN, slot),
		p4.RegRead(f.xsum, RegXsum, slot),
		p4.RegRead(f.xsumsq, RegXsumsq, slot),
		p4.RegRead(f.sd, RegSD, slot),
		p4.RegRead(f.head, RegHead, slot),
	)
	add("win_init",
		p4.RegWrite(RegIntInit, slot, p4.C(1)),
		p4.RegWrite(RegLastInt, slot, p4.F(f.curint)),
		p4.Mov(f.last, p4.F(f.curint)),
	)
	if !l.Opts.Strict {
		// win_arm_check: N·x > Xsum + k·σ, evaluated against the stored
		// distribution before the fold.
		add("win_arm_check",
			p4.Mul(f.nx, p4.F(f.n), p4.F(f.cur)),
			p4.Mul(f.ksd, p4.F(f.k), p4.F(f.sd)),
			p4.Add(f.thr, p4.F(f.xsum), p4.F(f.ksd)),
			p4.Mov(f.alertval, p4.F(f.cur)),
			p4.Mov(f.doCheck, p4.C(1)),
		)
	} else {
		// Strict: the window is full so N is the (power-of-two) capacity,
		// and k is fixed at 2.
		add("win_arm_check_strict",
			p4.Shl(f.nx, p4.F(f.cur), p4.C(uint64(l.Opts.StrictCapShift))),
			p4.Shl(f.ksd, p4.F(f.sd), p4.C(1)),
			p4.Add(f.thr, p4.F(f.xsum), p4.F(f.ksd)),
			p4.Mov(f.alertval, p4.F(f.cur)),
			p4.Mov(f.doCheck, p4.C(1)),
		)
	}
	// win_fold: override the oldest counter with the completed interval —
	// the paper's longest dependency chain.
	add("win_fold",
		p4.Add(f.idx, p4.F(f.base), p4.F(f.head)),
		p4.RegRead(f.old, RegCounters, p4.F(f.idx)),
		p4.RegRead(f.oldsq, RegSquares, p4.F(f.idx)),
		p4.RegWrite(RegCounters, p4.F(f.idx), p4.F(f.cur)),
		p4.RegWrite(RegSquares, p4.F(f.idx), p4.F(f.cursq)),
		p4.Add(f.head, p4.F(f.head), p4.C(1)),
	)
	add("win_head_wrap", p4.Mov(f.head, p4.C(0)))
	add("win_grow",
		p4.Add(f.n, p4.F(f.n), p4.C(1)),
		p4.RegWrite(RegN, slot, p4.F(f.n)),
	)
	add("win_evict",
		p4.SatSub(f.xsum, p4.F(f.xsum), p4.F(f.old)),
		p4.SatSub(f.xsumsq, p4.F(f.xsumsq), p4.F(f.oldsq)),
	)
	if !l.Opts.Strict {
		// win_commit: moments absorb the completed interval; the current
		// packet opens the next interval with its own contribution δ
		// (1 for packet counting, the wire length for byte counting).
		add("win_commit",
			p4.Add(f.xsum, p4.F(f.xsum), p4.F(f.cur)),
			p4.RegWrite(RegXsum, slot, p4.F(f.xsum)),
			p4.Add(f.xsumsq, p4.F(f.xsumsq), p4.F(f.cursq)),
			p4.RegWrite(RegXsumsq, slot, p4.F(f.xsumsq)),
			p4.RegWrite(RegHead, slot, p4.F(f.head)),
			p4.RegWrite(RegLastInt, slot, p4.F(f.curint)),
			p4.RegWrite(RegCur, slot, p4.F(f.delta)),
			p4.Mul(f.dsq, p4.F(f.delta), p4.F(f.delta)),
			p4.RegWrite(RegCurSq, slot, p4.F(f.dsq)),
		)
		// win_accum: cur += δ and cur² advances by 2·cur·δ + δ².
		add("win_accum",
			p4.Mul(f.t2, p4.F(f.cur), p4.F(f.delta)),
			p4.Shl(f.t2, p4.F(f.t2), p4.C(1)),
			p4.Mul(f.dsq, p4.F(f.delta), p4.F(f.delta)),
			p4.Add(f.t2, p4.F(f.t2), p4.F(f.dsq)),
			p4.Add(f.cursq, p4.F(f.cursq), p4.F(f.t2)),
			p4.RegWrite(RegCurSq, slot, p4.F(f.cursq)),
			p4.Add(f.cur, p4.F(f.cur), p4.F(f.delta)),
			p4.RegWrite(RegCur, slot, p4.F(f.cur)),
		)
	} else {
		// Strict targets count packets only (δ = 1): the identities
		// 2·cur+1 and a constant 1 need no multiplication.
		add("win_commit",
			p4.Add(f.xsum, p4.F(f.xsum), p4.F(f.cur)),
			p4.RegWrite(RegXsum, slot, p4.F(f.xsum)),
			p4.Add(f.xsumsq, p4.F(f.xsumsq), p4.F(f.cursq)),
			p4.RegWrite(RegXsumsq, slot, p4.F(f.xsumsq)),
			p4.RegWrite(RegHead, slot, p4.F(f.head)),
			p4.RegWrite(RegLastInt, slot, p4.F(f.curint)),
			p4.RegWrite(RegCur, slot, p4.C(1)),
			p4.RegWrite(RegCurSq, slot, p4.C(1)),
		)
		add("win_accum",
			p4.Shl(f.t2, p4.F(f.cur), p4.C(1)),
			p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
			p4.Add(f.cursq, p4.F(f.cursq), p4.F(f.t2)),
			p4.RegWrite(RegCurSq, slot, p4.F(f.cursq)),
			p4.Add(f.cur, p4.F(f.cur), p4.C(1)),
			p4.RegWrite(RegCur, slot, p4.F(f.cur)),
		)
	}

	// --- shared tail ------------------------------------------------------

	add("sqrt_store",
		p4.RegWrite(RegVar, slot, p4.F(f.sqin)),
		p4.RegWrite(RegSD, slot, p4.F(f.sqout)),
		p4.Mov(f.sd, p4.F(f.sqout)),
	)
	// freq_arm_check: remember which value is under test; the threshold
	// comparison happens after the fresh σ is stored.
	add("freq_arm_check",
		p4.Mov(f.alertval, p4.F(f.val)),
		p4.Mov(f.doCheck, p4.C(1)),
	)
	if !l.Opts.Strict {
		// freq_thr: N·f' > Xsum + k·σ for the just-incremented counter.
		add("freq_thr",
			p4.Mul(f.nx, p4.F(f.n), p4.F(f.fnew)),
			p4.Mul(f.ksd, p4.F(f.k), p4.F(f.sd)),
			p4.Add(f.thr, p4.F(f.xsum), p4.F(f.ksd)),
		)
	}
	// freq_thr_strict: k fixed at 2; m.nx is filled by the shift tree.
	add("freq_thr_strict",
		p4.Shl(f.ksd, p4.F(f.sd), p4.C(1)),
		p4.Add(f.thr, p4.F(f.xsum), p4.F(f.ksd)),
	)
	add("check_alert",
		p4.EmitDigest(DigestAnomaly, f.slotid, f.alertval, f.nx, f.thr, std.TsNs),
	)
	add("stage_reset",
		p4.Mov(f.enable, p4.C(0)),
		p4.Mov(f.doSqrt, p4.C(0)),
		p4.Mov(f.doCheck, p4.C(0)),
	)
	if l.Opts.Echo {
		// echo_reply: bounce the frame to its ingress port carrying the
		// refreshed measures; the deparser serialises them.
		add("echo_reply",
			p4.Mov(f.repValid, p4.C(1)),
			p4.SetEgress(p4.F(std.InPort)),
		)
	}

	l.declareSqrtActions()
}
