package stat4p4

import (
	"fmt"
	"sort"

	"stat4/internal/p4"
)

// This file emits the sparse flow-table addressing mode, the register-model
// twin of internal/flowtable: a per-slot 2-left hash table of {key, epoch
// stamp, count} buckets with epoch-based lazy expiry and an optional
// 2^-k admission coin for mouse-flow shedding. Where sparse mode (sparse.go)
// claims buckets forever — high-cardinality churn fills it once and then
// rejects — the flow table reclaims buckets whose stamp has aged past the
// binding's TTL, so bounded SRAM tracks an unbounded churning population of
// flows.
//
// Hash-family discipline matches internal/flowtable exactly (coin = hash 0,
// left probe = hash 1, right probe = hash 2, always the product's high word)
// so the host table is a bit-exact reference for the emitted program; the
// parity test in flowtable_test.go pins placement, counts and the ledger.
//
// The mode maintains the slot's moments (N, Xsum, Xsumsq) over LIVE flows:
// accumulation mirrors freq_accum against the flow-count register, and an
// eviction first subtracts the dead flow's contribution (N−1, Xsum−c,
// Xsumsq−c²) — which needs runtime multiplication, so the mode is
// incompatible with Strict. With k ≥ 1 the shared mean+kσ check runs on the
// refreshed count and the anomaly digest names the flow key itself.
//
// All flow-table registers are replica-local (MergeDerived with a why):
// shards admit along different collision paths, so neither bucket contents
// nor the admission ledger are cell-wise additive. Merged snapshots zero
// them — the CanonicalizeSnapshot byte-identity contract stays trivial, like
// the window precedent — and the controller instead merges flows by key
// (MergedFlows) and sums ledgers per shard (MergedFlowStats).

// Flow-table register names.
const (
	RegFTKeys  = "stat.ftkeys"  // bucket keys, Slots×FlowTableSize cells
	RegFTStamp = "stat.ftstamp" // last-touch epoch + 1; 0 marks an empty bucket
	RegFTCnt   = "stat.ftcnt"   // per-flow packet counts
	RegFTAdm   = "stat.ftadm"   // per-slot admissions (claims of any bucket)
	RegFTEvt   = "stat.ftevt"   // per-slot evictions (claims over an expired entry)
	RegFTRej   = "stat.ftrej"   // per-slot rejections (both candidates live)
	RegFTShed  = "stat.ftshed"  // per-slot sheds (admission coin lost)
)

const kindFlow = 5

// Hash-family assignments, mirroring internal/flowtable: hash 0 is the
// admission coin, hash 1 probes the left half, hash 2 the right.
const (
	ftHashCoin  = 0
	ftHashLeft  = 1
	ftHashRight = 2
)

// declareFlowTable adds the flow-table registers, binding actions, probe and
// resolution actions to the program.
func (l *Library) declareFlowTable() {
	f := &l.f
	std := l.Std
	size := l.Opts.FlowTableSize
	cells := l.Opts.Slots * size
	w := l.Opts.CellWidth

	l.Prog.AddRegister(RegFTKeys, cells, 64)
	l.Prog.SetRegisterMerge(RegFTKeys, p4.MergeDerived)
	l.Prog.SetMergeWhy(RegFTKeys,
		"flow-table key ownership is replica-local: shards admit different keys to the same bucket; the controller merges flows by key")
	l.Prog.AddRegister(RegFTStamp, cells, w)
	l.Prog.SetRegisterMerge(RegFTStamp, p4.MergeDerived)
	l.Prog.SetMergeWhy(RegFTStamp,
		"epoch stamps of the replica-local flow table; liveness is per replica")
	l.Prog.AddRegister(RegFTCnt, cells, w)
	l.Prog.SetRegisterMerge(RegFTCnt, p4.MergeDerived)
	l.Prog.SetMergeWhy(RegFTCnt,
		"per-flow counts keyed by the replica-local bucket table; summed per key by the controller (MergedFlows), never cell-wise")
	for reg, why := range map[string]string{
		RegFTAdm:  "admissions follow the replica-local collision path; serial and sharded runs claim different buckets, so the ledger is reported per shard and summed by the controller",
		RegFTEvt:  "evictions follow the replica-local collision path (see " + RegFTAdm + ")",
		RegFTRej:  "rejections depend on replica-local occupancy (see " + RegFTAdm + ")",
		RegFTShed: "coin losses are counted where the packet landed (see " + RegFTAdm + ")",
	} {
		l.Prog.AddRegister(reg, l.Opts.Slots, w)
		l.Prog.SetRegisterMerge(reg, p4.MergeDerived)
		l.Prog.SetMergeWhy(reg, why)
	}

	// bind_flow_*(ftBase, slot, shift, epochShift, ttl, sampleMask, k):
	// key = header >> shift, epoch = ts >> epochShift, and the admission coin
	// hashes key+ts so every packet of a flow is an independent 2^-k trial
	// (the heavy-hitter gate discipline — key alone would deterministically
	// partition the key space). The product's HIGH word feeds the mask.
	common := []p4.Op{
		p4.Mov(f.base, p4.P(0)),
		p4.Mov(f.slotid, p4.P(1)),
		p4.Mov(f.enable, p4.C(1)),
		p4.Mov(f.kind, p4.C(kindFlow)),
	}
	tail := []p4.Op{
		p4.Shr(f.curint, p4.F(std.TsNs), p4.P(3)),
		p4.Mov(f.cap, p4.P(4)),
		p4.Add(f.ftgate, p4.F(f.val), p4.F(std.TsNs)),
		p4.Hash(f.ftgate, ftHashCoin, p4.F(f.ftgate), ^uint64(0)),
		p4.Shr(f.ftgate, p4.F(f.ftgate), p4.C(32)),
		p4.And(f.ftgate, p4.F(f.ftgate), p4.P(5)),
		p4.Mov(f.k, p4.P(6)),
	}
	l.Prog.AddAction(p4.NewAction("bind_flow_dst", 7, append(append(append([]p4.Op{}, common...),
		p4.Shr(f.val, p4.F(std.IPv4Dst), p4.P(2))),
		tail...)...))
	l.Prog.AddAction(p4.NewAction("bind_flow_src", 7, append(append(append([]p4.Op{}, common...),
		p4.Shr(f.val, p4.F(std.IPv4Src), p4.P(2))),
		tail...)...))
	// bind_flow_pair(ftBase, slot, zero, epochShift, ttl, sampleMask, k):
	// key = src<<32 | dst — the flow-pair view, the closest the parsed
	// headers come to a 5-tuple. P2 is ignored (kept for a uniform layout).
	l.Prog.AddAction(p4.NewAction("bind_flow_pair", 7, append(append(append([]p4.Op{}, common...),
		p4.Shl(f.t1, p4.F(std.IPv4Src), p4.C(32)),
		p4.Or(f.val, p4.F(f.t1), p4.F(std.IPv4Dst))),
		tail...)...))

	add := func(name string, ops ...p4.Op) {
		l.Prog.AddAction(p4.NewAction(name, 0, ops...))
	}
	slot := p4.F(f.slotid)
	halfMask := uint64(size/2) - 1
	half := uint64(size / 2)

	// flow_probe: both candidate buckets (left half by hash 1, right half by
	// hash 2), their keys and stamps, plus the liveness ages. fts is the
	// stamp a touch would write (epoch + 1; 0 stays reserved for empty), and
	// fta{1,2} = fts − stamp wraps huge for empty buckets — the explicit
	// stamp≠0 guards in the resolution tree run first.
	add("flow_probe",
		p4.Hash(f.h1, ftHashLeft, p4.F(f.val), ^uint64(0)),
		p4.Shr(f.h1, p4.F(f.h1), p4.C(32)),
		p4.And(f.h1, p4.F(f.h1), p4.C(halfMask)),
		p4.Add(f.h1, p4.F(f.base), p4.F(f.h1)),
		p4.Hash(f.h2, ftHashRight, p4.F(f.val), ^uint64(0)),
		p4.Shr(f.h2, p4.F(f.h2), p4.C(32)),
		p4.And(f.h2, p4.F(f.h2), p4.C(halfMask)),
		p4.Add(f.h2, p4.F(f.h2), p4.C(half)),
		p4.Add(f.h2, p4.F(f.base), p4.F(f.h2)),
		p4.RegRead(f.k1, RegFTKeys, p4.F(f.h1)),
		p4.RegRead(f.u1, RegFTStamp, p4.F(f.h1)),
		p4.RegRead(f.k2, RegFTKeys, p4.F(f.h2)),
		p4.RegRead(f.u2, RegFTStamp, p4.F(f.h2)),
		p4.Add(f.fts, p4.F(f.curint), p4.C(1)),
		p4.Sub(f.fta1, p4.F(f.fts), p4.F(f.u1)),
		p4.Sub(f.fta2, p4.F(f.fts), p4.F(f.u2)),
	)
	// flow_sel1/2: the key owns this live bucket — refresh the stamp.
	add("flow_sel1",
		p4.RegWrite(RegFTStamp, p4.F(f.h1), p4.F(f.fts)),
		p4.Mov(f.idx, p4.F(f.h1)),
		p4.Mov(f.ok, p4.C(1)),
	)
	add("flow_sel2",
		p4.RegWrite(RegFTStamp, p4.F(f.h2), p4.F(f.fts)),
		p4.Mov(f.idx, p4.F(f.h2)),
		p4.Mov(f.ok, p4.C(1)),
	)
	// flow_evict1/2: reclaim an expired bucket — subtract the dead flow's
	// moment contribution (N−1, Xsum−c, Xsumsq−c²), zero its count cell and
	// charge the eviction ledger. The claim action follows.
	evict := func(name string, h p4.FieldID) {
		add(name,
			p4.RegRead(f.old, RegFTCnt, p4.F(h)),
			p4.Mul(f.oldsq, p4.F(f.old), p4.F(f.old)),
			p4.RegRead(f.n, RegN, slot),
			p4.SatSub(f.n, p4.F(f.n), p4.C(1)),
			p4.RegWrite(RegN, slot, p4.F(f.n)),
			p4.RegRead(f.xsum, RegXsum, slot),
			p4.SatSub(f.xsum, p4.F(f.xsum), p4.F(f.old)),
			p4.RegWrite(RegXsum, slot, p4.F(f.xsum)),
			p4.RegRead(f.xsumsq, RegXsumsq, slot),
			p4.SatSub(f.xsumsq, p4.F(f.xsumsq), p4.F(f.oldsq)),
			p4.RegWrite(RegXsumsq, slot, p4.F(f.xsumsq)),
			p4.RegWrite(RegFTCnt, p4.F(h), p4.C(0)),
			p4.RegRead(f.t2, RegFTEvt, slot),
			p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
			p4.RegWrite(RegFTEvt, slot, p4.F(f.t2)),
		)
	}
	evict("flow_evict1", f.h1)
	evict("flow_evict2", f.h2)
	// flow_claim1/2: take the bucket (its count cell is 0: never used, or
	// zeroed by the eviction that just ran).
	claim := func(name string, h p4.FieldID) {
		add(name,
			p4.RegWrite(RegFTKeys, p4.F(h), p4.F(f.val)),
			p4.RegWrite(RegFTStamp, p4.F(h), p4.F(f.fts)),
			p4.RegRead(f.t2, RegFTAdm, slot),
			p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
			p4.RegWrite(RegFTAdm, slot, p4.F(f.t2)),
			p4.Mov(f.idx, p4.F(h)),
			p4.Mov(f.ok, p4.C(1)),
		)
	}
	claim("flow_claim1", f.h1)
	claim("flow_claim2", f.h2)
	add("flow_reject",
		p4.RegRead(f.t2, RegFTRej, slot),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.RegWrite(RegFTRej, slot, p4.F(f.t2)),
		p4.Mov(f.ok, p4.C(0)),
	)
	add("flow_shed",
		p4.RegRead(f.t2, RegFTShed, slot),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.RegWrite(RegFTShed, slot, p4.F(f.t2)),
		p4.Mov(f.ok, p4.C(0)),
	)
	// flow_load/flow_accum: the freq_load/freq_accum pattern against the
	// flow-count register instead of the dense counter array.
	add("flow_load",
		p4.RegRead(f.f, RegFTCnt, p4.F(f.idx)),
		p4.RegRead(f.n, RegN, slot),
		p4.RegRead(f.xsum, RegXsum, slot),
		p4.RegRead(f.xsumsq, RegXsumsq, slot),
	)
	add("flow_accum",
		p4.Add(f.xsum, p4.F(f.xsum), p4.C(1)),
		p4.RegWrite(RegXsum, slot, p4.F(f.xsum)),
		p4.Shl(f.t2, p4.F(f.f), p4.C(1)),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.Add(f.xsumsq, p4.F(f.xsumsq), p4.F(f.t2)),
		p4.RegWrite(RegXsumsq, slot, p4.F(f.xsumsq)),
		p4.Add(f.fnew, p4.F(f.f), p4.C(1)),
		p4.RegWrite(RegFTCnt, p4.F(f.idx), p4.F(f.fnew)),
	)
}

// flowBlock resolves the bucket with the exact decision tree of
// flowtable.Table.Touch — hit-left, hit-right, coin, self-stale reclaim,
// empty-left, empty-right, expired-left, expired-right, reject — then runs
// the shared moment/variance/check pipeline on the resolved index.
func (l *Library) flowBlock() []p4.Stmt {
	f := &l.f
	eqf := func(a, b p4.FieldID) p4.Cond { return p4.Cond{A: p4.F(a), Op: p4.CmpEq, B: p4.F(b)} }
	fge := func(a, b p4.FieldID) p4.Cond { return p4.Cond{A: p4.F(a), Op: p4.CmpGe, B: p4.F(b)} }
	// general: the key owns no bucket (or only an empty-keyed one) — the
	// coin-gated claim cascade of Table.Touch. Repeated verbatim under three
	// leaves of the key-match tree; actions are shared, only the Call
	// skeleton duplicates.
	general := func() []p4.Stmt {
		return []p4.Stmt{
			p4.If(eq(f.ftgate, 0),
				p4.If(eq(f.u1, 0),
					p4.Call("flow_claim1"),
				).WithElse(
					p4.If(eq(f.u2, 0),
						p4.Call("flow_claim2"),
					).WithElse(
						p4.If(fge(f.fta1, f.cap),
							p4.Call("flow_evict1"),
							p4.Call("flow_claim1"),
						).WithElse(
							p4.If(fge(f.fta2, f.cap),
								p4.Call("flow_evict2"),
								p4.Call("flow_claim2"),
							).WithElse(
								p4.Call("flow_reject"),
							),
						),
					),
				),
			).WithElse(
				p4.Call("flow_shed"),
			),
		}
	}
	// selfStale: the key's own bucket expired — reclaim it in place (still
	// coin-gated: an expired flow re-admits like a new one).
	selfStale := func(evict, claim string) []p4.Stmt {
		return []p4.Stmt{
			p4.If(eq(f.ftgate, 0),
				p4.Call(evict),
				p4.Call(claim),
			).WithElse(
				p4.Call("flow_shed"),
			),
		}
	}
	// ownBucket: the key matches bucket i and the bucket is in use — a hit
	// if still live, otherwise an in-place coin-gated restart.
	ownBucket := func(age p4.FieldID, sel, evict, claim string) p4.IfStmt {
		return p4.If(flt(age, f.cap),
			p4.Call(sel),
		).WithElse(selfStale(evict, claim)...)
	}
	resolve := []p4.Stmt{
		p4.Call("flow_probe"),
		p4.If(eqf(f.k1, f.val),
			p4.If(ne(f.u1, 0),
				ownBucket(f.fta1, "flow_sel1", "flow_evict1", "flow_claim1"),
			).WithElse(general()...),
		).WithElse(
			p4.If(eqf(f.k2, f.val),
				p4.If(ne(f.u2, 0),
					ownBucket(f.fta2, "flow_sel2", "flow_evict2", "flow_claim2"),
				).WithElse(general()...),
			).WithElse(general()...),
		),
	}
	update := []p4.Stmt{
		p4.Call("flow_load"),
		p4.If(eq(f.f, 0), p4.Call("freq_incr_n")),
		p4.Call("flow_accum"),
	}
	update = append(update, l.varStmts()...)
	if !l.Opts.NoVariance {
		update = append(update, p4.If(ne(f.k, 0), p4.Call("freq_arm_check")))
	}
	return append(resolve, p4.If(eq(f.ok, 1), update...))
}

// BindFlowDst tracks flows keyed by (ipv4.dst >> shift) in the slot's
// 2-left flow table: epochShift sets the expiry clock (epoch = ts >>
// epochShift), ttl how many epochs an entry survives after its last touch,
// sampleShift the 2^-sampleShift admission coin for new keys (0 admits
// every flow), and k ≥ 1 arms the mean+kσ hot-flow check whose digest names
// the key.
func (rt *Runtime) BindFlowDst(stage, slot int, m Match, shift, epochShift uint, ttl uint64, sampleShift uint, k uint64) (p4.EntryID, error) {
	return rt.bindFlow(stage, slot, m, "bind_flow_dst", shift, epochShift, ttl, sampleShift, k)
}

// BindFlowSrc tracks flows keyed by (ipv4.src >> shift) — the per-source
// view (super-spreaders, DDoS sources).
func (rt *Runtime) BindFlowSrc(stage, slot int, m Match, shift, epochShift uint, ttl uint64, sampleShift uint, k uint64) (p4.EntryID, error) {
	return rt.bindFlow(stage, slot, m, "bind_flow_src", shift, epochShift, ttl, sampleShift, k)
}

// BindFlowPair tracks flows keyed by src<<32|dst, the flow-pair view.
func (rt *Runtime) BindFlowPair(stage, slot int, m Match, epochShift uint, ttl uint64, sampleShift uint, k uint64) (p4.EntryID, error) {
	return rt.bindFlow(stage, slot, m, "bind_flow_pair", 0, epochShift, ttl, sampleShift, k)
}

func (rt *Runtime) bindFlow(stage, slot int, m Match, action string, shift, epochShift uint, ttl uint64, sampleShift uint, k uint64) (p4.EntryID, error) {
	if !rt.lib.Opts.FlowTable {
		return 0, fmt.Errorf("stat4p4: library built without Options.FlowTable")
	}
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if shift > 32 {
		return 0, fmt.Errorf("stat4p4: flow shift %d out of range", shift)
	}
	if epochShift >= 64 {
		return 0, fmt.Errorf("stat4p4: epoch shift %d out of range", epochShift)
	}
	if ttl == 0 {
		return 0, fmt.Errorf("stat4p4: flow TTL must be ≥ 1 epoch")
	}
	if sampleShift > 32 {
		return 0, fmt.Errorf("stat4p4: sample shift %d out of range", sampleShift)
	}
	base := uint64(slot * rt.lib.Opts.FlowTableSize)
	mask := uint64(1)<<sampleShift - 1
	return rt.insert(stage, m, action,
		[]uint64{base, uint64(slot), uint64(shift), uint64(epochShift), ttl, mask, k})
}

// FlowEntry is one occupied flow bucket as the control plane reads it.
type FlowEntry struct {
	Key   uint64
	Count uint64
	// Stamp is the entry's last-touch epoch + 1.
	Stamp uint64
}

// FlowStats is the control-plane admission ledger of one slot's flow table.
// Occupied counts buckets holding an entry, live or expired.
type FlowStats struct {
	Occupied uint64
	Admitted uint64
	Evicted  uint64
	Rejected uint64
	Shed     uint64
	Capacity uint64
}

// ReadFlows snapshots a slot's occupied flow buckets, heaviest first.
func (rt *Runtime) ReadFlows(slot int) ([]FlowEntry, error) {
	if !rt.lib.Opts.FlowTable {
		return nil, fmt.Errorf("stat4p4: library built without Options.FlowTable")
	}
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return nil, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	keys, err := rt.sw.Register(RegFTKeys)
	if err != nil {
		return nil, err
	}
	stamps, err := rt.sw.Register(RegFTStamp)
	if err != nil {
		return nil, err
	}
	counts, err := rt.sw.Register(RegFTCnt)
	if err != nil {
		return nil, err
	}
	base := slot * rt.lib.Opts.FlowTableSize
	var out []FlowEntry
	for i := 0; i < rt.lib.Opts.FlowTableSize; i++ {
		s, _ := stamps.Read(base + i)
		if s == 0 {
			continue
		}
		k, _ := keys.Read(base + i)
		c, _ := counts.Read(base + i)
		out = append(out, FlowEntry{Key: k, Count: c, Stamp: s})
	}
	sortFlows(out)
	return out, nil
}

// ReadFlowStats reads a slot's admission ledger and occupancy.
func (rt *Runtime) ReadFlowStats(slot int) (FlowStats, error) {
	if !rt.lib.Opts.FlowTable {
		return FlowStats{}, fmt.Errorf("stat4p4: library built without Options.FlowTable")
	}
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return FlowStats{}, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	cell := func(name string) uint64 {
		reg, err := rt.sw.Register(name)
		if err != nil {
			return 0
		}
		v, _ := reg.Read(slot)
		return v
	}
	st := FlowStats{
		Admitted: cell(RegFTAdm),
		Evicted:  cell(RegFTEvt),
		Rejected: cell(RegFTRej),
		Shed:     cell(RegFTShed),
		Capacity: uint64(rt.lib.Opts.FlowTableSize),
	}
	// Occupied = claims minus reclaims, the conservation half of the
	// flowtable ledger invariant.
	st.Occupied = st.Admitted - st.Evicted
	return st, nil
}

// MergedFlows merges the shards' flow tables by key (counts add, stamps
// take the freshest) — the controller-side merge for replica-local buckets,
// same contract as MergedHeavyHitters.
func (sr *ShardedRuntime) MergedFlows(slot int) ([]FlowEntry, error) {
	type acc struct{ count, stamp uint64 }
	byKey := make(map[uint64]acc)
	for i, rt := range sr.rts {
		entries, err := rt.ReadFlows(slot)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		for _, e := range entries {
			a := byKey[e.Key]
			a.count += e.Count
			if e.Stamp > a.stamp {
				a.stamp = e.Stamp
			}
			byKey[e.Key] = a
		}
	}
	out := make([]FlowEntry, 0, len(byKey))
	for k, a := range byKey {
		out = append(out, FlowEntry{Key: k, Count: a.count, Stamp: a.stamp})
	}
	sortFlows(out)
	return out, nil
}

// MergedFlowStats sums the shard ledgers (exact: every flow is owned by one
// shard) and the per-slot capacities.
func (sr *ShardedRuntime) MergedFlowStats(slot int) (FlowStats, error) {
	var m FlowStats
	for i, rt := range sr.rts {
		st, err := rt.ReadFlowStats(slot)
		if err != nil {
			return FlowStats{}, fmt.Errorf("shard %d: %w", i, err)
		}
		m.Occupied += st.Occupied
		m.Admitted += st.Admitted
		m.Evicted += st.Evicted
		m.Rejected += st.Rejected
		m.Shed += st.Shed
		m.Capacity += st.Capacity
	}
	return m, nil
}

// BindFlowDst fans Runtime.BindFlowDst out to every shard.
func (sr *ShardedRuntime) BindFlowDst(stage, slot int, m Match, shift, epochShift uint, ttl uint64, sampleShift uint, k uint64) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFlowDst(stage, slot, m, shift, epochShift, ttl, sampleShift, k)
	})
}

// BindFlowSrc fans Runtime.BindFlowSrc out to every shard.
func (sr *ShardedRuntime) BindFlowSrc(stage, slot int, m Match, shift, epochShift uint, ttl uint64, sampleShift uint, k uint64) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFlowSrc(stage, slot, m, shift, epochShift, ttl, sampleShift, k)
	})
}

// BindFlowPair fans Runtime.BindFlowPair out to every shard.
func (sr *ShardedRuntime) BindFlowPair(stage, slot int, m Match, epochShift uint, ttl uint64, sampleShift uint, k uint64) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFlowPair(stage, slot, m, epochShift, ttl, sampleShift, k)
	})
}

// sortFlows orders entries by descending count, then ascending key.
func sortFlows(entries []FlowEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
}
