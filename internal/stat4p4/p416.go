package stat4p4

import (
	"fmt"
	"sort"
	"strings"

	"stat4/internal/p4"
)

// EmitP416 translates the emitted IR program into P4-16 source for the v1model
// architecture — the form the paper's artifact ships ("a P4 library that bmv2
// programs can import"). The translation is mechanical:
//
//   - every m.* metadata field becomes a bit<W> member of metadata_t
//     (dots become underscores);
//   - standard fields map onto the v1model parser's headers and intrinsic
//     metadata (ipv4.dst → hdr.ipv4.dstAddr, std.ts_ns → the ingress
//     timestamp, std.egress → standard_metadata.egress_spec, …), with the
//     derived bits (tcp.syn, the biased echo value, wire length) computed in
//     a preamble at the top of the ingress control;
//   - registers, actions, tables and the control flow translate one to one;
//     OpHash becomes a hash() extern call and OpDigest a digest() call.
//
// The output is intended for review and for carrying the design back to a
// real toolchain; this repository's simulator remains the executable
// semantics (the module is offline, so the text is not run through p4c).
func EmitP416(l *Library) string {
	g := &p416{lib: l, prog: l.Prog}
	return g.emit()
}

type p416 struct {
	lib  *Library
	prog *p4.Program
	b    strings.Builder
}

func (g *p416) pf(format string, args ...any) { fmt.Fprintf(&g.b, format, args...) }

// fieldExpr maps a FieldID to its P4-16 expression.
func (g *p416) fieldExpr(id p4.FieldID) string {
	std := g.lib.Std
	switch id {
	case std.InPort:
		return "(bit<16>)standard_metadata.ingress_port"
	case std.TsNs:
		return "meta.ts_ns" // widened from the 48-bit intrinsic in the preamble
	case std.WireLen:
		return "standard_metadata.packet_length"
	case std.Egress:
		return "standard_metadata.egress_spec"
	case std.Drop:
		return "meta.do_drop"
	case std.EthType:
		return "hdr.ethernet.etherType"
	case std.IPv4Valid:
		return "meta.ipv4_valid"
	case std.IPv4Src:
		return "hdr.ipv4.srcAddr"
	case std.IPv4Dst:
		return "hdr.ipv4.dstAddr"
	case std.IPv4Proto:
		return "hdr.ipv4.protocol"
	case std.IPv4Len:
		return "hdr.ipv4.totalLen"
	case std.TCPValid:
		return "meta.tcp_valid"
	case std.TCPSport:
		return "hdr.tcp.srcPort"
	case std.TCPDport:
		return "hdr.tcp.dstPort"
	case std.TCPFlags:
		return "hdr.tcp.flags"
	case std.TCPSyn:
		return "meta.tcp_syn"
	case std.UDPValid:
		return "meta.udp_valid"
	case std.UDPSport:
		return "hdr.udp.srcPort"
	case std.UDPDport:
		return "hdr.udp.dstPort"
	case std.EchoValid:
		return "meta.echo_valid"
	case std.EchoValue:
		return "meta.echo_value"
	}
	return "meta." + sanitize(g.prog.Fields[id].Name)
}

// metaFields lists the fields that live in metadata_t (everything that is
// not mapped onto a header or intrinsic), plus the derived preamble fields.
func (g *p416) metaFields() []p4.FieldID {
	std := g.lib.Std
	mapped := map[p4.FieldID]bool{
		std.InPort: true, std.WireLen: true, std.Egress: true,
		std.EthType: true, std.IPv4Src: true, std.IPv4Dst: true,
		std.IPv4Proto: true, std.IPv4Len: true, std.TCPSport: true,
		std.TCPDport: true, std.TCPFlags: true, std.UDPSport: true,
		std.UDPDport: true,
	}
	var out []p4.FieldID
	for i := range g.prog.Fields {
		if !mapped[p4.FieldID(i)] {
			out = append(out, p4.FieldID(i))
		}
	}
	return out
}

func sanitize(name string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

func (g *p416) emit() string {
	g.pf("// Generated from the Stat4 IR program %q — do not edit.\n", g.prog.Name)
	g.pf("// Options: slots=%d size=%d stages=%d echo=%v strict=%v sparse=%v\n\n",
		g.lib.Opts.Slots, g.lib.Opts.Size, g.lib.Opts.Stages,
		g.lib.Opts.Echo, g.lib.Opts.Strict, g.lib.Opts.Sparse)
	g.pf("#include <core.p4>\n#include <v1model.p4>\n\n")
	g.pf("#define STAT_COUNTER_NUM  %d\n", g.lib.Opts.Slots)
	g.pf("#define STAT_COUNTER_SIZE %d\n\n", g.lib.Opts.Size)

	g.headers()
	g.metadata()
	g.parser()
	g.ingress()
	g.boilerplate()
	return g.b.String()
}

func (g *p416) headers() {
	g.pf(`header ethernet_t {
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> totalLen;
    bit<16> identification;
    bit<3>  flags;
    bit<13> fragOffset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdrChecksum;
    bit<32> srcAddr;
    bit<32> dstAddr;
}

header tcp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<32> seqNo;
    bit<32> ackNo;
    bit<4>  dataOffset;
    bit<4>  res;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgentPtr;
}

header udp_t {
    bit<16> srcPort;
    bit<16> dstPort;
    bit<16> length_;
    bit<16> checksum;
}

header echo_t {
    bit<16> value;
}

struct headers_t {
    ethernet_t ethernet;
    ipv4_t     ipv4;
    tcp_t      tcp;
    udp_t      udp;
    echo_t     echo;
}

`)
}

func (g *p416) metadata() {
	g.pf("struct metadata_t {\n")
	g.pf("    bit<64> ts_ns;\n")
	std := g.lib.Std
	for _, id := range g.metaFields() {
		f := g.prog.Fields[id]
		name := sanitize(f.Name)
		switch id {
		case std.TsNs:
			continue // declared above
		case std.Drop:
			name = "do_drop"
		case std.IPv4Valid:
			name = "ipv4_valid"
		case std.TCPValid:
			name = "tcp_valid"
		case std.TCPSyn:
			name = "tcp_syn"
		case std.UDPValid:
			name = "udp_valid"
		case std.EchoValid:
			name = "echo_valid"
		case std.EchoValue:
			name = "echo_value"
		}
		g.pf("    bit<%d> %s;\n", f.Width, name)
	}
	g.pf("}\n\n")
}

func (g *p416) parser() {
	g.pf(`parser Stat4Parser(packet_in pkt, out headers_t hdr,
                   inout metadata_t meta, inout standard_metadata_t standard_metadata) {
    state start {
        pkt.extract(hdr.ethernet);
        transition select(hdr.ethernet.etherType) {
            0x0800: parse_ipv4;
            0x88B5: parse_echo;
            default: accept;
        }
    }
    state parse_ipv4 {
        pkt.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6:  parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp { pkt.extract(hdr.tcp); transition accept; }
    state parse_udp { pkt.extract(hdr.udp); transition accept; }
    state parse_echo { pkt.extract(hdr.echo); transition accept; }
}

`)
}

func (g *p416) registers() {
	for _, r := range g.prog.Registers {
		g.pf("    register<bit<%d>>(%d) %s;\n", r.Width, r.Cells, sanitize(r.Name))
	}
	g.pf("\n")
}

func (g *p416) refExpr(r p4.Ref) string {
	switch r.Kind {
	case p4.RefConst:
		if r.Const > 4096 {
			return fmt.Sprintf("64w0x%x", r.Const)
		}
		return fmt.Sprintf("%d", r.Const)
	case p4.RefField:
		return g.fieldExpr(r.Field)
	case p4.RefParam:
		return fmt.Sprintf("p%d", r.Param)
	}
	return "0"
}

// castTo wraps an expression in a cast to the destination field's width when
// the operand widths might differ (P4-16 is strict about widths; casting
// unconditionally is always legal).
func (g *p416) castTo(id p4.FieldID, expr string) string {
	return fmt.Sprintf("(bit<%d>)(%s)", g.prog.Fields[id].Width, expr)
}

func (g *p416) opStmt(op p4.Op) string {
	dst := func() string { return g.fieldExpr(op.Dst.Field) }
	a := func() string { return g.refExpr(op.A) }
	b := func() string { return g.refExpr(op.B) }
	set := func(expr string) string {
		return fmt.Sprintf("%s = %s;", dst(), g.castTo(op.Dst.Field, expr))
	}
	switch op.Code {
	case p4.OpMov:
		return set(a())
	case p4.OpAdd:
		return set(a() + " + " + b())
	case p4.OpSub:
		return set(a() + " - " + b())
	case p4.OpMul:
		return set(a() + " * " + b())
	case p4.OpSatAdd:
		return set(a() + " |+| " + b())
	case p4.OpSatSub:
		return set(a() + " |-| " + b())
	case p4.OpAnd:
		return set(a() + " & " + b())
	case p4.OpOr:
		return set(a() + " | " + b())
	case p4.OpXor:
		return set(a() + " ^ " + b())
	case p4.OpNot:
		return set("~" + a())
	case p4.OpShl:
		return set(fmt.Sprintf("%s << (bit<8>)(%s)", a(), b()))
	case p4.OpShr:
		return set(fmt.Sprintf("%s >> (bit<8>)(%s)", a(), b()))
	case p4.OpRegRead:
		return fmt.Sprintf("%s.read(%s, (bit<32>)(%s));", sanitize(op.Reg), dst(), a())
	case p4.OpRegWrite:
		return fmt.Sprintf("%s.write((bit<32>)(%s), %s);", sanitize(op.Reg), a(), b())
	case p4.OpHash:
		return fmt.Sprintf(
			"hash(%s, HashAlgorithm.crc32_custom, 64w0, { %s, 8w%d }, 64w0x%x + 64w1);",
			dst(), a(), op.HashID, op.B.Const)
	case p4.OpDigest:
		fields := make([]string, len(op.Fields))
		for i, f := range op.Fields {
			fields[i] = g.fieldExpr(f)
		}
		return fmt.Sprintf("digest<digest%d_t>(1, { %s });", op.DigestID, strings.Join(fields, ", "))
	case p4.OpSetEgress:
		return fmt.Sprintf("standard_metadata.egress_spec = (bit<9>)(%s);", a())
	case p4.OpDrop:
		return "mark_to_drop(standard_metadata); meta.do_drop = 1;"
	}
	return "// unsupported op"
}

func (g *p416) actions() {
	names := make([]string, 0, len(g.prog.Actions))
	byName := map[string]*p4.Action{}
	for _, a := range g.prog.Actions {
		names = append(names, a.Name)
		byName[a.Name] = a
	}
	sort.Strings(names)
	for _, n := range names {
		a := byName[n]
		params := make([]string, a.NumParams)
		for i := range params {
			params[i] = fmt.Sprintf("bit<64> p%d", i)
		}
		g.pf("    action %s(%s) {\n", sanitize(a.Name), strings.Join(params, ", "))
		for _, op := range a.Ops {
			g.pf("        %s\n", g.opStmt(op))
		}
		g.pf("    }\n")
	}
	g.pf("\n")
}

func (g *p416) tables() {
	kindNames := map[p4.MatchKind]string{
		p4.MatchExact: "exact", p4.MatchLPM: "lpm", p4.MatchTernary: "ternary",
	}
	for _, t := range g.prog.Tables {
		g.pf("    table %s {\n        key = {\n", sanitize(t.Name))
		for _, k := range t.Keys {
			g.pf("            %s : %s;\n", g.fieldExpr(k.Field), kindNames[k.Kind])
		}
		g.pf("        }\n        actions = {\n")
		for _, an := range t.ActionNames {
			g.pf("            %s;\n", sanitize(an))
		}
		g.pf("        }\n")
		if t.DefaultAction != "" {
			args := make([]string, len(t.DefaultArgs))
			for i, v := range t.DefaultArgs {
				args[i] = fmt.Sprintf("%d", v)
			}
			g.pf("        default_action = %s(%s);\n", sanitize(t.DefaultAction), strings.Join(args, ", "))
		}
		g.pf("        size = %d;\n    }\n", t.MaxEntries)
	}
	g.pf("\n")
}

func (g *p416) condExpr(c p4.Cond) string {
	sym := map[p4.CmpOp]string{
		p4.CmpEq: "==", p4.CmpNe: "!=", p4.CmpLt: "<", p4.CmpLe: "<=",
		p4.CmpGt: ">", p4.CmpGe: ">=",
	}[c.Op]
	// Cast both sides to 64 bits so comparisons of differently sized
	// operands type-check.
	return fmt.Sprintf("(bit<64>)(%s) %s (bit<64>)(%s)", g.refExpr(c.A), sym, g.refExpr(c.B))
}

func (g *p416) stmts(list []p4.Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, s := range list {
		switch st := s.(type) {
		case p4.ApplyStmt:
			g.pf("%s%s.apply();\n", indent, sanitize(st.Table))
		case p4.CallStmt:
			args := make([]string, len(st.Args))
			for i, v := range st.Args {
				args[i] = fmt.Sprintf("%d", v)
			}
			g.pf("%s%s(%s);\n", indent, sanitize(st.Action), strings.Join(args, ", "))
		case p4.IfStmt:
			g.pf("%sif (%s) {\n", indent, g.condExpr(st.Cond))
			g.stmts(st.Then, depth+1)
			if len(st.Else) > 0 {
				g.pf("%s} else {\n", indent)
				g.stmts(st.Else, depth+1)
			}
			g.pf("%s}\n", indent)
		}
	}
}

func (g *p416) ingress() {
	// Digest record types (one per digest ID actually used).
	ids := map[int][]p4.FieldID{}
	for _, a := range g.prog.Actions {
		for _, op := range a.Ops {
			if op.Code == p4.OpDigest {
				ids[op.DigestID] = op.Fields
			}
		}
	}
	digestIDs := make([]int, 0, len(ids))
	for id := range ids {
		digestIDs = append(digestIDs, id)
	}
	sort.Ints(digestIDs)
	for _, id := range digestIDs {
		g.pf("struct digest%d_t {\n", id)
		for i, f := range ids[id] {
			g.pf("    bit<%d> f%d; // %s\n", g.prog.Fields[f].Width, i, g.prog.Fields[f].Name)
		}
		g.pf("}\n\n")
	}

	g.pf("control Stat4Ingress(inout headers_t hdr, inout metadata_t meta,\n")
	g.pf("                     inout standard_metadata_t standard_metadata) {\n")
	g.registers()
	g.actions()
	g.tables()
	g.pf(`    apply {
        // Preamble: derived fields the IR parser computes.
        meta.ts_ns = (bit<64>)standard_metadata.ingress_global_timestamp * 1000; // us -> ns
        if (hdr.ipv4.isValid())  { meta.ipv4_valid = 1; }
        if (hdr.tcp.isValid())   { meta.tcp_valid = 1; }
        if (hdr.udp.isValid())   { meta.udp_valid = 1; }
        if (hdr.tcp.isValid() && (hdr.tcp.flags & 0x02) == 0x02 && (hdr.tcp.flags & 0x10) == 0) {
            meta.tcp_syn = 1;
        }
        if (hdr.echo.isValid()) {
            meta.echo_valid = 1;
            meta.echo_value = (bit<17>)hdr.echo.value + 17w32768;
        }

`)
	g.stmts(g.prog.Control, 2)
	g.pf("    }\n}\n\n")
}

func (g *p416) boilerplate() {
	g.pf(`control Stat4Egress(inout headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t standard_metadata) {
    apply { }
}

control Stat4VerifyChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}

control Stat4ComputeChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply {
        update_checksum(hdr.ipv4.isValid(),
            { hdr.ipv4.version, hdr.ipv4.ihl, hdr.ipv4.diffserv, hdr.ipv4.totalLen,
              hdr.ipv4.identification, hdr.ipv4.flags, hdr.ipv4.fragOffset,
              hdr.ipv4.ttl, hdr.ipv4.protocol, hdr.ipv4.srcAddr, hdr.ipv4.dstAddr },
            hdr.ipv4.hdrChecksum, HashAlgorithm.csum16);
    }
}

control Stat4Deparser(packet_out pkt, in headers_t hdr) {
    apply {
        pkt.emit(hdr.ethernet);
        pkt.emit(hdr.ipv4);
        pkt.emit(hdr.tcp);
        pkt.emit(hdr.udp);
        pkt.emit(hdr.echo);
    }
}

V1Switch(
    Stat4Parser(),
    Stat4VerifyChecksum(),
    Stat4Ingress(),
    Stat4ComputeChecksum(),
    Stat4Deparser()
) main;
`)
}
