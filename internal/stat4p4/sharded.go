package stat4p4

import (
	"fmt"
	"sort"

	"stat4/internal/core"
	"stat4/internal/intstat"
	"stat4/internal/p4"
	"stat4/internal/packet"
)

// This file is the controller-side face of the sharded datapath: a
// ShardedRuntime drives N replicas of the emitted program behind
// p4.ShardedSwitch, fanning every control-plane operation out to all shards,
// and CanonicalizeSnapshot turns any snapshot of the program's registers —
// one shard's, a merged one, a serial reference's — into a canonical form in
// which every derived register is a pure function of the counter arrays.
//
// Canonicalisation is what makes "merged snapshots byte-identical to serial"
// a theorem rather than a hope. The counter arrays are additive, so merged
// counters equal serial counters exactly. The emitted program's N, Xsum and
// Xsumsq are exactly determined by the final counters (N counts non-zero
// cells, Xsum sums them, Xsumsq sums their squares, all modulo the cell
// width — the per-packet incremental identities telescope), and variance and
// σ are in turn pure functions of those, recomputed with the emitted
// program's own arithmetic (wrapping multiplies and SatSub, or the strict
// shift trees). Only the percentile markers and their movement counters are
// path-dependent — which equilibrium a marker reaches, and how many steps it
// took, depend on packet order — so the canonical form re-derives markers by
// the bounded walk (core.RederiveMarker) and zeroes movement counters.
// Applying the same pure function to both sides yields byte-identical
// snapshots; the only approximation is that canonical marker positions can
// differ from a raw serial register by the marker's usual one-step lag.

// SlotBinding records the percentile weights a frequency slot was bound
// with, the one piece of binding state canonicalisation needs. Entropy marks
// slots whose contribution cells and sum must also be rebuilt.
type SlotBinding struct {
	Slot    int
	PA, PB  uint64
	Entropy bool
}

// slotScalars is the canonical scalar block of one frequency slot.
type slotScalars struct {
	n, xsum, xsumsq uint64
	varv, sd        uint64
	med, low, high  uint64
	medinit         uint64
}

func (l *Library) cellMask() uint64 { return intstat.Mask(uint(l.Opts.CellWidth)) }

// recomputeSlot derives the canonical scalars from a slot's counter cells,
// using the emitted program's own arithmetic so the result is bit-identical
// to what the data plane stores for the same counters: 64-bit wrapping
// multiplies with saturating subtraction (or the strict one-term shift
// approximations), the Figure 2 square root, and register-width masking.
//
// Exactness caveat, shared with the data plane: N is recovered as the count
// of non-zero cells, which is only correct while no counter has wrapped the
// cell width back to zero — the same point at which the in-switch moments
// stop being meaningful.
func (l *Library) recomputeSlot(counters []uint64, pa, pb uint64) slotScalars {
	mask := l.cellMask()
	var s slotScalars
	for _, f := range counters {
		if f != 0 {
			s.n++
		}
		s.xsum += f
		s.xsumsq += f * f
	}
	s.n &= mask
	s.xsum &= mask
	s.xsumsq &= mask
	if !l.Opts.NoVariance {
		var nss, ss uint64
		if l.Opts.Strict {
			if s.n != 0 {
				nss = s.xsumsq << uint(intstat.MSB(s.n))
			}
			if s.xsum != 0 {
				ss = s.xsum << uint(intstat.MSB(s.xsum))
			}
		} else {
			nss = s.n * s.xsumsq
			ss = s.xsum * s.xsum
		}
		sqin := intstat.SatSub(nss, ss)
		s.varv = sqin & mask
		s.sd = intstat.SqrtApprox(sqin) & mask
	}
	if idx, low, high, ok := core.RederiveMarker(counters, pa, pb); ok {
		s.med = idx & mask
		s.low = low & mask
		s.high = high & mask
		s.medinit = 1
	}
	return s
}

// CanonicalizeSnapshot rewrites a snapshot of the emitted program's
// registers into canonical form, in place: every MergeDerived register is
// zeroed, then for each listed frequency slot the scalar block (N, Xsum,
// Xsumsq, variance, σ, marker position and masses, marker-seeded flag) is
// recomputed from the slot's counter cells. Two switches that saw the same
// multiset of packets — a serial switch and the merge of shards that split
// its stream — canonicalise to byte-identical snapshots.
//
// Window slots are not listed: their scalar state is clock-driven, and
// cross-shard window merging is the shared-clock core.Window.MergeFrom
// contract, not a register rewrite.
func (l *Library) CanonicalizeSnapshot(snap *p4.Snapshot, slots []SlotBinding) {
	for _, rd := range l.Prog.Registers {
		if rd.Merge != p4.MergeDerived {
			continue
		}
		cells := snap.Registers[rd.Name]
		for i := range cells {
			cells[i] = 0
		}
	}
	counters := snap.Registers[RegCounters]
	for _, sb := range slots {
		base := sb.Slot * l.Opts.Size
		s := l.recomputeSlot(counters[base:base+l.Opts.Size], sb.PA, sb.PB)
		set := func(reg string, v uint64) { snap.Registers[reg][sb.Slot] = v }
		set(RegN, s.n)
		set(RegXsum, s.xsum)
		set(RegXsumsq, s.xsumsq)
		set(RegVar, s.varv)
		set(RegSD, s.sd)
		set(RegMed, s.med)
		set(RegLow, s.low)
		set(RegHigh, s.high)
		set(RegMedInit, s.medinit)
		if l.Opts.Entropy && sb.Entropy {
			// Rebuild the contribution cells and their sum with the emitted
			// arithmetic: c = (f·log2fix(f)) & mask, S = Σc & mask. The
			// incremental datapath telescopes to exactly this, so both sides
			// of the differential land on identical bytes.
			mask := l.cellMask()
			ecells := snap.Registers[RegEntCell]
			var sum uint64
			for i, fv := range counters[base : base+l.Opts.Size] {
				c := (fv * intstat.Log2Fixed(fv, l.Opts.EntropyFrac)) & mask
				ecells[base+i] = c
				sum += c
			}
			snap.Registers[RegEntSum][sb.Slot] = sum & mask
		}
	}
}

// ShardedRuntime is Runtime for a sharded data plane: one emitted program
// replicated across N shards behind the flow-hash dispatcher, with every
// binding and routing operation fanned out to all shards so they stay
// configured identically — the contract MergedSnapshot's entry view and the
// dispatcher's correctness both rest on.
type ShardedRuntime struct {
	lib  *Library
	ss   *p4.ShardedSwitch
	rts  []*Runtime
	freq map[int]SlotBinding
}

// NewShardedRuntime instantiates n shards of the library's program.
func NewShardedRuntime(lib *Library, n int) (*ShardedRuntime, error) {
	ss, err := p4.NewShardedSwitch(lib.Prog, lib.Std, n, lib.Opts.DigestBuf)
	if err != nil {
		return nil, err
	}
	sr := &ShardedRuntime{lib: lib, ss: ss, freq: make(map[int]SlotBinding)}
	for i := 0; i < n; i++ {
		sw := ss.Shard(i)
		if lib.Opts.Echo {
			sw.SetDeparser(EchoDeparser{lib: lib})
		}
		sr.rts = append(sr.rts, &Runtime{lib: lib, sw: sw})
	}
	return sr, nil
}

// Sharded returns the underlying sharded data plane.
func (sr *ShardedRuntime) Sharded() *p4.ShardedSwitch { return sr.ss }

// Library returns the emitted library.
func (sr *ShardedRuntime) Library() *Library { return sr.lib }

// NumShards returns the replica count.
func (sr *ShardedRuntime) NumShards() int { return len(sr.rts) }

// ShardRuntime returns the per-shard control handle, for reading one shard's
// registers or attaching per-shard observers.
func (sr *ShardedRuntime) ShardRuntime(i int) *Runtime { return sr.rts[i] }

// Close stops the shard workers.
func (sr *ShardedRuntime) Close() { sr.ss.Close() }

// each fans one control-plane operation out to every shard, asserting the
// shards hand back the same entry ID — they must, since they are driven
// identically from birth; a divergence means the identical-configuration
// contract was broken and sharded state can no longer be trusted.
func (sr *ShardedRuntime) each(f func(rt *Runtime) (p4.EntryID, error)) (p4.EntryID, error) {
	var id p4.EntryID
	for i, rt := range sr.rts {
		got, err := f(rt)
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", i, err)
		}
		if i == 0 {
			id = got
		} else if got != id {
			return 0, fmt.Errorf("stat4p4: shard %d assigned entry %d, shard 0 assigned %d — shards configured divergently", i, got, id)
		}
	}
	return id, nil
}

// eachErr fans out an operation with no entry ID.
func (sr *ShardedRuntime) eachErr(f func(rt *Runtime) error) error {
	for i, rt := range sr.rts {
		if err := f(rt); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

func (sr *ShardedRuntime) noteFreq(slot int, pa, pb uint64) {
	sr.freq[slot] = SlotBinding{Slot: slot, PA: pa, PB: pb}
}

// BindFreqEcho fans Runtime.BindFreqEcho out to every shard.
func (sr *ShardedRuntime) BindFreqEcho(stage, slot int, m Match, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	id, err := sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFreqEcho(stage, slot, m, base, size, pa, pb, k)
	})
	if err == nil {
		sr.noteFreq(slot, pa, pb)
	}
	return id, err
}

// BindFreqDst fans Runtime.BindFreqDst out to every shard.
func (sr *ShardedRuntime) BindFreqDst(stage, slot int, m Match, shift uint, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	id, err := sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFreqDst(stage, slot, m, shift, base, size, pa, pb, k)
	})
	if err == nil {
		sr.noteFreq(slot, pa, pb)
	}
	return id, err
}

// BindFreqDport fans Runtime.BindFreqDport out to every shard.
func (sr *ShardedRuntime) BindFreqDport(stage, slot int, m Match, shift uint, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	id, err := sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFreqDport(stage, slot, m, shift, base, size, pa, pb, k)
	})
	if err == nil {
		sr.noteFreq(slot, pa, pb)
	}
	return id, err
}

// BindFreqProto fans Runtime.BindFreqProto out to every shard.
func (sr *ShardedRuntime) BindFreqProto(stage, slot int, m Match, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	id, err := sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFreqProto(stage, slot, m, base, size, pa, pb, k)
	})
	if err == nil {
		sr.noteFreq(slot, pa, pb)
	}
	return id, err
}

// BindFreqLen fans Runtime.BindFreqLen out to every shard.
func (sr *ShardedRuntime) BindFreqLen(stage, slot int, m Match, shift uint, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	id, err := sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindFreqLen(stage, slot, m, shift, base, size, pa, pb, k)
	})
	if err == nil {
		sr.noteFreq(slot, pa, pb)
	}
	return id, err
}

// BindEntropyDst fans Runtime.BindEntropyDst out to every shard and records
// the slot for entropy canonicalisation.
func (sr *ShardedRuntime) BindEntropyDst(stage, slot int, m Match, shift uint, base uint64, size int, h0, checkEvery uint64) (p4.EntryID, error) {
	id, err := sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindEntropyDst(stage, slot, m, shift, base, size, h0, checkEvery)
	})
	if err == nil {
		sr.freq[slot] = SlotBinding{Slot: slot, PA: 1, PB: 1, Entropy: true}
	}
	return id, err
}

// BindEntropySrc fans Runtime.BindEntropySrc out to every shard.
func (sr *ShardedRuntime) BindEntropySrc(stage, slot int, m Match, shift uint, base uint64, size int, h0, checkEvery uint64) (p4.EntryID, error) {
	id, err := sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindEntropySrc(stage, slot, m, shift, base, size, h0, checkEvery)
	})
	if err == nil {
		sr.freq[slot] = SlotBinding{Slot: slot, PA: 1, PB: 1, Entropy: true}
	}
	return id, err
}

// MergedEntropy derives a slot's entropy from the counters summed across
// shards — what a single switch tracking the union stream would report.
func (sr *ShardedRuntime) MergedEntropy(slot int) (EntropySnapshot, error) {
	counters, err := sr.MergedCounters(slot, 0)
	if err != nil {
		return EntropySnapshot{}, err
	}
	mask := sr.lib.cellMask()
	var total, sum uint64
	for _, f := range counters {
		total += f
		sum += (f * intstat.Log2Fixed(f, sr.lib.Opts.EntropyFrac)) & mask
	}
	return sr.lib.entropySnapshot(total&mask, sum&mask), nil
}

// BindWindow fans Runtime.BindWindow out to every shard. Each shard then
// maintains its own window over its share of the traffic; per-interval
// totals combine with the shared-clock core.Window merge, not through
// CanonicalizeSnapshot.
func (sr *ShardedRuntime) BindWindow(stage, slot int, m Match, intervalShift uint, capacity int, k uint64) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindWindow(stage, slot, m, intervalShift, capacity, k)
	})
}

// BindWindowBytes fans Runtime.BindWindowBytes out to every shard.
func (sr *ShardedRuntime) BindWindowBytes(stage, slot int, m Match, intervalShift uint, capacity int, k uint64) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindWindowBytes(stage, slot, m, intervalShift, capacity, k)
	})
}

// AddRoute fans Runtime.AddRoute out to every shard.
func (sr *ShardedRuntime) AddRoute(prefix packet.Prefix, port uint16) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) { return rt.AddRoute(prefix, port) })
}

// AddDropRoute fans Runtime.AddDropRoute out to every shard.
func (sr *ShardedRuntime) AddDropRoute(prefix packet.Prefix) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) { return rt.AddDropRoute(prefix) })
}

// DelRoute fans Runtime.DelRoute out to every shard.
func (sr *ShardedRuntime) DelRoute(id p4.EntryID) error {
	return sr.eachErr(func(rt *Runtime) error { return rt.DelRoute(id) })
}

// Unbind fans Runtime.Unbind out to every shard.
func (sr *ShardedRuntime) Unbind(stage int, id p4.EntryID) error {
	return sr.eachErr(func(rt *Runtime) error { return rt.Unbind(stage, id) })
}

// ResetSlot fans Runtime.ResetSlot out to every shard and forgets the slot's
// recorded binding.
func (sr *ShardedRuntime) ResetSlot(slot int) error {
	if err := sr.eachErr(func(rt *Runtime) error { return rt.ResetSlot(slot) }); err != nil {
		return err
	}
	delete(sr.freq, slot)
	return nil
}

// FreqSlots returns the recorded frequency-slot bindings in slot order — the
// slot list MergedSnapshot canonicalises.
func (sr *ShardedRuntime) FreqSlots() []SlotBinding {
	out := make([]SlotBinding, 0, len(sr.freq))
	for _, sb := range sr.freq {
		out = append(out, sb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Slot < out[j].Slot })
	return out
}

// MergedCounters sums a slot's counter cells across shards, masked to the
// cell width — the distribution a single switch would hold. n limits how
// many cells are returned (≤ Size, 0 for all).
func (sr *ShardedRuntime) MergedCounters(slot, n int) ([]uint64, error) {
	var out []uint64
	mask := sr.lib.cellMask()
	for i, rt := range sr.rts {
		cells, err := rt.ReadCounters(slot, n)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if out == nil {
			out = cells
			continue
		}
		for j := range out {
			out[j] = (out[j] + cells[j]) & mask
		}
	}
	return out, nil
}

// MergedMoments reads a frequency slot's measures as a single switch would
// hold them: counters summed across shards, moments and σ recomputed with
// the emitted arithmetic, the marker re-derived from the merged counters.
// MedianMoves is the one additive exception — it sums the shards' movement
// counters, total marker work across the fleet rather than the path length
// of any serial marker.
func (sr *ShardedRuntime) MergedMoments(slot int) (Moments, error) {
	counters, err := sr.MergedCounters(slot, 0)
	if err != nil {
		return Moments{}, err
	}
	pa, pb := uint64(1), uint64(1)
	if sb, ok := sr.freq[slot]; ok {
		pa, pb = sb.PA, sb.PB
	}
	s := sr.lib.recomputeSlot(counters, pa, pb)
	m := Moments{
		N: s.n, Xsum: s.xsum, Xsumsq: s.xsumsq,
		Var: s.varv, SD: s.sd, Median: s.med,
	}
	mask := sr.lib.cellMask()
	for i, rt := range sr.rts {
		mm, err := rt.ReadMoments(slot)
		if err != nil {
			return Moments{}, fmt.Errorf("shard %d: %w", i, err)
		}
		m.MedianMoves = (m.MedianMoves + mm.MedianMoves) & mask
	}
	return m, nil
}

// MergedSnapshot merges the shards' registers (MergeSum cells add,
// MergeDerived cells zero) and canonicalises the result over the recorded
// frequency slots. The returned snapshot is byte-identical to
// CanonicalizeSnapshot applied to a serial switch that processed the same
// packets, which is exactly what the sharded differential tests assert.
func (sr *ShardedRuntime) MergedSnapshot() *p4.Snapshot {
	snap := sr.ss.MergedSnapshot()
	sr.lib.CanonicalizeSnapshot(snap, sr.FreqSlots())
	return snap
}
