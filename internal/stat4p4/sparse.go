package stat4p4

import (
	"fmt"

	"stat4/internal/p4"
)

// This file emits the sparse (hash-bucket) tracking mode, the Section 5
// extension prototyped in core.SparseFreqDist: instead of one counter per
// possible value, a slot's Size cells become a 2-way hash table of
// {key, count} buckets indexed by the target's hash engine. Memory becomes
// proportional to observed keys — the fix for "Stat4 currently allocates
// switch resources for every possible value in the tracked distributions".
//
// The moments update identically to frequency mode (the shared freq_load /
// freq_accum actions run once the bucket index is resolved); percentile
// markers are unavailable because buckets are in hash order. Keys whose two
// candidate buckets are both taken by other keys are counted in a rejection
// register rather than aliased, so the moments never silently corrupt.

// Sparse-mode register names.
const (
	RegKeys     = "stat.skeys"    // bucket keys, Slots×Size cells
	RegUsedBits = "stat.sused"    // bucket valid flags, Slots×Size cells
	RegRejected = "stat.rejected" // per-slot rejected-observation counters
)

const kindSparse = 2

// declareSparse adds the sparse-mode registers, binding actions and probe
// actions to the program.
func (l *Library) declareSparse() {
	f := &l.f
	cells := l.Opts.Slots * l.Opts.Size
	// Bucket keys and valid flags are replica-local: shards see different
	// flow subsets, so their hash buckets hold different keys and cannot be
	// combined cell-wise. Rejection counts are plain sums.
	l.Prog.AddRegister(RegKeys, cells, 64)
	l.Prog.SetRegisterMerge(RegKeys, p4.MergeDerived)
	l.Prog.SetMergeWhy(RegKeys,
		"hash-bucket key ownership is replica-local; shards claim different keys for the same cell")
	l.Prog.AddRegister(RegUsedBits, cells, l.Opts.CellWidth)
	l.Prog.SetRegisterMerge(RegUsedBits, p4.MergeDerived)
	l.Prog.SetMergeWhy(RegUsedBits,
		"bucket-occupancy latch for the replica-local key table")
	l.Prog.AddRegister(RegRejected, l.Opts.Slots, l.Opts.CellWidth)
	l.Prog.SetRegisterMerge(RegRejected, p4.MergeSum)

	common := []p4.Op{
		p4.Mov(f.base, p4.P(0)),
		p4.Mov(f.slotid, p4.P(1)),
		p4.Mov(f.enable, p4.C(1)),
		p4.Mov(f.kind, p4.C(kindSparse)),
	}
	// bind_sparse_dst(slotBase, slot, shift, k): key = ipv4.dst >> shift.
	l.Prog.AddAction(p4.NewAction("bind_sparse_dst", 4, append(append([]p4.Op{}, common...),
		p4.Shr(f.val, p4.F(l.Std.IPv4Dst), p4.P(2)),
		p4.Mov(f.k, p4.P(3)),
	)...))
	// bind_sparse_src(slotBase, slot, shift, k): key = ipv4.src >> shift —
	// per-source counting (super-spreader / DDoS source tracking).
	l.Prog.AddAction(p4.NewAction("bind_sparse_src", 4, append(append([]p4.Op{}, common...),
		p4.Shr(f.val, p4.F(l.Std.IPv4Src), p4.P(2)),
		p4.Mov(f.k, p4.P(3)),
	)...))

	mask := uint64(l.Opts.Size - 1)
	// sparse_probe: compute both candidate buckets and load their state.
	l.Prog.AddAction(p4.NewAction("sparse_probe", 0,
		p4.Hash(f.h1, 0, p4.F(f.val), mask),
		p4.Add(f.h1, p4.F(f.base), p4.F(f.h1)),
		p4.Hash(f.h2, 1, p4.F(f.val), mask),
		p4.Add(f.h2, p4.F(f.base), p4.F(f.h2)),
		p4.RegRead(f.k1, RegKeys, p4.F(f.h1)),
		p4.RegRead(f.u1, RegUsedBits, p4.F(f.h1)),
		p4.RegRead(f.k2, RegKeys, p4.F(f.h2)),
		p4.RegRead(f.u2, RegUsedBits, p4.F(f.h2)),
	))
	// sparse_claim1/2: take an empty bucket for this key.
	l.Prog.AddAction(p4.NewAction("sparse_claim1", 0,
		p4.RegWrite(RegUsedBits, p4.F(f.h1), p4.C(1)),
		p4.RegWrite(RegKeys, p4.F(f.h1), p4.F(f.val)),
		p4.Mov(f.idx, p4.F(f.h1)),
		p4.Mov(f.ok, p4.C(1)),
	))
	l.Prog.AddAction(p4.NewAction("sparse_claim2", 0,
		p4.RegWrite(RegUsedBits, p4.F(f.h2), p4.C(1)),
		p4.RegWrite(RegKeys, p4.F(f.h2), p4.F(f.val)),
		p4.Mov(f.idx, p4.F(f.h2)),
		p4.Mov(f.ok, p4.C(1)),
	))
	// sparse_sel1/2: the key already owns this bucket.
	l.Prog.AddAction(p4.NewAction("sparse_sel1", 0,
		p4.Mov(f.idx, p4.F(f.h1)),
		p4.Mov(f.ok, p4.C(1)),
	))
	l.Prog.AddAction(p4.NewAction("sparse_sel2", 0,
		p4.Mov(f.idx, p4.F(f.h2)),
		p4.Mov(f.ok, p4.C(1)),
	))
	// sparse_reject: both candidates taken by other keys.
	l.Prog.AddAction(p4.NewAction("sparse_reject", 0,
		p4.RegRead(f.t2, RegRejected, p4.F(f.slotid)),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.RegWrite(RegRejected, p4.F(f.slotid), p4.F(f.t2)),
		p4.Mov(f.ok, p4.C(0)),
	))
}

// sparseBlock resolves the bucket with 2-way probing, then reuses the shared
// frequency accumulation (moments, variance, σ) on the resolved index.
func (l *Library) sparseBlock() []p4.Stmt {
	f := &l.f
	eqf := func(a, b p4.FieldID) p4.Cond { return p4.Cond{A: p4.F(a), Op: p4.CmpEq, B: p4.F(b)} }
	resolve := []p4.Stmt{
		p4.Call("sparse_probe"),
		p4.If(eq(f.u1, 0),
			p4.Call("sparse_claim1"),
		).WithElse(
			p4.If(eqf(f.k1, f.val),
				p4.Call("sparse_sel1"),
			).WithElse(
				p4.If(eq(f.u2, 0),
					p4.Call("sparse_claim2"),
				).WithElse(
					p4.If(eqf(f.k2, f.val),
						p4.Call("sparse_sel2"),
					).WithElse(
						p4.Call("sparse_reject"),
					),
				),
			),
		),
	}
	update := []p4.Stmt{p4.Call("sparse_load")}
	update = append(update,
		p4.If(eq(f.f, 0), p4.Call("freq_incr_n")),
		p4.Call("freq_accum"),
	)
	update = append(update, l.varStmts()...)
	if !l.Opts.NoVariance {
		update = append(update, p4.If(ne(f.k, 0), p4.Call("freq_arm_check")))
	}
	return append(resolve, p4.If(eq(f.ok, 1), update...))
}

// declareSparseLoad declares the load action sparse mode shares with
// frequency mode, minus the dense index computation.
func (l *Library) declareSparseLoad() {
	f := &l.f
	slot := p4.F(f.slotid)
	l.Prog.AddAction(p4.NewAction("sparse_load",
		0,
		p4.RegRead(f.f, RegCounters, p4.F(f.idx)),
		p4.RegRead(f.n, RegN, slot),
		p4.RegRead(f.xsum, RegXsum, slot),
		p4.RegRead(f.xsumsq, RegXsumsq, slot),
	))
}

// BindSparseDst tracks packets per destination key = (ipv4.dst >> shift)
// in the slot's hash-bucket table. The slot's Size must be a power of two
// (the probe masks). k ≥ 1 arms the hot-key check; the alert digest names
// the key itself.
func (rt *Runtime) BindSparseDst(stage, slot int, m Match, shift uint, k uint64) (p4.EntryID, error) {
	return rt.bindSparse(stage, slot, m, "bind_sparse_dst", shift, k)
}

// BindSparseSrc tracks packets per source key — the per-source counting of
// the DDoS use case.
func (rt *Runtime) BindSparseSrc(stage, slot int, m Match, shift uint, k uint64) (p4.EntryID, error) {
	return rt.bindSparse(stage, slot, m, "bind_sparse_src", shift, k)
}

func (rt *Runtime) bindSparse(stage, slot int, m Match, action string, shift uint, k uint64) (p4.EntryID, error) {
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if !rt.lib.Opts.Sparse {
		return 0, fmt.Errorf("stat4p4: library built without Options.Sparse")
	}
	if shift > 32 {
		return 0, fmt.Errorf("stat4p4: sparse shift %d out of range", shift)
	}
	if rt.lib.Opts.Strict && k != 0 && k != 2 {
		return 0, fmt.Errorf("%w: k must be 0 or 2", ErrStrict)
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, action, []uint64{sb, id, uint64(shift), k})
}

// SparseEntry is one occupied bucket read back by the control plane.
type SparseEntry struct {
	Key   uint64
	Count uint64
}

// ReadSparse snapshots a slot's occupied hash buckets.
func (rt *Runtime) ReadSparse(slot int) ([]SparseEntry, error) {
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return nil, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	keys, err := rt.sw.Register(RegKeys)
	if err != nil {
		return nil, err
	}
	used, err := rt.sw.Register(RegUsedBits)
	if err != nil {
		return nil, err
	}
	counters, err := rt.sw.Register(RegCounters)
	if err != nil {
		return nil, err
	}
	base := slot * rt.lib.Opts.Size
	var out []SparseEntry
	for i := 0; i < rt.lib.Opts.Size; i++ {
		u, _ := used.Read(base + i)
		if u == 0 {
			continue
		}
		k, _ := keys.Read(base + i)
		c, _ := counters.Read(base + i)
		out = append(out, SparseEntry{Key: k, Count: c})
	}
	return out, nil
}

// SparseRejected reads a slot's rejected-observation counter.
func (rt *Runtime) SparseRejected(slot int) (uint64, error) {
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	reg, err := rt.sw.Register(RegRejected)
	if err != nil {
		return 0, err
	}
	return reg.Read(slot)
}

// SparseKeyCount returns a key's count as the control plane computes it,
// probing the same buckets the data plane would. shift must match the
// binding's.
func (rt *Runtime) SparseKeyCount(slot int, key uint64) (uint64, error) {
	entries, err := rt.ReadSparse(slot)
	if err != nil {
		return 0, err
	}
	for _, e := range entries {
		if e.Key == key {
			return e.Count, nil
		}
	}
	return 0, nil
}
