package stat4p4

import (
	"fmt"

	"stat4/internal/p4"
)

// sqrtTree emits the Figure 2 approximate square root as a nested-if binary
// search on the MSB of m.sqin, with one leaf action per exponent. At leaf e
// every shift amount is a compile-time constant, which is how the "sequence
// of ifs" sidesteps the no-packet-dependent-shift restriction. The emitted
// computation matches intstat.SqrtApprox bit for bit.
func (l *Library) sqrtTree() []p4.Stmt {
	f := &l.f
	return []p4.Stmt{
		p4.If(eq(f.sqin, 0),
			p4.Call("sqrt_zero"),
		).WithElse(
			l.sqrtRange(0, 63),
		),
	}
}

// sqrtRange emits the binary search over MSB positions [lo, hi].
func (l *Library) sqrtRange(lo, hi int) p4.Stmt {
	if lo == hi {
		return p4.Call(fmt.Sprintf("sqrt_leaf_%d", lo))
	}
	mid := (lo + hi + 1) / 2
	return p4.IfStmt{
		Cond: p4.Cond{A: p4.F(l.f.sqin), Op: p4.CmpGe, B: p4.C(1 << uint(mid))},
		Then: []p4.Stmt{l.sqrtRange(mid, hi)},
		Else: []p4.Stmt{l.sqrtRange(lo, mid-1)},
	}
}

// declareSqrtActions declares the 64 leaf actions plus the zero case.
func (l *Library) declareSqrtActions() {
	f := &l.f
	l.Prog.AddAction(p4.NewAction("sqrt_zero", 0, p4.Mov(f.sqout, p4.C(0))))
	for e := 0; e <= 63; e++ {
		name := fmt.Sprintf("sqrt_leaf_%d", e)
		if e <= 1 {
			// SqrtApprox of any y with MSB at 0 or 1 (y in 1..3) is 1.
			l.Prog.AddAction(p4.NewAction(name, 0, p4.Mov(f.sqout, p4.C(1))))
			continue
		}
		he := e >> 1
		oddBit := uint64(e&1) << uint(e-1)
		ops := []p4.Op{
			// mantissa: clear the MSB.
			p4.Xor(f.t1, p4.F(f.sqin), p4.C(1<<uint(e))),
			// shift the exponent‖mantissa string right by one: the
			// exponent's low bit drops into the mantissa's top slot.
			p4.Shr(f.t1, p4.F(f.t1), p4.C(1)),
		}
		if oddBit != 0 {
			ops = append(ops, p4.Or(f.t1, p4.F(f.t1), p4.C(oddBit)))
		}
		ops = append(ops,
			// keep the top he mantissa bits under the new MSB.
			p4.Shr(f.t1, p4.F(f.t1), p4.C(uint64(e-he))),
			p4.Or(f.sqout, p4.F(f.t1), p4.C(1<<uint(he))),
		)
		l.Prog.AddAction(p4.NewAction(name, 0, ops...))
	}
}

// mulShiftTree emits dst = a << msb(b): the one-term shift approximation of
// a·b used in Strict mode, again as a nested-if search with constant-shift
// leaves. The caller guards b != 0.
func (l *Library) mulShiftTree(a, b, dst p4.FieldID) []p4.Stmt {
	prefix := l.mulLeafPrefix(a, dst)
	return []p4.Stmt{l.mulRange(prefix, b, 0, 63)}
}

func (l *Library) mulRange(prefix string, b p4.FieldID, lo, hi int) p4.Stmt {
	if lo == hi {
		return p4.Call(fmt.Sprintf("%s_%d", prefix, lo))
	}
	mid := (lo + hi + 1) / 2
	return p4.IfStmt{
		Cond: p4.Cond{A: p4.F(b), Op: p4.CmpGe, B: p4.C(1 << uint(mid))},
		Then: []p4.Stmt{l.mulRange(prefix, b, mid, hi)},
		Else: []p4.Stmt{l.mulRange(prefix, b, lo, mid-1)},
	}
}

// mulLeafPrefix names (and lazily declares) the 64 leaf actions shifting
// field a into dst.
func (l *Library) mulLeafPrefix(a, dst p4.FieldID) string {
	prefix := fmt.Sprintf("ms_%d_%d", a, dst)
	if l.declaredMulLeaves == nil {
		l.declaredMulLeaves = make(map[string]bool)
	}
	if !l.declaredMulLeaves[prefix] {
		l.declaredMulLeaves[prefix] = true
		for e := 0; e <= 63; e++ {
			l.Prog.AddAction(p4.NewAction(fmt.Sprintf("%s_%d", prefix, e), 0,
				p4.Shl(dst, p4.F(a), p4.C(uint64(e))),
			))
		}
	}
	return prefix
}
