package stat4p4

import (
	"stat4/internal/p4"
	"stat4/internal/packet"
)

// EchoDeparser serialises echo replies for the Figure 5 validation app: when
// the program marked the packet as a reply, the outgoing frame swaps the
// Ethernet addresses and carries the refreshed statistical measures read
// from the final metadata fields. All other packets are forwarded unchanged.
type EchoDeparser struct {
	lib *Library
}

// Deparse implements p4.Deparser.
func (d EchoDeparser) Deparse(ctx *p4.Ctx, orig *packet.Packet) []byte {
	f := &d.lib.f
	if ctx.Get(f.repValid) != 1 {
		return orig.Serialize()
	}
	reply := packet.Packet{
		Eth: packet.Ethernet{
			Dst:  orig.Eth.Src,
			Src:  orig.Eth.Dst,
			Type: packet.EtherTypeEcho,
		},
		Payload: packet.MarshalEchoReply(packet.EchoReply{
			N:      ctx.Get(f.n),
			Xsum:   ctx.Get(f.xsum),
			Xsumsq: ctx.Get(f.xsumsq),
			Var:    ctx.Get(f.sqin),
			SD:     ctx.Get(f.sqout),
			Median: ctx.Get(f.med),
		}),
	}
	return reply.Serialize()
}
