package stat4p4

import (
	"encoding/binary"

	"stat4/internal/p4"
	"stat4/internal/packet"
)

// EchoDeparser serialises echo replies for the Figure 5 validation app: when
// the program marked the packet as a reply, the outgoing frame swaps the
// Ethernet addresses and carries the refreshed statistical measures read
// from the final metadata fields. All other packets are forwarded unchanged.
type EchoDeparser struct {
	lib *Library
}

// Deparse implements p4.Deparser, appending the outgoing frame into the
// switch's reusable buffer so the reply path allocates nothing.
func (d EchoDeparser) Deparse(ctx *p4.Ctx, orig *packet.Packet, buf []byte) []byte {
	f := &d.lib.f
	if ctx.Get(f.repValid) != 1 {
		return orig.AppendSerialize(buf)
	}
	// Ethernet header with the addresses swapped, then the reply payload —
	// byte-identical to serialising a reply Packet, without building one.
	buf = append(buf, orig.Eth.Src[:]...)
	buf = append(buf, orig.Eth.Dst[:]...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(packet.EtherTypeEcho))
	return packet.AppendEchoReply(buf, packet.EchoReply{
		N:      ctx.Get(f.n),
		Xsum:   ctx.Get(f.xsum),
		Xsumsq: ctx.Get(f.xsumsq),
		Var:    ctx.Get(f.sqin),
		SD:     ctx.Get(f.sqout),
		Median: ctx.Get(f.med),
	})
}
