package stat4p4

// The registered-program catalog: every library configuration and example
// sizing the repo ships is listed here, so whole-program gates — the
// stage-budget allocation in internal/p4/stagealloc.go, the merge-law checks
// — run over all of them rather than whichever configuration a test happens
// to build. cmd/stat4-lint iterates this catalog; adding a configuration
// here puts it under the feasibility gate.

// RegisteredProgram is one catalog entry: a named Options sizing plus where
// the sizing comes from.
type RegisteredProgram struct {
	Name string
	Opts Options
	Note string
}

// Registered returns the catalog, in a stable order: the library's own
// configuration axes first, then the example/application sizings shipped in
// configs/ and cmd/.
func Registered() []RegisteredProgram {
	return []RegisteredProgram{
		{Name: "default", Opts: DefaultOptions,
			Note: "DefaultOptions: 8 slots x 256 cells, two binding stages"},
		{Name: "echo", Opts: Options{Slots: 1, Size: 512, Stages: 1, Echo: true},
			Note: "Figure 5 echo application (cmd/stat4-echo sizing)"},
		{Name: "strict", Opts: Options{Slots: 8, Size: 256, Stages: 2, Strict: true},
			Note: "TargetStrict emission: shift-approximated variance"},
		{Name: "cell32", Opts: Options{Slots: 2, Size: 256, Stages: 2, CellWidth: 32},
			Note: "deployable 32-bit-cell sizing used by the resource analysis"},
		{Name: "novariance", Opts: Options{Slots: 8, Size: 256, Stages: 2, NoVariance: true},
			Note: "circular-buffer override only (the paper's 12-step chain)"},
		{Name: "sparse", Opts: Options{Slots: 1, Size: 64, Stages: 1, Sparse: true},
			Note: "Section 5 hash-bucket mode, minimal sizing"},
		{Name: "casestudy", Opts: Options{Slots: 2, Size: 256, Stages: 2},
			Note: "configs/casestudy.json"},
		{Name: "ddos-sparse", Opts: Options{Slots: 1, Size: 256, Stages: 1, Sparse: true},
			Note: "configs/ddos-sparse.json"},
		{Name: "synflood", Opts: Options{Slots: 1, Size: 64, Stages: 1},
			Note: "configs/synflood.json"},
		{Name: "replay", Opts: Options{Slots: 1, Size: 256, Stages: 1},
			Note: "cmd/stat4-replay sizing"},
		{Name: "entropy", Opts: Options{Slots: 1, Size: 256, Stages: 1, Entropy: true},
			Note: "integer entropy over a 256-value distribution (examples/entropy-ddos)"},
		{Name: "heavyhitter", Opts: Options{Slots: 1, Size: 64, Stages: 1, HeavyHitter: true},
			Note: "probabilistic-recirculation heavy hitters (examples/heavyhitter)"},
		{Name: "entropy-hh", Opts: Options{Slots: 2, Size: 256, Stages: 1, Entropy: true, HeavyHitter: true},
			Note: "entropy and heavy hitters composed in one program; one binding stage leaves the recirculation pass its stage headroom"},
		{Name: "flowtable", Opts: Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: 1024},
			Note: "sparse flow-table state plane: 1024 2-left buckets of {key, stamp, count} per slot"},
		{Name: "flowtable-hh", Opts: Options{Slots: 2, Size: 256, Stages: 1, FlowTable: true, FlowTableSize: 4096, HeavyHitter: true, NoVariance: true},
			Note: "flow table composed with heavy hitters (counting only, NoVariance): churn-tolerant per-flow counts plus elephant promotion in one program"},
	}
}

// RecomputedRegisters lists the MergeDerived registers CanonicalizeSnapshot
// recomputes from the merged counters — the per-slot scalar block of a
// frequency slot. Every other MergeDerived register must carry a MergeWhy
// note explaining why zero-after-merge is the whole contract (window state
// merges through the shared-clock core.Window path; sparse bucket keys are
// replica-local). The mergelaw analyzer checks exactly this partition.
func (l *Library) RecomputedRegisters() []string {
	out := []string{
		RegN, RegXsum, RegXsumsq, RegVar, RegSD,
		RegMed, RegLow, RegHigh, RegMedInit,
	}
	if l.Opts.Entropy {
		// The entropy contribution cells and their per-slot sum are pure
		// functions of the counters, rebuilt cell-for-cell after a merge.
		out = append(out, RegEntCell, RegEntSum)
	}
	return out
}
