package stat4p4

import (
	"math/rand"
	"reflect"
	"testing"

	"stat4/internal/core"
	"stat4/internal/packet"
)

// shardedPair builds a serial Runtime and an n-way ShardedRuntime over the
// same library and applies the same bindings to both: packets-per-/24-host
// on stage 0, frame sizes on stage 1.
func shardedPair(t *testing.T, opts Options, n int) (*Runtime, *ShardedRuntime) {
	t.Helper()
	lib := Build(opts)
	rt, err := NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := NewShardedRuntime(lib, n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sr.Close)

	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	if _, err := rt.BindFreqDst(0, 0, AllIPv4(), 0, dstBase, 64, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.BindFreqDst(0, 0, AllIPv4(), 0, dstBase, 64, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if opts.Stages > 1 {
		// Wire length = 14 + 20 + 8 + payload, payloads below 22 bytes.
		if _, err := rt.BindFreqLen(1, 1, AllIPv4(), 0, 42, 32, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sr.BindFreqLen(1, 1, AllIPv4(), 0, 42, 32, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	return rt, sr
}

// driveBoth replays the same pseudo-random UDP stream through the serial
// switch and the sharded dispatcher.
func driveBoth(rt *Runtime, sr *ShardedRuntime, seed int64, packets int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < packets; i++ {
		src := packet.ParseIP4(192, 168, byte(rng.Intn(4)), byte(rng.Intn(32)))
		dst := packet.ParseIP4(10, 0, 0, byte(rng.Intn(64)))
		sport := uint16(1024 + rng.Intn(64))
		frame := packet.NewUDPFrame(src, dst, sport, 80, rng.Intn(22)).Serialize()
		ts := uint64(i)
		rt.Switch().ProcessFrame(ts, 1, frame)
		sr.Sharded().ProcessFrame(ts, 1, frame)
	}
}

// TestShardedCanonicalEquivalence is the tentpole theorem at the stat4p4
// layer: after the same packet stream, the sharded deployment's merged
// snapshot is byte-identical to the canonicalised snapshot of one serial
// switch — registers and table entries both — across the default build, the
// strict (mul-free) build, and the deployable 32-bit cell width.
func TestShardedCanonicalEquivalence(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"default", Options{Slots: 2, Size: 64, Stages: 2}},
		{"strict", Options{Slots: 2, Size: 64, Stages: 2, Strict: true, StrictCapShift: 4}},
		{"cell32", Options{Slots: 2, Size: 64, Stages: 2, CellWidth: 32}},
		{"novariance", Options{Slots: 2, Size: 64, Stages: 2, NoVariance: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 4} {
				rt, sr := shardedPair(t, tc.opts, n)
				driveBoth(rt, sr, int64(100+n), 3000)

				serial := rt.Switch().Snapshot()
				rt.Library().CanonicalizeSnapshot(serial, sr.FreqSlots())
				merged := sr.MergedSnapshot()

				for name, want := range serial.Registers {
					if got := merged.Registers[name]; !reflect.DeepEqual(got, want) {
						t.Fatalf("n=%d: register %q diverges\nmerged: %v\nserial: %v", n, name, got, want)
					}
				}
				if !reflect.DeepEqual(merged.Entries, serial.Entries) {
					t.Fatalf("n=%d: merged table entries diverge from serial", n)
				}
			}
		})
	}
}

// TestCanonicalizeMatchesDataPlane pins the exactness claim canonicalisation
// rests on: every recomputed scalar — N, Σx, Σx², variance, σ — equals the
// raw register the serial data plane itself wrote, because each is a pure
// function of the final counters under the emitted arithmetic. Markers are
// exempt (the serial marker may lag its equilibrium by design); the
// canonical marker must still tile the distribution's mass.
func TestCanonicalizeMatchesDataPlane(t *testing.T) {
	for _, opts := range []Options{
		{Slots: 2, Size: 64, Stages: 2},
		{Slots: 2, Size: 64, Stages: 2, Strict: true, StrictCapShift: 4},
		{Slots: 2, Size: 64, Stages: 2, CellWidth: 32},
	} {
		rt, sr := shardedPair(t, opts, 2)
		driveBoth(rt, sr, 7, 2000)

		raw := rt.Switch().Snapshot()
		canon := rt.Switch().Snapshot()
		rt.Library().CanonicalizeSnapshot(canon, sr.FreqSlots())

		for _, sb := range sr.FreqSlots() {
			for _, reg := range []string{RegN, RegXsum, RegXsumsq, RegVar, RegSD} {
				if got, want := canon.Registers[reg][sb.Slot], raw.Registers[reg][sb.Slot]; got != want {
					t.Errorf("strict=%v width=%v slot %d: canonical %s = %d, data plane wrote %d",
						opts.Strict, opts.CellWidth, sb.Slot, reg, got, want)
				}
			}
			counters := raw.Registers[RegCounters]
			base := sb.Slot * opts.Size
			var total uint64
			for _, f := range counters[base : base+opts.Size] {
				total += f
			}
			if canon.Registers[RegMedInit][sb.Slot] == 1 {
				low := canon.Registers[RegLow][sb.Slot]
				high := canon.Registers[RegHigh][sb.Slot]
				idx := canon.Registers[RegMed][sb.Slot]
				if low+counters[base+int(idx)]+high != total {
					t.Errorf("slot %d: canonical marker does not tile mass: %d+%d+%d != %d",
						sb.Slot, low, counters[base+int(idx)], high, total)
				}
			} else if total != 0 {
				t.Errorf("slot %d: mass %d but canonical marker unseeded", sb.Slot, total)
			}
		}
	}
}

// TestMergedMomentsMatchesSerial reads the merged measures through the
// Moments-level API and checks them against the serial switch's raw
// registers (scalars exact) and the re-derived marker.
func TestMergedMomentsMatchesSerial(t *testing.T) {
	rt, sr := shardedPair(t, Options{Slots: 2, Size: 64, Stages: 2}, 4)
	driveBoth(rt, sr, 21, 2500)

	for _, sb := range sr.FreqSlots() {
		got, err := sr.MergedMoments(sb.Slot)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rt.ReadMoments(sb.Slot)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != want.N || got.Xsum != want.Xsum || got.Xsumsq != want.Xsumsq ||
			got.Var != want.Var || got.SD != want.SD {
			t.Fatalf("slot %d: merged scalars %+v, serial %+v", sb.Slot, got, want)
		}
		counters, err := rt.ReadCounters(sb.Slot, 0)
		if err != nil {
			t.Fatal(err)
		}
		if idx, _, _, ok := core.RederiveMarker(counters, sb.PA, sb.PB); ok && got.Median != idx {
			t.Fatalf("slot %d: merged median %d, re-derived serial %d", sb.Slot, got.Median, idx)
		}
		// Per-shard movement counts sum to the merged total.
		var moves uint64
		for i := 0; i < sr.NumShards(); i++ {
			mm, err := sr.ShardRuntime(i).ReadMoments(sb.Slot)
			if err != nil {
				t.Fatal(err)
			}
			moves += mm.MedianMoves
		}
		if got.MedianMoves != moves {
			t.Fatalf("slot %d: merged moves %d, shard sum %d", sb.Slot, got.MedianMoves, moves)
		}
	}

	// MergedCounters must equal the serial distribution cell for cell.
	mc, err := sr.MergedCounters(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := rt.ReadCounters(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mc, sc) {
		t.Fatalf("merged counters diverge from serial:\nmerged: %v\nserial: %v", mc, sc)
	}
}

// TestShardedRuntimeFanOut covers the control-plane contract: one logical
// operation yields one entry ID valid on every shard, errors surface, and
// ResetSlot forgets the slot's recorded binding.
func TestShardedRuntimeFanOut(t *testing.T) {
	lib := Build(Options{Slots: 2, Size: 64, Stages: 1})
	sr, err := NewShardedRuntime(lib, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()

	if got := sr.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d", got)
	}
	id, err := sr.BindFreqDst(0, 0, AllIPv4(), 0, uint64(packet.ParseIP4(10, 0, 0, 0)), 64, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slots := sr.FreqSlots(); len(slots) != 1 || slots[0] != (SlotBinding{Slot: 0, PA: 1, PB: 1}) {
		t.Fatalf("FreqSlots = %v", slots)
	}
	if _, err := sr.BindFreqDst(0, 99, AllIPv4(), 0, 0, 64, 1, 1, 0); err == nil {
		t.Fatal("bad slot accepted")
	}
	if err := sr.Unbind(0, id); err != nil {
		t.Fatal(err)
	}
	rid, err := sr.AddRoute(packet.Prefix{Addr: packet.ParseIP4(10, 0, 0, 0), Len: 8}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.DelRoute(rid); err != nil {
		t.Fatal(err)
	}
	if err := sr.ResetSlot(0); err != nil {
		t.Fatal(err)
	}
	if slots := sr.FreqSlots(); len(slots) != 0 {
		t.Fatalf("FreqSlots after reset = %v", slots)
	}
}
