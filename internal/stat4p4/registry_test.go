package stat4p4_test

import (
	"testing"

	"stat4/internal/lint"
	"stat4/internal/p4"
	"stat4/internal/stat4p4"
)

// The feasibility gate: every registered program must place into the default
// target model and obey the merge law. This is the same check CI runs
// through cmd/stat4-lint -programs; a sizing that stops fitting fails here
// first, with the violations spelled out.
func TestRegisteredProgramsPassProgramGate(t *testing.T) {
	tm := p4.DefaultTargetModel()
	for _, rp := range stat4p4.Registered() {
		rp := rp
		t.Run(rp.Name, func(t *testing.T) {
			lib := stat4p4.Build(rp.Opts)
			diags := lint.RunPrograms([]lint.ProgramCase{{
				Name:       rp.Name,
				Prog:       lib.Prog,
				Recomputed: lib.RecomputedRegisters(),
			}}, tm)
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		})
	}
}

// The catalog itself must stay well-formed: unique names, positive sizings.
func TestRegisteredCatalogWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, rp := range stat4p4.Registered() {
		if rp.Name == "" || rp.Note == "" {
			t.Errorf("catalog entry %+v lacks a name or provenance note", rp)
		}
		if seen[rp.Name] {
			t.Errorf("duplicate catalog entry %q", rp.Name)
		}
		seen[rp.Name] = true
		if rp.Opts.Slots <= 0 || rp.Opts.Size <= 0 {
			t.Errorf("catalog entry %q has a non-positive sizing: %+v", rp.Name, rp.Opts)
		}
	}
}
