package stat4p4

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"stat4/internal/baseline"
	"stat4/internal/core"
	"stat4/internal/intstat"
	"stat4/internal/packet"
)

var entropyOpts = Options{Slots: 1, Size: 256, Stages: 1, Entropy: true}

// entropyRuntime builds an entropy-enabled runtime with a dst-group binding
// over dstBase/24's low byte and no in-switch check (h0 = 0).
func entropyRuntime(t testing.TB, opts Options, h0, checkEvery uint64) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Build(opts))
	if err != nil {
		t.Fatal(err)
	}
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	if _, err := rt.BindEntropyDst(0, 0, AllIPv4(), 0, dstBase, opts.Size, h0, checkEvery); err != nil {
		t.Fatal(err)
	}
	return rt
}

func sendDst(rt *Runtime, ts uint64, low byte) {
	dst := packet.ParseIP4(10, 0, 0, low)
	frame := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 1000, 80, 0).Serialize()
	rt.Switch().ProcessFrame(ts, 1, frame)
}

// TestEntropyMatchesRederive pins the incremental accumulator against every
// other way of computing it: the rederive from the final counters (the
// canonicalisation arithmetic), core.Entropy fed the same value stream, and
// the float64 baseline within the committed per-frac error bound.
func TestEntropyMatchesRederive(t *testing.T) {
	rt := entropyRuntime(t, entropyOpts, 0, 0)
	dist := core.NewFreqDist(entropyOpts.Size)
	ent := dist.TrackEntropy(rt.Library().Opts.EntropyFrac)

	rng := rand.New(rand.NewSource(42))
	const packets = 5000
	for i := 0; i < packets; i++ {
		// Skewed mix: half the traffic in 8 groups, the rest spread.
		var low byte
		if rng.Intn(2) == 0 {
			low = byte(rng.Intn(8))
		} else {
			low = byte(rng.Intn(256))
		}
		sendDst(rt, uint64(i), low)
		if err := dist.Observe(uint64(low)); err != nil {
			t.Fatal(err)
		}
	}

	snap, err := rt.ReadEntropy(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Total != packets {
		t.Fatalf("Total = %d, sent %d", snap.Total, packets)
	}
	if snap.Sum != ent.Sum() {
		t.Fatalf("datapath S = %d, core.Entropy S = %d", snap.Sum, ent.Sum())
	}
	counters, err := rt.ReadCounters(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	frac := rt.Library().Opts.EntropyFrac
	var rederived uint64
	for _, f := range counters {
		rederived += f * intstat.Log2Fixed(f, frac)
	}
	if snap.Sum != rederived {
		t.Fatalf("incremental S = %d, rederived from counters = %d", snap.Sum, rederived)
	}
	want := baseline.Entropy(counters)
	if diff := math.Abs(snap.Bits - want); diff > 0.07 {
		t.Fatalf("entropy %.4f bits, float64 baseline %.4f (diff %.4f)", snap.Bits, want, diff)
	}

	// The stored per-cell contributions must equal f·log2fix(f) exactly.
	cells := rt.Switch().Snapshot().Registers[RegEntCell]
	for i, f := range counters {
		if want := f * intstat.Log2Fixed(f, frac); cells[i] != want {
			t.Fatalf("cell %d: stored contribution %d, want %d (f=%d)", i, cells[i], want, f)
		}
	}
}

// TestEntropyAlertFires drives the in-switch collapse check: a uniform mix
// stays above the threshold and emits nothing; a single-destination flood
// collapses the distribution and fires DigestEntropy, rate-limited by
// checkEvery. checkEvery doubles as the warmup: at T observations the
// entropy cannot exceed log2(T), so the first check must wait until a
// healthy mix can clear the threshold.
func TestEntropyAlertFires(t *testing.T) {
	frac := uint(16)
	// Threshold: 4 bits of scaled entropy (distribution over 256 groups has
	// 8 bits uniform, 0 collapsed).
	h0 := uint64(4) << frac
	const checkEvery = 1024
	rt := entropyRuntime(t, entropyOpts, h0, checkEvery)

	ts := uint64(0)
	for i := 0; i < 2048; i++ {
		sendDst(rt, ts, byte(i))
		ts++
	}
	if digests := drainAnomalies(rt.Switch()); len(digests) != 0 {
		t.Fatalf("uniform stream fired %d digests: %+v", len(digests), digests[0])
	}

	// Flood one destination group until the mix collapses below 4 bits.
	for i := 0; i < 20000; i++ {
		sendDst(rt, ts, 7)
		ts++
	}
	digests := drainAnomalies(rt.Switch())
	if len(digests) == 0 {
		t.Fatal("collapse fired no digests")
	}
	for _, d := range digests {
		if d.ID != DigestEntropy {
			t.Fatalf("digest ID %d, want DigestEntropy", d.ID)
		}
		if d.Values[0] != 0 {
			t.Fatalf("digest slot %d, want 0", d.Values[0])
		}
		// The division-free comparison the digest reports must itself hold:
		// H·T·2^frac < h0·T.
		if d.Values[2] >= d.Values[3] {
			t.Fatalf("digest carries H·T = %d >= h0·T = %d", d.Values[2], d.Values[3])
		}
		if d.Values[1]&(checkEvery-1) != 0 {
			t.Fatalf("alert at T = %d violates checkEvery = %d", d.Values[1], checkEvery)
		}
	}
	snap, err := rt.ReadEntropy(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Bits >= 4 {
		t.Fatalf("post-flood entropy %.3f bits, expected collapse below 4", snap.Bits)
	}
}

// TestDifferentialEntropy replays a skew-then-flood stream through the
// compiled plan and the tree walker with the collapse check armed, so the
// log2 leaf actions, the contribution fold and the digest path are all
// compared per frame.
func TestDifferentialEntropy(t *testing.T) {
	compiled, tree := differentialPair(t, entropyOpts)
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	for _, rt := range []*Runtime{compiled, tree} {
		if _, err := rt.BindEntropyDst(0, 0, AllIPv4(), 0, dstBase, 256, uint64(5)<<16, 512); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 9500; i++ {
		var low byte
		if i < 1500 {
			low = byte(rng.Intn(256))
		} else {
			low = byte(rng.Intn(4)) // collapsing phase: entropy digests fire
		}
		dst := packet.ParseIP4(10, 0, 0, low)
		frame := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 1000, 80, rng.Intn(16)).Serialize()
		replayBoth(t, compiled, tree, uint64(i)*17, 1, frame)
	}
	compareState(t, compiled, tree)
	// replayBoth already compared (and consumed) the digest streams frame by
	// frame; proving the final mix sits below the 5-bit threshold proves the
	// last gated check fired, so the alert path was among what it compared.
	snap, err := compiled.ReadEntropy(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Bits >= 5 {
		t.Fatalf("stream never collapsed below the 5-bit threshold (%.3f bits) — the alert path went uncompared", snap.Bits)
	}
}

// TestEntropyShardedCanonical is the byte-identity theorem extended to the
// entropy registers: after the same stream, the sharded deployment's merged
// snapshot equals the canonicalised serial snapshot bit for bit — including
// RegEntCell and RegEntSum, which canonicalisation rebuilds from the merged
// counters — at both 64-bit and the deployable 32-bit cell width.
func TestEntropyShardedCanonical(t *testing.T) {
	for _, opts := range []Options{
		{Slots: 2, Size: 64, Stages: 1, Entropy: true},
		{Slots: 2, Size: 64, Stages: 1, Entropy: true, CellWidth: 32},
	} {
		lib := Build(opts)
		rt, err := NewRuntime(lib)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewShardedRuntime(lib, 3)
		if err != nil {
			t.Fatal(err)
		}
		dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
		if _, err := rt.BindEntropyDst(0, 0, AllIPv4(), 0, dstBase, 64, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sr.BindEntropyDst(0, 0, AllIPv4(), 0, dstBase, 64, 0, 0); err != nil {
			t.Fatal(err)
		}
		driveBoth(rt, sr, 314, 3000)

		serial := rt.Switch().Snapshot()
		lib.CanonicalizeSnapshot(serial, sr.FreqSlots())
		merged := sr.MergedSnapshot()
		for name, want := range serial.Registers {
			if got := merged.Registers[name]; !reflect.DeepEqual(got, want) {
				t.Fatalf("width %d: register %q diverges\nmerged: %v\nserial: %v",
					opts.CellWidth, name, got, want)
			}
		}

		// The merged entropy reading equals the serial one: the serial S is
		// incremental, the merged S is rederived, and the two are the same
		// number by the telescoping argument.
		ms, err := sr.MergedEntropy(0)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := rt.ReadEntropy(0)
		if err != nil {
			t.Fatal(err)
		}
		if ms != ss {
			t.Fatalf("width %d: merged entropy %+v, serial %+v", opts.CellWidth, ms, ss)
		}
		sr.Close()
	}
}

var hhOpts = Options{Slots: 1, Size: 64, Stages: 1, HeavyHitter: true}

// TestHeavyHitterPromotion streams one elephant flow through a mice
// background and checks the probabilistic-recirculation pipeline end to end:
// the elephant is promoted, sits on top of the candidate table, and the
// promotion ledger balances — every recirculated packet either claimed a
// bucket, bumped a count, or was rejected.
func TestHeavyHitterPromotion(t *testing.T) {
	rt, err := NewRuntime(Build(hhOpts))
	if err != nil {
		t.Fatal(err)
	}
	// Flow key = full source address (shift 0); recirculate 1 packet in 4.
	if _, err := rt.BindHeavyHitterSrc(0, 0, AllIPv4(), 0, 2); err != nil {
		t.Fatal(err)
	}

	elephant := packet.ParseIP4(203, 0, 113, 50)
	dst := packet.ParseIP4(10, 0, 0, 1)
	rng := rand.New(rand.NewSource(7))
	ts := uint64(0)
	send := func(src packet.IP4) {
		frame := packet.NewUDPFrame(src, dst, 1000, 80, 0).Serialize()
		rt.Switch().ProcessFrame(ts, 1, frame)
		ts++
	}
	for i := 0; i < 4000; i++ {
		send(elephant)
		if i%2 == 0 {
			send(packet.ParseIP4(198, 18, byte(rng.Intn(256)), byte(rng.Intn(256))))
		}
	}

	stats := rt.Switch().Stats()
	if stats.Recirculated == 0 {
		t.Fatal("no packets recirculated")
	}
	entries, err := rt.ReadHeavyHitters(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("candidate table empty")
	}
	if entries[0].Key != uint64(elephant) {
		t.Fatalf("top candidate key %#x, elephant is %#x", entries[0].Key, uint64(elephant))
	}
	// ~4000/4 = 1000 expected promotions; a top count below 500 would mean
	// the sampling gate is not ~2^-2.
	if entries[0].Count < 500 {
		t.Fatalf("elephant promoted only %d times over 4000 packets at 2^-2", entries[0].Count)
	}

	rejected, err := rt.HHRejected(0)
	if err != nil {
		t.Fatal(err)
	}
	var promoted uint64
	for _, e := range entries {
		promoted += e.Count
	}
	if promoted+rejected != stats.Recirculated {
		t.Fatalf("promotion ledger: %d counted + %d rejected != %d recirculated",
			promoted, rejected, stats.Recirculated)
	}

	// One DigestHeavyHitter per claimed bucket, and the elephant's key is
	// among them.
	var sawElephant bool
	digests := drainAnomalies(rt.Switch())
	for _, d := range digests {
		if d.ID != DigestHeavyHitter {
			t.Fatalf("digest ID %d, want DigestHeavyHitter", d.ID)
		}
		if d.Values[1] == uint64(elephant) {
			sawElephant = true
		}
	}
	if len(digests) != len(entries) {
		t.Fatalf("%d promotion digests for %d occupied buckets", len(digests), len(entries))
	}
	if !sawElephant {
		t.Fatal("no promotion digest carried the elephant's key")
	}
}

// TestDifferentialHeavyHitter compares the recirculation pass — probe, claim,
// take, reject — between the compiled plan and the tree walker over a
// zipf-ish mix heavy enough to exercise every branch.
func TestDifferentialHeavyHitter(t *testing.T) {
	compiled, tree := differentialPair(t, hhOpts)
	for _, rt := range []*Runtime{compiled, tree} {
		if _, err := rt.BindHeavyHitterSrc(0, 0, AllIPv4(), 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(2718))
	dst := packet.ParseIP4(10, 0, 0, 1)
	for i := 0; i < 5000; i++ {
		// Heavy head of 4 flows plus a long random tail that overflows the
		// 16-bucket table and drives hh_reject.
		var src packet.IP4
		if rng.Intn(3) > 0 {
			src = packet.ParseIP4(203, 0, 113, byte(rng.Intn(4)))
		} else {
			src = packet.ParseIP4(198, byte(rng.Intn(64)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		}
		frame := packet.NewUDPFrame(src, dst, 1000, 80, 0).Serialize()
		replayBoth(t, compiled, tree, uint64(i)*11, 1, frame)
	}
	compareState(t, compiled, tree)
	if compiled.Switch().Stats().Recirculated == 0 {
		t.Fatal("differential heavy-hitter stream never recirculated")
	}
	rej, err := compiled.HHRejected(0)
	if err != nil {
		t.Fatal(err)
	}
	if rej == 0 {
		t.Fatal("table never overflowed — the reject branch went uncompared")
	}
}

// TestMergedHeavyHitters checks the controller-side merge: candidate tables
// are replica-local, so the merged view unions by key and sums counts, the
// merged snapshot zeroes the raw registers, and the elephant's merged count
// equals the sum of its per-shard counts.
func TestMergedHeavyHitters(t *testing.T) {
	lib := Build(hhOpts)
	sr, err := NewShardedRuntime(lib, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if _, err := sr.BindHeavyHitterSrc(0, 0, AllIPv4(), 0, 1); err != nil {
		t.Fatal(err)
	}

	elephant := packet.ParseIP4(203, 0, 113, 50)
	dst := packet.ParseIP4(10, 0, 0, 1)
	for i := 0; i < 3000; i++ {
		frame := packet.NewUDPFrame(elephant, dst, 1000, 80, 0).Serialize()
		sr.Sharded().ProcessFrame(uint64(i), 1, frame)
	}

	merged, err := sr.MergedHeavyHitters(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) == 0 || merged[0].Key != uint64(elephant) {
		t.Fatalf("merged candidates %v, want elephant %#x on top", merged, uint64(elephant))
	}
	var perShard uint64
	for i := 0; i < sr.NumShards(); i++ {
		entries, err := sr.ShardRuntime(i).ReadHeavyHitters(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Key == uint64(elephant) {
				perShard += e.Count
			}
		}
	}
	if merged[0].Count != perShard {
		t.Fatalf("merged count %d, per-shard sum %d", merged[0].Count, perShard)
	}

	// Replica-local registers are zero in the merged snapshot — the byte
	// identity with a canonicalised serial snapshot is trivial by design.
	snap := sr.MergedSnapshot()
	for _, reg := range []string{RegHHKeys, RegHHCounts} {
		for i, v := range snap.Registers[reg] {
			if v != 0 {
				t.Fatalf("merged %s[%d] = %d, want 0", reg, i, v)
			}
		}
	}
}

// TestEntropyHHComposed exercises the composed registry configuration — the
// one whose recirculation pass rides on the same stage budget. With a single
// binding stage the two measures partition the traffic by match: entropy
// over one destination prefix, heavy hitters over another, sharing the
// packet loop, the metadata bus and the stage budget.
func TestEntropyHHComposed(t *testing.T) {
	opts := Options{Slots: 2, Size: 256, Stages: 1, Entropy: true, HeavyHitter: true}
	compiled, tree := differentialPair(t, opts)
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	entPfx := packet.Prefix{Addr: packet.ParseIP4(10, 0, 0, 0), Len: 24}
	hhPfx := packet.Prefix{Addr: packet.ParseIP4(10, 0, 1, 0), Len: 24}
	for _, rt := range []*Runtime{compiled, tree} {
		if _, err := rt.BindEntropyDst(0, 0, DstIn(entPfx), 0, dstBase, 256, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.BindHeavyHitterSrc(0, 1, DstIn(hhPfx), 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 4000; i++ {
		src := packet.ParseIP4(203, 0, 113, byte(rng.Intn(8)))
		var dst packet.IP4
		if i%2 == 0 {
			dst = packet.ParseIP4(10, 0, 0, byte(rng.Intn(64))) // entropy slot
		} else {
			dst = packet.ParseIP4(10, 0, 1, 1) // heavy-hitter slot
		}
		frame := packet.NewUDPFrame(src, dst, 1000, 80, 0).Serialize()
		replayBoth(t, compiled, tree, uint64(i)*7, 1, frame)
	}
	compareState(t, compiled, tree)

	snap, err := compiled.ReadEntropy(0)
	if err != nil {
		t.Fatal(err)
	}
	counters, err := compiled.ReadCounters(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	frac := compiled.Library().Opts.EntropyFrac
	var rederived uint64
	for _, f := range counters {
		rederived += f * intstat.Log2Fixed(f, frac)
	}
	if snap.Sum != rederived {
		t.Fatalf("composed program: incremental S = %d, rederived %d", snap.Sum, rederived)
	}
	entries, err := compiled.ReadHeavyHitters(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("composed program promoted no heavy hitters")
	}
}

// TestEntropyResetSlot checks ResetSlot forgets the entropy registers along
// with the counters, and the heavy-hitter variant forgets the candidate
// table.
func TestEntropyResetSlot(t *testing.T) {
	rt := entropyRuntime(t, entropyOpts, 0, 0)
	for i := 0; i < 100; i++ {
		sendDst(rt, uint64(i), byte(i))
	}
	if err := rt.ResetSlot(0); err != nil {
		t.Fatal(err)
	}
	snap, err := rt.ReadEntropy(0)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Total != 0 || snap.Sum != 0 {
		t.Fatalf("after reset: %+v", snap)
	}
	cells := rt.Switch().Snapshot().Registers[RegEntCell]
	for i, v := range cells {
		if v != 0 {
			t.Fatalf("after reset: entropy cell %d = %d", i, v)
		}
	}

	hrt, err := NewRuntime(Build(hhOpts))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hrt.BindHeavyHitterSrc(0, 0, AllIPv4(), 0, 0); err != nil {
		t.Fatal(err)
	}
	src := packet.ParseIP4(203, 0, 113, 50)
	frame := packet.NewUDPFrame(src, packet.ParseIP4(10, 0, 0, 1), 1000, 80, 0).Serialize()
	for i := 0; i < 64; i++ {
		hrt.Switch().ProcessFrame(uint64(i), 1, frame)
	}
	if entries, _ := hrt.ReadHeavyHitters(0); len(entries) == 0 {
		t.Fatal("sampleShift 0 promoted nothing")
	}
	if err := hrt.ResetSlot(0); err != nil {
		t.Fatal(err)
	}
	if entries, _ := hrt.ReadHeavyHitters(0); len(entries) != 0 {
		t.Fatalf("candidate table survived reset: %v", entries)
	}
	if rej, _ := hrt.HHRejected(0); rej != 0 {
		t.Fatalf("reject counter survived reset: %d", rej)
	}
}

// FuzzDifferentialEntropyHH lets the fuzzer script a stream through the
// composed entropy + heavy-hitter program under both interpreters. Two bytes
// per frame: a kind selector and a value steering the addresses.
func FuzzDifferentialEntropyHH(f *testing.F) {
	f.Add([]byte{0, 1, 0, 1, 0, 1, 1, 9, 2, 200})
	f.Add(bytes.Repeat([]byte{0, 7}, 60))
	f.Add([]byte{1, 255, 2, 0, 0, 128})

	opts := Options{Slots: 2, Size: 256, Stages: 1, Entropy: true, HeavyHitter: true}
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	entPfx := packet.Prefix{Addr: packet.ParseIP4(10, 0, 0, 0), Len: 24}
	hhPfx := packet.Prefix{Addr: packet.ParseIP4(10, 0, 1, 0), Len: 24}
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		compiled, tree := differentialPair(t, opts)
		for _, rt := range []*Runtime{compiled, tree} {
			if _, err := rt.BindEntropyDst(0, 0, DstIn(entPfx), 0, dstBase, 256, uint64(6)<<16, 1); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.BindHeavyHitterSrc(0, 1, DstIn(hhPfx), 0, 1); err != nil {
				t.Fatal(err)
			}
		}
		ts := uint64(0)
		for i := 0; i+1 < len(script); i += 2 {
			kind, v := script[i], script[i+1]
			ts += uint64(v)*3 + 1
			var frame []byte
			switch kind % 4 {
			case 0:
				// Concentrated entropy traffic: few destination groups —
				// drives the collapse check.
				frame = packet.NewUDPFrame(packet.ParseIP4(203, 0, 113, v%4),
					packet.ParseIP4(10, 0, 0, v%8), 1000, 80, 0).Serialize()
			case 1:
				// Dispersed entropy traffic: random groups — high entropy.
				frame = packet.NewUDPFrame(packet.ParseIP4(198, v, byte(i), 1),
					packet.ParseIP4(10, 0, 0, v), 1000, 80, int(v)%16).Serialize()
			case 2:
				// Heavy-hitter traffic: a hot head when v is small, a long
				// tail otherwise — exercises claim, take and reject.
				frame = packet.NewUDPFrame(packet.ParseIP4(203, 0, v%16, byte(i)%4),
					packet.ParseIP4(10, 0, 1, 1), 1000, 80, 0).Serialize()
			default:
				frame = []byte{kind, v, 0xde, 0xad}
			}
			replayBoth(t, compiled, tree, ts, 1, frame)
		}
		compareState(t, compiled, tree)
	})
}
