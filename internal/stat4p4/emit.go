// Package stat4p4 emits the Stat4 library as a P4 program for the simulator
// in internal/p4 — the in-switch counterpart of the reference semantics in
// internal/core. The generated program implements Figure 4 of the paper:
//
//   - register arrays sized by the STAT_COUNTER_NUM / STAT_COUNTER_SIZE
//     macros hold the tracked distributions (one counter per value), their
//     squared shadows, and a per-distribution metadata block (N, Xsum,
//     Xsumsq, variance, standard deviation, window and median state);
//   - binding tables, populated by the controller at runtime, decide which
//     packets update which distribution and how the value of interest is
//     extracted, without recompiling the program;
//   - the moment updates, the Figure 2 square-root if-tree, the Figure 3
//     one-step percentile movement and the mean+kσ anomaly check run in the
//     per-packet control flow, pushing digests to the controller on anomaly.
//
// Two emission modes mirror the paper's target discussion: the default
// behavioral-model mode multiplies runtime values directly (as bmv2 can),
// while Strict mode replaces every runtime multiplication with the shift
// approximations of Section 2 so the program validates against
// p4.TargetStrict.
package stat4p4

import (
	"fmt"
	"math/bits"

	"stat4/internal/intstat"
	"stat4/internal/p4"
)

// Register names of the emitted program. The counter and square arrays hold
// Slots×Size cells (distribution i owns [i·Size, (i+1)·Size)); every
// statistical measure has its own per-slot array so that updates to
// different measures carry no dependency on one another — a write to stat.n
// never serialises against a write to stat.xsum.
const (
	RegCounters = "stat.counters" // the tracked values, one cell per value
	RegSquares  = "stat.sq"       // squared shadows for window eviction
	RegN        = "stat.n"        // number of values in the distribution
	RegXsum     = "stat.xsum"     // Σ xi
	RegXsumsq   = "stat.xsumsq"   // Σ xi²
	RegVar      = "stat.var"      // N·Xsumsq − Xsum²
	RegSD       = "stat.sd"       // approximate sqrt of the variance
	RegHead     = "stat.head"     // window: next cell to overwrite
	RegLastInt  = "stat.lastint"  // window: interval id being accumulated
	RegIntInit  = "stat.intinit"  // window: 1 once lastint is valid
	RegCur      = "stat.cur"      // window: current interval accumulator
	RegCurSq    = "stat.cursq"    // window: running square of stat.cur
	RegMed      = "stat.med"      // percentile marker position
	RegLow      = "stat.low"      // combined frequency below the marker
	RegHigh     = "stat.high"     // combined frequency above the marker
	RegMedInit  = "stat.medinit"  // 1 once the marker is seeded
	RegMedMoves = "stat.medmoves" // total marker movements (percentile change rate)
)

// ScalarRegisters lists the per-slot scalar arrays (everything except the
// counter and square arrays), in a stable order.
var ScalarRegisters = []string{
	RegN, RegXsum, RegXsumsq, RegVar, RegSD, RegHead, RegLastInt,
	RegIntInit, RegCur, RegCurSq, RegMed, RegLow, RegHigh, RegMedInit,
	RegMedMoves,
}

// DigestAnomaly is the digest ID of anomaly alerts. Values carried:
// [slot, interval value, N·x, threshold, timestamp ns].
const DigestAnomaly = 1

// DigestEntropy is the digest ID of entropy-collapse alerts. Values carried:
// [slot, total observations, scaled entropy·total, threshold·total,
// timestamp ns].
const DigestEntropy = 2

// DigestHeavyHitter is the digest ID emitted when the recirculation pass
// promotes a new candidate flow into the heavy-hitter table. Values carried:
// [slot, flow key, timestamp ns].
const DigestHeavyHitter = 3

// EchoBias re-exports the parser's bias that shifts the signed echo test
// integer into unsigned counter-index space.
const EchoBias = p4.EchoBias

// Distribution kinds in the emitted program (field m.kind).
const (
	kindFreq   = 0
	kindWindow = 1
	// kindSparse = 2 lives in sparse.go; kindEntropy = 3 and kindHH = 4 in
	// entropy.go and heavyhitter.go.
)

// Options sizes the emitted program.
type Options struct {
	// Slots is STAT_COUNTER_NUM: distributions trackable simultaneously.
	Slots int
	// Size is STAT_COUNTER_SIZE: counter cells per distribution.
	Size int
	// Stages is the number of binding tables applied in sequence; each
	// matched stage updates one distribution per packet. The paper's
	// case-study program uses two.
	Stages int
	// Echo adds the Figure 5 echo application: echo requests update slot 0
	// and are answered with the refreshed statistical measures.
	Echo bool
	// Strict emits only TargetStrict-legal code: runtime multiplications
	// are replaced by one-term shift approximations (variance becomes
	// approximate), the anomaly threshold is fixed at 2σ, percentile
	// weights are fixed at 1:1 (median), and the window N·x scaling uses
	// StrictCapShift. Accuracy consequences are quantified by the
	// ablation benchmarks.
	Strict bool
	// StrictCapShift is log2 of the window capacity used in Strict mode
	// (every strict window must have capacity 1<<StrictCapShift).
	StrictCapShift uint
	// DigestBuf is the digest channel capacity (0 → default).
	DigestBuf int
	// CellWidth is the register cell width in bits (default 64). The
	// resource analysis of a deployable configuration uses 32, like the
	// paper's bmv2 program; the functional tests use 64 so the moments
	// never wrap.
	CellWidth p4.Width
	// BindEntries caps each binding table (default 64 entries).
	BindEntries int
	// FwdEntries caps the forwarding table (default 64 routes).
	FwdEntries int
	// NoVariance drops the variance/sqrt/check logic from the control
	// flow, leaving counters, moments and the window override. It exists
	// for dependency-chain analysis (the paper's 12-step figure covers
	// only the circular-buffer override), not for deployment.
	NoVariance bool
	// Sparse adds the hash-bucket tracking mode (the Section 5 memory
	// extension): per-slot key/valid registers, the probe logic, and the
	// bind_sparse_* actions. It roughly doubles the register footprint, so
	// it is off by default. Requires a power-of-two Size.
	Sparse bool
	// Entropy adds the integer-only normalized-entropy measure: a per-cell
	// contribution register c_i = f_i·log2fix(f_i) maintained alongside the
	// counters, a per-slot scalar S = Σ c_i, and the bind_ent_* actions with
	// a periodic collapse check H·T < h0·T evaluated without division. The
	// fixed-point log2 runs as a nested-if MSB tree with constant-shift
	// leaves (the Figure 2 idiom). Requires runtime multiplication, so it is
	// incompatible with Strict.
	Entropy bool
	// EntropyFrac is the fixed-point fractional width of the entropy log2
	// (default 16, max intstat.Log2MaxFrac). Thresholds are expressed in the
	// same scale: h0 = bits·2^EntropyFrac.
	EntropyFrac uint
	// HeavyHitter adds the probabilistic-recirculation heavy-hitter path:
	// the main pass hashes the flow key and recirculates with probability
	// 2^-k (k per binding), and the single extra pass promotes the candidate
	// into a small exact-count table with 2-way hash probing. Needs no
	// runtime multiplication, so it composes with Strict.
	HeavyHitter bool
	// HHTableSize is the candidate-table capacity per slot (default 16,
	// power of two).
	HHTableSize int
	// FlowTable adds the sparse flow-table addressing mode (flowtable.go):
	// a per-slot 2-left hash table of {key, epoch stamp, count} buckets with
	// epoch-based lazy expiry and an optional 2^-k admission coin, the
	// emitted twin of internal/flowtable. Eviction subtracts the dead flow's
	// squared contribution from the moments, so the mode needs runtime
	// multiplication and is incompatible with Strict.
	FlowTable bool
	// FlowTableSize is the flow-table bucket count per slot (default 1024,
	// power of two ≥ 4; half probed by each hash).
	FlowTableSize int
}

// DefaultOptions matches the case-study defaults: 8 distribution slots of
// 256 cells, two binding stages, echo support off.
var DefaultOptions = Options{Slots: 8, Size: 256, Stages: 2}

// Library is the emitted program plus the handles the runtime and the echo
// deparser need.
type Library struct {
	Prog *p4.Program
	Std  p4.StdFields
	Opts Options

	// BindTables holds the binding table names, one per stage.
	BindTables []string

	f                 fields // scratch and reply field handles
	declaredMulLeaves map[string]bool
	declaredLogLeaves map[string]bool
}

// fields collects every metadata field the emitted logic uses.
type fields struct {
	enable, kind, base, slotid          p4.FieldID
	val, size, pa, pb, k, cap, curint   p4.FieldID
	idx, f, n, xsum, xsumsq, sd         p4.FieldID
	nss, ss, sqin, sqout, t1, t2        p4.FieldID
	med, low, high, minit, fmed         p4.FieldID
	lhs, rhs, lhs2, rhs2                p4.FieldID
	init, last, cur, cursq, head, old   p4.FieldID
	oldsq, nx, ksd, thr, alertval, fnew p4.FieldID
	h1, h2, k1, u1, k2, u2, ok          p4.FieldID
	delta, dsq                          p4.FieldID
	doSqrt, doCheck                     p4.FieldID
	repValid                            p4.FieldID

	// Entropy-mode scratch (entropy.go).
	lf, lt, ec, ecold, es       p4.FieldID
	h0, entchk, entg            p4.FieldID
	enta, entb, ht              p4.FieldID
	// Heavy-hitter scratch (heavyhitter.go). The hh* fields carry the flow
	// key and table coordinates across the recirculation trip, so no later
	// binding stage may reuse them.
	hhkey, hhbase, hhslot, hhgate p4.FieldID
	recirc                        p4.FieldID

	// Flow-table scratch (flowtable.go): admission-coin gate, the stamp a
	// touch writes (epoch + 1) and the two candidate-bucket ages. Consumed
	// within the binding stage, like the sparse scratch.
	ftgate, fts, fta1, fta2 p4.FieldID
}

// Build emits the Stat4 program. It panics on malformed options (sizes must
// be positive; strict windows need a power-of-two capacity), since options
// are compile-time configuration.
func Build(opts Options) *Library {
	if opts.Slots <= 0 || opts.Size <= 0 || opts.Stages <= 0 {
		panic(fmt.Sprintf("stat4p4: non-positive option in %+v", opts))
	}
	if opts.Strict && opts.StrictCapShift == 0 {
		opts.StrictCapShift = uint(bits.Len(uint(opts.Size))) - 1
	}
	if opts.CellWidth == 0 {
		opts.CellWidth = 64
	}
	if opts.BindEntries <= 0 {
		opts.BindEntries = 64
	}
	if opts.FwdEntries <= 0 {
		opts.FwdEntries = 64
	}
	if opts.Sparse && opts.Size&(opts.Size-1) != 0 {
		panic(fmt.Sprintf("stat4p4: Sparse requires a power-of-two Size, have %d", opts.Size))
	}
	if opts.Entropy {
		if opts.Strict {
			panic("stat4p4: Entropy needs runtime multiplication; incompatible with Strict")
		}
		if opts.EntropyFrac == 0 {
			opts.EntropyFrac = 16
		}
		if opts.EntropyFrac > intstat.Log2MaxFrac {
			panic(fmt.Sprintf("stat4p4: EntropyFrac %d exceeds Log2MaxFrac %d", opts.EntropyFrac, intstat.Log2MaxFrac))
		}
	}
	if opts.HeavyHitter {
		if opts.HHTableSize == 0 {
			opts.HHTableSize = 16
		}
		if opts.HHTableSize < 2 || opts.HHTableSize&(opts.HHTableSize-1) != 0 {
			panic(fmt.Sprintf("stat4p4: HHTableSize must be a power of two ≥ 2, have %d", opts.HHTableSize))
		}
	}
	if opts.FlowTable {
		if opts.Strict {
			panic("stat4p4: FlowTable eviction needs runtime multiplication (Xsumsq −= c²); incompatible with Strict")
		}
		if opts.FlowTableSize == 0 {
			opts.FlowTableSize = 1024
		}
		if opts.FlowTableSize < 4 || opts.FlowTableSize&(opts.FlowTableSize-1) != 0 {
			panic(fmt.Sprintf("stat4p4: FlowTableSize must be a power of two ≥ 4, have %d", opts.FlowTableSize))
		}
	}
	prog := p4.NewProgram("stat4")
	if opts.Strict {
		prog.Target = p4.TargetStrict
	}
	std := p4.DeclareStdFields(prog)
	lib := &Library{Prog: prog, Std: std, Opts: opts}
	lib.declareFields()
	lib.declareRegisters()
	lib.declareBindActions()
	lib.declareUpdateActions()
	if opts.Sparse {
		lib.declareSparse()
		lib.declareSparseLoad()
	}
	if opts.Entropy {
		lib.declareEntropy()
	}
	if opts.HeavyHitter {
		lib.declareHeavyHitter()
	}
	if opts.FlowTable {
		lib.declareFlowTable()
	}
	lib.declareTables()
	lib.buildControl()
	return lib
}

func (l *Library) declareFields() {
	p := l.Prog
	w64 := func(name string) p4.FieldID { return p.AddField(name, 64) }
	f := &l.f
	f.enable = p.AddField("m.enable", 1)
	f.kind = p.AddField("m.kind", 3)
	f.base = w64("m.base")
	f.slotid = w64("m.slotid")
	f.val = w64("m.val")
	f.size = w64("m.size")
	f.pa = w64("m.pa")
	f.pb = w64("m.pb")
	f.k = w64("m.k")
	f.cap = w64("m.cap")
	f.curint = w64("m.curint")
	f.idx = w64("m.idx")
	f.f = w64("m.f")
	f.n = w64("m.n")
	f.xsum = w64("m.xsum")
	f.xsumsq = w64("m.xsumsq")
	f.sd = w64("m.sd")
	f.nss = w64("m.nss")
	f.ss = w64("m.ss")
	f.sqin = w64("m.sqin")
	f.sqout = w64("m.sqout")
	f.t1 = w64("m.t1")
	f.t2 = w64("m.t2")
	f.med = w64("m.med")
	f.low = w64("m.low")
	f.high = w64("m.high")
	f.minit = w64("m.minit")
	f.fmed = w64("m.fmed")
	f.lhs = w64("m.lhs")
	f.rhs = w64("m.rhs")
	f.lhs2 = w64("m.lhs2")
	f.rhs2 = w64("m.rhs2")
	f.init = w64("m.init")
	f.last = w64("m.last")
	f.cur = w64("m.cur")
	f.cursq = w64("m.cursq")
	f.head = w64("m.head")
	f.old = w64("m.old")
	f.oldsq = w64("m.oldsq")
	f.nx = w64("m.nx")
	f.ksd = w64("m.ksd")
	f.thr = w64("m.thr")
	f.alertval = w64("m.alertval")
	f.fnew = w64("m.fnew")
	f.h1 = w64("m.h1")
	f.h2 = w64("m.h2")
	f.k1 = w64("m.k1")
	f.u1 = w64("m.u1")
	f.k2 = w64("m.k2")
	f.u2 = w64("m.u2")
	f.ok = p.AddField("m.ok", 1)
	f.delta = w64("m.delta")
	f.dsq = w64("m.dsq")
	f.doSqrt = p.AddField("m.do_sqrt", 1)
	f.doCheck = p.AddField("m.do_check", 1)
	f.repValid = p.AddField("m.rep_valid", 1)
	f.lf = w64("m.lf")
	f.lt = w64("m.lt")
	f.ec = w64("m.ec")
	f.ecold = w64("m.ec_old")
	f.es = w64("m.es")
	f.h0 = w64("m.h0")
	f.entchk = w64("m.entchk")
	f.entg = w64("m.entg")
	f.enta = w64("m.enta")
	f.entb = w64("m.entb")
	f.ht = w64("m.ht")
	f.hhkey = w64("m.hhkey")
	f.hhbase = w64("m.hhbase")
	f.hhslot = w64("m.hhslot")
	f.hhgate = w64("m.hhgate")
	f.recirc = p.AddField("m.recirc", 1)
	f.ftgate = w64("m.ftgate")
	f.fts = w64("m.fts")
	f.fta1 = w64("m.fta1")
	f.fta2 = w64("m.fta2")
}

func (l *Library) declareRegisters() {
	cells := l.Opts.Slots * l.Opts.Size
	w := l.Opts.CellWidth
	// Only the counter array is additive across replicas (MergeSum, the
	// default): it holds the tracked distribution itself, a plain sum over
	// observations. Everything else — squared shadows, moments, variance,
	// window and marker state — is a per-replica derivation of it
	// (Σ(f+g)² ≠ Σf² + Σg²), so merged snapshots zero those registers and
	// CanonicalizeSnapshot recomputes them from the merged counters.
	l.Prog.AddRegister(RegCounters, cells, w)
	l.Prog.SetRegisterMerge(RegCounters, p4.MergeSum)
	l.Prog.AddRegister(RegSquares, cells, w)
	l.Prog.SetRegisterMerge(RegSquares, p4.MergeDerived)
	for _, name := range ScalarRegisters {
		l.Prog.AddRegister(name, l.Opts.Slots, w)
		l.Prog.SetRegisterMerge(name, p4.MergeDerived)
	}
	// The mergelaw pass demands either a slot in CanonicalizeSnapshot's
	// recompute set or a documented reason for every MergeDerived register.
	// The moments/variance/median block is recomputed; the rest is not:
	l.Prog.SetMergeWhy(RegSquares,
		"squared shadow of the window cells; rebuilt cell-wise by the next win_fold, meaningless across shards")
	for reg, why := range map[string]string{
		RegHead:     "circular-buffer cursor, clock-driven and replica-local",
		RegLastInt:  "interval id being accumulated, clock-driven and replica-local",
		RegIntInit:  "validity latch for lastint, replica-local",
		RegCur:      "current-interval accumulator; window merge goes through core.Window.MergeFrom, not cell addition",
		RegCurSq:    "running square of the current interval; recomputed from cur on the next fold",
		RegMedMoves: "marker-movement odometer, a per-replica diagnostic",
	} {
		l.Prog.SetMergeWhy(reg, why)
	}
	// win_fold overwrites the oldest window cell with the completed
	// interval — the one sanctioned non-additive write to the counter
	// array. The merged view stays correct because window state merges
	// through the shared-clock core path, never by summing slots.
	l.Prog.ExemptMergeWrite("win_fold", RegCounters,
		"circular-buffer override: the window replaces its oldest slot; slots merge via core.Window, not cell addition")
}

// Binding action parameter layout (shared prefix):
//
//	P0 slotBase = slot*Size (cell base in RegCounters/RegSquares)
//	P1 slotID   = slot (indexes the scalar registers, carried into digests)
//
// frequency actions add: P2.. extraction parameters, then size, pa, pb.
// the window action adds: P2 intervalShift, P3 capacity, P4 k.
func (l *Library) declareBindActions() {
	f := &l.f
	std := l.Std
	common := func() []p4.Op {
		return []p4.Op{
			p4.Mov(f.base, p4.P(0)),
			p4.Mov(f.slotid, p4.P(1)),
			p4.Mov(f.enable, p4.C(1)),
		}
	}
	freqTail := func(sizeP, paP, pbP, kP int) []p4.Op {
		return []p4.Op{
			p4.Mov(f.kind, p4.C(kindFreq)),
			p4.Mov(f.size, p4.P(sizeP)),
			p4.Mov(f.pa, p4.P(paP)),
			p4.Mov(f.pb, p4.P(pbP)),
			p4.Mov(f.k, p4.P(kP)),
		}
	}

	// bind_freq_echo(slotBase, slot, base, size, pa, pb, k):
	// value = echo.value − base. k ≥ 1 arms the outlier check at k·σ;
	// k = 0 disables it.
	l.Prog.AddAction(p4.NewAction("bind_freq_echo", 7, append(append(common(),
		p4.Sub(f.val, p4.F(std.EchoValue), p4.P(2))),
		freqTail(3, 4, 5, 6)...)...))

	// Value extraction subtracts the base with WRAPPING arithmetic: a value
	// below the base wraps to a huge number, fails the val < size guard in
	// the control flow, and the packet is skipped — it must not alias into
	// counter 0.
	// bind_freq_dst(slotBase, slot, shift, base, size, pa, pb, k):
	// value = (ipv4.dst >> shift) − base. shift selects the granularity
	// (24 → /8 prefix index, 8 → /24 index, 0 → host), base aligns the
	// result to the counter array.
	l.Prog.AddAction(p4.NewAction("bind_freq_dst", 8, append(append(common(),
		p4.Shr(f.t1, p4.F(std.IPv4Dst), p4.P(2)),
		p4.Sub(f.val, p4.F(f.t1), p4.P(3))),
		freqTail(4, 5, 6, 7)...)...))

	// bind_freq_dport(slotBase, slot, shift, base, size, pa, pb, k).
	l.Prog.AddAction(p4.NewAction("bind_freq_dport", 8, append(append(common(),
		p4.Shr(f.t1, p4.F(std.TCPDport), p4.P(2)),
		p4.Sub(f.val, p4.F(f.t1), p4.P(3))),
		freqTail(4, 5, 6, 7)...)...))

	// bind_freq_proto(slotBase, slot, base, size, pa, pb, k):
	// value = ipv4.proto − base, the packets-by-type distribution.
	l.Prog.AddAction(p4.NewAction("bind_freq_proto", 7, append(append(common(),
		p4.Sub(f.val, p4.F(std.IPv4Proto), p4.P(2))),
		freqTail(3, 4, 5, 6)...)...))

	// bind_freq_len(slotBase, slot, shift, base, size, pa, pb, k):
	// value = (wire_len >> shift) − base, a packet-size distribution.
	l.Prog.AddAction(p4.NewAction("bind_freq_len", 8, append(append(common(),
		p4.Shr(f.t1, p4.F(std.WireLen), p4.P(2)),
		p4.Sub(f.val, p4.F(f.t1), p4.P(3))),
		freqTail(4, 5, 6, 7)...)...))

	// bind_window(slotBase, slot, intervalShift, capacity, k):
	// packets-per-interval window; interval id = ts >> intervalShift.
	l.Prog.AddAction(p4.NewAction("bind_window", 5, append(common(),
		p4.Mov(f.kind, p4.C(kindWindow)),
		p4.Shr(f.curint, p4.F(std.TsNs), p4.P(2)),
		p4.Mov(f.cap, p4.P(3)),
		p4.Mov(f.k, p4.P(4)),
		p4.Mov(f.delta, p4.C(1)),
	)...))
	if !l.Opts.Strict {
		// bind_window_bytes: bytes-per-interval window ("traffic volumes
		// over time"); each packet contributes its wire length. The
		// squared accumulator then needs runtime multiplication, so the
		// action exists only on multiply-capable targets.
		l.Prog.AddAction(p4.NewAction("bind_window_bytes", 5, append(common(),
			p4.Mov(f.kind, p4.C(kindWindow)),
			p4.Shr(f.curint, p4.F(std.TsNs), p4.P(2)),
			p4.Mov(f.cap, p4.P(3)),
			p4.Mov(f.k, p4.P(4)),
			p4.Mov(f.delta, p4.F(std.WireLen)),
		)...))
	}

	// bind_none: the miss default; the stage does nothing.
	l.Prog.AddAction(p4.NewAction("bind_none", 0,
		p4.Mov(f.enable, p4.C(0)),
	))
}

// FwdTable is the LPM forwarding table providing connectivity; the
// controller installs routes with Runtime.AddRoute.
const FwdTable = "fwd"

func (l *Library) declareTables() {
	std := l.Std
	l.Prog.AddAction(p4.NewAction("fwd_set_port", 1,
		p4.SetEgress(p4.P(0)),
	))
	l.Prog.AddAction(p4.NewAction("fwd_drop", 0, p4.Drop()))
	l.Prog.AddTable(&p4.TableDef{
		Name:          FwdTable,
		Keys:          []p4.KeySpec{{Field: std.IPv4Dst, Kind: p4.MatchLPM}},
		ActionNames:   []string{"fwd_set_port", "fwd_drop"},
		DefaultAction: "fwd_flood",
		MaxEntries:    l.Opts.FwdEntries,
	})
	l.Prog.AddAction(p4.NewAction("fwd_flood", 0,
		// No route: reflect to port 0 (the simulator's "everything else"
		// port) rather than dropping, so unrouted experiments still see
		// their traffic.
		p4.SetEgress(p4.C(0)),
	))
	bindable := []string{
		"bind_freq_echo", "bind_freq_dst", "bind_freq_dport",
		"bind_freq_proto", "bind_freq_len", "bind_window", "bind_none",
	}
	if !l.Opts.Strict {
		bindable = append(bindable, "bind_window_bytes")
	}
	if l.Opts.Sparse {
		bindable = append(bindable, "bind_sparse_dst", "bind_sparse_src")
	}
	if l.Opts.Entropy {
		bindable = append(bindable, "bind_ent_dst", "bind_ent_src")
	}
	if l.Opts.HeavyHitter {
		bindable = append(bindable, "bind_hh_dst", "bind_hh_src")
	}
	if l.Opts.FlowTable {
		bindable = append(bindable, "bind_flow_dst", "bind_flow_src", "bind_flow_pair")
	}
	for s := 0; s < l.Opts.Stages; s++ {
		name := fmt.Sprintf("bind%d", s)
		l.BindTables = append(l.BindTables, name)
		l.Prog.AddTable(&p4.TableDef{
			Name: name,
			Keys: []p4.KeySpec{
				{Field: std.EthType, Kind: p4.MatchTernary},
				{Field: std.IPv4Valid, Kind: p4.MatchTernary},
				{Field: std.IPv4Dst, Kind: p4.MatchTernary},
				{Field: std.TCPSyn, Kind: p4.MatchTernary},
			},
			ActionNames:   bindable,
			DefaultAction: "bind_none",
			MaxEntries:    l.Opts.BindEntries,
		})
	}
}

// buildControl assembles the per-packet control flow: each binding stage is
// a table apply followed by the shared update logic, then the echo reply
// hook and reflection.
func (l *Library) buildControl() {
	f := &l.f
	var ctrl []p4.Stmt
	for s := 0; s < l.Opts.Stages; s++ {
		ctrl = append(ctrl, p4.Apply(l.BindTables[s]))
		ctrl = append(ctrl, p4.If(eq(f.enable, 1), l.updateBlock()...))
		ctrl = append(ctrl, p4.Call("stage_reset"))
	}
	ctrl = append(ctrl, p4.If(eq(l.Std.IPv4Valid, 1), p4.Apply(FwdTable)))
	if l.Opts.Echo {
		// The echo reply overrides forwarding: back out the ingress port.
		ctrl = append(ctrl, p4.If(eq(l.Std.EchoValid, 1), p4.Call("echo_reply")))
	}
	l.Prog.Control = ctrl
}

func eq(f p4.FieldID, v uint64) p4.Cond {
	return p4.Cond{A: p4.F(f), Op: p4.CmpEq, B: p4.C(v)}
}

func ne(f p4.FieldID, v uint64) p4.Cond {
	return p4.Cond{A: p4.F(f), Op: p4.CmpNe, B: p4.C(v)}
}

func fgt(a, b p4.FieldID) p4.Cond {
	return p4.Cond{A: p4.F(a), Op: p4.CmpGt, B: p4.F(b)}
}

func flt(a, b p4.FieldID) p4.Cond {
	return p4.Cond{A: p4.F(a), Op: p4.CmpLt, B: p4.F(b)}
}

// updateBlock is the shared per-stage statistics logic.
func (l *Library) updateBlock() []p4.Stmt {
	f := &l.f
	var stmts []p4.Stmt
	stmts = append(stmts,
		p4.If(eq(f.kind, kindFreq),
			p4.If(flt(f.val, f.size), l.freqBlock()...),
		),
		p4.If(eq(f.kind, kindWindow), l.windowBlock()...),
	)
	if l.Opts.Sparse {
		stmts = append(stmts, p4.If(eq(f.kind, kindSparse), l.sparseBlock()...))
	}
	if l.Opts.Entropy {
		stmts = append(stmts, p4.If(eq(f.kind, kindEntropy),
			p4.If(flt(f.val, f.size), l.entropyBlock()...),
		))
	}
	if l.Opts.HeavyHitter {
		stmts = append(stmts, p4.If(eq(f.kind, kindHH), l.hhBlock()...))
	}
	if l.Opts.FlowTable {
		stmts = append(stmts, p4.If(eq(f.kind, kindFlow), l.flowBlock()...))
	}
	if !l.Opts.NoVariance {
		stmts = append(stmts,
			p4.If(eq(f.doSqrt, 1), l.sqrtBlock()...),
			p4.If(eq(f.doCheck, 1), l.checkBlock()...),
		)
	}
	return stmts
}

// freqBlock updates a frequency distribution: counter increment, incremental
// moments, variance + sd refresh, percentile step.
func (l *Library) freqBlock() []p4.Stmt {
	f := &l.f
	stmts := []p4.Stmt{
		p4.Call("freq_load"),
		p4.If(eq(f.f, 0), p4.Call("freq_incr_n")),
		p4.Call("freq_accum"),
	}
	stmts = append(stmts, l.varStmts()...)
	stmts = append(stmts, l.medianStmts()...)
	if !l.Opts.NoVariance {
		// Arm the imbalance check (k = 0 leaves it off); the threshold
		// is evaluated in the check block, after the fresh σ is stored.
		stmts = append(stmts, p4.If(ne(f.k, 0), p4.Call("freq_arm_check")))
	}
	return stmts
}

// varStmts refreshes m.sqin = N·Xsumsq − Xsum² and requests the sqrt pass.
func (l *Library) varStmts() []p4.Stmt {
	if l.Opts.NoVariance {
		return nil
	}
	if l.Opts.Strict {
		// One-term shift approximations: N·Xsumsq ≈ Xsumsq<<msb(N),
		// Xsum² ≈ Xsum<<msb(Xsum).
		return []p4.Stmt{
			p4.If(ne(l.f.n, 0), l.mulShiftTree(l.f.xsumsq, l.f.n, l.f.nss)...),
			p4.If(ne(l.f.xsum, 0), l.mulShiftTree(l.f.xsum, l.f.xsum, l.f.ss)...),
			p4.If(eq(l.f.n, 0), p4.Call("var_zero_nss")),
			p4.If(eq(l.f.xsum, 0), p4.Call("var_zero_ss")),
			p4.Call("var_finish"),
		}
	}
	return []p4.Stmt{p4.Call("var_mul")}
}

// medianStmts is the Figure 3 percentile logic: seed on first value, account
// the new observation, rebalance by at most one slot.
func (l *Library) medianStmts() []p4.Stmt {
	f := &l.f
	cmp := p4.Call("med_cmp")
	if l.Opts.Strict {
		cmp = p4.Call("med_cmp_strict")
	}
	return []p4.Stmt{
		p4.Call("med_load"),
		p4.If(eq(f.minit, 0),
			p4.Call("med_seed"),
		).WithElse(
			p4.If(flt(f.val, f.med), p4.Call("med_inc_low")),
			p4.If(fgt(f.val, f.med), p4.Call("med_inc_high")),
			p4.Call("med_fmed"),
			cmp,
			p4.If(fgt(f.lhs, f.rhs),
				// marker moves up unless clamped at the top
				p4.If(flt(f.t2, f.size), p4.Call("med_up")),
			).WithElse(
				p4.If(fgt(f.lhs2, f.rhs2),
					p4.If(ne(f.med, 0), p4.Call("med_down")),
				),
			),
		),
	}
}

// windowBlock is the circular time-window logic: accumulate within an
// interval; at a boundary run the anomaly check against the stored
// distribution, then fold the completed interval, overriding the oldest
// counter — the paper's longest dependency chain.
func (l *Library) windowBlock() []p4.Stmt {
	f := &l.f
	// The detection check arms before the fold, against the stored
	// distribution, exactly like core.Window.CheckThenTick. In the default
	// mode it runs once two intervals are stored; in Strict mode N·x is a
	// constant shift that is only correct on a full window.
	checkCond := p4.Cond{A: p4.F(f.n), Op: p4.CmpGe, B: p4.C(2)}
	armAction := "win_arm_check"
	if l.Opts.Strict {
		checkCond = p4.Cond{A: p4.F(f.n), Op: p4.CmpEq, B: p4.F(f.cap)}
		armAction = "win_arm_check_strict"
	}
	boundary := []p4.Stmt{}
	if !l.Opts.NoVariance {
		boundary = append(boundary, p4.If(checkCond, p4.Call(armAction)))
	}
	boundary = append(boundary,
		p4.Call("win_fold"),
		p4.If(p4.Cond{A: p4.F(f.head), Op: p4.CmpEq, B: p4.F(f.cap)},
			p4.Call("win_head_wrap"),
		),
		p4.If(flt(f.n, f.cap),
			p4.Call("win_grow"),
		).WithElse(
			p4.Call("win_evict"),
		),
		p4.Call("win_commit"),
	)
	boundary = append(boundary, l.varStmts()...)
	return []p4.Stmt{
		p4.Call("win_load"),
		p4.If(eq(f.init, 0), p4.Call("win_init")),
		p4.If(p4.Cond{A: p4.F(f.curint), Op: p4.CmpNe, B: p4.F(f.last)},
			boundary...,
		).WithElse(
			p4.Call("win_accum"),
		),
	}
}

// sqrtBlock computes m.sqout = SqrtApprox(m.sqin) via the Figure 2 if-tree
// and stores variance and sd into the distribution's metadata.
func (l *Library) sqrtBlock() []p4.Stmt {
	stmts := l.sqrtTree()
	return append(stmts, p4.Call("sqrt_store"))
}

// checkBlock fires the anomaly digest when the armed comparison holds. For
// windows the operands were computed before the fold by the arm action; for
// frequency-style distributions (dense or sparse) the threshold uses the σ
// the sqrt block just stored, so it is computed here.
func (l *Library) checkBlock() []p4.Stmt {
	f := &l.f
	notWindow := p4.Cond{A: p4.F(f.kind), Op: p4.CmpNe, B: p4.C(kindWindow)}
	var stmts []p4.Stmt
	if l.Opts.Strict {
		freqThr := []p4.Stmt{p4.Call("freq_thr_strict")}
		freqThr = append(freqThr, p4.If(ne(f.n, 0), l.mulShiftTree(f.fnew, f.n, f.nx)...))
		stmts = append(stmts, p4.IfStmt{Cond: notWindow, Then: freqThr})
	} else {
		stmts = append(stmts, p4.IfStmt{Cond: notWindow, Then: []p4.Stmt{p4.Call("freq_thr")}})
	}
	stmts = append(stmts, p4.If(fgt(f.nx, f.thr), p4.Call("check_alert")))
	return stmts
}
