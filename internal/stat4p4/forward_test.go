package stat4p4

import (
	"testing"

	"stat4/internal/packet"
)

func TestForwardingRoutes(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 8, Stages: 1})
	sw := rt.Switch()
	if _, err := rt.AddRoute(packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddRoute(packet.NewPrefix(packet.ParseIP4(10, 0, 5, 0), 24), 7); err != nil {
		t.Fatal(err)
	}
	probe := func(dst packet.IP4) uint16 {
		out := sw.ProcessFrame(0, 1, packet.NewUDPFrame(1, dst, 5, 80, 10).Serialize())
		if len(out) != 1 {
			t.Fatalf("packet to %v not forwarded", dst)
		}
		return out[0].Port
	}
	if got := probe(packet.ParseIP4(10, 0, 5, 9)); got != 7 {
		t.Fatalf("longest prefix: port %d, want 7", got)
	}
	if got := probe(packet.ParseIP4(10, 9, 9, 9)); got != 3 {
		t.Fatalf("/8 route: port %d, want 3", got)
	}
	if got := probe(packet.ParseIP4(192, 168, 1, 1)); got != 0 {
		t.Fatalf("unrouted: port %d, want flood port 0", got)
	}
}

// TestLocalReaction: the data plane drops anomalous traffic on its own after
// the controller blackholes the victim — "locally react to anomalies".
func TestLocalReactionBlackhole(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 8, Stages: 1})
	sw := rt.Switch()
	victim := packet.ParseIP4(10, 0, 1, 6)
	if _, err := rt.AddRoute(packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8), 2); err != nil {
		t.Fatal(err)
	}
	frame := packet.NewUDPFrame(1, victim, 5, 80, 10).Serialize()
	if out := sw.ProcessFrame(0, 1, frame); len(out) != 1 {
		t.Fatal("traffic not flowing before the blackhole")
	}
	id, err := rt.AddDropRoute(packet.NewPrefix(victim, 32))
	if err != nil {
		t.Fatal(err)
	}
	if out := sw.ProcessFrame(1, 1, frame); out != nil {
		t.Fatal("blackholed traffic forwarded")
	}
	// Other destinations in the /8 keep flowing.
	other := packet.NewUDPFrame(1, packet.ParseIP4(10, 0, 1, 7), 5, 80, 10).Serialize()
	if out := sw.ProcessFrame(2, 1, other); len(out) != 1 || out[0].Port != 2 {
		t.Fatal("collateral damage from the blackhole")
	}
	// Mitigation lifted.
	if err := rt.DelRoute(id); err != nil {
		t.Fatal(err)
	}
	if out := sw.ProcessFrame(3, 1, frame); len(out) != 1 {
		t.Fatal("traffic still dropped after the route was removed")
	}
}

// TestEchoOverridesForwarding: an echo frame bounces to its ingress port
// even with routes installed.
func TestEchoOverridesForwarding(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 512, Stages: 1, Echo: true})
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), EchoBias, 512, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddRoute(packet.NewPrefix(0, 0), 9); err != nil {
		t.Fatal(err)
	}
	out := rt.Switch().ProcessFrame(0, 5, packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, 3).Serialize())
	if len(out) != 1 || out[0].Port != 5 {
		t.Fatalf("echo reply went to port %v, want ingress 5", out)
	}
}

// TestMalformedEchoIgnored: a truncated echo payload fails extraction, so no
// distribution updates and no reply marking happens.
func TestMalformedEchoIgnored(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 512, Stages: 1, Echo: true})
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), EchoBias, 512, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	bad := &packet.Packet{
		Eth:     packet.Ethernet{Type: packet.EtherTypeEcho},
		Payload: []byte{0x01}, // one byte: too short for an echo request
	}
	out := sw.ProcessFrame(0, 1, bad.Serialize())
	m, _ := rt.ReadMoments(0)
	if m.N != 0 || m.Xsum != 0 {
		t.Fatalf("malformed echo updated the distribution: %+v", m)
	}
	// The frame is still forwarded (as a plain L2 frame), not answered.
	if len(out) == 1 {
		if _, err := packet.UnmarshalEchoReply(mustParse(t, out[0].Data).Payload); err == nil {
			t.Fatal("malformed echo got a reply")
		}
	}
}

func mustParse(t *testing.T, b []byte) *packet.Packet {
	t.Helper()
	p, err := packet.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
