package stat4p4

import (
	"errors"
	"math/rand"
	"testing"

	"stat4/internal/core"
	"stat4/internal/p4"
	"stat4/internal/packet"
)

func mustRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	rt, err := NewRuntime(Build(opts))
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func drainAnomalies(sw *p4.Switch) []p4.Digest {
	var out []p4.Digest
	for {
		select {
		case d := <-sw.Digests():
			out = append(out, d)
		default:
			return out
		}
	}
}

func TestBuildValidates(t *testing.T) {
	lib := Build(DefaultOptions)
	if err := lib.Prog.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(lib.BindTables) != 2 {
		t.Fatalf("BindTables = %v", lib.BindTables)
	}
}

func TestStrictBuildIsMulFree(t *testing.T) {
	lib := Build(Options{Slots: 2, Size: 64, Stages: 1, Strict: true, StrictCapShift: 4})
	if lib.Prog.Target.AllowMul {
		t.Fatal("strict build kept the bmv2 target")
	}
	if err := lib.Prog.Validate(); err != nil {
		t.Fatalf("strict program invalid: %v", err)
	}
	for _, a := range lib.Prog.Actions {
		for _, op := range a.Ops {
			if op.Code == p4.OpMul {
				t.Fatalf("strict action %q contains a multiplication", a.Name)
			}
		}
	}
}

// TestEchoCrossValidation is the Figure 5 experiment as a test: for every
// echo packet, the switch's N, Xsum, Xsumsq, variance, sd and median marker
// must equal a host-side computation (internal/core) over the same stream.
// The paper reports equality for up to 10,000 packets; we assert it per
// packet for 10,000.
func TestEchoCrossValidation(t *testing.T) {
	const (
		domain  = 512
		base    = EchoBias - 255
		packets = 10000
	)
	rt := mustRuntime(t, Options{Slots: 1, Size: domain, Stages: 1, Echo: true})
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), base, domain, 1, 1, 0); err != nil {
		t.Fatal(err)
	}

	host := core.NewFreqDist(domain)
	med := host.TrackMedian()
	rng := rand.New(rand.NewSource(42))
	sw := rt.Switch()

	for i := 0; i < packets; i++ {
		v := int16(rng.Intn(511) - 255) // −255..255
		frame := packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, v).Serialize()
		out := sw.ProcessFrame(uint64(i), 3, frame)
		if len(out) != 1 || out[0].Port != 3 {
			t.Fatalf("packet %d: no echo reply", i)
		}
		if err := host.Observe(uint64(int64(v) + 255)); err != nil {
			t.Fatal(err)
		}

		rp, err := packet.Parse(out[0].Data)
		if err != nil {
			t.Fatalf("packet %d: reply unparseable: %v", i, err)
		}
		reply, err := packet.UnmarshalEchoReply(rp.Payload)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}

		m := host.Moments()
		if reply.N != m.N || reply.Xsum != m.Sum || reply.Xsumsq != m.Sumsq {
			t.Fatalf("packet %d: switch (N=%d,sum=%d,sumsq=%d) host (%d,%d,%d)",
				i, reply.N, reply.Xsum, reply.Xsumsq, m.N, m.Sum, m.Sumsq)
		}
		if reply.Var != m.Variance() {
			t.Fatalf("packet %d: switch var %d, host %d", i, reply.Var, m.Variance())
		}
		if reply.SD != m.StdDev() {
			t.Fatalf("packet %d: switch sd %d, host %d", i, reply.SD, m.StdDev())
		}
		if reply.Median != med.Value() {
			t.Fatalf("packet %d: switch median %d, host %d", i, reply.Median, med.Value())
		}
	}
}

// TestWindowCrossValidation drives the same per-interval packet counts
// through the emitted window logic and core.Window, asserting equal moments
// and identical anomaly decisions at every interval boundary.
func TestWindowCrossValidation(t *testing.T) {
	const (
		intShift  = 10 // 1024 ns intervals
		capacity  = 16
		intervals = 300
	)
	rt := mustRuntime(t, Options{Slots: 1, Size: 128, Stages: 1})
	if _, err := rt.BindWindow(0, 0, AllIPv4(), intShift, capacity, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	ref := core.NewWindow(capacity)
	rng := rand.New(rand.NewSource(9))
	frame := packet.NewUDPFrame(1, packet.ParseIP4(10, 0, 0, 1), 5, 80, 10).Serialize()

	for i := 0; i < intervals; i++ {
		count := 20 + rng.Intn(10)
		if i == 250 {
			count = 200 // spike interval
		}
		for p := 0; p < count; p++ {
			ts := uint64(i)<<intShift + uint64(p)
			if i > 0 && p == 0 {
				// Interval boundary: the reference checks then folds;
				// the switch does the same when this packet arrives.
				_, refAnom := ref.CheckThenTick(2)
				sw.ProcessFrame(ts, 1, frame)
				digests := drainAnomalies(sw)
				if refAnom != (len(digests) > 0) {
					t.Fatalf("interval %d: core anomalous=%v, switch digests=%d",
						i-1, refAnom, len(digests))
				}
				if refAnom && digests[0].Values[0] != 0 {
					t.Fatalf("digest slot = %d, want 0", digests[0].Values[0])
				}
			} else {
				sw.ProcessFrame(ts, 1, frame)
			}
			ref.Add(1)
		}
		// Mid-stream moment equality (after the boundary packet of the
		// next interval folds, so compare at a safe point: right after
		// the boundary fold the switch moments equal the reference's).
		if i > 0 {
			m, err := rt.ReadMoments(0)
			if err != nil {
				t.Fatal(err)
			}
			cm := ref.Moments()
			if m.N != cm.N || m.Xsum != cm.Sum || m.Xsumsq != cm.Sumsq {
				t.Fatalf("interval %d: switch (N=%d,sum=%d,sumsq=%d) core (%d,%d,%d)",
					i, m.N, m.Xsum, m.Xsumsq, cm.N, cm.Sum, cm.Sumsq)
			}
			if m.Var != cm.Variance() || m.SD != cm.StdDev() {
				t.Fatalf("interval %d: switch var/sd %d/%d core %d/%d",
					i, m.Var, m.SD, cm.Variance(), cm.StdDev())
			}
		}
	}
}

// TestSpikeDetectedFirstInterval reproduces the case-study headline: a
// traffic spike is detected in the first interval after its start.
func TestSpikeDetectedFirstInterval(t *testing.T) {
	const intShift = 20 // ~1 ms intervals
	rt := mustRuntime(t, Options{Slots: 1, Size: 128, Stages: 1})
	if _, err := rt.BindWindow(0, 0, AllIPv4(), intShift, 100, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	frame := packet.NewUDPFrame(1, packet.ParseIP4(10, 1, 2, 3), 5, 80, 10).Serialize()
	rng := rand.New(rand.NewSource(3))

	send := func(interval int, count int) {
		for p := 0; p < count; p++ {
			sw.ProcessFrame(uint64(interval)<<intShift+uint64(p), 1, frame)
		}
	}
	// Warm-up: with only a handful of stored intervals the variance
	// estimate is noisy, so alarms during the first few intervals are
	// expected (the controller ignores them until the window fills).
	for i := 0; i < 20; i++ {
		send(i, 95+rng.Intn(11))
	}
	drainAnomalies(sw)
	for i := 20; i < 150; i++ {
		send(i, 95+rng.Intn(11))
	}
	if got := drainAnomalies(sw); len(got) != 0 {
		t.Fatalf("%d false alarms during stable traffic", len(got))
	}
	// Spike starts at interval 150; it must be flagged when interval 150
	// completes (first packet of 151).
	send(150, 400)
	send(151, 400)
	digests := drainAnomalies(sw)
	if len(digests) == 0 {
		t.Fatal("spike not detected in its first interval")
	}
	if digests[0].Values[1] != 400 {
		t.Fatalf("digest interval value = %d, want 400", digests[0].Values[1])
	}
}

// TestDrillDownRebinding exercises the runtime retuning path of the case
// study: a second stage is bound to per-/24 tracking, read, unbound, and
// rebound to per-host tracking, all while traffic flows.
func TestDrillDownRebinding(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 2, Size: 64, Stages: 2})
	sw := rt.Switch()
	slash8 := packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8)

	if _, err := rt.BindWindow(0, 0, DstIn(slash8), 10, 16, 2); err != nil {
		t.Fatal(err)
	}
	// Stage 1: packets per /24 inside 10.0.0.0/16 (shift 8, base 10.0<<8).
	id, err := rt.BindFreqDst(1, 1, DstIn(slash8), 8, uint64(packet.ParseIP4(10, 0, 0, 0))>>8, 64, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(d packet.IP4) []byte {
		return packet.NewUDPFrame(1, d, 5, 80, 10).Serialize()
	}
	for i := 0; i < 10; i++ {
		sw.ProcessFrame(uint64(i), 1, mk(packet.ParseIP4(10, 0, 5, byte(i))))
	}
	for i := 0; i < 3; i++ {
		sw.ProcessFrame(uint64(20+i), 1, mk(packet.ParseIP4(10, 0, 7, 1)))
	}
	counters, err := rt.ReadCounters(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if counters[5] != 10 || counters[7] != 3 {
		t.Fatalf("per-/24 counters = %v", counters[:10])
	}
	m, _ := rt.ReadMoments(1)
	if m.N != 2 || m.Xsum != 13 {
		t.Fatalf("stage-1 moments N=%d sum=%d, want 2/13", m.N, m.Xsum)
	}

	// Drill down: retarget slot 1 at hosts within 10.0.5.0/24.
	if err := rt.Unbind(1, id); err != nil {
		t.Fatal(err)
	}
	if err := rt.ResetSlot(1); err != nil {
		t.Fatal(err)
	}
	slash24 := packet.NewPrefix(packet.ParseIP4(10, 0, 5, 0), 24)
	if _, err := rt.BindFreqDst(1, 1, DstIn(slash24), 0, uint64(packet.ParseIP4(10, 0, 5, 0)), 64, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		sw.ProcessFrame(uint64(40+i), 1, mk(packet.ParseIP4(10, 0, 5, 9)))
	}
	sw.ProcessFrame(60, 1, mk(packet.ParseIP4(10, 0, 7, 1))) // outside the /24 now
	counters, _ = rt.ReadCounters(1, 64)
	if counters[9] != 7 {
		t.Fatalf("per-host counter = %d, want 7", counters[9])
	}
	var sum uint64
	for _, c := range counters {
		sum += c
	}
	if sum != 7 {
		t.Fatalf("stray counts after rebinding: %v", counters[:16])
	}
}

// TestFreqOutOfRangeValuesSkipped: values beyond the bound size leave all
// state untouched.
func TestFreqOutOfRangeValuesSkipped(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, Echo: true})
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), EchoBias, 8, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	// Value 100 with size 8 → skipped.
	sw.ProcessFrame(0, 1, packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, 100).Serialize())
	m, _ := rt.ReadMoments(0)
	if m.N != 0 || m.Xsum != 0 {
		t.Fatalf("out-of-range value counted: %+v", m)
	}
	// Value 5 → counted.
	sw.ProcessFrame(1, 1, packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, 5).Serialize())
	m, _ = rt.ReadMoments(0)
	if m.N != 1 || m.Xsum != 1 {
		t.Fatalf("in-range value not counted: %+v", m)
	}
}

// TestPercentile90InP4: 9:1 weights track the 90th percentile in the switch.
func TestPercentile90InP4(t *testing.T) {
	const domain = 256
	rt := mustRuntime(t, Options{Slots: 1, Size: domain, Stages: 1, Echo: true})
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), EchoBias, domain, 9, 1, 0); err != nil {
		t.Fatal(err)
	}
	host := core.NewFreqDist(domain)
	p90 := host.TrackPercentile(9, 1)
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20000; i++ {
		v := int16(rng.Intn(domain))
		sw.ProcessFrame(uint64(i), 1, packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, v).Serialize())
		if err := host.Observe(uint64(v)); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := rt.ReadMoments(0)
	if m.Median != p90.Value() {
		t.Fatalf("switch marker %d, host marker %d", m.Median, p90.Value())
	}
	// And the marker is near the true 90th percentile of the uniform
	// domain (≈230).
	if m.Median < 215 || m.Median > 245 {
		t.Fatalf("p90 marker at %d, expected ≈230", m.Median)
	}
}

func TestBindValidation(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 2, Size: 64, Stages: 1})
	if _, err := rt.BindFreqEcho(0, 5, EchoOnly(), 0, 8, 1, 1, 0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("bad slot: %v", err)
	}
	if _, err := rt.BindFreqEcho(2, 0, EchoOnly(), 0, 8, 1, 1, 0); !errors.Is(err, ErrBadStage) {
		t.Fatalf("bad stage: %v", err)
	}
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), 0, 100, 1, 1, 0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("bad size: %v", err)
	}
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), 0, 8, 0, 1, 0); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := rt.BindWindow(0, 0, AllIPv4(), 80, 16, 2); err == nil {
		t.Fatal("huge interval shift accepted")
	}
	if _, err := rt.BindWindow(0, 0, AllIPv4(), 10, 1000, 2); !errors.Is(err, ErrBadSize) {
		t.Fatalf("bad capacity: %v", err)
	}
}

func TestStrictBindValidation(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, Strict: true, StrictCapShift: 4})
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), 0, 8, 9, 1, 0); !errors.Is(err, ErrStrict) {
		t.Fatalf("strict percentile weights: %v", err)
	}
	if _, err := rt.BindWindow(0, 0, AllIPv4(), 10, 8, 2); !errors.Is(err, ErrStrict) {
		t.Fatalf("strict capacity: %v", err)
	}
	if _, err := rt.BindWindow(0, 0, AllIPv4(), 10, 16, 3); !errors.Is(err, ErrStrict) {
		t.Fatalf("strict k: %v", err)
	}
	if _, err := rt.BindWindow(0, 0, AllIPv4(), 10, 16, 2); err != nil {
		t.Fatal(err)
	}
}

// TestStrictWindowDetectsSpike: the multiplication-free emission still
// catches a large spike (its variance is approximate, so the check is
// order-of-magnitude rather than exact).
func TestStrictWindowDetectsSpike(t *testing.T) {
	const intShift = 10
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, Strict: true, StrictCapShift: 4})
	if _, err := rt.BindWindow(0, 0, AllIPv4(), intShift, 16, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	frame := packet.NewUDPFrame(1, packet.ParseIP4(10, 0, 0, 1), 5, 80, 10).Serialize()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 40; i++ {
		count := 50 + rng.Intn(6)
		if i == 35 {
			count = 500
		}
		for p := 0; p < count; p++ {
			sw.ProcessFrame(uint64(i)<<intShift+uint64(p), 1, frame)
		}
	}
	found := false
	for _, d := range drainAnomalies(sw) {
		if d.Values[1] == 500 {
			found = true
		}
	}
	if !found {
		t.Fatal("strict emission missed a 10x spike")
	}
}

// TestTwoStagesIndependentDistributions: both stages update their own slots
// from the same packet.
func TestTwoStagesIndependentDistributions(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 2, Size: 64, Stages: 2})
	sw := rt.Switch()
	if _, err := rt.BindWindow(0, 0, AllIPv4(), 10, 8, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqProto(1, 1, AllIPv4(), 0, 64, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	tcp := packet.NewTCPFrame(1, 2, 3, 4, packet.FlagSYN).Serialize()
	udp := packet.NewUDPFrame(1, 2, 3, 4, 10).Serialize()
	for i := 0; i < 6; i++ {
		sw.ProcessFrame(uint64(i), 1, tcp)
	}
	for i := 0; i < 4; i++ {
		sw.ProcessFrame(uint64(10+i), 1, udp)
	}
	counters, _ := rt.ReadCounters(1, 20)
	if counters[6] != 6 || counters[17] != 4 {
		t.Fatalf("proto counters tcp=%d udp=%d, want 6/4", counters[6], counters[17])
	}
	m, _ := rt.ReadMoments(1)
	if m.N != 2 || m.Xsum != 10 {
		t.Fatalf("proto moments %+v", m)
	}
	// Slot 0's window accumulated all ten packets in one interval.
	curReg, _ := rt.Switch().Register(RegCur)
	cur, _ := curReg.Read(0)
	if cur != 10 {
		t.Fatalf("window current accumulator = %d, want 10", cur)
	}
}

func TestResourceReportShape(t *testing.T) {
	lib := Build(Options{Slots: 8, Size: 256, Stages: 2, Echo: true})
	r := p4.AnalyzeProgram(lib.Prog)
	// Binding tables match only parser-set fields: no rule-to-rule
	// dependencies, matching the paper's "at most one dependency" claim
	// with room to spare.
	if r.MatchRuleDependencies != 0 {
		t.Fatalf("MatchRuleDependencies = %d", r.MatchRuleDependencies)
	}
	if r.LongestDepChain < 8 || r.LongestDepChain > 64 {
		t.Fatalf("LongestDepChain = %d, expected a pipeline-plausible depth", r.LongestDepChain)
	}
	// 8 slots × 256 cells × (8+8 bytes) + 14 scalar arrays × 8 slots × 8.
	if r.RegisterBytes != 8*256*16+len(ScalarRegisters)*8*8 {
		t.Fatalf("RegisterBytes = %d", r.RegisterBytes)
	}
}

func TestBuildPanicsOnBadOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build with zero slots did not panic")
		}
	}()
	Build(Options{Slots: 0, Size: 8, Stages: 1})
}

// TestFreqImbalanceCheck: with k=2 armed, a frequency distribution pushes a
// traffic-imbalance digest identifying the hot value — the drill-down signal
// of the case study.
func TestFreqImbalanceCheck(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1})
	// Track packets per /24 inside 10.0.0.0/16 with the outlier check on.
	slash16 := packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 16)
	if _, err := rt.BindFreqDst(0, 0, DstIn(slash16), 8,
		uint64(packet.ParseIP4(10, 0, 0, 0))>>8, 64, 1, 1, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	mk := func(subnet byte) []byte {
		return packet.NewUDPFrame(1, packet.ParseIP4(10, 0, subnet, 9), 5, 80, 10).Serialize()
	}
	// Balanced phase: round-robin across six subnets.
	for round := 0; round < 50; round++ {
		for s := byte(0); s < 6; s++ {
			sw.ProcessFrame(uint64(round*6+int(s)), 1, mk(s))
		}
	}
	drainAnomalies(sw)
	// Hot subnet 3 gets a burst.
	for i := 0; i < 200; i++ {
		sw.ProcessFrame(uint64(1000+i), 1, mk(3))
	}
	digests := drainAnomalies(sw)
	if len(digests) == 0 {
		t.Fatal("imbalance never alerted")
	}
	for _, d := range digests {
		if d.Values[1] != 3 {
			t.Fatalf("imbalance digest names value %d, want subnet index 3", d.Values[1])
		}
	}
}

// TestWindowBytesCrossValidation drives byte-counting windows against
// core.Window fed wire lengths.
func TestWindowBytesCrossValidation(t *testing.T) {
	const (
		intShift  = 10
		capacity  = 8
		intervals = 60
	)
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1})
	if _, err := rt.BindWindowBytes(0, 0, AllIPv4(), intShift, capacity, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	ref := core.NewWindow(capacity)
	rng := rand.New(rand.NewSource(19))

	for i := 0; i < intervals; i++ {
		count := 5 + rng.Intn(5)
		for p := 0; p < count; p++ {
			payload := rng.Intn(600)
			frame := packet.NewUDPFrame(1, packet.ParseIP4(10, 0, 0, 1), 5, 80, payload)
			wire := frame.Serialize()
			ts := uint64(i)<<intShift + uint64(p)
			if i > 0 && p == 0 {
				ref.Tick()
			}
			sw.ProcessFrame(ts, 1, wire)
			ref.Add(uint64(len(wire)))
		}
		if i > 0 {
			m, _ := rt.ReadMoments(0)
			cm := ref.Moments()
			if m.N != cm.N || m.Xsum != cm.Sum || m.Xsumsq != cm.Sumsq {
				t.Fatalf("interval %d: switch (N=%d,sum=%d,sumsq=%d) core (%d,%d,%d)",
					i, m.N, m.Xsum, m.Xsumsq, cm.N, cm.Sum, cm.Sumsq)
			}
		}
	}
}

func TestWindowBytesRejectedOnStrict(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, Strict: true, StrictCapShift: 4})
	if _, err := rt.BindWindowBytes(0, 0, AllIPv4(), 10, 16, 2); !errors.Is(err, ErrStrict) {
		t.Fatalf("byte window on strict target: err = %v, want ErrStrict", err)
	}
}

// TestMedianChangeRate: the marker movement counter tracks the percentile
// change rate the paper names as an anomaly signal — a distribution shift
// shows up as a burst of marker movement, and the counter matches the
// reference library's exactly.
func TestMedianChangeRate(t *testing.T) {
	const domain = 256
	rt := mustRuntime(t, Options{Slots: 1, Size: domain, Stages: 1, Echo: true})
	if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), EchoBias, domain, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	host := core.NewFreqDist(domain)
	med := host.TrackMedian()
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(51))

	send := func(v int16) {
		sw.ProcessFrame(0, 1, packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, v).Serialize())
		if err := host.Observe(uint64(v)); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 1: stable values around 50.
	for i := 0; i < 3000; i++ {
		send(int16(40 + rng.Intn(21)))
	}
	m, _ := rt.ReadMoments(0)
	if m.MedianMoves != med.Moves() {
		t.Fatalf("switch moves %d, host %d", m.MedianMoves, med.Moves())
	}
	stablePhase := m.MedianMoves

	// Phase 2: the distribution jumps to around 200. The marker stays put
	// until the new mode's mass overtakes the old one's (≈3000 packets),
	// then walks the ~150 slots to the new mode one step per packet — the
	// movement burst IS the change-rate signal.
	for i := 0; i < 4000; i++ {
		send(int16(190 + rng.Intn(21)))
	}
	m, _ = rt.ReadMoments(0)
	if m.MedianMoves != med.Moves() {
		t.Fatalf("switch moves %d, host %d after shift", m.MedianMoves, med.Moves())
	}
	shiftBurst := m.MedianMoves - stablePhase
	if shiftBurst < 140 {
		t.Fatalf("distribution shift produced only %d marker moves, want ≥140", shiftBurst)
	}
	if stablePhase > shiftBurst {
		t.Fatalf("stable phase moved more (%d) than the shift (%d): no change-rate signal",
			stablePhase, shiftBurst)
	}
}
