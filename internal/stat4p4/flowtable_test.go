package stat4p4

import (
	"math/rand"
	"reflect"
	"testing"

	"stat4/internal/flowtable"
	"stat4/internal/packet"
)

// TestFlowCrossValidation is the bit-exactness theorem of the flow-table
// mode: the emitted 2-left table and internal/flowtable use the same hash
// family, layout, epoch clock and claim order, so after the same key/ts
// stream every bucket, every count, every stamp and the whole admission
// ledger must agree exactly — including under expiry churn and a 2^-2
// admission coin.
func TestFlowCrossValidation(t *testing.T) {
	const (
		size        = 256
		epochShift  = 12
		ttl         = 2
		sampleShift = 2
	)
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: size})
	if _, err := rt.BindFlowDst(0, 0, AllIPv4(), 0, epochShift, ttl, sampleShift, 0); err != nil {
		t.Fatal(err)
	}
	ref := flowtable.New(flowtable.Config{
		Buckets: size, EpochShift: epochShift, TTL: ttl, SampleShift: sampleShift,
	})
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(9))

	var ts uint64
	for i := 0; i < 30000; i++ {
		// ~1.5× capacity of churning keys over many epochs: hits, claims,
		// expirations, evictions, rejections and sheds all occur.
		key := uint64(rng.Intn(384)) + 1
		ts += uint64(rng.Intn(1 << 9))
		sw.ProcessFrame(ts, 1, packet.NewUDPFrame(1, packet.IP4(key), 5, 80, 10).Serialize())
		ref.Touch(key, ts)
	}

	entries, err := rt.ReadFlows(0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]flowtable.Entry{}
	ref.Each(func(e flowtable.Entry) { want[e.Key] = e })
	if len(entries) != len(want) {
		t.Fatalf("switch tracks %d buckets, host table %d", len(entries), len(want))
	}
	for _, e := range entries {
		w, ok := want[e.Key]
		if !ok || w.Count != e.Count || w.Stamp != e.Stamp {
			t.Fatalf("key %d: switch {count %d, stamp %d}, host %+v (ok=%v)",
				e.Key, e.Count, e.Stamp, w, ok)
		}
	}

	st, err := rt.ReadFlowStats(0)
	if err != nil {
		t.Fatal(err)
	}
	hs := ref.Stats()
	if st.Admitted != hs.Admitted || st.Evicted != hs.Evicted ||
		st.Rejected != hs.Rejected || st.Shed != hs.Shed {
		t.Fatalf("ledger diverges: switch %+v, host %+v", st, hs)
	}
	if st.Occupied != uint64(ref.Occupied()) {
		t.Fatalf("occupied: switch %d, host %d", st.Occupied, ref.Occupied())
	}
	for name, v := range map[string]uint64{
		"evictions": st.Evicted, "rejections": st.Rejected, "sheds": st.Shed,
	} {
		if v == 0 {
			t.Fatalf("test vacuous: no %s at 150%% churn load", name)
		}
	}

	// The slot moments track exactly the occupied buckets (live and stale):
	// N = buckets, Xsum = Σ counts, Xsumsq = Σ counts².
	m, err := rt.ReadMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	var n, xsum, xsumsq uint64
	ref.Each(func(e flowtable.Entry) {
		n++
		xsum += e.Count
		xsumsq += e.Count * e.Count
	})
	if m.N != n || m.Xsum != xsum || m.Xsumsq != xsumsq {
		t.Fatalf("moments: switch (N=%d,Σ=%d,Σ²=%d), host-derived (%d,%d,%d)",
			m.N, m.Xsum, m.Xsumsq, n, xsum, xsumsq)
	}
}

// TestFlowHotFlowAlert: with k armed, a flow whose count breaks mean+kσ of
// the tracked population raises the anomaly digest naming the flow key —
// hot-flow detection over an effectively unbounded key domain.
func TestFlowHotFlowAlert(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: 128})
	if _, err := rt.BindFlowDst(0, 0, AllIPv4(), 0, 30, 8, 0, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(4))
	hot := packet.ParseIP4(10, 9, 9, 9)
	for i := 0; i < 4000; i++ {
		dst := packet.IP4(uint32(rng.Intn(48)) + 1)
		if i%4 == 0 {
			dst = hot
		}
		sw.ProcessFrame(uint64(i)*1000, 1, packet.NewUDPFrame(1, dst, 5, 80, 10).Serialize())
	}
	digests := drainAnomalies(sw)
	if len(digests) == 0 {
		t.Fatal("hot flow raised no anomaly digest")
	}
	for _, d := range digests {
		if d.Values[1] != uint64(hot) {
			t.Fatalf("digest names key %d, want %d", d.Values[1], uint64(hot))
		}
	}
}

// TestFlowShardedCanonicalEquivalence is the acceptance criterion: with a
// flow-table binding active and evictions occurring on every shard, the
// sharded deployment's merged snapshot stays byte-identical to the
// canonicalized serial snapshot — flow buckets, stamps, counts and the
// admission ledger are all replica-local (MergeDerived), zeroed on merge,
// and the controller merges flows by key instead.
func TestFlowShardedCanonicalEquivalence(t *testing.T) {
	opts := Options{Slots: 2, Size: 64, Stages: 2, FlowTable: true, FlowTableSize: 64}
	for _, n := range []int{1, 2, 4} {
		lib := Build(opts)
		rt, err := NewRuntime(lib)
		if err != nil {
			t.Fatal(err)
		}
		sr, err := NewShardedRuntime(lib, n)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(sr.Close)
		// A dense frequency track on stage 0 keeps the canonicalization
		// recompute path busy alongside the flow table on stage 1.
		if _, err := rt.BindFreqDst(0, 0, AllIPv4(), 0, 0, 64, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sr.BindFreqDst(0, 0, AllIPv4(), 0, 0, 64, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.BindFlowDst(1, 1, AllIPv4(), 0, 10, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := sr.BindFlowDst(1, 1, AllIPv4(), 0, 10, 1, 0, 0); err != nil {
			t.Fatal(err)
		}
		// Tiny table + TTL 1 epoch + churning keys: constant evictions.
		rng := rand.New(rand.NewSource(int64(40 + n)))
		for i := 0; i < 6000; i++ {
			src := packet.ParseIP4(192, 168, 0, byte(rng.Intn(8)))
			dst := packet.IP4(uint32(rng.Intn(256)) + 1)
			frame := packet.NewUDPFrame(src, dst, 999, 80, 10).Serialize()
			ts := uint64(i) * 300
			rt.Switch().ProcessFrame(ts, 1, frame)
			sr.Sharded().ProcessFrame(ts, 1, frame)
		}

		sst, err := rt.ReadFlowStats(1)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := sr.MergedFlowStats(1)
		if err != nil {
			t.Fatal(err)
		}
		if sst.Evicted == 0 || mst.Evicted == 0 {
			t.Fatalf("n=%d: test vacuous: no evictions in flight (serial %d, sharded %d)",
				n, sst.Evicted, mst.Evicted)
		}

		serial := rt.Switch().Snapshot()
		rt.Library().CanonicalizeSnapshot(serial, sr.FreqSlots())
		merged := sr.MergedSnapshot()
		for name, want := range serial.Registers {
			if got := merged.Registers[name]; !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d: register %q diverges\nmerged: %v\nserial: %v", n, name, got, want)
			}
		}
		if !reflect.DeepEqual(merged.Entries, serial.Entries) {
			t.Fatalf("n=%d: merged table entries diverge from serial", n)
		}

		// The controller-side flow merge: every key is owned by one shard, so
		// merged per-key counts at n=1 equal the serial table's exactly.
		if n == 1 {
			mf, err := sr.MergedFlows(1)
			if err != nil {
				t.Fatal(err)
			}
			sf, err := rt.ReadFlows(1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(mf, sf) {
				t.Fatalf("single-shard merged flows diverge from serial")
			}
		}
	}
}

// TestFlowResetSlot: resetting the slot clears buckets, ledger and moments so
// the slot can be rebound.
func TestFlowResetSlot(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: 64})
	if _, err := rt.BindFlowSrc(0, 0, AllIPv4(), 0, 20, 4, 0, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	for i := 0; i < 500; i++ {
		sw.ProcessFrame(uint64(i)*100, 1,
			packet.NewUDPFrame(packet.IP4(uint32(i%40)+1), 2, 5, 80, 10).Serialize())
	}
	if entries, _ := rt.ReadFlows(0); len(entries) == 0 {
		t.Fatal("no flows tracked before reset")
	}
	if err := rt.ResetSlot(0); err != nil {
		t.Fatal(err)
	}
	entries, err := rt.ReadFlows(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("flows survive reset: %v", entries)
	}
	st, _ := rt.ReadFlowStats(0)
	if st.Admitted != 0 || st.Evicted != 0 || st.Rejected != 0 || st.Shed != 0 || st.Occupied != 0 {
		t.Fatalf("ledger survives reset: %+v", st)
	}
}

// TestFlowBindValidation pins the option and parameter contracts.
func TestFlowBindValidation(t *testing.T) {
	plain := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1})
	if _, err := plain.BindFlowDst(0, 0, AllIPv4(), 0, 20, 4, 0, 0); err == nil {
		t.Fatal("flow binding accepted without Options.FlowTable")
	}
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: 64})
	for name, call := range map[string]func() error{
		"ttl 0": func() error {
			_, err := rt.BindFlowDst(0, 0, AllIPv4(), 0, 20, 0, 0, 0)
			return err
		},
		"epoch shift 64": func() error {
			_, err := rt.BindFlowDst(0, 0, AllIPv4(), 0, 64, 4, 0, 0)
			return err
		},
		"key shift 33": func() error {
			_, err := rt.BindFlowSrc(0, 0, AllIPv4(), 33, 20, 4, 0, 0)
			return err
		},
		"sample shift 33": func() error {
			_, err := rt.BindFlowPair(0, 0, AllIPv4(), 20, 4, 33, 0)
			return err
		},
		"bad slot": func() error {
			_, err := rt.BindFlowDst(0, 9, AllIPv4(), 0, 20, 4, 0, 0)
			return err
		},
	} {
		if err := call(); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	mustPanic := func(name string, opts Options) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		Build(opts)
	}
	mustPanic("strict+flowtable", Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, Strict: true})
	mustPanic("non-pow2 table", Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: 48})
}

// TestFlowPairKey: the pair binding folds src<<32|dst into one key, so two
// sources hitting one destination are distinct flows.
func TestFlowPairKey(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, FlowTable: true, FlowTableSize: 256})
	if _, err := rt.BindFlowPair(0, 0, AllIPv4(), 30, 8, 0, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	a, b := packet.ParseIP4(1, 0, 0, 1), packet.ParseIP4(1, 0, 0, 2)
	dst := packet.ParseIP4(10, 0, 0, 1)
	for i := 0; i < 10; i++ {
		sw.ProcessFrame(uint64(i), 1, packet.NewUDPFrame(a, dst, 5, 80, 10).Serialize())
	}
	sw.ProcessFrame(11, 1, packet.NewUDPFrame(b, dst, 5, 80, 10).Serialize())
	entries, err := rt.ReadFlows(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("tracked %d flows, want 2 (%v)", len(entries), entries)
	}
	wantHot := uint64(a)<<32 | uint64(dst)
	if entries[0].Key != wantHot || entries[0].Count != 10 {
		t.Fatalf("hot pair = %+v, want key %d count 10", entries[0], wantHot)
	}
}
