package stat4p4

import (
	"strings"
	"testing"

	"stat4/internal/packet"
)

const caseStudyJSON = `{
  "options": {"Slots": 2, "Size": 256, "Stages": 2},
  "routes": [
    {"prefix": "10.0.0.0/8", "port": 2},
    {"prefix": "192.0.2.66/32", "drop": true}
  ],
  "bindings": [
    {
      "kind": "window", "stage": 0, "slot": 0,
      "match": {"dst_prefix": "10.0.0.0/8"},
      "interval_shift": 23, "capacity": 100, "k": 2
    },
    {
      "kind": "freq-dst", "stage": 1, "slot": 1,
      "match": {"dst_prefix": "10.0.0.0/16"},
      "shift": 8, "base": 655360, "size": 256, "k": 2
    }
  ]
}`

func TestAppConfigApply(t *testing.T) {
	cfg, err := LoadAppConfig(strings.NewReader(caseStudyJSON))
	if err != nil {
		t.Fatal(err)
	}
	rt, ids, err := cfg.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("ids = %v", ids)
	}
	sw := rt.Switch()

	// Routes work, including the blackhole.
	out := sw.ProcessFrame(0, 1, packet.NewUDPFrame(1, packet.ParseIP4(10, 1, 1, 1), 5, 80, 10).Serialize())
	if len(out) != 1 || out[0].Port != 2 {
		t.Fatalf("route: %+v", out)
	}
	if out := sw.ProcessFrame(1, 1, packet.NewUDPFrame(1, packet.ParseIP4(192, 0, 2, 66), 5, 80, 10).Serialize()); out != nil {
		t.Fatal("blackhole route not applied")
	}

	// Both bindings are live: the window accumulates and the per-/24
	// distribution counts.
	for i := 0; i < 10; i++ {
		sw.ProcessFrame(uint64(i), 1, packet.NewUDPFrame(1, packet.ParseIP4(10, 0, 3, 9), 5, 80, 10).Serialize())
	}
	counters, _ := rt.ReadCounters(1, 8)
	if counters[3] != 10 {
		t.Fatalf("freq-dst binding: counters = %v", counters[:6])
	}
	curReg, _ := sw.Register(RegCur)
	if cur, _ := curReg.Read(0); cur != 11 { // 10 + the first routed packet
		t.Fatalf("window binding: cur = %d", cur)
	}
	// The defaulted percentile weights are the median.
	if cfg.Bindings[1].PA != 1 || cfg.Bindings[1].PB != 1 {
		t.Fatal("percentile weights not defaulted")
	}
}

func TestAppConfigAllKinds(t *testing.T) {
	const allKinds = `{
  "options": {"Slots": 8, "Size": 256, "Stages": 2, "Sparse": true},
  "bindings": [
    {"kind": "window", "stage": 0, "slot": 0, "match": {"ipv4": true}, "interval_shift": 20, "capacity": 16, "k": 2},
    {"kind": "window-bytes", "stage": 0, "slot": 1, "match": {"syn_only": true, "ipv4": true, "priority": 5}, "interval_shift": 20, "capacity": 16, "k": 2},
    {"kind": "freq-dport", "stage": 1, "slot": 2, "match": {"ipv4": true}, "shift": 0, "size": 256},
    {"kind": "freq-proto", "stage": 1, "slot": 3, "match": {"ipv4": true, "priority": 1}},
    {"kind": "freq-len", "stage": 1, "slot": 4, "match": {"ipv4": true, "priority": 2}, "shift": 6},
    {"kind": "freq-echo", "stage": 0, "slot": 5, "match": {"echo": true, "priority": 9}, "base": 32768, "size": 256},
    {"kind": "sparse-dst", "stage": 1, "slot": 6, "match": {"ipv4": true, "priority": 3}, "k": 2},
    {"kind": "sparse-src", "stage": 1, "slot": 7, "match": {"ipv4": true, "priority": 4}, "shift": 8}
  ]
}`
	cfg, err := LoadAppConfig(strings.NewReader(allKinds))
	if err != nil {
		t.Fatal(err)
	}
	if _, ids, err := cfg.Apply(); err != nil || len(ids) != 8 {
		t.Fatalf("Apply: %v (ids %v)", err, ids)
	}
}

func TestAppConfigErrors(t *testing.T) {
	cases := map[string]string{
		"no bindings":   `{"options": {"Slots": 1, "Size": 8, "Stages": 1}, "bindings": []}`,
		"unknown field": `{"bindingz": []}`,
		"not json":      `{`,
	}
	for name, js := range cases {
		if _, err := LoadAppConfig(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	applyCases := map[string]string{
		"unknown kind": `{"options": {"Slots": 1, "Size": 8, "Stages": 1},
			"bindings": [{"kind": "ghost", "stage": 0, "slot": 0, "match": {}}]}`,
		"bad prefix": `{"options": {"Slots": 1, "Size": 8, "Stages": 1},
			"bindings": [{"kind": "window", "stage": 0, "slot": 0,
			"match": {"dst_prefix": "not-a-prefix"}, "interval_shift": 20, "capacity": 4, "k": 2}]}`,
		"bad route": `{"options": {"Slots": 1, "Size": 8, "Stages": 1},
			"routes": [{"prefix": "bogus", "port": 1}],
			"bindings": [{"kind": "window", "stage": 0, "slot": 0, "match": {},
			"interval_shift": 20, "capacity": 4, "k": 2}]}`,
		"bad slot": `{"options": {"Slots": 1, "Size": 8, "Stages": 1},
			"bindings": [{"kind": "window", "stage": 0, "slot": 5, "match": {},
			"interval_shift": 20, "capacity": 4, "k": 2}]}`,
	}
	for name, js := range applyCases {
		cfg, err := LoadAppConfig(strings.NewReader(js))
		if err != nil {
			t.Errorf("%s: load failed early: %v", name, err)
			continue
		}
		if _, _, err := cfg.Apply(); err == nil {
			t.Errorf("%s: applied", name)
		}
	}
}
