package stat4p4

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"stat4/internal/p4"
	"stat4/internal/packet"
)

// differentialPair builds two runtimes of the same library and switches one
// to the tree-walking reference interpreter.
func differentialPair(t testing.TB, opts Options) (compiled, tree *Runtime) {
	t.Helper()
	c, err := NewRuntime(Build(opts))
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewRuntime(Build(opts))
	if err != nil {
		t.Fatal(err)
	}
	w.Switch().SetExecMode(p4.ExecTree)
	return c, w
}

// replayBoth pushes one frame through both switches and fails on any
// divergence in outputs or digests. Output bytes are compared immediately —
// both switches reuse their deparse buffers.
func replayBoth(t testing.TB, compiled, tree *Runtime, ts uint64, port uint16, frame []byte) {
	t.Helper()
	outC := compiled.Switch().ProcessFrame(ts, port, frame)
	var savedPort uint16
	var savedData []byte
	if len(outC) > 0 {
		savedPort = outC[0].Port
		savedData = append(savedData, outC[0].Data...)
	}
	outT := tree.Switch().ProcessFrame(ts, port, frame)
	if len(outC) != len(outT) {
		t.Fatalf("ts %d: compiled emitted %d frames, tree %d", ts, len(outC), len(outT))
	}
	if len(outT) > 0 {
		if savedPort != outT[0].Port || !bytes.Equal(savedData, outT[0].Data) {
			t.Fatalf("ts %d: outputs differ: compiled port %d data %x, tree port %d data %x",
				ts, savedPort, savedData, outT[0].Port, outT[0].Data)
		}
	}
	dc := drainAnomalies(compiled.Switch())
	dt := drainAnomalies(tree.Switch())
	if !reflect.DeepEqual(dc, dt) {
		t.Fatalf("ts %d: digests differ: compiled %v, tree %v", ts, dc, dt)
	}
}

// compareState fails if the two switches' register state or counters differ.
func compareState(t testing.TB, compiled, tree *Runtime) {
	t.Helper()
	snapC := compiled.Switch().Snapshot()
	snapT := tree.Switch().Snapshot()
	if !reflect.DeepEqual(snapC.Registers, snapT.Registers) {
		t.Fatal("register snapshots differ between compiled plan and tree walker")
	}
	if sc, st := compiled.Switch().Stats(), tree.Switch().Stats(); sc != st {
		t.Fatalf("stats differ: compiled %+v, tree %+v", sc, st)
	}
}

// TestDifferentialEchoWindow replays a mixed echo + timed IPv4 stream through
// the full Stat4 program (echo app on stage 0, anomaly-checked window on
// stage 1) under both interpreters. The tight window and low k make interval
// digests fire, so the digest streams are compared under load too.
func TestDifferentialEchoWindow(t *testing.T) {
	opts := Options{Slots: 2, Size: 512, Stages: 2, Echo: true}
	compiled, tree := differentialPair(t, opts)
	for _, rt := range []*Runtime{compiled, tree} {
		if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), EchoBias-255, 512, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.BindWindow(1, 1, AllIPv4(), 10, 16, 2); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(99))
	ts := uint64(0)
	for i := 0; i < 6000; i++ {
		ts += uint64(rng.Intn(400))
		var frame []byte
		if rng.Intn(3) == 0 {
			v := int16(rng.Intn(511) - 255)
			frame = packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, v).Serialize()
		} else {
			dst := packet.ParseIP4(10, 0, byte(rng.Intn(4)), byte(rng.Intn(8)))
			frame = packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 1000, 80, rng.Intn(32)).Serialize()
		}
		replayBoth(t, compiled, tree, ts, uint16(i%3), frame)
	}
	compareState(t, compiled, tree)
}

// TestDifferentialSparse does the same over the sparse (hash-bucketed)
// program, whose collision-eviction logic is the hairiest emitted code.
func TestDifferentialSparse(t *testing.T) {
	opts := Options{Slots: 1, Size: 64, Stages: 1, Sparse: true}
	compiled, tree := differentialPair(t, opts)
	for _, rt := range []*Runtime{compiled, tree} {
		if _, err := rt.BindSparseDst(0, 0, AllIPv4(), 0, 2); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 6000; i++ {
		dst := packet.ParseIP4(10, byte(rng.Intn(2)), byte(rng.Intn(64)), byte(rng.Intn(256)))
		frame := packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 9), dst, 1000, 80, 0).Serialize()
		replayBoth(t, compiled, tree, uint64(i)*50, 1, frame)
	}
	compareState(t, compiled, tree)
}

// FuzzDifferential lets the fuzzer script a frame stream (two bytes per
// frame: kind selector + value) and replays it through both interpreters,
// checking outputs per frame and state at the end. `make fuzz-smoke` gives it
// a 10s budget.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{0, 5, 1, 200, 2, 17, 3, 3, 4, 0})
	f.Add([]byte{1, 1, 1, 2, 1, 3, 0, 255})
	f.Add(bytes.Repeat([]byte{2, 9}, 40))

	opts := Options{Slots: 2, Size: 512, Stages: 2, Echo: true}
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		compiled, tree := differentialPair(t, opts)
		for _, rt := range []*Runtime{compiled, tree} {
			if _, err := rt.BindFreqEcho(0, 0, EchoOnly(), EchoBias-255, 512, 1, 1, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := rt.BindWindow(1, 1, AllIPv4(), 8, 8, 2); err != nil {
				t.Fatal(err)
			}
		}
		ts := uint64(0)
		for i := 0; i+1 < len(script); i += 2 {
			kind, v := script[i], script[i+1]
			ts += uint64(v) * 13
			var frame []byte
			switch kind % 4 {
			case 0:
				frame = packet.NewEchoFrame(packet.MAC{1}, packet.MAC{2}, int16(v)-128).Serialize()
			case 1:
				dst := packet.ParseIP4(10, 0, 0, v)
				frame = packet.NewUDPFrame(packet.ParseIP4(192, 0, 2, 1), dst, 1000, 80, int(v)%16).Serialize()
			case 2:
				dst := packet.ParseIP4(10, 0, v, 1)
				frame = packet.NewTCPFrame(packet.ParseIP4(172, 16, 0, 1), dst, 1234, 80, packet.FlagSYN).Serialize()
			default:
				frame = []byte{kind, v, 0xde, 0xad}
			}
			replayBoth(t, compiled, tree, ts, uint16(kind)%4, frame)
		}
		compareState(t, compiled, tree)
	})
}
