package stat4p4

import (
	"math/rand"
	"sort"
	"testing"

	"stat4/internal/core"
	"stat4/internal/packet"
)

// TestSparseCrossValidation drives the same key stream through the emitted
// hash-bucket logic and core.SparseFreqDist: both use the same hash family,
// so bucket placement, counts, moments and rejection totals must agree
// exactly.
func TestSparseCrossValidation(t *testing.T) {
	const size = 256
	rt := mustRuntime(t, Options{Slots: 1, Size: size, Stages: 1, Sparse: true})
	if _, err := rt.BindSparseDst(0, 0, AllIPv4(), 0, 0); err != nil {
		t.Fatal(err)
	}
	ref := core.NewSparseFreqDist(size, 2)
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(31))

	keys := make([]uint64, 300) // 300 keys into 256 buckets: rejections happen
	for i := range keys {
		keys[i] = uint64(rng.Uint32())
	}
	for i := 0; i < 20000; i++ {
		key := keys[rng.Intn(len(keys))]
		sw.ProcessFrame(uint64(i), 1, packet.NewUDPFrame(1, packet.IP4(key), 5, 80, 10).Serialize())
		_ = ref.Observe(key) // rejections expected; both sides must agree
	}

	m, err := rt.ReadMoments(0)
	if err != nil {
		t.Fatal(err)
	}
	cm := ref.Moments()
	if m.N != cm.N || m.Xsum != cm.Sum || m.Xsumsq != cm.Sumsq {
		t.Fatalf("switch (N=%d,sum=%d,sumsq=%d) core (%d,%d,%d)",
			m.N, m.Xsum, m.Xsumsq, cm.N, cm.Sum, cm.Sumsq)
	}
	if m.Var != cm.Variance() || m.SD != cm.StdDev() {
		t.Fatalf("switch var/sd %d/%d core %d/%d", m.Var, m.SD, cm.Variance(), cm.StdDev())
	}
	rej, err := rt.SparseRejected(0)
	if err != nil {
		t.Fatal(err)
	}
	if rej != ref.Rejected {
		t.Fatalf("switch rejected %d, core %d", rej, ref.Rejected)
	}
	if rej == 0 {
		t.Fatal("test vacuous: no rejections at 117% load")
	}

	// Per-key counts agree.
	entries, err := rt.ReadSparse(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != ref.Active() {
		t.Fatalf("switch tracks %d keys, core %d", len(entries), ref.Active())
	}
	for _, e := range entries {
		if got := ref.Count(e.Key); got != e.Count {
			t.Fatalf("key %d: switch %d, core %d", e.Key, e.Count, got)
		}
	}
}

// TestSparseHotKeyAlert: the armed check names the hot key itself in the
// digest — per-destination DDoS detection over a huge domain with tiny
// memory.
func TestSparseHotKeyAlert(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 128, Stages: 1, Sparse: true})
	// Track /32 destinations across the whole IPv4 space (shift 0).
	if _, err := rt.BindSparseDst(0, 0, AllIPv4(), 0, 2); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(7))
	dests := make([]packet.IP4, 20)
	for i := range dests {
		dests[i] = packet.IP4(rng.Uint32())
	}
	// Balanced phase.
	for round := 0; round < 100; round++ {
		for _, d := range dests {
			sw.ProcessFrame(uint64(round), 1, packet.NewUDPFrame(1, d, 5, 80, 10).Serialize())
		}
	}
	drainAnomalies(sw)
	// One destination goes hot.
	hot := dests[7]
	for i := 0; i < 500; i++ {
		sw.ProcessFrame(uint64(10000+i), 1, packet.NewUDPFrame(1, hot, 5, 80, 10).Serialize())
	}
	digests := drainAnomalies(sw)
	if len(digests) == 0 {
		t.Fatal("hot key never alerted")
	}
	for _, d := range digests {
		if d.Values[1] != uint64(hot) {
			t.Fatalf("digest names key %d, want %d", d.Values[1], uint64(hot))
		}
	}
}

// TestSparseSrcBinding tracks sources instead of destinations.
func TestSparseSrcBinding(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, Sparse: true})
	if _, err := rt.BindSparseSrc(0, 0, AllIPv4(), 8, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	// Three sources in distinct /24s.
	for i, src := range []packet.IP4{
		packet.ParseIP4(1, 1, 1, 9), packet.ParseIP4(1, 1, 1, 200), packet.ParseIP4(2, 2, 2, 2),
	} {
		for n := 0; n <= i; n++ {
			sw.ProcessFrame(uint64(i*10+n), 1, packet.NewUDPFrame(src, 9, 5, 80, 10).Serialize())
		}
	}
	entries, err := rt.ReadSparse(0)
	if err != nil {
		t.Fatal(err)
	}
	// Sources 1 and 2 share a /24 key (shift 8): two distinct keys total.
	if len(entries) != 2 {
		t.Fatalf("tracked %d keys, want 2", len(entries))
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Count < entries[j].Count })
	if entries[0].Count != 3 || entries[1].Count != 3 {
		t.Fatalf("counts = %+v, want 3 and 3", entries)
	}
}

func TestSparseBindingValidation(t *testing.T) {
	dense := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1})
	if _, err := dense.BindSparseDst(0, 0, AllIPv4(), 0, 0); err == nil {
		t.Fatal("sparse bind accepted on a library built without Sparse")
	}
	sparse := mustRuntime(t, Options{Slots: 1, Size: 64, Stages: 1, Sparse: true})
	if _, err := sparse.BindSparseDst(0, 0, AllIPv4(), 40, 0); err == nil {
		t.Fatal("out-of-range shift accepted")
	}
	if _, err := sparse.BindSparseDst(0, 9, AllIPv4(), 0, 0); err == nil {
		t.Fatal("bad slot accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sparse with non-power-of-two Size did not panic")
		}
	}()
	Build(Options{Slots: 1, Size: 100, Stages: 1, Sparse: true})
}

// TestSparseStrictLegal: the sparse logic uses only the hash engine and
// plain ops, so it validates on the multiplication-free target too.
func TestSparseStrictLegal(t *testing.T) {
	lib := Build(Options{Slots: 1, Size: 64, Stages: 1, Sparse: true, Strict: true, StrictCapShift: 4})
	if err := lib.Prog.Validate(); err != nil {
		t.Fatalf("strict sparse program invalid: %v", err)
	}
}

// TestSparseResetSlot: retuning a sparse slot must clear keys, valid bits
// and the rejection counter, not just the counters.
func TestSparseResetSlot(t *testing.T) {
	rt := mustRuntime(t, Options{Slots: 1, Size: 8, Stages: 1, Sparse: true})
	if _, err := rt.BindSparseDst(0, 0, AllIPv4(), 0, 0); err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()
	for k := uint64(0); k < 32; k++ { // force rejections too
		sw.ProcessFrame(k, 1, packet.NewUDPFrame(1, packet.IP4(k*7919), 5, 80, 10).Serialize())
	}
	if entries, _ := rt.ReadSparse(0); len(entries) == 0 {
		t.Fatal("nothing tracked before reset")
	}
	if err := rt.ResetSlot(0); err != nil {
		t.Fatal(err)
	}
	if entries, _ := rt.ReadSparse(0); len(entries) != 0 {
		t.Fatalf("%d stale buckets after reset", len(entries))
	}
	if rej, _ := rt.SparseRejected(0); rej != 0 {
		t.Fatalf("stale rejection counter %d after reset", rej)
	}
	// The slot is usable again.
	sw.ProcessFrame(100, 1, packet.NewUDPFrame(1, packet.IP4(42), 5, 80, 10).Serialize())
	if entries, _ := rt.ReadSparse(0); len(entries) != 1 || entries[0].Key != 42 {
		t.Fatalf("slot unusable after reset: %+v", entries)
	}
}
