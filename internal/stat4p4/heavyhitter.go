package stat4p4

import (
	"fmt"
	"sort"

	"stat4/internal/p4"
)

// This file emits the probabilistic-recirculation heavy-hitter path. The
// main pass hashes the flow key folded with the ingress timestamp and
// compares k well-mixed bits against zero — a 2^-k coin flip per packet —
// and raises the recirculation flag on heads.
// The single extra pass (internal/p4's structurally-bounded recirculation)
// promotes the sampled key into a small exact-count candidate table with
// 2-way hash probing: a flow sending n packets is promoted with probability
// 1 − (1 − 2^-k)^n, so heavy flows enter the table almost surely while mice
// rarely spend the recirculation budget. Candidate counts tally promotions,
// each representing ≈ 2^k packets of the flow.
//
// The candidate tables are replica-local (shards sample and claim
// independently), so the registers are MergeDerived-with-why: merged
// snapshots zero them and the controller merges candidates by key instead
// (MergedHeavyHitters), keeping the byte-identity contract trivial.

// Heavy-hitter register names.
const (
	RegHHKeys   = "stat.hhkeys" // candidate flow keys, Slots×HHTableSize
	RegHHCounts = "stat.hhcnt"  // promotion counts; 0 marks an empty bucket
	RegHHRej    = "stat.hhrej"  // per-slot rejected promotions (table full)
)

const kindHH = 4

// declareHeavyHitter adds the heavy-hitter registers, binding actions, the
// main-pass sampling block and the recirculation promotion pass.
func (l *Library) declareHeavyHitter() {
	f := &l.f
	std := l.Std
	cells := l.Opts.Slots * l.Opts.HHTableSize
	w := l.Opts.CellWidth

	l.Prog.AddRegister(RegHHKeys, cells, 64)
	l.Prog.SetRegisterMerge(RegHHKeys, p4.MergeDerived)
	l.Prog.SetMergeWhy(RegHHKeys,
		"candidate-table keys are replica-local: shards sample and claim buckets independently; the controller merges candidates by key")
	l.Prog.AddRegister(RegHHCounts, cells, w)
	l.Prog.SetRegisterMerge(RegHHCounts, p4.MergeDerived)
	l.Prog.SetMergeWhy(RegHHCounts,
		"promotion counts keyed by the replica-local candidate table; summed per key by the controller, never cell-wise")
	l.Prog.AddRegister(RegHHRej, l.Opts.Slots, w)
	l.Prog.SetRegisterMerge(RegHHRej, p4.MergeSum)

	// bind_hh_src(hhBase, slot, shift, sampleMask): key = ipv4.src >> shift;
	// recirculate when hash(key + ts) & sampleMask == 0 (sampleMask =
	// 2^k − 1). The hh* metadata fields are deliberately private to this
	// mode: they must survive every later binding stage to reach the
	// recirculation pass intact.
	common := []p4.Op{
		p4.Mov(f.hhbase, p4.P(0)),
		p4.Mov(f.hhslot, p4.P(1)),
		p4.Mov(f.enable, p4.C(1)),
		p4.Mov(f.kind, p4.C(kindHH)),
	}
	// The coin flip must be per PACKET, not per key: hashing the key alone
	// deterministically partitions the key space, and an elephant whose key
	// lands in the unsampled 1 − 2^-k never recirculates at any rate. Folding
	// the ingress timestamp into the hash input makes each packet an
	// independent trial. The engine's multiply-shift hash also mixes its HIGH
	// bits well and its low bits barely at all (the product's low bits are a
	// bijection of the input's), so the gate takes the high word before
	// masking.
	gate := func() []p4.Op {
		return []p4.Op{
			p4.Add(f.hhgate, p4.F(f.hhkey), p4.F(std.TsNs)),
			p4.Hash(f.hhgate, 0, p4.F(f.hhgate), ^uint64(0)),
			p4.Shr(f.hhgate, p4.F(f.hhgate), p4.C(32)),
			p4.And(f.hhgate, p4.F(f.hhgate), p4.P(3)),
		}
	}
	l.Prog.AddAction(p4.NewAction("bind_hh_src", 4, append(append(append([]p4.Op{}, common...),
		p4.Shr(f.hhkey, p4.F(std.IPv4Src), p4.P(2))),
		gate()...)...))
	// bind_hh_dst(hhBase, slot, shift, sampleMask): per-destination heavy
	// hitters — the elephant-sink view.
	l.Prog.AddAction(p4.NewAction("bind_hh_dst", 4, append(append(append([]p4.Op{}, common...),
		p4.Shr(f.hhkey, p4.F(std.IPv4Dst), p4.P(2))),
		gate()...)...))

	add := func(name string, ops ...p4.Op) {
		l.Prog.AddAction(p4.NewAction(name, 0, ops...))
	}

	// hh_mark: request the single extra pass.
	add("hh_mark", p4.Mov(f.recirc, p4.C(1)))

	// --- recirculation pass actions --------------------------------------

	tmask := uint64(l.Opts.HHTableSize - 1)
	// hh_probe: both candidate buckets; a zero count marks an empty bucket
	// (claims write count 1 first, so an occupied bucket is never zero).
	// Hash functions 1 and 2 are distinct from the sampling hash 0.
	add("hh_probe",
		p4.Hash(f.h1, 1, p4.F(f.hhkey), ^uint64(0)),
		p4.Shr(f.h1, p4.F(f.h1), p4.C(32)),
		p4.And(f.h1, p4.F(f.h1), p4.C(tmask)),
		p4.Add(f.h1, p4.F(f.hhbase), p4.F(f.h1)),
		p4.Hash(f.h2, 2, p4.F(f.hhkey), ^uint64(0)),
		p4.Shr(f.h2, p4.F(f.h2), p4.C(32)),
		p4.And(f.h2, p4.F(f.h2), p4.C(tmask)),
		p4.Add(f.h2, p4.F(f.hhbase), p4.F(f.h2)),
		p4.RegRead(f.k1, RegHHKeys, p4.F(f.h1)),
		p4.RegRead(f.u1, RegHHCounts, p4.F(f.h1)),
		p4.RegRead(f.k2, RegHHKeys, p4.F(f.h2)),
		p4.RegRead(f.u2, RegHHCounts, p4.F(f.h2)),
	)
	add("hh_claim1",
		p4.RegWrite(RegHHKeys, p4.F(f.h1), p4.F(f.hhkey)),
		p4.RegWrite(RegHHCounts, p4.F(f.h1), p4.C(1)),
		p4.EmitDigest(DigestHeavyHitter, f.hhslot, f.hhkey, std.TsNs),
	)
	add("hh_take1",
		p4.Add(f.u1, p4.F(f.u1), p4.C(1)),
		p4.RegWrite(RegHHCounts, p4.F(f.h1), p4.F(f.u1)),
	)
	add("hh_claim2",
		p4.RegWrite(RegHHKeys, p4.F(f.h2), p4.F(f.hhkey)),
		p4.RegWrite(RegHHCounts, p4.F(f.h2), p4.C(1)),
		p4.EmitDigest(DigestHeavyHitter, f.hhslot, f.hhkey, std.TsNs),
	)
	add("hh_take2",
		p4.Add(f.u2, p4.F(f.u2), p4.C(1)),
		p4.RegWrite(RegHHCounts, p4.F(f.h2), p4.F(f.u2)),
	)
	add("hh_reject",
		p4.RegRead(f.t2, RegHHRej, p4.F(f.hhslot)),
		p4.Add(f.t2, p4.F(f.t2), p4.C(1)),
		p4.RegWrite(RegHHRej, p4.F(f.hhslot), p4.F(f.t2)),
	)

	eqf := func(a, b p4.FieldID) p4.Cond { return p4.Cond{A: p4.F(a), Op: p4.CmpEq, B: p4.F(b)} }
	l.Prog.SetRecirc(f.recirc, []p4.Stmt{
		p4.Call("hh_probe"),
		p4.If(eq(f.u1, 0),
			p4.Call("hh_claim1"),
		).WithElse(
			p4.If(eqf(f.k1, f.hhkey),
				p4.Call("hh_take1"),
			).WithElse(
				p4.If(eq(f.u2, 0),
					p4.Call("hh_claim2"),
				).WithElse(
					p4.If(eqf(f.k2, f.hhkey),
						p4.Call("hh_take2"),
					).WithElse(
						p4.Call("hh_reject"),
					),
				),
			),
		),
	})
}

// hhBlock is the main-pass side: the bind action already hashed the key and
// masked the sample bits; on a zero gate the packet wins the 2^-k coin flip
// and requests the promotion pass.
func (l *Library) hhBlock() []p4.Stmt {
	return []p4.Stmt{
		p4.If(eq(l.f.hhgate, 0), p4.Call("hh_mark")),
	}
}

// BindHeavyHitterSrc samples flows keyed by (ipv4.src >> shift) with
// recirculation probability 2^-sampleShift, promoting winners into the
// slot's candidate table.
func (rt *Runtime) BindHeavyHitterSrc(stage, slot int, m Match, shift, sampleShift uint) (p4.EntryID, error) {
	return rt.bindHH(stage, slot, m, "bind_hh_src", shift, sampleShift)
}

// BindHeavyHitterDst samples flows keyed by (ipv4.dst >> shift).
func (rt *Runtime) BindHeavyHitterDst(stage, slot int, m Match, shift, sampleShift uint) (p4.EntryID, error) {
	return rt.bindHH(stage, slot, m, "bind_hh_dst", shift, sampleShift)
}

func (rt *Runtime) bindHH(stage, slot int, m Match, action string, shift, sampleShift uint) (p4.EntryID, error) {
	if !rt.lib.Opts.HeavyHitter {
		return 0, fmt.Errorf("stat4p4: library built without Options.HeavyHitter")
	}
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if shift > 32 {
		return 0, fmt.Errorf("stat4p4: heavy-hitter shift %d out of range", shift)
	}
	if sampleShift > 32 {
		return 0, fmt.Errorf("stat4p4: sample shift %d out of range", sampleShift)
	}
	base := uint64(slot * rt.lib.Opts.HHTableSize)
	mask := uint64(1)<<sampleShift - 1
	return rt.insert(stage, m, action, []uint64{base, uint64(slot), uint64(shift), mask})
}

// HHEntry is one occupied candidate bucket. Count tallies promotions, each
// representing roughly 2^sampleShift packets of the flow.
type HHEntry struct {
	Key   uint64
	Count uint64
}

// ReadHeavyHitters snapshots a slot's candidate table, heaviest first.
func (rt *Runtime) ReadHeavyHitters(slot int) ([]HHEntry, error) {
	if !rt.lib.Opts.HeavyHitter {
		return nil, fmt.Errorf("stat4p4: library built without Options.HeavyHitter")
	}
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return nil, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	keys, err := rt.sw.Register(RegHHKeys)
	if err != nil {
		return nil, err
	}
	counts, err := rt.sw.Register(RegHHCounts)
	if err != nil {
		return nil, err
	}
	base := slot * rt.lib.Opts.HHTableSize
	var out []HHEntry
	for i := 0; i < rt.lib.Opts.HHTableSize; i++ {
		c, _ := counts.Read(base + i)
		if c == 0 {
			continue
		}
		k, _ := keys.Read(base + i)
		out = append(out, HHEntry{Key: k, Count: c})
	}
	sortHH(out)
	return out, nil
}

// HHRejected reads a slot's rejected-promotion counter.
func (rt *Runtime) HHRejected(slot int) (uint64, error) {
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return 0, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	reg, err := rt.sw.Register(RegHHRej)
	if err != nil {
		return 0, err
	}
	return reg.Read(slot)
}

// MergedHeavyHitters merges the shards' candidate tables by key — the
// controller-side counterpart of the MergeSum register merge, since
// candidate buckets are replica-local and cannot be combined cell-wise.
func (sr *ShardedRuntime) MergedHeavyHitters(slot int) ([]HHEntry, error) {
	byKey := make(map[uint64]uint64)
	for i, rt := range sr.rts {
		entries, err := rt.ReadHeavyHitters(slot)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		for _, e := range entries {
			byKey[e.Key] += e.Count
		}
	}
	out := make([]HHEntry, 0, len(byKey))
	for k, c := range byKey {
		out = append(out, HHEntry{Key: k, Count: c})
	}
	sortHH(out)
	return out, nil
}

// BindHeavyHitterSrc fans Runtime.BindHeavyHitterSrc out to every shard.
func (sr *ShardedRuntime) BindHeavyHitterSrc(stage, slot int, m Match, shift, sampleShift uint) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindHeavyHitterSrc(stage, slot, m, shift, sampleShift)
	})
}

// BindHeavyHitterDst fans Runtime.BindHeavyHitterDst out to every shard.
func (sr *ShardedRuntime) BindHeavyHitterDst(stage, slot int, m Match, shift, sampleShift uint) (p4.EntryID, error) {
	return sr.each(func(rt *Runtime) (p4.EntryID, error) {
		return rt.BindHeavyHitterDst(stage, slot, m, shift, sampleShift)
	})
}

// sortHH orders entries by descending count, then ascending key for
// determinism.
func sortHH(entries []HHEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
}
