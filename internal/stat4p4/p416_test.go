package stat4p4

import (
	"strings"
	"testing"
)

func TestEmitP416Structure(t *testing.T) {
	lib := Build(Options{Slots: 2, Size: 128, Stages: 2, Echo: true})
	src := EmitP416(lib)
	for _, want := range []string{
		"#include <v1model.p4>",
		"#define STAT_COUNTER_NUM  2",
		"#define STAT_COUNTER_SIZE 128",
		"header ethernet_t",
		"struct metadata_t",
		"bit<64> m_xsumsq;",
		"parser Stat4Parser",
		"0x88B5: parse_echo;",
		"register<bit<64>>(256) stat_counters;",
		"register<bit<64>>(2) stat_xsum;",
		"action bind_window(bit<64> p0, bit<64> p1, bit<64> p2, bit<64> p3, bit<64> p4)",
		"action freq_accum()",
		"table bind0",
		"hdr.ipv4.dstAddr : ternary;",
		"table fwd",
		"hdr.ipv4.dstAddr : lpm;",
		"default_action = bind_none();",
		"struct digest1_t",
		"digest<digest1_t>(1, {",
		"meta.tcp_syn = 1;",
		"bind0.apply();",
		"V1Switch(",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("P4-16 output missing %q", want)
		}
	}
	// No raw dotted identifiers may survive sanitisation in code (comments
	// may cite original IR names).
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		for _, banned := range []string{"m.xsum", "stat.counters", "std.ts_ns"} {
			if strings.Contains(line, banned) {
				t.Errorf("unsanitised identifier %q in code line %q", banned, line)
			}
		}
	}
	// Braces balance.
	if strings.Count(src, "{") != strings.Count(src, "}") {
		t.Fatalf("unbalanced braces: %d vs %d", strings.Count(src, "{"), strings.Count(src, "}"))
	}
	if strings.Count(src, "(") != strings.Count(src, ")") {
		t.Fatalf("unbalanced parens")
	}
}

func TestEmitP416SparseUsesHashExtern(t *testing.T) {
	lib := Build(Options{Slots: 1, Size: 64, Stages: 1, Sparse: true})
	src := EmitP416(lib)
	if !strings.Contains(src, "hash(meta.m_h1, HashAlgorithm.crc32_custom") {
		t.Error("sparse probe does not use the hash extern")
	}
	if !strings.Contains(src, "register<bit<64>>(64) stat_skeys;") {
		t.Error("sparse key register missing")
	}
}

func TestEmitP416StrictHasNoMultiply(t *testing.T) {
	lib := Build(Options{Slots: 1, Size: 64, Stages: 1, Strict: true, StrictCapShift: 4})
	src := EmitP416(lib)
	// Scan action bodies for a runtime multiply (the preamble's
	// timestamp widening constant-multiplies, which hardware can do).
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.Contains(trimmed, " * ") && !strings.Contains(trimmed, "ts_ns") &&
			!strings.HasPrefix(trimmed, "//") {
			t.Errorf("strict emission contains a multiply: %s", trimmed)
		}
	}
}

func TestEmitP416Deterministic(t *testing.T) {
	a := EmitP416(Build(Options{Slots: 2, Size: 64, Stages: 1}))
	b := EmitP416(Build(Options{Slots: 2, Size: 64, Stages: 1}))
	if a != b {
		t.Fatal("P4-16 emission is not deterministic")
	}
}
