package stat4p4

import (
	"encoding/json"
	"fmt"
	"io"

	"stat4/internal/p4"
	"stat4/internal/packet"
)

// AppConfig is a declarative Stat4 application: the emitted program's sizing
// plus the routes and binding-table entries a controller installs at startup.
// It is the file-format face of the paper's Figure 4 — Table 1's use cases
// each fit in a few JSON lines, and retuning is editing the file and
// re-applying.
type AppConfig struct {
	// Options sizes the emitted program. Zero values take the library
	// defaults.
	Options Options `json:"options"`

	Routes   []RouteConfig   `json:"routes,omitempty"`
	Bindings []BindingConfig `json:"bindings"`
}

// RouteConfig is one forwarding entry.
type RouteConfig struct {
	Prefix string `json:"prefix"` // CIDR; bare addresses are /32
	Port   uint16 `json:"port"`
	Drop   bool   `json:"drop,omitempty"` // blackhole instead of forwarding
}

// MatchSpec selects the packets a binding applies to. Empty fields are
// wildcards.
type MatchSpec struct {
	Echo      bool   `json:"echo,omitempty"`       // echo frames only
	IPv4      bool   `json:"ipv4,omitempty"`       // require IPv4
	DstPrefix string `json:"dst_prefix,omitempty"` // CIDR on the destination
	SynOnly   bool   `json:"syn_only,omitempty"`   // connection-attempt SYNs
	Priority  int    `json:"priority,omitempty"`
}

// BindingConfig is one binding-table entry in declarative form.
type BindingConfig struct {
	// Kind selects the tracked statistic: window, window-bytes, freq-dst,
	// freq-dport, freq-proto, freq-len, freq-echo, sparse-dst, sparse-src,
	// entropy-dst, entropy-src, hh-dst, hh-src.
	Kind  string    `json:"kind"`
	Stage int       `json:"stage"`
	Slot  int       `json:"slot"`
	Match MatchSpec `json:"match"`

	// Window parameters.
	IntervalShift uint `json:"interval_shift,omitempty"`
	Capacity      int  `json:"capacity,omitempty"`

	// Frequency/sparse parameters.
	Shift uint   `json:"shift,omitempty"`
	Base  uint64 `json:"base,omitempty"`
	Size  int    `json:"size,omitempty"`
	PA    uint64 `json:"pa,omitempty"` // percentile weights; 0,0 → median
	PB    uint64 `json:"pb,omitempty"`

	// K arms the anomaly check at K·σ (0 disables for frequency modes).
	K uint64 `json:"k,omitempty"`

	// Entropy parameters: H0 arms the collapse check at H0/2^EntropyFrac
	// bits (0 disables); CheckEvery rate-limits it (power of two, 0 → 1).
	H0         uint64 `json:"h0,omitempty"`
	CheckEvery uint64 `json:"check_every,omitempty"`

	// SampleShift is the heavy-hitter recirculation exponent: packets
	// recirculate with probability 2^-SampleShift.
	SampleShift uint `json:"sample_shift,omitempty"`
}

// LoadAppConfig decodes and sanity-checks a JSON application description.
func LoadAppConfig(r io.Reader) (*AppConfig, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cfg AppConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("stat4p4: parse app config: %w", err)
	}
	if len(cfg.Bindings) == 0 {
		return nil, fmt.Errorf("stat4p4: app config has no bindings")
	}
	for i := range cfg.Bindings {
		b := &cfg.Bindings[i]
		if b.PA == 0 && b.PB == 0 {
			b.PA, b.PB = 1, 1
		}
	}
	return &cfg, nil
}

// Apply builds the library, instantiates a runtime, and installs every route
// and binding. It returns the runtime and the binding entry IDs in config
// order.
func (cfg *AppConfig) Apply() (*Runtime, []p4.EntryID, error) {
	lib := Build(cfg.Options)
	rt, err := NewRuntime(lib)
	if err != nil {
		return nil, nil, err
	}
	for _, r := range cfg.Routes {
		pfx, err := packet.ParsePrefix(r.Prefix)
		if err != nil {
			return nil, nil, err
		}
		if r.Drop {
			_, err = rt.AddDropRoute(pfx)
		} else {
			_, err = rt.AddRoute(pfx, r.Port)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("stat4p4: route %q: %w", r.Prefix, err)
		}
	}
	ids := make([]p4.EntryID, 0, len(cfg.Bindings))
	for i, b := range cfg.Bindings {
		m, err := b.Match.toMatch()
		if err != nil {
			return nil, nil, fmt.Errorf("stat4p4: binding %d: %w", i, err)
		}
		id, err := cfg.applyBinding(rt, b, m)
		if err != nil {
			return nil, nil, fmt.Errorf("stat4p4: binding %d (%s): %w", i, b.Kind, err)
		}
		ids = append(ids, id)
	}
	return rt, ids, nil
}

func (ms MatchSpec) toMatch() (Match, error) {
	var m Match
	if ms.Echo {
		t := packet.EtherTypeEcho
		m.EthType = &t
	}
	m.RequireIPv4 = ms.IPv4
	if ms.DstPrefix != "" {
		pfx, err := packet.ParsePrefix(ms.DstPrefix)
		if err != nil {
			return m, err
		}
		m.RequireIPv4 = true
		m.DstPrefix = &pfx
	}
	m.SynOnly = ms.SynOnly
	m.Priority = ms.Priority
	return m, nil
}

func (cfg *AppConfig) applyBinding(rt *Runtime, b BindingConfig, m Match) (p4.EntryID, error) {
	size := b.Size
	if size == 0 {
		size = rt.Library().Opts.Size
	}
	switch b.Kind {
	case "window":
		return rt.BindWindow(b.Stage, b.Slot, m, b.IntervalShift, b.Capacity, b.K)
	case "window-bytes":
		return rt.BindWindowBytes(b.Stage, b.Slot, m, b.IntervalShift, b.Capacity, b.K)
	case "freq-dst":
		return rt.BindFreqDst(b.Stage, b.Slot, m, b.Shift, b.Base, size, b.PA, b.PB, b.K)
	case "freq-dport":
		return rt.BindFreqDport(b.Stage, b.Slot, m, b.Shift, b.Base, size, b.PA, b.PB, b.K)
	case "freq-proto":
		return rt.BindFreqProto(b.Stage, b.Slot, m, b.Base, size, b.PA, b.PB, b.K)
	case "freq-len":
		return rt.BindFreqLen(b.Stage, b.Slot, m, b.Shift, b.Base, size, b.PA, b.PB, b.K)
	case "freq-echo":
		return rt.BindFreqEcho(b.Stage, b.Slot, m, b.Base, size, b.PA, b.PB, b.K)
	case "sparse-dst":
		return rt.BindSparseDst(b.Stage, b.Slot, m, b.Shift, b.K)
	case "sparse-src":
		return rt.BindSparseSrc(b.Stage, b.Slot, m, b.Shift, b.K)
	case "entropy-dst":
		return rt.BindEntropyDst(b.Stage, b.Slot, m, b.Shift, b.Base, size, b.H0, b.CheckEvery)
	case "entropy-src":
		return rt.BindEntropySrc(b.Stage, b.Slot, m, b.Shift, b.Base, size, b.H0, b.CheckEvery)
	case "hh-dst":
		return rt.BindHeavyHitterDst(b.Stage, b.Slot, m, b.Shift, b.SampleShift)
	case "hh-src":
		return rt.BindHeavyHitterSrc(b.Stage, b.Slot, m, b.Shift, b.SampleShift)
	default:
		return 0, fmt.Errorf("unknown binding kind %q", b.Kind)
	}
}
