package stat4p4

import (
	"errors"
	"fmt"

	"stat4/internal/p4"
	"stat4/internal/packet"
)

// Runtime is the controller-side handle on a switch running the emitted
// Stat4 program: it installs and retunes binding-table entries, reads the
// tracked distributions out of the registers, and exposes the digest stream.
// All methods are safe to call while the data plane processes packets.
type Runtime struct {
	lib *Library
	sw  *p4.Switch
}

// NewRuntime instantiates a switch for the library's program, installing the
// echo deparser when the library was built with Echo.
func NewRuntime(lib *Library) (*Runtime, error) {
	sw, err := p4.NewSwitch(lib.Prog, lib.Std, lib.Opts.DigestBuf)
	if err != nil {
		return nil, err
	}
	if lib.Opts.Echo {
		sw.SetDeparser(EchoDeparser{lib: lib})
	}
	return &Runtime{lib: lib, sw: sw}, nil
}

// Switch returns the underlying data plane.
func (rt *Runtime) Switch() *p4.Switch { return rt.sw }

// Library returns the emitted library.
func (rt *Runtime) Library() *Library { return rt.lib }

// Match selects which packets a binding entry applies to. Zero-value fields
// are wildcarded.
type Match struct {
	EthType     *packet.EtherType // exact ethertype
	RequireIPv4 bool
	DstPrefix   *packet.Prefix // IPv4 destination prefix
	SynOnly     bool           // only connection-attempt SYNs
	Priority    int            // ternary priority; higher wins
}

// EchoOnly matches echo frames.
func EchoOnly() Match {
	t := packet.EtherTypeEcho
	return Match{EthType: &t}
}

// AllIPv4 matches every IPv4 packet.
func AllIPv4() Match { return Match{RequireIPv4: true} }

// DstIn matches IPv4 packets into a destination prefix.
func DstIn(p packet.Prefix) Match { return Match{RequireIPv4: true, DstPrefix: &p} }

// SynTo matches connection-attempt SYNs into a destination prefix.
func SynTo(p packet.Prefix) Match { return Match{RequireIPv4: true, DstPrefix: &p, SynOnly: true} }

// values lowers the match to the binding tables' four ternary keys:
// [eth.type, ipv4.valid, ipv4.dst, tcp.syn].
func (m Match) values() []p4.MatchValue {
	mv := make([]p4.MatchValue, 4)
	if m.EthType != nil {
		mv[0] = p4.MatchValue{Value: uint64(*m.EthType), Mask: 0xffff}
	}
	if m.RequireIPv4 {
		mv[1] = p4.MatchValue{Value: 1, Mask: 1}
	}
	if m.DstPrefix != nil {
		mask := uint64(0)
		if m.DstPrefix.Len > 0 {
			mask = (^uint64(0) << (32 - uint(m.DstPrefix.Len))) & 0xffffffff
		}
		mv[2] = p4.MatchValue{Value: uint64(m.DstPrefix.Addr), Mask: mask}
	}
	if m.SynOnly {
		mv[3] = p4.MatchValue{Value: 1, Mask: 1}
	}
	return mv
}

// Errors returned by binding operations.
var (
	ErrBadSlot  = errors.New("stat4p4: slot out of range")
	ErrBadStage = errors.New("stat4p4: stage out of range")
	ErrBadSize  = errors.New("stat4p4: distribution exceeds STAT_COUNTER_SIZE")
	ErrStrict   = errors.New("stat4p4: parameter not representable in strict mode")
)

func (rt *Runtime) checkSlotStage(stage, slot int) error {
	if stage < 0 || stage >= rt.lib.Opts.Stages {
		return fmt.Errorf("%w: %d of %d", ErrBadStage, stage, rt.lib.Opts.Stages)
	}
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return fmt.Errorf("%w: %d of %d", ErrBadSlot, slot, rt.lib.Opts.Slots)
	}
	return nil
}

func (rt *Runtime) commonArgs(slot int) (slotBase, slotID uint64) {
	return uint64(slot * rt.lib.Opts.Size), uint64(slot)
}

func (rt *Runtime) checkFreq(size int, pa, pb, k uint64) error {
	if size <= 0 || size > rt.lib.Opts.Size {
		return fmt.Errorf("%w: %d of %d", ErrBadSize, size, rt.lib.Opts.Size)
	}
	if pa == 0 || pb == 0 {
		return fmt.Errorf("stat4p4: percentile weights must be positive")
	}
	if rt.lib.Opts.Strict {
		if pa != 1 || pb != 1 {
			return fmt.Errorf("%w: percentile weights %d:%d (strict supports the median only)", ErrStrict, pa, pb)
		}
		if k != 0 && k != 2 {
			return fmt.Errorf("%w: k must be 0 or 2", ErrStrict)
		}
	}
	return nil
}

func (rt *Runtime) insert(stage int, m Match, action string, args []uint64) (p4.EntryID, error) {
	return rt.sw.InsertEntry(rt.lib.BindTables[stage], m.values(), m.Priority, action, args)
}

// BindFreqEcho tracks the frequency distribution of the echo test integer on
// [0, size): observed value = (wire value + EchoBias) − base. pa:pb are the
// percentile weights (1,1 = median). k ≥ 1 arms the in-switch imbalance
// check at k standard deviations; k = 0 leaves it off.
func (rt *Runtime) BindFreqEcho(stage, slot int, m Match, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if err := rt.checkFreq(size, pa, pb, k); err != nil {
		return 0, err
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, "bind_freq_echo", []uint64{sb, id, base, uint64(size), pa, pb, k})
}

// BindFreqDst tracks packets per destination group: observed value =
// (ipv4.dst >> shift) − base. shift 8 with a /24-aligned base tracks hosts
// within a /24; shift 16 tracks /24 subnets within a /16, and so on.
func (rt *Runtime) BindFreqDst(stage, slot int, m Match, shift uint, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if err := rt.checkFreq(size, pa, pb, k); err != nil {
		return 0, err
	}
	if shift > 32 {
		return 0, fmt.Errorf("stat4p4: dst shift %d out of range", shift)
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, "bind_freq_dst", []uint64{sb, id, uint64(shift), base, uint64(size), pa, pb, k})
}

// BindFreqDport tracks packets per TCP destination port group.
func (rt *Runtime) BindFreqDport(stage, slot int, m Match, shift uint, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if err := rt.checkFreq(size, pa, pb, k); err != nil {
		return 0, err
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, "bind_freq_dport", []uint64{sb, id, uint64(shift), base, uint64(size), pa, pb, k})
}

// BindFreqProto tracks packets by IP protocol — the traffic-classification
// use case of Table 1.
func (rt *Runtime) BindFreqProto(stage, slot int, m Match, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if err := rt.checkFreq(size, pa, pb, k); err != nil {
		return 0, err
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, "bind_freq_proto", []uint64{sb, id, base, uint64(size), pa, pb, k})
}

// BindFreqLen tracks the frame-size distribution in 2^shift-byte buckets.
func (rt *Runtime) BindFreqLen(stage, slot int, m Match, shift uint, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error) {
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if err := rt.checkFreq(size, pa, pb, k); err != nil {
		return 0, err
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, "bind_freq_len", []uint64{sb, id, uint64(shift), base, uint64(size), pa, pb, k})
}

// BindWindow tracks packets per time interval in a circular window of the
// given capacity, checking each completed interval against mean + k·σ.
// Interval length is 2^intervalShift nanoseconds (2^23 ≈ 8.4 ms, the
// case-study default).
func (rt *Runtime) BindWindow(stage, slot int, m Match, intervalShift uint, capacity int, k uint64) (p4.EntryID, error) {
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if capacity <= 0 || capacity > rt.lib.Opts.Size {
		return 0, fmt.Errorf("%w: window capacity %d of %d", ErrBadSize, capacity, rt.lib.Opts.Size)
	}
	if intervalShift >= 64 {
		return 0, fmt.Errorf("stat4p4: interval shift %d out of range", intervalShift)
	}
	if rt.lib.Opts.Strict {
		if capacity != 1<<rt.lib.Opts.StrictCapShift {
			return 0, fmt.Errorf("%w: window capacity must be %d", ErrStrict, 1<<rt.lib.Opts.StrictCapShift)
		}
		if k != 2 {
			return 0, fmt.Errorf("%w: k must be 2", ErrStrict)
		}
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, "bind_window", []uint64{sb, id, uint64(intervalShift), uint64(capacity), k})
}

// AddRoute installs an LPM forwarding route: IPv4 packets into the prefix
// leave on the given port.
func (rt *Runtime) AddRoute(prefix packet.Prefix, port uint16) (p4.EntryID, error) {
	return rt.sw.InsertEntry(FwdTable,
		[]p4.MatchValue{{Value: uint64(prefix.Addr), PrefixLen: prefix.Len}},
		0, "fwd_set_port", []uint64{uint64(port)})
}

// AddDropRoute installs an LPM blackhole route — the paper's "locally react
// to anomalies (e.g., rate limiting some flows)" in its bluntest form.
func (rt *Runtime) AddDropRoute(prefix packet.Prefix) (p4.EntryID, error) {
	return rt.sw.InsertEntry(FwdTable,
		[]p4.MatchValue{{Value: uint64(prefix.Addr), PrefixLen: prefix.Len}},
		0, "fwd_drop", nil)
}

// DelRoute removes a forwarding entry.
func (rt *Runtime) DelRoute(id p4.EntryID) error {
	return rt.sw.DeleteEntry(FwdTable, id)
}

// BindWindowBytes tracks bytes per time interval ("traffic volumes over
// time"): each packet adds its wire length to the current interval. Only
// available on multiply-capable targets (the squared accumulator needs
// 2·cur·δ + δ²).
func (rt *Runtime) BindWindowBytes(stage, slot int, m Match, intervalShift uint, capacity int, k uint64) (p4.EntryID, error) {
	if rt.lib.Opts.Strict {
		return 0, fmt.Errorf("%w: byte-counting windows need runtime multiplication", ErrStrict)
	}
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if capacity <= 0 || capacity > rt.lib.Opts.Size {
		return 0, fmt.Errorf("%w: window capacity %d of %d", ErrBadSize, capacity, rt.lib.Opts.Size)
	}
	if intervalShift >= 64 {
		return 0, fmt.Errorf("stat4p4: interval shift %d out of range", intervalShift)
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, "bind_window_bytes", []uint64{sb, id, uint64(intervalShift), uint64(capacity), k})
}

// Unbind removes a binding entry.
func (rt *Runtime) Unbind(stage int, id p4.EntryID) error {
	if stage < 0 || stage >= rt.lib.Opts.Stages {
		return fmt.Errorf("%w: %d", ErrBadStage, stage)
	}
	return rt.sw.DeleteEntry(rt.lib.BindTables[stage], id)
}

// Moments is a control-plane snapshot of one distribution's measures.
type Moments struct {
	N, Xsum, Xsumsq uint64
	Var, SD         uint64
	Median          uint64
	// MedianMoves is the marker's cumulative movement count; its
	// per-interval difference is the percentile change rate the paper
	// names as an anomaly signal.
	MedianMoves uint64
}

// ReadMoments reads a distribution's scalar registers.
func (rt *Runtime) ReadMoments(slot int) (Moments, error) {
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return Moments{}, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	cell := func(name string) uint64 {
		reg, err := rt.sw.Register(name)
		if err != nil {
			return 0
		}
		v, _ := reg.Read(slot)
		return v
	}
	return Moments{
		N: cell(RegN), Xsum: cell(RegXsum), Xsumsq: cell(RegXsumsq),
		Var: cell(RegVar), SD: cell(RegSD), Median: cell(RegMed),
		MedianMoves: cell(RegMedMoves),
	}, nil
}

// ReadCounters snapshots a distribution's counter cells — what a sketch-only
// controller would pull. n limits how many cells are returned (≤ Size).
func (rt *Runtime) ReadCounters(slot, n int) ([]uint64, error) {
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return nil, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	if n <= 0 || n > rt.lib.Opts.Size {
		n = rt.lib.Opts.Size
	}
	reg, err := rt.sw.Register(RegCounters)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	base := slot * rt.lib.Opts.Size
	for i := range out {
		out[i], _ = reg.Read(base + i)
	}
	return out, nil
}

// ResetSlot zeroes a distribution's counters, squares and metadata so the
// slot can be rebound to a new value of interest.
func (rt *Runtime) ResetSlot(slot int) error {
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	counters, err := rt.sw.Register(RegCounters)
	if err != nil {
		return err
	}
	squares, err := rt.sw.Register(RegSquares)
	if err != nil {
		return err
	}
	base := slot * rt.lib.Opts.Size
	for i := 0; i < rt.lib.Opts.Size; i++ {
		if err := counters.WriteCell(base+i, 0); err != nil {
			return err
		}
		if err := squares.WriteCell(base+i, 0); err != nil {
			return err
		}
	}
	if rt.lib.Opts.Sparse {
		keys, err := rt.sw.Register(RegKeys)
		if err != nil {
			return err
		}
		used, err := rt.sw.Register(RegUsedBits)
		if err != nil {
			return err
		}
		for i := 0; i < rt.lib.Opts.Size; i++ {
			if err := keys.WriteCell(base+i, 0); err != nil {
				return err
			}
			if err := used.WriteCell(base+i, 0); err != nil {
				return err
			}
		}
		rejected, err := rt.sw.Register(RegRejected)
		if err != nil {
			return err
		}
		if err := rejected.WriteCell(slot, 0); err != nil {
			return err
		}
	}
	if rt.lib.Opts.Entropy {
		ecells, err := rt.sw.Register(RegEntCell)
		if err != nil {
			return err
		}
		for i := 0; i < rt.lib.Opts.Size; i++ {
			if err := ecells.WriteCell(base+i, 0); err != nil {
				return err
			}
		}
		esum, err := rt.sw.Register(RegEntSum)
		if err != nil {
			return err
		}
		if err := esum.WriteCell(slot, 0); err != nil {
			return err
		}
	}
	if rt.lib.Opts.HeavyHitter {
		keys, err := rt.sw.Register(RegHHKeys)
		if err != nil {
			return err
		}
		counts, err := rt.sw.Register(RegHHCounts)
		if err != nil {
			return err
		}
		hhBase := slot * rt.lib.Opts.HHTableSize
		for i := 0; i < rt.lib.Opts.HHTableSize; i++ {
			if err := keys.WriteCell(hhBase+i, 0); err != nil {
				return err
			}
			if err := counts.WriteCell(hhBase+i, 0); err != nil {
				return err
			}
		}
		rej, err := rt.sw.Register(RegHHRej)
		if err != nil {
			return err
		}
		if err := rej.WriteCell(slot, 0); err != nil {
			return err
		}
	}
	if rt.lib.Opts.FlowTable {
		ftBase := slot * rt.lib.Opts.FlowTableSize
		for _, name := range []string{RegFTKeys, RegFTStamp, RegFTCnt} {
			reg, err := rt.sw.Register(name)
			if err != nil {
				return err
			}
			for i := 0; i < rt.lib.Opts.FlowTableSize; i++ {
				if err := reg.WriteCell(ftBase+i, 0); err != nil {
					return err
				}
			}
		}
		for _, name := range []string{RegFTAdm, RegFTEvt, RegFTRej, RegFTShed} {
			reg, err := rt.sw.Register(name)
			if err != nil {
				return err
			}
			if err := reg.WriteCell(slot, 0); err != nil {
				return err
			}
		}
	}
	for _, name := range ScalarRegisters {
		reg, err := rt.sw.Register(name)
		if err != nil {
			return err
		}
		if err := reg.WriteCell(slot, 0); err != nil {
			return err
		}
	}
	return nil
}
