package stat4p4

import (
	"fmt"

	"stat4/internal/intstat"
	"stat4/internal/p4"
)

// This file emits the integer-only normalized-entropy measure over a tracked
// frequency distribution, the in-switch counterpart of core.Entropy. The
// datapath maintains
//
//	c_i = f_i · log2fix(f_i)   (one cell per counter cell, RegEntCell)
//	S   = Σ c_i                (one scalar per slot, RegEntSum)
//
// incrementally: each observation reads the cell's old contribution, computes
// the new one from the just-incremented counter, and folds the difference
// into S. All arithmetic wraps mod the cell width, so the incremental S is
// bit-identical to rederiving Σ f·log2fix(f) from the final counters — which
// is exactly how CanonicalizeSnapshot rebuilds both registers from merged
// counters, making sharded merges byte-identical to serial.
//
// The fixed-point log2 is intstat.Log2Fixed emitted as a nested-if binary
// search on the operand's MSB with one leaf action per exponent (the Figure 2
// square-root idiom): at leaf e every shift amount is a compile-time
// constant, so the tree is legal on shift-constant targets. The entropy
// detection itself is division-free: with T = Σf observations,
//
//	H·T·2^frac = T·log2fix(T) − S,
//
// and the collapse check H < h0 becomes T·log2fix(T) − S < h0·T, a
// multiply-and-compare evaluated every checkEvery-th observation.

// Entropy-mode register names.
const (
	RegEntCell = "stat.entcell" // c_i = f_i·log2fix(f_i), Slots×Size cells
	RegEntSum  = "stat.entsum"  // per-slot S = Σ c_i
)

const kindEntropy = 3

// declareEntropy adds the entropy registers, binding actions and update
// actions to the program.
func (l *Library) declareEntropy() {
	f := &l.f
	std := l.Std
	cells := l.Opts.Slots * l.Opts.Size
	w := l.Opts.CellWidth
	// Both registers are pure functions of the counter array, recomputed
	// cell-for-cell by CanonicalizeSnapshot — they are in the recomputed
	// set, not the MergeWhy set.
	l.Prog.AddRegister(RegEntCell, cells, w)
	l.Prog.SetRegisterMerge(RegEntCell, p4.MergeDerived)
	l.Prog.AddRegister(RegEntSum, l.Opts.Slots, w)
	l.Prog.SetRegisterMerge(RegEntSum, p4.MergeDerived)

	common := []p4.Op{
		p4.Mov(f.base, p4.P(0)),
		p4.Mov(f.slotid, p4.P(1)),
		p4.Mov(f.enable, p4.C(1)),
		p4.Mov(f.kind, p4.C(kindEntropy)),
	}
	entTail := []p4.Op{
		p4.Mov(f.size, p4.P(4)),
		p4.Mov(f.h0, p4.P(5)),
		p4.Mov(f.entchk, p4.P(6)),
	}
	// bind_ent_dst(slotBase, slot, shift, base, size, h0, chkmask):
	// value = (ipv4.dst >> shift) − base, wrapping like the freq binds so
	// out-of-range values fail the val < size guard instead of aliasing.
	// h0 = threshold·2^EntropyFrac (0 disables the check); chkmask gates the
	// check to observations where T & chkmask == 0.
	l.Prog.AddAction(p4.NewAction("bind_ent_dst", 7, append(append(append([]p4.Op{}, common...),
		p4.Shr(f.t1, p4.F(std.IPv4Dst), p4.P(2)),
		p4.Sub(f.val, p4.F(f.t1), p4.P(3))),
		entTail...)...))
	// bind_ent_src(slotBase, slot, shift, base, size, h0, chkmask): source
	// entropy — the distribution that collapses under a single-source flood
	// and explodes under a spoofed-source DDoS.
	l.Prog.AddAction(p4.NewAction("bind_ent_src", 7, append(append(append([]p4.Op{}, common...),
		p4.Shr(f.t1, p4.F(std.IPv4Src), p4.P(2)),
		p4.Sub(f.val, p4.F(f.t1), p4.P(3))),
		entTail...)...))

	add := func(name string, ops ...p4.Op) {
		l.Prog.AddAction(p4.NewAction(name, 0, ops...))
	}
	slot := p4.F(f.slotid)

	// ent_store: fold the contribution delta into S. The explicit cell-width
	// mask on c_new keeps the field-side arithmetic identical to what the
	// register stores, so the incremental S telescopes to the rederived one
	// at any cell width, not just 64.
	add("ent_store",
		p4.RegRead(f.ecold, RegEntCell, p4.F(f.idx)),
		p4.Mul(f.ec, p4.F(f.fnew), p4.F(f.lf)),
		p4.And(f.ec, p4.F(f.ec), p4.C(l.cellMask())),
		p4.RegWrite(RegEntCell, p4.F(f.idx), p4.F(f.ec)),
		p4.RegRead(f.es, RegEntSum, slot),
		p4.Add(f.es, p4.F(f.es), p4.F(f.ec)),
		p4.Sub(f.es, p4.F(f.es), p4.F(f.ecold)),
		p4.RegWrite(RegEntSum, slot, p4.F(f.es)),
	)
	// ent_chkgate: the check runs when T & chkmask == 0.
	add("ent_chkgate",
		p4.And(f.entg, p4.F(f.xsum), p4.F(f.entchk)),
	)
	// ent_thr: enta = T·log2fix(T), ht = enta − S (the scaled H·T, clamped),
	// entb = h0·T.
	add("ent_thr",
		p4.Mul(f.enta, p4.F(f.xsum), p4.F(f.lt)),
		p4.SatSub(f.ht, p4.F(f.enta), p4.F(f.es)),
		p4.Mul(f.entb, p4.F(f.h0), p4.F(f.xsum)),
	)
	add("ent_alert",
		p4.EmitDigest(DigestEntropy, f.slotid, f.xsum, f.ht, f.entb, std.TsNs),
	)
}

// entropyBlock is the per-packet entropy update: the shared counter/moment
// accumulation, the log2 tree on the fresh counter, the contribution fold,
// and the periodic collapse check.
func (l *Library) entropyBlock() []p4.Stmt {
	f := &l.f
	stmts := []p4.Stmt{
		p4.Call("freq_load"),
		p4.If(eq(f.f, 0), p4.Call("freq_incr_n")),
		p4.Call("freq_accum"),
	}
	stmts = append(stmts, l.log2Tree(f.fnew, f.lf)...)
	stmts = append(stmts, p4.Call("ent_store"))

	check := l.log2Tree(f.xsum, f.lt)
	check = append(check,
		p4.Call("ent_thr"),
		p4.If(flt(f.ht, f.entb), p4.Call("ent_alert")),
	)
	stmts = append(stmts,
		p4.If(ne(f.h0, 0),
			p4.Call("ent_chkgate"),
			p4.If(eq(f.entg, 0), check...),
		),
	)
	return stmts
}

// log2Tree emits dst = intstat.Log2Fixed(src, EntropyFrac) as a nested-if
// binary search on src's MSB with one constant-shift leaf per exponent —
// bit-identical to the library function at every input, including the
// src = 0 and src = 1 conventions.
func (l *Library) log2Tree(src, dst p4.FieldID) []p4.Stmt {
	prefix := l.log2LeafPrefix(src, dst)
	return []p4.Stmt{
		p4.If(eq(src, 0),
			p4.Call(prefix + "_zero"),
		).WithElse(
			l.log2Range(prefix, src, 0, 63),
		),
	}
}

func (l *Library) log2Range(prefix string, src p4.FieldID, lo, hi int) p4.Stmt {
	if lo == hi {
		return p4.Call(fmt.Sprintf("%s_%d", prefix, lo))
	}
	mid := (lo + hi + 1) / 2
	return p4.IfStmt{
		Cond: p4.Cond{A: p4.F(src), Op: p4.CmpGe, B: p4.C(1 << uint(mid))},
		Then: []p4.Stmt{l.log2Range(prefix, src, mid, hi)},
		Else: []p4.Stmt{l.log2Range(prefix, src, lo, mid-1)},
	}
}

// log2LeafPrefix names (and lazily declares) the 64 leaf actions plus the
// zero case for one (src, dst) pair. Leaf e computes
// (e << frac) | fraction-bits with the exact Log2Fixed shift layout; at
// EntropyFrac ≤ Log2MaxFrac no uint64 exponent can saturate, so the leaves
// need no sentinel branch.
func (l *Library) log2LeafPrefix(src, dst p4.FieldID) string {
	prefix := fmt.Sprintf("lg_%d_%d", src, dst)
	if l.declaredLogLeaves == nil {
		l.declaredLogLeaves = make(map[string]bool)
	}
	if l.declaredLogLeaves[prefix] {
		return prefix
	}
	l.declaredLogLeaves[prefix] = true
	fr := l.Opts.EntropyFrac
	l.Prog.AddAction(p4.NewAction(prefix+"_zero", 0, p4.Mov(dst, p4.C(0))))
	// e = 0 (src == 1): log2 is exactly 0 at every precision.
	l.Prog.AddAction(p4.NewAction(prefix+"_0", 0, p4.Mov(dst, p4.C(0))))
	for e := 1; e <= 63; e++ {
		ops := []p4.Op{
			// mantissa: clear the MSB.
			p4.Xor(dst, p4.F(src), p4.C(1<<uint(e))),
		}
		// Align the mantissa to the fractional width; the aligned bits are
		// strictly below the e << frac integer part, so Or combines exactly.
		if uint(e) >= fr {
			ops = append(ops, p4.Shr(dst, p4.F(dst), p4.C(uint64(uint(e)-fr))))
		} else {
			ops = append(ops, p4.Shl(dst, p4.F(dst), p4.C(uint64(fr-uint(e)))))
		}
		ops = append(ops, p4.Or(dst, p4.F(dst), p4.C(uint64(e)<<fr)))
		l.Prog.AddAction(p4.NewAction(fmt.Sprintf("%s_%d", prefix, e), 0, ops...))
	}
	return prefix
}

// BindEntropyDst tracks the entropy of the destination-group distribution
// value = (ipv4.dst >> shift) − base on [0, size). h0 arms the in-switch
// collapse check at h0/2^EntropyFrac bits of normalized-scale entropy
// (0 disables it); checkEvery (a power of two) rate-limits the check to
// every checkEvery-th observation.
func (rt *Runtime) BindEntropyDst(stage, slot int, m Match, shift uint, base uint64, size int, h0, checkEvery uint64) (p4.EntryID, error) {
	return rt.bindEntropy(stage, slot, m, "bind_ent_dst", shift, base, size, h0, checkEvery)
}

// BindEntropySrc tracks the entropy of the source-group distribution — the
// signal that collapses when one source dominates the traffic mix.
func (rt *Runtime) BindEntropySrc(stage, slot int, m Match, shift uint, base uint64, size int, h0, checkEvery uint64) (p4.EntryID, error) {
	return rt.bindEntropy(stage, slot, m, "bind_ent_src", shift, base, size, h0, checkEvery)
}

func (rt *Runtime) bindEntropy(stage, slot int, m Match, action string, shift uint, base uint64, size int, h0, checkEvery uint64) (p4.EntryID, error) {
	if !rt.lib.Opts.Entropy {
		return 0, fmt.Errorf("stat4p4: library built without Options.Entropy")
	}
	if err := rt.checkSlotStage(stage, slot); err != nil {
		return 0, err
	}
	if size <= 0 || size > rt.lib.Opts.Size {
		return 0, fmt.Errorf("%w: %d of %d", ErrBadSize, size, rt.lib.Opts.Size)
	}
	if shift > 32 {
		return 0, fmt.Errorf("stat4p4: entropy shift %d out of range", shift)
	}
	if checkEvery == 0 {
		checkEvery = 1
	}
	if checkEvery&(checkEvery-1) != 0 {
		return 0, fmt.Errorf("stat4p4: checkEvery %d is not a power of two", checkEvery)
	}
	sb, id := rt.commonArgs(slot)
	return rt.insert(stage, m, action, []uint64{sb, id, uint64(shift), base, uint64(size), h0, checkEvery - 1})
}

// EntropySnapshot is a control-plane view of one slot's entropy state.
type EntropySnapshot struct {
	// Total is T, the number of observations (the slot's Xsum).
	Total uint64
	// Sum is S = Σ f·log2fix(f), masked to the cell width.
	Sum uint64
	// ScaledBits is T·log2fix(T) − S = H·T·2^frac, the division-free form
	// the in-switch check compares against h0·T.
	ScaledBits uint64
	// Bits is ScaledBits/(T·2^frac) — the Shannon entropy in bits, computed
	// in floating point for display only; every decision path stays integer.
	Bits float64
}

// ReadEntropy reads a slot's entropy registers and derives the scaled form
// with the same intstat arithmetic the datapath uses.
func (rt *Runtime) ReadEntropy(slot int) (EntropySnapshot, error) {
	if !rt.lib.Opts.Entropy {
		return EntropySnapshot{}, fmt.Errorf("stat4p4: library built without Options.Entropy")
	}
	if slot < 0 || slot >= rt.lib.Opts.Slots {
		return EntropySnapshot{}, fmt.Errorf("%w: %d", ErrBadSlot, slot)
	}
	sumReg, err := rt.sw.Register(RegEntSum)
	if err != nil {
		return EntropySnapshot{}, err
	}
	xsumReg, err := rt.sw.Register(RegXsum)
	if err != nil {
		return EntropySnapshot{}, err
	}
	s, _ := sumReg.Read(slot)
	t, _ := xsumReg.Read(slot)
	return rt.lib.entropySnapshot(t, s), nil
}

func (l *Library) entropySnapshot(total, sum uint64) EntropySnapshot {
	snap := EntropySnapshot{Total: total, Sum: sum}
	if total == 0 {
		return snap
	}
	snap.ScaledBits = intstat.SatSub(total*intstat.Log2Fixed(total, l.Opts.EntropyFrac), sum)
	snap.Bits = float64(snap.ScaledBits) / (float64(total) * float64(uint64(1)<<l.Opts.EntropyFrac))
	return snap
}
