package telemetry

import (
	"testing"

	"stat4/internal/intstat"
)

// TestBucketLowInvertsLog2Fixed pins the bucket geometry: for every sample v,
// BucketLow(bucket(v)) ≤ v < BucketLow(bucket(v)+1), and no uint64 sample
// falls outside the counter domain.
func TestBucketLowInvertsLog2Fixed(t *testing.T) {
	samples := []uint64{0, 1, 2, 3, 4, 5, 7, 8, 100, 896, 1000, 1024, 1 << 20, 123456789, 1<<40 + 3, ^uint64(0)}
	for _, v := range samples {
		b := intstat.Log2Fixed(v, HistFracBits)
		if b >= HistBuckets {
			t.Fatalf("Log2Fixed(%d) = %d, outside [0,%d)", v, b, HistBuckets)
		}
		lo := BucketLow(b)
		if lo > v {
			t.Fatalf("BucketLow(%d) = %d > sample %d", b, lo, v)
		}
		// Below 2^HistFracBits the octaves are narrower than the sub-bucket
		// fan-out, so neighbouring buckets collapse to the same lower bound
		// (bucket 0 holds both 0 and 1); the strict upper bound only holds
		// once every sub-bucket is at least one value wide.
		if v >= 1<<HistFracBits && b+1 < HistBuckets {
			if hi := BucketLow(b + 1); v >= hi {
				t.Fatalf("sample %d in bucket %d but >= next bucket's low %d", v, b, hi)
			}
		}
	}
	// Exact powers of two are their own bucket lower bound (except 1, which
	// shares bucket 0 with 0).
	for e := uint64(1); e < 64; e++ {
		v := uint64(1) << e
		if got := BucketLow(intstat.Log2Fixed(v, HistFracBits)); got != v {
			t.Fatalf("BucketLow(bucket(1<<%d)) = %d, want %d", e, got, v)
		}
	}
}

func TestHistCountSumMinMax(t *testing.T) {
	h := NewHist()
	if h.Min() != 0 {
		t.Fatalf("empty Min = %d, want 0", h.Min())
	}
	for _, v := range []uint64{5, 100, 3, 42} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 150 || h.Min() != 3 || h.Max() != 100 {
		t.Fatalf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.P50() != 0 {
		t.Fatal("Reset left state behind")
	}
	h.Observe(9)
	if h.Min() != 9 || h.Max() != 9 || h.Count() != 1 {
		t.Fatal("histogram unusable after Reset")
	}
}

// TestHistPercentiles drives the markers with a known distribution: a
// constant stream puts both markers exactly on the value's bucket lower
// bound, and the log-domain moments count every sample.
func TestHistPercentiles(t *testing.T) {
	h := NewHist()
	for i := 0; i < 1000; i++ {
		h.Observe(1024)
	}
	if h.P50() != 1024 || h.P99() != 1024 {
		t.Fatalf("constant stream: P50=%d P99=%d, want 1024", h.P50(), h.P99())
	}
	m := h.LogMoments()
	if m.N != 1000 {
		t.Fatalf("log moments N = %d, want 1000", m.N)
	}
	// log2(1024) in HistFracBits fixed point, summed over every sample.
	if want := uint64(1000) * (10 << HistFracBits); m.Sum != want {
		t.Fatalf("log moments Sum = %d, want %d", m.Sum, want)
	}
	if m.StdDev() != 0 {
		t.Fatalf("constant stream has log-domain sd %d, want 0", m.StdDev())
	}
}

// TestHistP99SeparatesTail checks the two markers actually disagree on a
// spread-out stream: linear-uniform samples over 1..N pile half their mass
// into the top octave, so the median sits around N/2's bucket while the
// 99th-percentile marker climbs into the top octave.
func TestHistP99SeparatesTail(t *testing.T) {
	h := NewHist()
	const n = 10000
	for pass := 0; pass < 3; pass++ { // repeat so both markers fully converge
		for v := uint64(1); v <= n; v++ {
			h.Observe(v)
		}
	}
	if p50 := h.P50(); p50 < 1024 || p50 > 8192 {
		t.Fatalf("P50 = %d, want around n/2's bucket", p50)
	}
	if h.P99() <= h.P50() {
		t.Fatalf("P99 = %d did not separate from P50 = %d", h.P99(), h.P50())
	}
	if h.P99() < 8192 {
		t.Fatalf("P99 = %d, want in the top octave (>= 8192)", h.P99())
	}
}
