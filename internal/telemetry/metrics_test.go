package telemetry

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestTimelineDropsWhenFull(t *testing.T) {
	tl := NewTimeline(2)
	tl.Record(10, 1)
	tl.Record(20, 2)
	tl.Record(30, 3) // over capacity: dropped, counted
	if got := tl.Entries(); len(got) != 2 || got[0] != (TimelineEntry{AtNs: 10, Code: 1}) || got[1] != (TimelineEntry{AtNs: 20, Code: 2}) {
		t.Fatalf("entries = %v", got)
	}
	if tl.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tl.Dropped())
	}
	tl.Reset()
	if len(tl.Entries()) != 0 || tl.Dropped() != 0 {
		t.Fatal("Reset left state behind")
	}
	tl.Record(40, 4)
	if len(tl.Entries()) != 1 {
		t.Fatal("timeline unusable after Reset")
	}
}

func TestTimelineDefaultCapacity(t *testing.T) {
	tl := NewTimeline(0)
	for i := uint64(0); i < 100; i++ {
		tl.Record(i, i)
	}
	if len(tl.Entries()) != 64 || tl.Dropped() != 36 {
		t.Fatalf("entries=%d dropped=%d, want 64/36", len(tl.Entries()), tl.Dropped())
	}
}

// TestSwitchMetricsPairing checks the emit/deliver FIFO: each delivery pairs
// with the oldest outstanding emit stamp, and a delivery with no outstanding
// stamp (observer attached after traffic started) is counted but recorded
// nowhere.
func TestSwitchMetricsPairing(t *testing.T) {
	m := NewSwitchMetrics(4)
	for i := 0; i < 3; i++ {
		m.DigestEmitted()
	}
	for i := 0; i < 3; i++ {
		m.DigestDelivered()
	}
	if m.Emitted() != 3 || m.Delivered() != 3 {
		t.Fatalf("emitted=%d delivered=%d", m.Emitted(), m.Delivered())
	}
	if m.DigestWait.Count() != 3 {
		t.Fatalf("wait samples = %d, want 3", m.DigestWait.Count())
	}
	// Unpaired delivery: counted, no bogus wait sample.
	m.DigestDelivered()
	if m.Delivered() != 4 || m.DigestWait.Count() != 3 {
		t.Fatalf("unpaired delivery recorded a wait: delivered=%d waits=%d",
			m.Delivered(), m.DigestWait.Count())
	}
}

// TestSwitchMetricsRingOverwrite checks the bounded-mailbox behaviour: when
// emits outrun deliveries past the ring capacity, the oldest stamps are
// overwritten instead of growing the ring, and later deliveries still pair
// FIFO with what survived.
func TestSwitchMetricsRingOverwrite(t *testing.T) {
	m := NewSwitchMetrics(2)
	for i := 0; i < 5; i++ {
		m.DigestEmitted()
	}
	if m.Emitted() != 5 {
		t.Fatalf("emitted = %d", m.Emitted())
	}
	// Only 2 stamps survive; a third delivery finds the ring empty.
	for i := 0; i < 3; i++ {
		m.DigestDelivered()
	}
	if m.DigestWait.Count() != 2 {
		t.Fatalf("wait samples = %d, want ring capacity 2", m.DigestWait.Count())
	}
	if m.Delivered() != 3 {
		t.Fatalf("delivered = %d", m.Delivered())
	}
}

func TestSwitchMetricsDropped(t *testing.T) {
	m := NewSwitchMetrics(0) // default capacity
	m.PacketCost(123)
	m.DigestDropped()
	if m.Cost.Count() != 1 || m.Cost.Sum() != 123 {
		t.Fatalf("cost hist %d/%d", m.Cost.Count(), m.Cost.Sum())
	}
	if m.Dropped() != 1 {
		t.Fatalf("dropped = %d", m.Dropped())
	}
}

// TestPipelineRegister wires a full bundle into a registry and checks the
// exposition it produces parses under the package's own validator.
func TestPipelineRegister(t *testing.T) {
	p := NewPipeline()
	p.Switch.PacketCost(1000)
	p.Switch.DigestEmitted()
	p.Switch.DigestDelivered()
	p.Node.FrameLatency.Observe(500)
	p.Node.DroppedDigests.Inc()
	p.Queue.Observe(3)
	p.Phases.Record(42, 1)

	reg := NewRegistry("stat4_test")
	p.Register(reg)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateExposition(b.String())
	if err != nil {
		t.Fatalf("pipeline exposition invalid: %v\n%s", err, b.String())
	}
	if n == 0 {
		t.Fatal("no samples")
	}
	for _, want := range []string{
		"stat4_test_packet_cost_ns{quantile=\"0.5\"}",
		"stat4_test_digests_emitted 1",
		"stat4_test_node_dropped_digests 1",
		"stat4_test_controller_phase{seq=\"0\",code=\"1\"} 42",
	} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, b.String())
		}
	}
}
