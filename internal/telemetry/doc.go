// Package telemetry is the observability layer of the repo, built by
// dogfooding the paper's own machinery: every latency and occupancy
// distribution is tracked with the Stat4 primitives from internal/core — a
// frequency array over log2 fixed-point buckets, scaled moments with the
// lazy standard deviation of Section 3, and the one-step-per-packet
// percentile markers of Figure 3 for P50/P99. The recording path is
// integer-only (no division, no floating point, no unbounded loops) and is
// annotated //stat4:datapath, so cmd/stat4-lint enforces switch feasibility
// on the metrics core exactly as it does on the data plane being measured.
//
// The layer exists because the paper's argument (Figure 1c) makes detection
// quality a function of what the switch→controller channel delivers and
// when; the repo needs to observe its own digest pipeline — per-packet
// processing cost, digest emit/drop/delivery, control-channel latency,
// event-queue occupancy, drill-down phase transitions — without perturbing
// it. Recording is allocation-free after construction (the zero-alloc tests
// pin 0 allocs/packet with recording enabled) and all recorded and exposed
// values are integers.
//
// Recorders are single-writer: they must be updated from the data-plane (or
// simulation) goroutine only, and snapshots must be taken from that same
// goroutine or after processing has stopped — the same contract as the
// switch's register arrays.
//
// The pieces:
//
//	Hist          log2-bucketed distribution (count/sum/min/max + markers)
//	Counter       a plain monotonic event counter
//	Timeline      a bounded record of (timestamp, code) transitions
//	SwitchMetrics the p4.Observer implementation (cost, digest lifecycle)
//	NodeMetrics   netem.SwitchNode channel observables
//	Pipeline      one bundle of all of the above for a switch→controller path
//	Registry      named recorders → Prometheus-style text or a JSON snapshot
package telemetry
