package telemetry

import (
	"math/rand"
	"strings"
	"testing"
)

// TestHistMergeMatchesSerial shards a sample stream over K histograms,
// merges them, and checks the result against one histogram that saw every
// sample: exact fields (count, sum, min, max) must be equal, and the
// re-derived P50/P99 must sit at the marker equilibrium of the combined
// bucket distribution while movement counts sum across shards.
func TestHistMergeMatchesSerial(t *testing.T) {
	for _, k := range []int{1, 2, 3, 8} {
		rng := rand.New(rand.NewSource(int64(40 + k)))
		serial := NewHist()
		shards := make([]*Hist, k)
		for i := range shards {
			shards[i] = NewHist()
		}
		for i := 0; i < 5000; i++ {
			v := uint64(rng.Intn(1 << uint(rng.Intn(20))))
			serial.Observe(v)
			shards[rng.Intn(k)].Observe(v)
		}
		merged := NewHist()
		for _, s := range shards {
			if err := merged.MergeFrom(s); err != nil {
				t.Fatal(err)
			}
		}
		if merged.Count() != serial.Count() || merged.Sum() != serial.Sum() ||
			merged.Min() != serial.Min() || merged.Max() != serial.Max() {
			t.Fatalf("k=%d: merged (count=%d sum=%d min=%d max=%d), serial (%d %d %d %d)",
				k, merged.Count(), merged.Sum(), merged.Min(), merged.Max(),
				serial.Count(), serial.Sum(), serial.Min(), serial.Max())
		}
		// Bucket distributions are identical, so the merged markers (at
		// equilibrium by construction) match serial markers re-derived over
		// the same counters.
		sd := serial.Dist()
		if err := sd.MergeFrom(NewHist().Dist()); err != nil { // no-op merge re-derives serial markers
			t.Fatal(err)
		}
		if merged.P50() != serial.P50() || merged.P99() != serial.P99() {
			t.Fatalf("k=%d: merged P50/P99 = %d/%d, serial re-derived %d/%d",
				k, merged.P50(), merged.P99(), serial.P50(), serial.P99())
		}
		lm, ls := merged.LogMoments(), serial.LogMoments()
		if lm.N != ls.N || lm.Sum != ls.Sum || lm.Sumsq != ls.Sumsq {
			t.Fatalf("k=%d: merged log moments (%d,%d,%d), serial (%d,%d,%d)",
				k, lm.N, lm.Sum, lm.Sumsq, ls.N, ls.Sum, ls.Sumsq)
		}
		var moves uint64
		for _, s := range shards {
			moves += s.P50Moves()
		}
		if merged.P50Moves() != moves {
			t.Fatalf("k=%d: merged P50 moves %d, shard sum %d", k, merged.P50Moves(), moves)
		}
	}
}

// TestHistMergeEmpty checks merging empty histograms leaves min/max sane.
func TestHistMergeEmpty(t *testing.T) {
	a, b := NewHist(), NewHist()
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Fatalf("empty merge: count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
	b.Observe(7)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1 || a.Min() != 7 || a.Max() != 7 {
		t.Fatalf("after merging one sample: count=%d min=%d max=%d", a.Count(), a.Min(), a.Max())
	}
}

// TestShardedPipelineRegister drives per-shard observers, refreshes the
// merged view, and checks the registry exposes both the fleet totals and the
// shardN_ split as a valid integer exposition.
func TestShardedPipelineRegister(t *testing.T) {
	sp := NewShardedPipeline(2)
	sp.Shards[0].PacketCost(100)
	sp.Shards[0].PacketCost(200)
	sp.Shards[1].PacketCost(400)
	sp.Shards[0].DigestEmitted()
	sp.Shards[1].DigestEmitted()
	sp.Shards[1].DigestDropped()
	sp.Refresh()

	if got := sp.Merged.Cost.Count(); got != 3 {
		t.Fatalf("merged cost count = %d, want 3", got)
	}
	if got := sp.Merged.Cost.Sum(); got != 700 {
		t.Fatalf("merged cost sum = %d, want 700", got)
	}

	reg := NewRegistry("test")
	sp.Register(reg)
	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"test_packet_cost_ns_count 3",
		"test_digests_emitted 2",
		"test_digests_dropped 1",
		"test_shard0_packet_cost_ns_count 2",
		"test_shard1_packet_cost_ns_count 1",
		"test_shard1_digests_dropped 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidateExposition(out); err != nil {
		t.Fatal(err)
	}

	// Refresh after more traffic replaces, not double-counts, the merge.
	sp.Shards[1].PacketCost(800)
	sp.Refresh()
	if got := sp.Merged.Cost.Count(); got != 4 {
		t.Fatalf("refreshed merged cost count = %d, want 4", got)
	}
}

// TestShardedPipelineIngestSeries pins the ingest plane's export: depth-style
// readers render as TYPE gauge, shed totals as counters, nil readers as zero,
// and the whole exposition still validates.
func TestShardedPipelineIngestSeries(t *testing.T) {
	sp := NewShardedPipeline(1)
	depth := uint64(3)
	sp.Ingest = &IngestMetrics{
		RingDepth:   func() uint64 { return depth },
		RingCap:     func() uint64 { return 64 },
		BlocksInUse: func() uint64 { return 2 },
		ShedBatches: func() uint64 { return 5 },
		// ShedFrames deliberately nil: it must render as 0, not panic.
	}
	reg := NewRegistry("stat4d")
	sp.Register(reg)

	var sb strings.Builder
	if err := reg.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE stat4d_ingest_ring_depth gauge\nstat4d_ingest_ring_depth 3",
		"# TYPE stat4d_ingest_ring_capacity gauge\nstat4d_ingest_ring_capacity 64",
		"# TYPE stat4d_ingest_blocks_in_use gauge\nstat4d_ingest_blocks_in_use 2",
		"# TYPE stat4d_ingest_shed_batches counter\nstat4d_ingest_shed_batches 5",
		"# TYPE stat4d_ingest_shed_frames counter\nstat4d_ingest_shed_frames 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if _, err := ValidateExposition(out); err != nil {
		t.Fatal(err)
	}

	// Gauges are lazy: a second render sees the new depth, and the JSON
	// snapshot carries them under their own key.
	depth = 9
	snap := reg.Snapshot()
	if len(snap.Gauges) != 3 {
		t.Fatalf("snapshot has %d gauges, want 3", len(snap.Gauges))
	}
	if snap.Gauges[0].Name != "ingest_ring_depth" || snap.Gauges[0].Value != 9 {
		t.Fatalf("gauge[0] = %+v, want ingest_ring_depth 9", snap.Gauges[0])
	}
}
