package telemetry

import (
	"fmt"
	"time"
)

// Counter is a plain monotonic event counter. Like every recorder in the
// package it is single-writer: increment it from the data-plane goroutine
// only and read it from that goroutine or after processing stops.
type Counter uint64

// Inc adds one.
//
//stat4:datapath
func (c *Counter) Inc() { *c++ }

// Add adds n.
//
//stat4:datapath
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return uint64(*c) }

// TimelineEntry is one recorded transition.
type TimelineEntry struct {
	AtNs uint64 `json:"at_ns"`
	Code uint64 `json:"code"`
}

// Timeline is a bounded record of (timestamp, code) events — the
// controller's phase-transition log in integer form. Capacity is fixed at
// construction so recording never allocates; entries past the capacity are
// dropped and counted rather than silently lost.
type Timeline struct {
	entries []TimelineEntry
	dropped uint64
}

// NewTimeline returns an empty timeline that holds up to capacity entries.
func NewTimeline(capacity int) *Timeline {
	if capacity <= 0 {
		capacity = 64
	}
	return &Timeline{entries: make([]TimelineEntry, 0, capacity)}
}

// Record appends one transition, dropping (and counting) it if the timeline
// is full. Codes are caller-defined; the controller uses its Phase values.
func (t *Timeline) Record(atNs, code uint64) {
	if len(t.entries) == cap(t.entries) {
		t.dropped++
		return
	}
	t.entries = append(t.entries, TimelineEntry{AtNs: atNs, Code: code})
}

// Entries returns the recorded transitions (read-only for callers).
func (t *Timeline) Entries() []TimelineEntry { return t.entries }

// Dropped returns how many transitions did not fit.
func (t *Timeline) Dropped() uint64 { return t.dropped }

// Reset clears the timeline.
func (t *Timeline) Reset() {
	t.entries = t.entries[:0]
	t.dropped = 0
}

// SwitchMetrics instruments one p4.Switch: it implements the p4.Observer
// interface (per-packet processing cost, digest emit/drop) and additionally
// tracks the wall-clock wait between a digest entering the switch's channel
// and the consumer draining it — the push-arrow latency of Figure 1c as the
// host actually delivers it. Consumers report drains via DigestDelivered;
// emit timestamps ride a fixed ring sized to the digest channel, so pairing
// is FIFO like the channel itself and recording never allocates.
type SwitchMetrics struct {
	// Cost is the per-packet processing cost in nanoseconds (parse,
	// execute, deparse — whatever the Process* call spans).
	Cost *Hist
	// DigestWait is the emit→drain wall-clock wait in nanoseconds.
	DigestWait *Hist

	emitted   Counter
	dropped   Counter
	delivered Counter

	// Emit-timestamp ring; head/tail advance with compare-and-reset (the
	// win_head_wrap idiom) — no modulo.
	ring       []uint64
	head, tail int
	n          int
}

// NewSwitchMetrics returns switch instrumentation whose emit-timestamp ring
// holds ringCap in-flight digests (0 picks 1024, the switch's default digest
// channel capacity).
func NewSwitchMetrics(ringCap int) *SwitchMetrics {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &SwitchMetrics{
		Cost:       NewHist(),
		DigestWait: NewHist(),
		ring:       make([]uint64, ringCap),
	}
}

// nowNanos is the wall clock used for digest-wait pairing.
func nowNanos() uint64 { return uint64(time.Now().UnixNano()) }

// PacketCost records one packet's processing cost (p4.Observer).
//
//stat4:datapath
func (m *SwitchMetrics) PacketCost(ns uint64) { m.Cost.Observe(ns) }

// DigestEmitted records a digest accepted by the channel (p4.Observer) and
// stamps its emit time for the wait measurement. If the consumer never
// drains (ring full), the oldest stamp is overwritten so the ring mirrors a
// bounded mailbox rather than growing.
//
//stat4:datapath
func (m *SwitchMetrics) DigestEmitted() {
	m.emitted.Inc()
	if m.n == len(m.ring) {
		// Overwrite the oldest stamp.
		m.tail++
		if m.tail == len(m.ring) {
			m.tail = 0
		}
		m.n--
	}
	m.ring[m.head] = nowNanos()
	m.head++
	if m.head == len(m.ring) {
		m.head = 0
	}
	m.n++
}

// DigestDropped records a digest lost to a full channel (p4.Observer).
//
//stat4:datapath
func (m *SwitchMetrics) DigestDropped() { m.dropped.Inc() }

// DigestDelivered records one digest drained from the channel, pairing it
// FIFO with its emit stamp and folding the wait into DigestWait. Callers
// invoke it once per received digest.
func (m *SwitchMetrics) DigestDelivered() {
	m.delivered.Inc()
	if m.n == 0 {
		return // drained more than was stamped (observer attached late)
	}
	ts := m.ring[m.tail]
	m.tail++
	if m.tail == len(m.ring) {
		m.tail = 0
	}
	m.n--
	now := nowNanos()
	if now < ts {
		// The wall clock stepped backwards between stamp and drain; record
		// a zero wait rather than an enormous wrapped one.
		now = ts
	}
	m.DigestWait.Observe(now - ts)
}

// Emitted returns how many digests the data plane pushed successfully.
func (m *SwitchMetrics) Emitted() uint64 { return m.emitted.Value() }

// Dropped returns how many digests the data plane lost to a full channel.
func (m *SwitchMetrics) Dropped() uint64 { return m.dropped.Value() }

// Delivered returns how many digests consumers reported drained.
func (m *SwitchMetrics) Delivered() uint64 { return m.delivered.Value() }

// NodeMetrics instruments one netem.SwitchNode: the simulated channel
// observables of Figure 1c in virtual time.
type NodeMetrics struct {
	// FrameLatency is inject→deliver virtual nanoseconds for frames routed
	// over connected links.
	FrameLatency *Hist
	// CtrlLatency is drain→controller-arrival virtual nanoseconds for
	// digests on the control channel.
	CtrlLatency *Hist
	// DigestQueue is the switch digest-queue occupancy observed as each
	// digest is drained, counting the digest being popped — a backlog of
	// three records samples {3,2,1}, never {2,1,0}.
	DigestQueue *Hist
	// DroppedDigests counts digests drained while no OnDigest handler was
	// attached (see the SwitchNode attach-before-inject contract).
	DroppedDigests Counter
	// UnroutedFrames counts frames emitted on ports with no connected link.
	UnroutedFrames Counter
}

// NewNodeMetrics returns empty node instrumentation.
func NewNodeMetrics() *NodeMetrics {
	return &NodeMetrics{
		FrameLatency: NewHist(),
		CtrlLatency:  NewHist(),
		DigestQueue:  NewHist(),
	}
}

// Pipeline bundles the recorders for one switch→controller pipeline: the
// switch observer, the netem node observables, the simulator's event-queue
// depth and the controller's phase timeline. It is what the cmds wire up
// behind -metrics.
type Pipeline struct {
	Switch *SwitchMetrics
	Node   *NodeMetrics
	Queue  *Hist
	Phases *Timeline
}

// NewPipeline returns a fully-populated bundle.
func NewPipeline() *Pipeline {
	return &Pipeline{
		Switch: NewSwitchMetrics(0),
		Node:   NewNodeMetrics(),
		Queue:  NewHist(),
		Phases: NewTimeline(64),
	}
}

// Register adds every recorder of the bundle to reg under standard names.
func (p *Pipeline) Register(reg *Registry) {
	reg.RegisterHist("packet_cost_ns", "per-packet processing cost", p.Switch.Cost)
	reg.RegisterHist("digest_wait_ns", "digest emit-to-drain wall-clock wait", p.Switch.DigestWait)
	reg.RegisterCounter("digests_emitted", "digests accepted by the channel", p.Switch.Emitted)
	reg.RegisterCounter("digests_dropped", "digests lost to a full channel", p.Switch.Dropped)
	reg.RegisterCounter("digests_delivered", "digests drained by consumers", p.Switch.Delivered)
	reg.RegisterHist("frame_latency_ns", "inject-to-deliver virtual latency", p.Node.FrameLatency)
	reg.RegisterHist("ctrl_latency_ns", "digest control-channel virtual latency", p.Node.CtrlLatency)
	reg.RegisterHist("digest_queue_depth", "digest channel occupancy at drain", p.Node.DigestQueue)
	reg.RegisterCounter("node_dropped_digests", "digests drained with no handler attached", p.Node.DroppedDigests.Value)
	reg.RegisterCounter("node_unrouted_frames", "frames emitted on unconnected ports", p.Node.UnroutedFrames.Value)
	reg.RegisterHist("event_queue_depth", "simulator event-queue depth per event", p.Queue)
	reg.RegisterTimeline("controller_phase", "drill-down phase transitions", p.Phases)
}

// MergeFrom folds another switch observer's recordings into this one: cost
// and digest-wait distributions merge, digest counters add. The in-flight
// emit-timestamp ring is deliberately untouched — a merged view is a
// read-side aggregate over finished (or quiesced) shards, not a live
// recorder to keep pairing digests on.
func (m *SwitchMetrics) MergeFrom(o *SwitchMetrics) error {
	if err := m.Cost.MergeFrom(o.Cost); err != nil {
		return err
	}
	if err := m.DigestWait.MergeFrom(o.DigestWait); err != nil {
		return err
	}
	m.emitted.Add(o.emitted.Value())
	m.dropped.Add(o.dropped.Value())
	m.delivered.Add(o.delivered.Value())
	return nil
}

// MergeFrom folds another node's channel observables into this one.
func (n *NodeMetrics) MergeFrom(o *NodeMetrics) error {
	if err := n.FrameLatency.MergeFrom(o.FrameLatency); err != nil {
		return err
	}
	if err := n.CtrlLatency.MergeFrom(o.CtrlLatency); err != nil {
		return err
	}
	if err := n.DigestQueue.MergeFrom(o.DigestQueue); err != nil {
		return err
	}
	n.DroppedDigests.Add(o.DroppedDigests.Value())
	n.UnroutedFrames.Add(o.UnroutedFrames.Value())
	return nil
}

// ShardedPipeline bundles the recorders for a sharded switch→controller
// pipeline: one switch observer per shard (each single-writer on its shard's
// goroutine), a persistent merged fleet view, plus the shared node, queue
// and phase recorders of the chassis. It is what the cmds wire up behind
// -metrics -shards=N.
//
// The merged histograms are rebuilt by Refresh, not kept live — merging is
// a read-side aggregate (the controller-pull arrow), so call Refresh once
// the shards have quiesced, before rendering the registry. Merged counters
// need no refresh: they are registered as lazy sums over the shards.
type ShardedPipeline struct {
	// Shards holds one observer per shard; attach Shards[i] to shard i.
	Shards []*SwitchMetrics
	// Merged is the fleet-wide switch view, valid after Refresh.
	Merged *SwitchMetrics
	Node   *NodeMetrics
	Queue  *Hist
	Phases *Timeline
	// Ingest, when set before Register, adds the ingest plane's ring and
	// slab series to the fleet totals.
	Ingest *IngestMetrics
}

// IngestMetrics exposes an ingest plane (the stat4d ring between the stream
// readers and the sharded datapath) as lazy readers, so the daemon registers
// live occupancy gauges and shed totals without this package importing the
// ring implementation. Depth-style readers render as gauges — they go down
// as well as up — and shed totals as counters. Nil readers render as zero.
type IngestMetrics struct {
	// RingDepth reads the batch descriptors currently queued; RingCap the
	// ring's capacity — together the backpressure headroom.
	RingDepth func() uint64
	RingCap   func() uint64
	// BlocksInUse reads the slab blocks currently owned by in-flight batches.
	BlocksInUse func() uint64
	// ShedBatches/ShedFrames total the work producers dropped against a full
	// ring or an exhausted slab — the Lean-Algorithms posture: shed at the
	// edge, count what was shed, never block the datapath.
	ShedBatches func() uint64
	ShedFrames  func() uint64
}

// orZero guards a lazy reader that may be left nil.
func orZero(fn func() uint64) func() uint64 {
	if fn == nil {
		return func() uint64 { return 0 }
	}
	return fn
}

// NewShardedPipeline returns a bundle for n shards.
func NewShardedPipeline(n int) *ShardedPipeline {
	sp := &ShardedPipeline{
		Merged: NewSwitchMetrics(0),
		Node:   NewNodeMetrics(),
		Queue:  NewHist(),
		Phases: NewTimeline(64),
	}
	for i := 0; i < n; i++ {
		sp.Shards = append(sp.Shards, NewSwitchMetrics(0))
	}
	return sp
}

// Refresh rebuilds the merged fleet view from the shards' current state.
// Call it after processing stops (or between quiesced intervals), before
// rendering a registry the bundle is registered on.
func (sp *ShardedPipeline) Refresh() {
	sp.Merged.Cost.Reset()
	sp.Merged.DigestWait.Reset()
	sp.Merged.emitted, sp.Merged.dropped, sp.Merged.delivered = 0, 0, 0
	for _, s := range sp.Shards {
		// Shapes are package-constructed, so merging cannot fail.
		_ = sp.Merged.MergeFrom(s)
	}
}

// shardSum returns a lazy fleet-total counter reader.
func (sp *ShardedPipeline) shardSum(read func(*SwitchMetrics) uint64) func() uint64 {
	return func() uint64 {
		var total uint64
		for _, s := range sp.Shards {
			total += read(s)
		}
		return total
	}
}

// Register adds the merged fleet view under the standard pipeline names and
// each shard's observer under a shardN_ prefix, so one snapshot shows both
// the chassis totals and the per-shard split. Merged histograms render
// whatever the last Refresh built; counters render live sums.
func (sp *ShardedPipeline) Register(reg *Registry) {
	reg.RegisterHist("packet_cost_ns", "per-packet processing cost, all shards", sp.Merged.Cost)
	reg.RegisterHist("digest_wait_ns", "digest emit-to-drain wall-clock wait, all shards", sp.Merged.DigestWait)
	reg.RegisterCounter("digests_emitted", "digests accepted by the channels, all shards",
		sp.shardSum((*SwitchMetrics).Emitted))
	reg.RegisterCounter("digests_dropped", "digests lost to full channels, all shards",
		sp.shardSum((*SwitchMetrics).Dropped))
	reg.RegisterCounter("digests_delivered", "digests drained by consumers, all shards",
		sp.shardSum((*SwitchMetrics).Delivered))
	reg.RegisterHist("frame_latency_ns", "inject-to-deliver virtual latency", sp.Node.FrameLatency)
	reg.RegisterHist("ctrl_latency_ns", "digest control-channel virtual latency", sp.Node.CtrlLatency)
	reg.RegisterHist("digest_queue_depth", "digest channel occupancy at drain", sp.Node.DigestQueue)
	reg.RegisterCounter("node_dropped_digests", "digests drained with no handler attached", sp.Node.DroppedDigests.Value)
	reg.RegisterCounter("node_unrouted_frames", "frames emitted on unconnected ports", sp.Node.UnroutedFrames.Value)
	reg.RegisterHist("event_queue_depth", "simulator event-queue depth per event", sp.Queue)
	reg.RegisterTimeline("controller_phase", "drill-down phase transitions", sp.Phases)
	if sp.Ingest != nil {
		reg.RegisterGauge("ingest_ring_depth", "batch descriptors queued in the ingest ring", orZero(sp.Ingest.RingDepth))
		reg.RegisterGauge("ingest_ring_capacity", "ingest ring descriptor capacity", orZero(sp.Ingest.RingCap))
		reg.RegisterGauge("ingest_blocks_in_use", "frame slab blocks owned by in-flight batches", orZero(sp.Ingest.BlocksInUse))
		reg.RegisterCounter("ingest_shed_batches", "batches shed against a full ingest ring", orZero(sp.Ingest.ShedBatches))
		reg.RegisterCounter("ingest_shed_frames", "frames lost with shed batches", orZero(sp.Ingest.ShedFrames))
	}
	for i, s := range sp.Shards {
		prefix := fmt.Sprintf("shard%d_", i)
		reg.RegisterHist(prefix+"packet_cost_ns", fmt.Sprintf("shard %d per-packet processing cost", i), s.Cost)
		reg.RegisterCounter(prefix+"digests_emitted", fmt.Sprintf("shard %d digests accepted by the channel", i), s.Emitted)
		reg.RegisterCounter(prefix+"digests_dropped", fmt.Sprintf("shard %d digests lost to a full channel", i), s.Dropped)
	}
}
