package telemetry

import (
	"stat4/internal/core"
	"stat4/internal/intstat"
)

// HistFracBits is the sub-octave resolution of a Hist: each power-of-two
// bucket is split into 2^HistFracBits linear sub-buckets, the fixed-point
// fraction width handed to intstat.Log2Fixed.
const HistFracBits = 2

// HistBuckets is the counter-array size of a Hist: 64 possible exponents ×
// 2^HistFracBits sub-buckets covers every uint64 sample, so Observe can never
// fall outside the domain (the STAT_COUNTER_SIZE sizing rule of the paper,
// applied to the repo's own metrics).
const HistBuckets = 64 << HistFracBits

// Hist tracks one distribution of non-negative integer samples (nanoseconds,
// queue depths) by dogfooding Stat4: samples are mapped to log2 fixed-point
// buckets with intstat.Log2Fixed, the buckets feed a core.FreqDist whose
// Figure 3 percentile markers track P50 and P99 online, and a core.Moments in
// sample mode accumulates the scaled moments of the log-domain values with
// the lazy standard deviation of Section 3. Everything on the recording path
// is integer-only and allocation-free after construction.
//
// Exact count, sum, min and max of the raw samples are kept alongside, so
// snapshots can report a precise mean without the recording path ever
// dividing.
type Hist struct {
	dist     *core.FreqDist
	p50, p99 *core.Percentile
	logm     core.Moments

	count uint64
	sum   uint64
	min   uint64
	max   uint64
}

// NewHist returns an empty histogram with P50 and P99 markers registered.
func NewHist() *Hist {
	d := core.NewFreqDist(HistBuckets)
	return &Hist{
		dist: d,
		p50:  d.TrackPercentile(1, 1),
		p99:  d.TrackPercentile(99, 1),
		min:  ^uint64(0),
	}
}

// Observe records one sample. The bucket index is the sample's log2 in
// HistFracBits fixed point, which by construction lies in [0, HistBuckets),
// so the FreqDist error path is unreachable and recording never allocates.
//
//stat4:datapath
func (h *Hist) Observe(v uint64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	b := intstat.Log2Fixed(v, HistFracBits)
	_ = h.dist.Observe(b)
	h.logm.AddSample(b)
}

// Count returns the number of recorded samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the exact sum of the raw samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Min returns the smallest recorded sample, or 0 before any sample.
func (h *Hist) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample.
func (h *Hist) Max() uint64 { return h.max }

// P50 returns the online median estimate in raw-sample units: the marker's
// bucket mapped back to the bucket's lower bound. Like the markers it is
// built on, it can lag a burst by one bucket per sample (Figure 3).
func (h *Hist) P50() uint64 { return BucketLow(h.p50.Value()) }

// P99 returns the online 99th-percentile estimate in raw-sample units.
func (h *Hist) P99() uint64 { return BucketLow(h.p99.Value()) }

// P50Moves and P99Moves return the markers' total single-slot movements —
// the percentile change rates the paper points at as an anomaly signal,
// here doubling as a measure of how (un)stable the tracked latency is.
func (h *Hist) P50Moves() uint64 { return h.p50.Moves() }

// P99Moves returns the 99th-percentile marker's movement count.
func (h *Hist) P99Moves() uint64 { return h.p99.Moves() }

// LogMoments returns the scaled moments of the log2 fixed-point bucket
// values (sample mode: N = samples, Xsum = Σ log2(x)·2^HistFracBits). Their
// lazy standard deviation measures the distribution's spread in octaves;
// Moments().SDRecomputes counts how often the Figure 2 square root actually
// ran, making the lazy-σ design observable in the snapshot itself.
func (h *Hist) LogMoments() *core.Moments { return &h.logm }

// Dist exposes the underlying frequency distribution (read-only for
// callers), mainly for tests that cross-check the marker arithmetic.
func (h *Hist) Dist() *core.FreqDist { return h.dist }

// Reset clears the histogram, its markers and moments.
func (h *Hist) Reset() {
	h.dist.Reset()
	h.logm.Reset()
	h.count, h.sum, h.max = 0, 0, 0
	h.min = ^uint64(0)
}

// BucketLow inverts the Log2Fixed bucket mapping to the smallest raw value
// that lands in bucket b (bucket 0 holds both 0 and 1; 0 is returned). It is
// integer-only like the rest of the package but runs on the snapshot path,
// outside the per-packet closure.
func BucketLow(b uint64) uint64 {
	e := b >> HistFracBits
	m := b & (1<<HistFracBits - 1)
	switch {
	case b == 0:
		return 0
	case e < HistFracBits:
		// Small exponents carry the mantissa left-shifted into the fraction.
		return 1<<e | m>>(HistFracBits-e)
	default:
		return (1<<HistFracBits | m) << (e - HistFracBits)
	}
}

// MergeFrom folds another histogram into this one, as if every sample o
// recorded had been recorded here: counts, sums and extrema combine
// exactly, the bucket distributions merge cell-wise (core.FreqDist.MergeFrom
// re-derives the P50/P99 markers from the combined counters), marker
// movement counts sum as total marker work across replicas, and the
// log-domain moments merge additively. The shapes always match — every Hist
// has HistBuckets cells — so the only error source is a foreign dist, which
// cannot be constructed through this package.
//
// It is the aggregation path for per-shard metrics: each shard records into
// its own Hist single-writer, and a merged view is built after processing
// stops (or from quiesced snapshots).
func (h *Hist) MergeFrom(o *Hist) error {
	if err := h.dist.MergeFrom(o.dist); err != nil {
		return err
	}
	h.p50.AddMoves(o.p50.Moves())
	h.p99.AddMoves(o.p99.Moves())
	h.logm.MergeFrom(&o.logm)
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	return nil
}
