package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistryWritePromValidates(t *testing.T) {
	reg := NewRegistry("stat4_x")
	h := NewHist()
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i * 10)
	}
	reg.RegisterHist("lat_ns", "a latency", h)
	var c Counter
	c.Add(7)
	reg.RegisterCounter("events", "an event count", c.Value)
	tl := NewTimeline(4)
	tl.Record(100, 1)
	tl.Record(200, 3)
	reg.RegisterTimeline("phase", "phase transitions", tl)

	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	n, err := ValidateExposition(out)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, out)
	}
	// 10 hist series (2 quantiles, sum, count, min, max, 2 marker-move
	// rates, log sd, sd recomputes) + 1 counter + 2 timeline entries.
	if n != 13 {
		t.Fatalf("sample count = %d, want 13:\n%s", n, out)
	}
	for _, want := range []string{
		"# TYPE stat4_x_lat_ns summary",
		"stat4_x_lat_ns{quantile=\"0.99\"}",
		"stat4_x_lat_ns_count 100",
		"stat4_x_lat_ns_sum 50500",
		"# TYPE stat4_x_events counter",
		"stat4_x_events 7",
		"stat4_x_phase{seq=\"1\",code=\"3\"} 200",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	reg := NewRegistry("stat4_x")
	h := NewHist()
	h.Observe(8)
	h.Observe(16)
	reg.RegisterHist("lat_ns", "a latency", h)
	var c Counter
	c.Inc()
	reg.RegisterCounter("events", "an event count", c.Value)

	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("snapshot does not round-trip: %v", err)
	}
	if s.Prefix != "stat4_x" || len(s.Hists) != 1 || len(s.Counters) != 1 {
		t.Fatalf("snapshot shape wrong: %+v", s)
	}
	hs := s.Hists[0]
	if hs.Name != "lat_ns" || hs.Count != 2 || hs.Sum != 24 || hs.Min != 8 || hs.Max != 16 {
		t.Fatalf("hist snapshot wrong: %+v", hs)
	}
	if s.Counters[0].Value != 1 {
		t.Fatalf("counter snapshot wrong: %+v", s.Counters[0])
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"", "1abc", "has-dash", "has space", "quo\"te"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewRegistry(%q) did not panic", bad)
				}
			}()
			NewRegistry(bad)
		}()
	}
	reg := NewRegistry("ok")
	defer func() {
		if recover() == nil {
			t.Error("RegisterCounter with bad name did not panic")
		}
	}()
	reg.RegisterCounter("bad-name", "", func() uint64 { return 0 })
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"float sample":      "foo 1.5\n",
		"negative sample":   "foo -1\n",
		"bad name":          "1foo 2\n",
		"unterminated":      "foo{a=\"b\" 2\n",
		"malformed label":   "foo{a=b} 2\n",
		"missing value":     "foo\n",
		"empty exposition":  "\n\n",
		"comment-only data": "# HELP x y\n",
	}
	for what, data := range cases {
		if _, err := ValidateExposition(data); err == nil {
			t.Errorf("ValidateExposition accepted %s: %q", what, data)
		}
	}
	if n, err := ValidateExposition("# HELP foo help\n# TYPE foo counter\nfoo 3\nbar{x=\"1\",y=\"2\"} 4\n"); err != nil || n != 2 {
		t.Fatalf("valid exposition rejected: n=%d err=%v", n, err)
	}
}
