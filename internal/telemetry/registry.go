package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Registry maps names to recorders and renders them two ways: a
// Prometheus-style text exposition (WriteProm) and a JSON snapshot
// (Snapshot/WriteJSON). Registration order is preserved so output is
// deterministic. Every exposed value is an integer — the registry refuses
// nothing at render time because the recorders cannot hold anything else.
type Registry struct {
	prefix    string
	hists     []histEntry
	counters  []counterEntry
	gauges    []gaugeEntry
	timelines []timelineEntry
}

type histEntry struct {
	name, help string
	h          *Hist
}

type counterEntry struct {
	name, help string
	fn         func() uint64
}

type gaugeEntry struct {
	name, help string
	fn         func() uint64
}

type timelineEntry struct {
	name, help string
	t          *Timeline
}

// NewRegistry returns an empty registry. Series are named prefix_name;
// prefix and every registered name must match Prometheus metric-name rules
// ([a-zA-Z_][a-zA-Z0-9_]*).
func NewRegistry(prefix string) *Registry {
	mustValidName(prefix)
	return &Registry{prefix: prefix}
}

func mustValidName(name string) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// RegisterHist adds a histogram under prefix_name.
func (r *Registry) RegisterHist(name, help string, h *Hist) {
	mustValidName(name)
	r.hists = append(r.hists, histEntry{name: name, help: help, h: h})
}

// RegisterCounter adds a counter read through fn at render time, so switch
// Stats() fields and accessors register directly.
func (r *Registry) RegisterCounter(name, help string, fn func() uint64) {
	mustValidName(name)
	r.counters = append(r.counters, counterEntry{name: name, help: help, fn: fn})
}

// RegisterGauge adds a gauge read through fn at render time. Gauges are for
// instantaneous occupancy-style values (ring depth, slab blocks in use) that
// go down as well as up, which is the only difference from RegisterCounter —
// the exposition marks them TYPE gauge so scrapers do not rate() them.
func (r *Registry) RegisterGauge(name, help string, fn func() uint64) {
	mustValidName(name)
	r.gauges = append(r.gauges, gaugeEntry{name: name, help: help, fn: fn})
}

// RegisterTimeline adds a timeline under prefix_name.
func (r *Registry) RegisterTimeline(name, help string, t *Timeline) {
	mustValidName(name)
	r.timelines = append(r.timelines, timelineEntry{name: name, help: help, t: t})
}

// HistSnapshot is one histogram's rendered state. P50/P99 come from the
// Figure 3 percentile markers; LogSD is the lazy standard deviation of the
// scaled log-domain moments and SDRecomputes how often its square root
// actually ran.
type HistSnapshot struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Min   uint64 `json:"min"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P99   uint64 `json:"p99"`
	// P50Moves/P99Moves are the markers' single-slot movement counts (the
	// percentile change rate the paper tracks as a signal).
	P50Moves uint64 `json:"p50_moves"`
	P99Moves uint64 `json:"p99_moves"`
	// LogSum is Xsum of the log2 fixed-point samples (HistFracBits fraction
	// bits); LogSD the standard deviation of the scaled log-domain
	// distribution N·X.
	LogSum       uint64 `json:"log_sum"`
	LogSD        uint64 `json:"log_sd"`
	SDRecomputes uint64 `json:"sd_recomputes"`
}

func snapshotHist(name string, h *Hist) HistSnapshot {
	m := h.LogMoments()
	return HistSnapshot{
		Name:  name,
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
		P50: h.P50(), P99: h.P99(),
		P50Moves: h.P50Moves(), P99Moves: h.P99Moves(),
		LogSum: m.Sum, LogSD: m.StdDev(), SDRecomputes: m.SDRecomputes,
	}
}

// CounterSnapshot is one counter's rendered state.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// TimelineSnapshot is one timeline's rendered state.
type TimelineSnapshot struct {
	Name    string          `json:"name"`
	Entries []TimelineEntry `json:"entries"`
	Dropped uint64          `json:"dropped"`
}

// Snapshot is the JSON dump of a registry.
type Snapshot struct {
	Prefix    string             `json:"prefix"`
	Hists     []HistSnapshot     `json:"hists"`
	Counters  []CounterSnapshot  `json:"counters"`
	Gauges    []CounterSnapshot  `json:"gauges,omitempty"`
	Timelines []TimelineSnapshot `json:"timelines,omitempty"`
}

// Snapshot renders every registered recorder.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Prefix: r.prefix}
	for _, e := range r.hists {
		s.Hists = append(s.Hists, snapshotHist(e.name, e.h))
	}
	for _, e := range r.counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: e.name, Value: e.fn()})
	}
	for _, e := range r.gauges {
		s.Gauges = append(s.Gauges, CounterSnapshot{Name: e.name, Value: e.fn()})
	}
	for _, e := range r.timelines {
		s.Timelines = append(s.Timelines, TimelineSnapshot{
			Name: e.name, Entries: e.t.Entries(), Dropped: e.t.Dropped(),
		})
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	blob, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	_, err = w.Write(blob)
	return err
}

// WriteProm writes a Prometheus-style text exposition. Histograms render as
// summaries (quantile-labelled series from the percentile markers plus
// _sum/_count/_min/_max and the marker change rates), counters as counters,
// gauges as gauges, timelines as one labelled sample per transition.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, e := range r.hists {
		full := r.prefix + "_" + e.name
		s := snapshotHist(e.name, e.h)
		if _, err := fmt.Fprintf(w,
			"# HELP %s %s\n# TYPE %s summary\n%s{quantile=\"0.5\"} %d\n%s{quantile=\"0.99\"} %d\n%s_sum %d\n%s_count %d\n%s_min %d\n%s_max %d\n%s_marker_moves{quantile=\"0.5\"} %d\n%s_marker_moves{quantile=\"0.99\"} %d\n%s_log_sd %d\n%s_sd_recomputes %d\n",
			full, e.help, full,
			full, s.P50, full, s.P99,
			full, s.Sum, full, s.Count, full, s.Min, full, s.Max,
			full, s.P50Moves, full, s.P99Moves,
			full, s.LogSD, full, s.SDRecomputes); err != nil {
			return err
		}
	}
	for _, e := range r.counters {
		full := r.prefix + "_" + e.name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			full, e.help, full, full, e.fn()); err != nil {
			return err
		}
	}
	for _, e := range r.gauges {
		full := r.prefix + "_" + e.name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			full, e.help, full, full, e.fn()); err != nil {
			return err
		}
	}
	for _, e := range r.timelines {
		full := r.prefix + "_" + e.name
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", full, e.help, full); err != nil {
			return err
		}
		for i, en := range e.t.Entries() {
			if _, err := fmt.Fprintf(w, "%s{seq=\"%d\",code=\"%d\"} %d\n",
				full, i, en.Code, en.AtNs); err != nil {
				return err
			}
		}
	}
	return nil
}

// ValidateExposition checks that data is a well-formed integer-only
// exposition as WriteProm emits it: comment lines start with "# ", every
// other non-empty line is `name[{label="value",...}] integer-value` with a
// valid metric name. It returns the number of samples on success. The
// metrics-smoke gate runs a replay with -metrics through this.
func ValidateExposition(data string) (int, error) {
	samples := 0
	for ln, line := range strings.Split(data, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			continue
		}
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return samples, fmt.Errorf("line %d: unterminated label set: %q", ln+1, line)
			}
			for _, lbl := range strings.Split(line[i+1:j], ",") {
				k, v, ok := strings.Cut(lbl, "=")
				if !ok || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return samples, fmt.Errorf("line %d: malformed label %q", ln+1, lbl)
				}
			}
			name = line[:i]
			line = name + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return samples, fmt.Errorf("line %d: want `name value`, got %q", ln+1, line)
		}
		if !validName(fields[0]) {
			return samples, fmt.Errorf("line %d: invalid metric name %q", ln+1, fields[0])
		}
		if _, err := strconv.ParseUint(fields[1], 10, 64); err != nil {
			return samples, fmt.Errorf("line %d: non-integer sample %q (the telemetry layer is integer-only)", ln+1, fields[1])
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples in exposition")
	}
	return samples, nil
}
