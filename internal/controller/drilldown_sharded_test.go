package controller

import (
	"testing"

	"stat4/internal/netem"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// TestDrillDownShardedTimeline replays a spike scenario through a 4-shard
// data plane and drives the drill-down controller off the merged digest
// stream — the cross-layer path the Runtime interface exists for: the same
// state machine that runs the single-switch case study retunes a sharded
// switch, with every bind fanned to all shards. The telemetry timeline must
// record the full phase progression in order, and the drill-down must name
// the spiked destination.
func TestDrillDownShardedTimeline(t *testing.T) {
	const (
		shift     = 25 // ~33.5 ms intervals
		window    = 50
		ctrlDelay = 5e6
		shards    = 4
	)
	intervalNs := uint64(1) << shift
	fill := uint64(window+5) * intervalNs
	onset := fill + 2*intervalNs
	duration := onset + 70*intervalNs

	lib := stat4p4.Build(stat4p4.Options{Slots: 2, Size: 256, Stages: 2})
	sr, err := stat4p4.NewShardedRuntime(lib, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	slash8 := packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8)
	// Per-shard statistics run on a quarter of the traffic, so both checks
	// need shard-aware tuning. The rate window monitors at k=4: each shard
	// windows only its own flows' intervals, and at these thinner counts
	// benign jitter reaches past 2–3σ (the 5× spike still clears 4σ by an
	// order of magnitude). The drill-down runs at k=1: flow-hash sharding
	// lands the whole spike flow on one shard whose per-/24 population
	// holds only the subnets its flows cover, and with N populated cells
	// the σ-band N·f > Xsum + k·σ is unsatisfiable for a single dominant
	// cell unless k < √(N−1).
	if _, err := sr.BindWindow(0, 0, stat4p4.DstIn(slash8), shift, window, 4); err != nil {
		t.Fatal(err)
	}

	sim := netem.NewSim()
	node := netem.NewShardedSwitchNode(sim, sr.Sharded(), ctrlDelay)
	timeline := telemetry.NewTimeline(16)
	dd := NewDrillDown(Config{
		RT:            sr,
		Sched:         sim,
		CtrlDelay:     ctrlDelay,
		Monitored:     slash8,
		WindowSlot:    0,
		DrillStage:    1,
		DrillSlot:     1,
		SubnetBits:    24,
		SubnetDomain:  256,
		K:             1,
		Warmup:        20 * intervalNs,
		MonitorWarmup: fill,
		Mitigate:      true,
		Timeline:      timeline,
	})
	node.OnDigest = dd.HandleDigest

	dests := traffic.CaseStudyDests()
	target := packet.ParseIP4(10, 0, 3, 4)
	baseRate := 200 * 1e9 / float64(intervalNs)
	load := &traffic.LoadBalanced{Dests: dests, Rate: baseRate, End: duration, Seed: 11, Jitter: 0.5}
	spike := &traffic.Spike{Dest: target, Rate: 4 * baseRate, Start: onset, End: duration, Seed: 12, Jitter: 0.5}
	node.InjectStream(traffic.Merge(load, spike), 1)
	sim.Run()

	if dd.Phase() != PhaseDone {
		t.Fatalf("drill-down stalled in phase %v; log:\n%v", dd.Phase(), dd.Log)
	}
	r := dd.Result()
	if !r.Subnet.Contains(target) {
		t.Errorf("identified subnet %s does not contain the spiked destination %v", r.Subnet, target)
	}
	if r.Host != target {
		t.Errorf("identified host %v, spiked destination %v", r.Host, target)
	}
	if r.MitigatedAt == 0 || r.MitigatedAt < r.HostAt {
		t.Errorf("mitigation timestamp %d inconsistent with host identification at %d", r.MitigatedAt, r.HostAt)
	}

	// The timeline is the integer twin of the log: one entry per phase
	// entered plus the mitigation marker, strictly ordered in virtual time.
	wantCodes := []uint64{
		uint64(PhaseLocateSubnet),
		uint64(PhaseLocateHost),
		uint64(PhaseDone),
		TimelineMitigated,
	}
	entries := timeline.Entries()
	if len(entries) != len(wantCodes) {
		t.Fatalf("timeline has %d entries, want %d: %+v", len(entries), len(wantCodes), entries)
	}
	for i, e := range entries {
		if e.Code != wantCodes[i] {
			t.Errorf("timeline[%d] code %d, want %d", i, e.Code, wantCodes[i])
		}
		if i > 0 && e.AtNs < entries[i-1].AtNs {
			t.Errorf("timeline[%d] at %d precedes timeline[%d] at %d", i, e.AtNs, i-1, entries[i-1].AtNs)
		}
	}
	if first := entries[0].AtNs; first < onset {
		t.Errorf("detection at %d precedes spike onset %d", first, onset)
	}
	if timeline.Dropped() != 0 {
		t.Errorf("timeline dropped %d entries", timeline.Dropped())
	}
}
