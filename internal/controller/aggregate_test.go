package controller

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"stat4/internal/core"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
)

// TestMergeSharedEqualsSingleSwitch splits one traffic stream across two
// switches tracking the same per-destination distribution; the merged
// counters and moments must equal a third switch that saw everything.
func TestMergeSharedEqualsSingleSwitch(t *testing.T) {
	mk := func() *stat4p4.Runtime {
		rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1}))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, 0, 64, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b, all := mk(), mk(), mk()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		f := packet.NewUDPFrame(1, packet.IP4(rng.Intn(64)), 5, 80, 10)
		if rng.Intn(2) == 0 {
			a.Switch().ProcessPacket(uint64(i), 1, f)
		} else {
			b.Switch().ProcessPacket(uint64(i), 1, f)
		}
		all.Switch().ProcessPacket(uint64(i), 1, f)
	}

	merged, m, err := PullShared(0, 64, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := all.ReadCounters(0, 64)
	for v := range want {
		if merged[v] != want[v] {
			t.Fatalf("merged[%d] = %d, single switch %d", v, merged[v], want[v])
		}
	}
	wm, _ := all.ReadMoments(0)
	if m.N != wm.N || m.Sum != wm.Xsum || m.Sumsq != wm.Xsumsq {
		t.Fatalf("merged moments (%d,%d,%d), single switch (%d,%d,%d)",
			m.N, m.Sum, m.Sumsq, wm.N, wm.Xsum, wm.Xsumsq)
	}
	// Derived measures work on the merged result.
	if m.Variance() == 0 && m.N > 1 {
		t.Log("note: zero variance on random counters is unlikely")
	}
}

// TestMergeDisjointEqualsConcatenation: moments of disjoint populations add;
// the merged variance equals a from-scratch computation over the
// concatenated samples.
func TestMergeDisjointEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var refAll core.Moments
	var parts []stat4p4.Moments
	for s := 0; s < 3; s++ {
		var ref core.Moments
		for i := 0; i < 100; i++ {
			x := uint64(rng.Intn(1000))
			ref.AddSample(x)
			refAll.AddSample(x)
		}
		parts = append(parts, stat4p4.Moments{N: ref.N, Xsum: ref.Sum, Xsumsq: ref.Sumsq})
	}
	merged := MergeDisjoint(parts...)
	if merged.N != refAll.N || merged.Sum != refAll.Sum || merged.Sumsq != refAll.Sumsq {
		t.Fatalf("merged (%d,%d,%d), want (%d,%d,%d)",
			merged.N, merged.Sum, merged.Sumsq, refAll.N, refAll.Sum, refAll.Sumsq)
	}
	if merged.Variance() != refAll.Variance() || merged.StdDev() != refAll.StdDev() {
		t.Fatal("derived measures diverge after disjoint merge")
	}
}

// TestMergeSharedIsNotMomentAddition documents why shared populations need
// counter merging: adding the moments directly gives the wrong Xsumsq.
func TestMergeSharedIsNotMomentAddition(t *testing.T) {
	// Switch A and B both see value 0 twice.
	a := []uint64{2, 0}
	b := []uint64{2, 0}
	_, m, err := MergeShared(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Sumsq != 16 { // (2+2)²
		t.Fatalf("merged Xsumsq = %d, want 16", m.Sumsq)
	}
	naive := MergeDisjoint(
		stat4p4.Moments{N: 1, Xsum: 2, Xsumsq: 4},
		stat4p4.Moments{N: 1, Xsum: 2, Xsumsq: 4},
	)
	if naive.Sumsq == m.Sumsq {
		t.Fatal("moment addition accidentally matched counter merging; test is vacuous")
	}
}

func TestMergeSharedShapeErrors(t *testing.T) {
	if _, _, err := MergeShared(); !errors.Is(err, ErrShape) {
		t.Fatalf("empty merge: %v", err)
	}
	if _, _, err := MergeShared([]uint64{1}, []uint64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("mismatched merge: %v", err)
	}
}

// TestAggregatorDedupsDuplicateReports is the retransmission regression: the
// same (switch, epoch) report delivered twice must be folded in exactly once.
func TestAggregatorDedupsDuplicateReports(t *testing.T) {
	a := NewAggregator(4)
	r := Report{Switch: "s1", Epoch: 1, Counters: []uint64{1, 2, 0, 3}}
	if ok, err := a.Add(r); err != nil || !ok {
		t.Fatalf("first add: ok=%v err=%v", ok, err)
	}
	if ok, err := a.Add(r); err != nil || ok {
		t.Fatalf("duplicate add: ok=%v err=%v, want rejected", ok, err)
	}
	if a.Accepted() != 1 || a.Duplicates() != 1 {
		t.Fatalf("accepted=%d dupes=%d", a.Accepted(), a.Duplicates())
	}
	merged, m := a.Merged()
	want := []uint64{1, 2, 0, 3}
	for i := range want {
		if merged[i] != want[i] {
			t.Fatalf("merged = %v, want %v", merged, want)
		}
	}
	if m.N != 3 || m.Sum != 6 || m.Sumsq != 1+4+9 {
		t.Fatalf("moments = %+v", m)
	}

	// Same switch, new epoch: accepted. Different switch, same epoch: accepted.
	if ok, _ := a.Add(Report{Switch: "s1", Epoch: 2, Counters: []uint64{1, 0, 0, 0}}); !ok {
		t.Fatal("new epoch rejected")
	}
	if ok, _ := a.Add(Report{Switch: "s2", Epoch: 1, Counters: []uint64{0, 1, 0, 0}}); !ok {
		t.Fatal("other switch rejected")
	}
}

// TestAggregatorOrderIndependent is the out-of-order regression: any arrival
// permutation of the same report set — epochs interleaved across switches,
// duplicates sprinkled in — yields identical merged state.
func TestAggregatorOrderIndependent(t *testing.T) {
	reports := []Report{
		{Switch: "a", Epoch: 3, Counters: []uint64{5, 0, 1}},
		{Switch: "b", Epoch: 1, Counters: []uint64{0, 2, 2}},
		{Switch: "a", Epoch: 1, Counters: []uint64{1, 1, 0}},
		{Switch: "b", Epoch: 3, Counters: []uint64{2, 0, 7}},
		{Switch: "a", Epoch: 2, Counters: []uint64{0, 0, 4}},
	}
	run := func(order []int, withDupes bool) ([]uint64, core.Moments) {
		t.Helper()
		a := NewAggregator(3)
		for _, i := range order {
			if _, err := a.Add(reports[i]); err != nil {
				t.Fatal(err)
			}
			if withDupes {
				if ok, _ := a.Add(reports[i]); ok {
					t.Fatal("duplicate accepted")
				}
			}
		}
		merged, m := a.Merged()
		return merged, m
	}
	wantCells, wantM := run([]int{0, 1, 2, 3, 4}, false)
	for _, order := range [][]int{{4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}} {
		for _, withDupes := range []bool{false, true} {
			cells, m := run(order, withDupes)
			if !reflect.DeepEqual(cells, wantCells) || m != wantM {
				t.Fatalf("order %v dupes=%v: merged %v %+v, want %v %+v",
					order, withDupes, cells, m, wantCells, wantM)
			}
		}
	}
}

// TestAggregatorRejectsBadShape covers the shape guard.
func TestAggregatorRejectsBadShape(t *testing.T) {
	a := NewAggregator(3)
	if _, err := a.Add(Report{Switch: "s", Epoch: 1, Counters: []uint64{1}}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
	if a.Accepted() != 0 {
		t.Fatal("bad-shape report counted as accepted")
	}
}
