package controller

import (
	"testing"

	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
)

func digest(slot, value, ts uint64) p4.Digest {
	return p4.Digest{ID: stat4p4.DigestAnomaly, Values: []uint64{slot, value, 0, 0, ts}}
}

func newHarness(t *testing.T) (*netem.Sim, *DrillDown, *stat4p4.Runtime) {
	t.Helper()
	lib := stat4p4.Build(stat4p4.Options{Slots: 2, Size: 256, Stages: 2})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	sim := netem.NewSim()
	dd := NewDrillDown(Config{
		RT:            rt,
		Sched:         sim,
		CtrlDelay:     1000,
		Monitored:     packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8),
		WindowSlot:    0,
		DrillStage:    1,
		DrillSlot:     1,
		SubnetBits:    24,
		SubnetDomain:  256,
		K:             2,
		Warmup:        100,
		MonitorWarmup: 500,
	})
	return sim, dd, rt
}

func TestDrillDownStateMachine(t *testing.T) {
	sim, dd, rt := newHarness(t)

	// A window alert before the monitor warmup is ignored.
	dd.HandleDigest(0, digest(0, 999, 100))
	if dd.Phase() != PhaseMonitoring {
		t.Fatal("warmup alert advanced the phase")
	}

	// A real spike alert advances to subnet location and, after the
	// control delay, installs the per-/24 binding.
	sim.At(2000, func() { dd.HandleDigest(2000, digest(0, 999, 1900)) })
	sim.Run()
	if dd.Phase() != PhaseLocateSubnet {
		t.Fatalf("phase = %v after spike alert", dd.Phase())
	}
	if n, _ := rt.Switch().EntryCount("bind1"); n != 1 {
		t.Fatalf("drill binding entries = %d", n)
	}
	r := dd.Result()
	if r.DetectedSwitchTs != 1900 || r.DetectedAt != 2000 {
		t.Fatalf("detection times %+v", r)
	}

	// Imbalance alert with a pre-binding switch timestamp is stale —
	// ignored even though it arrives after the binding.
	bindEffective := uint64(3000) // 2000 + CtrlDelay
	sim.At(4000, func() { dd.HandleDigest(4000, digest(1, 3, bindEffective-10)) })
	sim.Run()
	if dd.Phase() != PhaseLocateSubnet {
		t.Fatal("stale imbalance alert advanced the phase")
	}

	// Fresh imbalance alert names subnet index 3 → 10.0.3.0/24.
	sim.At(5000, func() { dd.HandleDigest(5000, digest(1, 3, 4500)) })
	sim.Run()
	if dd.Phase() != PhaseLocateHost {
		t.Fatalf("phase = %v after imbalance alert", dd.Phase())
	}
	if got := dd.Result().Subnet.String(); got != "10.0.3.0/24" {
		t.Fatalf("subnet = %s", got)
	}

	// Host alert names index 6 → 10.0.3.6. Must postdate the rebinding
	// (5000 + CtrlDelay + Warmup).
	sim.At(7000, func() { dd.HandleDigest(7000, digest(1, 6, 6500)) })
	sim.Run()
	if dd.Phase() != PhaseDone {
		t.Fatalf("phase = %v after host alert", dd.Phase())
	}
	if got := dd.Result().Host; got != packet.ParseIP4(10, 0, 3, 6) {
		t.Fatalf("host = %v", got)
	}
	if len(dd.Log) != 3 {
		t.Fatalf("log has %d entries: %v", len(dd.Log), dd.Log)
	}
}

func TestDrillDownIgnoresForeignDigests(t *testing.T) {
	sim, dd, _ := newHarness(t)
	dd.HandleDigest(1000, p4.Digest{ID: 99, Values: []uint64{0, 0, 0, 0, 900}})
	dd.HandleDigest(1000, digest(5, 0, 900)) // unrelated slot
	dd.HandleDigest(1000, p4.Digest{ID: stat4p4.DigestAnomaly, Values: []uint64{0}})
	sim.Run()
	if dd.Phase() != PhaseMonitoring {
		t.Fatal("foreign digest advanced the phase")
	}
}

func TestDrillDownInFlightStaleAlertAfterRebind(t *testing.T) {
	sim, dd, _ := newHarness(t)
	// Reach PhaseLocateHost.
	sim.At(2000, func() { dd.HandleDigest(2000, digest(0, 1, 1900)) })
	sim.At(5000, func() { dd.HandleDigest(5000, digest(1, 2, 4500)) })
	// A stale per-/24 alert emitted before the host rebinding (switch ts
	// 5500 < rebinding at 6000) arrives late; it must not be read as a
	// host identification.
	sim.At(8000, func() { dd.HandleDigest(8000, digest(1, 2, 5500)) })
	sim.Run()
	if dd.Phase() != PhaseLocateHost {
		t.Fatalf("stale alert advanced phase to %v (host %v)", dd.Phase(), dd.Result().Host)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseMonitoring.String() != "monitoring" || PhaseDone.String() != "done" ||
		Phase(9).String() == "" {
		t.Fatal("Phase.String wrong")
	}
}

// TestMitigation: with Mitigate set, completing the drill-down blackholes
// the identified destination after one more control-plane delay, and only
// that destination.
func TestMitigation(t *testing.T) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 2, Size: 256, Stages: 2})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddRoute(packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8), 2); err != nil {
		t.Fatal(err)
	}
	sim := netem.NewSim()
	dd := NewDrillDown(Config{
		RT: rt, Sched: sim, CtrlDelay: 1000,
		Monitored:  packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8),
		DrillStage: 1, DrillSlot: 1, SubnetBits: 24, SubnetDomain: 256,
		K: 2, Warmup: 100, MonitorWarmup: 0, Mitigate: true,
	})
	sim.At(2000, func() { dd.HandleDigest(2000, digest(0, 1, 1900)) })
	sim.At(5000, func() { dd.HandleDigest(5000, digest(1, 3, 4500)) })
	sim.At(8000, func() { dd.HandleDigest(8000, digest(1, 6, 7500)) })
	sim.Run()
	if dd.Phase() != PhaseDone {
		t.Fatalf("phase = %v", dd.Phase())
	}
	r := dd.Result()
	if r.MitigatedAt == 0 || r.MitigatedAt < r.HostAt+1000 {
		t.Fatalf("MitigatedAt = %d, want ≥ HostAt+CtrlDelay (%d)", r.MitigatedAt, r.HostAt+1000)
	}
	victim := packet.ParseIP4(10, 0, 3, 6)
	if out := rt.Switch().ProcessFrame(r.MitigatedAt+1, 1,
		packet.NewUDPFrame(1, victim, 5, 80, 10).Serialize()); out != nil {
		t.Fatal("victim traffic not blackholed")
	}
	other := packet.ParseIP4(10, 0, 3, 7)
	if out := rt.Switch().ProcessFrame(r.MitigatedAt+2, 1,
		packet.NewUDPFrame(1, other, 5, 80, 10).Serialize()); len(out) != 1 {
		t.Fatal("collateral damage: neighbour traffic dropped")
	}
	if len(dd.Log) != 4 {
		t.Fatalf("log: %v", dd.Log)
	}
}
