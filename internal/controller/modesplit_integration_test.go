package controller

import (
	"math/rand"
	"testing"

	"stat4/internal/packet"
	"stat4/internal/stat4p4"
)

// TestModeSplitEndToEnd runs the full Section 5 loop on a live switch: a
// frame-size distribution turns out bimodal, the controller pulls the
// counters once, plans the split, and rebinds two slots that then track the
// modes separately with far tighter spreads.
func TestModeSplitEndToEnd(t *testing.T) {
	rt, err := stat4p4.NewRuntime(stat4p4.Build(stat4p4.Options{Slots: 3, Size: 128, Stages: 2}))
	if err != nil {
		t.Fatal(err)
	}
	// Slot 0: frame sizes in 16-byte buckets across the full domain.
	const shift = 4
	lenBind, err := rt.BindFreqLen(0, 0, stat4p4.AllIPv4(), shift, 0, 128, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sw := rt.Switch()

	// Two traffic classes: small control packets (~96-160B) and bulk data
	// (~960-1120B).
	rng := rand.New(rand.NewSource(21))
	sizes := func() int {
		if rng.Intn(2) == 0 {
			return 96 + rng.Intn(64)
		}
		return 960 + rng.Intn(160)
	}
	send := func(n int) {
		for i := 0; i < n; i++ {
			payload := sizes() - 42 // headers
			f := packet.NewUDPFrame(1, packet.IP4(rng.Uint32()), 5, 80, payload)
			sw.ProcessPacket(uint64(i), 1, f)
		}
	}
	send(20000)

	// Controller analyses the snapshot.
	hist, err := rt.ReadCounters(0, 128)
	if err != nil {
		t.Fatal(err)
	}
	modes, ok := PlanModeSplit(hist, 0)
	if !ok {
		t.Fatal("bimodal size distribution not recognised")
	}
	joint, _ := rt.ReadMoments(0)

	// Retune: stop the joint tracking, track each mode on its own slot.
	if err := rt.Unbind(0, lenBind); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqLen(0, 1, stat4p4.AllIPv4(), shift, modes[0].Base, modes[0].Size, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.BindFreqLen(1, 2, stat4p4.AllIPv4(), shift, modes[1].Base, modes[1].Size, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	send(20000)

	lo, _ := rt.ReadMoments(1)
	hi, _ := rt.ReadMoments(2)
	if lo.Xsum == 0 || hi.Xsum == 0 {
		t.Fatalf("a mode slot saw no traffic: lo=%+v hi=%+v", lo, hi)
	}
	// Roughly half the traffic lands in each mode.
	if lo.Xsum < 8000 || hi.Xsum < 8000 {
		t.Fatalf("mode masses skewed: %d / %d", lo.Xsum, hi.Xsum)
	}
	// The whole point of splitting: each mode's scaled spread is far below
	// the joint distribution's, restoring outlier sensitivity.
	if lo.SD*4 > joint.SD || hi.SD*4 > joint.SD {
		t.Fatalf("per-mode sd (%d, %d) not well below joint sd %d", lo.SD, hi.SD, joint.SD)
	}
}
