package controller

import "math"

// This file implements the Section 5 sketch: "the controller has access to
// all the values of distributions tracked by switches … It can therefore
// learn about the distribution at runtime, and adapt the switch's anomaly
// detection approach accordingly. For example, if a distribution is bimodal,
// the controller can instruct switches to separately track and check the two
// modes."
//
// The controller pulls one counter snapshot, decides whether the histogram
// is bimodal (Otsu's criterion: does a two-class split explain most of the
// variance?), and if so plans two sub-range bindings that a Runtime can
// install on separate slots.

// ModePlan describes one mode's sub-range binding: track values in
// [Base, Base+Size) on its own distribution slot.
type ModePlan struct {
	Base uint64
	Size int
	Mass uint64 // observations inside the range in the analysed snapshot
}

// SplitThreshold computes Otsu's threshold over a histogram: the split index
// t that maximises the between-class variance of the two halves [0,t) and
// [t,len). It returns the split and the fraction of the histogram's variance
// the split explains (0..1); a fraction near 1 with balanced masses means
// clearly bimodal.
func SplitThreshold(hist []uint64) (split int, explained float64) {
	var total, weighted uint64
	for v, f := range hist {
		total += f
		weighted += uint64(v) * f
	}
	if total == 0 {
		return 0, 0
	}
	mean := float64(weighted) / float64(total)
	var variance float64
	for v, f := range hist {
		d := float64(v) - mean
		variance += d * d * float64(f)
	}
	variance /= float64(total)
	if variance == 0 {
		return 0, 0
	}

	var bestT int
	var bestBetween float64
	var wLo, sumLo uint64
	for t := 1; t < len(hist); t++ {
		wLo += hist[t-1]
		sumLo += uint64(t-1) * hist[t-1]
		wHi := total - wLo
		if wLo == 0 || wHi == 0 {
			continue
		}
		muLo := float64(sumLo) / float64(wLo)
		muHi := float64(weighted-sumLo) / float64(wHi)
		between := float64(wLo) * float64(wHi) * (muLo - muHi) * (muLo - muHi) /
			(float64(total) * float64(total))
		if between > bestBetween {
			bestBetween, bestT = between, t
		}
	}
	return bestT, bestBetween / variance
}

// IsBimodal reports whether a histogram splits into two well-separated,
// non-trivial modes: the best two-class split must explain at least
// minExplained of the variance (Otsu's criterion; 0 picks a default of 0.8)
// and both sides must hold at least 10% of the mass.
func IsBimodal(hist []uint64, minExplained float64) bool {
	if minExplained <= 0 {
		minExplained = 0.8
	}
	split, explained := SplitThreshold(hist)
	if explained < minExplained {
		return false
	}
	var lo, hi uint64
	for v, f := range hist {
		if v < split {
			lo += f
		} else {
			hi += f
		}
	}
	total := lo + hi
	if total == 0 {
		return false
	}
	return lo*10 >= total && hi*10 >= total
}

// PlanModeSplit analyses a counter snapshot whose index i counts value
// base+i, and — when the histogram is bimodal — returns the two sub-range
// plans the controller should bind to separate slots. ok is false for
// effectively unimodal histograms, in which case the single original binding
// should stay.
//
// Each plan's range is padded by 25% of the mode's width (clamped to the
// snapshot) so the follow-up distributions can see the mode drift before
// values fall outside their domain.
func PlanModeSplit(hist []uint64, base uint64) (modes [2]ModePlan, ok bool) {
	if !IsBimodal(hist, 0) {
		return modes, false
	}
	split, _ := SplitThreshold(hist)
	lo := modeBounds(hist[:split])
	hi := modeBounds(hist[split:])
	hi.lo += split
	hi.hi += split
	modes[0] = planFor(lo, base, len(hist))
	modes[1] = planFor(hi, base, len(hist))
	return modes, true
}

type bounds struct {
	lo, hi int // [lo, hi] indexes of nonzero mass
	mass   uint64
}

func modeBounds(hist []uint64) bounds {
	b := bounds{lo: -1}
	for v, f := range hist {
		if f == 0 {
			continue
		}
		if b.lo < 0 {
			b.lo = v
		}
		b.hi = v
		b.mass += f
	}
	if b.lo < 0 {
		b.lo, b.hi = 0, 0
	}
	return b
}

func planFor(b bounds, base uint64, histLen int) ModePlan {
	pad := int(math.Ceil(float64(b.hi-b.lo+1) * 0.25))
	lo := b.lo - pad
	if lo < 0 {
		lo = 0
	}
	hi := b.hi + pad
	if hi >= histLen {
		hi = histLen - 1
	}
	return ModePlan{Base: base + uint64(lo), Size: hi - lo + 1, Mass: b.mass}
}
