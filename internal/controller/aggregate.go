package controller

import (
	"errors"
	"fmt"

	"stat4/internal/core"
	"stat4/internal/stat4p4"
)

// This file implements the Section 5 direction of "performing statistical
// analyses across multiple switches": the controller combines the
// distributions maintained by several Stat4 switches into network-wide
// measures. Two cases have different mathematics:
//
//   - Disjoint populations (each switch tracks different values of interest,
//     e.g. per-rack time-series): the combined distribution is the
//     concatenation, so N, Xsum and Xsumsq — and therefore variance and the
//     outlier threshold — add directly. Only the tiny metadata registers
//     cross the network.
//
//   - Shared populations (the same value can be observed at several
//     switches, e.g. per-destination counters on redundant paths): the
//     per-value counters must be added before the moments are recomputed,
//     because Σ(f1+f2)² ≠ Σf1² + Σf2². This needs the counter arrays, i.e.
//     a sketch-style pull — the hybrid the paper's Section 5 envisions,
//     triggered only when cross-switch analysis is actually wanted.

// ErrShape is returned when merge inputs disagree on their domains.
var ErrShape = errors.New("controller: mismatched distribution shapes")

// MergeDisjoint combines moments of distributions over disjoint populations
// by concatenation.
func MergeDisjoint(ms ...stat4p4.Moments) core.Moments {
	var n, sum, sumsq uint64
	for _, m := range ms {
		n += m.N
		sum += m.Xsum
		sumsq += m.Xsumsq
	}
	return core.NewMoments(n, sum, sumsq)
}

// MergeShared combines same-domain frequency counter arrays by per-value
// addition and returns the merged counters with their recomputed moments.
func MergeShared(counterSets ...[]uint64) ([]uint64, core.Moments, error) {
	if len(counterSets) == 0 {
		return nil, core.Moments{}, fmt.Errorf("%w: no inputs", ErrShape)
	}
	size := len(counterSets[0])
	for i, cs := range counterSets {
		if len(cs) != size {
			return nil, core.Moments{}, fmt.Errorf("%w: input %d has %d cells, want %d",
				ErrShape, i, len(cs), size)
		}
	}
	merged := make([]uint64, size)
	for _, cs := range counterSets {
		for v, f := range cs {
			merged[v] += f
		}
	}
	var n, sum, sumsq uint64
	for _, f := range merged {
		if f == 0 {
			continue
		}
		n++
		sum += f
		sumsq += f * f
	}
	return merged, core.NewMoments(n, sum, sumsq), nil
}

// PullShared reads the same slot's counters from several runtimes and merges
// them — the controller-side convenience for MergeShared.
func PullShared(slot, size int, rts ...*stat4p4.Runtime) ([]uint64, core.Moments, error) {
	sets := make([][]uint64, 0, len(rts))
	for _, rt := range rts {
		cs, err := rt.ReadCounters(slot, size)
		if err != nil {
			return nil, core.Moments{}, err
		}
		sets = append(sets, cs)
	}
	return MergeShared(sets...)
}

// Report is one switch's per-epoch counter pull as it arrives at the
// aggregation point. Reports travel over a control network: they can arrive
// out of epoch order, and retransmissions can deliver the same report twice.
type Report struct {
	Switch   string
	Epoch    uint64
	Counters []uint64
}

type reportKey struct {
	sw    string
	epoch uint64
}

// Aggregator folds per-switch, per-epoch counter reports into one shared
// distribution, deduplicating by (switch, epoch): the first report for a key
// wins, retransmissions are counted and ignored. Because per-value counter
// addition is commutative and associative (the same law the sharded
// datapath's merge rests on), arrival order never affects the merged state —
// out-of-order epochs need no reordering buffer.
type Aggregator struct {
	size     int
	merged   []uint64
	seen     map[reportKey]bool
	accepted uint64
	dupes    uint64
}

// NewAggregator returns an empty aggregator over counter arrays of the given
// cell count.
func NewAggregator(size int) *Aggregator {
	return &Aggregator{
		size:   size,
		merged: make([]uint64, size),
		seen:   make(map[reportKey]bool),
	}
}

// Add folds one report in. It returns false with no state change when the
// (switch, epoch) pair was already accepted, and an error when the report's
// shape does not match the aggregator's domain.
func (a *Aggregator) Add(r Report) (bool, error) {
	if len(r.Counters) != a.size {
		return false, fmt.Errorf("%w: report from %q epoch %d has %d cells, want %d",
			ErrShape, r.Switch, r.Epoch, len(r.Counters), a.size)
	}
	k := reportKey{sw: r.Switch, epoch: r.Epoch}
	if a.seen[k] {
		a.dupes++
		return false, nil
	}
	a.seen[k] = true
	a.accepted++
	for v, f := range r.Counters {
		a.merged[v] += f
	}
	return true, nil
}

// Merged returns the combined counters and their recomputed moments —
// per-value addition first, moments second, the MergeShared order that keeps
// Σ(f1+f2)² exact.
func (a *Aggregator) Merged() ([]uint64, core.Moments) {
	out := append([]uint64(nil), a.merged...)
	var n, sum, sumsq uint64
	for _, f := range out {
		if f == 0 {
			continue
		}
		n++
		sum += f
		sumsq += f * f
	}
	return out, core.NewMoments(n, sum, sumsq)
}

// Accepted returns how many reports were folded in.
func (a *Aggregator) Accepted() uint64 { return a.accepted }

// Duplicates returns how many retransmitted reports were ignored.
func (a *Aggregator) Duplicates() uint64 { return a.dupes }
