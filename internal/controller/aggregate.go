package controller

import (
	"errors"
	"fmt"

	"stat4/internal/core"
	"stat4/internal/stat4p4"
)

// This file implements the Section 5 direction of "performing statistical
// analyses across multiple switches": the controller combines the
// distributions maintained by several Stat4 switches into network-wide
// measures. Two cases have different mathematics:
//
//   - Disjoint populations (each switch tracks different values of interest,
//     e.g. per-rack time-series): the combined distribution is the
//     concatenation, so N, Xsum and Xsumsq — and therefore variance and the
//     outlier threshold — add directly. Only the tiny metadata registers
//     cross the network.
//
//   - Shared populations (the same value can be observed at several
//     switches, e.g. per-destination counters on redundant paths): the
//     per-value counters must be added before the moments are recomputed,
//     because Σ(f1+f2)² ≠ Σf1² + Σf2². This needs the counter arrays, i.e.
//     a sketch-style pull — the hybrid the paper's Section 5 envisions,
//     triggered only when cross-switch analysis is actually wanted.

// ErrShape is returned when merge inputs disagree on their domains.
var ErrShape = errors.New("controller: mismatched distribution shapes")

// MergeDisjoint combines moments of distributions over disjoint populations
// by concatenation.
func MergeDisjoint(ms ...stat4p4.Moments) core.Moments {
	var n, sum, sumsq uint64
	for _, m := range ms {
		n += m.N
		sum += m.Xsum
		sumsq += m.Xsumsq
	}
	return core.NewMoments(n, sum, sumsq)
}

// MergeShared combines same-domain frequency counter arrays by per-value
// addition and returns the merged counters with their recomputed moments.
func MergeShared(counterSets ...[]uint64) ([]uint64, core.Moments, error) {
	if len(counterSets) == 0 {
		return nil, core.Moments{}, fmt.Errorf("%w: no inputs", ErrShape)
	}
	size := len(counterSets[0])
	for i, cs := range counterSets {
		if len(cs) != size {
			return nil, core.Moments{}, fmt.Errorf("%w: input %d has %d cells, want %d",
				ErrShape, i, len(cs), size)
		}
	}
	merged := make([]uint64, size)
	for _, cs := range counterSets {
		for v, f := range cs {
			merged[v] += f
		}
	}
	var n, sum, sumsq uint64
	for _, f := range merged {
		if f == 0 {
			continue
		}
		n++
		sum += f
		sumsq += f * f
	}
	return merged, core.NewMoments(n, sum, sumsq), nil
}

// PullShared reads the same slot's counters from several runtimes and merges
// them — the controller-side convenience for MergeShared.
func PullShared(slot, size int, rts ...*stat4p4.Runtime) ([]uint64, core.Moments, error) {
	sets := make([][]uint64, 0, len(rts))
	for _, rt := range rts {
		cs, err := rt.ReadCounters(slot, size)
		if err != nil {
			return nil, core.Moments{}, err
		}
		sets = append(sets, cs)
	}
	return MergeShared(sets...)
}
