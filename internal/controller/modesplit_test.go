package controller

import (
	"math/rand"
	"testing"

	"stat4/internal/core"
	"stat4/internal/traffic"
)

// histFrom builds a histogram by sampling a value stream.
func histFrom(vs traffic.ValueStream, size, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	hist := make([]uint64, size)
	for i := 0; i < n; i++ {
		v := vs(rng)
		if v < uint64(size) {
			hist[v]++
		}
	}
	return hist
}

func TestSplitThresholdSeparatesModes(t *testing.T) {
	hist := histFrom(traffic.BimodalValues(30, 170, 10, 0.5, 255), 256, 50000, 1)
	split, explained := SplitThreshold(hist)
	if split < 60 || split > 140 {
		t.Fatalf("split at %d, want between the modes (30 and 170)", split)
	}
	if explained < 0.9 {
		t.Fatalf("explained variance %.2f, want ≥0.9 for well-separated modes", explained)
	}
}

func TestIsBimodal(t *testing.T) {
	bimodal := histFrom(traffic.BimodalValues(30, 170, 10, 0.5, 255), 256, 50000, 2)
	if !IsBimodal(bimodal, 0) {
		t.Fatal("bimodal histogram not recognised")
	}
	unimodal := histFrom(traffic.NormalValues(100, 15, 255), 256, 50000, 3)
	if IsBimodal(unimodal, 0) {
		t.Fatal("normal histogram called bimodal")
	}
	uniform := histFrom(traffic.UniformValues(256), 256, 50000, 4)
	if IsBimodal(uniform, 0) {
		t.Fatal("uniform histogram called bimodal")
	}
	// A lopsided mixture (95/5) is not worth splitting.
	lopsided := histFrom(traffic.BimodalValues(30, 170, 10, 0.96, 255), 256, 50000, 5)
	if IsBimodal(lopsided, 0) {
		t.Fatal("negligible second mode triggered a split")
	}
}

func TestPlanModeSplit(t *testing.T) {
	const base = 1000
	hist := histFrom(traffic.BimodalValues(40, 200, 8, 0.5, 255), 256, 50000, 6)
	modes, ok := PlanModeSplit(hist, base)
	if !ok {
		t.Fatal("no plan for a bimodal histogram")
	}
	// Each plan must cover its mode's centre, translated by the base.
	if base+40 < modes[0].Base || base+40 >= modes[0].Base+uint64(modes[0].Size) {
		t.Fatalf("low mode plan %+v does not cover value %d", modes[0], base+40)
	}
	if base+200 < modes[1].Base || base+200 >= modes[1].Base+uint64(modes[1].Size) {
		t.Fatalf("high mode plan %+v does not cover value %d", modes[1], base+200)
	}
	// The plans must be disjoint and each much smaller than the original
	// domain (that is the point of splitting).
	if modes[0].Base+uint64(modes[0].Size) > modes[1].Base {
		t.Fatalf("plans overlap: %+v %+v", modes[0], modes[1])
	}
	if modes[0].Size > 160 || modes[1].Size > 160 {
		t.Fatalf("plans not tighter than the 256-value domain: %+v %+v", modes[0], modes[1])
	}
	if modes[0].Mass == 0 || modes[1].Mass == 0 {
		t.Fatal("plan masses not recorded")
	}

	if _, ok := PlanModeSplit(histFrom(traffic.NormalValues(100, 15, 255), 256, 50000, 7), 0); ok {
		t.Fatal("plan produced for a unimodal histogram")
	}
}

// TestModeSplitImprovesDetection is the payoff: with the modes tracked
// separately, a value between the modes is an outlier for both; tracked
// jointly it sits near the global mean and is invisible.
func TestModeSplitImprovesDetection(t *testing.T) {
	vs := traffic.BimodalValues(30, 170, 8, 0.5, 255)
	rng := rand.New(rand.NewSource(8))

	joint := core.NewFreqDist(256)
	for i := 0; i < 50000; i++ {
		if err := joint.Observe(vs(rng)); err != nil {
			t.Fatal(err)
		}
	}
	modes, ok := PlanModeSplit(joint.Frequencies(), 0)
	if !ok {
		t.Fatal("not bimodal")
	}

	// Rebuild the two per-mode distributions from the same traffic.
	lo := core.NewFreqDist(modes[0].Size)
	hi := core.NewFreqDist(modes[1].Size)
	rng = rand.New(rand.NewSource(8))
	for i := 0; i < 50000; i++ {
		v := vs(rng)
		switch {
		case v >= modes[0].Base && v < modes[0].Base+uint64(modes[0].Size):
			if err := lo.Observe(v - modes[0].Base); err != nil {
				t.Fatal(err)
			}
		case v >= modes[1].Base && v < modes[1].Base+uint64(modes[1].Size):
			if err := hi.Observe(v - modes[1].Base); err != nil {
				t.Fatal(err)
			}
		}
	}

	// A burst of values at 100 — between the modes — is anomalous.
	// Per-mode medians sit at their mode centres, while the joint
	// distribution's moments are dominated by the inter-mode spread.
	loMed := core.NewFreqDist(modes[0].Size)
	_ = loMed
	jointSD := joint.Moments().StdDev()
	loSD := lo.Moments().StdDev()
	hiSD := hi.Moments().StdDev()
	// Splitting must dramatically reduce the scaled spread each checker
	// works with, which is what restores sensitivity.
	if loSD >= jointSD || hiSD >= jointSD {
		t.Fatalf("per-mode sd (%d, %d) not below joint sd %d", loSD, hiSD, jointSD)
	}
}
