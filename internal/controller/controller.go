// Package controller implements the control-plane side of the case study
// (Section 4): it consumes anomaly digests pushed by the switch and drills
// down into traffic spikes by retuning the switch's binding tables at
// runtime — first from whole-prefix rate monitoring to per-/24 counting,
// then from the hot /24 to per-destination counting — without recompiling
// the data plane.
package controller

import (
	"fmt"

	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
)

// Scheduler is the slice of the event loop the controller needs: reading
// virtual time and scheduling delayed work (its messages to the switch take
// a link round trip to act).
type Scheduler interface {
	Now() uint64
	After(d uint64, fn func())
}

// Phase tracks drill-down progress.
type Phase int

// Drill-down phases.
const (
	PhaseMonitoring   Phase = iota // watching the /8 rate window
	PhaseLocateSubnet              // per-/24 binding installed
	PhaseLocateHost                // per-host binding installed
	PhaseDone                      // destination pinpointed
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseMonitoring:
		return "monitoring"
	case PhaseLocateSubnet:
		return "locate-subnet"
	case PhaseLocateHost:
		return "locate-host"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Runtime is the slice of the stat4p4 runtime surface the drill-down state
// machine drives. Both *stat4p4.Runtime (single switch) and
// *stat4p4.ShardedRuntime (binds fanned to every shard) satisfy it, so one
// controller works against either data plane.
type Runtime interface {
	BindFreqDst(stage, slot int, m stat4p4.Match, shift uint, base uint64, size int, pa, pb, k uint64) (p4.EntryID, error)
	Unbind(stage int, id p4.EntryID) error
	ResetSlot(slot int) error
	AddDropRoute(prefix packet.Prefix) (p4.EntryID, error)
	Library() *stat4p4.Library
}

// Config wires a DrillDown controller to a switch runtime.
type Config struct {
	RT    Runtime
	Sched Scheduler

	// CtrlDelay is the one-way controller→switch latency; binding-table
	// changes take effect after it.
	CtrlDelay uint64

	// Monitored is the coarse prefix whose aggregate rate the window
	// tracks (the case study's /8).
	Monitored packet.Prefix

	// WindowSlot is the distribution slot of the rate window (stage 0).
	WindowSlot int
	// DrillStage and DrillSlot host the drill-down distribution.
	DrillStage int
	DrillSlot  int

	// SubnetBits is the drill-down granularity (24 → /24 subnets).
	SubnetBits int
	// SubnetDomain is the counter domain for the per-subnet distribution
	// (e.g. 256 indexes the third octet under a /16-spanning deployment).
	SubnetDomain int
	// K is the σ multiplier of the imbalance checks.
	K uint64
	// Warmup ignores alerts from a freshly (re)bound distribution for
	// this long, while its moments stabilise.
	Warmup uint64
	// MonitorWarmup ignores rate-window alerts before this absolute time,
	// covering the window's fill phase when its variance estimate is still
	// noisy.
	MonitorWarmup uint64
	// Mitigate blackholes the identified destination once the drill-down
	// completes — the paper's "locally react to anomalies" as a
	// remotely-triggered blackhole. The route install pays CtrlDelay like
	// every other control-plane action.
	Mitigate bool

	// Timeline, when set, records every phase transition as (virtual ns,
	// code): the Phase value entered, or TimelineMitigated when the
	// blackhole takes effect. It is the integer twin of the human-readable
	// Log, exposed through the telemetry snapshot.
	Timeline *telemetry.Timeline
}

// TimelineMitigated is the Timeline code recorded when mitigation takes
// effect (phase transitions record the Phase value itself).
const TimelineMitigated = 100

// Result is what the drill-down produced, with controller-side timestamps.
type Result struct {
	DetectedSwitchTs uint64 // switch timestamp inside the anomalous interval
	DetectedAt       uint64 // digest arrival at the controller
	SubnetAt         uint64 // hot /24 identified
	HostAt           uint64 // destination identified
	MitigatedAt      uint64 // blackhole in effect (0 unless Mitigate)
	Subnet           packet.Prefix
	Host             packet.IP4
}

// DrillDown is the case-study controller. HandleDigest must be invoked from
// the simulation loop (single-threaded).
type DrillDown struct {
	cfg   Config
	phase Phase
	res   Result

	bindID     p4.EntryID
	bindAt     uint64 // when the current drill binding took effect
	subnetBase uint64 // value base of the per-subnet binding
	hostBase   uint64 // value base of the per-host binding

	// Log records phase transitions for the case-study binary.
	Log []string
}

// NewDrillDown returns a controller in the monitoring phase. The rate
// window and forwarding are assumed already bound by the operator; the
// controller owns the drill-down stage.
func NewDrillDown(cfg Config) *DrillDown {
	if cfg.K == 0 {
		cfg.K = 2
	}
	if cfg.SubnetDomain == 0 {
		cfg.SubnetDomain = 256
	}
	return &DrillDown{cfg: cfg, phase: PhaseMonitoring}
}

// Phase returns the current phase.
func (d *DrillDown) Phase() Phase { return d.phase }

// Result returns the timestamps and identifications so far.
func (d *DrillDown) Result() Result { return d.res }

func (d *DrillDown) logf(format string, args ...any) {
	d.Log = append(d.Log, fmt.Sprintf("[%10dns] %s", d.cfg.Sched.Now(), fmt.Sprintf(format, args...)))
}

// mark records a timeline code at the current virtual time.
func (d *DrillDown) mark(code uint64) {
	if d.cfg.Timeline != nil {
		d.cfg.Timeline.Record(d.cfg.Sched.Now(), code)
	}
}

// HandleDigest advances the drill-down state machine on each switch alert.
func (d *DrillDown) HandleDigest(now uint64, dg p4.Digest) {
	if dg.ID != stat4p4.DigestAnomaly || len(dg.Values) < 5 {
		return
	}
	slot := int(dg.Values[0])
	// Gate on the digest's data-plane timestamp, not its arrival time:
	// alerts emitted by a superseded binding can still be in flight on the
	// control channel when the new binding takes effect.
	switchTs := dg.Values[4]
	switch {
	case d.phase == PhaseMonitoring && slot == d.cfg.WindowSlot:
		if switchTs < d.cfg.MonitorWarmup {
			return
		}
		d.res.DetectedSwitchTs = dg.Values[4]
		d.res.DetectedAt = now
		d.phase = PhaseLocateSubnet
		d.mark(uint64(PhaseLocateSubnet))
		d.logf("traffic-spike alert: interval value %d > threshold %d; installing per-/%d counting",
			dg.Values[1], dg.Values[3], d.cfg.SubnetBits)
		d.installSubnetBinding()

	case d.phase == PhaseLocateSubnet && slot == d.cfg.DrillSlot:
		if switchTs < d.bindAt+d.cfg.Warmup {
			return
		}
		idx := dg.Values[1]
		subnetAddr := packet.IP4((d.subnetBase + idx) << uint(32-d.cfg.SubnetBits))
		d.res.Subnet = packet.NewPrefix(subnetAddr, d.cfg.SubnetBits)
		d.res.SubnetAt = now
		d.phase = PhaseLocateHost
		d.mark(uint64(PhaseLocateHost))
		d.logf("traffic-imbalance alert: hot subnet %s; refining to per-destination counting", d.res.Subnet)
		d.installHostBinding()

	case d.phase == PhaseLocateHost && slot == d.cfg.DrillSlot:
		if switchTs < d.bindAt+d.cfg.Warmup {
			return
		}
		idx := dg.Values[1]
		d.res.Host = packet.IP4(d.hostBase + idx)
		d.res.HostAt = now
		d.phase = PhaseDone
		d.mark(uint64(PhaseDone))
		d.logf("destination pinpointed: %s", d.res.Host)
		if d.cfg.Mitigate {
			host := d.res.Host
			d.cfg.Sched.After(d.cfg.CtrlDelay, func() {
				if _, err := d.cfg.RT.AddDropRoute(packet.NewPrefix(host, 32)); err != nil {
					d.logf("mitigation failed: %v", err)
					return
				}
				d.res.MitigatedAt = d.cfg.Sched.Now()
				d.mark(TimelineMitigated)
				d.logf("mitigation active: traffic to %s blackholed", host)
			})
		}
	}
}

// installSubnetBinding asks the switch (after the control-link delay) to
// count packets per subnet across the monitored prefix. Until the binding
// takes effect, bindAt is pinned to infinity so in-flight digests from any
// previous binding are discarded.
func (d *DrillDown) installSubnetBinding() {
	shift := uint(32 - d.cfg.SubnetBits)
	d.subnetBase = uint64(d.cfg.Monitored.Addr) >> shift
	d.bindAt = ^uint64(0) - d.cfg.Warmup
	d.cfg.Sched.After(d.cfg.CtrlDelay, func() {
		id, err := d.cfg.RT.BindFreqDst(d.cfg.DrillStage, d.cfg.DrillSlot, stat4p4.DstIn(d.cfg.Monitored),
			shift, d.subnetBase, d.cfg.SubnetDomain, 1, 1, d.cfg.K)
		if err != nil {
			d.logf("subnet binding failed: %v", err)
			return
		}
		d.bindID = id
		d.bindAt = d.cfg.Sched.Now()
	})
}

// installHostBinding retargets the drill slot at destinations inside the hot
// subnet, reusing the same stage — the paper's "modifies the previously
// added entry".
func (d *DrillDown) installHostBinding() {
	subnet := d.res.Subnet
	d.hostBase = uint64(subnet.Addr)
	d.bindAt = ^uint64(0) - d.cfg.Warmup
	d.cfg.Sched.After(d.cfg.CtrlDelay, func() {
		if err := d.cfg.RT.Unbind(d.cfg.DrillStage, d.bindID); err != nil {
			d.logf("unbind failed: %v", err)
			return
		}
		if err := d.cfg.RT.ResetSlot(d.cfg.DrillSlot); err != nil {
			d.logf("slot reset failed: %v", err)
			return
		}
		hostsDomain := 1 << uint(32-subnet.Len)
		if hostsDomain > d.cfg.RT.Library().Opts.Size {
			hostsDomain = d.cfg.RT.Library().Opts.Size
		}
		id, err := d.cfg.RT.BindFreqDst(d.cfg.DrillStage, d.cfg.DrillSlot, stat4p4.DstIn(subnet),
			0, d.hostBase, hostsDomain, 1, 1, d.cfg.K)
		if err != nil {
			d.logf("host binding failed: %v", err)
			return
		}
		d.bindID = id
		d.bindAt = d.cfg.Sched.Now()
	})
}
