package lint_test

import (
	"strings"
	"testing"

	"stat4/internal/lint"
	"stat4/internal/p4"
)

// tightModel is deliberately too shallow for any multi-op chain.
func tightModel() p4.TargetModel {
	return p4.TargetModel{
		Name: "tight", Stages: 2, ALUsPerStage: 4, HashUnitsPerStage: 1,
		RegActionsPerStage: 2, TablesPerStage: 1, SRAMPerStageBytes: 1 << 16,
	}
}

// deepProgram needs three stages: a serial def-use chain of three adds.
func deepProgram() *p4.Program {
	p := p4.NewProgram("deep")
	a := p.AddField("m.a", 64)
	b := p.AddField("m.b", 64)
	c := p.AddField("m.c", 64)
	p.AddAction(p4.NewAction("calc", 0,
		p4.Add(a, p4.C(1), p4.C(2)),
		p4.Add(b, p4.F(a), p4.C(1)),
		p4.Add(c, p4.F(b), p4.F(a)),
	))
	p.Control = []p4.Stmt{p4.Call("calc")}
	return p
}

// The deliberately over-budget case: stagebudget reports the shortfall and
// the overflowing ops under the program's pseudo-position.
func TestRunProgramsOverBudget(t *testing.T) {
	diags := lint.RunPrograms([]lint.ProgramCase{
		{Name: "deep", Prog: deepProgram()},
	}, tightModel())

	var stage []lint.Diagnostic
	for _, d := range diags {
		if d.Analyzer != "stagebudget" {
			continue
		}
		stage = append(stage, d)
		if d.Pos.Filename != "program:deep" {
			t.Errorf("diagnostic not anchored to the program pseudo-file: %s", d)
		}
	}
	if len(stage) < 2 {
		t.Fatalf("want a shortfall summary plus named violations, got %v", diags)
	}
	if !strings.Contains(stage[0].Message, `needs 3 stages of the 2-stage "tight" target`) {
		t.Errorf("summary diagnostic wrong: %s", stage[0])
	}
	if !strings.Contains(stage[1].Message, "calc") {
		t.Errorf("violation should name the overflowing action: %s", stage[1])
	}
}

// A fitting, law-abiding program produces no diagnostics.
func TestRunProgramsClean(t *testing.T) {
	diags := lint.RunPrograms([]lint.ProgramCase{
		{Name: "deep", Prog: deepProgram()},
	}, p4.DefaultTargetModel())
	if len(diags) != 0 {
		t.Fatalf("clean program flagged: %v", diags)
	}
}

// Mergelaw findings surface through the same diagnostic stream, under the
// mergelaw analyzer name.
func TestRunProgramsMergeLaw(t *testing.T) {
	p := deepProgram()
	p.AddRegister("ctr", 8, 64) // merge kind never declared

	diags := lint.RunPrograms([]lint.ProgramCase{
		{Name: "deep", Prog: p},
	}, p4.DefaultTargetModel())
	if len(diags) != 1 || diags[0].Analyzer != "mergelaw" {
		t.Fatalf("want one mergelaw diagnostic, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, `register "ctr" does not declare its merge kind`) {
		t.Errorf("unexpected message: %s", diags[0])
	}
}
