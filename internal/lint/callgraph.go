package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// target is one module function the checker can analyze: its declaration,
// object and owning package.
type target struct {
	decl *ast.FuncDecl
	obj  *types.Func
	pkg  *Package
}

// callEdge is one static call from a module function to another.
type callEdge struct {
	callee *types.Func
	pos    ast.Node // the call expression, for diagnostics
}

// callGraph is the static, intra-module call graph. Calls through interface
// methods and function values are not resolved (the P4 side has no indirect
// calls either); the closure therefore follows direct calls to named
// functions and methods only.
type callGraph struct {
	mod     *Module
	targets map[*types.Func]*target
	edges   map[*types.Func][]callEdge
	modPkgs map[*types.Package]bool
}

// buildCallGraph indexes every function declaration in the module and the
// direct calls inside each body.
func buildCallGraph(mod *Module) *callGraph {
	g := &callGraph{
		mod:     mod,
		targets: make(map[*types.Func]*target),
		edges:   make(map[*types.Func][]callEdge),
		modPkgs: make(map[*types.Package]bool),
	}
	for _, pkg := range mod.Pkgs {
		g.modPkgs[pkg.Types] = true
	}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.targets[obj] = &target{decl: fd, obj: obj, pkg: pkg}
			}
		}
	}
	for obj, t := range g.targets {
		g.edges[obj] = g.callsIn(t)
	}
	return g
}

// callsIn collects the in-module callees of t's body, including calls made
// inside nested function literals (their code runs as part of the datapath
// if the enclosing function does).
func (g *callGraph) callsIn(t *target) []callEdge {
	var out []callEdge
	ast.Inspect(t.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(t.pkg.Info, call)
		if callee == nil || !g.modPkgs[callee.Pkg()] {
			return true
		}
		out = append(out, callEdge{callee: callee, pos: call})
		return true
	})
	return out
}

// calleeFunc resolves the *types.Func a call statically targets, or nil for
// conversions, builtins, function values and interface dispatch.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// datapathClosure walks the call graph from every //stat4:datapath root and
// returns the reachable module functions in deterministic order. Edges into
// //stat4:reference functions are reported (and not followed): reference
// implementations are by definition not switch-feasible.
func (g *callGraph) datapathClosure(r *run) []*target {
	var queue []*types.Func
	seen := make(map[*types.Func]bool)
	for obj, t := range g.targets {
		if r.dirs.kindOf(t.decl) == KindDatapath && !seen[obj] {
			seen[obj] = true
			queue = append(queue, obj)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].FullName() < queue[j].FullName() })

	var closure []*target
	for len(queue) > 0 {
		obj := queue[0]
		queue = queue[1:]
		t := g.targets[obj]
		closure = append(closure, t)
		for _, e := range g.edges[obj] {
			ct, ok := g.targets[e.callee]
			if !ok {
				continue // declared without a body (assembly stubs); none in this module
			}
			if r.dirs.kindOf(ct.decl) == KindReference {
				r.reportf(BoundedLoop.Name, t.decl, e.pos.Pos(),
					"datapath function %s calls %s, which is marked //stat4:reference (not switch-implementable)",
					t.obj.Name(), e.callee.Name())
				continue
			}
			if !seen[e.callee] {
				seen[e.callee] = true
				queue = append(queue, e.callee)
			}
		}
	}
	sort.Slice(closure, func(i, j int) bool {
		return closure[i].obj.FullName() < closure[j].obj.FullName()
	})
	return closure
}

// cycleMembers returns the closure functions that sit on a call cycle
// (including self-recursion), using Tarjan's strongly-connected-components
// algorithm restricted to the closure subgraph.
func (g *callGraph) cycleMembers(closure []*target) []*target {
	in := make(map[*types.Func]bool, len(closure))
	for _, t := range closure {
		in[t.obj] = true
	}

	index := make(map[*types.Func]int)
	lowlink := make(map[*types.Func]int)
	onStack := make(map[*types.Func]bool)
	var stack []*types.Func
	next := 0
	var cyclic []*target

	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		index[v] = next
		lowlink[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		selfLoop := false
		for _, e := range g.edges[v] {
			w := e.callee
			if !in[w] {
				continue
			}
			if w == v {
				selfLoop = true
			}
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if lowlink[w] < lowlink[v] {
					lowlink[v] = lowlink[w]
				}
			} else if onStack[w] && index[w] < lowlink[v] {
				lowlink[v] = index[w]
			}
		}

		if lowlink[v] == index[v] {
			var scc []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 || selfLoop {
				for _, w := range scc {
					cyclic = append(cyclic, g.targets[w])
				}
			}
		}
	}

	for _, t := range closure {
		if _, visited := index[t.obj]; !visited {
			strongconnect(t.obj)
		}
	}
	sort.Slice(cyclic, func(i, j int) bool {
		return cyclic[i].obj.FullName() < cyclic[j].obj.FullName()
	})
	return cyclic
}
