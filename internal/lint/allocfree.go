package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree rejects constructs that heap-allocate (or hand work to the
// runtime's allocator) in datapath functions. A switch pipeline has no heap:
// every byte of state is a register or PHV field sized at compile time, so
// per-packet Go code that allocates is modelling hardware that cannot exist.
// It also keeps the software datapath honest as a benchmark subject — an
// allocation per packet turns the GC into part of the measured system.
//
// Flagged: make/new/append, composite literals that create slices or maps or
// whose address is taken, function literals (closure environments allocate),
// defer and go statements, string concatenation and string<->[]byte/[]rune
// conversions, calls into fmt, and implicit interface boxing at call sites
// (including variadic ...interface{} parameters, fmt's other allocation).
// Constructs with a compile-time-bounded, setup-only purpose carry
// //stat4:exempt:allocfree with a justification.
var AllocFree = &Analyzer{
	Name:      "allocfree",
	Doc:       "no heap allocation in datapath functions",
	CheckFunc: checkAllocFree,
}

func checkAllocFree(pass *Pass) {
	info := pass.TypesInfo()
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}

	ast.Inspect(pass.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			checkAllocCall(info, e, report)
		case *ast.FuncLit:
			report(e.Pos(), "function literal in datapath code: the closure environment is heap-allocated")
		case *ast.DeferStmt:
			report(e.Defer, "defer in datapath code: the deferred frame is runtime-managed state a pipeline does not have")
		case *ast.GoStmt:
			report(e.Go, "go statement in datapath code: per-packet work cannot spawn goroutines")
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(cl.Pos(), "address-of composite literal escapes to the heap in datapath code")
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					report(e.Pos(), "slice literal allocates its backing array in datapath code")
				case *types.Map:
					report(e.Pos(), "map literal allocates in datapath code")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && !isConstExpr(info, e) {
				if tv, ok := info.Types[e]; ok {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(e.OpPos, "string concatenation allocates in datapath code")
					}
				}
			}
		}
		return true
	})
}

// checkAllocCall handles the call-shaped allocation sources: allocating
// builtins, conversions that copy string memory, fmt calls, and implicit
// interface boxing of concrete arguments.
func checkAllocCall(info *types.Info, call *ast.CallExpr, report func(token.Pos, string, ...interface{})) {
	// Allocating builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call.Pos(), "make allocates in datapath code (size register state at compile time instead)")
			case "new":
				report(call.Pos(), "new allocates in datapath code")
			case "append":
				report(call.Pos(), "append may grow and reallocate in datapath code (P4 state is fixed-size)")
			}
			return
		}
	}

	// Conversions: T(x) where T is a type. String conversions copy memory.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			dst, src := tv.Type, types.Type(nil)
			if atv, ok := info.Types[call.Args[0]]; ok {
				src = atv.Type
			}
			if src != nil && stringConversionAllocates(dst, src) {
				report(call.Pos(), "conversion between string and byte/rune slice copies its memory in datapath code")
			}
		}
		return
	}

	// Calls into fmt: reflection-driven formatting, allocates per call.
	if f := calleeFunc(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s formats through reflection and allocates in datapath code", f.Name())
		return
	}

	// Implicit interface boxing: a concrete argument passed to an interface
	// parameter is wrapped in a runtime-allocated interface value.
	sig, ok := typeOfFun(info, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // arg is already the slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil {
			continue
		}
		if _, already := atv.Type.Underlying().(*types.Interface); already {
			continue
		}
		if b, ok := atv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		report(arg.Pos(), "argument of type %s is boxed into interface %s at this call in datapath code", atv.Type, pt)
	}
}

// typeOfFun returns the signature a call invokes, when it is a plain call of
// a function or function value (not a conversion or builtin).
func typeOfFun(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

// stringConversionAllocates reports whether a conversion from src to dst is
// one of the string<->[]byte/[]rune shapes that copy the data.
func stringConversionAllocates(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(dst) && isByteish(src)) || (isByteish(dst) && isStr(src))
}
