package lint

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
)

// unitConfig mirrors the JSON configuration `go vet` writes for an external
// vet tool (x/tools unitchecker.Config): one package's files plus export
// data for everything it imports.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single package described by a `go vet` .cfg file and
// returns its diagnostics. This is the modular `go vet -vettool` mode: each
// package is checked on its own, so the //stat4:datapath closure and the
// recursion check stop at package boundaries (every datapath package in
// this module annotates its functions directly, so coverage is preserved;
// the standalone driver remains the authoritative whole-module gate).
func RunUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("lint: parsing vet config %s: %v", cfgFile, err)
	}
	if cfg.Compiler == "" {
		cfg.Compiler = "gc"
	}

	// go vet requires the facts file to exist even though this tool keeps
	// no cross-package facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("lint: writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := typeCheck(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	mod := &Module{Fset: fset, Pkgs: []*Package{pkg}}
	return Run(mod, analyzers), nil
}
