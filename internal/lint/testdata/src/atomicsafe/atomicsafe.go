// Package atomicsafe exercises the atomic-discipline analyzer: plain
// accesses mixed with sync/atomic accesses to the same variable, copies of
// typed atomics, and the clean and exempted shapes. The analyzer is
// module-wide, so no //stat4:datapath marks are needed.
package atomicsafe

import "sync/atomic"

type counters struct {
	hits  uint64
	drops uint64
	seen  atomic.Uint64
}

// bump establishes the fact: hits is atomic-disciplined everywhere.
func (c *counters) bump() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counters) loadOK() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counters) report() uint64 {
	return c.hits // want "hits is accessed with atomic.AddUint64 at .*; this plain access races with it"
}

func (c *counters) reset() {
	c.hits = 0  // want "hits is accessed with atomic.AddUint64 at .*; this plain access races with it"
	c.drops = 0 // drops is never touched atomically: plain access is consistent
}

func (c *counters) exemptedInit() {
	//stat4:exempt:atomicsafe constructor runs before the counters are shared
	c.hits = 0
}

// typed atomics are safe through their methods...
func (c *counters) typedOK() uint64 {
	return c.seen.Add(1)
}

// ...but copying the value detaches it from the shared cell.
func (c *counters) copyTyped() {
	v := c.seen // want "assignment copies a sync/atomic.Uint64 value"
	_ = v.Load()
}

func observe(u atomic.Uint64) uint64 { return u.Load() }

func (c *counters) passTyped() uint64 {
	return observe(c.seen) // want "call argument copies a sync/atomic.Uint64 value"
}
