// Package directive exercises validation of the //stat4: comments
// themselves: a mistyped or misplaced directive must fail the run rather
// than silently disabling a check.
package directive

//stat4:datapath placed on a var // want "must appear in the doc comment of a function declaration, not another kind of declaration"
var NotAFunction uint64

//stat4:reference placed on a type // want "must appear in the doc comment of a function declaration, not another kind of declaration"
type AlsoNotAFunction struct{}

func body() {
	//stat4:datapath // want "must appear in the doc comment of a function declaration"
	_ = NotAFunction
}

//stat4:frobnicate // want "unknown //stat4: directive"
func unknownVerb() {}

//stat4:exempt // want "needs an analyzer name"
func bareExempt() {}

//stat4:exempt:nosuchcheck reason // want "names an unknown analyzer"
func unknownAnalyzer() {}

//stat4:exempt:directive reason // want "the directive check cannot be exempted"
func exemptTheValidator() {}

// Conflicted carries both annotations, which is contradictory.
//
//stat4:datapath
//stat4:reference exact version // want "is marked both"
func Conflicted() {}
