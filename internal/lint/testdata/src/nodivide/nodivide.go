// Package nodivide exercises the nodivide analyzer: division, modulo, their
// assignment forms and math.Sqrt-family calls are rejected in datapath code,
// while constant-folded divisions and exempted lines pass.
package nodivide

import "math"

//stat4:datapath
func Mean(sum, n uint64) uint64 {
	return sum / n // want "nodivide: / is not available on a P4 target"
}

//stat4:datapath
func Bucket(h, n uint64) uint64 {
	return h % n // want "nodivide: % is not available on a P4 target"
}

//stat4:datapath
func AssignForms(x uint64) uint64 {
	x /= 3 // want "nodivide: /= is not available on a P4 target"
	x %= 7 // want "nodivide: %= is not available on a P4 target"
	return x
}

//stat4:datapath
func LibSqrt() uint64 {
	_ = math.Sqrt(2) // want "nodivide: math.Sqrt is floating-point library code"
	return 0
}

//stat4:datapath
func ConstFolded(x uint64) uint64 {
	// 1024/4 is folded by the compiler; no runtime division happens.
	return x + 1024/4
}

//stat4:datapath
func Exempted(h uint64) uint64 {
	return h % 10 //stat4:exempt:nodivide host-only path, never emitted
}

// Unannotated functions are not checked at all.
func NotDatapath(a, b uint64) uint64 {
	return a / b
}
