// Package nomaprange exercises the nomaprange analyzer and its precedence
// over boundedloop exemptions: a map range stays forbidden even where a loop
// exemption applies, because map iteration order is nondeterministic.
package nomaprange

//stat4:datapath
func Both(m map[uint64]uint64) uint64 {
	var s uint64
	for _, v := range m { // want "nomaprange: map iteration in datapath code" "boundedloop: range loop in datapath code"
		s += v
	}
	return s
}

//stat4:datapath
func ExemptedLoopStillFlagged(m map[uint64]uint64) uint64 {
	var s uint64
	//stat4:exempt:boundedloop the loop exemption must NOT silence the map-order check
	for _, v := range m { // want "nomaprange: map iteration in datapath code"
		s += v
	}
	return s
}

//stat4:datapath
func SliceRangeIsNotAMapRange(xs []uint64) uint64 {
	var s uint64
	//stat4:exempt:boundedloop fixed-size configuration list
	for _, v := range xs {
		s += v
	}
	return s
}
