// Package allocfree exercises the heap-allocation analyzer: every way a
// datapath function can reach the runtime allocator, plus the shapes that
// are fine (fixed-size arrays, indexing, arithmetic) and an exemption.
package allocfree

import "fmt"

var state [64]uint64

//stat4:datapath
func builtins(n int) {
	s := make([]uint64, n) // want "make allocates in datapath code"
	p := new(uint64)       // want "new allocates in datapath code"
	s = append(s, 1)       // want "append may grow and reallocate in datapath code"
	_, _ = s, p
}

//stat4:datapath
func literals() {
	s := []uint64{1, 2, 3}       // want "slice literal allocates its backing array"
	m := map[uint64]uint64{1: 2} // want "map literal allocates in datapath code"
	c := &config{width: 32}      // want "address-of composite literal escapes to the heap"
	v := config{width: 8}        // a value-typed struct literal lives on the stack
	_, _, _, _ = s, m, c, v
}

//stat4:datapath
func control(x uint64) {
	defer cleanup()                 // want "defer in datapath code"
	go spin()                       // want "go statement in datapath code"
	f := func() uint64 { return x } // want "function literal in datapath code"
	_ = f
}

//stat4:datapath
func strings(name string, raw []byte) {
	s := name + "!"   // want "string concatenation allocates in datapath code"
	b := []byte(name) // want "conversion between string and byte/rune slice copies its memory"
	t := string(raw)  // want "conversion between string and byte/rune slice copies its memory"
	_, _, _ = s, b, t
}

//stat4:datapath
func formatting(v uint64) {
	_ = fmt.Sprintf("%d", v) // want "fmt.Sprintf formats through reflection and allocates"
}

//stat4:datapath
func boxing(v uint64) {
	sink(v) // want "argument of type uint64 is boxed into interface"
	logv(v) // want "argument of type uint64 is boxed into interface"
	var i interface{} = nil
	sink(i) // an interface-typed argument is passed through, not boxed
}

//stat4:datapath
func exempted() {
	//stat4:exempt:allocfree digest buffers hand ownership to the control plane
	_ = make([]uint64, 4)
}

// clean shows the allowed shapes: fixed arrays, indexing, arithmetic.
//
//stat4:datapath
func clean(i uint64) uint64 {
	state[i&63] += i
	return state[i&63]
}

//stat4:datapath
func sink(v interface{}) {}

//stat4:datapath
func logv(vs ...interface{}) {}

//stat4:datapath
func cleanup() {}

//stat4:datapath
func spin() {}

type config struct{ width int }
