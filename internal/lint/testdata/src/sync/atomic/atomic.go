// Package atomic stubs sync/atomic for the atomicsafe fixture. The
// function-style entry points and one typed atomic are enough to exercise
// both halves of the analyzer; bodies are empty or absent so the stub adds
// nothing to the call graph.
package atomic

func AddUint64(addr *uint64, delta uint64) uint64

func LoadUint64(addr *uint64) uint64

func StoreUint64(addr *uint64, val uint64)

// Uint64 mirrors the typed atomic: methods take a pointer receiver, so only
// copies of the value itself are misuse.
type Uint64 struct{ v uint64 }

func (u *Uint64) Load() uint64

func (u *Uint64) Add(delta uint64) uint64
