// Package math stubs the standard library package for the nodivide fixture.
// The declarations are bodyless (like assembly-backed stdlib functions) so
// they stay out of the call graph; the denylist matches on package path and
// name only.
package math

func Sqrt(x float64) float64

func Log2(x float64) float64

func Pow(x, y float64) float64
