// Package boundedloop exercises the boundedloop analyzer: for/range loops,
// goto, recursion (mutual and self), calls into //stat4:reference code, and
// the transitive reach of the datapath closure into unannotated helpers.
package boundedloop

//stat4:datapath
func Loops(xs []uint64) uint64 {
	var s uint64
	for _, x := range xs { // want "boundedloop: range loop in datapath code"
		s += x
	}
	for i := 0; i < 4; i++ { // want "boundedloop: for loop in datapath code"
		s++
	}
	return s
}

//stat4:datapath
func Jump(x uint64) uint64 {
top:
	if x > 0 {
		x--
		goto top // want "boundedloop: goto in datapath code"
	}
	return x
}

//stat4:datapath
func Ping(n uint64) uint64 { // want "boundedloop: datapath function Ping participates in a call cycle"
	if n == 0 {
		return 0
	}
	return Pong(n - 1)
}

// Pong is unannotated but enters the closure through Ping, which puts it on
// the cycle too.
func Pong(n uint64) uint64 { // want "boundedloop: datapath function Pong participates in a call cycle"
	if n == 0 {
		return 1
	}
	return Ping(n - 1)
}

//stat4:datapath
func Self(n uint64) uint64 { // want "boundedloop: datapath function Self participates in a call cycle"
	if n == 0 {
		return 0
	}
	return Self(n - 1)
}

//stat4:reference exact bit-length, loops on purpose
func SlowLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

//stat4:datapath
func UsesRef(v uint64) int {
	return SlowLen(v) // want "boundedloop: datapath function UsesRef calls SlowLen, which is marked"
}

//stat4:datapath
func Entry(x uint64) uint64 {
	return helper(x)
}

// helper is unannotated; the closure checks it because Entry calls it.
func helper(x uint64) uint64 {
	for x > 10 { // want "boundedloop: for loop in datapath code"
		x >>= 1
	}
	return x
}

//stat4:datapath
func Unrolled(xs []uint64) uint64 {
	var s uint64
	//stat4:exempt:boundedloop fixed-size configuration list, unrolled when emitted
	for _, x := range xs {
		s += x
	}
	return s
}
