// Package inner holds the helper the closure fixture reaches through an
// import. Nothing here is annotated; the checks apply because the caller is.
package inner

func Helper(x uint64) uint64 {
	return x % 3 // want "nodivide: % is not available on a P4 target"
}
