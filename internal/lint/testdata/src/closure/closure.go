// Package closure exercises the transitive datapath closure across package
// boundaries: the entry point is annotated here, the violation lives in an
// unannotated helper one import away.
package closure

import "closure/inner"

//stat4:datapath
func Entry(x uint64) uint64 {
	return inner.Helper(x) + local(x)
}

func local(x uint64) uint64 {
	return x + 1
}
