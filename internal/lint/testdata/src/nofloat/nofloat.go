// Package nofloat exercises the nofloat analyzer: floating-point signatures,
// literals, conversions, variables and arithmetic are all rejected in
// datapath code.
package nofloat

//stat4:datapath
func Sig(x float64) uint64 { // want "nofloat: datapath signature uses floating-point type float64"
	return 0
}

//stat4:datapath
func Returns() float32 { // want "nofloat: datapath signature uses floating-point type float32"
	return 0
}

//stat4:datapath
func Body(x uint64) uint64 {
	f := float64(x) // want "nofloat: variable f has floating-point type float64" "nofloat: conversion to floating-point type float64"
	g := f * f      // want "nofloat: variable g has floating-point type float64" "nofloat: floating-point arithmetic in datapath code"
	_ = g
	h := 1.5 // want "nofloat: variable h has floating-point type float64" "nofloat: floating-point literal in datapath code"
	_ = h
	return x
}

//stat4:datapath
func IntegerOnly(x uint64) uint64 {
	y := x + 1
	return y >> 2
}
