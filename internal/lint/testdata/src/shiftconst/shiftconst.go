// Package shiftconst exercises the shiftconst analyzer: shift amounts must
// be compile-time constants, in expression and assignment form, with
// constant-folded shifts and exempted lines passing.
package shiftconst

//stat4:datapath
func Shifts(x, n uint64) uint64 {
	y := x << 3 // constant amount: fine
	y |= x << n // want "shiftconst: shift amount n is not a compile-time constant"
	y ^= x >> n // want "shiftconst: shift amount n is not a compile-time constant"
	y <<= n     // want "shiftconst: shift amount n is not a compile-time constant"
	const k = 5
	y |= x >> k // folded to a constant: fine
	return y
}

//stat4:datapath
func WholeExprFolded(x uint64) uint64 {
	// 1 << 20 is itself a constant expression; nothing to report.
	return x & (1<<20 - 1)
}

//stat4:datapath
func Exempted(x, e uint64) uint64 {
	return x << e //stat4:exempt:shiftconst realised as the nested-if tree with constant-shift leaves
}
