// Package fmt stubs the standard library package for the allocfree fixture.
// Bodyless declarations (like assembly-backed stdlib functions) stay out of
// the call graph; the analyzer matches on package path and name only.
package fmt

func Sprintf(format string, args ...interface{}) string

func Errorf(format string, args ...interface{}) error
