// Package linttest is an analysistest-style harness for the stat4 lint
// suite: it loads hermetic fixture packages from a testdata/src tree, runs
// the analyzers, and compares the reported diagnostics against // want
// "regex" comments placed on the offending lines.
package linttest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"stat4/internal/lint"
)

// Run type-checks the fixture package at srcRoot/path (resolving its imports
// inside srcRoot, so fixtures are hermetic), runs the analyzer suite and
// compares the diagnostics against // want "regex" comments. Each regex must
// match the "analyzer: message" string of exactly one diagnostic reported on
// the comment's line, and every diagnostic must be wanted.
func Run(t *testing.T, srcRoot, path string, analyzers []*lint.Analyzer) {
	t.Helper()
	mod, err := Load(srcRoot, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags := lint.Run(mod, analyzers)
	checkExpectations(t, mod, diags)
}

// Diagnostics loads the fixture and returns the raw diagnostics, for tests
// that assert on them directly.
func Diagnostics(t *testing.T, srcRoot, path string, analyzers []*lint.Analyzer) []lint.Diagnostic {
	t.Helper()
	mod, err := Load(srcRoot, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	return lint.Run(mod, analyzers)
}

// Load builds a lint.Module from fixture sources rooted at srcRoot. Fixture
// packages may import each other by srcRoot-relative path; imports outside
// the fixture tree are errors, which keeps fixtures hermetic and the harness
// free of compiled export data.
func Load(srcRoot, path string) (*lint.Module, error) {
	fset := token.NewFileSet()
	mod := &lint.Module{Fset: fset}
	cache := make(map[string]*lint.Package)
	loading := make(map[string]bool)

	var load func(path string) (*lint.Package, error)
	load = func(path string) (*lint.Package, error) {
		if p, ok := cache[path]; ok {
			return p, nil
		}
		if loading[path] {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		loading[path] = true
		defer delete(loading, path)

		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
		cfg := &types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
			dep, err := load(ipath)
			if err != nil {
				return nil, fmt.Errorf("fixture import %q: %w", ipath, err)
			}
			return dep.Types, nil
		})}
		tpkg, err := cfg.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", path, err)
		}
		pkg := &lint.Package{Path: path, Files: files, Types: tpkg, Info: info}
		cache[path] = pkg
		mod.Pkgs = append(mod.Pkgs, pkg) // post-order: dependencies first
		return pkg, nil
	}

	if _, err := load(path); err != nil {
		return nil, err
	}
	return mod, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one // want comment: the regexes expected to match
// diagnostics on its line.
type expectation struct {
	file     string
	line     int
	patterns []*regexp.Regexp
}

var wantRe = regexp.MustCompile(`//\s*want\b(.*)$`)

// parseWants extracts // want expectations from every fixture file.
func parseWants(mod *lint.Module) ([]expectation, error) {
	var out []expectation
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					exp := expectation{file: pos.Filename, line: pos.Line}
					rest := strings.TrimSpace(m[1])
					for rest != "" {
						if rest[0] != '"' && rest[0] != '`' {
							return nil, fmt.Errorf("%s: malformed // want: %q", pos, c.Text)
						}
						prefix, err := quotedPrefix(rest)
						if err != nil {
							return nil, fmt.Errorf("%s: %v in %q", pos, err, c.Text)
						}
						unq, err := strconv.Unquote(prefix)
						if err != nil {
							return nil, fmt.Errorf("%s: %v in %q", pos, err, prefix)
						}
						rx, err := regexp.Compile(unq)
						if err != nil {
							return nil, fmt.Errorf("%s: bad regexp: %v", pos, err)
						}
						exp.patterns = append(exp.patterns, rx)
						rest = strings.TrimSpace(rest[len(prefix):])
					}
					if len(exp.patterns) == 0 {
						return nil, fmt.Errorf("%s: // want with no patterns", pos)
					}
					out = append(out, exp)
				}
			}
		}
	}
	return out, nil
}

// quotedPrefix returns the leading Go string literal of s.
func quotedPrefix(s string) (string, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			return s[:i+1], nil
		}
	}
	return "", fmt.Errorf("unterminated string literal")
}

// checkExpectations pairs diagnostics with // want patterns line by line.
func checkExpectations(t *testing.T, mod *lint.Module, diags []lint.Diagnostic) {
	t.Helper()
	wants, err := parseWants(mod)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]lint.Diagnostic)
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		unmatched[k] = append(unmatched[k], d)
	}

	for _, w := range wants {
		k := key{w.file, w.line}
		for _, rx := range w.patterns {
			found := -1
			for i, d := range unmatched[k] {
				if rx.MatchString(d.Analyzer + ": " + d.Message) {
					found = i
					break
				}
			}
			if found < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (have %s)",
					w.file, w.line, rx, describe(unmatched[k]))
				continue
			}
			unmatched[k] = append(unmatched[k][:found], unmatched[k][found+1:]...)
		}
	}

	var leftoverKeys []key
	for k, ds := range unmatched {
		if len(ds) > 0 {
			leftoverKeys = append(leftoverKeys, k)
		}
	}
	sort.Slice(leftoverKeys, func(i, j int) bool {
		if leftoverKeys[i].file != leftoverKeys[j].file {
			return leftoverKeys[i].file < leftoverKeys[j].file
		}
		return leftoverKeys[i].line < leftoverKeys[j].line
	})
	for _, k := range leftoverKeys {
		for _, d := range unmatched[k] {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func describe(ds []lint.Diagnostic) string {
	if len(ds) == 0 {
		return "no diagnostics on this line"
	}
	var parts []string
	for _, d := range ds {
		parts = append(parts, fmt.Sprintf("%s: %s", d.Analyzer, d.Message))
	}
	return strings.Join(parts, "; ")
}
