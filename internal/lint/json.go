package lint

import "go/token"

// JSONDiagnostic is the stable machine-readable form of a Diagnostic, the
// schema cmd/stat4-lint -json emits. Editor integrations and CI annotators
// parse this; field names are part of the tool's interface.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSON converts the diagnostic to its wire form.
func (d Diagnostic) JSON() JSONDiagnostic {
	return JSONDiagnostic{
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Column:   d.Pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// Diagnostic converts the wire form back; the byte offset within the file is
// not part of the schema and comes back zero.
func (j JSONDiagnostic) Diagnostic() Diagnostic {
	return Diagnostic{
		Pos:      token.Position{Filename: j.File, Line: j.Line, Column: j.Column},
		Analyzer: j.Analyzer,
		Message:  j.Message,
	}
}

// ToJSON converts a diagnostic list to its wire form, never nil, so the
// emitted JSON is [] rather than null on a clean run.
func ToJSON(diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, d.JSON())
	}
	return out
}
