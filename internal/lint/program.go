package lint

import (
	"fmt"
	"go/token"

	"stat4/internal/p4"
)

// The program-level passes: unlike the AST analyzers, these run over
// compiled execution plans, not Go source. Positions are pseudo-files named
// program:<case>, since a finding belongs to an emitted program as a whole.
//
// StageBudget and MergeLaw are not part of Analyzers(): there is no
// //stat4:exempt: mechanism for them (exemptions are declared on the Program
// itself, via ExemptMergeWrite and SetMergeWhy), so admitting their names in
// comment directives would create directives nothing honors.

// StageBudget verifies that a program's execution plan places into the
// per-stage budgets of a PISA target model (p4.AllocateStages). A program
// that doesn't fit is one the paper's in-switch deployment claim does not
// cover, however clean its Go rendering is.
var StageBudget = &Analyzer{
	Name: "stagebudget",
	Doc:  "compiled programs must place into the target model's stage and per-stage budgets",
}

// MergeLaw verifies the cross-replica merge discipline of a program's
// registers (p4.CheckMergeLaw): declared kinds, additive-only MergeSum
// writes, and a recompute-or-reason account of every MergeDerived register.
var MergeLaw = &Analyzer{
	Name: "mergelaw",
	Doc:  "register state must declare and obey its cross-replica merge kind",
}

// ProgramAnalyzers lists the program-level passes, for display alongside
// Analyzers().
func ProgramAnalyzers() []*Analyzer {
	return []*Analyzer{StageBudget, MergeLaw}
}

// ProgramCase is one registered program under the program-level passes.
type ProgramCase struct {
	// Name labels diagnostics (the pseudo-file is program:<Name>).
	Name string
	// Prog is the built program.
	Prog *p4.Program
	// Recomputed lists the MergeDerived registers the program's snapshot
	// canonicalizer rebuilds from merged state (see p4.CheckMergeLaw).
	Recomputed []string
}

// RunPrograms executes the program-level passes over every case against one
// target model and returns the findings as diagnostics, in case order.
func RunPrograms(cases []ProgramCase, tm p4.TargetModel) []Diagnostic {
	var out []Diagnostic
	for _, c := range cases {
		pos := token.Position{Filename: "program:" + c.Name}
		report := func(analyzer, msg string) {
			out = append(out, Diagnostic{Pos: pos, Analyzer: analyzer, Message: msg})
		}

		rep, err := p4.AllocateStages(c.Prog, tm)
		switch {
		case err != nil:
			report(StageBudget.Name, fmt.Sprintf("stage allocation failed: %v", err))
		case !rep.Fit:
			report(StageBudget.Name, fmt.Sprintf(
				"needs %d stages of the %d-stage %q target", rep.StagesUsed, tm.Stages, tm.Name))
			for _, v := range rep.Violations {
				report(StageBudget.Name, v)
			}
		}

		for _, f := range p4.CheckMergeLaw(c.Prog, c.Recomputed) {
			report(MergeLaw.Name, f)
		}
	}
	return out
}
