// Package lint statically enforces the switch-feasibility discipline of
// "Stats 101 in P4" on the Go reference implementation: every per-packet
// Stat4 routine must be integer-only, division-free, loop-free, bounded
// straight-line code (Section 2 of the paper). The Go compiler checks none
// of that, so this package turns the paper's constraints into machine-checked
// invariants.
//
// Functions opt in with a //stat4:datapath directive in their doc comment.
// The checker computes the transitive closure of module functions reachable
// from the annotated roots and runs every analyzer over each function in the
// closure:
//
//   - nodivide:    no /, %, or math.Sqrt-family calls (Section 2: "there is
//     no division")
//   - nofloat:     no floating-point types, literals or conversions
//   - boundedloop: no for/range loops, goto, or recursion (call-graph SCC)
//   - nomaprange:  no map iteration (ordering nondeterminism breaks replay)
//   - shiftconst:  shift amounts must be compile-time constants
//   - directive:   the //stat4: directives themselves are well-formed
//
// Exact or host-only routines opt out with //stat4:reference; reaching one
// from the datapath closure is itself an error. Individual constructs that
// are feasible on the target but not expressible as straight-line Go (for
// example a loop over compile-time configuration that the P4 program
// unrolls) carry a //stat4:exempt:<analyzer> directive with a justification.
//
// The package has no dependencies outside the standard library: packages are
// loaded with `go list -export -deps -json`, module sources are type-checked
// with go/types, and external dependencies are imported from compiler export
// data. The cmd/stat4-lint driver runs the suite standalone or as a
// `go vet -vettool` backend.
package lint
