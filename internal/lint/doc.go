// Package lint statically enforces the switch-feasibility discipline of
// "Stats 101 in P4" on the Go reference implementation: every per-packet
// Stat4 routine must be integer-only, division-free, loop-free, bounded,
// allocation-free straight-line code (Section 2 of the paper). The Go
// compiler checks none of that, so this package turns the paper's
// constraints into machine-checked invariants.
//
// Functions opt in with a //stat4:datapath directive in their doc comment.
// The checker computes the transitive closure of module functions reachable
// from the annotated roots and runs every analyzer over each function in the
// closure:
//
//   - nodivide:    no /, %, or math.Sqrt-family calls (Section 2: "there is
//     no division")
//   - nofloat:     no floating-point types, literals or conversions
//   - boundedloop: no for/range loops, goto, or recursion (call-graph SCC)
//   - nomaprange:  no map iteration (ordering nondeterminism breaks replay)
//   - shiftconst:  shift amounts must be compile-time constants
//   - allocfree:   no heap allocation — make/new/append, closures, defer/go,
//     string building, fmt, interface boxing (state is provisioned at
//     compile time; a switch has no per-packet allocator)
//   - directive:   the //stat4: directives themselves are well-formed
//
// One analyzer reasons module-wide rather than per function (via the
// Analyzer.ModuleFunc hook):
//
//   - atomicsafe:  a variable accessed through sync/atomic anywhere must be
//     accessed atomically everywhere, and typed sync/atomic values must
//     never be copied — a half-disciplined cell races under sharding
//
// Two further passes analyze compiled Stat4 programs instead of Go source
// (ProgramAnalyzers / RunPrograms; no //stat4: directive applies to them —
// their exemptions live on the p4.Program API):
//
//   - stagebudget: p4.AllocateStages must place the compiled execution plan
//     within the stage budget of the target model (stages × ALUs, hash
//     units, register actions, tables, SRAM)
//   - mergelaw:    every register declares its MergeKind; MergeSum cells
//     are only mutated additively (flow-sensitive provenance over the
//     action IR); MergeDerived cells are recomputed by canonicalization or
//     documented
//
// Exact or host-only routines opt out with //stat4:reference; reaching one
// from the datapath closure is itself an error. Individual constructs that
// are feasible on the target but not expressible as straight-line Go (for
// example a loop over compile-time configuration that the P4 program
// unrolls) carry a //stat4:exempt:<analyzer> directive with a justification.
//
// The package has no dependencies outside the standard library: packages are
// loaded with `go list -export -deps -json`, module sources are type-checked
// with go/types, and external dependencies are imported from compiler export
// data. The cmd/stat4-lint driver runs the suite standalone or as a
// `go vet -vettool` backend, and emits JSON diagnostics with -json.
package lint
