package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoDivide rejects division and modulo: a P4 ALU has neither (Section 2 of
// the paper — "there is no division" — is the constraint that forces the
// scaled-distribution trick). Calls into the math.Sqrt family are rejected
// too: they are the library calls a division-free square root replaces.
var NoDivide = &Analyzer{
	Name:      "nodivide",
	Doc:       "no /, %, or math.Sqrt-family calls in datapath functions",
	CheckFunc: checkNoDivide,
}

// mathDenied are the math package functions whose work the paper's
// approximations (Figure 2 sqrt, fixed-point log2) exist to replace.
var mathDenied = map[string]bool{
	"Sqrt": true, "Cbrt": true, "Pow": true, "Exp": true, "Exp2": true,
	"Log": true, "Log2": true, "Log10": true, "Hypot": true,
	"Mod": true, "Remainder": true,
}

func checkNoDivide(pass *Pass) {
	info := pass.TypesInfo()
	ast.Inspect(pass.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if (e.Op == token.QUO || e.Op == token.REM) && !isConstExpr(info, e) {
				pass.Reportf(e.OpPos, "%s is not available on a P4 target (Section 2: track N·X so the mean needs no division)", e.Op)
			}
		case *ast.AssignStmt:
			if e.Tok == token.QUO_ASSIGN || e.Tok == token.REM_ASSIGN {
				pass.Reportf(e.TokPos, "%s is not available on a P4 target", e.Tok)
			}
		case *ast.CallExpr:
			if f := calleeFunc(info, e); f != nil && f.Pkg() != nil &&
				f.Pkg().Path() == "math" && mathDenied[f.Name()] {
				pass.Reportf(e.Pos(), "math.%s is floating-point library code; use the intstat approximations instead", f.Name())
			}
		}
		return true
	})
}

// NoFloat rejects floating-point (and complex) types, literals and
// conversions: switch ASICs have integer ALUs only, which is why NetFC-style
// workarounds and this paper's integer statistics exist at all.
var NoFloat = &Analyzer{
	Name:      "nofloat",
	Doc:       "no floating-point types, literals or conversions in datapath functions",
	CheckFunc: checkNoFloat,
}

func checkNoFloat(pass *Pass) {
	info := pass.TypesInfo()

	// The function's own signature: parameters, results, receiver.
	sig := pass.Func.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && isFloaty(recv.Type()) {
		pass.Reportf(pass.Decl.Pos(), "datapath receiver has floating-point type %s", recv.Type())
	}
	for _, tuple := range []*types.Tuple{sig.Params(), sig.Results()} {
		for i := 0; i < tuple.Len(); i++ {
			if v := tuple.At(i); isFloaty(v.Type()) {
				pass.Reportf(pass.Decl.Pos(), "datapath signature uses floating-point type %s", v.Type())
			}
		}
	}

	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...interface{}) {
		if !seen[pos] {
			seen[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	ast.Inspect(pass.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BasicLit:
			if e.Kind == token.FLOAT || e.Kind == token.IMAG {
				report(e.Pos(), "floating-point literal in datapath code")
			}
		case *ast.CallExpr:
			// Conversions to a float type, e.g. float64(x).
			if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && isFloaty(tv.Type) {
				report(e.Pos(), "conversion to floating-point type %s in datapath code", tv.Type)
			}
		case *ast.Ident:
			if obj, ok := info.Defs[e]; ok && obj != nil {
				if v, ok := obj.(*types.Var); ok && isFloaty(v.Type()) {
					report(e.Pos(), "variable %s has floating-point type %s", e.Name, v.Type())
				}
			}
		case *ast.BinaryExpr:
			if tv, ok := info.Types[e]; ok && isFloaty(tv.Type) {
				report(e.OpPos, "floating-point arithmetic in datapath code")
			}
		}
		return true
	})
}

func isFloaty(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// BoundedLoop rejects loops, goto, and (via the call-graph cycle check in
// Run) recursion: per-packet P4 code is straight-line, and the paper rules
// out recirculation. Loops over compile-time configuration that the emitted
// program unrolls carry //stat4:exempt:boundedloop with a justification.
var BoundedLoop = &Analyzer{
	Name:      "boundedloop",
	Doc:       "no for/range loops, goto or recursion in datapath functions",
	CheckFunc: checkBoundedLoop,
}

func checkBoundedLoop(pass *Pass) {
	ast.Inspect(pass.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ForStmt:
			pass.Reportf(e.For, "for loop in datapath code (P4 control flow is straight-line; nested ifs cannot express a loop)")
		case *ast.RangeStmt:
			pass.Reportf(e.For, "range loop in datapath code (P4 control flow is straight-line)")
		case *ast.BranchStmt:
			if e.Tok == token.GOTO {
				pass.Reportf(e.Pos(), "goto in datapath code")
			}
		}
		return true
	})
}

// NoMapRange rejects map iteration even where a loop is otherwise exempted:
// Go randomises map order, so a map range in a per-packet path makes runs
// non-replayable and can never correspond to a deterministic P4 layout.
var NoMapRange = &Analyzer{
	Name:      "nomaprange",
	Doc:       "no map iteration in datapath functions",
	CheckFunc: checkNoMapRange,
}

func checkNoMapRange(pass *Pass) {
	info := pass.TypesInfo()
	ast.Inspect(pass.Decl.Body, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := info.Types[r.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(r.For, "map iteration in datapath code: ordering is nondeterministic, which breaks replayability")
			}
		}
		return true
	})
}

// ShiftConst requires compile-time-constant shift amounts, matching hardware
// barrel shifters: the emitted programs realise data-dependent shifts as the
// Figure 2 nested-if tree whose leaves shift by constants, and Go code that
// cannot do the same must either take that form or carry an exemption
// naming how the target realises it.
var ShiftConst = &Analyzer{
	Name:      "shiftconst",
	Doc:       "shift amounts must be compile-time constants in datapath functions",
	CheckFunc: checkShiftConst,
}

func checkShiftConst(pass *Pass) {
	info := pass.TypesInfo()
	ast.Inspect(pass.Decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.BinaryExpr:
			if (e.Op == token.SHL || e.Op == token.SHR) &&
				!isConstExpr(info, e) && !isConstExpr(info, e.Y) {
				pass.Reportf(e.OpPos, "shift amount %s is not a compile-time constant (P4 targets shift by constants only)", exprText(e.Y))
			}
		case *ast.AssignStmt:
			if (e.Tok == token.SHL_ASSIGN || e.Tok == token.SHR_ASSIGN) &&
				len(e.Rhs) == 1 && !isConstExpr(info, e.Rhs[0]) {
				pass.Reportf(e.TokPos, "shift amount %s is not a compile-time constant", exprText(e.Rhs[0]))
			}
		}
		return true
	})
}

// isConstExpr reports whether the type checker folded e to a constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// exprText renders a short source-like form of simple expressions for
// messages.
func exprText(e ast.Expr) string {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t.Name
	case *ast.BasicLit:
		return t.Value
	case *ast.SelectorExpr:
		return exprText(t.X) + "." + t.Sel.Name
	case *ast.CallExpr:
		return exprText(t.Fun) + "(...)"
	case *ast.BinaryExpr:
		return fmt.Sprintf("%s %s %s", exprText(t.X), t.Op, exprText(t.Y))
	default:
		return "expression"
	}
}
