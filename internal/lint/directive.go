package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// FuncKind classifies a function's //stat4: annotation.
type FuncKind int

// Function annotation kinds.
const (
	KindNone      FuncKind = iota
	KindDatapath           // //stat4:datapath — switch-feasibility enforced
	KindReference          // //stat4:reference — exact/host-only, must not be reached from the datapath
)

// Directive is the pseudo-analyzer validating //stat4: comments themselves:
// a mistyped directive must fail the build, not silently disable a check.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "//stat4: directives are well-formed and correctly placed",
}

// directives is the module-wide index of //stat4: annotations.
type directives struct {
	kinds      map[*ast.FuncDecl]FuncKind
	funcExempt map[*ast.FuncDecl]map[string]bool
	// lineExempt maps filename -> line -> exempted analyzer names. An
	// exemption covers diagnostics on its own line and on the line below,
	// so it works both trailing a statement and on the line above one.
	lineExempt map[string]map[int][]string
	diags      []Diagnostic
}

// collectDirectives scans every comment of every module file. knownAnalyzers
// is the set of names valid after exempt:.
func collectDirectives(mod *Module, knownAnalyzers map[string]bool) *directives {
	d := &directives{
		kinds:      make(map[*ast.FuncDecl]FuncKind),
		funcExempt: make(map[*ast.FuncDecl]map[string]bool),
		lineExempt: make(map[string]map[int][]string),
	}
	for _, pkg := range mod.Pkgs {
		for _, file := range pkg.Files {
			d.collectFile(mod.Fset, file, knownAnalyzers)
		}
	}
	return d
}

func (d *directives) collectFile(fset *token.FileSet, file *ast.File, known map[string]bool) {
	// Map each doc-comment group to its function declaration, so directives
	// found there can be attached (and directives elsewhere rejected).
	funcDoc := make(map[*ast.CommentGroup]*ast.FuncDecl)
	var otherDoc []*ast.CommentGroup // docs of non-function declarations
	for _, decl := range file.Decls {
		switch dd := decl.(type) {
		case *ast.FuncDecl:
			if dd.Doc != nil {
				funcDoc[dd.Doc] = dd
			}
		case *ast.GenDecl:
			if dd.Doc != nil {
				otherDoc = append(otherDoc, dd.Doc)
			}
		}
	}
	isOtherDoc := func(g *ast.CommentGroup) bool {
		for _, og := range otherDoc {
			if og == g {
				return true
			}
		}
		return false
	}

	for _, group := range file.Comments {
		decl := funcDoc[group]
		for _, c := range group.List {
			body, ok := trimDirective(c.Text)
			if !ok {
				continue
			}
			d.parseOne(fset, c, body, decl, isOtherDoc(group), known)
		}
	}
}

// parseOne handles a single //stat4:<verb>[ reason] comment. decl is non-nil
// when the comment sits in a function's doc group.
func (d *directives) parseOne(fset *token.FileSet, c *ast.Comment, body string, decl *ast.FuncDecl, onOtherDecl bool, known map[string]bool) {
	verb := body
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		verb = body[:i]
	}
	switch {
	case verb == "datapath", verb == "reference":
		if decl == nil {
			where := "a function declaration"
			if onOtherDecl {
				where = "a function declaration, not another kind of declaration"
			}
			d.errorf(fset, c.Pos(), "//stat4:%s must appear in the doc comment of %s", verb, where)
			return
		}
		kind := KindDatapath
		if verb == "reference" {
			kind = KindReference
		}
		if prev, ok := d.kinds[decl]; ok && prev != kind {
			d.errorf(fset, c.Pos(), "function %s is marked both //stat4:datapath and //stat4:reference", funcName(decl))
			return
		}
		d.kinds[decl] = kind
	case verb == "exempt" || strings.HasPrefix(verb, "exempt:"):
		name := strings.TrimPrefix(verb, "exempt:")
		if name == "" || name == "exempt" {
			d.errorf(fset, c.Pos(), "//stat4:exempt needs an analyzer name: //stat4:exempt:<analyzer> <reason>")
			return
		}
		if !known[name] {
			d.errorf(fset, c.Pos(), "//stat4:exempt:%s names an unknown analyzer", name)
			return
		}
		if name == Directive.Name {
			d.errorf(fset, c.Pos(), "the directive check cannot be exempted")
			return
		}
		if decl != nil {
			// In a function's doc comment: exempts the whole function
			// from that analyzer.
			if d.funcExempt[decl] == nil {
				d.funcExempt[decl] = make(map[string]bool)
			}
			d.funcExempt[decl][name] = true
			return
		}
		pos := fset.Position(c.Pos())
		if d.lineExempt[pos.Filename] == nil {
			d.lineExempt[pos.Filename] = make(map[int][]string)
		}
		d.lineExempt[pos.Filename][pos.Line] = append(d.lineExempt[pos.Filename][pos.Line], name)
	default:
		d.errorf(fset, c.Pos(), "unknown //stat4: directive %q (want datapath, reference or exempt:<analyzer>)", verb)
	}
}

func (d *directives) errorf(fset *token.FileSet, pos token.Pos, format string, args ...interface{}) {
	d.diags = append(d.diags, Diagnostic{
		Pos:      fset.Position(pos),
		Analyzer: Directive.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// exempted reports whether a diagnostic from analyzer at pos inside decl is
// covered by an exemption directive.
func (d *directives) exempted(fset *token.FileSet, analyzer string, decl *ast.FuncDecl, pos token.Pos) bool {
	if decl != nil && d.funcExempt[decl][analyzer] {
		return true
	}
	p := fset.Position(pos)
	lines := d.lineExempt[p.Filename]
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

func funcName(decl *ast.FuncDecl) string {
	if decl.Recv != nil && len(decl.Recv.List) == 1 {
		return fmt.Sprintf("(%s).%s", typeText(decl.Recv.List[0].Type), decl.Name.Name)
	}
	return decl.Name.Name
}

func typeText(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeText(t.X)
	case *ast.IndexExpr:
		return typeText(t.X)
	default:
		return "?"
	}
}

// kindOf returns decl's annotation.
func (d *directives) kindOf(decl *ast.FuncDecl) FuncKind { return d.kinds[decl] }
