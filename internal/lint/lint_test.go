package lint_test

import (
	"encoding/json"
	"testing"

	"stat4/internal/lint"
	"stat4/internal/lint/linttest"
)

// Each fixture package under testdata/src declares its expected diagnostics
// in // want comments; the full analyzer suite runs over every fixture so
// cross-analyzer interactions (like the nomaprange/boundedloop precedence)
// are covered too.

func TestNoDivide(t *testing.T) {
	linttest.Run(t, "testdata/src", "nodivide", lint.Analyzers())
}

func TestNoFloat(t *testing.T) {
	linttest.Run(t, "testdata/src", "nofloat", lint.Analyzers())
}

func TestBoundedLoop(t *testing.T) {
	linttest.Run(t, "testdata/src", "boundedloop", lint.Analyzers())
}

func TestNoMapRange(t *testing.T) {
	linttest.Run(t, "testdata/src", "nomaprange", lint.Analyzers())
}

func TestShiftConst(t *testing.T) {
	linttest.Run(t, "testdata/src", "shiftconst", lint.Analyzers())
}

func TestAllocFree(t *testing.T) {
	linttest.Run(t, "testdata/src", "allocfree", lint.Analyzers())
}

func TestAtomicSafe(t *testing.T) {
	linttest.Run(t, "testdata/src", "atomicsafe", lint.Analyzers())
}

func TestDirectiveValidation(t *testing.T) {
	linttest.Run(t, "testdata/src", "directive", lint.Analyzers())
}

func TestClosureCrossesPackages(t *testing.T) {
	linttest.Run(t, "testdata/src", "closure", lint.Analyzers())
}

// TestDiagnosticOrder pins that diagnostics come out sorted by position, so
// tool output and CI logs are stable run to run.
func TestDiagnosticOrder(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata/src", "boundedloop", lint.Analyzers())
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s after %s", diags[i], diags[i-1])
		}
	}
}

// TestJSONRoundTrip pins the -json wire schema: a diagnostic survives
// marshal → unmarshal → Diagnostic with its position, analyzer and message
// intact (only the byte offset, which is not part of the schema, is lost).
func TestJSONRoundTrip(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata/src", "allocfree", lint.Analyzers())
	if len(diags) == 0 {
		t.Fatal("allocfree fixture produced no diagnostics to round-trip")
	}
	data, err := json.Marshal(lint.ToJSON(diags))
	if err != nil {
		t.Fatal(err)
	}
	var wire []lint.JSONDiagnostic
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if len(wire) != len(diags) {
		t.Fatalf("round trip changed count: %d -> %d", len(diags), len(wire))
	}
	for i, j := range wire {
		got, want := j.Diagnostic(), diags[i]
		if got.String() != want.String() || got.Analyzer != want.Analyzer {
			t.Errorf("diagnostic %d changed:\n got %s\nwant %s", i, got, want)
		}
	}
	if out, err := json.Marshal(lint.ToJSON(nil)); err != nil || string(out) != "[]" {
		t.Errorf("clean run must emit [], got %s (%v)", out, err)
	}
}

// TestAnalyzerNamesStable pins the exemption namespace: renaming an analyzer
// silently invalidates every //stat4:exempt:<name> comment in the tree, so a
// rename must be deliberate.
func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"nodivide", "nofloat", "boundedloop", "nomaprange", "shiftconst", "allocfree", "atomicsafe", "directive"}
	names := lint.AnalyzerNames()
	if len(names) != len(want) {
		t.Fatalf("analyzer set changed: got %v", names)
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("analyzer %q missing from suite", n)
		}
	}
}
