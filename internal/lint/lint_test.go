package lint_test

import (
	"testing"

	"stat4/internal/lint"
	"stat4/internal/lint/linttest"
)

// Each fixture package under testdata/src declares its expected diagnostics
// in // want comments; the full analyzer suite runs over every fixture so
// cross-analyzer interactions (like the nomaprange/boundedloop precedence)
// are covered too.

func TestNoDivide(t *testing.T) {
	linttest.Run(t, "testdata/src", "nodivide", lint.Analyzers())
}

func TestNoFloat(t *testing.T) {
	linttest.Run(t, "testdata/src", "nofloat", lint.Analyzers())
}

func TestBoundedLoop(t *testing.T) {
	linttest.Run(t, "testdata/src", "boundedloop", lint.Analyzers())
}

func TestNoMapRange(t *testing.T) {
	linttest.Run(t, "testdata/src", "nomaprange", lint.Analyzers())
}

func TestShiftConst(t *testing.T) {
	linttest.Run(t, "testdata/src", "shiftconst", lint.Analyzers())
}

func TestDirectiveValidation(t *testing.T) {
	linttest.Run(t, "testdata/src", "directive", lint.Analyzers())
}

func TestClosureCrossesPackages(t *testing.T) {
	linttest.Run(t, "testdata/src", "closure", lint.Analyzers())
}

// TestDiagnosticOrder pins that diagnostics come out sorted by position, so
// tool output and CI logs are stable run to run.
func TestDiagnosticOrder(t *testing.T) {
	diags := linttest.Diagnostics(t, "testdata/src", "boundedloop", lint.Analyzers())
	if len(diags) < 2 {
		t.Fatalf("expected several diagnostics, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Fatalf("diagnostics out of order: %s after %s", diags[i], diags[i-1])
		}
	}
}

// TestAnalyzerNamesStable pins the exemption namespace: renaming an analyzer
// silently invalidates every //stat4:exempt:<name> comment in the tree, so a
// rename must be deliberate.
func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"nodivide", "nofloat", "boundedloop", "nomaprange", "shiftconst", "directive"}
	names := lint.AnalyzerNames()
	if len(names) != len(want) {
		t.Fatalf("analyzer set changed: got %v", names)
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("analyzer %q missing from suite", n)
		}
	}
}
