package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one switch-feasibility check. CheckFunc is invoked once per
// function in the datapath closure; it walks the function body and reports
// violations through the Pass. ModuleFunc is invoked once per Run with the
// whole module in view, for properties that live across functions and
// packages (an analyzer may define either or both; both may be nil for
// analyzers whose diagnostics come from the framework itself).
type Analyzer struct {
	Name string
	Doc  string
	// CheckFunc inspects one datapath function.
	CheckFunc func(pass *Pass)
	// ModuleFunc inspects the whole module at once.
	ModuleFunc func(pass *ModulePass)
}

// Analyzers is the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDivide,
		NoFloat,
		BoundedLoop,
		NoMapRange,
		ShiftConst,
		AllocFree,
		AtomicSafe,
		Directive,
	}
}

// AnalyzerNames returns the set of analyzer names valid in
// //stat4:exempt:<name> directives.
func AnalyzerNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way compilers do.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries the state one analyzer sees while checking one function of
// the datapath closure.
type Pass struct {
	Analyzer *Analyzer
	Mod      *Module
	Pkg      *Package
	// Decl is the function under check and Func its type-checker object.
	Decl *ast.FuncDecl
	Func *types.Func

	run *run
}

// TypesInfo returns the type information of the function's package.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos unless an exemption covers it: a
// //stat4:exempt:<analyzer> in the function's doc comment, or one on the
// same line as pos or the line directly above it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.run.reportf(p.Analyzer.Name, p.Decl, pos, format, args...)
}

// ModulePass carries the state a module-level analyzer sees: the whole
// loaded module, not one closure function.
type ModulePass struct {
	Analyzer *Analyzer
	Mod      *Module

	run *run
}

// Reportf records a diagnostic at pos in pkg. Exemptions work as for
// Pass.Reportf; the enclosing function declaration (if any) is located so
// doc-comment exemptions apply to module-level findings too.
func (p *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...interface{}) {
	p.run.reportf(p.Analyzer.Name, enclosingFuncDecl(pkg, pos), pos, format, args...)
}

// enclosingFuncDecl finds the function declaration containing pos, or nil.
func enclosingFuncDecl(pkg *Package, pos token.Pos) *ast.FuncDecl {
	file := fileOf(pkg, pos)
	if file == nil {
		return nil
	}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// run is the mutable state of one Run invocation.
type run struct {
	mod   *Module
	dirs  *directives
	diags []Diagnostic
}

func (r *run) reportf(analyzer string, decl *ast.FuncDecl, pos token.Pos, format string, args ...interface{}) {
	if r.dirs.exempted(r.mod.Fset, analyzer, decl, pos) {
		return
	}
	r.diags = append(r.diags, Diagnostic{
		Pos:      r.mod.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzer suite over a loaded module and returns the
// diagnostics sorted by position.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	r := &run{mod: mod}
	r.dirs = collectDirectives(mod, AnalyzerNames())

	// Directive well-formedness diagnostics are unconditional: a broken
	// directive must never silently disable a check.
	r.diags = append(r.diags, r.dirs.diags...)

	graph := buildCallGraph(mod)
	closure := graph.datapathClosure(r)

	// Recursion: any closure function in a call cycle is unbounded.
	for _, t := range graph.cycleMembers(closure) {
		r.reportf(BoundedLoop.Name, t.decl, t.decl.Pos(),
			"datapath function %s participates in a call cycle (recursion is not implementable on a P4 target)",
			t.obj.Name())
	}

	for _, t := range closure {
		for _, a := range analyzers {
			if a.CheckFunc == nil {
				continue
			}
			a.CheckFunc(&Pass{
				Analyzer: a,
				Mod:      mod,
				Pkg:      t.pkg,
				Decl:     t.decl,
				Func:     t.obj,
				run:      r,
			})
		}
	}

	for _, a := range analyzers {
		if a.ModuleFunc == nil {
			continue
		}
		a.ModuleFunc(&ModulePass{Analyzer: a, Mod: mod, run: r})
	}

	sort.Slice(r.diags, func(i, j int) bool {
		a, b := r.diags[i], r.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return r.diags
}
