package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicSafe enforces atomic access discipline across the whole module: a
// variable that any code accesses through sync/atomic must be accessed
// through sync/atomic everywhere. Mixing atomic and plain access is a data
// race the race detector only catches when both sides happen to run — the
// sharded datapath, the netem engine and the controller all share counters
// across goroutines, so one plain fast-path read silently loses the
// guarantee every other access site pays for.
//
// Two facts feed the check, gathered module-wide before any reporting:
//
//   - address-taken facts: a variable passed as &v to a function-style
//     sync/atomic call (atomic.AddUint64(&v, 1), ...) anywhere makes every
//     plain read or write of v elsewhere a finding;
//   - typed-atomic copies: a value of a sync/atomic type (atomic.Uint64,
//     atomic.Bool, ...) that appears in a copying position — assignment
//     source, call argument, return value, composite-literal element —
//     detaches the copy from the shared cell, so the copy is reported.
//
// Unlike the datapath analyzers this one runs over every module function:
// atomic discipline is a host-side concurrency law, not a switch-feasibility
// law. Deliberate pre-publication initialisation carries
// //stat4:exempt:atomicsafe with a justification.
var AtomicSafe = &Analyzer{
	Name:       "atomicsafe",
	Doc:        "variables accessed via sync/atomic must be accessed atomically everywhere",
	ModuleFunc: checkAtomicSafe,
}

// atomicFact records why a variable is under atomic discipline: the first
// sync/atomic call site that takes its address.
type atomicFact struct {
	call token.Pos
	fn   string // the sync/atomic function used there, for the message
}

func checkAtomicSafe(pass *ModulePass) {
	atomicVars := make(map[*types.Var]atomicFact)
	sanctioned := make(map[ast.Expr]bool) // &v operands inside atomic calls

	// Phase 1: collect address-taken facts module-wide.
	for _, pkg := range pass.Mod.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pkg.Info, call)
				if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
					return true
				}
				if f.Type().(*types.Signature).Recv() != nil {
					return true // method on a typed atomic: safe by construction
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					operand := ast.Unparen(u.X)
					v := varOf(pkg.Info, operand)
					if v == nil {
						continue
					}
					sanctioned[operand] = true
					if _, have := atomicVars[v]; !have {
						atomicVars[v] = atomicFact{call: call.Pos(), fn: f.Name()}
					}
				}
				return true
			})
		}
	}

	// Phase 2: report plain accesses to those variables, and copies of
	// typed atomics, everywhere in the module.
	for _, pkg := range pass.Mod.Pkgs {
		for _, file := range pkg.Files {
			reportPlainAccesses(pass, pkg, file, atomicVars, sanctioned)
			reportAtomicCopies(pass, pkg, file)
		}
	}
}

// varOf resolves the variable an identifier or field selector denotes.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
			return nil
		}
		// Package-qualified variable: pkg.V.
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// reportPlainAccesses flags every read or write of an atomic-disciplined
// variable that does not go through sync/atomic.
func reportPlainAccesses(pass *ModulePass, pkg *Package, file *ast.File, atomicVars map[*types.Var]atomicFact, sanctioned map[ast.Expr]bool) {
	if len(atomicVars) == 0 {
		return
	}
	skipKeys := make(map[*ast.Ident]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.KeyValueExpr:
			// A bare identifier key in a composite literal names the field;
			// it is part of the literal's shape, not an access.
			if id, ok := e.Key.(*ast.Ident); ok {
				skipKeys[id] = true
			}
			return true
		case *ast.Ident:
			if skipKeys[e] {
				return true
			}
			if v, ok := pkg.Info.Uses[e].(*types.Var); ok {
				if fact, hot := atomicVars[v]; hot && !sanctioned[e] {
					reportMixed(pass, pkg, e.Pos(), v, fact)
				}
			}
			return true
		case *ast.SelectorExpr:
			if sanctioned[e] {
				return false // the &v operand of an atomic call
			}
			if v := varOf(pkg.Info, e); v != nil {
				if fact, hot := atomicVars[v]; hot {
					reportMixed(pass, pkg, e.Sel.Pos(), v, fact)
					return false // don't re-flag through the nested ident
				}
			}
			return true
		}
		return true
	})
}

func reportMixed(pass *ModulePass, pkg *Package, pos token.Pos, v *types.Var, fact atomicFact) {
	site := pass.Mod.Fset.Position(fact.call)
	pass.Reportf(pkg, pos,
		"%s is accessed with atomic.%s at %s; this plain access races with it (use sync/atomic everywhere or nowhere)",
		v.Name(), fact.fn, site)
}

// reportAtomicCopies flags values of sync/atomic types appearing in copying
// positions. A copied atomic detaches from the cell the rest of the program
// synchronises on.
func reportAtomicCopies(pass *ModulePass, pkg *Package, file *ast.File) {
	checkCopy := func(e ast.Expr, what string) {
		tv, ok := pkg.Info.Types[ast.Unparen(e)]
		if !ok || tv.Type == nil || !isAtomicType(tv.Type) {
			return
		}
		pass.Reportf(pkg, e.Pos(),
			"%s copies a %s value; the copy detaches from the cell other goroutines synchronise on",
			what, tv.Type)
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range e.Rhs {
				checkCopy(rhs, "assignment")
			}
		case *ast.ValueSpec:
			for _, v := range e.Values {
				checkCopy(v, "declaration")
			}
		case *ast.CallExpr:
			if tv, ok := pkg.Info.Types[e.Fun]; ok && tv.IsType() {
				return true // conversion, not a call
			}
			for _, arg := range e.Args {
				checkCopy(arg, "call argument")
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				checkCopy(r, "return")
			}
		case *ast.KeyValueExpr:
			checkCopy(e.Value, "composite literal")
		}
		return true
	})
}

// isAtomicType reports whether t is one of sync/atomic's value types
// (atomic.Uint64, atomic.Bool, atomic.Value, atomic.Pointer[T], ...).
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
