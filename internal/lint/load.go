package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package under analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the set of packages the checker sees: the module's own packages
// loaded from source (analyzable) plus export-data imports for everything
// else (opaque).
type Module struct {
	Fset *token.FileSet
	Pkgs []*Package // dependency order: callees before callers
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// LoadModule loads the packages matched by patterns (and their in-module
// dependencies) from source, type-checking them against compiler export data
// for out-of-module imports. dir is the working directory for `go list`
// (typically the module root; "" uses the process working directory).
func LoadModule(dir string, patterns ...string) (*Module, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, stderr.String())
	}

	var sourcePkgs []*listedPackage
	exports := make(map[string]string) // import path -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if !p.Standard && p.Module != nil {
			// In-module package: analyze from source. `go list -deps`
			// emits dependencies before dependents, so processing in
			// order sees every callee before its callers.
			sourcePkgs = append(sourcePkgs, &p)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	mod := &Module{Fset: fset}
	byPath := make(map[string]*Package)
	imp := &moduleImporter{
		source: byPath,
		binary: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	for _, lp := range sourcePkgs {
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		byPath[lp.ImportPath] = pkg
		mod.Pkgs = append(mod.Pkgs, pkg)
	}
	return mod, nil
}

// typeCheck parses and type-checks one package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, path, dir string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	cfg := &types.Config{Importer: imp}
	tpkg, err := cfg.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Files: files, Types: tpkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// moduleImporter resolves in-module imports to source-checked packages and
// everything else through compiler export data.
type moduleImporter struct {
	source map[string]*Package
	binary types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.source[path]; ok {
		return p.Types, nil
	}
	return m.binary.Import(path)
}

// inModule reports whether obj is declared in one of the module's
// source-loaded packages.
func (mod *Module) inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	for _, p := range mod.Pkgs {
		if p.Types == pkg {
			return true
		}
	}
	return false
}

// fileOf returns the *ast.File containing pos within pkg, or nil.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// trimDirective strips the comment marker from a //stat4: comment.
func trimDirective(text string) (string, bool) {
	if !strings.HasPrefix(text, "//stat4:") {
		return "", false
	}
	return strings.TrimPrefix(text, "//stat4:"), true
}
