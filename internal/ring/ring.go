package ring

import (
	"fmt"
	"sync/atomic"
)

// Desc is one frame-batch descriptor, the unit both ring flavours carry:
// a Slab block handle, the number of frame records in the block, and a
// producer-assigned sequence number. Producers that hand off batches living
// outside a Slab (the sharded switch's partition arrays) use Block/N as they
// see fit and synchronise on Seq alone.
type Desc struct {
	Block uint32
	N     uint32
	Seq   uint64
}

// cacheLine separates the producer- and consumer-owned index words so the
// two sides never false-share: each index (plus the peer-index cache next to
// it) gets its own line.
const cacheLine = 64

// SPSC is a bounded single-producer single-consumer ring. Pushing is one
// plain slot store and one atomic index store; popping mirrors it. The
// capacity is rounded up to a power of two so positions wrap with a mask.
//
// Exactly one goroutine may push and one may pop; the two may differ and
// need no other synchronisation.
type SPSC struct {
	slots []Desc
	mask  uint64

	_     [cacheLine]byte
	tail  atomic.Uint64 // next push position (producer-owned)
	phead uint64        // producer's cached view of head
	_     [cacheLine - 16]byte
	head  atomic.Uint64 // next pop position (consumer-owned)
	ctail uint64        // consumer's cached view of tail
	_     [cacheLine - 16]byte
}

// NewSPSC returns an empty ring holding at least capacity descriptors
// (rounded up to a power of two).
func NewSPSC(capacity int) *SPSC {
	n := nextPow2(capacity)
	return &SPSC{slots: make([]Desc, n), mask: uint64(n - 1)}
}

// TryPush appends d, or reports a full ring without blocking — the producer
// sheds and counts instead of stalling. The peer's index is re-read only
// when the cached view says full, so a steady-state push costs one atomic
// load, one slot store and one atomic store.
//
//stat4:datapath
func (r *SPSC) TryPush(d Desc) bool {
	t := r.tail.Load()
	if t-r.phead == uint64(len(r.slots)) {
		r.phead = r.head.Load()
		if t-r.phead == uint64(len(r.slots)) {
			return false
		}
	}
	r.slots[t&r.mask] = d
	r.tail.Store(t + 1)
	return true
}

// TryPop moves the oldest descriptor into d, or reports an empty ring.
//
//stat4:datapath
func (r *SPSC) TryPop(d *Desc) bool {
	h := r.head.Load()
	if h == r.ctail {
		r.ctail = r.tail.Load()
		if h == r.ctail {
			return false
		}
	}
	*d = r.slots[h&r.mask]
	r.head.Store(h + 1)
	return true
}

// Len returns the current occupancy. It is exact for the producer and the
// consumer and a consistent snapshot for anyone else (a metrics scrape).
//
//stat4:datapath
func (r *SPSC) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap returns the (rounded-up) capacity.
func (r *SPSC) Cap() int { return len(r.slots) }

// mpscSlot pairs a descriptor with its Vyukov sequence word. The sequence
// both hands a claimed slot from producer to consumer and detects full/empty
// without a shared count: seq == pos means free for the push at pos, seq ==
// pos+1 means readable by the pop at pos.
type mpscSlot struct {
	seq atomic.Uint64
	d   Desc
	_   [cacheLine - 8 - 16]byte
}

// MPSC is a bounded multi-producer single-consumer ring (Vyukov's bounded
// queue with the consumer side single-threaded). Any number of goroutines
// may push concurrently; exactly one may pop.
type MPSC struct {
	slots []mpscSlot
	mask  uint64

	_    [cacheLine]byte
	tail atomic.Uint64 // next claim position (shared by producers)
	_    [cacheLine - 8]byte
	head atomic.Uint64 // next pop position (consumer-owned)
	_    [cacheLine - 8]byte
}

// NewMPSC returns an empty ring holding at least capacity descriptors
// (rounded up to a power of two).
func NewMPSC(capacity int) *MPSC {
	n := nextPow2(capacity)
	r := &MPSC{slots: make([]mpscSlot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// TryPush claims a slot with a CAS on the tail index, stores d and publishes
// it through the slot's sequence word. A full ring returns false without
// blocking.
//
//stat4:datapath
//stat4:exempt:boundedloop the claim loop re-runs only when another producer wins the tail CAS first; each iteration is one load-compare-CAS, the arbitration a multi-ingress chip does in silicon
func (r *MPSC) TryPush(d Desc) bool {
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		if seq == pos {
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.d = d
				s.seq.Store(pos + 1)
				return true
			}
			pos = r.tail.Load()
			continue
		}
		if seq < pos {
			// The slot still holds the entry from one lap ago: full.
			return false
		}
		// Another producer claimed pos; reload and retry.
		pos = r.tail.Load()
	}
}

// TryPop moves the oldest descriptor into d, or reports an empty ring. Only
// the single consumer may call it.
//
//stat4:datapath
func (r *MPSC) TryPop(d *Desc) bool {
	h := r.head.Load()
	s := &r.slots[h&r.mask]
	if s.seq.Load() != h+1 {
		return false
	}
	*d = s.d
	s.seq.Store(h + uint64(len(r.slots)))
	r.head.Store(h + 1)
	return true
}

// Len returns the current occupancy (a consistent snapshot; exact only when
// producers are quiet).
//
//stat4:datapath
func (r *MPSC) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Cap returns the (rounded-up) capacity.
func (r *MPSC) Cap() int { return len(r.slots) }

// nextPow2 rounds capacity up to a power of two (minimum 2, so a ring can
// always hold one in-flight batch plus a close token).
func nextPow2(capacity int) int {
	if capacity > 1<<30 {
		panic(fmt.Sprintf("ring: capacity %d too large", capacity))
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	return n
}
