package ring

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Slab is the pooled flat buffer the rings' descriptors point into: nblocks
// fixed-size blocks carved from one allocation, with a lock-free free list
// (Treiber stack over block indices, ABA-guarded by a tag in the high bits
// of the packed head word). Producers TryAcquire concurrently; whoever holds
// a block Releases it — there are no other states.
type Slab struct {
	blockSize int
	data      []byte
	// next holds the free-list links (idx+1, 0 terminates). Links are
	// atomic because a CAS loser in TryAcquire may read a link the block's
	// new holder is already rewriting for a Release; the stale value is
	// discarded when its CAS fails, but the access itself must not race.
	next []atomic.Uint32

	head  atomic.Uint64 // packed: tag<<32 | (idx+1); low word 0 == empty
	inUse atomic.Int64
}

// NewSlab returns a slab of nblocks blocks of blockSize bytes, all free.
func NewSlab(nblocks, blockSize int) *Slab {
	if nblocks <= 0 || nblocks >= 1<<31 || blockSize <= 0 {
		panic(fmt.Sprintf("ring: bad slab geometry %d x %d", nblocks, blockSize))
	}
	s := &Slab{
		blockSize: blockSize,
		data:      make([]byte, nblocks*blockSize),
		next:      make([]atomic.Uint32, nblocks),
	}
	// Chain 0 -> 1 -> ... -> nblocks-1 and point the head at block 0.
	for i := 0; i < nblocks-1; i++ {
		s.next[i].Store(uint32(i + 2))
	}
	s.head.Store(1)
	return s
}

// TryAcquire pops a free block handle, or reports slab exhaustion — the
// producer sheds frames (counting them) until the consumer releases blocks.
//
//stat4:datapath
//stat4:exempt:boundedloop the pop loop re-runs only when another producer wins the head CAS first; each iteration is one load-CAS
func (s *Slab) TryAcquire() (uint32, bool) {
	for {
		h := s.head.Load()
		enc := uint32(h)
		if enc == 0 {
			return 0, false
		}
		idx := enc - 1
		// The link read is ordered after the head load and revalidated by
		// the CAS; the tag in the high bits makes a recycled head value
		// (pop, repush of the same block) fail the CAS.
		nxt := s.next[idx].Load()
		if s.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(nxt)) {
			s.inUse.Add(1)
			return idx, true
		}
	}
}

// Release pushes a block handle back on the free list. Only the current
// holder (the producer on a failed push, the consumer after draining the
// batch) may call it.
//
//stat4:datapath
//stat4:exempt:boundedloop the push loop re-runs only when another holder wins the head CAS first; each iteration is one store-CAS
func (s *Slab) Release(idx uint32) {
	for {
		h := s.head.Load()
		s.next[idx].Store(uint32(h))
		if s.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(idx+1)) {
			s.inUse.Add(-1)
			return
		}
	}
}

// Bytes returns block idx's full storage. The holder slices it as scratch;
// batch producers normally go through AppendFrame on Bytes(idx)[:0].
//
//stat4:datapath
func (s *Slab) Bytes(idx uint32) []byte {
	off := int(idx) * s.blockSize
	return s.data[off : off+s.blockSize]
}

// BlockSize returns the per-block capacity in bytes.
func (s *Slab) BlockSize() int { return s.blockSize }

// Blocks returns the block count.
func (s *Slab) Blocks() int { return len(s.next) }

// InUse returns how many blocks are currently acquired — the occupancy
// gauge next to the ring depth.
func (s *Slab) InUse() uint64 {
	n := s.inUse.Load()
	if n < 0 {
		return 0
	}
	return uint64(n)
}

// Frame records inside a block: 8-byte timestamp, 2-byte ingress port,
// 4-byte frame length, then the frame bytes, little-endian, back to back.
// The same layout is the daemon's wire protocol, so a socket reader can
// validate a header and copy the frame straight into a block.
const (
	// FrameHdrLen is the per-frame record header size.
	FrameHdrLen = 14
	// MaxFrameLen bounds a single frame record's payload; longer frames are
	// malformed input, not jumbo traffic.
	MaxFrameLen = 1 << 16
)

// AppendFrame appends one frame record to buf without growing it past its
// capacity: the bool reports whether the record fit. Producers flush the
// current block and acquire a fresh one when it stops fitting.
//
//stat4:datapath
func AppendFrame(buf []byte, tsNs uint64, port uint16, frame []byte) ([]byte, bool) {
	need := FrameHdrLen + len(frame)
	n := len(buf)
	if cap(buf)-n < need {
		return buf, false
	}
	buf = buf[:n+need]
	binary.LittleEndian.PutUint64(buf[n:], tsNs)
	binary.LittleEndian.PutUint16(buf[n+8:], port)
	binary.LittleEndian.PutUint32(buf[n+10:], uint32(len(frame)))
	copy(buf[n+FrameHdrLen:], frame)
	return buf, true
}

// FrameIter walks the frame records of one block. The yielded frame slices
// alias the block: they are valid until the block is Released.
type FrameIter struct {
	buf []byte
	n   uint32
}

// NewFrameIter returns an iterator over the first n records of a produced
// block prefix (the Desc's N over the block bytes the producer filled).
func NewFrameIter(buf []byte, n uint32) FrameIter {
	return FrameIter{buf: buf, n: n}
}

// Next yields the next record. A truncated or oversized record ends the
// iteration early (ok == false) rather than slicing out of bounds.
//
//stat4:datapath
func (it *FrameIter) Next() (tsNs uint64, port uint16, frame []byte, ok bool) {
	if it.n == 0 || len(it.buf) < FrameHdrLen {
		return 0, 0, nil, false
	}
	ln := binary.LittleEndian.Uint32(it.buf[10:14])
	if ln > MaxFrameLen || int(ln) > len(it.buf)-FrameHdrLen {
		it.n = 0
		return 0, 0, nil, false
	}
	tsNs = binary.LittleEndian.Uint64(it.buf[0:8])
	port = binary.LittleEndian.Uint16(it.buf[8:10])
	frame = it.buf[FrameHdrLen : FrameHdrLen+int(ln) : FrameHdrLen+int(ln)]
	it.buf = it.buf[FrameHdrLen+int(ln):]
	it.n--
	return tsNs, port, frame, true
}

// Remaining returns how many records Next has yet to yield (assuming none
// are malformed).
func (it *FrameIter) Remaining() uint32 { return it.n }
