// Package ring is the lock-free ingest plane: bounded, power-of-two batch
// rings (single-producer SPSC for the shard handoff, multi-producer MPSC for
// daemon fan-in) carrying frame-batch descriptors over a pooled flat buffer
// slab, plus the spin-then-park consumer glue.
//
// The design splits "which frames" from "the frame bytes". A producer
// acquires a fixed-size block from a Slab, appends length-prefixed frame
// records to it (AppendFrame), and publishes a Desc — block handle, frame
// count, sequence number — through a ring. The consumer walks the block with
// a FrameIter and releases it when done. No descriptor or frame ever touches
// a Go channel or the heap: pushing is an index CAS (MPSC) or a store
// (SPSC), and the block bytes live in one flat allocation made at
// construction.
//
// Backpressure contract: TryPush never blocks. A full ring returns false and
// the producer sheds the batch — releasing its block and counting the drop —
// rather than stalling the source or queueing unboundedly, the "Lean
// Algorithms" overload posture. Symmetrically TryPop returns false on an
// empty ring; consumers that want to sleep pair the ring with a Parker
// (spin, then park; producers call Unpark after a push, which is a single
// atomic load while the consumer is running).
//
// Frame-buffer ownership rules (mirroring the netem deliver-callback
// contract): a block belongs to the producer from TryAcquire until its Desc
// is pushed, then to the consumer until Release. Frame slices yielded by
// FrameIter alias the block and die with the Release. A producer whose push
// fails still owns the block and must Release (or reuse) it.
package ring
