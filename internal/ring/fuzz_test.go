package ring

import "testing"

// FuzzRingFIFO drives both ring flavours through an arbitrary push/pop
// schedule against a plain slice model: every accepted push must come back
// out exactly once, in order, and full/empty refusals must match the
// model's occupancy. Byte n of the input decides operation n (low bit:
// push/pop; remaining bits salt the pushed value), so the fuzzer explores
// wrap-around and full/empty boundaries at every offset.
func FuzzRingFIFO(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 1, 1})
	f.Add([]byte{0, 2, 4, 6, 1, 3, 5, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		spsc := NewSPSC(4)
		mpsc := NewMPSC(4)
		var model []Desc
		seq := uint64(0)
		var d Desc
		for i, op := range ops {
			if op&1 == 0 {
				want := len(model) < spsc.Cap()
				push := Desc{Seq: seq, Block: uint32(op), N: uint32(i)}
				gotS := spsc.TryPush(push)
				gotM := mpsc.TryPush(push)
				if gotS != want || gotM != want {
					t.Fatalf("op %d: push accepted (spsc=%v, mpsc=%v), want %v at occupancy %d",
						i, gotS, gotM, want, len(model))
				}
				if want {
					model = append(model, push)
					seq++
				}
			} else {
				want := len(model) > 0
				gotS := spsc.TryPop(&d)
				if gotS != want {
					t.Fatalf("op %d: spsc pop ok=%v, want %v at occupancy %d", i, gotS, want, len(model))
				}
				if want && d != model[0] {
					t.Fatalf("op %d: spsc popped %+v, want %+v", i, d, model[0])
				}
				gotM := mpsc.TryPop(&d)
				if gotM != want {
					t.Fatalf("op %d: mpsc pop ok=%v, want %v at occupancy %d", i, gotM, want, len(model))
				}
				if want {
					if d != model[0] {
						t.Fatalf("op %d: mpsc popped %+v, want %+v", i, d, model[0])
					}
					model = model[1:]
				}
			}
			if spsc.Len() != len(model) || mpsc.Len() != len(model) {
				t.Fatalf("op %d: Len spsc=%d mpsc=%d, model %d", i, spsc.Len(), mpsc.Len(), len(model))
			}
		}
	})
}
