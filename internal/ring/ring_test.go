package ring

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// TestSPSCWrapAround pushes and pops across many laps of a tiny ring so
// every slot index wraps repeatedly, checking strict FIFO order throughout.
func TestSPSCWrapAround(t *testing.T) {
	r := NewSPSC(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	var d Desc
	seq := uint64(0)
	want := uint64(0)
	for lap := 0; lap < 64; lap++ {
		// Fill to a varying level, then drain, so head/tail cross the
		// capacity boundary at every offset.
		level := 1 + lap%4
		for i := 0; i < level; i++ {
			if !r.TryPush(Desc{Seq: seq, Block: uint32(seq), N: uint32(lap)}) {
				t.Fatalf("lap %d: push %d failed at occupancy %d", lap, seq, r.Len())
			}
			seq++
		}
		for i := 0; i < level; i++ {
			if !r.TryPop(&d) {
				t.Fatalf("lap %d: pop failed at occupancy %d", lap, r.Len())
			}
			if d.Seq != want || d.Block != uint32(want) {
				t.Fatalf("lap %d: popped seq %d, want %d", lap, d.Seq, want)
			}
			want++
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len() = %d after drain, want 0", r.Len())
	}
}

// TestSPSCFullEmpty pins the backpressure contract: a full ring refuses the
// push (without disturbing its contents), an empty ring refuses the pop.
func TestSPSCFullEmpty(t *testing.T) {
	r := NewSPSC(2)
	var d Desc
	if r.TryPop(&d) {
		t.Fatal("TryPop succeeded on an empty ring")
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPush(Desc{Seq: uint64(i)}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.TryPush(Desc{Seq: 99}) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	if r.Len() != r.Cap() {
		t.Fatalf("Len() = %d, want %d", r.Len(), r.Cap())
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPop(&d) || d.Seq != uint64(i) {
			t.Fatalf("pop %d: got (%v, seq %d)", i, d, d.Seq)
		}
	}
	if r.TryPop(&d) {
		t.Fatal("TryPop succeeded after drain")
	}
}

// TestMPSCFullEmpty is the same contract on the multi-producer ring.
func TestMPSCFullEmpty(t *testing.T) {
	r := NewMPSC(2)
	var d Desc
	if r.TryPop(&d) {
		t.Fatal("TryPop succeeded on an empty ring")
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPush(Desc{Seq: uint64(i)}) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.TryPush(Desc{Seq: 99}) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	for i := 0; i < r.Cap(); i++ {
		if !r.TryPop(&d) || d.Seq != uint64(i) {
			t.Fatalf("pop %d: got seq %d", i, d.Seq)
		}
	}
	// After a full lap the ring must accept pushes again (sequence words
	// advanced one capacity).
	if !r.TryPush(Desc{Seq: 7}) {
		t.Fatal("TryPush failed after a full drain lap")
	}
}

// TestSPSCConcurrent runs one producer against one consumer (the shard
// handoff shape) under the race detector, with backpressure on both sides.
func TestSPSCConcurrent(t *testing.T) {
	const total = 100000
	r := NewSPSC(8)
	p := NewParker()
	done := make(chan error, 1)
	go func() {
		var d Desc
		want := uint64(0)
		for want < total {
			if !SpinPops(64, func() bool { return r.TryPop(&d) }) {
				p.Park(func() bool { return r.Len() > 0 })
				continue
			}
			if d.Seq != want {
				done <- fmt.Errorf("popped seq %d, want %d", d.Seq, want)
				return
			}
			want++
		}
		done <- nil
	}()
	for seq := uint64(0); seq < total; {
		if r.TryPush(Desc{Seq: seq}) {
			p.Unpark()
			seq++
		} else {
			runtime.Gosched() // let the consumer drain (essential on one core)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestMPSCConcurrent runs several producers against one consumer under the
// race detector and checks per-producer FIFO order plus exact delivery
// (pushes are retried, so nothing is shed and every item must arrive).
func TestMPSCConcurrent(t *testing.T) {
	const (
		producers = 4
		perProd   = 25000
	)
	r := NewMPSC(8)
	p := NewParker()
	var wg sync.WaitGroup
	for pid := 0; pid < producers; pid++ {
		wg.Add(1)
		go func(pid uint64) {
			defer wg.Done()
			for i := uint64(0); i < perProd; {
				if r.TryPush(Desc{Seq: pid<<32 | i}) {
					p.Unpark()
					i++
				} else {
					runtime.Gosched()
				}
			}
		}(uint64(pid))
	}
	lastSeen := make([]int64, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	var d Desc
	received := 0
	for received < producers*perProd {
		if !SpinPops(64, func() bool { return r.TryPop(&d) }) {
			p.Park(func() bool { return r.Len() > 0 })
			continue
		}
		pid := d.Seq >> 32
		seq := int64(d.Seq & 0xffffffff)
		if pid >= producers {
			t.Fatalf("popped unknown producer %d", pid)
		}
		if seq <= lastSeen[pid] {
			t.Fatalf("producer %d: seq %d after %d — per-producer FIFO broken", pid, seq, lastSeen[pid])
		}
		lastSeen[pid] = seq
		received++
	}
	wg.Wait()
	for pid, last := range lastSeen {
		if last != perProd-1 {
			t.Fatalf("producer %d: last seq %d, want %d", pid, last, perProd-1)
		}
	}
}

// TestSlabAcquireRelease covers exhaustion, reuse and the in-use gauge.
func TestSlabAcquireRelease(t *testing.T) {
	s := NewSlab(3, 64)
	if s.Blocks() != 3 || s.BlockSize() != 64 {
		t.Fatalf("geometry = %d x %d", s.Blocks(), s.BlockSize())
	}
	var held []uint32
	for i := 0; i < 3; i++ {
		idx, ok := s.TryAcquire()
		if !ok {
			t.Fatalf("acquire %d failed with %d blocks free", i, 3-i)
		}
		for _, h := range held {
			if h == idx {
				t.Fatalf("block %d handed out twice", idx)
			}
		}
		held = append(held, idx)
	}
	if _, ok := s.TryAcquire(); ok {
		t.Fatal("acquire succeeded on an exhausted slab")
	}
	if s.InUse() != 3 {
		t.Fatalf("InUse() = %d, want 3", s.InUse())
	}
	s.Release(held[1])
	if idx, ok := s.TryAcquire(); !ok || idx != held[1] {
		t.Fatalf("re-acquire after release: got (%d, %v), want (%d, true)", idx, ok, held[1])
	}
	// Block storage is disjoint.
	a, b := s.Bytes(held[0]), s.Bytes(held[2])
	for i := range a {
		a[i] = 0xaa
	}
	for _, v := range b {
		if v == 0xaa {
			t.Fatal("blocks share storage")
		}
	}
}

// TestSlabConcurrent races acquires and releases across goroutines; every
// handle must stay exclusively owned (checked with a per-block owner mark).
func TestSlabConcurrent(t *testing.T) {
	const (
		workers = 4
		rounds  = 20000
	)
	s := NewSlab(workers, 16)
	var wg sync.WaitGroup
	fail := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(mark byte) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				idx, ok := s.TryAcquire()
				if !ok {
					runtime.Gosched()
					continue
				}
				b := s.Bytes(idx)
				b[0] = mark
				if b[0] != mark {
					fail <- fmt.Errorf("block %d stolen mid-hold", idx)
					s.Release(idx)
					return
				}
				s.Release(idx)
			}
		}(byte(w + 1))
	}
	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if s.InUse() != 0 {
		t.Fatalf("InUse() = %d after all releases, want 0", s.InUse())
	}
}

// TestFrameRecordRoundTrip pins the record layout both ways, including the
// capacity refusal and the malformed-length early stop.
func TestFrameRecordRoundTrip(t *testing.T) {
	buf := make([]byte, 0, 128)
	frames := [][]byte{
		bytes.Repeat([]byte{1}, 10),
		{},
		bytes.Repeat([]byte{3}, 40),
	}
	for i, f := range frames {
		var ok bool
		buf, ok = AppendFrame(buf, uint64(100+i), uint16(i), f)
		if !ok {
			t.Fatalf("frame %d did not fit with %d bytes free", i, cap(buf)-len(buf))
		}
	}
	if _, ok := AppendFrame(buf, 0, 0, bytes.Repeat([]byte{9}, 128)); ok {
		t.Fatal("AppendFrame grew past capacity")
	}
	it := NewFrameIter(buf, uint32(len(frames)))
	for i, f := range frames {
		ts, port, frame, ok := it.Next()
		if !ok {
			t.Fatalf("iter stopped at frame %d", i)
		}
		if ts != uint64(100+i) || port != uint16(i) || !bytes.Equal(frame, f) {
			t.Fatalf("frame %d: got ts=%d port=%d len=%d", i, ts, port, len(frame))
		}
	}
	if _, _, _, ok := it.Next(); ok {
		t.Fatal("iter yielded past the declared count")
	}

	// A record whose length field overruns the buffer ends the walk.
	bad := make([]byte, 0, 64)
	bad, _ = AppendFrame(bad, 1, 1, []byte{1, 2, 3})
	bad[10] = 0xff // corrupt the length field
	bad[11] = 0xff
	it = NewFrameIter(bad, 1)
	if _, _, _, ok := it.Next(); ok {
		t.Fatal("iter yielded a record that overruns the block")
	}
}

// TestRingOpsZeroAlloc pins the ingest plane's hot ops at zero allocations.
func TestRingOpsZeroAlloc(t *testing.T) {
	spsc := NewSPSC(8)
	mpsc := NewMPSC(8)
	slab := NewSlab(2, 256)
	frame := bytes.Repeat([]byte{7}, 60)
	var d Desc
	assert := func(name string, f func()) {
		t.Helper()
		if avg := testing.AllocsPerRun(200, f); avg != 0 {
			t.Errorf("%s: %.2f allocs/op, want 0", name, avg)
		}
	}
	assert("spsc push+pop", func() {
		spsc.TryPush(Desc{Seq: 1})
		spsc.TryPop(&d)
	})
	assert("mpsc push+pop", func() {
		mpsc.TryPush(Desc{Seq: 1})
		mpsc.TryPop(&d)
	})
	assert("slab acquire+append+iter+release", func() {
		idx, _ := slab.TryAcquire()
		buf, _ := AppendFrame(slab.Bytes(idx)[:0], 1, 1, frame)
		it := NewFrameIter(buf, 1)
		it.Next()
		slab.Release(idx)
	})
}

