package ring

import (
	"runtime"
	"sync/atomic"
)

// Parker is the sleep half of a spin-then-park consumer loop. The consumer
// spins on TryPop for a while, then calls Park; producers call Unpark after
// every push, which costs a single atomic load while the consumer is awake —
// the per-batch channel wakeup only comes back when the consumer actually
// went to sleep.
//
// Park may return spuriously (a wakeup raced a previous park); consumers
// must re-check the ring and loop. One Parker serves one consumer and any
// number of producers.
type Parker struct {
	parked atomic.Uint32
	wake   chan struct{}
}

// NewParker returns a ready Parker.
func NewParker() *Parker {
	return &Parker{wake: make(chan struct{}, 1)}
}

// Park publishes the parked state, re-checks ready (closing the push-then-
// check-parked / check-ready-then-park race: one side must see the other),
// and blocks until Unpark if ready still reports nothing to do.
func (p *Parker) Park(ready func() bool) {
	p.parked.Store(1)
	if ready() {
		if p.parked.CompareAndSwap(1, 0) {
			return
		}
		// An Unpark won the CAS and sent (or is sending) the token; consume
		// it so it cannot wake a later Park early.
		<-p.wake
		return
	}
	<-p.wake
}

// Unpark wakes a parked consumer. While the consumer is running this is one
// atomic load; when it is parked, the CAS elects exactly one caller to send
// the wake token, so the buffered send can never block.
func (p *Parker) Unpark() {
	if p.parked.Load() == 1 && p.parked.CompareAndSwap(1, 0) {
		p.wake <- struct{}{}
	}
}

// SpinPops polls pop up to spins times, yielding the processor between
// polls, and reports whether a pop succeeded. It is the spin phase for a
// consumer loop:
//
//	for {
//		if !ring.SpinPops(spins, tryPop) {
//			parker.Park(ready)
//			continue // re-check: Park can return spuriously
//		}
//		... handle ...
//	}
//
// The Gosched on every miss keeps a spinning consumer honest on a loaded
// (or single-core) host: producers and other shards get the processor back
// between polls instead of losing a scheduling quantum to the spin.
func SpinPops(spins int, pop func() bool) bool {
	for i := 0; i < spins; i++ {
		if pop() {
			return true
		}
		runtime.Gosched()
	}
	return false
}
