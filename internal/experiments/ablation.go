package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// StrictAccuracyRow summarises how far the multiplication-free (Strict)
// emission's variance and standard deviation drift from the exact
// behavioral-model emission on the same packet stream — the cost of the
// paper's "approximate squaring by using shifting operations" on hardware
// targets.
type StrictAccuracyRow struct {
	Metric     string
	MeanRelErr float64
	MaxRelErr  float64
	Samples    int
}

// StrictAccuracy drives the same per-destination frequency stream through a
// bmv2-mode and a strict-mode switch, sampling variance and σ every 100
// packets once both are warm.
func StrictAccuracy(packets int, seed int64) []StrictAccuracyRow {
	mk := func(strict bool) *stat4p4.Runtime {
		opts := stat4p4.Options{Slots: 1, Size: 64, Stages: 1}
		if strict {
			opts.Strict = true
			opts.StrictCapShift = 6
		}
		rt, err := stat4p4.NewRuntime(stat4p4.Build(opts))
		if err != nil {
			panic(err)
		}
		if _, err := rt.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, 0, 64, 1, 1, 0); err != nil {
			panic(err)
		}
		return rt
	}
	exact, strict := mk(false), mk(true)
	rng := rand.New(rand.NewSource(seed))
	vs := traffic.NormalValues(32, 8, 63)

	var varErrs, sdErrs []float64
	for i := 0; i < packets; i++ {
		dst := packet.IP4(vs(rng))
		f := packet.NewUDPFrame(1, dst, 5, 80, 10)
		exact.Switch().ProcessPacket(uint64(i), 1, f)
		strict.Switch().ProcessPacket(uint64(i), 1, f)
		if i < packets/10 || i%100 != 0 {
			continue
		}
		em, _ := exact.ReadMoments(0)
		sm, _ := strict.ReadMoments(0)
		if em.Var > 0 {
			varErrs = append(varErrs, math.Abs(float64(sm.Var)-float64(em.Var))/float64(em.Var))
		}
		if em.SD > 0 {
			sdErrs = append(sdErrs, math.Abs(float64(sm.SD)-float64(em.SD))/float64(em.SD))
		}
	}
	row := func(name string, errs []float64) StrictAccuracyRow {
		r := StrictAccuracyRow{Metric: name, Samples: len(errs)}
		for _, e := range errs {
			r.MeanRelErr += e
			if e > r.MaxRelErr {
				r.MaxRelErr = e
			}
		}
		if len(errs) > 0 {
			r.MeanRelErr /= float64(len(errs))
		}
		return r
	}
	return []StrictAccuracyRow{
		row("variance (N·Xsumsq − Xsum²)", varErrs),
		row("standard deviation", sdErrs),
	}
}

// StrictDetectionAgreement runs the window spike scenario on both emissions
// across several seeds and reports in how many runs each emission detected
// the spike in its first interval.
func StrictDetectionAgreement(runs int, seed int64) (exactFirst, strictFirst int) {
	for r := 0; r < runs; r++ {
		e := strictSpikeRun(false, seed+int64(r)*17)
		s := strictSpikeRun(true, seed+int64(r)*17)
		if e {
			exactFirst++
		}
		if s {
			strictFirst++
		}
	}
	return exactFirst, strictFirst
}

func strictSpikeRun(strict bool, seed int64) bool {
	const (
		intShift = 20
		capacity = 64
	)
	opts := stat4p4.Options{Slots: 1, Size: 128, Stages: 1}
	if strict {
		opts.Strict = true
		opts.StrictCapShift = 6
	}
	rt, err := stat4p4.NewRuntime(stat4p4.Build(opts))
	if err != nil {
		panic(err)
	}
	if _, err := rt.BindWindow(0, 0, stat4p4.AllIPv4(), intShift, capacity, 2); err != nil {
		panic(err)
	}
	sw := rt.Switch()
	rng := rand.New(rand.NewSource(seed))
	frame := packet.NewUDPFrame(1, packet.ParseIP4(10, 0, 0, 1), 5, 80, 10)
	send := func(interval, count int) {
		for p := 0; p < count; p++ {
			sw.ProcessPacket(uint64(interval)<<intShift+uint64(p), 1, frame)
		}
	}
	// Fill plus stable phase, then a 4x spike.
	spikeAt := capacity + 20
	for i := 0; i < spikeAt; i++ {
		send(i, 95+rng.Intn(11))
	}
	for len(sw.Digests()) > 0 {
		<-sw.Digests()
	}
	send(spikeAt, 400)
	send(spikeAt+1, 400)
	for len(sw.Digests()) > 0 {
		d := <-sw.Digests()
		if d.Values[4]>>intShift == uint64(spikeAt+1) {
			return true // flagged when the spike interval completed
		}
	}
	return false
}

// FormatStrictAccuracy renders the ablation.
func FormatStrictAccuracy(rows []StrictAccuracyRow, exactFirst, strictFirst, runs int) string {
	out := "strict (multiplication-free) emission vs exact, same packet stream:\n"
	for _, r := range rows {
		out += fmt.Sprintf("  %-28s mean rel err %6.1f%%   max %6.1f%%   (%d samples)\n",
			r.Metric, 100*r.MeanRelErr, 100*r.MaxRelErr, r.Samples)
	}
	out += fmt.Sprintf("  spike detected in first interval: exact %d/%d, strict %d/%d\n",
		exactFirst, runs, strictFirst, runs)
	out += "the one-term shift approximation degrades σ accuracy but preserves the\n"
	out += "order-of-magnitude comparisons the detection checks rely on\n"
	return out
}
