package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"stat4/internal/baseline"
	"stat4/internal/core"
	"stat4/internal/traffic"
)

// QuantileRow compares one median tracker on one workload: the error of its
// estimate against the exact running median (as a percentage of the value
// domain, Table 3's metric) and the state it needs.
type QuantileRow struct {
	Workload   string
	Tracker    string
	MeanErrPct float64
	MaxErrPct  float64
	Cells      int // state in register cells (P² uses CPU floats: 15 words)
}

// QuantileComparison pits the paper's one-step median marker against the
// classical P² estimator (software, floats, division — everything a switch
// lacks) across workload shapes, including the zipfian case Section 5 calls
// out as hard. Errors are sampled every domain/50 packets after a one-domain
// warmup.
func QuantileComparison(domain, packets int, seed int64) []QuantileRow {
	workloads := []struct {
		name string
		vs   traffic.ValueStream
	}{
		{"uniform", traffic.UniformValues(uint64(domain))},
		{"normal", traffic.NormalValues(float64(domain)/2, float64(domain)/8, uint64(domain-1))},
		{"zipf-1.5", traffic.ZipfValues(1.5, uint64(domain), seed)},
		{"bimodal", traffic.BimodalValues(float64(domain)/5, 4*float64(domain)/5, float64(domain)/20, 0.5, uint64(domain-1))},
	}
	var rows []QuantileRow
	for _, w := range workloads {
		rng := rand.New(rand.NewSource(seed))
		dist := core.NewFreqDist(domain)
		marker := dist.TrackMedian()
		p2 := baseline.NewP2Quantile(0.5)

		var markerErrs, p2Errs []float64
		step := domain / 50
		if step < 1 {
			step = 1
		}
		for i := 1; i <= packets; i++ {
			v := w.vs(rng)
			if err := dist.Observe(v); err != nil {
				panic(err)
			}
			p2.Add(float64(v))
			if i < domain || i%step != 0 {
				continue
			}
			exact := float64(baseline.ExactMedian(dist.Frequencies()))
			markerErrs = append(markerErrs, math.Abs(float64(marker.Value())-exact)/float64(domain))
			p2Errs = append(p2Errs, math.Abs(p2.Value()-exact)/float64(domain))
		}
		rows = append(rows,
			quantileRow(w.name, "stat4-marker", markerErrs, domain),
			quantileRow(w.name, "p2-software", p2Errs, 15),
		)
	}
	return rows
}

func quantileRow(workload, tracker string, errs []float64, cells int) QuantileRow {
	r := QuantileRow{Workload: workload, Tracker: tracker, Cells: cells}
	for _, e := range errs {
		r.MeanErrPct += e
		if e > r.MaxErrPct {
			r.MaxErrPct = e
		}
	}
	if len(errs) > 0 {
		r.MeanErrPct /= float64(len(errs))
	}
	r.MeanErrPct *= 100
	r.MaxErrPct *= 100
	return r
}

// FormatQuantiles renders the comparison.
func FormatQuantiles(rows []QuantileRow) string {
	out := "workload   tracker        mean err    max err    state cells\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-10s %-13s %7.2f%%  %8.2f%%   %8d\n",
			r.Workload, r.Tracker, r.MeanErrPct, r.MaxErrPct, r.Cells)
	}
	out += "error = |estimate − exact running median| / domain, sampled after warmup;\n"
	out += "the P² baseline uses floats and division (CPU-only); the Stat4 marker\n"
	out += "trades counter memory for switch-legal arithmetic\n"
	return out
}
