package experiments

import (
	"fmt"

	"stat4/internal/netem"
	"stat4/internal/p4"
	"stat4/internal/packet"
	"stat4/internal/sketch"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// ArchRow is one point of the architecture comparison (the quantified
// Figure 1 / Section 1 argument): the detection delay and controller-channel
// overhead of sketch-only pulling at one period, or of in-switch pushing.
type ArchRow struct {
	Arch string
	// PullPeriodMs is 0 for the in-switch row.
	PullPeriodMs float64
	// DetectDelayMs is spike onset → controller awareness, averaged over
	// runs that detected (-1 if never detected).
	DetectDelayMs float64
	// OverheadKBps is the switch→controller channel load during normal
	// operation. In-switch pushing is quiet until an anomaly happens.
	OverheadKBps float64
	Detected     int
	Runs         int
}

// ArchParams configures the comparison.
type ArchParams struct {
	IntervalShift uint   // window interval = 2^shift ns (default 23)
	WindowSize    int    // default 100
	Runs          int    // repetitions per row (default 3)
	LinkDelayNs   uint64 // one-way switch↔controller latency (default 1 ms)
	PerRegNs      uint64 // per-register read cost (default 2 µs)
	Seed          int64
}

func (p *ArchParams) defaults() {
	if p.IntervalShift == 0 {
		p.IntervalShift = 23
	}
	if p.WindowSize == 0 {
		p.WindowSize = 100
	}
	if p.Runs == 0 {
		p.Runs = 3
	}
	if p.LinkDelayNs == 0 {
		p.LinkDelayNs = 1e6
	}
	if p.PerRegNs == 0 {
		p.PerRegNs = 2000
	}
}

// ArchComparison sweeps sketch-only pull periods against in-switch pushing
// on the same spike workload.
func ArchComparison(params ArchParams) ([]ArchRow, error) {
	params.defaults()
	periods := []uint64{1e6, 10e6, 100e6, 1e9} // 1 ms … 1 s

	// Every (period, run) cell and every push run builds its own switch and
	// simulator, so the whole comparison fans out over the worker pool; the
	// reduction below walks the cells in the old serial order (including the
	// last-run-wins OverheadKBps assignment), so rows are identical.
	type pullOut struct {
		delay    float64
		detected bool
		overhead float64
		err      error
	}
	type pushOut struct {
		delay    float64
		detected bool
		err      error
	}
	pulls := make([]pullOut, len(periods)*params.Runs)
	pushes := make([]pushOut, params.Runs)
	forEach(len(pulls)+len(pushes), func(i int) {
		if i < len(pulls) {
			period := periods[i/params.Runs]
			seed := params.Seed + int64(i%params.Runs)*31
			o := pullOut{}
			o.delay, o.detected, o.overhead, o.err = archRun(params, period, seed)
			pulls[i] = o
		} else {
			r := i - len(pulls)
			o := pushOut{}
			o.delay, o.detected, o.err = pushRun(params, params.Seed+int64(r)*31)
			pushes[r] = o
		}
	})

	var rows []ArchRow
	for pi, period := range periods {
		row := ArchRow{Arch: "sketch-only", PullPeriodMs: float64(period) / 1e6, Runs: params.Runs}
		var delaySum float64
		for r := 0; r < params.Runs; r++ {
			o := pulls[pi*params.Runs+r]
			if o.err != nil {
				return nil, o.err
			}
			row.OverheadKBps = o.overhead
			if o.detected {
				row.Detected++
				delaySum += o.delay
			}
		}
		if row.Detected > 0 {
			row.DetectDelayMs = delaySum / float64(row.Detected)
		} else {
			row.DetectDelayMs = -1
		}
		rows = append(rows, row)
	}

	// In-switch push row.
	push := ArchRow{Arch: "in-switch (Stat4)", Runs: params.Runs}
	var delaySum float64
	for _, o := range pushes {
		if o.err != nil {
			return nil, o.err
		}
		if o.detected {
			push.Detected++
			delaySum += o.delay
		}
	}
	if push.Detected > 0 {
		push.DetectDelayMs = delaySum / float64(push.Detected)
	} else {
		push.DetectDelayMs = -1
	}
	rows = append(rows, push)
	return rows, nil
}

// archSetup builds the common workload: a full window of stable traffic,
// then a 4x spike. It returns the spike onset and the end of the anomalous
// first interval, which is when the spike becomes theoretically detectable.
func archSetup(params ArchParams, seed int64) (rt *stat4p4.Runtime, sim *netem.Sim, node *netem.SwitchNode, onset, detectable, duration uint64, err error) {
	intervalNs := uint64(1) << params.IntervalShift
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 256, Stages: 1})
	rt, err = stat4p4.NewRuntime(lib)
	if err != nil {
		return
	}
	slash8 := packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8)
	if _, err = rt.BindWindow(0, 0, stat4p4.DstIn(slash8), params.IntervalShift, params.WindowSize, 2); err != nil {
		return
	}
	sim = netem.NewSim()
	node = netem.NewSwitchNode(sim, rt.Switch(), params.LinkDelayNs)

	fill := uint64(params.WindowSize+5) * intervalNs
	onset = fill + intervalNs/3
	// The spike is detectable when its first (anomalous) interval
	// completes.
	detectable = (onset>>params.IntervalShift + 1) << params.IntervalShift
	duration = onset + 30*intervalNs + 4e9

	baseRate := 200 * 1e9 / float64(intervalNs)
	dests := traffic.CaseStudyDests()
	load := &traffic.LoadBalanced{Dests: dests, Rate: baseRate, End: duration, Seed: seed + 1, Jitter: 0.5}
	spike := &traffic.Spike{Dest: dests[0], Rate: 4 * baseRate, Start: onset, End: duration, Seed: seed + 2, Jitter: 0.5}
	node.InjectStream(traffic.Merge(load, spike), 1)
	return
}

func archRun(params ArchParams, period uint64, seed int64) (delayMs float64, detected bool, overheadKBps float64, err error) {
	rt, sim, _, _, detectable, duration, err := archSetup(params, seed)
	if err != nil {
		return 0, false, 0, err
	}
	var detectAt uint64
	mon := &sketch.PullMonitor{
		Sim:       sim,
		RT:        rt,
		Slot:      0,
		Window:    params.WindowSize,
		Period:    period,
		PerRegNs:  params.PerRegNs,
		LinkDelay: params.LinkDelayNs,
		K:         2,
		OnDetect: func(now uint64, v uint64) {
			if detectAt == 0 && now >= detectable {
				detectAt = now
			}
		},
	}
	mon.Start(duration)
	sim.Run()
	overheadKBps = mon.OverheadBytesPerSec() / 1024
	if detectAt == 0 {
		return 0, false, overheadKBps, nil
	}
	return float64(detectAt-detectable) / 1e6, true, overheadKBps, nil
}

func pushRun(params ArchParams, seed int64) (delayMs float64, detected bool, err error) {
	rt, sim, node, _, detectable, _, err := archSetup(params, seed)
	if err != nil {
		return 0, false, err
	}
	_ = rt
	var detectAt uint64
	node.OnDigest = func(now uint64, d p4.Digest) {
		if detectAt == 0 && now >= detectable {
			detectAt = now
		}
	}
	sim.Run()
	if detectAt == 0 {
		return 0, false, nil
	}
	return float64(detectAt-detectable) / 1e6, true, nil
}

// FormatArch renders the comparison.
func FormatArch(rows []ArchRow) string {
	out := "architecture        pull period   detection delay   ctrl-channel overhead\n"
	for _, r := range rows {
		period := "—"
		if r.PullPeriodMs > 0 {
			period = fmt.Sprintf("%.0fms", r.PullPeriodMs)
		}
		delay := "not detected"
		if r.DetectDelayMs >= 0 {
			delay = fmt.Sprintf("%.2fms", r.DetectDelayMs)
		}
		out += fmt.Sprintf("%-19s %11s   %15s   %10.1f KB/s  (%d/%d runs)\n",
			r.Arch, period, delay, r.OverheadKBps, r.Detected, r.Runs)
	}
	out += "detection delay measured from the end of the first anomalous interval;\n"
	out += "overhead is steady-state switch-to-controller traffic before any anomaly\n"
	return out
}
