package experiments

import (
	"strings"
	"testing"
)

// TestTable2Shape asserts the reproduction targets of Table 2: the range
// maxima sit near the paper's, and the error falls with every input decade.
func TestTable2Shape(t *testing.T) {
	rows := Table2()
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Error decays monotonically per decade.
	for i := 1; i < len(rows); i++ {
		if rows[i].Max >= rows[i-1].Max {
			t.Fatalf("max error did not decay: %v then %v", rows[i-1], rows[i])
		}
	}
	// Published maxima hold within a small factor (the paper's operand
	// sampling is unknown but exhaustive evaluation cannot be far off).
	paperMax := []float64{0.20, 0.038, 0.0044, 0.0005}
	for i, r := range rows {
		if r.Max < paperMax[i]/2 || r.Max > paperMax[i]*4 {
			t.Errorf("range %s: max %.4f vs paper %.4f beyond 4x", r.Label, r.Max, paperMax[i])
		}
	}
	// The 1–10 row's worst case is sqrt(3)→1: |1−1.732|/3.
	if rows[0].Max < 0.20 || rows[0].Max > 0.25 {
		t.Fatalf("1-10 max = %.4f, want ≈0.244", rows[0].Max)
	}
}

func TestTable2RoundingAblation(t *testing.T) {
	base := Table2()
	round := Table2Rounding()
	// The honest ablation finding: under Table 2's input-relative metric,
	// mantissa rounding does not systematically improve the truncating
	// variant — it trades which inputs are worst (rounding sqrt(2) up to 2
	// overshoots as badly as truncating sqrt(3) to 1 undershoots). The
	// assertion pins that neither variant is more than 2x off the other
	// anywhere, i.e. the design choice is accuracy-neutral and the cheaper
	// truncating form is the right default.
	for i := range base {
		if round[i].Max > base[i].Max*2 || base[i].Max > round[i].Max*2 {
			t.Errorf("range %s: max diverges: round %.4f vs trunc %.4f",
				base[i].Label, round[i].Max, base[i].Max)
		}
		if round[i].P50 > base[i].P50*2+1e-9 || base[i].P50 > round[i].P50*2+1e-9 {
			t.Errorf("range %s: p50 diverges: round %.5f vs trunc %.5f",
				base[i].Label, round[i].P50, base[i].P50)
		}
	}
}

func TestTable2Workload(t *testing.T) {
	rows := Table2Workload(50000, 3)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// The workload's variances populate at least the larger ranges, and
	// errors stay within each range's exhaustive maximum.
	exhaustive := Table2()
	populated := 0
	for i, r := range rows {
		if r.Max > 0 {
			populated++
			if r.Max > exhaustive[i].Max*1.01 {
				t.Errorf("range %s: workload max %.4f exceeds exhaustive %.4f",
					r.Label, r.Max, exhaustive[i].Max)
			}
		}
	}
	if populated < 2 {
		t.Fatalf("only %d ranges populated by the workload", populated)
	}
}

// TestTable3Shape asserts Table 3's reproduction targets: large errors only
// in the sparse phase, collapse after N/2 samples, and the after-phase 90th
// percentile at or under the paper's values.
func TestTable3Shape(t *testing.T) {
	rows := Table3(3, 17)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	paperAfterP90 := []float64{0.01, 0.001, 0.0001}
	for i, r := range rows {
		if r.BeforeP90 < r.AfterP90 {
			t.Errorf("N=%d: error did not shrink after N/2 (%.4f vs %.4f)",
				r.N, r.BeforeP90, r.AfterP90)
		}
		if r.AfterP50 > 0.001 {
			t.Errorf("N=%d: after-phase median error %.4f, want ≈0", r.N, r.AfterP50)
		}
		if r.AfterP90 > paperAfterP90[i]*3 {
			t.Errorf("N=%d: after-phase p90 %.5f vs paper %.5f", r.N, r.AfterP90, paperAfterP90[i])
		}
		if r.BeforeP90 < 0.05 {
			t.Errorf("N=%d: sparse-phase p90 %.4f suspiciously low — is the marker teleporting?",
				r.N, r.BeforeP90)
		}
	}
}

func TestResourcesAgainstPaper(t *testing.T) {
	rows := Resources()
	byName := map[string]ResourceRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	cs, ok := byName["case-study"]
	if !ok {
		t.Fatal("case-study row missing")
	}
	// The paper's application occupies 3.1KB; the same-shape emission must
	// land in the same ballpark.
	kb := float64(cs.Report.TotalBytes) / 1024
	if kb < 1.5 || kb > 6 {
		t.Fatalf("case-study footprint %.1fKB, want ≈3KB", kb)
	}
	if cs.Report.MatchRuleDependencies > 1 {
		t.Fatalf("rule dependencies %d, paper reports at most 1", cs.Report.MatchRuleDependencies)
	}
	// Chains must fit a generous hardware pipeline model and the
	// override-only chain must be shorter than the full one.
	oo := byName["override-only"]
	if oo.Report.LongestDepChain >= cs.Report.LongestDepChain {
		t.Fatalf("override-only chain %d not shorter than full %d",
			oo.Report.LongestDepChain, cs.Report.LongestDepChain)
	}
	if cs.Report.LongestDepChain > 64 {
		t.Fatalf("chain %d implausibly deep", cs.Report.LongestDepChain)
	}
}

// TestCaseStudyHeadline is E4's assertion: detection in the first interval
// after the spike starts, with correct drill-down, in a fresh seeded run.
func TestCaseStudyHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("case study run takes a few seconds")
	}
	res, err := CaseStudy(CaseStudyParams{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Fatal("spike not detected")
	}
	if res.DetectionIntervalLag > 1 {
		t.Fatalf("detected %d intervals after onset, want the first", res.DetectionIntervalLag)
	}
	if !res.SubnetCorrect {
		t.Fatal("wrong subnet identified")
	}
	if !res.HostCorrect {
		t.Fatal("wrong destination identified")
	}
	ppS := float64(res.PinpointNs) / 1e9
	if ppS < 0.5 || ppS > 5 {
		t.Fatalf("pinpointing took %.2fs, paper band is 2-3s (ours 1-3s)", ppS)
	}
	if len(res.Log) != 3 {
		t.Fatalf("expected 3 controller transitions, got %v", res.Log)
	}
}

// TestCaseStudySmallSweepPoint exercises a fast sweep configuration: short
// intervals, small window.
func TestCaseStudySmallSweepPoint(t *testing.T) {
	res, err := CaseStudy(CaseStudyParams{
		IntervalShift: 20, WindowSize: 20, PacketsPerInterval: 100,
		CtrlDelay: 50e6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || !res.HostCorrect {
		t.Fatalf("fast configuration failed: %+v", res)
	}
}

// TestArchComparisonShape asserts the E6 reproduction target: in-switch
// detection delay beats every sketch-only period, sketch-only delay grows
// with the period, and overhead shrinks with it.
func TestArchComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("architecture sweep takes a few seconds")
	}
	rows, err := ArchComparison(ArchParams{Runs: 1, Seed: 2, WindowSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	push := rows[len(rows)-1]
	if push.Detected == 0 {
		t.Fatal("in-switch push never detected")
	}
	for _, r := range rows[:len(rows)-1] {
		if r.Detected == 0 {
			continue
		}
		if push.DetectDelayMs >= r.DetectDelayMs {
			t.Errorf("push delay %.2fms not better than pull@%vms %.2fms",
				push.DetectDelayMs, r.PullPeriodMs, r.DetectDelayMs)
		}
	}
	// Pull delay grows and overhead shrinks with the period.
	for i := 1; i < len(rows)-1; i++ {
		if rows[i].Detected == 0 || rows[i-1].Detected == 0 {
			continue
		}
		if rows[i].DetectDelayMs < rows[i-1].DetectDelayMs {
			t.Errorf("pull delay not increasing: %.2f then %.2f",
				rows[i-1].DetectDelayMs, rows[i].DetectDelayMs)
		}
		if rows[i].OverheadKBps >= rows[i-1].OverheadKBps {
			t.Errorf("pull overhead not decreasing: %.1f then %.1f",
				rows[i-1].OverheadKBps, rows[i].OverheadKBps)
		}
	}
}

func TestFormatters(t *testing.T) {
	if !strings.Contains(FormatTable2(Table2()), "input number y") {
		t.Fatal("FormatTable2 header missing")
	}
	if !strings.Contains(FormatTable3(Table3(1, 1)), "N      example use") {
		t.Fatal("FormatTable3 header missing")
	}
	if !strings.Contains(FormatResources(Resources()), "3.1KB") {
		t.Fatal("FormatResources paper note missing")
	}
	rows := []CaseStudySweepRow{{IntervalShift: 23, WindowSize: 100, Runs: 1}}
	if !strings.Contains(FormatCaseStudySweep(rows), "interval") {
		t.Fatal("FormatCaseStudySweep header missing")
	}
	arch := []ArchRow{{Arch: "x", PullPeriodMs: 1, DetectDelayMs: -1, Runs: 1}}
	if !strings.Contains(FormatArch(arch), "not detected") {
		t.Fatal("FormatArch missing not-detected case")
	}
}

// TestCaseStudySweepConfigs exercises the sweep plumbing on one small
// configuration.
func TestCaseStudySweepConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run takes a few seconds")
	}
	rows, err := CaseStudySweepConfigs([]SweepConfig{{Shift: 20, Window: 20}}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Runs != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Detected != 2 || rows[0].HostCorrect != 2 {
		t.Fatalf("sweep point failed: %+v", rows[0])
	}
	if rows[0].MeanPinpointS <= 0 {
		t.Fatal("pinpoint time not aggregated")
	}
}

// TestStrictAccuracyAblation pins the strict-emission trade-off: the
// one-term shift approximation costs large relative error on the variance
// (up to ~4x as two multiplies each truncate toward a power of two) yet
// never flips the spike detection outcome.
func TestStrictAccuracyAblation(t *testing.T) {
	rows := StrictAccuracy(5000, 3)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Samples == 0 {
			t.Fatalf("%s: no samples", r.Metric)
		}
		if r.MeanRelErr == 0 {
			t.Fatalf("%s: suspiciously exact — is strict mode actually approximating?", r.Metric)
		}
		// One-term MulShift halves at worst per factor: variance error < 4x,
		// sd error < 2x.
		if r.MaxRelErr > 1.0 {
			t.Fatalf("%s: max rel err %.2f beyond the approximation bound", r.Metric, r.MaxRelErr)
		}
	}
	e, s := StrictDetectionAgreement(3, 3)
	if e != 3 || s != 3 {
		t.Fatalf("detection agreement: exact %d/3, strict %d/3", e, s)
	}
}

// TestQuantileComparison pins the comparative findings: the Stat4 marker is
// at least as accurate as the P² software baseline on unimodal and zipfian
// workloads, and both degrade on bimodal input (the gap the mode-split
// extension closes).
func TestQuantileComparison(t *testing.T) {
	rows := QuantileComparison(500, 10000, 7)
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]QuantileRow{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.Tracker] = r
	}
	for _, w := range []string{"uniform", "normal", "zipf-1.5"} {
		m := byKey[w+"/stat4-marker"]
		p := byKey[w+"/p2-software"]
		if m.MeanErrPct > p.MeanErrPct+0.5 {
			t.Errorf("%s: marker mean err %.2f%% notably worse than P2 %.2f%%",
				w, m.MeanErrPct, p.MeanErrPct)
		}
		if m.MeanErrPct > 1 {
			t.Errorf("%s: marker mean err %.2f%% too high", w, m.MeanErrPct)
		}
	}
	bm := byKey["bimodal/stat4-marker"]
	bp := byKey["bimodal/p2-software"]
	if bm.MeanErrPct < 0.5 && bp.MeanErrPct < 0.5 {
		t.Error("bimodal workload unexpectedly easy; the mode-split motivation is gone")
	}
	if byKey["uniform/p2-software"].Cells != 15 {
		t.Error("P2 state cells wrong")
	}
}

// TestShardScale runs the shard sweep at a small duration: every row must be
// byte-equivalent to serial, shard 1 is the serial identity (speedup 1), and
// packet totals must agree across rows (same workload, different sharding).
func TestShardScale(t *testing.T) {
	rows, err := ShardScale(ShardScaleParams{DurationNs: 5e5, ShardCounts: []int{1, 2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Equivalent {
			t.Fatalf("shards=%d: merged snapshot diverged from serial", r.Shards)
		}
		if r.Packets == 0 {
			t.Fatalf("shards=%d: no packets", r.Shards)
		}
		if r.Packets != rows[0].Packets {
			t.Fatalf("shards=%d saw %d packets, shards=1 saw %d", r.Shards, r.Packets, rows[0].Packets)
		}
	}
	if rows[0].ModeledSpeedup != 1 {
		t.Fatalf("1-shard speedup = %v", rows[0].ModeledSpeedup)
	}
	if rows[2].ModeledSpeedup <= 1 {
		t.Fatalf("4-shard speedup = %v, want > 1", rows[2].ModeledSpeedup)
	}
	if s := FormatShardScale(rows); !strings.Contains(s, "speedup") {
		t.Fatalf("format: %q", s)
	}
}
