// Package experiments contains the harnesses that regenerate every table
// and figure of the paper's evaluation (see the per-experiment index in
// DESIGN.md). The cmd tools, integration tests and benchmarks all call into
// this package so the printed rows come from one implementation.
package experiments

import (
	"fmt"
	"math/rand"

	"stat4/internal/controller"
	"stat4/internal/netem"
	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/telemetry"
	"stat4/internal/traffic"
)

// CaseStudyParams configures one Section 4 run. Zero values pick the
// paper's defaults.
type CaseStudyParams struct {
	// IntervalShift sets the window interval to 2^IntervalShift ns
	// (default 23 ≈ 8.4 ms, the paper's 8 ms default).
	IntervalShift uint
	// WindowSize is the circular buffer length (default 100 intervals).
	WindowSize int
	// PacketsPerInterval sets the load-balanced rate so each interval
	// holds roughly this many packets (default 200).
	PacketsPerInterval float64
	// SpikeFactor is the spike rate as a multiple of the base rate
	// (default 4).
	SpikeFactor float64
	// CtrlDelay is the one-way switch↔controller latency (default 400 ms,
	// calibrated to the slow digest-processing and table-write path the
	// paper blames for the 2–3 s drill-down: "because of the interaction
	// between the control and data planes").
	CtrlDelay uint64
	// Seed randomises the spike onset and target.
	Seed int64

	// Telemetry, when set, instruments the whole pipeline: the switch
	// observer (per-packet cost, digest emit/drop), the netem node
	// observables (control-channel latency, digest-queue occupancy), the
	// simulator's event-queue depth and the controller's phase timeline.
	// Recorders accumulate across runs when the same bundle is reused.
	Telemetry *telemetry.Pipeline
}

func (p *CaseStudyParams) defaults() {
	if p.IntervalShift == 0 {
		p.IntervalShift = 23
	}
	if p.WindowSize == 0 {
		p.WindowSize = 100
	}
	if p.PacketsPerInterval == 0 {
		p.PacketsPerInterval = 200
	}
	if p.SpikeFactor == 0 {
		p.SpikeFactor = 4
	}
	if p.CtrlDelay == 0 {
		p.CtrlDelay = 400e6
	}
}

// CaseStudyResult reports one run's outcome.
type CaseStudyResult struct {
	Params CaseStudyParams

	SpikeOnset  uint64
	SpikeTarget packet.IP4

	Detected         bool
	DetectedSwitchTs uint64
	// DetectionIntervalLag is how many interval boundaries after the
	// spike's onset interval the detection fired; 1 means "the first
	// interval after the start of the spike", the paper's headline.
	DetectionIntervalLag int64

	SubnetIdentified bool
	SubnetCorrect    bool
	HostIdentified   bool
	HostCorrect      bool
	// PinpointNs is the virtual time from spike onset to destination
	// identification (the paper's 2–3 s).
	PinpointNs uint64

	Log []string
}

// CaseStudy runs one detection-and-drill-down experiment (Figure 6) in
// virtual time and reports what happened.
func CaseStudy(params CaseStudyParams) (CaseStudyResult, error) {
	params.defaults()
	res := CaseStudyResult{Params: params}

	intervalNs := uint64(1) << params.IntervalShift
	baseRate := params.PacketsPerInterval * 1e9 / float64(intervalNs)
	rng := rand.New(rand.NewSource(params.Seed))

	dests := traffic.CaseStudyDests()
	target := dests[rng.Intn(len(dests))]
	res.SpikeTarget = target

	// The spike starts at a randomised time after the window has filled.
	fill := uint64(params.WindowSize+5) * intervalNs
	onset := fill + uint64(rng.Int63n(int64(10*intervalNs)))
	res.SpikeOnset = onset
	// Enough time after onset for two control-plane round trips plus
	// warmups.
	duration := onset + 8*params.CtrlDelay + 50*intervalNs

	lib := stat4p4.Build(stat4p4.Options{Slots: 2, Size: 256, Stages: 2})
	rt, err := stat4p4.NewRuntime(lib)
	if err != nil {
		return res, err
	}
	slash8 := packet.NewPrefix(packet.ParseIP4(10, 0, 0, 0), 8)
	if _, err := rt.BindWindow(0, 0, stat4p4.DstIn(slash8), params.IntervalShift, params.WindowSize, 2); err != nil {
		return res, err
	}

	sim := netem.NewSim()
	node := netem.NewSwitchNode(sim, rt.Switch(), params.CtrlDelay)
	var timeline *telemetry.Timeline
	if params.Telemetry != nil {
		rt.Switch().SetObserver(params.Telemetry.Switch)
		node.Metrics = params.Telemetry.Node
		sim.Depth = params.Telemetry.Queue
		timeline = params.Telemetry.Phases
	}
	dd := controller.NewDrillDown(controller.Config{
		RT:            rt,
		Sched:         sim,
		CtrlDelay:     params.CtrlDelay,
		Monitored:     slash8,
		WindowSlot:    0,
		DrillStage:    1,
		DrillSlot:     1,
		SubnetBits:    24,
		SubnetDomain:  256,
		K:             2,
		Warmup:        20 * intervalNs,
		MonitorWarmup: fill,
		Timeline:      timeline,
	})
	node.OnDigest = dd.HandleDigest

	load := &traffic.LoadBalanced{Dests: dests, Rate: baseRate, End: duration, Seed: params.Seed + 1, Jitter: 0.5}
	spike := &traffic.Spike{Dest: target, Rate: baseRate * params.SpikeFactor, Start: onset, End: duration, Seed: params.Seed + 2, Jitter: 0.5}
	node.InjectStream(traffic.Merge(load, spike), 1)
	sim.Run()

	r := dd.Result()
	res.Log = dd.Log
	if dd.Phase() > controller.PhaseMonitoring {
		res.Detected = true
		res.DetectedSwitchTs = r.DetectedSwitchTs
		res.DetectionIntervalLag = int64(r.DetectedSwitchTs>>params.IntervalShift) - int64(onset>>params.IntervalShift)
	}
	if dd.Phase() > controller.PhaseLocateSubnet {
		res.SubnetIdentified = true
		res.SubnetCorrect = r.Subnet.Contains(target)
	}
	if dd.Phase() == controller.PhaseDone {
		res.HostIdentified = true
		res.HostCorrect = r.Host == target
		res.PinpointNs = r.HostAt - onset
	}
	return res, nil
}

// CaseStudySweep repeats the experiment across interval lengths and window
// sizes, the paper's "time intervals ranging from 8 ms to 2 s, and number of
// intervals between 10 and 100".
type CaseStudySweepRow struct {
	IntervalShift uint
	WindowSize    int
	Runs          int
	DetectedFirst int // runs detected in the first interval after onset
	Detected      int
	HostCorrect   int
	MeanPinpointS float64
}

// SweepConfig is one (interval, window) point of the sweep.
type SweepConfig struct {
	Shift  uint
	Window int
}

// DefaultSweep covers the paper's ranges: intervals 8 ms – 2 s, windows
// 10 – 100.
var DefaultSweep = []SweepConfig{
	{23, 100}, // ~8 ms × 100
	{25, 50},  // ~34 ms × 50
	{27, 25},  // ~134 ms × 25
	{29, 10},  // ~537 ms × 10
	{31, 10},  // ~2.1 s × 10
}

// CaseStudySweep runs DefaultSweep with `runs` repetitions per configuration.
func CaseStudySweep(runs int, seed int64) ([]CaseStudySweepRow, error) {
	return CaseStudySweepConfigs(DefaultSweep, runs, seed)
}

// CaseStudySweepConfigs runs the given configurations. The (config, run)
// grid fans out over the worker pool — each run owns its switch, controller
// and simulator — and the per-config reduction walks runs in order, so the
// rows match the serial sweep exactly.
func CaseStudySweepConfigs(configs []SweepConfig, runs int, seed int64) ([]CaseStudySweepRow, error) {
	type runOut struct {
		res CaseStudyResult
		err error
	}
	outs := make([]runOut, len(configs)*runs)
	forEach(len(outs), func(i int) {
		cfg := configs[i/runs]
		res, err := CaseStudy(CaseStudyParams{
			IntervalShift: cfg.Shift,
			WindowSize:    cfg.Window,
			Seed:          seed + int64(i%runs)*7919,
		})
		outs[i] = runOut{res: res, err: err}
	})

	var rows []CaseStudySweepRow
	for ci, cfg := range configs {
		row := CaseStudySweepRow{IntervalShift: cfg.Shift, WindowSize: cfg.Window, Runs: runs}
		var pinpoint float64
		for r := 0; r < runs; r++ {
			o := outs[ci*runs+r]
			res, err := o.res, o.err
			if err != nil {
				return nil, err
			}
			if res.Detected {
				row.Detected++
				if res.DetectionIntervalLag <= 1 {
					row.DetectedFirst++
				}
			}
			if res.HostCorrect {
				row.HostCorrect++
				pinpoint += float64(res.PinpointNs) / 1e9
			}
		}
		if row.HostCorrect > 0 {
			row.MeanPinpointS = pinpoint / float64(row.HostCorrect)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCaseStudySweep renders the sweep like the paper reports it.
func FormatCaseStudySweep(rows []CaseStudySweepRow) string {
	out := "interval      window   detected   1st-interval   host-correct   pinpoint\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-12s  %6d   %4d/%-4d  %7d/%-4d   %7d/%-4d   %6.2fs\n",
			fmt.Sprintf("%.0fms", float64(uint64(1)<<r.IntervalShift)/1e6),
			r.WindowSize, r.Detected, r.Runs, r.DetectedFirst, r.Runs, r.HostCorrect, r.Runs, r.MeanPinpointS)
	}
	return out
}
