package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"stat4/internal/baseline"
	"stat4/internal/core"
)

// Table3Row is one row of Table 3: the online median's estimation error for
// a distribution of N elements, summarised separately before and after N/2
// samples have arrived (the sparse and dense phases).
type Table3Row struct {
	N       int
	UseCase string

	BeforeP50, BeforeP90 float64
	AfterP50, AfterP90   float64
	Repetitions          int
}

// table3Cases mirrors the paper's three rows.
var table3Cases = []struct {
	n       int
	useCase string
}{
	{100, "packet types"},
	{1000, "per-ms traffic"},
	{65536, "16-bit field"},
}

// Table3 regenerates Table 3: for each N, feed the one-step median tracker
// with uniform values from [0, N), measure |marker − exact median| / N at
// sampled points, and report the 50th/90th percentile of that error before
// and after N/2 samples, over `reps` repetitions (the paper uses 20).
func Table3(reps int, seed int64) []Table3Row {
	// Fan the (case, repetition) grid over the worker pool — every cell owns
	// its tracker and RNG — then reduce per case in repetition order, so the
	// rows match the old serial loop exactly.
	type runOut struct{ before, after []float64 }
	outs := make([]runOut, len(table3Cases)*reps)
	forEach(len(outs), func(i int) {
		c := table3Cases[i/reps]
		b, a := table3Run(c.n, seed+int64(i%reps)*104729)
		outs[i] = runOut{before: b, after: a}
	})
	rows := make([]Table3Row, 0, len(table3Cases))
	for ci, c := range table3Cases {
		var before, after []float64
		for rep := 0; rep < reps; rep++ {
			o := outs[ci*reps+rep]
			before = append(before, o.before...)
			after = append(after, o.after...)
		}
		rows = append(rows, Table3Row{
			N:           c.n,
			UseCase:     c.useCase,
			BeforeP50:   baseline.PercentileOf(before, 50),
			BeforeP90:   baseline.PercentileOf(before, 90),
			AfterP50:    baseline.PercentileOf(after, 50),
			AfterP90:    baseline.PercentileOf(after, 90),
			Repetitions: reps,
		})
	}
	return rows
}

// table3Run drives one repetition: 4N uniform samples, with the error
// evaluated at ~100 points per phase (an O(N) exact-median scan per point
// keeps the harness tractable at N = 65536).
func table3Run(n int, seed int64) (before, after []float64) {
	rng := rand.New(rand.NewSource(seed))
	d := core.NewFreqDist(n)
	med := d.TrackMedian()
	total := 4 * n
	step := n / 50
	if step < 1 {
		step = 1
	}
	for i := 1; i <= total; i++ {
		if err := d.Observe(uint64(rng.Intn(n))); err != nil {
			panic(err)
		}
		if i%step != 0 {
			continue
		}
		exact := baseline.ExactMedian(d.Frequencies())
		e := math.Abs(float64(med.Value())-float64(exact)) / float64(n)
		if i <= n/2 {
			before = append(before, e)
		} else {
			after = append(after, e)
		}
	}
	return before, after
}

// PaperTable3 holds the published numbers for side-by-side reporting.
var PaperTable3 = []Table3Row{
	{N: 100, UseCase: "packet types", BeforeP50: 0.045, BeforeP90: 0.345, AfterP50: 0, AfterP90: 0.01},
	{N: 1000, UseCase: "per-ms traffic", BeforeP50: 0.036, BeforeP90: 0.296, AfterP50: 0, AfterP90: 0.001},
	{N: 65536, UseCase: "16-bit field", BeforeP50: 0.01, BeforeP90: 0.23, AfterP50: 0, AfterP90: 0.0001},
}

// FormatTable3 renders measured rows next to the paper's.
func FormatTable3(rows []Table3Row) string {
	out := "N      example use      before N/2 (50th/90th)   after N/2 (50th/90th)   paper before / after\n"
	for i, r := range rows {
		paper := ""
		if i < len(PaperTable3) {
			p := PaperTable3[i]
			paper = fmt.Sprintf("%5.1f%%/%5.1f%%  %5.2f%%/%5.2f%%",
				100*p.BeforeP50, 100*p.BeforeP90, 100*p.AfterP50, 100*p.AfterP90)
		}
		out += fmt.Sprintf("%-6d %-16s %8.1f%% /%6.1f%%        %8.2f%% /%6.2f%%       %s\n",
			r.N, r.UseCase, 100*r.BeforeP50, 100*r.BeforeP90, 100*r.AfterP50, 100*r.AfterP90, paper)
	}
	return out
}
