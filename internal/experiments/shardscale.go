package experiments

import (
	"fmt"
	"strings"

	"stat4/internal/packet"
	"stat4/internal/stat4p4"
	"stat4/internal/traffic"
)

// This file is the shard-scaling experiment behind the BENCH shard table:
// the same workload is replayed through 1..N-shard deployments, and each row
// reports the load balance the flow-hash dispatcher achieved plus the
// modeled multi-pipeline speedup — total packets over the busiest shard's
// packets, the wall-clock determinant once shards run on their own cores —
// and whether the merged snapshot stayed byte-identical to the serial
// reference (it must; a false here is a bug, not a data point).

// ShardScaleRow is one shard count's measurements.
type ShardScaleRow struct {
	Shards  int
	Packets uint64
	// MaxShardPackets is the busiest shard's packet count; the critical
	// path of a run where every shard has its own pipeline.
	MaxShardPackets uint64
	// ModeledSpeedup is Packets / MaxShardPackets: the speedup an N-pipeline
	// deployment gets over serial on this workload, bounded by load balance
	// rather than by shard count.
	ModeledSpeedup float64
	// Equivalent records whether the merged canonical snapshot was
	// byte-identical to the serial switch's.
	Equivalent bool
}

// ShardScaleParams configures the sweep.
type ShardScaleParams struct {
	ShardCounts []int // default {1, 2, 4, 8}
	Flows       int   // distinct destination hosts (default 48)
	DurationNs  uint64
	Seed        int64
}

func (p *ShardScaleParams) defaults() {
	if len(p.ShardCounts) == 0 {
		p.ShardCounts = []int{1, 2, 4, 8}
	}
	if p.Flows == 0 {
		p.Flows = 48
	}
	if p.Flows > 64 {
		p.Flows = 64 // the bound distribution tracks hosts in one /26
	}
	if p.DurationNs == 0 {
		p.DurationNs = 2e6
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

func shardScaleStream(p ShardScaleParams) traffic.Stream {
	dests := make([]packet.IP4, p.Flows)
	for i := range dests {
		dests[i] = packet.ParseIP4(10, 0, 0, byte(i))
	}
	return &traffic.LoadBalanced{Dests: dests, Rate: 50e6, End: p.DurationNs, Seed: p.Seed, Jitter: 0.3}
}

// ShardScale runs the sweep. Every shard count builds its own runtimes and
// replays its own copy of the generator, so the rows fan out over the worker
// pool and reduce in index order.
func ShardScale(params ShardScaleParams) ([]ShardScaleRow, error) {
	params.defaults()
	rows := make([]ShardScaleRow, len(params.ShardCounts))
	errs := make([]error, len(params.ShardCounts))
	forEach(len(params.ShardCounts), func(i int) {
		rows[i], errs[i] = shardScaleRun(params, params.ShardCounts[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func shardScaleRun(params ShardScaleParams, shards int) (ShardScaleRow, error) {
	lib := stat4p4.Build(stat4p4.Options{Slots: 1, Size: 64, Stages: 1})
	sr, err := stat4p4.NewShardedRuntime(lib, shards)
	if err != nil {
		return ShardScaleRow{}, err
	}
	defer sr.Close()
	serial, err := stat4p4.NewRuntime(lib)
	if err != nil {
		return ShardScaleRow{}, err
	}
	dstBase := uint64(packet.ParseIP4(10, 0, 0, 0))
	if _, err := sr.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, dstBase, 64, 1, 1, 0); err != nil {
		return ShardScaleRow{}, err
	}
	if _, err := serial.BindFreqDst(0, 0, stat4p4.AllIPv4(), 0, dstBase, 64, 1, 1, 0); err != nil {
		return ShardScaleRow{}, err
	}

	st := shardScaleStream(params)
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		sr.Sharded().ProcessPacket(p.TsNs, 1, p.Frame)
		serial.Switch().ProcessPacket(p.TsNs, 1, p.Frame)
	}

	row := ShardScaleRow{Shards: shards}
	for i := 0; i < shards; i++ {
		in := sr.Sharded().Shard(i).Stats().PktsIn
		row.Packets += in
		if in > row.MaxShardPackets {
			row.MaxShardPackets = in
		}
	}
	if row.MaxShardPackets > 0 {
		row.ModeledSpeedup = float64(row.Packets) / float64(row.MaxShardPackets)
	}

	merged := sr.MergedSnapshot()
	want := serial.Switch().Snapshot()
	lib.CanonicalizeSnapshot(want, sr.FreqSlots())
	row.Equivalent = true
	for name, cells := range want.Registers {
		got := merged.Registers[name]
		for i := range cells {
			if got[i] != cells[i] {
				row.Equivalent = false
			}
		}
	}
	return row, nil
}

// FormatShardScale renders the sweep as a text table.
func FormatShardScale(rows []ShardScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-9s %-10s %-9s %s\n", "shards", "packets", "max-shard", "speedup", "equivalent")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7d %-9d %-10d %-9.2f %v\n",
			r.Shards, r.Packets, r.MaxShardPackets, r.ModeledSpeedup, r.Equivalent)
	}
	return b.String()
}
