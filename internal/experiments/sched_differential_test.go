package experiments

import (
	"fmt"
	"testing"

	"stat4/internal/netem"
)

// TestCaseStudySchedDifferential runs the same case study under the wheel
// and the reference heap scheduler and requires byte-identical results —
// detection outcome, every timestamp, and the full drill-down log. The
// second configuration's virtual duration crosses the wheel's 2^32 ns
// horizon, so the overflow path is exercised end to end, not just in unit
// tests.
func TestCaseStudySchedDifferential(t *testing.T) {
	configs := []CaseStudyParams{
		{IntervalShift: 20, WindowSize: 20, PacketsPerInterval: 100, CtrlDelay: 50e6, Seed: 5},
		{IntervalShift: 20, WindowSize: 20, PacketsPerInterval: 60, CtrlDelay: 600e6, Seed: 11},
	}
	if testing.Short() {
		configs = configs[:1]
	}
	run := func(mode netem.SchedMode, params CaseStudyParams) string {
		prev := netem.DefaultSched
		netem.DefaultSched = mode
		defer func() { netem.DefaultSched = prev }()
		res, err := CaseStudy(params)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", res)
	}
	for i, params := range configs {
		wheel := run(netem.SchedWheel, params)
		hp := run(netem.SchedHeap, params)
		if wheel != hp {
			t.Fatalf("config %d: results differ across schedulers\nwheel: %s\nheap:  %s", i, wheel, hp)
		}
	}
}
