package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(0..n-1) on a bounded worker pool of GOMAXPROCS goroutines
// and returns when all calls finish. The sweeps it drives are embarrassingly
// parallel — every index builds its own Switch, Sim and RNG from an
// index-derived seed, so the documented single-goroutine data-plane contract
// holds per worker and results land in index-addressed slots. Callers reduce
// those slots in index order afterwards, which makes the parallel output
// byte-identical to the old serial loops.
func forEach(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Work-stealing off a shared counter rather than i%workers striping:
	// virtual-time runs vary wildly in length (a 2 s-interval case study is
	// ~50× a 8 ms one), and a stripe that happens to collect the long runs
	// would serialise the sweep again.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
