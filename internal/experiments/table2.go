package experiments

import (
	"fmt"
	"math/rand"

	"stat4/internal/baseline"
	"stat4/internal/intstat"
)

// Table2Row is one row of Table 2: the percentage error of the approximate
// square root with respect to the fractional square root, summarised over an
// input range.
type Table2Row struct {
	Label    string
	Lo, Hi   uint64 // inclusive range of input numbers y
	P50      float64
	P90      float64
	Max      float64
	Footnote string
}

var table2Ranges = []struct {
	label  string
	lo, hi uint64
	note   string
}{
	{"1-10", 1, 10, "for small numbers, the percentage error is high but the absolute error is low"},
	{"10-100", 10, 100, ""},
	{"100-1000", 100, 1000, ""},
	{"1000-10000", 1000, 10000, ""},
}

// sqrtFn lets the harness summarise either the default or the rounding
// variant (the ablation).
type sqrtFn func(uint64) uint64

// Table2 regenerates Table 2 exhaustively: every integer in each range is
// evaluated with the paper's metric (absolute error against the fractional
// square root, as a percentage of the input number — see
// baseline.SqrtErrorVsInput), and the error percentiles are reported. The
// paper's own percentiles come from the operands observed "in our
// experiments"; the reproduction targets are the range maxima and the
// per-decade error decay.
func Table2() []Table2Row {
	return table2With(intstat.SqrtApprox)
}

// Table2Rounding is Table 2 for the rounding ablation variant.
func Table2Rounding() []Table2Row {
	return table2With(intstat.SqrtApproxRound)
}

func table2With(fn sqrtFn) []Table2Row {
	rows := make([]Table2Row, 0, len(table2Ranges))
	for _, r := range table2Ranges {
		errs := make([]float64, 0, r.hi-r.lo+1)
		for y := r.lo; y <= r.hi; y++ {
			errs = append(errs, baseline.SqrtErrorVsInput(y, fn(y)))
		}
		rows = append(rows, Table2Row{
			Label:    r.label,
			Lo:       r.lo,
			Hi:       r.hi,
			P50:      baseline.PercentileOf(errs, 50),
			P90:      baseline.PercentileOf(errs, 90),
			Max:      baseline.MaxOf(errs),
			Footnote: r.note,
		})
	}
	return rows
}

// Table2Workload summarises the error over operands that actually occur as
// variances in a frequency-tracking workload, closer to the paper's "as
// reported in our experiments": it replays the echo validation stream and
// collects the variance passed to the square root whenever it falls in each
// range.
func Table2Workload(packets int, seed int64) []Table2Row {
	rng := rand.New(rand.NewSource(seed))
	// Reproduce the echo workload's variance sequence with the reference
	// library (equal to the switch's by the cross-validation tests).
	freq := make([]uint64, 512)
	var n, sum, sumsq uint64
	perRange := make([][]float64, len(table2Ranges))
	for i := 0; i < packets; i++ {
		v := uint64(rng.Intn(511))
		f := freq[v]
		if f == 0 {
			n++
		}
		sum++
		sumsq += 2*f + 1
		freq[v] = f + 1
		variance := n*sumsq - sum*sum
		for ri, r := range table2Ranges {
			if variance >= r.lo && variance <= r.hi {
				perRange[ri] = append(perRange[ri],
					baseline.SqrtErrorVsInput(variance, intstat.SqrtApprox(variance)))
			}
		}
	}
	rows := make([]Table2Row, 0, len(table2Ranges))
	for ri, r := range table2Ranges {
		row := Table2Row{Label: r.label, Lo: r.lo, Hi: r.hi}
		if len(perRange[ri]) > 0 {
			row.P50 = baseline.PercentileOf(perRange[ri], 50)
			row.P90 = baseline.PercentileOf(perRange[ri], 90)
			row.Max = baseline.MaxOf(perRange[ri])
		}
		rows = append(rows, row)
	}
	return rows
}

// PaperTable2 holds the published numbers for side-by-side reporting.
var PaperTable2 = []Table2Row{
	{Label: "1-10", P50: 0.03, P90: 0.10, Max: 0.20},
	{Label: "10-100", P50: 0.004, P90: 0.014, Max: 0.038},
	{Label: "100-1000", P50: 0.0005, P90: 0.0014, Max: 0.0044},
	{Label: "1000-10000", P50: 0.0001, P90: 0.0001, Max: 0.0005},
}

// FormatTable2 renders measured rows next to the paper's.
func FormatTable2(rows []Table2Row) string {
	out := "input number y   50th perc   90th perc      max     (paper: 50th/90th/max)\n"
	for i, r := range rows {
		paper := ""
		if i < len(PaperTable2) {
			p := PaperTable2[i]
			paper = fmt.Sprintf("(%5.2f%% /%5.2f%% /%5.2f%%)", 100*p.P50, 100*p.P90, 100*p.Max)
		}
		out += fmt.Sprintf("%-15s %9.2f%% %10.2f%% %9.2f%%  %s\n",
			r.Label, 100*r.P50, 100*r.P90, 100*r.Max, paper)
	}
	return out
}
