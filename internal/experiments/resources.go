package experiments

import (
	"fmt"

	"stat4/internal/p4"
	"stat4/internal/stat4p4"
)

// ResourceRow pairs a named configuration with its static analysis.
type ResourceRow struct {
	Config string
	Report p4.ResourceReport
}

// Resources regenerates the Section 4 resource-consumption evaluation over
// the emitted Stat4 programs:
//
//   - "case-study" is sized like the paper's application (two distribution
//     slots, 128 cells, 32-bit registers, small binding tables) and is the
//     row to compare against the paper's 3.1 KB;
//   - "override-only" isolates the circular-buffer override path, the
//     paper's longest (12-step) chain, by dropping the variance/σ logic;
//   - "default" and "strict" are the library's shipping configurations.
func Resources() []ResourceRow {
	cases := []struct {
		name string
		opts stat4p4.Options
	}{
		{"case-study", stat4p4.Options{Slots: 2, Size: 128, Stages: 2, CellWidth: 32, BindEntries: 8, FwdEntries: 8}},
		{"override-only", stat4p4.Options{Slots: 2, Size: 128, Stages: 1, CellWidth: 32, BindEntries: 8, FwdEntries: 8, NoVariance: true}},
		{"default", stat4p4.Options{Slots: 8, Size: 256, Stages: 2}},
		{"default+echo", stat4p4.Options{Slots: 8, Size: 256, Stages: 2, Echo: true}},
		{"strict", stat4p4.Options{Slots: 8, Size: 256, Stages: 2, Strict: true, StrictCapShift: 7}},
	}
	rows := make([]ResourceRow, 0, len(cases))
	for _, c := range cases {
		lib := stat4p4.Build(c.opts)
		rows = append(rows, ResourceRow{Config: c.name, Report: p4.AnalyzeProgram(lib.Prog)})
	}
	return rows
}

// FormatResources renders the resource table with the paper's reference
// points.
func FormatResources(rows []ResourceRow) string {
	out := "config          total     registers  tables   rule-deps  longest-chain\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %7.1fKB  %7.1fKB %7.1fKB  %6d     %6d\n",
			r.Config,
			float64(r.Report.TotalBytes)/1024,
			float64(r.Report.RegisterBytes)/1024,
			float64(r.Report.TableBytes)/1024,
			r.Report.MatchRuleDependencies,
			r.Report.LongestDepChain)
	}
	out += "paper: case-study app occupies 3.1KB, at most 1 dependency between\n"
	out += "match-action rules, longest sequential chain 12 steps (buffer override)\n"
	return out
}
