// Package experiments reproduces the paper's quantitative claims as runnable
// measurements: the Table 2 square-root error profile, the Table 3 percentile
// accuracy sweep, the case-study detection timeline, resource footprints per
// emission mode, and the ablations the reference library enables (lazy vs
// eager standard deviation, one-step vs settled percentile markers, strict vs
// multiply-capable emission).
//
// Each experiment is a pure function from parameters to result rows so the
// test suite can assert on the numbers and cmd/stat4-experiments can print
// them as tables. Everything here is host-side analysis code: nothing in this
// package is annotated //stat4:datapath, and it may freely use floating
// point, division and iteration that the datapath packages cannot.
package experiments
