package p4

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// MatchKind selects how a table key field is matched.
type MatchKind uint8

// Match kinds.
const (
	MatchExact   MatchKind = iota
	MatchLPM               // longest prefix match; must be a table's only key
	MatchTernary           // value/mask with explicit priority
)

// String returns the kind's P4 name.
func (k MatchKind) String() string {
	switch k {
	case MatchExact:
		return "exact"
	case MatchLPM:
		return "lpm"
	case MatchTernary:
		return "ternary"
	default:
		return fmt.Sprintf("MatchKind(%d)", uint8(k))
	}
}

// KeySpec is one match key of a table.
type KeySpec struct {
	Field FieldID
	Kind  MatchKind
}

// TableDef declares a match-action table: its keys, the actions entries may
// bind, a default action for misses, and a capacity.
type TableDef struct {
	Name          string
	Keys          []KeySpec
	ActionNames   []string
	DefaultAction string
	DefaultArgs   []uint64
	MaxEntries    int
}

// MatchValue is the per-key match data of an entry: the value plus a prefix
// length (LPM) or mask (ternary). Exact keys use only Value.
type MatchValue struct {
	Value     uint64
	PrefixLen int    // LPM: number of leading bits that must match (of the field width)
	Mask      uint64 // ternary: 1-bits must match
}

// EntryID names an installed entry for modification and deletion.
type EntryID uint64

// Entry is an installed table entry.
type Entry struct {
	ID       EntryID
	Match    []MatchValue
	Priority int // ternary tie-break: higher wins
	Action   string
	Args     []uint64

	// act is the action resolved against the owning switch's compiled plan,
	// bound when the entry is installed or modified — the rule-install-time
	// resolution a real driver does, so the per-packet path never looks the
	// name up. Restore rebinds it: a snapshot may cross switch instances.
	act *compiledAction
}

// Errors returned by runtime table operations.
var (
	ErrTableFull    = errors.New("p4: table full")
	ErrNoSuchEntry  = errors.New("p4: no such entry")
	ErrBadEntry     = errors.New("p4: malformed entry")
	ErrNoSuchTable  = errors.New("p4: no such table")
	ErrNoSuchAction = errors.New("p4: no such action")
)

// table is the runtime state of a TableDef inside a Switch.
type table struct {
	def    *TableDef
	prog   *Program
	mu     sync.RWMutex
	nextID EntryID
	// entries in insertion order; lookup scans and picks the best match
	// (longest prefix for LPM, highest priority for ternary, first for
	// exact). Table sizes in the Stat4 programs are tens of entries, so a
	// scan is faithful to TCAM semantics and fast enough.
	entries []*Entry

	// acts is the switch's compiled action set, installed by compile();
	// insert/modify/Restore resolve entry actions against it.
	acts map[string]*compiledAction

	hits, misses atomic.Uint64
}

func newTable(def *TableDef, prog *Program) *table {
	return &table{def: def, prog: prog, nextID: 1}
}

func (t *table) validateEntry(match []MatchValue, action string, args []uint64, prio int) error {
	if len(match) != len(t.def.Keys) {
		return fmt.Errorf("%w: %d match values for %d keys", ErrBadEntry, len(match), len(t.def.Keys))
	}
	for i, k := range t.def.Keys {
		w := int(t.prog.Fields[k.Field].Width)
		switch k.Kind {
		case MatchLPM:
			if match[i].PrefixLen < 0 || match[i].PrefixLen > w {
				return fmt.Errorf("%w: prefix length %d for %d-bit key", ErrBadEntry, match[i].PrefixLen, w)
			}
		case MatchTernary:
			if prio < 0 {
				return fmt.Errorf("%w: ternary entry needs non-negative priority", ErrBadEntry)
			}
		}
	}
	allowed := false
	for _, an := range t.def.ActionNames {
		if an == action {
			allowed = true
			break
		}
	}
	if !allowed {
		return fmt.Errorf("%w: action %q not bindable in table %q", ErrNoSuchAction, action, t.def.Name)
	}
	a, _ := t.prog.action(action)
	if len(args) != a.NumParams {
		return fmt.Errorf("%w: %d args for action %q taking %d", ErrBadEntry, len(args), action, a.NumParams)
	}
	return nil
}

func (t *table) insert(match []MatchValue, prio int, action string, args []uint64) (EntryID, error) {
	if err := t.validateEntry(match, action, args, prio); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) >= t.def.MaxEntries {
		return 0, fmt.Errorf("%w: %q at capacity %d", ErrTableFull, t.def.Name, t.def.MaxEntries)
	}
	e := &Entry{
		ID:       t.nextID,
		Match:    append([]MatchValue(nil), match...),
		Priority: prio,
		Action:   action,
		Args:     append([]uint64(nil), args...),
		act:      t.acts[action],
	}
	t.nextID++
	t.entries = append(t.entries, e)
	return e.ID, nil
}

func (t *table) modify(id EntryID, action string, args []uint64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.entries {
		if e.ID == id {
			if err := t.validateEntry(e.Match, action, args, e.Priority); err != nil {
				return err
			}
			e.Action = action
			e.Args = append([]uint64(nil), args...)
			e.act = t.acts[action]
			return nil
		}
	}
	return fmt.Errorf("%w: id %d in %q", ErrNoSuchEntry, id, t.def.Name)
}

func (t *table) remove(id EntryID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, e := range t.entries {
		if e.ID == id {
			t.entries = append(t.entries[:i], t.entries[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: id %d in %q", ErrNoSuchEntry, id, t.def.Name)
}

func (t *table) entryCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// lookup returns the best-matching entry for the key values, or nil on miss.
// The scan over installed entries simulates what a TCAM does in one parallel
// match cycle; entry counts in the Stat4 programs are tens, set by the
// control plane, not by traffic.
//
//stat4:datapath
func (t *table) lookup(keys []uint64) *Entry {
	// Explicit unlock at the single exit below: a defer frame per lookup
	// allocates in the per-packet hot path (allocfree).
	t.mu.RLock()
	var best *Entry
	bestRank := -1
	//stat4:exempt:boundedloop simulates the TCAM's single-cycle parallel match over installed entries
	for _, e := range t.entries {
		if !t.matches(e, keys) {
			continue
		}
		rank := 0
		if len(t.def.Keys) == 1 {
			switch t.def.Keys[0].Kind {
			case MatchLPM:
				rank = e.Match[0].PrefixLen
			case MatchTernary:
				rank = e.Priority
			}
		} else {
			rank = e.Priority
		}
		if rank > bestRank {
			best, bestRank = e, rank
		}
	}
	if best != nil {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	t.mu.RUnlock()
	return best
}

// matches reports whether one entry matches the key values, per key kind.
//
//stat4:datapath
func (t *table) matches(e *Entry, keys []uint64) bool {
	//stat4:exempt:boundedloop a table's key list is fixed when the program is emitted
	for i, k := range t.def.Keys {
		w := t.prog.Fields[k.Field].Width
		v := keys[i] & widthMask(w)
		mv := e.Match[i]
		switch k.Kind {
		case MatchExact:
			if v != mv.Value&widthMask(w) {
				return false
			}
		case MatchLPM:
			shift := uint(w) - uint(mv.PrefixLen)
			if mv.PrefixLen == 0 {
				continue
			}
			if v>>shift != (mv.Value&widthMask(w))>>shift { //stat4:exempt:shiftconst simulates the TCAM prefix mask; the prefix length is entry data, not packet data
				return false
			}
		case MatchTernary:
			if v&mv.Mask != mv.Value&mv.Mask {
				return false
			}
		}
	}
	return true
}

// widthMask returns the all-ones value of a declared field or register
// width, which is fixed when the program is emitted.
//
//stat4:datapath
func widthMask(w Width) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<w - 1 //stat4:exempt:shiftconst w is a compile-time field width of the emitted program
}
