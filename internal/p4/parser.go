package p4

import "stat4/internal/packet"

// StdFields holds the IDs of the standard metadata fields every program
// declares: intrinsic metadata (port, timestamp, length, egress, drop) and
// the parsed header fields of the Ethernet/IPv4/TCP/UDP stack plus the Stat4
// echo header. DeclareStdFields registers them on a program; the switch's
// fixed-function parser fills them per packet.
type StdFields struct {
	InPort  FieldID // std.in_port
	TsNs    FieldID // std.ts_ns, ingress timestamp in ns
	WireLen FieldID // std.wire_len, frame length in bytes
	Egress  FieldID // std.egress, output port chosen by the program
	Drop    FieldID // std.drop, 1 to drop

	EthType FieldID // eth.type

	IPv4Valid FieldID // ipv4.valid
	IPv4Src   FieldID // ipv4.src
	IPv4Dst   FieldID // ipv4.dst
	IPv4Proto FieldID // ipv4.proto
	IPv4Len   FieldID // ipv4.len

	TCPValid FieldID // tcp.valid
	TCPSport FieldID // tcp.sport
	TCPDport FieldID // tcp.dport
	TCPFlags FieldID // tcp.flags
	TCPSyn   FieldID // tcp.syn — 1 for a connection-attempt SYN

	UDPValid FieldID // udp.valid
	UDPSport FieldID // udp.sport
	UDPDport FieldID // udp.dport

	EchoValid FieldID // echo.valid
	EchoValue FieldID // echo.value, the request integer biased by +32768 into unsigned space
}

// EchoBias shifts the signed echo test integer (−255..255 on the wire,
// int16) into unsigned space so it can index frequency counters: stored
// value = raw + 32768. The echo application then subtracts its own base.
const EchoBias = 32768

// DeclareStdFields declares the standard fields on a program and returns
// their IDs.
func DeclareStdFields(p *Program) StdFields {
	return StdFields{
		InPort:  p.AddField("std.in_port", 16),
		TsNs:    p.AddField("std.ts_ns", 64),
		WireLen: p.AddField("std.wire_len", 32),
		Egress:  p.AddField("std.egress", 16),
		Drop:    p.AddField("std.drop", 1),

		EthType: p.AddField("eth.type", 16),

		IPv4Valid: p.AddField("ipv4.valid", 1),
		IPv4Src:   p.AddField("ipv4.src", 32),
		IPv4Dst:   p.AddField("ipv4.dst", 32),
		IPv4Proto: p.AddField("ipv4.proto", 8),
		IPv4Len:   p.AddField("ipv4.len", 16),

		TCPValid: p.AddField("tcp.valid", 1),
		TCPSport: p.AddField("tcp.sport", 16),
		TCPDport: p.AddField("tcp.dport", 16),
		TCPFlags: p.AddField("tcp.flags", 8),
		TCPSyn:   p.AddField("tcp.syn", 1),

		UDPValid: p.AddField("udp.valid", 1),
		UDPSport: p.AddField("udp.sport", 16),
		UDPDport: p.AddField("udp.dport", 16),

		EchoValid: p.AddField("echo.valid", 1),
		EchoValue: p.AddField("echo.value", 17),
	}
}

// extract fills the standard fields from a decoded packet, the simulator's
// fixed parse graph.
func (s StdFields) extract(ctx *Ctx, tsNs uint64, inPort uint16, pkt *packet.Packet) {
	ctx.Set(s.InPort, uint64(inPort))
	ctx.Set(s.TsNs, tsNs)
	ctx.Set(s.WireLen, uint64(pkt.WireLen))
	ctx.Set(s.EthType, uint64(pkt.Eth.Type))
	if pkt.HasIPv4 {
		ctx.Set(s.IPv4Valid, 1)
		ctx.Set(s.IPv4Src, uint64(pkt.IPv4.Src))
		ctx.Set(s.IPv4Dst, uint64(pkt.IPv4.Dst))
		ctx.Set(s.IPv4Proto, uint64(pkt.IPv4.Proto))
		ctx.Set(s.IPv4Len, uint64(pkt.IPv4.TotalLen))
	}
	if pkt.HasTCP {
		ctx.Set(s.TCPValid, 1)
		ctx.Set(s.TCPSport, uint64(pkt.TCP.SrcPort))
		ctx.Set(s.TCPDport, uint64(pkt.TCP.DstPort))
		ctx.Set(s.TCPFlags, uint64(pkt.TCP.Flags))
		if pkt.TCP.SYN() {
			ctx.Set(s.TCPSyn, 1)
		}
	}
	if pkt.HasUDP {
		ctx.Set(s.UDPValid, 1)
		ctx.Set(s.UDPSport, uint64(pkt.UDP.SrcPort))
		ctx.Set(s.UDPDport, uint64(pkt.UDP.DstPort))
	}
	if pkt.Eth.Type == packet.EtherTypeEcho {
		if req, err := packet.UnmarshalEchoRequest(pkt.Payload); err == nil {
			ctx.Set(s.EchoValid, 1)
			ctx.Set(s.EchoValue, uint64(int64(req.Value)+EchoBias))
		}
	}
}
