// Package p4 is a behavioral-model-style simulator of a P4 programmable
// switch, the substrate the Stat4 library runs on. A Program declares
// metadata fields, register arrays, actions and match-action tables, plus a
// control flow of table applies and branches; a Switch interprets the
// program for every frame.
//
// The simulator enforces the operational restrictions that shaped the
// paper's algorithms, by construction and by a validation pass:
//
//   - the action language has no division, modulo, floating point or loops —
//     only moves, adds and subtracts (wrapping or saturating), bitwise logic
//     and shifts;
//   - shift amounts must be compile-time constants or control-plane-installed
//     action parameters, never packet-dependent values, matching hardware
//     barrel shifters;
//   - control flow is straight-line with nested ifs; there is no way to
//     express iteration or recirculation;
//   - state lives in register arrays with bounded cells and widths.
//
// The control plane manipulates tables at runtime (insert, modify, delete)
// without touching the program, which is how Stat4's binding tables retune
// the tracked distributions on the fly. Alerts leave the data plane as
// digests on a bounded channel.
//
// Static analysis over the same representation produces the resource and
// dependency report of Section 4: register footprint, table footprint,
// match-rule dependencies and the longest sequential dependency chain.
package p4

import (
	"errors"
	"fmt"
	"sort"
)

// Width is a field or register cell width in bits (1..64).
type Width uint8

// FieldID indexes a metadata field declared in a Program.
type FieldID int

// FieldDef declares one metadata field.
type FieldDef struct {
	Name  string
	Width Width
}

// MergeKind classifies how a register array combines across replicas of the
// same program (the per-core shards of a ShardedSwitch, or switches sharing
// a monitoring role). It drives MergedSnapshot, not the data plane.
type MergeKind uint8

const (
	// MergeSum registers hold additive state — frequency counters, packet
	// and byte sums — whose cells add across replicas, masked to the cell
	// width. This is the default: the paper's scaled moments are built
	// entirely from such sums, which is what makes Stat4 state mergeable.
	MergeSum MergeKind = iota
	// MergeDerived registers hold values computed from other registers
	// (variance, standard deviation, percentile markers) or replica-local
	// scratch. They do not add: Σ(f+g)² ≠ Σf² + Σg². Merged snapshots zero
	// them; consumers recompute from the merged MergeSum state.
	MergeDerived
)

// String names the kind the way SetRegisterMerge callers write it.
func (k MergeKind) String() string {
	switch k {
	case MergeSum:
		return "MergeSum"
	case MergeDerived:
		return "MergeDerived"
	}
	return fmt.Sprintf("MergeKind(%d)", uint8(k))
}

// RegisterDef declares a register array.
type RegisterDef struct {
	Name  string
	Cells int
	Width Width
	Merge MergeKind

	// MergeExplicit records that the program builder declared the merge
	// kind with SetRegisterMerge rather than inheriting the MergeSum zero
	// value. The mergelaw static analysis requires every register of a
	// registered program to declare its kind explicitly, so a forgotten
	// declaration cannot silently make non-additive state look additive.
	MergeExplicit bool

	// MergeWhy documents why a MergeDerived register is not recomputed by
	// the program's snapshot canonicalizer (replica-local scratch, clock-
	// driven window state, hash-order bucket keys). mergelaw demands either
	// a place in the canonicalizer's recompute set or this note.
	MergeWhy string
}

// Bytes returns the array's memory footprint in bytes, rounding each cell up
// to whole bytes as an SRAM allocator would.
func (r RegisterDef) Bytes() int {
	return r.Cells * int((r.Width+7)/8)
}

// Program is a complete data-plane program: declarations plus the ingress
// control flow. Build one with NewProgram and the Add helpers, then hand it
// to NewSwitch, which validates it.
type Program struct {
	Name      string
	Target    Target
	Fields    []FieldDef
	Registers []RegisterDef
	Actions   []*Action
	Tables    []*TableDef
	Control   []Stmt

	// RecircControl is the program's recirculation pass: when Control leaves
	// the field named by RecircField non-zero, the packet makes exactly one
	// extra trip through these statements (with the flag cleared first, so
	// the pass cannot re-request itself — the bound is structural, not a
	// counter). This models the "recirculate with probability 2^-k" path of
	// probabilistic-recirculation heavy hitters: the main pass samples, the
	// extra pass promotes. Set with SetRecirc; the stage allocator charges
	// the pass against the stages left after the main placement, which is how
	// the pisa-3pass budget gates recirculating programs.
	RecircControl []Stmt
	// RecircField is the metadata flag requesting the extra pass.
	RecircField FieldID
	hasRecirc   bool

	fieldByName map[string]FieldID
	// mergeExempt records declared exceptions to the mergelaw write
	// discipline, keyed by "action\x00register" — see ExemptMergeWrite.
	mergeExempt map[string]string
}

// Target is a validation profile describing what the hardware supports.
type Target struct {
	Name string
	// AllowMul permits multiplication of two runtime values. The P4
	// behavioral model supports it; switching ASICs generally do not,
	// forcing the shift-based approximations of Section 2.
	AllowMul bool
}

// Built-in targets.
var (
	// TargetBMv2 models the P4 behavioral model the paper validates on.
	TargetBMv2 = Target{Name: "bmv2", AllowMul: true}
	// TargetStrict models a hardware pipeline without runtime multiply.
	TargetStrict = Target{Name: "strict", AllowMul: false}
)

// NewProgram returns an empty program validated against TargetBMv2; set
// Target before Validate to lint for stricter hardware.
func NewProgram(name string) *Program {
	return &Program{Name: name, Target: TargetBMv2, fieldByName: make(map[string]FieldID)}
}

// AddField declares a metadata field and returns its ID. Redeclaring a name
// panics: programs are built by trusted code at startup.
func (p *Program) AddField(name string, w Width) FieldID {
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("p4: field %q width %d out of range", name, w))
	}
	if _, dup := p.fieldByName[name]; dup {
		panic(fmt.Sprintf("p4: duplicate field %q", name))
	}
	id := FieldID(len(p.Fields))
	p.Fields = append(p.Fields, FieldDef{Name: name, Width: w})
	p.fieldByName[name] = id
	return id
}

// FieldByName returns the ID of a declared field.
func (p *Program) FieldByName(name string) (FieldID, bool) {
	id, ok := p.fieldByName[name]
	return id, ok
}

// AddRegister declares a register array.
func (p *Program) AddRegister(name string, cells int, w Width) {
	if cells <= 0 {
		panic(fmt.Sprintf("p4: register %q with %d cells", name, cells))
	}
	if w == 0 || w > 64 {
		panic(fmt.Sprintf("p4: register %q width %d out of range", name, w))
	}
	p.Registers = append(p.Registers, RegisterDef{Name: name, Cells: cells, Width: w})
}

// SetRegisterMerge tags a declared register with its cross-replica merge
// behaviour. Like the Add helpers it is called by trusted program builders
// at startup, so an unknown name panics.
func (p *Program) SetRegisterMerge(name string, k MergeKind) {
	for i := range p.Registers {
		if p.Registers[i].Name == name {
			p.Registers[i].Merge = k
			p.Registers[i].MergeExplicit = true
			return
		}
	}
	panic(fmt.Sprintf("p4: SetRegisterMerge of undeclared register %q", name))
}

// SetMergeWhy documents why a MergeDerived register is outside the snapshot
// canonicalizer's recompute set (see RegisterDef.MergeWhy). Unknown names
// panic, like the other trusted-builder setters.
func (p *Program) SetMergeWhy(name, why string) {
	for i := range p.Registers {
		if p.Registers[i].Name == name {
			p.Registers[i].MergeWhy = why
			return
		}
	}
	panic(fmt.Sprintf("p4: SetMergeWhy of undeclared register %q", name))
}

// ExemptMergeWrite declares that the named action intentionally writes the
// named MergeSum register non-additively, with a documented reason — the
// program-level counterpart of a //stat4:exempt directive. The mergelaw
// analysis accepts the write but reports exemptions that name an unknown
// action or register, or that no violation actually uses.
func (p *Program) ExemptMergeWrite(action, register, reason string) {
	if reason == "" {
		panic(fmt.Sprintf("p4: ExemptMergeWrite(%q, %q) needs a reason", action, register))
	}
	if p.mergeExempt == nil {
		p.mergeExempt = make(map[string]string)
	}
	p.mergeExempt[action+"\x00"+register] = reason
}

// MergeWriteExemption returns the declared reason for a non-additive write
// of register by action, if any.
func (p *Program) MergeWriteExemption(action, register string) (string, bool) {
	r, ok := p.mergeExempt[action+"\x00"+register]
	return r, ok
}

// MergeWriteExemptions returns every declared exemption as (action,
// register, reason) triples in deterministic order.
func (p *Program) MergeWriteExemptions() [][3]string {
	out := make([][3]string, 0, len(p.mergeExempt))
	for k, reason := range p.mergeExempt {
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				out = append(out, [3]string{k[:i], k[i+1:], reason})
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// SetRecirc installs the recirculation pass: flag is the metadata field whose
// non-zero value at the end of the main control flow requests the single
// extra pass over stmts. Like the Add helpers it is called by trusted program
// builders at startup.
func (p *Program) SetRecirc(flag FieldID, stmts []Stmt) {
	if len(stmts) == 0 {
		panic("p4: SetRecirc with an empty pass")
	}
	p.RecircField = flag
	p.RecircControl = stmts
	p.hasRecirc = true
}

// HasRecirc reports whether the program declares a recirculation pass.
func (p *Program) HasRecirc() bool { return p.hasRecirc }

// AddAction declares an action.
func (p *Program) AddAction(a *Action) {
	p.Actions = append(p.Actions, a)
}

// AddTable declares a match-action table.
func (p *Program) AddTable(t *TableDef) {
	p.Tables = append(p.Tables, t)
}

// action looks an action up by name. The scan is over the program's declared
// actions, resolved per dispatch here but at compile time on a real target.
//
//stat4:datapath
func (p *Program) action(name string) (*Action, bool) {
	//stat4:exempt:boundedloop the action list is fixed when the program is emitted; a real target resolves the name at compile time
	for _, a := range p.Actions {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// table looks a table definition up by name.
func (p *Program) table(name string) (*TableDef, bool) {
	for _, t := range p.Tables {
		if t.Name == name {
			return t, true
		}
	}
	return nil, false
}

// register looks a register definition up by name.
func (p *Program) register(name string) (RegisterDef, bool) {
	for _, r := range p.Registers {
		if r.Name == name {
			return r, true
		}
	}
	return RegisterDef{}, false
}

// ErrInvalidProgram wraps all validation failures reported by Validate.
var ErrInvalidProgram = errors.New("p4: invalid program")

// Validate checks the program is well formed and P4-legal: every reference
// resolves, opcode operands have the right kinds, shift amounts are not
// packet-dependent, and table default actions exist. NewSwitch calls it;
// it is exported so tools can lint programs without instantiating state.
func (p *Program) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidProgram, fmt.Sprintf(format, args...))
	}
	seenReg := map[string]bool{}
	for _, r := range p.Registers {
		if seenReg[r.Name] {
			return fail("duplicate register %q", r.Name)
		}
		seenReg[r.Name] = true
	}
	seenAct := map[string]bool{}
	for _, a := range p.Actions {
		if seenAct[a.Name] {
			return fail("duplicate action %q", a.Name)
		}
		seenAct[a.Name] = true
		for i, op := range a.Ops {
			if err := p.validateOp(a, i, op); err != nil {
				return err
			}
		}
	}
	seenTbl := map[string]bool{}
	for _, t := range p.Tables {
		if seenTbl[t.Name] {
			return fail("duplicate table %q", t.Name)
		}
		seenTbl[t.Name] = true
		for _, k := range t.Keys {
			if int(k.Field) >= len(p.Fields) || k.Field < 0 {
				return fail("table %q keys on undeclared field %d", t.Name, k.Field)
			}
		}
		if len(t.Keys) > 1 {
			for _, k := range t.Keys {
				if k.Kind == MatchLPM {
					return fail("table %q: LPM keys must be the sole key", t.Name)
				}
			}
		}
		for _, an := range t.ActionNames {
			if _, ok := p.action(an); !ok {
				return fail("table %q references undeclared action %q", t.Name, an)
			}
		}
		if t.DefaultAction != "" {
			if _, ok := p.action(t.DefaultAction); !ok {
				return fail("table %q default action %q undeclared", t.Name, t.DefaultAction)
			}
		}
		if t.MaxEntries <= 0 {
			return fail("table %q has non-positive capacity", t.Name)
		}
	}
	if err := p.validateStmts(p.Control, 0); err != nil {
		return err
	}
	if len(p.RecircControl) > 0 {
		if !p.hasRecirc {
			return fail("RecircControl set without SetRecirc; the flag field is undeclared")
		}
		if int(p.RecircField) >= len(p.Fields) || p.RecircField < 0 {
			return fail("recirculation flag references undeclared field %d", p.RecircField)
		}
		return p.validateStmts(p.RecircControl, 0)
	}
	return nil
}

func (p *Program) validateStmts(stmts []Stmt, depth int) error {
	const maxIfDepth = 64 // generous; hardware pipelines are far shallower
	if depth > maxIfDepth {
		return fmt.Errorf("%w: if-nesting exceeds %d", ErrInvalidProgram, maxIfDepth)
	}
	for _, s := range stmts {
		switch st := s.(type) {
		case ApplyStmt:
			if _, ok := p.table(st.Table); !ok {
				return fmt.Errorf("%w: apply of undeclared table %q", ErrInvalidProgram, st.Table)
			}
		case CallStmt:
			a, ok := p.action(st.Action)
			if !ok {
				return fmt.Errorf("%w: call of undeclared action %q", ErrInvalidProgram, st.Action)
			}
			if len(st.Args) != a.NumParams {
				return fmt.Errorf("%w: call of %q with %d args, want %d",
					ErrInvalidProgram, st.Action, len(st.Args), a.NumParams)
			}
		case IfStmt:
			if err := p.validateRef(st.Cond.A, -1); err != nil {
				return err
			}
			if err := p.validateRef(st.Cond.B, -1); err != nil {
				return err
			}
			if err := p.validateStmts(st.Then, depth+1); err != nil {
				return err
			}
			if err := p.validateStmts(st.Else, depth+1); err != nil {
				return err
			}
		default:
			return fmt.Errorf("%w: unknown statement %T", ErrInvalidProgram, s)
		}
	}
	return nil
}

func (p *Program) validateRef(r Ref, numParams int) error {
	switch r.Kind {
	case RefConst:
		return nil
	case RefField:
		if int(r.Field) >= len(p.Fields) || r.Field < 0 {
			return fmt.Errorf("%w: reference to undeclared field %d", ErrInvalidProgram, r.Field)
		}
		return nil
	case RefParam:
		if numParams < 0 {
			return fmt.Errorf("%w: parameter reference outside an action", ErrInvalidProgram)
		}
		if r.Param < 0 || r.Param >= numParams {
			return fmt.Errorf("%w: parameter %d of %d", ErrInvalidProgram, r.Param, numParams)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown ref kind %d", ErrInvalidProgram, r.Kind)
	}
}

func (p *Program) validateOp(a *Action, i int, op Op) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: action %q op %d: %s", ErrInvalidProgram, a.Name, i, fmt.Sprintf(format, args...))
	}
	needDstField := func() error {
		if op.Dst.Kind != RefField {
			return fail("destination must be a field")
		}
		return p.validateRef(op.Dst, a.NumParams)
	}
	switch op.Code {
	case OpMov, OpNot:
		if err := needDstField(); err != nil {
			return err
		}
		return p.validateRef(op.A, a.NumParams)
	case OpAdd, OpSub, OpSatAdd, OpSatSub, OpAnd, OpOr, OpXor:
		if err := needDstField(); err != nil {
			return err
		}
		if err := p.validateRef(op.A, a.NumParams); err != nil {
			return err
		}
		return p.validateRef(op.B, a.NumParams)
	case OpMul:
		if !p.Target.AllowMul {
			return fail("target %q does not support runtime multiplication", p.Target.Name)
		}
		if err := needDstField(); err != nil {
			return err
		}
		if err := p.validateRef(op.A, a.NumParams); err != nil {
			return err
		}
		return p.validateRef(op.B, a.NumParams)
	case OpShl, OpShr:
		if err := needDstField(); err != nil {
			return err
		}
		if err := p.validateRef(op.A, a.NumParams); err != nil {
			return err
		}
		if op.B.Kind == RefField {
			// The defining hardware restriction: no packet-dependent
			// shift amounts.
			return fail("shift amount must be a constant or action parameter")
		}
		return p.validateRef(op.B, a.NumParams)
	case OpRegRead:
		if err := needDstField(); err != nil {
			return err
		}
		if _, ok := p.register(op.Reg); !ok {
			return fail("undeclared register %q", op.Reg)
		}
		return p.validateRef(op.A, a.NumParams) // index
	case OpRegWrite:
		if _, ok := p.register(op.Reg); !ok {
			return fail("undeclared register %q", op.Reg)
		}
		if err := p.validateRef(op.A, a.NumParams); err != nil { // index
			return err
		}
		return p.validateRef(op.B, a.NumParams) // value
	case OpHash:
		if err := needDstField(); err != nil {
			return err
		}
		if op.HashID < 0 || op.HashID >= NumHashFunctions {
			return fail("hash function %d of %d", op.HashID, NumHashFunctions)
		}
		if op.B.Kind != RefConst {
			return fail("hash mask must be a constant")
		}
		return p.validateRef(op.A, a.NumParams)
	case OpDigest:
		for _, f := range op.Fields {
			if err := p.validateRef(Ref{Kind: RefField, Field: f}, a.NumParams); err != nil {
				return err
			}
		}
		return nil
	case OpSetEgress:
		return p.validateRef(op.A, a.NumParams)
	case OpDrop:
		return nil
	default:
		return fail("unknown opcode %d", op.Code)
	}
}
