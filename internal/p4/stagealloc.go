package p4

// This file is the stage-budget analysis: a greedy allocator that places a
// compiled execution plan (compile.go's []inst) onto the stages of a PISA
// target model and reports whether the program fits. It is the whole-program
// counterpart of AnalyzeProgram's dependency figures — instead of reporting
// the longest def-use chain, it actually performs the allocation the chain
// bounds, against per-stage resource budgets, and says *which* stage every
// table, action op and register access lands in.
//
// The model follows the feed-forward discipline of a reconfigurable match
// table pipeline:
//
//   - a value produced by an ALU op in stage s is consumable from stage s+1;
//   - a table is matched no earlier than its key fields are available, and
//     its actions execute in the match stage or later;
//   - branch conditions are gateway predication: a condition on available
//     values gates its region at no pipeline depth of its own (the emitted
//     nested-if trees correspond to range lookups, not sequential stages);
//   - a register array is a stateful resource: accesses are ordered (an
//     access must land in a strictly later stage than the previous one, so
//     reads observe earlier writes) and each stage gives each register at
//     most one access;
//   - a read-modify-write folds into one stateful-ALU op: a write whose
//     value derives from the same cell's read in the same packet (or is an
//     external value already available at the read's stage) is the
//     write-back half of that read's access — it costs no stage and no
//     extra access, exactly as a stateful ALU reads, modifies and writes a
//     cell in one stage. The modify chain's PHV ops are still charged as
//     ALU work, and a write-back predicated on a later-resolved condition
//     is modeled as the stateful ALU's internal predication;
//   - mutually exclusive code — the two arms of a branch, the candidate
//     actions of one table — shares stage resources (per-stage cost is the
//     max across alternatives, and one register access can serve all arms),
//     because only one alternative executes per packet.
//
// Per-stage budgets (ALU slots, hash units, stateful register accesses,
// tables, SRAM) come from a TargetModel; AllocateStages reports violations
// instead of failing, so an over-budget program still yields a complete
// placement showing how deep a pipeline it would need.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// TargetModel is a PISA pipeline resource profile the stage allocator
// places programs against. The JSON tags are the schema of the target-model
// config (configs/lint-target.json) consumed by cmd/stat4-lint.
type TargetModel struct {
	Name string `json:"name"`
	// Stages is the total placeable pipeline depth. A physical pipeline's
	// depth multiplies by how many passes the deployment spends on the
	// program: ingress + egress is two, each recirculation adds one more.
	Stages int `json:"stages"`
	// ALUsPerStage bounds the action ops one packet executes in one stage
	// (the VLIW lane count). Mutually exclusive actions share lanes.
	ALUsPerStage int `json:"alus_per_stage"`
	// HashUnitsPerStage bounds OpHash evaluations per stage.
	HashUnitsPerStage int `json:"hash_units_per_stage"`
	// RegActionsPerStage bounds distinct register arrays accessed in one
	// stage (the stateful-ALU count). Each register additionally allows at
	// most one access per stage regardless of this budget.
	RegActionsPerStage int `json:"reg_actions_per_stage"`
	// TablesPerStage bounds match-action tables applied in one stage.
	TablesPerStage int `json:"tables_per_stage"`
	// SRAMPerStageBytes bounds the declared state homed in one stage: a
	// table's capacity bytes in its match stage, a register array's bytes
	// in the stage of its first access.
	SRAMPerStageBytes int `json:"sram_per_stage_bytes"`
}

// DefaultTargetModel is the model the feasibility gate runs under: a
// Tofino-like per-stage profile (12-stage pipeline, VLIW action lanes, hash
// and stateful-ALU units, per-stage SRAM) deployed over three passes —
// ingress, egress, and one recirculation — giving 36 placeable stages.
//
// The pass count is itself a finding of this analysis: the window-override
// program (the paper's 12-step-chain claim) fits the two-pass layout, but
// the full variance/σ chain — the serial sqrt leaf plus the threshold
// check downstream of it — needs a third pass on a 12-stage target.
func DefaultTargetModel() TargetModel {
	return TargetModel{
		Name:               "pisa-3pass",
		Stages:             36,
		ALUsPerStage:       32,
		HashUnitsPerStage:  6,
		RegActionsPerStage: 4,
		TablesPerStage:     8,
		SRAMPerStageBytes:  1 << 20,
	}
}

// LoadTargetModel reads and validates a target-model JSON file (the schema
// is TargetModel's JSON tags; configs/lint-target.json mirrors the default).
// Unknown fields are errors, so a typoed budget cannot silently fall back to
// zero and fail validation with a confusing name.
func LoadTargetModel(path string) (TargetModel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return TargetModel{}, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var tm TargetModel
	if err := dec.Decode(&tm); err != nil {
		return TargetModel{}, fmt.Errorf("p4: parsing target model %s: %v", path, err)
	}
	if err := tm.Validate(); err != nil {
		return TargetModel{}, fmt.Errorf("p4: %s: %v", path, err)
	}
	return tm, nil
}

// Validate sanity-checks a (possibly hand-edited) target model.
func (tm TargetModel) Validate() error {
	type bound struct {
		name string
		v    int
	}
	for _, b := range []bound{
		{"stages", tm.Stages},
		{"alus_per_stage", tm.ALUsPerStage},
		{"hash_units_per_stage", tm.HashUnitsPerStage},
		{"reg_actions_per_stage", tm.RegActionsPerStage},
		{"tables_per_stage", tm.TablesPerStage},
		{"sram_per_stage_bytes", tm.SRAMPerStageBytes},
	} {
		if b.v <= 0 {
			return fmt.Errorf("p4: target model %q: %s must be positive, have %d", tm.Name, b.name, b.v)
		}
	}
	return nil
}

// StageUse is the allocation of one pipeline stage.
type StageUse struct {
	ALUs       int      // action ops charged to this stage (max across alternatives)
	HashUnits  int      // hash evaluations
	RegActions int      // distinct register arrays accessed
	SRAMBytes  int      // state homed here (tables + first-touch registers)
	Tables     []string // tables matched in this stage
	Registers  []string // register arrays accessed in this stage
	Homed      []string // register arrays whose SRAM is charged here
}

// StageReport is the stage-placement analysis of one program: the static
// resource report extended with the per-stage allocation against a target
// model.
type StageReport struct {
	ResourceReport
	Model      TargetModel
	Stages     []StageUse // one entry per stage the placement touched
	StagesUsed int        // == len(Stages); > Model.Stages when the program does not fit
	Fit        bool
	// RecircFloor is the stage index where the recirculation pass started
	// placing (the main pass's depth), 0 for programs without one. The
	// recirc pass's own depth is StagesUsed − RecircFloor.
	RecircFloor int
	// Violations lists, deduplicated and in placement order, every reason
	// the program exceeds the model.
	Violations []string
}

// AllocateStages compiles the program (validating it on the way) and places
// the execution plan onto the target model's stages. The error is only for
// invalid programs or models; an over-budget program returns Fit=false with
// the violations listed in the report.
func AllocateStages(prog *Program, tm TargetModel) (*StageReport, error) {
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	// A throwaway switch instance compiles the plan; std fields are not
	// needed because the plan is analyzed, never executed.
	sw, err := NewSwitch(prog, StdFields{}, 1)
	if err != nil {
		return nil, err
	}
	a := &stageAlloc{
		sw:   sw,
		code: sw.plan.code,
		tm:   tm,
		st: &allocState{
			avail:   make([]int, len(prog.Fields)),
			regNext: make(map[string]int),
			tag:     make([]fieldTag, len(prog.Fields)),
			reads:   make(map[string]readSite),
		},
		led:  &stageLedger{},
		seen: make(map[string]bool),
	}
	a.walkRegion(0, len(sw.plan.code), 0)

	recircFloor := 0
	if len(sw.plan.recirc) > 0 {
		// The recirculation pass re-enters the pipeline after the main pass
		// has run to completion, so nothing in it may place before the stages
		// the main placement consumed: its control floor is the main pass's
		// depth. Metadata (PHV) values and register-access ordering carry
		// across the trip, so the dataflow state threads through unchanged.
		recircFloor = len(a.led.stages)
		a.code = sw.plan.recirc
		a.walkRegion(0, len(sw.plan.recirc), recircFloor)
	}

	rep := &StageReport{
		ResourceReport: AnalyzeProgram(prog),
		Model:          tm,
		RecircFloor:    recircFloor,
		Violations:     a.violations,
	}
	for i := range a.led.stages {
		rep.Stages = append(rep.Stages, a.led.stages[i].use())
	}
	rep.StagesUsed = len(rep.Stages)
	rep.Fit = len(a.violations) == 0 && rep.StagesUsed <= tm.Stages
	return rep, nil
}

// fieldTag marks a field as holding a value derived from one register
// cell's read through stateful-ALU-expressible ops — the candidate for a
// write-back fusion.
type fieldTag struct {
	ok  bool
	reg string
	idx Ref
}

// readSite records this packet's pending read of a register: the stage its
// stateful op was placed in, and whether a write-back can still fuse into
// it (one write per access).
type readSite struct {
	stage int
	idx   Ref
	open  bool
}

// allocState is the dataflow state threaded through the placement walk.
type allocState struct {
	// avail[f] is the first stage in which field f's current value can be
	// consumed (producer stage + 1; parsed headers and constants are 0).
	avail []int
	// regNext[r] is the first stage the next access to register r may use:
	// one past the previous access, so reads observe earlier writes.
	regNext map[string]int
	// tag[f] tracks which register read field f's value derives from.
	tag []fieldTag
	// reads[r] is register r's pending read on this path.
	reads map[string]readSite
}

func (s *allocState) clone() *allocState {
	c := &allocState{
		avail:   append([]int(nil), s.avail...),
		regNext: make(map[string]int, len(s.regNext)),
		tag:     append([]fieldTag(nil), s.tag...),
		reads:   make(map[string]readSite, len(s.reads)),
	}
	for k, v := range s.regNext {
		c.regNext[k] = v
	}
	for k, v := range s.reads {
		c.reads[k] = v
	}
	return c
}

// merge folds an alternative's state in pointwise: a consumer after the
// join must wait for the value on whichever path produces it last. Tags and
// pending reads survive only when both paths agree on them.
func (s *allocState) merge(o *allocState) {
	for i := range s.avail {
		if o.avail[i] > s.avail[i] {
			s.avail[i] = o.avail[i]
		}
	}
	for k, v := range o.regNext {
		if v > s.regNext[k] {
			s.regNext[k] = v
		}
	}
	for i := range s.tag {
		if s.tag[i] != o.tag[i] {
			s.tag[i] = fieldTag{}
		}
	}
	for k, sv := range s.reads {
		ov, ok := o.reads[k]
		if !ok || ov.idx != sv.idx {
			delete(s.reads, k)
			continue
		}
		if ov.stage > sv.stage {
			sv.stage = ov.stage
		}
		sv.open = sv.open && ov.open
		s.reads[k] = sv
	}
}

// stageSlot is the mutable allocation of one stage.
type stageSlot struct {
	alu, hash int
	sram      int
	tables    []string
	regs      map[string]bool
	homes     map[string]bool
}

func (s *stageSlot) use() StageUse {
	u := StageUse{
		ALUs:       s.alu,
		HashUnits:  s.hash,
		RegActions: len(s.regs),
		SRAMBytes:  s.sram,
		Tables:     append([]string(nil), s.tables...),
		Registers:  sortedKeys(s.regs),
		Homed:      sortedKeys(s.homes),
	}
	return u
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// stageLedger is the growing per-stage resource book.
type stageLedger struct {
	stages []stageSlot
}

func (l *stageLedger) slot(s int) *stageSlot {
	for len(l.stages) <= s {
		l.stages = append(l.stages, stageSlot{
			regs:  make(map[string]bool),
			homes: make(map[string]bool),
		})
	}
	return &l.stages[s]
}

func (l *stageLedger) clone() *stageLedger {
	c := &stageLedger{stages: make([]stageSlot, len(l.stages))}
	for i := range l.stages {
		src := &l.stages[i]
		dst := &c.stages[i]
		dst.alu, dst.hash, dst.sram = src.alu, src.hash, src.sram
		dst.tables = append([]string(nil), src.tables...)
		dst.regs = make(map[string]bool, len(src.regs))
		for k := range src.regs {
			dst.regs[k] = true
		}
		dst.homes = make(map[string]bool, len(src.homes))
		for k := range src.homes {
			dst.homes[k] = true
		}
	}
	return c
}

// merge folds an alternative ledger in: per-stage costs take the max (only
// one alternative runs per packet), register access and home sets union (an
// access shared by exclusive arms is still one access).
func (l *stageLedger) merge(o *stageLedger) {
	for i := range o.stages {
		src := &o.stages[i]
		dst := l.slot(i)
		if src.alu > dst.alu {
			dst.alu = src.alu
		}
		if src.hash > dst.hash {
			dst.hash = src.hash
		}
		if src.sram > dst.sram {
			dst.sram = src.sram
		}
		if len(src.tables) > len(dst.tables) {
			dst.tables = append([]string(nil), src.tables...)
		}
		for k := range src.regs {
			dst.regs[k] = true
		}
		for k := range src.homes {
			dst.homes[k] = true
		}
	}
}

// need is one placement request against the per-stage budgets.
type need struct {
	alu   int
	hash  int
	table string
	sram  int    // charged if placed (table bytes, or register home)
	reg   string // register access, at most one per register per stage
}

// stageAlloc drives the placement walk.
type stageAlloc struct {
	sw         *Switch
	code       []inst // the instruction region being walked (main or recirc)
	tm         TargetModel
	st         *allocState
	led        *stageLedger
	violations []string
	seen       map[string]bool
}

func (a *stageAlloc) violatef(format string, args ...interface{}) {
	v := fmt.Sprintf(format, args...)
	if !a.seen[v] {
		a.seen[v] = true
		a.violations = append(a.violations, v)
	}
}

// place finds the first stage ≥ earliest with room for the request, greedily
// bumping past full stages, and consumes the resources there. Stages past
// the model's depth are still allocated — with a violation recorded — so the
// report shows the pipeline depth the program actually needs.
func (a *stageAlloc) place(earliest int, n need, what string) int {
	s := earliest
	for !a.fits(s, n) {
		s++
	}
	if s >= a.tm.Stages {
		a.violatef("%s needs stage %d of a %d-stage target", what, s+1, a.tm.Stages)
	}
	a.consume(s, n)
	return s
}

func (a *stageAlloc) fits(s int, n need) bool {
	slot := a.led.slot(s)
	if slot.alu+n.alu > a.tm.ALUsPerStage {
		return false
	}
	if slot.hash+n.hash > a.tm.HashUnitsPerStage {
		return false
	}
	if n.table != "" && len(slot.tables)+1 > a.tm.TablesPerStage {
		return false
	}
	if n.reg != "" {
		if slot.regs[n.reg] {
			return false // one access per register per stage
		}
		if len(slot.regs)+1 > a.tm.RegActionsPerStage {
			return false
		}
	}
	if n.sram > 0 && slot.sram+n.sram > a.tm.SRAMPerStageBytes {
		return false
	}
	return true
}

func (a *stageAlloc) consume(s int, n need) {
	slot := a.led.slot(s)
	slot.alu += n.alu
	slot.hash += n.hash
	if n.table != "" {
		slot.tables = append(slot.tables, n.table)
	}
	if n.reg != "" {
		slot.regs[n.reg] = true
		if n.sram > 0 {
			slot.homes[n.reg] = true
		}
	}
	slot.sram += n.sram
}

// regHomed reports whether the register's SRAM has been charged to a stage.
func (a *stageAlloc) regHomed(name string) bool {
	for i := range a.led.stages {
		if a.led.stages[i].homes[name] {
			return true
		}
	}
	return false
}

// refAvail is the stage from which a ref's value is consumable.
func (a *stageAlloc) refAvail(r Ref) int {
	if r.Kind == RefField {
		return a.st.avail[r.Field]
	}
	return 0 // constants and control-plane-installed parameters
}

// walkRegion places the plan instructions in [lo, hi). ctrl is the gateway
// floor: no op in the region may run before the stage its guarding
// conditions' operands become available. The lowering in compile.go emits
// strictly structured branch/jump pairs, so the region structure of the
// flattened code is recovered exactly (see lowerStmts).
func (a *stageAlloc) walkRegion(lo, hi, ctrl int) {
	code := a.code
	pc := lo
	for pc < hi {
		in := &code[pc]
		switch in.kind {
		case instApply:
			a.placeApply(in, ctrl)
			pc++
		case instCall:
			a.placeAction(in.act, ctrl)
			pc++
		case instBranch:
			cond := ctrl
			if v := a.refAvail(in.cond.A); v > cond {
				cond = v
			}
			if v := a.refAvail(in.cond.B); v > cond {
				cond = v
			}
			thenEnd, elseEnd, join := pc+1, in.target, in.target
			if j := in.target - 1; j > pc && code[j].kind == instJump {
				// An else arm exists: the jump before the branch target is
				// this if's then→join jump (the last instruction of a
				// lowered statement list is never a jump, so the position
				// identifies it unambiguously).
				thenEnd, elseEnd, join = j, code[j].target, code[j].target
			} else {
				thenEnd = in.target
			}
			a.walkAlternatives(cond, func(arm int) {
				if arm == 0 {
					a.walkRegion(pc+1, thenEnd, cond)
				} else {
					a.walkRegion(in.target, elseEnd, cond)
				}
			})
			pc = join
		default: // instJump: consumed by the branch handling above
			pc = in.target
		}
	}
}

// walkAlternatives runs the two arms of a branch against cloned state and
// cloned ledgers, then merges: dataflow pointwise max, resources max/union —
// exclusive arms share stage budgets.
func (a *stageAlloc) walkAlternatives(ctrl int, run func(arm int)) {
	baseSt, baseLed := a.st, a.led
	var sts []*allocState
	var leds []*stageLedger
	for arm := 0; arm < 2; arm++ {
		a.st = baseSt.clone()
		a.led = baseLed.clone()
		run(arm)
		sts = append(sts, a.st)
		leds = append(leds, a.led)
	}
	a.st, a.led = sts[0], leds[0]
	a.st.merge(sts[1])
	a.led.merge(leds[1])
}

// placeApply places one table match and the candidate actions its entries
// can bind (all declared actions plus the default), which are mutually
// exclusive per packet and therefore share stage resources.
func (a *stageAlloc) placeApply(in *inst, ctrl int) {
	t := in.tbl
	earliest := ctrl
	for _, f := range in.keyFields {
		if a.st.avail[f] > earliest {
			earliest = a.st.avail[f]
		}
	}
	bytes := t.def.MaxEntries * entryBytes(a.sw.prog, t.def)
	s := a.place(earliest, need{table: t.def.Name, sram: bytes}, fmt.Sprintf("table %q", t.def.Name))

	// Candidate actions: every action an entry may bind, plus the default.
	names := append([]string(nil), t.def.ActionNames...)
	if t.def.DefaultAction != "" {
		names = append(names, t.def.DefaultAction)
	}
	if len(names) == 0 {
		return
	}
	acts := make([]*compiledAction, 0, len(names))
	for _, n := range names {
		if ca, ok := a.sw.plan.actions[n]; ok {
			acts = append(acts, ca)
		}
	}
	a.placeExclusive(acts, s)
}

// placeExclusive places a set of mutually exclusive actions, merging their
// state and resource use like branch arms.
func (a *stageAlloc) placeExclusive(acts []*compiledAction, ctrl int) {
	if len(acts) == 0 {
		return
	}
	if len(acts) == 1 {
		a.placeAction(acts[0], ctrl)
		return
	}
	baseSt, baseLed := a.st, a.led
	mergedSt, mergedLed := (*allocState)(nil), (*stageLedger)(nil)
	for _, ca := range acts {
		a.st = baseSt.clone()
		a.led = baseLed.clone()
		a.placeAction(ca, ctrl)
		if mergedSt == nil {
			mergedSt, mergedLed = a.st, a.led
		} else {
			mergedSt.merge(a.st)
			mergedLed.merge(a.led)
		}
	}
	a.st, a.led = mergedSt, mergedLed
}

// fusesWith reports whether a write folds into this packet's pending read
// of the same register as the write-back half of one stateful-ALU op: same
// cell (textually identical index ref), and the written value either
// derives from that read through stateful-ALU-expressible ops or is an
// external PHV value already available at the read's stage.
func (a *stageAlloc) fusesWith(rs readSite, op *cop, regName string) bool {
	if !rs.open || rs.idx != op.a {
		return false
	}
	if op.b.Kind == RefField {
		t := a.st.tag[op.b.Field]
		if t.ok && t.reg == regName && t.idx == op.a {
			return true
		}
	}
	return a.refAvail(op.b) <= rs.stage
}

// tagOf computes the register tag an op's destination inherits: the value
// keeps its read's tag through the ops a stateful ALU can apply, as long as
// exactly one tagged source flows in (two distinct reads can't both live in
// one stateful op, and multiplies leave the stateful ALU's vocabulary).
func (a *stageAlloc) tagOf(op *cop) fieldTag {
	switch op.code {
	case OpMul, OpHash:
		return fieldTag{}
	}
	var t fieldTag
	for _, r := range [2]Ref{op.a, op.b} {
		if r.Kind != RefField {
			continue
		}
		rt := a.st.tag[r.Field]
		if !rt.ok {
			continue
		}
		if t.ok && t != rt {
			return fieldTag{} // two distinct reads feed this value
		}
		t = rt
	}
	return t
}

// placeAction places one action's ops in order. ctrl is the stage of the
// matching table (actions run in the match stage or later) or the gateway
// floor for direct calls.
func (a *stageAlloc) placeAction(ca *compiledAction, ctrl int) {
	for i := range ca.ops {
		op := &ca.ops[i]
		earliest := ctrl
		bump := func(v int) {
			if v > earliest {
				earliest = v
			}
		}
		regName := ""
		if op.reg != nil {
			regName = op.reg.def.Name
		}
		n := need{alu: 1}
		what := fmt.Sprintf("action %q op %d (%s)", ca.name, i, op.code)
		switch op.code {
		case OpHash:
			bump(a.refAvail(op.a))
			n = need{hash: 1}
		case OpRegRead:
			bump(a.refAvail(op.a))
			bump(a.st.regNext[regName])
			n = need{reg: regName}
		case OpRegWrite:
			if rs, ok := a.st.reads[regName]; ok && a.fusesWith(rs, op, regName) {
				// The write-back half of the read's stateful op: no stage,
				// no extra access. The next access still orders after the
				// read's stage, which this write shares.
				rs.open = false
				a.st.reads[regName] = rs
				continue
			}
			bump(a.refAvail(op.a))
			bump(a.refAvail(op.b))
			bump(a.st.regNext[regName])
			n = need{reg: regName}
		case OpDigest:
			for _, f := range op.fields {
				bump(a.st.avail[f])
			}
		case OpMov, OpNot, OpSetEgress, OpDrop:
			bump(a.refAvail(op.a))
		default: // two-operand ALU ops
			bump(a.refAvail(op.a))
			bump(a.refAvail(op.b))
		}
		if n.reg != "" && !a.regHomed(n.reg) {
			if def, ok := a.sw.prog.register(n.reg); ok {
				n.sram = def.Bytes()
			}
		}
		s := a.place(earliest, n, what)
		switch op.code {
		case OpRegWrite, OpDigest, OpSetEgress, OpDrop:
			// No tracked destination field.
			if op.code == OpRegWrite {
				// An unfused write is a fresh access; the pending read is
				// spent either way.
				delete(a.st.reads, regName)
			}
		case OpRegRead:
			a.st.avail[op.dst] = s + 1
			a.st.reads[regName] = readSite{stage: s, idx: op.a, open: true}
			a.st.tag[op.dst] = fieldTag{ok: true, reg: regName, idx: op.a}
		default:
			a.st.avail[op.dst] = s + 1
			a.st.tag[op.dst] = a.tagOf(op)
		}
		if n.reg != "" {
			a.st.regNext[regName] = s + 1
		}
	}
}
