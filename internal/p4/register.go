package p4

import (
	"fmt"
	"sync"
)

// Register is the runtime state of a register array. Cells are masked to the
// declared width on write. Reads and writes are index-checked: out-of-bounds
// reads return zero and out-of-bounds writes are dropped, with the switch's
// error counter recording the event — the simulator's analogue of bmv2's
// logged register-bounds errors. A mutex serialises data-plane access with
// control-plane reads, which on hardware costs the milliseconds-per-thousand-
// registers the paper's Section 1 argues make pull-based monitoring slow.
type Register struct {
	def   RegisterDef
	mu    sync.RWMutex
	cells []uint64
}

func newRegister(def RegisterDef) *Register {
	return &Register{def: def, cells: make([]uint64, def.Cells)}
}

// Def returns the register's declaration.
func (r *Register) Def() RegisterDef { return r.def }

// read is the data-plane read. ok is false out of bounds.
//
//stat4:datapath
func (r *Register) read(idx uint64) (v uint64, ok bool) {
	// Explicit unlock: a defer frame per register access is an allocation
	// in the per-packet hot path (allocfree), and nothing here panics.
	r.mu.RLock()
	if idx >= uint64(len(r.cells)) {
		r.mu.RUnlock()
		return 0, false
	}
	v = r.cells[idx]
	r.mu.RUnlock()
	return v, true
}

// write is the data-plane write. ok is false out of bounds.
//
//stat4:datapath
func (r *Register) write(idx, v uint64) bool {
	r.mu.Lock()
	if idx >= uint64(len(r.cells)) {
		r.mu.Unlock()
		return false
	}
	r.cells[idx] = v & widthMask(r.def.Width)
	r.mu.Unlock()
	return true
}

// Read is the control-plane read of a single cell.
func (r *Register) Read(idx int) (uint64, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if idx < 0 || idx >= len(r.cells) {
		return 0, fmt.Errorf("p4: register %q index %d of %d", r.def.Name, idx, len(r.cells))
	}
	return r.cells[idx], nil
}

// Snapshot is the control-plane bulk read, returning a copy of all cells —
// what a sketch-pulling controller fetches.
func (r *Register) Snapshot() []uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]uint64(nil), r.cells...)
}

// WriteCell is the control-plane write, used to seed state at startup.
func (r *Register) WriteCell(idx int, v uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx < 0 || idx >= len(r.cells) {
		return fmt.Errorf("p4: register %q index %d of %d", r.def.Name, idx, len(r.cells))
	}
	r.cells[idx] = v & widthMask(r.def.Width)
	return nil
}
