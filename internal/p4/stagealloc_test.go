package p4

import (
	"strings"
	"testing"
)

// smallModel is a tight profile for exercising budget bumping.
func smallModel(stages int) TargetModel {
	return TargetModel{
		Name:               "test",
		Stages:             stages,
		ALUsPerStage:       4,
		HashUnitsPerStage:  1,
		RegActionsPerStage: 2,
		TablesPerStage:     1,
		SRAMPerStageBytes:  1 << 16,
	}
}

func mustAllocate(t *testing.T, p *Program, tm TargetModel) *StageReport {
	t.Helper()
	rep, err := AllocateStages(p, tm)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// A serial def-use chain occupies one stage per op: each op consumes the
// value the previous stage produced.
func TestAllocateStagesSerialChain(t *testing.T) {
	p := NewProgram("chain")
	a := p.AddField("m.a", 64)
	b := p.AddField("m.b", 64)
	c := p.AddField("m.c", 64)
	p.AddAction(NewAction("calc", 0,
		Add(a, C(1), C(2)),
		Add(b, F(a), C(1)),
		Add(c, F(b), F(a)),
	))
	p.Control = []Stmt{Call("calc")}

	rep := mustAllocate(t, p, DefaultTargetModel())
	if rep.StagesUsed != 3 {
		t.Fatalf("StagesUsed = %d, want 3 (one per dependent op)", rep.StagesUsed)
	}
	if !rep.Fit || len(rep.Violations) != 0 {
		t.Fatalf("chain should fit: fit=%v violations=%v", rep.Fit, rep.Violations)
	}
}

// Branch conditions are gateway predication: nesting depth costs no stages,
// only the availability of the condition operands gates the guarded ops.
func TestAllocateStagesGatewayPredication(t *testing.T) {
	p := NewProgram("gateway")
	a := p.AddField("m.a", 64)
	b := p.AddField("m.b", 64)
	p.AddAction(NewAction("seed", 0, Add(a, C(1), C(1))))
	p.AddAction(NewAction("leaf", 0, Add(b, C(1), C(1))))
	p.Control = []Stmt{
		Call("seed"),
		If(Cond{A: F(a), Op: CmpGt, B: C(0)},
			If(Cond{A: F(a), Op: CmpGt, B: C(1)},
				If(Cond{A: F(a), Op: CmpGt, B: C(2)},
					Call("leaf"),
				),
			),
		),
	}

	rep := mustAllocate(t, p, DefaultTargetModel())
	// seed in stage 0, a available in stage 1, the triple-nested leaf in
	// stage 1 — nesting adds nothing.
	if rep.StagesUsed != 2 {
		t.Fatalf("StagesUsed = %d, want 2 (predication adds no depth)", rep.StagesUsed)
	}
}

// A read-modify-write on one register cell fuses into a single stateful
// access; the next access to the register orders after it.
func TestAllocateStagesRMWFusion(t *testing.T) {
	p := NewProgram("rmw")
	i := p.AddField("m.i", 32)
	v := p.AddField("m.v", 64)
	w := p.AddField("m.w", 64)
	p.AddRegister("r", 16, 64)
	p.AddAction(NewAction("bump", 0,
		Mov(i, C(3)),
		RegRead(v, "r", F(i)),
		Add(v, F(v), C(1)),
		RegWrite("r", F(i), F(v)),
	))
	p.AddAction(NewAction("reload", 0,
		RegRead(w, "r", F(i)),
	))
	p.Control = []Stmt{Call("bump"), Call("reload")}

	rep := mustAllocate(t, p, DefaultTargetModel())
	accesses := 0
	for _, su := range rep.Stages {
		accesses += su.RegActions
	}
	// read+write-back fuse into one access; the reload is a second one.
	if accesses != 2 {
		t.Fatalf("register accesses = %d, want 2 (RMW fuses, reload is separate)", accesses)
	}
	// mov in stage 0, fused RMW in stage 1, reload ordered after it.
	if got := rep.Stages[1].Registers; len(got) != 1 || got[0] != "r" {
		t.Fatalf("stage 1 registers = %v, want [r]", got)
	}
	if got := rep.Stages[2].Registers; len(got) != 1 || got[0] != "r" {
		t.Fatalf("stage 2 registers = %v, want [r] (reload ordered after the RMW)", got)
	}
}

// A write of a value computed long after the read cannot fuse: it becomes a
// second access in a later stage.
func TestAllocateStagesUnfusableWrite(t *testing.T) {
	p := NewProgram("unfusable")
	i := p.AddField("m.i", 32)
	v := p.AddField("m.v", 64)
	x := p.AddField("m.x", 64)
	p.AddRegister("r", 16, 64)
	p.AddAction(NewAction("slow", 0,
		Mov(i, C(3)),
		RegRead(v, "r", F(i)),
		Mul(x, F(v), F(v)), // a multiply leaves the stateful ALU's vocabulary
		RegWrite("r", F(i), F(x)),
	))
	p.Control = []Stmt{Call("slow")}

	rep := mustAllocate(t, p, DefaultTargetModel())
	accesses := 0
	for _, su := range rep.Stages {
		accesses += su.RegActions
	}
	if accesses != 2 {
		t.Fatalf("register accesses = %d, want 2 (multiplied value cannot write back in the read's stateful op)", accesses)
	}
}

// Mutually exclusive alternatives — table actions, branch arms — share a
// stage's budgets: per-stage cost is the max across alternatives.
func TestAllocateStagesExclusiveArmsShareBudget(t *testing.T) {
	p := NewProgram("arms")
	std := DeclareStdFields(p)
	a := p.AddField("m.a", 64)
	b := p.AddField("m.b", 64)
	c := p.AddField("m.c", 64)
	heavy := func(name string) {
		p.AddAction(NewAction(name, 0,
			Add(a, C(1), C(1)),
			Add(b, C(2), C(2)),
			Add(c, C(3), C(3)),
		))
	}
	heavy("left")
	heavy("right")
	p.AddTable(&TableDef{
		Name:          "pick",
		Keys:          []KeySpec{{Field: std.IPv4Dst, Kind: MatchExact}},
		ActionNames:   []string{"left", "right"},
		DefaultAction: "left",
		MaxEntries:    4,
	})
	p.Control = []Stmt{Apply("pick")}

	// ALUsPerStage 4 < 2×3: only fits because alternatives take max, not sum.
	rep := mustAllocate(t, p, smallModel(12))
	if !rep.Fit {
		t.Fatalf("exclusive arms should share the ALU budget: %v", rep.Violations)
	}
	if rep.Stages[0].ALUs != 3 {
		t.Fatalf("stage 0 ALUs = %d, want 3 (max across alternatives)", rep.Stages[0].ALUs)
	}
}

// Per-stage table budget bumps a second table to the next stage.
func TestAllocateStagesTableBudgetBumps(t *testing.T) {
	p := NewProgram("tables")
	std := DeclareStdFields(p)
	p.AddAction(NewAction("noop", 0))
	for _, name := range []string{"t1", "t2"} {
		p.AddTable(&TableDef{
			Name:          name,
			Keys:          []KeySpec{{Field: std.IPv4Dst, Kind: MatchExact}},
			ActionNames:   []string{"noop"},
			DefaultAction: "noop",
			MaxEntries:    4,
		})
	}
	p.Control = []Stmt{Apply("t1"), Apply("t2")}

	rep := mustAllocate(t, p, smallModel(12)) // TablesPerStage: 1
	if len(rep.Stages[0].Tables) != 1 || len(rep.Stages[1].Tables) != 1 {
		t.Fatalf("tables not spread across stages: %v / %v",
			rep.Stages[0].Tables, rep.Stages[1].Tables)
	}
}

// An over-budget program still yields a full placement, with Fit=false and
// the overflowing ops named.
func TestAllocateStagesOverBudget(t *testing.T) {
	p := NewProgram("deep")
	a := p.AddField("m.a", 64)
	b := p.AddField("m.b", 64)
	c := p.AddField("m.c", 64)
	p.AddAction(NewAction("calc", 0,
		Add(a, C(1), C(2)),
		Add(b, F(a), C(1)),
		Add(c, F(b), F(a)),
	))
	p.Control = []Stmt{Call("calc")}

	rep := mustAllocate(t, p, smallModel(2))
	if rep.Fit {
		t.Fatal("3-deep chain cannot fit 2 stages")
	}
	if rep.StagesUsed != 3 {
		t.Fatalf("StagesUsed = %d, want 3 (placement completes past the limit)", rep.StagesUsed)
	}
	if len(rep.Violations) == 0 || !strings.Contains(rep.Violations[0], "calc") {
		t.Fatalf("violations should name the overflowing action: %v", rep.Violations)
	}
}

func TestTargetModelValidate(t *testing.T) {
	tm := DefaultTargetModel()
	if err := tm.Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	tm.RegActionsPerStage = 0
	if err := tm.Validate(); err == nil {
		t.Fatal("zero reg_actions_per_stage should fail validation")
	}
	if _, err := AllocateStages(NewProgram("empty"), tm); err == nil {
		t.Fatal("AllocateStages should reject an invalid model")
	}
}

// The stage report embeds the static resource report, so one call serves
// both the budget gate and the -resources dump.
func TestAllocateStagesEmbedsResourceReport(t *testing.T) {
	p, _ := buildCounterProgram()
	rep := mustAllocate(t, p, DefaultTargetModel())
	want := AnalyzeProgram(p)
	if rep.ResourceReport != want {
		t.Fatalf("embedded ResourceReport diverges:\n got %+v\nwant %+v", rep.ResourceReport, want)
	}
	if rep.StagesUsed != len(rep.Stages) {
		t.Fatalf("StagesUsed %d != len(Stages) %d", rep.StagesUsed, len(rep.Stages))
	}
}
