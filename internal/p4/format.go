package p4

import (
	"fmt"
	"sort"
	"strings"
)

// Format renders a program as a readable pseudo-P4 listing: declarations,
// actions as op sequences, tables with their keys and bindable actions, and
// the control flow with nested ifs. It exists for inspection and debugging
// (cmd/stat4-dump); the output is stable so it can be snapshot-tested.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %q  target=%s\n", p.Name, p.Target.Name)

	fmt.Fprintf(&b, "\nfields (%d):\n", len(p.Fields))
	for i, f := range p.Fields {
		fmt.Fprintf(&b, "  f%-3d %-18s %2d bits\n", i, f.Name, f.Width)
	}

	fmt.Fprintf(&b, "\nregisters (%d):\n", len(p.Registers))
	for _, r := range p.Registers {
		fmt.Fprintf(&b, "  %-18s %6d cells x %2d bits = %7d bytes\n",
			r.Name, r.Cells, r.Width, r.Bytes())
	}

	fmt.Fprintf(&b, "\nactions (%d):\n", len(p.Actions))
	names := make([]string, 0, len(p.Actions))
	byName := map[string]*Action{}
	for _, a := range p.Actions {
		names = append(names, a.Name)
		byName[a.Name] = a
	}
	sort.Strings(names)
	for _, n := range names {
		a := byName[n]
		fmt.Fprintf(&b, "  action %s(%d params) {\n", a.Name, a.NumParams)
		for _, op := range a.Ops {
			fmt.Fprintf(&b, "    %s\n", formatOp(p, op))
		}
		fmt.Fprintf(&b, "  }\n")
	}

	fmt.Fprintf(&b, "\ntables (%d):\n", len(p.Tables))
	for _, t := range p.Tables {
		fmt.Fprintf(&b, "  table %s {\n", t.Name)
		for _, k := range t.Keys {
			fmt.Fprintf(&b, "    key %s : %s\n", p.Fields[k.Field].Name, k.Kind)
		}
		fmt.Fprintf(&b, "    actions { %s }\n", strings.Join(t.ActionNames, ", "))
		if t.DefaultAction != "" {
			fmt.Fprintf(&b, "    default %s%s\n", t.DefaultAction, formatArgs(t.DefaultArgs))
		}
		fmt.Fprintf(&b, "    size %d\n  }\n", t.MaxEntries)
	}

	fmt.Fprintf(&b, "\ncontrol {\n")
	formatStmts(&b, p, p.Control, 1)
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

func formatArgs(args []uint64) string {
	if len(args) == 0 {
		return "()"
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func formatRef(p *Program, r Ref) string {
	switch r.Kind {
	case RefConst:
		if r.Const > 4096 {
			return fmt.Sprintf("%#x", r.Const)
		}
		return fmt.Sprintf("%d", r.Const)
	case RefField:
		if int(r.Field) < len(p.Fields) {
			return p.Fields[r.Field].Name
		}
		return fmt.Sprintf("f?%d", r.Field)
	case RefParam:
		return fmt.Sprintf("$%d", r.Param)
	default:
		return "?"
	}
}

func formatOp(p *Program, op Op) string {
	dst := func() string { return formatRef(p, op.Dst) }
	a := func() string { return formatRef(p, op.A) }
	bb := func() string { return formatRef(p, op.B) }
	switch op.Code {
	case OpMov:
		return fmt.Sprintf("%s = %s", dst(), a())
	case OpAdd:
		return fmt.Sprintf("%s = %s + %s", dst(), a(), bb())
	case OpSub:
		return fmt.Sprintf("%s = %s - %s", dst(), a(), bb())
	case OpMul:
		return fmt.Sprintf("%s = %s * %s", dst(), a(), bb())
	case OpSatAdd:
		return fmt.Sprintf("%s = sat(%s + %s)", dst(), a(), bb())
	case OpSatSub:
		return fmt.Sprintf("%s = sat(%s - %s)", dst(), a(), bb())
	case OpAnd:
		return fmt.Sprintf("%s = %s & %s", dst(), a(), bb())
	case OpOr:
		return fmt.Sprintf("%s = %s | %s", dst(), a(), bb())
	case OpXor:
		return fmt.Sprintf("%s = %s ^ %s", dst(), a(), bb())
	case OpNot:
		return fmt.Sprintf("%s = ~%s", dst(), a())
	case OpShl:
		return fmt.Sprintf("%s = %s << %s", dst(), a(), bb())
	case OpShr:
		return fmt.Sprintf("%s = %s >> %s", dst(), a(), bb())
	case OpHash:
		return fmt.Sprintf("%s = hash%d(%s) & %s", dst(), op.HashID, a(), bb())
	case OpRegRead:
		return fmt.Sprintf("%s = %s[%s]", dst(), op.Reg, a())
	case OpRegWrite:
		return fmt.Sprintf("%s[%s] = %s", op.Reg, a(), bb())
	case OpDigest:
		fields := make([]string, len(op.Fields))
		for i, f := range op.Fields {
			fields[i] = p.Fields[f].Name
		}
		return fmt.Sprintf("digest#%d(%s)", op.DigestID, strings.Join(fields, ", "))
	case OpSetEgress:
		return fmt.Sprintf("egress = %s", a())
	case OpDrop:
		return "drop"
	default:
		return op.Code.String()
	}
}

var cmpSymbols = map[CmpOp]string{
	CmpEq: "==", CmpNe: "!=", CmpLt: "<", CmpLe: "<=", CmpGt: ">", CmpGe: ">=",
}

func formatStmts(b *strings.Builder, p *Program, stmts []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch st := s.(type) {
		case ApplyStmt:
			fmt.Fprintf(b, "%sapply %s\n", indent, st.Table)
		case CallStmt:
			fmt.Fprintf(b, "%s%s%s\n", indent, st.Action, formatArgs(st.Args))
		case IfStmt:
			fmt.Fprintf(b, "%sif %s %s %s {\n", indent,
				formatRef(p, st.Cond.A), cmpSymbols[st.Cond.Op], formatRef(p, st.Cond.B))
			formatStmts(b, p, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				formatStmts(b, p, st.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", indent)
		}
	}
}
