package p4

import "fmt"

// RefKind discriminates operand references.
type RefKind uint8

// Operand reference kinds.
const (
	RefConst RefKind = iota // immediate constant
	RefField                // metadata field
	RefParam                // action parameter, bound by the table entry
)

// Ref is an operand of an action op or branch condition.
type Ref struct {
	Kind  RefKind
	Const uint64
	Field FieldID
	Param int
}

// C returns a constant reference.
func C(v uint64) Ref { return Ref{Kind: RefConst, Const: v} }

// F returns a field reference.
func F(id FieldID) Ref { return Ref{Kind: RefField, Field: id} }

// P returns an action-parameter reference.
func P(i int) Ref { return Ref{Kind: RefParam, Param: i} }

// OpCode enumerates the P4-legal primitive operations. There is deliberately
// no division, modulo, multiplication of two runtime values, or loop — the
// absences that drive the paper's Section 2 redesign of the statistics.
type OpCode uint8

// Primitive operations.
const (
	OpMov    OpCode = iota
	OpAdd           // dst = a + b, wrapping at dst's width
	OpSub           // dst = a - b, wrapping at dst's width
	OpMul           // dst = a * b, wrapping; only legal on targets with AllowMul
	OpSatAdd        // dst = a + b, saturating at dst's width
	OpSatSub        // dst = a - b, saturating at zero
	OpAnd
	OpOr
	OpXor
	OpNot // dst = ^a, masked to dst's width
	OpShl // dst = a << b; b must not be packet-dependent
	OpShr // dst = a >> b; b must not be packet-dependent
	OpRegRead
	OpRegWrite
	OpDigest // push an alert record to the control plane
	OpSetEgress
	OpDrop
	// OpHash models the target's hash engine (CRC units on hardware, a
	// multiply-shift family here): dst = hash_<HashID>(a) & mask. Legal on
	// every target, including multiplication-free ones.
	OpHash
)

var opNames = map[OpCode]string{
	OpMov: "mov", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSatAdd: "sadd", OpSatSub: "ssub",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not", OpShl: "shl", OpShr: "shr",
	OpRegRead: "regread", OpRegWrite: "regwrite", OpDigest: "digest",
	OpSetEgress: "setegress", OpDrop: "drop", OpHash: "hash",
}

// String returns the opcode mnemonic.
func (c OpCode) String() string {
	if n, ok := opNames[c]; ok {
		return n
	}
	return fmt.Sprintf("OpCode(%d)", uint8(c))
}

// Op is one primitive operation. Field use by opcode:
//
//	arithmetic/logic: Dst ← A ⊕ B
//	OpMov/OpNot:      Dst ← A
//	OpRegRead:        Dst ← Reg[A]
//	OpRegWrite:       Reg[A] ← B
//	OpDigest:         emit DigestID with the listed Fields
//	OpSetEgress:      egress port ← A
//	OpHash:           Dst ← hash_<HashID>(A) & B (B a constant mask)
type Op struct {
	Code     OpCode
	Dst      Ref
	A, B     Ref
	Reg      string
	DigestID int
	HashID   int
	Fields   []FieldID
}

// Op constructors, for readable program builders.

// Mov builds dst ← a.
func Mov(dst FieldID, a Ref) Op { return Op{Code: OpMov, Dst: F(dst), A: a} }

// Add builds dst ← a + b (wrapping).
func Add(dst FieldID, a, b Ref) Op { return Op{Code: OpAdd, Dst: F(dst), A: a, B: b} }

// Sub builds dst ← a − b (wrapping).
func Sub(dst FieldID, a, b Ref) Op { return Op{Code: OpSub, Dst: F(dst), A: a, B: b} }

// Mul builds dst ← a · b (wrapping). Multiplication of two runtime values is
// only available on targets with AllowMul (the behavioral model); stricter
// hardware profiles reject it, which is why Stat4 prefers the shift-based
// approximations of internal/intstat.
func Mul(dst FieldID, a, b Ref) Op { return Op{Code: OpMul, Dst: F(dst), A: a, B: b} }

// SatAdd builds dst ← a + b saturating at the field's maximum.
func SatAdd(dst FieldID, a, b Ref) Op { return Op{Code: OpSatAdd, Dst: F(dst), A: a, B: b} }

// SatSub builds dst ← a − b saturating at zero.
func SatSub(dst FieldID, a, b Ref) Op { return Op{Code: OpSatSub, Dst: F(dst), A: a, B: b} }

// And builds dst ← a & b.
func And(dst FieldID, a, b Ref) Op { return Op{Code: OpAnd, Dst: F(dst), A: a, B: b} }

// Or builds dst ← a | b.
func Or(dst FieldID, a, b Ref) Op { return Op{Code: OpOr, Dst: F(dst), A: a, B: b} }

// Xor builds dst ← a ^ b.
func Xor(dst FieldID, a, b Ref) Op { return Op{Code: OpXor, Dst: F(dst), A: a, B: b} }

// Not builds dst ← ^a.
func Not(dst FieldID, a Ref) Op { return Op{Code: OpNot, Dst: F(dst), A: a} }

// Shl builds dst ← a << amount.
func Shl(dst FieldID, a, amount Ref) Op { return Op{Code: OpShl, Dst: F(dst), A: a, B: amount} }

// Shr builds dst ← a >> amount.
func Shr(dst FieldID, a, amount Ref) Op { return Op{Code: OpShr, Dst: F(dst), A: a, B: amount} }

// RegRead builds dst ← reg[idx].
func RegRead(dst FieldID, reg string, idx Ref) Op {
	return Op{Code: OpRegRead, Dst: F(dst), Reg: reg, A: idx}
}

// RegWrite builds reg[idx] ← val.
func RegWrite(reg string, idx, val Ref) Op {
	return Op{Code: OpRegWrite, Reg: reg, A: idx, B: val}
}

// EmitDigest builds a digest push carrying the listed fields.
func EmitDigest(id int, fields ...FieldID) Op {
	return Op{Code: OpDigest, DigestID: id, Fields: fields}
}

// SetEgress builds an egress-port assignment.
func SetEgress(port Ref) Op { return Op{Code: OpSetEgress, A: port} }

// Hash builds dst ← hash_<id>(a) & mask, using the target's id-th hash
// function.
func Hash(dst FieldID, id int, a Ref, mask uint64) Op {
	return Op{Code: OpHash, Dst: F(dst), A: a, B: C(mask), HashID: id}
}

// Drop builds a drop mark.
func Drop() Op { return Op{Code: OpDrop} }

// Action is a named straight-line op sequence with a fixed number of
// parameters bound by the matching table entry (or a direct call).
type Action struct {
	Name      string
	NumParams int
	Ops       []Op
}

// NewAction builds an action.
func NewAction(name string, numParams int, ops ...Op) *Action {
	return &Action{Name: name, NumParams: numParams, Ops: ops}
}

// CmpOp enumerates branch comparisons.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// Cond is a branch condition comparing two operands.
type Cond struct {
	A  Ref
	Op CmpOp
	B  Ref
}

// Eval evaluates the condition given resolved operand values.
//
//stat4:datapath
func (c Cond) eval(a, b uint64) bool {
	switch c.Op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	default:
		return false
	}
}

// Stmt is a control-flow statement: ApplyStmt, CallStmt or IfStmt.
type Stmt interface{ stmt() }

// ApplyStmt applies a match-action table.
type ApplyStmt struct{ Table string }

// CallStmt invokes an action directly with constant arguments.
type CallStmt struct {
	Action string
	Args   []uint64
}

// IfStmt branches on a condition. Nesting ifs is the only control flow; the
// representation cannot express a loop.
type IfStmt struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
}

func (ApplyStmt) stmt() {}
func (CallStmt) stmt()  {}
func (IfStmt) stmt()    {}

// If builds an IfStmt.
func If(cond Cond, then ...Stmt) IfStmt { return IfStmt{Cond: cond, Then: then} }

// WithElse returns a copy of the if with an else branch.
func (s IfStmt) WithElse(els ...Stmt) IfStmt {
	s.Else = els
	return s
}

// Apply builds an ApplyStmt.
func Apply(table string) ApplyStmt { return ApplyStmt{Table: table} }

// Call builds a CallStmt.
func Call(action string, args ...uint64) CallStmt { return CallStmt{Action: action, Args: args} }
