package p4

import (
	"fmt"
	"sort"
)

// CheckMergeLaw verifies a program's cross-replica merge discipline — the
// contract the sharded datapath's snapshot merge relies on. Four laws:
//
//  1. Every register declares its merge kind explicitly (SetRegisterMerge):
//     inheriting MergeSum by zero value is how a derived register silently
//     gets summed cell-wise across shards.
//  2. A MergeSum register is only mutated additively: the written value must
//     derive from a read of the same cell through wrap-around adds, so that
//     per-replica values sum to the whole. Deliberate overrides (the window
//     mode's circular-buffer overwrite) carry an ExemptMergeWrite reason.
//  3. Every name in recomputed — the registers the snapshot canonicalizer
//     rebuilds from merged counters — exists and is MergeDerived.
//  4. Every other MergeDerived register carries a MergeWhy note saying why
//     zero-after-merge is the whole contract.
//
// Declared write exemptions that no non-additive write uses are reported as
// stale. The write analysis is a flow-insensitive may-analysis over the
// program's actions: a value derives additively from a cell if any chain of
// OpMov/OpAdd links a read of that cell to the written field. Saturating
// adds do not qualify (saturation breaks sum-of-parts), nor does any other
// operator.
//
// Findings are returned as sorted strings; an empty slice means the program
// obeys the law.
func CheckMergeLaw(prog *Program, recomputed []string) []string {
	var out []string
	findf := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...))
	}

	byName := make(map[string]*RegisterDef)
	for i := range prog.Registers {
		def := &prog.Registers[i]
		byName[def.Name] = def
		if !def.MergeExplicit {
			findf("register %q does not declare its merge kind; call SetRegisterMerge so the sharded merge cannot mis-sum it", def.Name)
		}
	}

	recomputedSet := make(map[string]bool, len(recomputed))
	for _, name := range recomputed {
		recomputedSet[name] = true
		def, ok := byName[name]
		if !ok {
			findf("recomputed register %q is not declared by the program", name)
			continue
		}
		if def.Merge != MergeDerived {
			findf("recomputed register %q is %v; canonicalization must only rebuild MergeDerived state", name, def.Merge)
		}
	}
	for i := range prog.Registers {
		def := &prog.Registers[i]
		if def.Merge == MergeDerived && !recomputedSet[def.Name] && def.MergeWhy == "" {
			findf("MergeDerived register %q is neither recomputed after merge nor documented; add it to the canonicalizer or SetMergeWhy", def.Name)
		}
	}

	// Law 2: additive provenance of every MergeSum write. The entry state
	// of each action is the fixpoint union of every action's exit state
	// (reads and their write-backs live in different actions in the emitted
	// programs), but inside an action the walk is flow-sensitive: a
	// non-additive redefinition kills the field's provenance.
	entry := fixpointBases(prog)
	used := make(map[string]bool) // "action\x00register" exemptions exercised
	for _, a := range prog.Actions {
		a := a
		simulateBases(a, entry.clone(), func(op Op, local baseSet) {
			def, ok := byName[op.Reg]
			if !ok || def.Merge != MergeSum {
				return
			}
			cell := regCell{reg: op.Reg, idx: op.A}
			if op.B.Kind == RefField && local[op.B.Field][cell] {
				return // value = same cell + adds: merge-safe
			}
			if _, exempt := prog.MergeWriteExemption(a.Name, op.Reg); exempt {
				used[a.Name+"\x00"+op.Reg] = true
				return
			}
			findf("action %q writes MergeSum register %q non-additively: the value does not derive from a read of the same cell by wrap-around adds (declare ExemptMergeWrite if the override is the point)",
				a.Name, op.Reg)
		})
	}
	for _, e := range prog.MergeWriteExemptions() {
		if !used[e[0]+"\x00"+e[1]] {
			findf("stale merge-write exemption: action %q has no non-additive write of register %q", e[0], e[1])
		}
	}

	sort.Strings(out)
	return out
}

// regCell identifies one register cell as named in the program text: the
// register plus the index reference. Two accesses through the same field or
// constant index denote the same cell within one packet's execution.
type regCell struct {
	reg string
	idx Ref
}

// baseSet maps each field to the register cells whose read value flows into
// it through OpMov/OpAdd chains only — its additive provenance.
type baseSet map[FieldID]map[regCell]bool

func (b baseSet) clone() baseSet {
	out := make(baseSet, len(b))
	for f, cells := range b {
		cp := make(map[regCell]bool, len(cells))
		for c := range cells {
			cp[c] = true
		}
		out[f] = cp
	}
	return out
}

// union folds o into b, reporting whether anything was new.
func (b baseSet) union(o baseSet) bool {
	changed := false
	for f, cells := range o {
		for c := range cells {
			if b[f] == nil {
				b[f] = make(map[regCell]bool)
			}
			if !b[f][c] {
				b[f][c] = true
				changed = true
			}
		}
	}
	return changed
}

// simulateBases walks one action's ops flow-sensitively, starting from the
// given state (mutated in place and returned as the exit state). A register
// read replaces the destination's provenance with its cell; adds and moves
// transfer the operands' provenance; any other definition launders the
// destination. onWrite, if non-nil, observes every OpRegWrite with the state
// at that point.
func simulateBases(a *Action, local baseSet, onWrite func(op Op, local baseSet)) baseSet {
	of := func(r Ref) map[regCell]bool {
		if r.Kind != RefField {
			return nil
		}
		return local[r.Field]
	}
	for _, op := range a.Ops {
		if op.Code == OpRegWrite {
			if onWrite != nil {
				onWrite(op, local)
			}
			continue
		}
		if op.Dst.Kind != RefField {
			continue
		}
		next := make(map[regCell]bool)
		switch op.Code {
		case OpRegRead:
			next[regCell{reg: op.Reg, idx: op.A}] = true
		case OpAdd:
			for c := range of(op.A) {
				next[c] = true
			}
			for c := range of(op.B) {
				next[c] = true
			}
		case OpMov:
			for c := range of(op.A) {
				next[c] = true
			}
		}
		local[op.Dst.Field] = next
	}
	return local
}

// fixpointBases computes the cross-action entry state: the union of every
// action's exit state, iterated until stable, so multi-hop chains resolve
// regardless of the order actions run in. It over-approximates (a may-
// analysis): within an action the walk is exact, across actions every
// execution order is assumed possible.
func fixpointBases(prog *Program) baseSet {
	global := make(baseSet)
	for changed := true; changed; {
		changed = false
		for _, a := range prog.Actions {
			exit := simulateBases(a, global.clone(), nil)
			if global.union(exit) {
				changed = true
			}
		}
	}
	return global
}
